// Sunway: a guided tour of the SW26010 simulator itself — the
// scratchpad discipline, register-communication scans, and the shuffle
// transposition — independent of the climate model. Useful as the
// smallest possible template for porting a new kernel the paper's way.
package main

import (
	"fmt"

	"swcam/internal/sw"
)

func main() {
	cg := sw.NewCoreGroup(0)

	// 1. The 64 KB LDM is a hard wall: this allocation plan fits...
	fmt.Println("== LDM discipline ==")
	cg.Spawn(func(c *sw.CPE) {
		if c.ID != 0 {
			return
		}
		tile := c.LDM.MustAlloc("tile", 4096) // 32 KB
		scratch := c.LDM.MustAlloc("scratch", 2048)
		fmt.Printf("allocated %d B, %d B free\n", c.LDM.Used(), c.LDM.Free())
		_ = tile
		_ = scratch
		// ...and this one would not: Alloc returns the overflow error the
		// paper's footprint tool exists to prevent.
		if _, err := c.LDM.Alloc("too big", 4096); err != nil {
			fmt.Println("overflow rejected:", err)
		}
	})

	// 2. The three-stage column scan of §7.4: a 128-level prefix sum
	// distributed over the 8 mesh rows.
	fmt.Println("\n== register-communication scan (Figure 2) ==")
	const perCPE = 16
	results := make([]float64, 128)
	cg.Spawn(func(c *sw.CPE) {
		if c.Col != 0 {
			return // one column of the mesh suffices
		}
		local := c.LDM.MustAlloc("local", perCPE)
		out := c.LDM.MustAlloc("out", perCPE)
		for k := range local {
			local[k] = 1 // layer thickness 1 => prefix = layer index + 1
		}
		sw.ColumnScan(c, local, out, 0)
		copy(results[c.Row*perCPE:(c.Row+1)*perCPE], out)
	})
	fmt.Printf("prefix sums: p[0]=%.0f p[63]=%.0f p[127]=%.0f\n",
		results[0], results[63], results[127])

	// 3. The two-level transposition of §7.5: a 32x32 matrix flipped
	// across one CPE row with 8 shuffles per 4x4 block plus XOR-phase
	// register exchanges.
	fmt.Println("\n== shuffle + register transposition (Figure 3) ==")
	const dim = sw.MeshDim * sw.BlockDim
	m := make([]float64, dim*dim)
	for i := range m {
		m[i] = float64(i)
	}
	cg.ResetCounters()
	cg.Spawn(func(c *sw.CPE) {
		if c.Row != 0 {
			return
		}
		blocks := make([][]float64, sw.MeshDim)
		for j := range blocks {
			blocks[j] = c.LDM.MustAlloc("blk", 16)
		}
		sw.GatherBlocks(c, m, dim, c.Col, blocks)
		sw.RowTranspose(c, blocks)
		sw.ScatterBlocks(c, m, dim, c.Col, blocks)
	})
	sum, _ := cg.Counters()
	fmt.Printf("m[0][1] -> %.0f (was 1), m[1][0] -> %.0f (was 32)\n", m[1], m[dim])
	fmt.Printf("events: %d shuffles, %d register msgs, %d DMA ops\n",
		sum.Shuffles, sum.RegMsgs, sum.DMAOps)
}
