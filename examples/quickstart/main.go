// Quickstart: build a small global model, step it, and print the
// conservation diagnostics — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"swcam/internal/dycore"
)

func main() {
	// A coarse cubed-sphere dycore: ne4 (~750 km), 8 levels, one tracer.
	cfg := dycore.DefaultConfig(4)
	cfg.Nlev = 8
	cfg.Qsize = 1
	solver, err := dycore.NewSolver(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Initialize a baroclinic jet with a tracer bell and advance a
	// simulated hour.
	state := solver.NewState()
	solver.InitBaroclinicWave(state)
	solver.InitCosineBellTracer(state, 0, 3.14159/2, 0.0, 0.6)

	mass0 := solver.TotalMass(state)
	tracer0 := solver.TracerMass(state, 0)
	steps := int(3600 / cfg.Dt)
	for i := 0; i < steps; i++ {
		solver.Step(state)
	}

	fmt.Printf("grid:    ne%d (6x%dx%d elements, np=%d, nlev=%d)\n",
		cfg.Ne, cfg.Ne, cfg.Ne, cfg.Np, cfg.Nlev)
	fmt.Printf("steps:   %d x %.0fs = %.1f simulated hours\n",
		steps, cfg.Dt, float64(steps)*cfg.Dt/3600)
	fmt.Printf("maxwind: %.2f m/s\n", solver.MaxWind(state))
	fmt.Printf("mass:    drift %.2e relative\n",
		(solver.TotalMass(state)-mass0)/mass0)
	fmt.Printf("tracer:  drift %.2e relative\n",
		(solver.TracerMass(state, 0)-tracer0)/tracer0)
}
