// Williamson: the standard shallow-water validation suite on the
// spectral-element operator stack — case 2 (exact steady geostrophic
// flow; any drift is numerical error) and case 6 (the wavenumber-4
// Rossby-Haurwitz wave). HOMME validates with the same suite.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"swcam/internal/dycore"
)

func main() {
	ne := flag.Int("ne", 6, "resolution")
	hours := flag.Float64("hours", 12, "simulated hours")
	flag.Parse()

	const h0 = 8000.0
	dt := 0.5 * dycore.Rearth * (math.Pi / 2) / float64(*ne) * 0.28 /
		math.Sqrt(dycore.Gravit*h0)

	fmt.Printf("== Williamson case 2 (steady state), ne%d, dt=%.0fs ==\n", *ne, dt)
	s, err := dycore.NewSWSolver(*ne, dt)
	if err != nil {
		log.Fatal(err)
	}
	st := s.NewState()
	s.InitWilliamson2(st, 20, h0)
	ref := st.Clone()
	steps := int(*hours * 3600 / dt)
	for i := 0; i < steps; i++ {
		s.Step(st)
	}
	var num, den float64
	for ei := range st.H {
		for n := range st.H[ei] {
			d := st.H[ei][n] - ref.H[ei][n]
			num += d * d
			den += ref.H[ei][n] * ref.H[ei][n]
		}
	}
	fmt.Printf("after %.0f h (%d steps): height l2 error %.2e (exact solution: all error is numerical)\n",
		*hours, steps, math.Sqrt(num/den))

	fmt.Printf("\n== Williamson case 6 (Rossby-Haurwitz 4), ne%d ==\n", *ne)
	s6, err := dycore.NewSWSolver(*ne, dt)
	if err != nil {
		log.Fatal(err)
	}
	st6 := s6.NewState()
	s6.InitRossbyHaurwitz(st6)
	m0 := s6.TotalMass(st6)
	e0 := s6.TotalEnergy(st6)
	for i := 0; i < steps; i++ {
		s6.Step(st6)
	}
	fmt.Printf("after %.0f h: mass drift %.2e, energy drift %.2e\n", *hours,
		math.Abs(s6.TotalMass(st6)-m0)/m0, math.Abs(s6.TotalEnergy(st6)-e0)/e0)
	lo, hi := math.Inf(1), math.Inf(-1)
	for ei := range st6.H {
		for _, v := range st6.H[ei] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	fmt.Printf("height range [%.0f, %.0f] m (wave intact)\n", lo, hi)
}
