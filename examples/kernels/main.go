// Kernels: the Table 1 experiment as a library example — run the six
// CAM-SE dycore kernels on one simulated core group under all four
// execution strategies, verify they agree, and print the modeled times.
//
// This is the heart of the paper: the same physics, four ways —
// a Xeon core, the bare MPE, the OpenACC refactoring (Algorithm 1:
// per-iteration copyin, scalar code), and the Athread redesign
// (Algorithm 2: LDM-resident tiles, vectorized inner loops,
// register-communication scans).
package main

import (
	"fmt"
	"log"

	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/mesh"
	"swcam/internal/perf"
)

func main() {
	const (
		nlev  = 32 // divisible by the 8 CPE mesh rows
		qsize = 8
	)
	m := mesh.New(2, 4)
	elems := []int{0, 1, 2, 3, 4, 5, 6, 7} // one CPE-column block
	engine := exec.NewEngine(m, elems, nlev, qsize)

	// A realistic state over those elements.
	cfg := dycore.Config{Ne: 2, Np: 4, Nlev: nlev, Qsize: qsize,
		Dt: 60, RemapFreq: 2, HypervisSubcycle: 1, NuV: 1e15, NuS: 1e15}
	solver, err := dycore.NewSolver(cfg)
	if err != nil {
		log.Fatal(err)
	}
	full := solver.NewState()
	solver.InitBaroclinicWave(full)
	local := func() *dycore.State {
		st := dycore.NewState(len(elems), 4, nlev, qsize)
		for le, ge := range elems {
			copy(st.U[le], full.U[ge])
			copy(st.V[le], full.V[ge])
			copy(st.T[le], full.T[ge])
			copy(st.DP[le], full.DP[ge])
			copy(st.Phis[le], full.Phis[ge])
		}
		for le := range st.Qdp {
			for i := range st.Qdp[le] {
				st.Qdp[le][i] = 0.01 * st.DP[le][i%len(st.DP[le])]
			}
		}
		return st
	}

	fmt.Println("compute_and_apply_rhs under the four strategies:")
	var ref *dycore.State
	for _, b := range exec.Backends {
		cur := local()
		out := cur.Clone()
		cost := engine.ComputeAndApplyRHS(b, cur, cur, out, 60)
		t := perf.KernelTime(cost)
		diff := 0.0
		if ref == nil {
			ref = out
		} else {
			diff = ref.MaxAbsDiff(out)
		}
		fmt.Printf("  %-8s %8.3f ms   flops %10d (%3.0f%% vector)  DMA %6.2f MB  regmsgs %6d  maxdiff vs Intel %.1e\n",
			b, 1e3*t, cost.Flops(),
			100*float64(cost.FlopsVector)/float64(cost.Flops()+1),
			float64(cost.MemBytes)/1e6, cost.RegMsgs, diff)
	}

	fmt.Println("\neuler_step traffic, Algorithm 1 vs Algorithm 2 (the 10% claim):")
	acc := engine.EulerStep(exec.OpenACC, local(), 60)
	ath := engine.EulerStep(exec.Athread, local(), 60)
	fmt.Printf("  OpenACC: %6.2f MB    Athread: %6.2f MB    ratio %.2f\n",
		float64(acc.MemBytes)/1e6, float64(ath.MemBytes)/1e6,
		float64(ath.MemBytes)/float64(acc.MemBytes))
	fmt.Println("  (our miniature euler_step carries only u,v as non-tracer arrays;")
	fmt.Println("   CAM's carries ~10, which is where the paper's 10x lives — see EXPERIMENTS.md)")
}
