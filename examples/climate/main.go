// Climate: a Held-Suarez climate integration — the idealized-forcing
// configuration behind the paper's Figure 4 validation — printing the
// developing zonal-mean temperature and wind structure. Run longer
// (e.g. -hours 2400) to watch the equator-pole gradient and mid-latitude
// jets equilibrate.
package main

import (
	"flag"
	"fmt"
	"log"

	"swcam/internal/core"
	"swcam/internal/physics"
)

func main() {
	ne := flag.Int("ne", 4, "resolution")
	nlev := flag.Int("nlev", 8, "levels")
	hours := flag.Float64("hours", 48, "simulated hours")
	flag.Parse()

	cfg := core.DefaultConfig(*ne)
	cfg.Dycore.Nlev = *nlev
	cfg.Dycore.Qsize = 0
	cfg.Physics = physics.HeldSuarezMode
	cfg.PhysEvery = 1
	m, err := core.NewModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m.Solver.InitRest(m.State, 280)

	steps := int(*hours * 3600 / cfg.Dycore.Dt)
	report := steps / 4
	if report < 1 {
		report = 1
	}
	fmt.Printf("Held-Suarez climate, ne%d nlev=%d, %d steps (%.0f h)\n",
		*ne, *nlev, steps, *hours)
	for i := 1; i <= steps; i++ {
		m.Step()
		if i%report == 0 || i == steps {
			zm := m.Solver.ZonalMeanT(m.State, *nlev-1, 9)
			fmt.Printf("t=%6.1fh maxwind %5.1f m/s  zonal-mean surface T:", m.SimHours(),
				m.Solver.MaxWind(m.State))
			for _, v := range zm {
				fmt.Printf(" %5.1f", v)
			}
			fmt.Println()
		}
	}
	// The equilibrated signature: equator warmer than poles.
	zm := m.Solver.ZonalMeanT(m.State, *nlev-1, 9)
	contrast := zm[4] - (zm[0]+zm[8])/2
	fmt.Printf("equator-pole surface contrast: %.1f K", contrast)
	if contrast > 0 {
		fmt.Println("  (Held-Suarez forcing established the expected gradient)")
	} else {
		fmt.Println()
	}
}
