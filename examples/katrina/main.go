// Katrina: the idealized hurricane-lifecycle example (Figure 9). A
// Katrina-like warm-core vortex is installed at the storm's genesis
// position, integrated at coarse and fine resolution, tracked, and
// compared against the embedded NHC best track.
package main

import (
	"fmt"
	"log"
	"math"

	"swcam/internal/tc"
)

func main() {
	vp := tc.KatrinaLikeVortex()
	fmt.Printf("Katrina-like vortex: centre (%.1fW, %.1fN), depression %.0f hPa\n\n",
		360-vp.LonC*180/math.Pi, vp.LatC*180/math.Pi, vp.DeltaP/100)

	fmt.Println("resolution sensitivity (the Figure 9a/9b claim):")
	for _, ne := range []int{4, 8, 12} {
		run, err := tc.RunResolution(ne, 8, 16, 8, vp)
		if err != nil {
			log.Fatal(err)
		}
		bar := int(20 * run.FinalKt / run.InitialKt)
		fmt.Printf("  ne%-3d %5.0f km  retention %4.0f%%  |%-20s|\n",
			ne, run.GridKM, 100*run.FinalKt/run.InitialKt,
			string(make([]byte, 0, 20))+bars(bar))
	}

	fmt.Println("\nobserved intensity evolution (NHC best track, kt):")
	for h := 0.0; h <= 186; h += 24 {
		e := tc.KatrinaAt(h)
		fmt.Printf("  day %d: %5.0f kt  %6.0f hPa  (%.1fN, %.1fW)  |%s\n",
			int(h/24), e.MSWkt, e.MinPhPa, e.LatDeg, 360-e.LonDeg, bars(int(e.MSWkt/8)))
	}
	kt, h := tc.KatrinaPeak()
	fmt.Printf("\npeak: %.0f kt (category 5) at hour %.0f — the lifecycle the paper\n", kt, h)
	fmt.Println("simulated end to end at 25 km with close-to-observation track and intensity.")
}

func bars(n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
