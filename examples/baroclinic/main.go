// Baroclinic: a multi-rank distributed dynamics run — the baroclinic
// jet integrated on a partitioned cubed sphere with the Athread backend
// and the redesigned overlapped boundary exchange, validated against the
// serial solver at the end. This example exercises the full "MPI + X"
// pipeline: SFC partitioning, per-rank core-group engines, halo DSS,
// and the global mass fixer over allreduce.
package main

import (
	"fmt"
	"log"

	"swcam/internal/core"
	"swcam/internal/dycore"
	"swcam/internal/exec"
)

func main() {
	cfg := dycore.DefaultConfig(4)
	cfg.Nlev = 8
	cfg.Qsize = 1
	const (
		nranks = 6
		steps  = 6
	)

	// Serial reference.
	solver, err := dycore.NewSolver(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ref := solver.NewState()
	solver.InitBaroclinicWave(ref)
	solver.InitCosineBellTracer(ref, 0, 1.0, 0.2, 0.6)
	global := ref.Clone()
	for i := 0; i < steps; i++ {
		solver.Step(ref)
	}

	// Distributed run, redesigned exchange, Athread backend.
	job, err := core.NewParallelJob(cfg, exec.Athread, true, nranks)
	if err != nil {
		log.Fatal(err)
	}
	local := job.Scatter(global)
	stats := job.Run(local, steps)
	got := job.Gather(local)

	fmt.Printf("baroclinic wave, ne%d nlev=%d, %d ranks x %d steps\n",
		cfg.Ne, cfg.Nlev, nranks, steps)
	fmt.Printf("  elements/rank:   %d\n", job.Plans[0].NLocal())
	fmt.Printf("  halo traffic:    %d msgs, %.2f MB (staging: %.2f MB — redesigned exchange)\n",
		stats.Halo.Msgs, float64(stats.Halo.WireBytes)/1e6, float64(stats.Halo.StagingBytes)/1e6)
	fmt.Printf("  kernel events:   %.2e flops, %.1f MB DMA, %d register msgs\n",
		float64(stats.Cost.Flops()), float64(stats.Cost.MemBytes)/1e6, stats.Cost.RegMsgs)
	fmt.Printf("  max |parallel - serial| = %.2e  (scan-regrouping rounding only)\n",
		got.MaxAbsDiff(ref))
	fmt.Printf("  maxwind %.1f m/s, total mass %.6e\n",
		solver.MaxWind(got), solver.TotalMass(got))
}
