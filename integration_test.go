// Cross-module integration tests at the repository root: end-to-end
// scenarios that thread every subsystem together the way a user would —
// the whole-model pipeline, the checkpoint cycle across the distributed
// driver, and the Figure 9 pipeline from vortex to verification.
package swcam_bench

import (
	"bytes"
	"math"
	"testing"

	"swcam/internal/core"
	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/physics"
	"swcam/internal/tc"
)

// TestEndToEndMoistModel: build, initialize, run, checkpoint, restore,
// continue — the full single-process product loop with moist physics.
func TestEndToEndMoistModel(t *testing.T) {
	cfg := core.DefaultConfig(4)
	cfg.Dycore.Nlev = 8
	cfg.Dycore.Qsize = 3
	cfg.PhysEvery = 2
	cfg.PhysWorkers = 4
	m, err := core.NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Solver.InitBaroclinicWave(m.State)
	m.Solver.AddMountain(m.State, math.Pi, math.Pi/6, 1500, 0.3)
	npsq := m.Solver.Cfg.Np * m.Solver.Cfg.Np
	for ei := range m.State.Qdp {
		qdp := m.State.QdpAt(ei, 0)
		for k := 0; k < cfg.Dycore.Nlev; k++ {
			sig := float64(k+1) / float64(cfg.Dycore.Nlev)
			for n := 0; n < npsq; n++ {
				qdp[k*npsq+n] = 0.015 * sig * sig * m.State.DP[ei][k*npsq+n]
			}
		}
	}

	m.Run(4)
	var buf bytes.Buffer
	if err := core.WriteCheckpoint(&buf, m.State, m.Solver.StepCount()); err != nil {
		t.Fatal(err)
	}
	// Continue the original.
	m.Run(4)
	ref := m.State.Clone()

	// Restore into a fresh model and catch up.
	m2, err := core.NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, step, err := core.ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2.State.CopyFrom(st)
	m2.Solver.SetStep(step)
	m2.Run(4)
	if d := m2.State.MaxAbsDiff(ref); d != 0 {
		t.Errorf("restored run diverged by %g (restart must be bit-exact)", d)
	}
}

// TestEndToEndDistributedAgainstSerial: the four-backend distributed
// driver against the serial solver through full steps with topography
// and tracers — the complete paper pipeline in one assertion.
func TestEndToEndDistributedAgainstSerial(t *testing.T) {
	cfg := dycore.DefaultConfig(4)
	cfg.Nlev = 8
	cfg.Qsize = 2
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := s.NewState()
	s.InitBaroclinicWave(ref)
	s.AddMountain(ref, 1.0, 0.5, 1000, 0.3)
	s.InitCosineBellTracer(ref, 0, math.Pi/2, 0, 0.6)
	s.InitCosineBellTracer(ref, 1, math.Pi, 0.4, 0.5)
	global := ref.Clone()
	const steps = 3
	for i := 0; i < steps; i++ {
		s.Step(ref)
	}
	for _, b := range []exec.Backend{exec.Intel, exec.OpenACC, exec.Athread} {
		job, err := core.NewParallelJob(cfg, b, true, 4)
		if err != nil {
			t.Fatal(err)
		}
		local := job.Scatter(global)
		job.Run(local, steps)
		got := job.Gather(local)
		// Even the bitwise backends differ from serial at ~1e-10: the
		// hyperviscosity mass fixer's Allreduce sums rank partials in
		// tree order, not the serial loop order. Athread additionally
		// regroups the vertical scans.
		tol := 1e-9
		if b == exec.Athread {
			tol = 1e-5 // absolute, on ~1e4-scale dp fields
		}
		if d := got.MaxAbsDiff(ref); d > tol {
			t.Errorf("%v distributed run differs from serial by %g", b, d)
		}
	}
}

// TestEndToEndKatrinaPipeline: vortex -> dynamics -> tracker -> obs
// verification, the Figure 9 chain.
func TestEndToEndKatrinaPipeline(t *testing.T) {
	run, err := tc.RunResolution(8, 8, 8, 4, tc.KatrinaLikeVortex())
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Fixes) < 2 {
		t.Fatal("no track produced")
	}
	// Verification machinery against the embedded best track.
	var obs []tc.BestTrackEntry
	for _, f := range run.Fixes {
		obs = append(obs, tc.KatrinaAt(f.Hours))
	}
	meanErr := tc.MeanTrackError(run.Fixes, obs)
	if meanErr <= 0 || meanErr > 5000 {
		t.Errorf("track verification produced implausible mean error %v km", meanErr)
	}
	if kt, _ := tc.KatrinaPeak(); kt != 150 {
		t.Errorf("best-track peak %v kt", kt)
	}
}

// TestEndToEndHeldSuarez: the Figure 4 configuration end to end with
// history output decoded and sanity-checked.
func TestEndToEndHeldSuarez(t *testing.T) {
	cfg := core.DefaultConfig(4)
	cfg.Dycore.Nlev = 8
	cfg.Dycore.Qsize = 0
	cfg.Physics = physics.HeldSuarezMode
	cfg.PhysEvery = 1
	m, err := core.NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Solver.InitRest(m.State, 280)

	var buf bytes.Buffer
	hw, err := core.NewHistoryWriter(&buf,
		core.NewSampler(m.Solver.Mesh, 24, 12), []string{"T", "U", "V"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Run(1)
		if i%5 == 4 {
			if err := core.WriteHistoryFrameForModel(hw, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := hw.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, frames, err := core.ReadHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("frames = %d", len(frames))
	}
	for _, v := range frames[1].Data["T"] {
		if v < 150 || v > 350 {
			t.Fatalf("history surface T %v out of range", v)
		}
	}
}
