// Package swcam_bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks: each BenchmarkTableN / BenchmarkFigN
// drives the corresponding experiment and reports the headline numbers
// through b.ReportMetric, so `go test -bench=. -benchmem` reproduces the
// whole evaluation in one run (cmd/benchtab prints the same content as
// human-readable tables).
package swcam_bench

import (
	"math"
	"testing"

	"swcam/internal/core"
	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/mesh"
	"swcam/internal/perf"
	"swcam/internal/tc"
)

// BenchmarkTable1Kernels runs the six dycore kernels under all four
// execution strategies on the functional simulator and reports the
// modeled Athread-over-Intel speedup range (the Table 1 payload).
func BenchmarkTable1Kernels(b *testing.B) {
	cfg := perf.DefaultTable1Config()
	cfg.SampleElems = 8
	var rows []perf.KernelRow
	for i := 0; i < b.N; i++ {
		rows = Table1Once(cfg)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		s := r.Speedup(exec.Intel, exec.Athread)
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	b.ReportMetric(lo, "athread/intel_min_x")
	b.ReportMetric(hi, "athread/intel_max_x")
}

// Table1Once wraps the generator (kept separate so the benchmark loop
// body stays visible).
func Table1Once(cfg perf.Table1Config) []perf.KernelRow { return perf.Table1(cfg) }

// BenchmarkTable2Mesh builds the cubed-sphere grid (the Table 2
// configurations, at a laptop-scale ne) and reports elements built.
func BenchmarkTable2Mesh(b *testing.B) {
	var m *mesh.Mesh
	for i := 0; i < b.N; i++ {
		m = mesh.New(16, 4)
	}
	b.ReportMetric(float64(m.NElems()), "elements")
	b.ReportMetric(float64(m.NNodes), "unique_nodes")
}

// BenchmarkTable3NGGPS evaluates the dycore-comparison cost models and
// reports the FV3 and MPAS margins at 3 km.
func BenchmarkTable3NGGPS(b *testing.B) {
	var cases []perf.Table3Case
	for i := 0; i < b.N; i++ {
		cases = perf.Table3()
	}
	r3 := cases[1].Rows
	b.ReportMetric(r3[1].RunTime/r3[0].RunTime, "fv3/ours_3km_x")
	b.ReportMetric(r3[2].RunTime/r3[0].RunTime, "mpas/ours_3km_x")
}

// BenchmarkFig4Climatology runs the control (serial Intel) and test
// (distributed Athread) integrations and reports the largest zonal-mean
// temperature discrepancy — the Figure 4 "identical climate" metric.
func BenchmarkFig4Climatology(b *testing.B) {
	cfg := dycore.DefaultConfig(2)
	cfg.Nlev = 8
	cfg.Qsize = 0
	maxd := 0.0
	for i := 0; i < b.N; i++ {
		s, err := dycore.NewSolver(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ref := s.NewState()
		s.InitBaroclinicWave(ref)
		g := ref.Clone()
		const steps = 4
		for k := 0; k < steps; k++ {
			s.Step(ref)
		}
		job, err := core.NewParallelJob(cfg, exec.Athread, true, 2)
		if err != nil {
			b.Fatal(err)
		}
		local := job.Scatter(g)
		job.Run(local, steps)
		got := job.Gather(local)
		zmA := s.ZonalMeanT(ref, cfg.Nlev-1, 12)
		zmB := s.ZonalMeanT(got, cfg.Nlev-1, 12)
		maxd = 0
		for k := range zmA {
			if d := math.Abs(zmA[k] - zmB[k]); d > maxd {
				maxd = d
			}
		}
	}
	b.ReportMetric(maxd, "max_zonal_T_diff_K")
}

// BenchmarkFig5Speedups reports the peak Athread-over-OpenACC kernel
// gain (Figure 5's headline: up to ~50x).
func BenchmarkFig5Speedups(b *testing.B) {
	cfg := perf.DefaultTable1Config()
	cfg.SampleElems = 8
	peak := 0.0
	for i := 0; i < b.N; i++ {
		rows := perf.Table1(cfg)
		peak = 0
		for _, r := range rows {
			if s := r.Speedup(exec.OpenACC, exec.Athread); s > peak {
				peak = s
			}
		}
	}
	b.ReportMetric(peak, "athread/openacc_peak_x")
}

// BenchmarkFig6SYPD evaluates the whole-CAM composition model at the
// paper's two operating points.
func BenchmarkFig6SYPD(b *testing.B) {
	var ne30, ne120 float64
	for i := 0; i < b.N; i++ {
		ne30 = perf.DefaultCAMConfig(30).SYPD(perf.VersionAthread, 5400)
		ne120 = perf.DefaultCAMConfig(120).SYPD(perf.VersionOpenACC, 28800)
	}
	b.ReportMetric(ne30, "ne30_athread_sypd")   // paper: 21.5
	b.ReportMetric(ne120, "ne120_openacc_sypd") // paper: 3.4
}

// BenchmarkFig7StrongScaling sweeps the strong-scaling model and reports
// the 131,072-process efficiencies.
func BenchmarkFig7StrongScaling(b *testing.B) {
	var e256, e1024 float64
	for i := 0; i < b.N; i++ {
		e256 = perf.DefaultHOMMEConfig(256).Efficiency(131072, 4096, true)
		e1024 = perf.DefaultHOMMEConfig(1024).Efficiency(131072, 8192, true)
	}
	b.ReportMetric(100*e256, "ne256_eff_pct")   // paper: 21.7
	b.ReportMetric(100*e1024, "ne1024_eff_pct") // paper: 51.2
}

// BenchmarkFig8WeakScaling reports the full-machine sustained
// performance of the 650-elements-per-process run.
func BenchmarkFig8WeakScaling(b *testing.B) {
	var pf float64
	for i := 0; i < b.N; i++ {
		pf = perf.WeakScaling(650, 155000, 128, 4).PFlops
	}
	b.ReportMetric(pf, "pflops_at_10.075M_cores") // paper: 3.3
}

// BenchmarkFig9Hurricane runs the resolution-sensitivity experiment and
// reports the fine/coarse retention contrast.
func BenchmarkFig9Hurricane(b *testing.B) {
	vp := tc.KatrinaLikeVortex()
	var retC, retF float64
	for i := 0; i < b.N; i++ {
		coarse, err := tc.RunResolution(4, 8, 12, 6, vp)
		if err != nil {
			b.Fatal(err)
		}
		fine, err := tc.RunResolution(8, 8, 12, 6, vp)
		if err != nil {
			b.Fatal(err)
		}
		retC = coarse.FinalKt / coarse.InitialKt
		retF = fine.FinalKt / fine.InitialKt
	}
	b.ReportMetric(retC, "coarse_retention")
	b.ReportMetric(retF, "fine_retention")
}

// BenchmarkOverlapAblation measures the §7.6 redesign's saving at scale
// (the paper: up to 23% of HOMME runtime).
func BenchmarkOverlapAblation(b *testing.B) {
	h := perf.DefaultHOMMEConfig(1024)
	var save float64
	for i := 0; i < b.N; i++ {
		tNo, _ := h.StepTime(131072, false)
		tOv, _ := h.StepTime(131072, true)
		save = 100 * (tNo - tOv) / tNo
	}
	b.ReportMetric(save, "overlap_saving_pct")
}

// BenchmarkDycoreStepSerial measures the real Go cost of one full
// serial dycore step at a laptop-scale grid (useful for tracking the
// functional simulator's own performance).
func BenchmarkDycoreStepSerial(b *testing.B) {
	cfg := dycore.DefaultConfig(4)
	cfg.Nlev = 8
	cfg.Qsize = 2
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		b.Fatal(err)
	}
	st := s.NewState()
	s.InitBaroclinicWave(st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(st)
	}
}

// BenchmarkDistributedStepAthread measures one distributed step through
// the whole pipeline (engines + halo + allreduce) on the simulator.
func BenchmarkDistributedStepAthread(b *testing.B) {
	cfg := dycore.DefaultConfig(4)
	cfg.Nlev = 8
	cfg.Qsize = 1
	job, err := core.NewParallelJob(cfg, exec.Athread, true, 4)
	if err != nil {
		b.Fatal(err)
	}
	s, _ := dycore.NewSolver(cfg)
	g := s.NewState()
	s.InitBaroclinicWave(g)
	local := job.Scatter(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job.Run(local, 1)
	}
}

// BenchmarkRemapTransposeAblation compares the two Athread vertical-
// remap data-movement strategies (§7.5): per-column strided DMA vs the
// in-fabric shuffle/register transposition. Reports the DMA-descriptor
// and register-message counts of each — the design trade the paper's
// transposition machinery exists to win.
func BenchmarkRemapTransposeAblation(b *testing.B) {
	m := mesh.New(2, 4)
	elems := make([]int, m.NElems())
	for i := range elems {
		elems[i] = i
	}
	const nlev, qsize = 32, 4
	en := exec.NewEngine(m, elems, nlev, qsize)
	cfg := dycore.DefaultConfig(2)
	cfg.Nlev = nlev
	cfg.Qsize = qsize
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		b.Fatal(err)
	}
	st := s.NewState()
	s.InitBaroclinicWave(st)
	for ei := range st.Qdp {
		for i := range st.Qdp[ei] {
			st.Qdp[ei][i] = 0.01 * st.DP[ei][i%len(st.DP[ei])]
		}
	}
	h := dycore.NewHybridCoord(nlev)
	var strided, transposed exec.Cost
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strided = en.VerticalRemap(exec.Athread, h, st.Clone())
		transposed = en.VerticalRemapTransposed(h, st.Clone())
	}
	b.ReportMetric(float64(strided.DMAOps), "strided_dma_ops")
	b.ReportMetric(float64(transposed.DMAOps), "transposed_dma_ops")
	b.ReportMetric(float64(transposed.RegMsgs), "transposed_reg_msgs")
}
