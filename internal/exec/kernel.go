// Single-source kernel layer: each per-level slab kernel is written
// ONCE against a small primitive vocabulary (slabOps) and *lowered*
// onto the four execution strategies, instead of being hand-written
// four-plus-subset times. The copies had already drifted — the DP2
// update was modeled as 12·np² scalar flops on OpenACC but 8·np²
// vector flops on Athread and 16·np² in the serial analytic formula —
// so the rule enforced here is structural: flop/byte attribution lives
// ONLY in the primitives, never in a lowering or a kernel body.
//
// The vocabulary (slabOps) is the set of per-level slab operations the
// Table-1 dissipation kernels need:
//
//	VecLaplace  sphere-correct vector Laplacian of (u,v)
//	Laplace     scalar Laplacian
//	AxpyUpdate  dst -= coef*src, coef hoisted to launch scope
//
// Each primitive carries exactly one flop attribution, shared by every
// lowering: the analytic formulas in flops.go (counted by countSlabOps
// for the serial backends and charged per call by the OpenACC
// lowering) and the CountVecFlops calls inside the vecops.go slab
// functions (the Athread lowering). A kernel is a slabSpec: buffer
// shape (inputs, outputs, scratch, whether the metric needs D for the
// vector Laplacian, whether outputs are read-modify-write) plus a body
// that calls primitives. The four lowerings reproduce the cost
// semantics of the hand-written kernels they replaced:
//
//   - Intel/MPE (lowerSlabSerial): one host core runs the dycore
//     scalar slabs in place over state rows; flops are the spec's
//     primitive-derived analytic count, bytes the compulsory traffic
//     8·np²·nlev·(nIn+nOut) per element.
//   - OpenACC (lowerSlabOpenACC): (element, level) items round-robin
//     over the 64 CPEs (firstWorkItem preserves the assignment under
//     tiling); every item resets the LDM and re-fetches metric and
//     fields — the directive compiler cannot hoist a copyin out of a
//     collapsed loop — then runs the scalar slabs and charges the same
//     analytic counts the serial lowering uses.
//   - Athread (lowerSlabAthread): elements map to mesh columns
//     (le % MeshDim), levels split across rows (rowLevels), the metric
//     stays resident per element (fetched even for rows with zero
//     levels — the hand-written kernels did, and counter parity is
//     part of the contract), the derivative matrix is a per-launch
//     broadcast inside c.Setup, and the body runs the Vec4 slab ops.
//
// All three CPE-side lowerings run through the subset runners
// (subset.go), so the boundary/inner split and the Open/Close deferred
// cost accounting come for free; a Whole launch uses the identity
// subset, whose tiles equal the aligned legacy decomposition.
package exec

import (
	"swcam/internal/dycore"
	"swcam/internal/mesh"
	"swcam/internal/sw"
)

// slabOps is the primitive vocabulary a slab-kernel body is written
// against. Implementations exist per lowering (serial, OpenACC,
// Athread) plus a counting implementation that derives the analytic
// per-level flop attribution from the body itself.
type slabOps interface {
	// VecLaplace computes the sphere-correct vector Laplacian of
	// (u, v) into (lu, lv). Attribution: vecLapFlops(np).
	VecLaplace(u, v, lu, lv []float64)
	// Laplace computes the scalar Laplacian of src into out.
	// Attribution: lapFlops(np).
	Laplace(src, out []float64)
	// AxpyUpdate applies dst -= coef*src. coef is a launch-scope
	// scalar (e.g. dt*nu), multiplied in hoisted form — the
	// coefficient product is NOT part of the per-point work.
	// Attribution: axpyFlops(np) = 2·np² (one multiply, one subtract
	// per point).
	AxpyUpdate(dst []float64, coef float64, src []float64)
}

// slabIO carries one level's buffer bindings into a kernel body: input
// slabs, output slabs, kernel-owned scratch slabs, and the hoisted
// scalar coefficients. Fixed-size arrays keep the per-level rebinding
// allocation-free.
type slabIO struct {
	in, out, scr [4][]float64
	coef         [2]float64
}

// slabSpec is one kernel, written once: its buffer shape and its body.
// The lowerings derive everything else — LDM layout, DMA schedule,
// flop/byte accounting — from these fields, so adding a kernel means
// writing exactly one body.
type slabSpec struct {
	name string
	// nIn inputs are fetched per level; nOut outputs are written back
	// per level; nScr scratch slabs are kernel-visible (bodies that
	// need intermediates, like DP2's laplacians-then-update).
	nIn, nOut, nScr int
	// needVec stages the covariant metric D (used by the vector
	// Laplacian) and sizes the primitive-internal scratch at 6 slabs
	// instead of 4.
	needVec bool
	// rmw marks outputs as read-modify-write: the CPE lowerings fetch
	// them before the body runs (the serial lowering updates in
	// place).
	rmw  bool
	body func(p slabOps, io *slabIO)
}

// opScratch is the primitive-internal scratch slab count: the vector
// Laplacian needs 6, the scalar chain 4.
func (k *slabSpec) opScratch() int {
	if k.needVec {
		return 6
	}
	return 4
}

// countSlabOps derives the analytic per-level flop count of a body by
// running it against the attribution constants alone. This is the ONE
// place serial flops come from, and the OpenACC lowering charges the
// same constants per primitive call — a count can no longer exist in
// one backend and not another.
type countSlabOps struct {
	np    int
	flops int64
}

func (c *countSlabOps) VecLaplace(u, v, lu, lv []float64)               { c.flops += vecLapFlops(c.np) }
func (c *countSlabOps) Laplace(src, out []float64)                      { c.flops += lapFlops(c.np) }
func (c *countSlabOps) AxpyUpdate(dst []float64, coef float64, src []float64) { c.flops += axpyFlops(c.np) }

// levelFlops is the spec's analytic flop count for one np×np level.
func (k *slabSpec) levelFlops(np int) int64 {
	c := countSlabOps{np: np}
	var io slabIO
	k.body(&c, &io)
	return c.flops
}

// serialBytes is the compulsory main-memory traffic per element for
// the serial backends: every input read once, every output written
// once (rmw outputs are counted once, like the hand-written kernels
// and hypervisBytes always did).
func (k *slabSpec) serialBytes(np, nlev int) int64 {
	return int64(sw.F64Bytes * np * np * nlev * (k.nIn + k.nOut))
}

// ---------------------------------------------------------------------------
// Kernel specs: the three dissipation kernels, each written exactly once.
// ---------------------------------------------------------------------------

// hypervisDP1Spec: first hyperviscosity pass — pure Laplacians of the
// four prognostic fields (u, v vector; T, dp scalar).
var hypervisDP1Spec = slabSpec{
	name: "hypervis_dp1",
	nIn:  4, nOut: 4, nScr: 0,
	needVec: true,
	body: func(p slabOps, io *slabIO) {
		p.VecLaplace(io.in[0], io.in[1], io.out[0], io.out[1])
		p.Laplace(io.in[2], io.out[2])
		p.Laplace(io.in[3], io.out[3])
	},
}

// hypervisDP2Spec: second pass + update. Laplacians of the DSS'd first
// pass land in kernel scratch, then each field is damped with the
// hoisted coefficient (coef[0] = dt*nuV for momentum, coef[1] = dt*nuS
// for scalars). The update cost — 4 fields × axpyFlops = 8·np² per
// level — exists only here, via the AxpyUpdate primitive.
var hypervisDP2Spec = slabSpec{
	name: "hypervis_dp2",
	nIn:  4, nOut: 4, nScr: 4,
	needVec: true,
	rmw:     true,
	body: func(p slabOps, io *slabIO) {
		p.VecLaplace(io.in[0], io.in[1], io.scr[0], io.scr[1])
		p.Laplace(io.in[2], io.scr[2])
		p.Laplace(io.in[3], io.scr[3])
		p.AxpyUpdate(io.out[0], io.coef[0], io.scr[0])
		p.AxpyUpdate(io.out[1], io.coef[0], io.scr[1])
		p.AxpyUpdate(io.out[2], io.coef[1], io.scr[2])
		p.AxpyUpdate(io.out[3], io.coef[1], io.scr[3])
	},
}

// biharmonicDP3DSpec: one scalar Laplacian pass on the layer thickness.
var biharmonicDP3DSpec = slabSpec{
	name: "biharmonic_dp3d",
	nIn:  1, nOut: 1, nScr: 0,
	body: func(p slabOps, io *slabIO) {
		p.Laplace(io.in[0], io.out[0])
	},
}

// slabBind binds one kernel invocation to its element-row arrays and
// hoisted coefficients. in[i][le] / out[i][le] are level-major rows.
type slabBind struct {
	in, out [4][][]float64
	coef    [2]float64
}

// lowerSlab dispatches a slab kernel to its backend lowering. The
// caller has already run beginLaunch.
func (en *Engine) lowerSlab(k *slabSpec, sub Subset, b Backend, bind *slabBind) Cost {
	switch b {
	case Intel, MPE:
		return en.lowerSlabSerial(k, sub, b, bind)
	case OpenACC:
		return en.lowerSlabOpenACC(k, sub, bind)
	case Athread:
		return en.lowerSlabAthread(k, sub, bind)
	}
	panic("exec: unknown backend")
}

// LDM buffer names, for the allocator's overflow diagnostics.
var (
	slabInNames  = [4]string{"in0", "in1", "in2", "in3"}
	slabOutNames = [4]string{"out0", "out1", "out2", "out3"}
	slabScrNames = [4]string{"scr0", "scr1", "scr2", "scr3"}
	slabOpNames  = [6]string{"op0", "op1", "op2", "op3", "op4", "op5"}
)

// ---------------------------------------------------------------------------
// Serial lowering (Intel, MPE)
// ---------------------------------------------------------------------------

// serialSlabOps runs the primitives with the dycore scalar slab
// operators directly on main-memory rows, using the worker's pooled
// scratch. No per-call attribution: serial flops are the spec's
// analytic count, summed per element by the lowering.
type serialSlabOps struct {
	en *Engine
	w  *dynWorker
	e  *mesh.Element
}

func (s *serialSlabOps) VecLaplace(u, v, lu, lv []float64) {
	w := s.w
	dycore.VecLaplaceSlab(s.en.M.DerivFlat, s.e.DFlat, s.e.DinvFlat, s.e.Metdet, s.e.DAlpha, s.en.Np,
		u, v, lu, lv, w.opScr[0], w.opScr[1], w.opScr[2], w.opScr[3], w.opScr[4], w.opScr[5])
}

func (s *serialSlabOps) Laplace(src, out []float64) {
	w := s.w
	dycore.LaplaceSlab(s.en.M.DerivFlat, s.e.DinvFlat, s.e.Metdet, s.e.DAlpha, s.en.Np,
		src, out, w.opScr[0], w.opScr[1], w.opScr[2], w.opScr[3])
}

func (s *serialSlabOps) AxpyUpdate(dst []float64, coef float64, src []float64) {
	for n := range dst {
		dst[n] -= coef * src[n]
	}
}

func (en *Engine) lowerSlabSerial(k *slabSpec, sub Subset, b Backend, bind *slabBind) Cost {
	sel := en.sel(sub)
	np, nlev := en.Np, en.Nlev
	npsq := np * np
	perElemFlops := k.levelFlops(np) * int64(nlev)
	perElemBytes := k.serialBytes(np, nlev)
	flops, bytes := en.runTilesSerialOn(sel, func(w *dynWorker, slots []int, p *serialPartial) {
		ops := serialSlabOps{en: en, w: w}
		var io slabIO
		io.coef = bind.coef
		for i := 0; i < k.nScr; i++ {
			io.scr[i] = w.kScr[i]
		}
		for _, le := range slots {
			ops.e = en.element(le)
			for lev := 0; lev < nlev; lev++ {
				o := lev * npsq
				for i := 0; i < k.nIn; i++ {
					io.in[i] = bind.in[i][le][o : o+npsq]
				}
				for i := 0; i < k.nOut; i++ {
					io.out[i] = bind.out[i][le][o : o+npsq]
				}
				k.body(&ops, &io)
			}
			p.flops += perElemFlops
			p.bytes += perElemBytes
		}
	})
	return en.serialSplit(b, sub.Phase, flops, bytes)
}

// ---------------------------------------------------------------------------
// OpenACC lowering: per-(element, level) re-fetch, scalar slabs
// ---------------------------------------------------------------------------

// accSlabOps runs the primitives with the dycore scalar slabs on LDM
// tiles and charges each primitive's analytic attribution on the CPE —
// the same constants countSlabOps sums for the serial backends.
type accSlabOps struct {
	c                          *sw.CPE
	np                         int
	deriv, dinv, dflat, metdet []float64
	dAlpha                     float64
	scr                        [6][]float64
}

func (a *accSlabOps) VecLaplace(u, v, lu, lv []float64) {
	dycore.VecLaplaceSlab(a.deriv, a.dflat, a.dinv, a.metdet, a.dAlpha, a.np,
		u, v, lu, lv, a.scr[0], a.scr[1], a.scr[2], a.scr[3], a.scr[4], a.scr[5])
	a.c.CountFlops(vecLapFlops(a.np))
}

func (a *accSlabOps) Laplace(src, out []float64) {
	dycore.LaplaceSlab(a.deriv, a.dinv, a.metdet, a.dAlpha, a.np,
		src, out, a.scr[0], a.scr[1], a.scr[2], a.scr[3])
	a.c.CountFlops(lapFlops(a.np))
}

func (a *accSlabOps) AxpyUpdate(dst []float64, coef float64, src []float64) {
	for n := range dst {
		dst[n] -= coef * src[n]
	}
	a.c.CountFlops(axpyFlops(a.np))
}

func (en *Engine) lowerSlabOpenACC(k *slabSpec, sub Subset, bind *slabBind) Cost {
	sel := en.sel(sub)
	np, nlev := en.Np, en.Nlev
	npsq := np * np
	nOp := k.opScratch()
	en.runTilesCGOn(sel, sub.Phase == Close, func(cg *sw.CoreGroup, slots []int) {
		cg.Spawn(func(c *sw.CPE) {
			ldm := c.LDM
			ops := accSlabOps{c: c, np: np}
			var io slabIO
			io.coef = bind.coef
			for _, le := range slots {
				for w := firstWorkItem(le*nlev, c.ID); w < (le+1)*nlev; w += sw.CPEsPerCG {
					ldm.Reset()
					e := en.element(le)
					o := (w % nlev) * npsq
					ops.dAlpha = e.DAlpha
					ops.deriv = ldm.MustAlloc("deriv", npsq)
					ops.dinv = ldm.MustAlloc("dinv", 4*npsq)
					if k.needVec {
						ops.dflat = ldm.MustAlloc("dflat", 4*npsq)
					}
					ops.metdet = ldm.MustAlloc("metdet", npsq)
					c.DMA.GetShared(ops.deriv, en.M.DerivFlat)
					c.DMA.Get(ops.dinv, e.DinvFlat)
					if k.needVec {
						c.DMA.Get(ops.dflat, e.DFlat)
					}
					c.DMA.Get(ops.metdet, e.Metdet)
					for i := 0; i < k.nIn; i++ {
						io.in[i] = ldm.MustAlloc(slabInNames[i], npsq)
						c.DMA.Get(io.in[i], bind.in[i][le][o:o+npsq])
					}
					for i := 0; i < k.nOut; i++ {
						io.out[i] = ldm.MustAlloc(slabOutNames[i], npsq)
						if k.rmw {
							c.DMA.Get(io.out[i], bind.out[i][le][o:o+npsq])
						}
					}
					for i := 0; i < k.nScr; i++ {
						io.scr[i] = ldm.MustAlloc(slabScrNames[i], npsq)
					}
					for i := 0; i < nOp; i++ {
						ops.scr[i] = ldm.MustAlloc(slabOpNames[i], npsq)
					}
					k.body(&ops, &io)
					for i := 0; i < k.nOut; i++ {
						c.DMA.Put(bind.out[i][le][o:o+npsq], io.out[i])
					}
				}
			}
		})
	})
	return en.collectSplit(OpenACC, sub.Phase)
}

// ---------------------------------------------------------------------------
// Athread lowering: element per column, levels per row, resident
// metric, Vec4 slabs
// ---------------------------------------------------------------------------

// athSlabOps runs the primitives with the vectorized vecops.go slabs,
// which carry their own CountVecFlops attribution; the update is the
// one primitive implemented here, with the Splat of the hoisted
// coefficient at slab scope (once per call, not once per row).
type athSlabOps struct {
	c                          *sw.CPE
	np                         int
	deriv, dinv, dflat, metdet []float64
	dAlpha                     float64
	scr                        [6][]float64
}

func (a *athSlabOps) VecLaplace(u, v, lu, lv []float64) {
	vecLaplaceSlabVec4(a.c, a.deriv, a.dflat, a.dinv, a.metdet, a.dAlpha,
		u, v, lu, lv, a.scr[0], a.scr[1], a.scr[2], a.scr[3], a.scr[4], a.scr[5])
}

func (a *athSlabOps) Laplace(src, out []float64) {
	laplaceSlabVec4(a.c, a.deriv, a.dinv, a.metdet, a.dAlpha,
		src, out, a.scr[0], a.scr[1], a.scr[2], a.scr[3])
}

func (a *athSlabOps) AxpyUpdate(dst []float64, coef float64, src []float64) {
	cv := sw.Splat(coef)
	for j := 0; j < a.np; j++ {
		sw.LoadVec4(dst, 4*j).Sub(cv.Mul(sw.LoadVec4(src, 4*j))).Store(dst, 4*j)
	}
	a.c.CountVecFlops(axpyFlops(a.np))
}

func (en *Engine) lowerSlabAthread(k *slabSpec, sub Subset, bind *slabBind) Cost {
	sel := en.sel(sub)
	np := en.Np
	npsq := np * np
	nOp := k.opScratch()
	en.runTilesCGOn(sel, sub.Phase == Close, func(cg *sw.CoreGroup, slots []int) {
		cg.Spawn(func(c *sw.CPE) {
			ldm := c.LDM
			s, vl := en.rowLevels(c.Row)
			ops := athSlabOps{c: c, np: np}
			var io slabIO
			io.coef = bind.coef
			ops.deriv = ldm.MustAlloc("deriv", npsq)
			c.Setup(func() { c.DMA.GetShared(ops.deriv, en.M.DerivFlat) })
			ops.dinv = ldm.MustAlloc("dinv", 4*npsq)
			if k.needVec {
				ops.dflat = ldm.MustAlloc("dflat", 4*npsq)
			}
			ops.metdet = ldm.MustAlloc("metdet", npsq)
			for i := 0; i < k.nIn; i++ {
				io.in[i] = ldm.MustAlloc(slabInNames[i], npsq)
			}
			for i := 0; i < k.nOut; i++ {
				io.out[i] = ldm.MustAlloc(slabOutNames[i], npsq)
			}
			for i := 0; i < k.nScr; i++ {
				io.scr[i] = ldm.MustAlloc(slabScrNames[i], npsq)
			}
			for i := 0; i < nOp; i++ {
				ops.scr[i] = ldm.MustAlloc(slabOpNames[i], npsq)
			}
			for _, le := range slots {
				if le%sw.MeshDim != c.Col {
					continue
				}
				e := en.element(le)
				ops.dAlpha = e.DAlpha
				// The metric is fetched per owned element even when this
				// row holds zero levels: the element/column DMA schedule
				// is independent of the vertical split.
				c.DMA.Get(ops.dinv, e.DinvFlat)
				if k.needVec {
					c.DMA.Get(ops.dflat, e.DFlat)
				}
				c.DMA.Get(ops.metdet, e.Metdet)
				for lev := s; lev < s+vl; lev++ {
					o := lev * npsq
					for i := 0; i < k.nIn; i++ {
						c.DMA.Get(io.in[i], bind.in[i][le][o:o+npsq])
					}
					if k.rmw {
						for i := 0; i < k.nOut; i++ {
							c.DMA.Get(io.out[i], bind.out[i][le][o:o+npsq])
						}
					}
					k.body(&ops, &io)
					for i := 0; i < k.nOut; i++ {
						c.DMA.Put(bind.out[i][le][o:o+npsq], io.out[i])
					}
				}
			}
		})
	})
	return en.collectSplit(Athread, sub.Phase)
}
