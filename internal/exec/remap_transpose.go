package exec

import (
	"swcam/internal/dycore"
	"swcam/internal/sw"
)

// verticalRemapTransposed is the §7.5 variant of the Athread vertical
// remap: the axis switch from level-major storage to per-node columns is
// performed *inside the chip* with register communication, instead of
// through nlev fine-grained strided DMA descriptors per column.
//
// Decomposition (one element per CPE-mesh column, as in the other
// Athread kernels): CPE (r, j) first DMA-gets its Figure 2 level block —
// levels [r*vl, (r+1)*vl) x all 16 nodes — as ONE contiguous transfer
// per field. The eight CPEs of the mesh column then perform an
// all-to-all over the register fabric (XOR-phase schedule, so every
// phase is a disjoint pairing): after it, CPE (r, j) holds the complete
// nlev columns of nodes r and r+8, runs the column remap locally, and
// the inverse exchange + one contiguous DMA-put restores level-major
// layout.
//
// Results are identical to VerticalRemap(Athread,...) — same per-column
// arithmetic — but the architectural events differ sharply: DMA issues
// drop from O(nlev) per column to O(1) per field while register traffic
// grows, which is precisely the trade the paper built the transposition
// machinery to win. BenchmarkRemapTransposeAblation compares the two.
func (en *Engine) verticalRemapTransposed(h *dycore.HybridCoord, st *dycore.State) Cost {
	en.beginLaunch(Subset{})
	np, nlev, qsize := en.Np, en.Nlev, en.Qsize
	npsq := np * np
	vl := en.vlPerCPE()
	if (vl*2)%sw.VecWidth != 0 {
		panic("exec: transposed remap needs nlev/8 pairs in vector multiples")
	}

	en.runTilesCG(func(cg *sw.CoreGroup, lo, hi int) {
		wk := en.workerOf(cg)
		cg.Spawn(func(c *sw.CPE) {
			ldm := c.LDM
			rw := wk.cpeRWS[c.ID]
			s := c.Row * vl
			slab := vl * npsq

			tile := ldm.MustAlloc("tile", slab) // level-major: my levels x 16 nodes
			colA := ldm.MustAlloc("colA", nlev) // node c.Row's full column
			colB := ldm.MustAlloc("colB", nlev) // node c.Row+8's full column
			srcA := ldm.MustAlloc("srcA", nlev) // dp columns stay resident
			srcB := ldm.MustAlloc("srcB", nlev)
			refA := ldm.MustAlloc("refA", nlev)
			refB := ldm.MustAlloc("refB", nlev)
			out := ldm.MustAlloc("out", nlev)
			sendBuf := ldm.MustAlloc("send", vl*2)
			recvBuf := ldm.MustAlloc("recv", vl*2)

			// pack extracts my levels of nodes {n, n+8} from the tile.
			pack := func(n int, dst []float64) {
				for k := 0; k < vl; k++ {
					dst[2*k] = tile[k*npsq+n]
					dst[2*k+1] = tile[k*npsq+n+sw.MeshDim]
				}
			}
			unpack := func(n int, src []float64) {
				for k := 0; k < vl; k++ {
					tile[k*npsq+n] = src[2*k]
					tile[k*npsq+n+sw.MeshDim] = src[2*k+1]
				}
			}

			// toColumns: after the exchange, (colA, colB) hold the full
			// columns of nodes c.Row and c.Row+8.
			toColumns := func(ca, cb []float64) {
				// My own contribution.
				pack(c.Row, sendBuf)
				for k := 0; k < vl; k++ {
					ca[s+k] = sendBuf[2*k]
					cb[s+k] = sendBuf[2*k+1]
				}
				for phase := 1; phase < sw.MeshDim; phase++ {
					p := c.Row ^ phase
					pack(p, sendBuf) // partner's nodes, my levels
					c.ExchangeBlock(p, c.Col, sendBuf, recvBuf)
					for k := 0; k < vl; k++ {
						ca[p*vl+k] = recvBuf[2*k]
						cb[p*vl+k] = recvBuf[2*k+1]
					}
				}
			}
			// fromColumns is the inverse: redistribute (ca, cb) back into
			// the level-major tile.
			fromColumns := func(ca, cb []float64) {
				for k := 0; k < vl; k++ {
					sendBuf[2*k] = ca[s+k]
					sendBuf[2*k+1] = cb[s+k]
				}
				unpack(c.Row, sendBuf)
				for phase := 1; phase < sw.MeshDim; phase++ {
					p := c.Row ^ phase
					for k := 0; k < vl; k++ {
						sendBuf[2*k] = ca[p*vl+k]
						sendBuf[2*k+1] = cb[p*vl+k]
					}
					c.ExchangeBlock(p, c.Col, sendBuf, recvBuf)
					unpack(p, recvBuf)
				}
			}

			for blk := lo; blk+c.Col < hi; blk += sw.MeshDim {
				le := blk + c.Col

				// dp: one contiguous DMA for the whole level block, then the
				// in-fabric transpose.
				c.DMA.Get(tile, st.DP[le][s*npsq:s*npsq+slab])
				toColumns(srcA, srcB)
				psA, psB := dycore.PTop, dycore.PTop
				for k := 0; k < nlev; k++ {
					psA += srcA[k]
					psB += srcB[k]
				}
				c.CountFlops(int64(2 * nlev))
				h.ReferenceDP(psA, refA)
				h.ReferenceDP(psB, refB)
				c.CountFlops(int64(8 * nlev))

				remapField := func(f []float64, asMass bool) {
					c.DMA.Get(tile, f[s*npsq:s*npsq+slab])
					toColumns(colA, colB)
					doCol := func(col, src, ref []float64) {
						if asMass {
							for k := 0; k < nlev; k++ {
								col[k] /= src[k]
							}
							c.CountFlops(int64(nlev))
						}
						rw.RemapPPM(src, col, ref, out)
						c.CountFlops(int64(40 * nlev))
						if asMass {
							for k := 0; k < nlev; k++ {
								col[k] = out[k] * ref[k]
							}
							c.CountFlops(int64(nlev))
						} else {
							copy(col, out)
						}
					}
					doCol(colA, srcA, refA)
					doCol(colB, srcB, refB)
					fromColumns(colA, colB)
					c.DMA.Put(f[s*npsq:s*npsq+slab], tile)
				}
				remapField(st.U[le], false)
				remapField(st.V[le], false)
				remapField(st.T[le], false)
				for q := 0; q < qsize; q++ {
					remapField(st.QdpAt(le, q), true)
				}
				// dp itself moves to the reference grid.
				fromColumns(refA, refB)
				c.DMA.Put(st.DP[le][s*npsq:s*npsq+slab], tile)
			}
		})
	})
	return en.collect(Athread, 1)
}
