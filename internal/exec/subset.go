// Element-subset execution: the §7.6 boundary-first split. A kernel
// that precedes a DSS can run in two launches — the rank's boundary
// elements first (Open), then, while the halo exchange is in flight,
// the interior elements (Close) — instead of one launch over every
// element (Whole). The split composes with the intra-rank tiling layer
// and keeps both the computed state and the collected Cost records
// bit-identical to the unsplit kernel:
//
//   - State: the split kernels are element-local (each element reads
//     and writes only its own rows), and Open/Close cover disjoint
//     slot sets whose union is the rank, so the order of the two
//     launches cannot change any value.
//   - Element -> CPE assignment: work distribution is per element
//     (le % MeshDim selects the Athread mesh column; work-item index
//     % CPEsPerCG selects the OpenACC CPE), independent of tile and
//     launch boundaries, so every element is computed by the same
//     simulated CPE with the same arithmetic in every split.
//   - Cost: Open defers collection — serial analytic sums are parked
//     on the engine and core-group counters stay accumulated — and
//     Close performs the one merge, so sum/max reductions
//     (MaxCPEFlops, LDMPeak) and the launch count see the whole
//     kernel at once, exactly like the unsplit path.
//   - Per-launch setup DMA: Open replays tiles 1+ like the unsplit
//     path (its tile 0 accounts the hoisted setup fetch once); Close
//     replays every tile, so the setup traffic is accounted exactly
//     once across the pair. An empty Open subset still performs one
//     empty launch for the same reason.
package exec

import (
	"swcam/internal/sw"
)

// SplitPhase selects how a kernel invocation relates to the
// boundary/interior split of a DSS-preceding kernel.
type SplitPhase int

const (
	// Whole runs the kernel over every element in one launch (the
	// default; Subset zero value).
	Whole SplitPhase = iota
	// Open runs the boundary half: cost collection is deferred to the
	// matching Close on the same engine.
	Open
	// Close runs the interior half and collects the full kernel cost.
	Close
)

// Subset selects the elements a kernel invocation covers. The zero
// value (nil Sel, Whole phase) reproduces the unsplit kernel exactly.
type Subset struct {
	Sel   *ElemSubset
	Phase SplitPhase
}

// suffix is the kernel-name suffix for observability: split launches
// show up as separate KernelTable rows / trace spans.
func (s Subset) suffix() string {
	switch s.Phase {
	case Open:
		return ".boundary"
	case Close:
		return ".inner"
	}
	return ""
}

// ElemSubset is a compiled list of local element slots plus its tile
// decomposition over the engine's worker pool. Build one with
// Engine.CompileSubset; the engine re-tiles registered subsets whenever
// SetWorkers reshapes the pool.
type ElemSubset struct {
	slots []int
	tiles []tile // index ranges into slots, one tile per worker
}

// Slots returns the subset's local element slots (callers must not
// mutate the returned slice).
func (s *ElemSubset) Slots() []int { return s.slots }

func (s *ElemSubset) retile(workers int) {
	s.tiles = computeSubsetTiles(len(s.slots), workers)
}

// CompileSubset registers a slot list with the engine and returns its
// compiled form. The slots are copied; they need not be sorted or
// contiguous — the element -> CPE assignment is per element, so any
// slot list executes bit-identically to the same slots inside a Whole
// run.
func (en *Engine) CompileSubset(slots []int) *ElemSubset {
	s := &ElemSubset{slots: append([]int(nil), slots...)}
	s.retile(en.workers)
	en.subs = append(en.subs, s)
	return s
}

// computeSubsetTiles splits n slot indices into at most `workers`
// contiguous index ranges. Unlike the Whole-path tiles these need no
// MeshDim alignment: tiles partition an arbitrary slot list, and the
// per-element CPE assignment is independent of where tiles start.
// n == 0 still yields one empty tile so an empty subset performs
// exactly one (empty) launch — keeping the split's setup-DMA and
// launch accounting identical to the unsplit kernel.
func computeSubsetTiles(n, workers int) []tile {
	if n == 0 {
		return []tile{{0, 0}}
	}
	nt := workers
	if nt > n {
		nt = n
	}
	tiles := make([]tile, nt)
	base, rem := n/nt, n%nt
	lo := 0
	for i := range tiles {
		hi := lo + base
		if i < rem {
			hi++
		}
		tiles[i] = tile{lo, hi}
		lo = hi
	}
	return tiles
}

// sel resolves a Subset to its compiled slot list (nil = the whole
// rank).
func (en *Engine) sel(sub Subset) *ElemSubset {
	if sub.Sel != nil {
		return sub.Sel
	}
	return en.allSub
}

// beginLaunch enforces the Open/Close pairing at every kernel
// dispatch. A stale Open — a previous split aborted between its halves
// (a transport fault unwound the rank mid-overlap) — leaves parked
// serial sums and accumulated core-group counters that would poison
// the next collect; they are discarded here so a recovered rank starts
// its replayed step from clean accounting.
func (en *Engine) beginLaunch(sub Subset) {
	if sub.Phase == Close {
		if !en.splitPend {
			panic("exec: Close split phase without a preceding Open on this engine")
		}
		return
	}
	if en.splitPend {
		en.splitPend = false
		en.pendFlops, en.pendBytes = 0, 0
		for _, w := range en.pool {
			if w.cg != nil {
				w.cg.ResetCounters()
			}
		}
	}
}

// serialSplit folds a serial backend's analytic sums through the split
// accounting: Open parks them, Close reports the pair as one kernel.
func (en *Engine) serialSplit(b Backend, ph SplitPhase, flops, bytes int64) Cost {
	switch ph {
	case Open:
		en.splitPend = true
		en.pendFlops, en.pendBytes = flops, bytes
		return Cost{Backend: b}
	case Close:
		en.splitPend = false
		flops += en.pendFlops
		bytes += en.pendBytes
		en.pendFlops, en.pendBytes = 0, 0
		return serialCost(b, flops, bytes)
	}
	return serialCost(b, flops, bytes)
}

// collectSplit folds a CPE backend's counter collection through the
// split accounting: Open leaves the per-worker core-group counters
// accumulated (no collect, no reset), Close merges both halves in one
// collect — so MaxCPEFlops and LDMPeak reduce over per-CPE totals of
// the whole kernel and the launch count stays 1, exactly as unsplit.
func (en *Engine) collectSplit(b Backend, ph SplitPhase) Cost {
	switch ph {
	case Open:
		en.splitPend = true
		return Cost{Backend: b}
	case Close:
		en.splitPend = false
		return en.collect(b, 1)
	}
	return en.collect(b, 1)
}

// runTilesSerialOn is runTilesSerial over a compiled subset: fn
// receives the tile's slice of the subset's slot list instead of a
// contiguous [lo, hi) range.
func (en *Engine) runTilesSerialOn(sel *ElemSubset, fn func(w *dynWorker, slots []int, p *serialPartial)) (flops, bytes int64) {
	tiles := sel.tiles
	for i := range en.partials {
		en.partials[i] = serialPartial{}
	}
	if len(tiles) == 1 {
		sp, done := en.tileObsStart(0)
		fn(en.pool[0], sel.slots[tiles[0].Lo:tiles[0].Hi], &en.partials[0])
		en.tileObsEnd(0, sp, done)
		return en.partials[0].flops, en.partials[0].bytes
	}
	en.curSerialOnFn = fn
	en.curSel = sel
	en.tileWG.Add(len(tiles))
	for i := 1; i < len(tiles); i++ {
		go en.serialTileOn(i)
	}
	en.serialTileOn(0)
	en.tileWG.Wait()
	en.curSerialOnFn = nil
	en.curSel = nil
	en.rethrowTilePanic()
	for i := range tiles {
		flops += en.partials[i].flops
		bytes += en.partials[i].bytes
	}
	return flops, bytes
}

func (en *Engine) serialTileOn(i int) {
	defer en.tileWG.Done()
	defer func() { en.tilePanics[i] = recover() }()
	sp, done := en.tileObsStart(i)
	t := en.curSel.tiles[i]
	en.curSerialOnFn(en.pool[i], en.curSel.slots[t.Lo:t.Hi], &en.partials[i])
	en.tileObsEnd(i, sp, done)
}

// runTilesCGOn is runTilesCG over a compiled subset. replayAll mutes
// the hoisted per-launch setup fetch on every tile (the Close half of
// a split: the Open half already accounted it); otherwise only tiles
// 1+ replay, like the unsplit path.
func (en *Engine) runTilesCGOn(sel *ElemSubset, replayAll bool, fn func(cg *sw.CoreGroup, slots []int)) {
	tiles := sel.tiles
	for i := range tiles {
		en.pool[i].ensureCG()
		en.pool[i].cg.SetReplaySetup(replayAll || i != 0)
	}
	if len(tiles) == 1 {
		sp, done := en.tileObsStart(0)
		fn(en.pool[0].cg, sel.slots[tiles[0].Lo:tiles[0].Hi])
		en.tileObsEnd(0, sp, done)
		return
	}
	en.curCGOnFn = fn
	en.curSel = sel
	en.tileWG.Add(len(tiles))
	for i := 1; i < len(tiles); i++ {
		go en.cgTileOn(i)
	}
	en.cgTileOn(0)
	en.tileWG.Wait()
	en.curCGOnFn = nil
	en.curSel = nil
	en.rethrowTilePanic()
}

func (en *Engine) cgTileOn(i int) {
	defer en.tileWG.Done()
	defer func() { en.tilePanics[i] = recover() }()
	sp, done := en.tileObsStart(i)
	t := en.curSel.tiles[i]
	en.curCGOnFn(en.pool[i].cg, en.curSel.slots[t.Lo:t.Hi])
	en.tileObsEnd(i, sp, done)
}
