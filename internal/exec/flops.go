package exec

// Analytic double-precision operation counts for the dycore kernels, per
// element, derived by counting the arithmetic in the dycore slab
// operators (the paper's first flop-measurement method, §8.1.1: manual
// instruction counting). The CPE backends count the same formulas as
// they execute, so serial and parallel totals agree by construction.

// gradFlops: covariant derivative (np*np nodes x 2 axes x np MACs) plus
// the 2x2 transform (6 ops) and radius scale (2 ops) per node.
func gradFlops(np int) int64 {
	npsq := int64(np * np)
	return npsq*int64(4*np) + npsq*8
}

// divFlops: contravariant transform + metdet scale (8 ops), two
// derivative dots (4*np), combine and normalize (4 ops) per node.
func divFlops(np int) int64 {
	npsq := int64(np * np)
	return npsq*8 + npsq*int64(4*np) + npsq*4
}

// vortFlops mirrors divFlops (covariant transform + curl combine).
func vortFlops(np int) int64 { return divFlops(np) }

// lapFlops = gradient + divergence.
func lapFlops(np int) int64 { return gradFlops(np) + divFlops(np) }

// vecLapFlops = div + vort + 2 gradients + combine (2 ops/node).
func vecLapFlops(np int) int64 {
	return divFlops(np) + vortFlops(np) + 2*gradFlops(np) + int64(2*np*np)
}

// axpyFlops: the damped-update primitive (dst -= coef*src) — one
// multiply and one subtract per node, with the coefficient product
// hoisted to launch scope and therefore NOT part of the per-point
// work. This is THE attribution for the hyperviscosity update; every
// backend charges it via the slabOps primitive (kernel.go), which is
// what fixed the historical 12·np² (OpenACC) vs 8·np² (Athread) vs
// 16·np² (serial analytic) divergence for the 4-field update.
func axpyFlops(np int) int64 { return int64(2 * np * np) }

// eulerStageFlops: per element per tracer per level — flux build
// (2 muls/node), divergence, update (2 ops/node).
func eulerStageFlops(np, nlev int) int64 {
	perLevel := int64(2*np*np) + divFlops(np) + int64(2*np*np)
	return perLevel * int64(nlev)
}

// rhsFlops: per element — scans (pressure ~3/level/node, geopotential
// ~5, omega ~2), mass-flux divergence, three gradients + vorticity per
// level, pointwise tendency algebra (~30 ops/node/level), apply (8).
func rhsFlops(np, nlev int) int64 {
	npsq := int64(np * np)
	nl := int64(nlev)
	scans := npsq * nl * (3 + 5 + 2)
	perLevel := int64(2)*npsq + divFlops(np) + 3*gradFlops(np) + vortFlops(np) + npsq*30
	apply := npsq * nl * 8
	return scans + perLevel*nl + apply
}

// The dissipation-kernel totals are no longer written out by hand:
// they are derived by running each kernel's single-source body
// (kernel.go) against the counting primitives above, so the analytic
// serial count, the OpenACC per-primitive charges, and this model
// formula cannot drift apart — there is exactly one body to count.

// hypervis1Flops: first Laplacian pass per element (vector + 2
// scalars), derived from hypervisDP1Spec.
func hypervis1Flops(np, nlev int) int64 {
	return hypervisDP1Spec.levelFlops(np) * int64(nlev)
}

// hypervis2Flops: second pass + update per element (vector + 2 scalar
// Laplacians + 4 axpy updates), derived from hypervisDP2Spec. The
// historical hand-written formula charged 16·np²/level for the update;
// the primitive-derived count is 4·axpyFlops = 8·np², matching what
// the CPE backends execute.
func hypervis2Flops(np, nlev int) int64 {
	return hypervisDP2Spec.levelFlops(np) * int64(nlev)
}

// biharmonicFlops: one scalar Laplacian pass on dp3d, derived from
// biharmonicDP3DSpec.
func biharmonicFlops(np, nlev int) int64 {
	return biharmonicDP3DSpec.levelFlops(np) * int64(nlev)
}

// remapFlops: per element — PPM reconstruction ~25 ops/cell, cumulative
// and interpolation ~15 ops/cell, per remapped field (3 + qsize), per
// node column.
func remapFlops(np, nlev, qsize int) int64 {
	perColumnField := int64(nlev) * 40
	return int64(np*np) * perColumnField * int64(3+qsize)
}

// Compulsory main-memory traffic (bytes) per element for the serial
// backends: each input read once, each output written once.
func eulerBytes(np, nlev, qsize int) int64 {
	npsq := int64(np * np)
	nl := int64(nlev)
	// read u,v + read/write qdp per tracer.
	return 8 * (2*npsq*nl + int64(qsize)*2*npsq*nl)
}

func rhsBytes(np, nlev int) int64 {
	npsq := int64(np * np)
	nl := int64(nlev)
	// read u,v,T,dp + phis + base(4) + write out(4).
	return 8 * (npsq*nl*4 + npsq + npsq*nl*4 + npsq*nl*4)
}

func hypervisBytes(np, nlev int) int64 {
	npsq := int64(np * np)
	nl := int64(nlev)
	// read 4 fields, write 4 laplacians (pass 1) or update 4 (pass 2).
	return 8 * (npsq * nl * 8)
}

func remapBytes(np, nlev, qsize int) int64 {
	npsq := int64(np * np)
	nl := int64(nlev)
	return 8 * (npsq * nl * 2 * int64(4+qsize))
}

// Exported aliases for the analytic per-element operation counts, used
// by the internal/perf machine model to predict kernel times at scales
// the functional simulator cannot run.

// EulerStageFlops returns flops per element per tracer for one
// euler_step stage.
func EulerStageFlops(np, nlev int) int64 { return eulerStageFlops(np, nlev) }

// RHSFlops returns flops per element for compute_and_apply_rhs.
func RHSFlops(np, nlev int) int64 { return rhsFlops(np, nlev) }

// Hypervis1Flops returns flops per element for the first Laplacian pass.
func Hypervis1Flops(np, nlev int) int64 { return hypervis1Flops(np, nlev) }

// Hypervis2Flops returns flops per element for the second pass + update.
func Hypervis2Flops(np, nlev int) int64 { return hypervis2Flops(np, nlev) }

// BiharmonicFlops returns flops per element for one biharmonic pass.
func BiharmonicFlops(np, nlev int) int64 { return biharmonicFlops(np, nlev) }

// RemapFlops returns flops per element for the vertical remap.
func RemapFlops(np, nlev, qsize int) int64 { return remapFlops(np, nlev, qsize) }

// EulerBytes returns compulsory bytes per element for one euler stage.
func EulerBytes(np, nlev, qsize int) int64 { return eulerBytes(np, nlev, qsize) }

// RHSBytes returns compulsory bytes per element for compute_and_apply_rhs.
func RHSBytes(np, nlev int) int64 { return rhsBytes(np, nlev) }

// HypervisBytes returns compulsory bytes per element per hypervis pass.
func HypervisBytes(np, nlev int) int64 { return hypervisBytes(np, nlev) }

// RemapBytes returns compulsory bytes per element for the remap.
func RemapBytes(np, nlev, qsize int) int64 { return remapBytes(np, nlev, qsize) }
