package exec

import (
	"testing"

	"swcam/internal/mesh"
	"swcam/internal/sw"
)

// The adaptive heuristic: workers scale with MeshDim-aligned blocks,
// floor at the serial path, ceiling at the explicit cap.
func TestAdaptiveWorkersTable(t *testing.T) {
	bs := sw.MeshDim * minBlocksPerWorker // elements per worker at the floor
	cases := []struct {
		nelems, max, want int
	}{
		{0, 8, 1},         // empty rank: serial
		{1, 8, 1},         // one element: serial
		{bs - 1, 8, 1},    // just under one worker's quota: serial
		{bs, 8, 1},        // exactly one quota: still serial (w = blocks/quota = 1)
		{2 * bs, 8, 2},    // two quotas: two workers
		{4 * bs, 8, 4},    // scales linearly while under the cap
		{100 * bs, 8, 8},  // capped by max
		{100 * bs, 3, 3},  // arbitrary cap respected
		{2 * bs, 1, 1},    // cap of 1 forces serial regardless of size
		{3*bs + 17, 8, 3}, // partial blocks round the element count up, workers down
	}
	for _, tc := range cases {
		if got := AdaptiveWorkers(tc.nelems, tc.max); got != tc.want {
			t.Errorf("AdaptiveWorkers(%d, %d) = %d, want %d", tc.nelems, tc.max, got, tc.want)
		}
	}
	// max <= 0 defers to the machine default but never exceeds it.
	if got := AdaptiveWorkers(1000*bs, 0); got != DefaultDynWorkers() {
		t.Errorf("AdaptiveWorkers(huge, 0) = %d, want DefaultDynWorkers %d", got, DefaultDynWorkers())
	}
}

// SetWorkersAuto resolves against the engine's own element count: a
// tiny rank lands on the inline serial path (1 worker, 1 tile), and the
// resolved count always matches the heuristic.
func TestSetWorkersAutoResolution(t *testing.T) {
	m := mesh.New(2, 4) // 24 elements
	elems := make([]int, m.NElems())
	for i := range elems {
		elems[i] = i
	}
	en := NewEngine(m, elems, 8, 1)
	en.SetWorkersAuto()
	want := AdaptiveWorkers(len(elems), 0)
	if en.Workers() != want {
		t.Fatalf("auto workers = %d, want %d", en.Workers(), want)
	}
	if want == 1 && en.Tiles() != 1 {
		t.Fatalf("serial downshift should coarsen to one tile, got %d", en.Tiles())
	}

	// A subset of the rank small enough for the serial floor.
	small := NewEngine(m, elems[:4], 8, 1)
	small.SetWorkersAuto()
	if small.Workers() != 1 {
		t.Fatalf("4-element rank resolved to %d workers, want 1", small.Workers())
	}
}
