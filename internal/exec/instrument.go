// Instrumented entry points for the six Table-1 kernels. Every public
// kernel method funnels through kernelProbe, which is a single nil test
// when observation is off — the default — and records a wall-clock span
// plus the kernel's architectural events when an obs.Tracer /
// obs.KernelTable is attached. Keeping the probe here, above the
// backend dispatch, means one instrumentation point covers all four
// execution strategies per kernel.
package exec

import (
	"fmt"
	"time"

	"swcam/internal/dycore"
	"swcam/internal/obs"
)

// Instrument attaches the observability subsystem to this engine: spans
// go to tr (pid = rank; per-tile spans on tid = worker slot + 1),
// per-kernel attribution to kt, and per-worker utilization counters to
// reg (exec.dyn.worker_busy_ns.<slot>, plus the exec.dyn.workers and
// exec.dyn.tiles gauges). Any sink may be nil. Engines are instrumented
// per rank, so concurrent ranks record to shared, goroutine-safe sinks
// without coordination here.
func (en *Engine) Instrument(tr *obs.Tracer, kt *obs.KernelTable, reg *obs.Registry, rank int) {
	en.obsTr, en.obsKT, en.obsReg, en.obsRank = tr, kt, reg, rank
	en.bindObsRegistry()
}

// bindObsRegistry (re)publishes the pool-shape gauges and binds the
// per-worker busy counters; called from Instrument and again whenever
// SetWorkers reshapes the pool.
func (en *Engine) bindObsRegistry() {
	en.busyNs = nil
	if en.obsReg == nil {
		return
	}
	en.obsReg.Gauge("exec.dyn.workers").Set(float64(en.workers))
	en.obsReg.Gauge("exec.dyn.tiles").Set(float64(len(en.tilesC)))
	// One busy counter per worker: subset launches (subset.go) can run
	// more tiles than the aligned Whole decomposition, up to pool size.
	en.busyNs = make([]*obs.Counter, en.workers)
	for i := range en.busyNs {
		en.busyNs[i] = en.obsReg.Counter(fmt.Sprintf("exec.dyn.worker_busy_ns.%d", i))
	}
}

// obsNoop avoids a closure allocation on the uninstrumented path.
var obsNoop = func(Cost) {}

// kernelProbe opens a span and returns the completion func the kernel
// calls with its cost record. It also publishes the kernel name and
// backend for the per-tile worker spans (kernel methods run one at a
// time per engine, and the fields are written before any tile goroutine
// launches, so tiles read them race-free).
func (en *Engine) kernelProbe(name string, b Backend) func(Cost) {
	if en.obsTr == nil && en.obsKT == nil {
		return obsNoop
	}
	en.curKernel, en.curBackend = "exec."+name, b.String()
	sp := en.obsTr.Begin(en.obsRank, "exec."+name, b.String())
	kt := en.obsKT
	start := time.Now()
	return func(c Cost) {
		ns := time.Since(start).Nanoseconds()
		sp.End()
		kt.Record(name, b.String(), ns, c.Flops(), c.MemBytes, c.DMAOps, c.RegMsgs)
	}
}

// ComputeAndApplyRHS runs the compute_and_apply_rhs kernel (Table 1 row
// 1) under the chosen backend: out = base + dt * RHS(cur) for every
// local element. The caller applies the DSS afterwards.
func (en *Engine) ComputeAndApplyRHS(b Backend, cur, base, out *dycore.State, dt float64) Cost {
	return en.ComputeAndApplyRHSOn(Subset{}, b, cur, base, out, dt)
}

// ComputeAndApplyRHSOn is ComputeAndApplyRHS restricted to an element
// subset, with split-phase cost accounting (subset.go). Split launches
// record as "<kernel>.boundary" / "<kernel>.inner" KernelTable rows;
// the Open row carries wall time only, the Close row the whole
// kernel's deferred cost.
func (en *Engine) ComputeAndApplyRHSOn(sub Subset, b Backend, cur, base, out *dycore.State, dt float64) Cost {
	done := en.kernelProbe("compute_and_apply_rhs"+sub.suffix(), b)
	c := en.computeAndApplyRHS(sub, b, cur, base, out, dt)
	done(c)
	return c
}

// EulerStep runs one explicit euler_step stage (Table 1 row 2: all
// tracers, all local elements) under the chosen backend; qdp is
// advanced in place, exactly like the dycore serial path. The caller
// handles DSS/limiting between stages.
func (en *Engine) EulerStep(b Backend, st *dycore.State, dt float64) Cost {
	return en.EulerStepOn(Subset{}, b, st, dt)
}

// EulerStepOn is EulerStep restricted to an element subset, with
// split-phase cost accounting (subset.go).
func (en *Engine) EulerStepOn(sub Subset, b Backend, st *dycore.State, dt float64) Cost {
	done := en.kernelProbe("euler_step"+sub.suffix(), b)
	c := en.eulerStep(sub, b, st, dt)
	done(c)
	return c
}

// VerticalRemap runs the vertical_remap kernel (Table 1 row 3) under
// the chosen backend, remapping every local element's state back to the
// reference hybrid grid.
func (en *Engine) VerticalRemap(b Backend, h *dycore.HybridCoord, st *dycore.State) Cost {
	done := en.kernelProbe("vertical_remap", b)
	c := en.verticalRemap(b, h, st)
	done(c)
	return c
}

// HypervisDP1 runs the first Laplacian pass (Table 1 row 4) under the
// chosen backend: lap* = laplace(state fields), element-local. The
// caller DSSes the outputs before the second pass.
func (en *Engine) HypervisDP1(b Backend, st *dycore.State, lapU, lapV, lapT, lapDP [][]float64) Cost {
	return en.HypervisDP1On(Subset{}, b, st, lapU, lapV, lapT, lapDP)
}

// HypervisDP1On is HypervisDP1 restricted to an element subset, with
// split-phase cost accounting (subset.go).
func (en *Engine) HypervisDP1On(sub Subset, b Backend, st *dycore.State, lapU, lapV, lapT, lapDP [][]float64) Cost {
	done := en.kernelProbe("hypervis_dp1"+sub.suffix(), b)
	c := en.hypervisDP1(sub, b, st, lapU, lapV, lapT, lapDP)
	done(c)
	return c
}

// HypervisDP2 runs the second pass and applies the update (Table 1 row
// 5): field -= dt*nu*laplace(DSS'd first pass).
func (en *Engine) HypervisDP2(b Backend, lapU, lapV, lapT, lapDP [][]float64,
	st *dycore.State, dt, nuV, nuS float64) Cost {
	return en.HypervisDP2On(Subset{}, b, lapU, lapV, lapT, lapDP, st, dt, nuV, nuS)
}

// HypervisDP2On is HypervisDP2 restricted to an element subset, with
// split-phase cost accounting (subset.go).
func (en *Engine) HypervisDP2On(sub Subset, b Backend, lapU, lapV, lapT, lapDP [][]float64,
	st *dycore.State, dt, nuV, nuS float64) Cost {
	done := en.kernelProbe("hypervis_dp2"+sub.suffix(), b)
	c := en.hypervisDP2(sub, b, lapU, lapV, lapT, lapDP, st, dt, nuV, nuS)
	done(c)
	return c
}

// BiharmonicDP3D runs the weak biharmonic of dp3d (Table 1 row 6): one
// Laplacian pass per call (the caller DSSes and calls again for grad^4).
func (en *Engine) BiharmonicDP3D(b Backend, in, out [][]float64) Cost {
	done := en.kernelProbe("biharmonic_dp3d", b)
	c := en.biharmonicDP3D(b, in, out)
	done(c)
	return c
}

// VerticalRemapTransposed is the §7.5 in-fabric transposition variant
// of the Athread vertical remap (see remap_transpose.go for the full
// design notes); instrumented like the Table-1 kernels so the ablation
// shows up in traces too.
func (en *Engine) VerticalRemapTransposed(h *dycore.HybridCoord, st *dycore.State) Cost {
	done := en.kernelProbe("vertical_remap_transposed", Athread)
	c := en.verticalRemapTransposed(h, st)
	done(c)
	return c
}
