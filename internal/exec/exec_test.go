package exec

import (
	"math"
	"math/rand"
	"testing"

	"swcam/internal/dycore"
	"swcam/internal/mesh"
	"swcam/internal/sw"
)

// testSetup builds a mesh, an engine over all elements, and a realistic
// random state (baroclinic-wave-like amplitudes).
func testSetup(t *testing.T, ne, nlev, qsize int) (*mesh.Mesh, *Engine, *dycore.State) {
	t.Helper()
	m := mesh.New(ne, 4)
	elems := make([]int, m.NElems())
	for i := range elems {
		elems[i] = i
	}
	en := NewEngine(m, elems, nlev, qsize)

	cfg := dycore.DefaultConfig(ne)
	cfg.Nlev = nlev
	cfg.Qsize = qsize
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitBaroclinicWave(st)
	// Give tracers structure.
	rng := rand.New(rand.NewSource(1))
	for ei := range st.Qdp {
		for i := range st.Qdp[ei] {
			st.Qdp[ei][i] = rng.Float64() * 10
		}
	}
	return m, en, st
}

func relDiff(a, b [][]float64) float64 {
	max, scale := 0.0, 0.0
	for i := range a {
		for k := range a[i] {
			d := math.Abs(a[i][k] - b[i][k])
			if d > max {
				max = d
			}
			if s := math.Abs(a[i][k]); s > scale {
				scale = s
			}
		}
	}
	if scale == 0 {
		return max
	}
	return max / scale
}

func TestEulerBackendsEquivalent(t *testing.T) {
	_, en, st0 := testSetup(t, 2, 8, 3)
	const dt = 100.0

	results := map[Backend]*dycore.State{}
	for _, b := range Backends {
		st := st0.Clone()
		cost := en.EulerStep(b, st, dt)
		if cost.Flops() == 0 {
			t.Fatalf("%v: no flops accounted", b)
		}
		results[b] = st
	}
	ref := results[Intel]
	for _, b := range []Backend{MPE, OpenACC, Athread} {
		if d := relDiff(ref.Qdp, results[b].Qdp); d > 1e-13 {
			t.Errorf("%v euler differs from Intel by %g", b, d)
		}
	}
	// The advance must actually change the tracers.
	if d := relDiff(ref.Qdp, st0.Qdp); d == 0 {
		t.Fatal("euler step was a no-op")
	}
}

// The §7.3 claim: the Athread rewrite (Algorithm 2) eliminates the
// per-tracer re-read of the non-tracer arrays that Algorithm 1's
// inside-the-q-loop copyin forces, cutting total transfer volume (the
// paper reports ~10% with CAM's full set of non-tracer dynamics arrays;
// our miniature kernel carries only u and v as non-tracer inputs, so the
// asymptotic ratio is higher — see EXPERIMENTS.md — but the structure is
// the same: the ratio falls as tracers are added, because Athread's
// velocity traffic is constant in qsize while OpenACC's is linear).
func TestEulerTrafficReduction(t *testing.T) {
	ratioAt := func(qsize int) float64 {
		_, en, st0 := testSetup(t, 2, 16, qsize)
		accCost := en.EulerStep(OpenACC, st0.Clone(), 100)
		athCost := en.EulerStep(Athread, st0.Clone(), 100)
		if accCost.MemBytes == 0 || athCost.MemBytes == 0 {
			t.Fatal("no DMA traffic accounted")
		}
		if athCost.FlopsVector == 0 {
			t.Error("Athread euler retired no vector flops")
		}
		if accCost.FlopsVector != 0 {
			t.Error("OpenACC euler should not vectorize")
		}
		return float64(athCost.MemBytes) / float64(accCost.MemBytes)
	}
	r2 := ratioAt(2)
	r8 := ratioAt(8)
	if r8 >= 1 {
		t.Errorf("Athread euler moves more data than OpenACC (ratio %.3f)", r8)
	}
	if r8 >= r2 {
		t.Errorf("traffic ratio does not improve with tracer count: q=2 %.3f, q=8 %.3f", r2, r8)
	}
	if r8 > 0.65 {
		t.Errorf("Athread/OpenACC euler traffic ratio = %.3f at qsize=8, want < 0.65", r8)
	}
}

func TestRHSBackendsEquivalent(t *testing.T) {
	_, en, st0 := testSetup(t, 2, 8, 0)
	const dt = 60.0
	results := map[Backend]*dycore.State{}
	for _, b := range Backends {
		cur := st0.Clone()
		out := st0.Clone()
		cost := en.ComputeAndApplyRHS(b, cur, cur, out, dt)
		if cost.Flops() == 0 {
			t.Fatalf("%v: no flops accounted", b)
		}
		results[b] = out
	}
	ref := results[Intel]
	// MPE and OpenACC recompute the serial scans: bitwise identical.
	for _, b := range []Backend{MPE, OpenACC} {
		for _, f := range [][2][][]float64{
			{ref.U, results[b].U}, {ref.V, results[b].V},
			{ref.T, results[b].T}, {ref.DP, results[b].DP},
		} {
			if d := relDiff(f[0], f[1]); d != 0 {
				t.Errorf("%v rhs differs from Intel by %g (want bitwise)", b, d)
			}
		}
	}
	// Athread regroups the vertical scans across CPEs: rounding-level
	// differences only.
	b := Athread
	for name, f := range map[string][2][][]float64{
		"U": {ref.U, results[b].U}, "V": {ref.V, results[b].V},
		"T": {ref.T, results[b].T}, "DP": {ref.DP, results[b].DP},
	} {
		if d := relDiff(f[0], f[1]); d > 1e-12 {
			t.Errorf("Athread rhs %s differs from Intel by %g", name, d)
		}
	}
	// Athread must use register communication for the scans.
	// (Cost collected above; rerun to inspect.)
	cur := st0.Clone()
	out := st0.Clone()
	cost := en.ComputeAndApplyRHS(Athread, cur, cur, out, dt)
	if cost.RegMsgs == 0 {
		t.Error("Athread rhs used no register communication")
	}
}

// The OpenACC rhs carries the O(nlev) redundancy of dependency-blind
// level parallelism: its flop count must exceed the serial kernel's by a
// factor that grows with nlev — the root cause of it losing to a single
// Intel core in Table 1.
func TestRHSOpenACCRedundancy(t *testing.T) {
	_, en, st0 := testSetup(t, 2, 16, 0)
	cur := st0.Clone()
	out := st0.Clone()
	serial := en.ComputeAndApplyRHS(Intel, cur, cur, out, 60)
	cur2 := st0.Clone()
	out2 := st0.Clone()
	acc := en.ComputeAndApplyRHS(OpenACC, cur2, cur2, out2, 60)
	if acc.Flops() < 2*serial.Flops() {
		t.Errorf("OpenACC rhs flops %d not >> serial %d: redundancy not modeled",
			acc.Flops(), serial.Flops())
	}
	cur3 := st0.Clone()
	out3 := st0.Clone()
	ath := en.ComputeAndApplyRHS(Athread, cur3, cur3, out3, 60)
	// The Athread redesign removes the redundancy: within 2x of serial.
	if ath.Flops() > 2*serial.Flops() {
		t.Errorf("Athread rhs flops %d vs serial %d: scan parallelization missing",
			ath.Flops(), serial.Flops())
	}
}

func TestHypervisBackendsEquivalent(t *testing.T) {
	m, en, st0 := testSetup(t, 2, 8, 0)
	const (
		dt  = 60.0
		nuV = 1e15
		nuS = 1e15
	)
	npsq := m.Np * m.Np
	allocAll := func() [][]float64 {
		f := make([][]float64, m.NElems())
		for i := range f {
			f[i] = make([]float64, 8*npsq)
		}
		return f
	}
	type result struct {
		st             *dycore.State
		lu, lv, lt, lp [][]float64
	}
	results := map[Backend]result{}
	for _, b := range Backends {
		st := st0.Clone()
		lu, lv, lt, lp := allocAll(), allocAll(), allocAll(), allocAll()
		c1 := en.HypervisDP1(b, st, lu, lv, lt, lp)
		c2 := en.HypervisDP2(b, lu, lv, lt, lp, st, dt, nuV, nuS)
		if c1.Flops() == 0 || c2.Flops() == 0 {
			t.Fatalf("%v: no flops accounted", b)
		}
		results[b] = result{st, lu, lv, lt, lp}
	}
	ref := results[Intel]
	for _, b := range []Backend{MPE, OpenACC, Athread} {
		r := results[b]
		if d := relDiff(ref.lu, r.lu); d > 1e-13 {
			t.Errorf("%v hypervis pass1 lapU differs by %g", b, d)
		}
		if d := relDiff(ref.st.U, r.st.U); d > 1e-13 {
			t.Errorf("%v hypervis update U differs by %g", b, d)
		}
		if d := relDiff(ref.st.T, r.st.T); d > 1e-13 {
			t.Errorf("%v hypervis update T differs by %g", b, d)
		}
	}
}

func TestBiharmonicBackendsEquivalent(t *testing.T) {
	m, en, st0 := testSetup(t, 2, 8, 0)
	npsq := m.Np * m.Np
	out := map[Backend][][]float64{}
	for _, b := range Backends {
		o := make([][]float64, m.NElems())
		for i := range o {
			o[i] = make([]float64, 8*npsq)
		}
		if cost := en.BiharmonicDP3D(b, st0.DP, o); cost.Flops() == 0 {
			t.Fatalf("%v: no flops", b)
		}
		out[b] = o
	}
	for _, b := range []Backend{MPE, OpenACC, Athread} {
		if d := relDiff(out[Intel], out[b]); d > 1e-13 {
			t.Errorf("%v biharmonic differs by %g", b, d)
		}
	}
}

func TestRemapBackendsEquivalent(t *testing.T) {
	_, en, st0 := testSetup(t, 2, 8, 2)
	h := dycore.NewHybridCoord(8)
	// Deform dp so the remap has work to do.
	for ei := range st0.DP {
		for i := range st0.DP[ei] {
			st0.DP[ei][i] *= 1 + 0.05*math.Sin(float64(i))
		}
	}
	results := map[Backend]*dycore.State{}
	for _, b := range Backends {
		st := st0.Clone()
		if cost := en.VerticalRemap(b, h, st); cost.Flops() == 0 {
			t.Fatalf("%v: no flops", b)
		}
		results[b] = st
	}
	ref := results[Intel]
	for _, b := range []Backend{MPE, OpenACC, Athread} {
		r := results[b]
		for name, f := range map[string][2][][]float64{
			"U": {ref.U, r.U}, "T": {ref.T, r.T},
			"DP": {ref.DP, r.DP}, "Qdp": {ref.Qdp, r.Qdp},
		} {
			if d := relDiff(f[0], f[1]); d != 0 {
				t.Errorf("%v remap %s differs by %g (want bitwise: same column order)", b, name, d)
			}
		}
	}
}

// LDM discipline: every CPE backend must fit the 64 KB scratchpad at the
// paper's dycore dimensions (nlev=128). Spawn panics on overflow, so
// completing is the assertion; also check the recorded peak.
func TestKernelsFitLDMAtNlev128(t *testing.T) {
	if testing.Short() {
		t.Skip("nlev=128 element set is slow in -short mode")
	}
	m := mesh.New(1, 4) // 6 elements suffice
	elems := []int{0, 1, 2, 3, 4, 5}
	en := NewEngine(m, elems, 128, 4)
	cfg := dycore.DefaultConfig(1)
	cfg.Nlev = 128
	cfg.Qsize = 4
	cfg.Ne = 1
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitBaroclinicWave(st)

	cost := en.EulerStep(Athread, st.Clone(), 10)
	if cost.LDMPeak > sw.LDMBytes {
		t.Errorf("euler athread LDM peak %d exceeds 64 KB", cost.LDMPeak)
	}
	out := st.Clone()
	cost = en.ComputeAndApplyRHS(Athread, st, st, out, 10)
	if cost.LDMPeak > sw.LDMBytes {
		t.Errorf("rhs athread LDM peak %d exceeds 64 KB", cost.LDMPeak)
	}
	cost = en.ComputeAndApplyRHS(OpenACC, st, st, out, 10)
	if cost.LDMPeak > sw.LDMBytes {
		t.Errorf("rhs openacc LDM peak %d exceeds 64 KB", cost.LDMPeak)
	}
	h := dycore.NewHybridCoord(128)
	cost = en.VerticalRemap(Athread, h, st.Clone())
	if cost.LDMPeak > sw.LDMBytes {
		t.Errorf("remap athread LDM peak %d exceeds 64 KB", cost.LDMPeak)
	}
}

func TestVecOpsMatchScalarSlabs(t *testing.T) {
	m := mesh.New(2, 4)
	e := m.Elements[7]
	np := 4
	npsq := np * np
	rng := rand.New(rand.NewSource(9))
	u := make([]float64, npsq)
	v := make([]float64, npsq)
	for i := range u {
		u[i] = rng.NormFloat64()
		v[i] = rng.NormFloat64()
	}
	divS := make([]float64, npsq)
	s1 := make([]float64, npsq)
	s2 := make([]float64, npsq)
	dycore.DivergenceSlab(m.DerivFlat, e.DinvFlat, e.Metdet, e.DAlpha, np, u, v, divS, s1, s2)

	divV := make([]float64, npsq)
	cg := sw.NewCoreGroup(0)
	cg.Spawn(func(c *sw.CPE) {
		if c.ID != 0 {
			return
		}
		g1 := c.LDM.MustAlloc("g1", npsq)
		g2 := c.LDM.MustAlloc("g2", npsq)
		divergenceSlabVec4(c, m.DerivFlat, e.DinvFlat, e.Metdet, e.DAlpha, u, v, divV, g1, g2)
	})
	for n := 0; n < npsq; n++ {
		if divS[n] != divV[n] {
			t.Fatalf("vectorized divergence differs at node %d: %v vs %v", n, divS[n], divV[n])
		}
	}

	// Gradient and vorticity too.
	gxS := make([]float64, npsq)
	gyS := make([]float64, npsq)
	dycore.GradientSlab(m.DerivFlat, e.DinvFlat, e.DAlpha, np, u, gxS, gyS, s1, s2)
	gxV := make([]float64, npsq)
	gyV := make([]float64, npsq)
	vortS := make([]float64, npsq)
	dycore.VorticitySlab(m.DerivFlat, e.DFlat, e.Metdet, e.DAlpha, np, u, v, vortS, s1, s2)
	vortV := make([]float64, npsq)
	cg.Spawn(func(c *sw.CPE) {
		if c.ID != 0 {
			return
		}
		g1 := c.LDM.MustAlloc("g1", npsq)
		g2 := c.LDM.MustAlloc("g2", npsq)
		gradientSlabVec4(c, m.DerivFlat, e.DinvFlat, e.DAlpha, u, gxV, gyV, g1, g2)
		vorticitySlabVec4(c, m.DerivFlat, e.DFlat, e.Metdet, e.DAlpha, u, v, vortV, g1, g2)
	})
	for n := 0; n < npsq; n++ {
		if gxS[n] != gxV[n] || gyS[n] != gyV[n] {
			t.Fatalf("vectorized gradient differs at node %d", n)
		}
		if vortS[n] != vortV[n] {
			t.Fatalf("vectorized vorticity differs at node %d", n)
		}
	}
}

func TestBackendString(t *testing.T) {
	names := map[Backend]string{Intel: "Intel", MPE: "MPE", OpenACC: "OpenACC", Athread: "Athread"}
	for b, want := range names {
		if b.String() != want {
			t.Errorf("backend %d string = %q", int(b), b.String())
		}
	}
	if Backend(9).String() == "" {
		t.Error("unknown backend string empty")
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{FlopsScalar: 10, FlopsVector: 4, MaxCPEFlops: 5, MemBytes: 100, DMAOps: 2, RegMsgs: 1, Launches: 1, LDMPeak: 50}
	b := Cost{FlopsScalar: 1, FlopsVector: 1, MaxCPEFlops: 9, MemBytes: 10, DMAOps: 1, RegMsgs: 1, Launches: 1, LDMPeak: 80}
	a.Add(b)
	if a.FlopsScalar != 11 || a.FlopsVector != 5 || a.MaxCPEFlops != 9 ||
		a.MemBytes != 110 || a.DMAOps != 3 || a.RegMsgs != 2 || a.Launches != 2 || a.LDMPeak != 80 {
		t.Errorf("Cost.Add wrong: %+v", a)
	}
	if a.Flops() != 16 {
		t.Errorf("Flops() = %d", a.Flops())
	}
}

func TestUnevenLevelsAccepted(t *testing.T) {
	// The generalized Figure 2 decomposition accepts any nlev: 10 levels
	// spread as 2,2,1,1,1,1,1,1 across the mesh rows, matching Intel.
	m := mesh.New(1, 4)
	elems := []int{0, 1, 2, 3, 4, 5}
	en := NewEngine(m, elems, 10, 1)
	cfg := dycore.DefaultConfig(1)
	cfg.Nlev = 10
	cfg.Qsize = 1
	s, _ := dycore.NewSolver(cfg)
	st := s.NewState()
	s.InitBaroclinicWave(st)
	a := st.Clone()
	en.EulerStep(Intel, a, 10)
	b := st.Clone()
	en.EulerStep(Athread, b, 10)
	if d := relDiff(a.Qdp, b.Qdp); d != 0 {
		t.Errorf("nlev=10 euler differs by %g", d)
	}
	// The transposed-remap ablation keeps its stricter shape requirement
	// and must say so loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("transposed remap accepted an unsupported shape")
		}
	}()
	en.VerticalRemapTransposed(dycore.NewHybridCoord(10), st.Clone())
}

// The §7.5 ablation: the transposed remap must produce identical fields
// to the strided-DMA remap while issuing far fewer DMA descriptors and
// far more register messages — the locality trade the paper's
// transposition machinery exists to win.
func TestRemapTransposedMatchesStrided(t *testing.T) {
	_, en, st0 := testSetup(t, 2, 16, 2)
	h := dycore.NewHybridCoord(16)
	for ei := range st0.DP {
		for i := range st0.DP[ei] {
			st0.DP[ei][i] *= 1 + 0.04*math.Sin(float64(i))
		}
	}
	a := st0.Clone()
	strided := en.VerticalRemap(Athread, h, a)
	b := st0.Clone()
	transposed := en.VerticalRemapTransposed(h, b)

	for name, f := range map[string][2][][]float64{
		"U": {a.U, b.U}, "V": {a.V, b.V}, "T": {a.T, b.T},
		"DP": {a.DP, b.DP}, "Qdp": {a.Qdp, b.Qdp},
	} {
		if d := relDiff(f[0], f[1]); d != 0 {
			t.Errorf("transposed remap %s differs from strided by %g", name, d)
		}
	}
	if transposed.DMAOps*4 > strided.DMAOps {
		t.Errorf("transposed remap should slash DMA issues: %d vs %d",
			transposed.DMAOps, strided.DMAOps)
	}
	if transposed.RegMsgs <= strided.RegMsgs {
		t.Errorf("transposed remap should use register traffic: %d vs %d",
			transposed.RegMsgs, strided.RegMsgs)
	}
	if transposed.LDMPeak > sw.LDMBytes {
		t.Errorf("transposed remap LDM peak %d over budget", transposed.LDMPeak)
	}
}

// The shallow-water RHS on the Athread backend must match the serial
// SWSolver bit-for-bit (same slab arithmetic; no vertical scans to
// regroup).
func TestShallowWaterAthreadMatchesSerial(t *testing.T) {
	const ne = 2
	sols, err := dycore.NewSWSolver(ne, 300)
	if err != nil {
		t.Fatal(err)
	}
	st := sols.NewState()
	sols.InitRossbyHaurwitz(st)
	// Topography exercises the g*(h+hs) term.
	for ei := range sols.Hs {
		for n := range sols.Hs[ei] {
			sols.Hs[ei][n] = 500 * math.Sin(float64(ei+n))
		}
	}

	// Reference: a full serial SSP-RK2 step with hyperviscosity disabled
	// (the engine path below reproduces the step stage by stage).
	en := NewSWEngine(sols.Mesh)
	got := st.Clone()
	s1 := got.Clone()
	cost := en.ShallowWaterRHS(got, got, s1, sols.Hs, sols.Dt)
	if cost.FlopsVector == 0 || cost.MemBytes == 0 {
		t.Fatal("no work accounted")
	}
	sols.Mesh.DSS(s1.U)
	sols.Mesh.DSS(s1.V)
	sols.Mesh.DSS(s1.H)
	s2 := s1.Clone()
	en.ShallowWaterRHS(s1, s1, s2, sols.Hs, sols.Dt)
	sols.Mesh.DSS(s2.U)
	sols.Mesh.DSS(s2.V)
	sols.Mesh.DSS(s2.H)
	for ei := range got.U {
		dycore.SSPRK2Combine(got.U[ei], s2.U[ei], got.U[ei])
		dycore.SSPRK2Combine(got.V[ei], s2.V[ei], got.V[ei])
		dycore.SSPRK2Combine(got.H[ei], s2.H[ei], got.H[ei])
	}
	sols2, _ := dycore.NewSWSolver(ne, 300)
	copy2D := func(dst, src [][]float64) {
		for i := range src {
			copy(dst[i], src[i])
		}
	}
	copy2D(sols2.Hs, sols.Hs)
	sols2.Nu = 0
	ref2 := st.Clone()
	sols2.Step(ref2)

	if d := relDiff(ref2.H, got.H); d != 0 {
		t.Errorf("shallow-water H differs from serial by %g (want bitwise)", d)
	}
	if d := relDiff(ref2.U, got.U); d != 0 {
		t.Errorf("shallow-water U differs from serial by %g", d)
	}
	if cost.LDMPeak > sw.LDMBytes {
		t.Errorf("shallow-water kernel LDM peak %d over budget", cost.LDMPeak)
	}
}

// The generalized Figure 2 decomposition: CAM's 30 levels do not divide
// by the 8 mesh rows; the Athread kernels must still match the serial
// backends bit-for-bit (euler, hypervis) or to scan rounding (rhs).
func TestAthreadUnevenLevels(t *testing.T) {
	_, en, st0 := testSetup(t, 2, 30, 2)
	// euler
	a := st0.Clone()
	en.EulerStep(Intel, a, 60)
	b := st0.Clone()
	cost := en.EulerStep(Athread, b, 60)
	if d := relDiff(a.Qdp, b.Qdp); d != 0 {
		t.Errorf("nlev=30 euler differs by %g", d)
	}
	if cost.LDMPeak > sw.LDMBytes {
		t.Errorf("nlev=30 euler LDM peak %d", cost.LDMPeak)
	}
	// rhs
	outA := st0.Clone()
	en.ComputeAndApplyRHS(Intel, st0.Clone(), st0.Clone(), outA, 60)
	outB := st0.Clone()
	en.ComputeAndApplyRHS(Athread, st0.Clone(), st0.Clone(), outB, 60)
	for name, f := range map[string][2][][]float64{
		"U": {outA.U, outB.U}, "T": {outA.T, outB.T}, "DP": {outA.DP, outB.DP},
	} {
		if d := relDiff(f[0], f[1]); d > 1e-12 {
			t.Errorf("nlev=30 rhs %s differs by %g", name, d)
		}
	}
	// hypervis pass 1
	npsq := 16
	mk := func() [][]float64 {
		f := make([][]float64, st0.NElem())
		for i := range f {
			f[i] = make([]float64, 30*npsq)
		}
		return f
	}
	lu1, lv1, lt1, lp1 := mk(), mk(), mk(), mk()
	en.HypervisDP1(Intel, st0, lu1, lv1, lt1, lp1)
	lu2, lv2, lt2, lp2 := mk(), mk(), mk(), mk()
	en.HypervisDP1(Athread, st0, lu2, lv2, lt2, lp2)
	if d := relDiff(lu1, lu2); d != 0 {
		t.Errorf("nlev=30 hypervis differs by %g", d)
	}
	// biharmonic
	o1, o2 := mk(), mk()
	en.BiharmonicDP3D(Intel, st0.DP, o1)
	en.BiharmonicDP3D(Athread, st0.DP, o2)
	if d := relDiff(o1, o2); d != 0 {
		t.Errorf("nlev=30 biharmonic differs by %g", d)
	}
}
