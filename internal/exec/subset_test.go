package exec

import (
	"testing"

	"swcam/internal/dycore"
)

// ---------------------------------------------------------------------------
// Subset tile geometry
// ---------------------------------------------------------------------------

func TestComputeSubsetTilesProperties(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 8, 9, 16, 54, 96, 1000} {
		for _, workers := range []int{1, 2, 3, 4, 8, 16} {
			tiles := computeSubsetTiles(n, workers)
			if n == 0 {
				if len(tiles) != 1 || tiles[0] != (tile{0, 0}) {
					t.Fatalf("n=0 workers=%d: want one empty tile, got %v", workers, tiles)
				}
				continue
			}
			want := workers
			if want > n {
				want = n
			}
			if len(tiles) != want {
				t.Fatalf("n=%d workers=%d: %d tiles, want %d", n, workers, len(tiles), want)
			}
			pos := 0
			for i, tl := range tiles {
				if tl.Lo != pos || tl.Hi <= tl.Lo {
					t.Fatalf("n=%d workers=%d tile %d: %v not contiguous/non-empty", n, workers, i, tl)
				}
				pos = tl.Hi
			}
			if pos != n {
				t.Fatalf("n=%d workers=%d: tiles end at %d", n, workers, pos)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Split bit-identity: Open(boundary) + Close(inner) must reproduce the
// Whole launch exactly — state bits AND every Cost counter — for every
// backend, worker count, and slot split, including degenerate ones.
// ---------------------------------------------------------------------------

// splitOf builds complementary slot lists over n elements.
func splitOf(name string, n int) (open, close []int) {
	switch name {
	case "even-odd":
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				open = append(open, i)
			} else {
				close = append(close, i)
			}
		}
	case "head-tail":
		for i := 0; i < n; i++ {
			if i < n/3 {
				open = append(open, i)
			} else {
				close = append(close, i)
			}
		}
	case "empty-open":
		for i := 0; i < n; i++ {
			close = append(close, i)
		}
	case "empty-close":
		for i := 0; i < n; i++ {
			open = append(open, i)
		}
	}
	return open, close
}

var splitNames = []string{"even-odd", "head-tail", "empty-open", "empty-close"}

// subsetKernelRun drives the four DSS-preceding kernels through `launch`,
// which either runs them Whole or as an Open/Close pair, and returns the
// combined state hash and accumulated Cost.
func subsetKernelRun(en *Engine, b Backend, st0 *dycore.State, nlev, npsq int,
	launch func(func(Subset) Cost) Cost) (uint64, Cost) {
	st := st0.Clone()
	mk := func() [][]float64 {
		f := make([][]float64, st.NElem())
		for i := range f {
			f[i] = make([]float64, nlev*npsq)
		}
		return f
	}
	var total Cost
	total.Add(launch(func(sub Subset) Cost { return en.EulerStepOn(sub, b, st, 90) }))
	out := st.Clone()
	total.Add(launch(func(sub Subset) Cost { return en.ComputeAndApplyRHSOn(sub, b, st, st, out, 90) }))
	lu, lv, lt, lp := mk(), mk(), mk(), mk()
	total.Add(launch(func(sub Subset) Cost { return en.HypervisDP1On(sub, b, out, lu, lv, lt, lp) }))
	total.Add(launch(func(sub Subset) Cost { return en.HypervisDP2On(sub, b, lu, lv, lt, lp, out, 90, 1e15, 1e15) }))
	return hashState(out) ^ hashFields(lu, lv, lt, lp), total
}

func TestSubsetSplitBitIdenticalAllBackends(t *testing.T) {
	for _, shape := range []struct{ ne, nlev, qsize int }{
		{4, 8, 2},  // 96 elements, even levels
		{3, 10, 1}, // 54 elements, awkward row split
	} {
		m, _, st0 := testSetup(t, shape.ne, shape.nlev, shape.qsize)
		npsq := m.Np * m.Np
		for _, b := range Backends {
			ref := tiledEngine(m, shape.nlev, shape.qsize, 1)
			wantHash, wantCost := subsetKernelRun(ref, b, st0, shape.nlev, npsq,
				func(f func(Subset) Cost) Cost { return f(Subset{}) })
			for _, workers := range []int{1, 4} {
				for _, split := range splitNames {
					en := tiledEngine(m, shape.nlev, shape.qsize, workers)
					oSlots, cSlots := splitOf(split, m.NElems())
					open, inner := en.CompileSubset(oSlots), en.CompileSubset(cSlots)
					gotHash, gotCost := subsetKernelRun(en, b, st0, shape.nlev, npsq,
						func(f func(Subset) Cost) Cost {
							var c Cost
							c.Add(f(Subset{Sel: open, Phase: Open}))
							c.Add(f(Subset{Sel: inner, Phase: Close}))
							return c
						})
					if gotHash != wantHash {
						t.Errorf("ne%d %v workers=%d split=%s: state hash %x != whole %x",
							shape.ne, b, workers, split, gotHash, wantHash)
					}
					if gotCost != wantCost {
						t.Errorf("ne%d %v workers=%d split=%s: cost diverged\n split: %+v\n whole: %+v",
							shape.ne, b, workers, split, gotCost, wantCost)
					}
				}
			}
		}
	}
}

// Subsets compiled before SetWorkers must be re-tiled when the pool is
// reshaped, not left pointing at a stale decomposition.
func TestSubsetRetiledOnSetWorkers(t *testing.T) {
	m, _, st0 := testSetup(t, 4, 8, 1)
	npsq := m.Np * m.Np
	en := tiledEngine(m, 8, 1, 1)
	oSlots, cSlots := splitOf("even-odd", m.NElems())
	open, inner := en.CompileSubset(oSlots), en.CompileSubset(cSlots)
	en.SetWorkers(4) // reshape AFTER compilation

	ref := tiledEngine(m, 8, 1, 1)
	wantHash, wantCost := subsetKernelRun(ref, Athread, st0, 8, npsq,
		func(f func(Subset) Cost) Cost { return f(Subset{}) })
	gotHash, gotCost := subsetKernelRun(en, Athread, st0, 8, npsq,
		func(f func(Subset) Cost) Cost {
			var c Cost
			c.Add(f(Subset{Sel: open, Phase: Open}))
			c.Add(f(Subset{Sel: inner, Phase: Close}))
			return c
		})
	if gotHash != wantHash || gotCost != wantCost {
		t.Errorf("subsets compiled before SetWorkers diverged from whole run")
	}
}

// ---------------------------------------------------------------------------
// Split-accounting guards
// ---------------------------------------------------------------------------

// A Close with no Open on the engine is a sequencing bug, not a
// recoverable state: it must panic loudly.
func TestCloseWithoutOpenPanics(t *testing.T) {
	m, _, st0 := testSetup(t, 2, 8, 1)
	en := tiledEngine(m, 8, 1, 1)
	sub := en.CompileSubset([]int{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Close without Open did not panic")
		}
	}()
	st := st0.Clone()
	en.EulerStepOn(Subset{Sel: sub, Phase: Close}, Athread, st, 10)
}

// An abandoned Open (a transport fault unwound the rank between the
// split halves) must not poison the next kernel's accounting: the stale
// parked sums and accumulated CPE counters are discarded at the next
// non-Close launch.
func TestStaleOpenDiscarded(t *testing.T) {
	m, _, st0 := testSetup(t, 4, 8, 1)
	for _, b := range Backends {
		clean := tiledEngine(m, 8, 1, 2)
		st := st0.Clone()
		clean.EulerStep(b, st, 10)
		want := clean.EulerStep(b, st, 10)

		en := tiledEngine(m, 8, 1, 2)
		bnd := en.CompileSubset([]int{0, 1, 2, 3})
		st2 := st0.Clone()
		en.EulerStep(b, st2, 10) // warm, matching the clean engine's history
		en.EulerStepOn(Subset{Sel: bnd, Phase: Open}, b, st2, 10)
		// No Close: the rank "faulted" here. The next Whole launch must
		// account exactly like the clean engine's.
		st3 := st0.Clone()
		got := en.EulerStep(b, st3, 10)
		if got != want {
			t.Errorf("%v: kernel after abandoned Open diverged\n got:  %+v\n want: %+v", b, got, want)
		}
	}
}
