package exec

import (
	"fmt"

	"swcam/internal/dycore"
	"swcam/internal/mesh"
	"swcam/internal/obs"
	"swcam/internal/sw"
)

// Engine runs kernels for one process (one MPI rank = one core group in
// the TaihuLight model) over that rank's elements.
type Engine struct {
	M     *mesh.Mesh
	CG    *sw.CoreGroup
	Elems []int // global element ids owned by this rank, in local-slot order

	Np, Nlev, Qsize int

	ws  *dycore.Workspace
	rhs *dycore.RHS
	// Serial-backend scratch.
	flxU, flxV, div []float64
	colA, colB      []float64
	colC, colD      []float64

	// Observability hooks (nil = off; see instrument.go).
	obsTr   *obs.Tracer
	obsKT   *obs.KernelTable
	obsRank int
}

// NewEngine builds an engine for the given local element set. The state
// passed to kernel methods must index elements in the same order.
func NewEngine(m *mesh.Mesh, elems []int, nlev, qsize int) *Engine {
	np := m.Np
	npsq := np * np
	return &Engine{
		M: m, CG: sw.NewCoreGroup(0), Elems: elems,
		Np: np, Nlev: nlev, Qsize: qsize,
		ws:   dycore.NewWorkspace(np, nlev),
		rhs:  dycore.NewRHS(np, nlev),
		flxU: make([]float64, npsq),
		flxV: make([]float64, npsq),
		div:  make([]float64, npsq),
		colA: make([]float64, nlev),
		colB: make([]float64, nlev),
		colC: make([]float64, nlev),
		colD: make([]float64, nlev),
	}
}

// element returns the mesh element of local slot le.
func (en *Engine) element(le int) *mesh.Element { return en.M.Elements[en.Elems[le]] }

// vlPerCPE returns the vertical-layer block size of the Figure 2
// decomposition when nlev divides evenly across the 8 mesh rows (the
// paper's 128-level case). Kernels that support uneven blocks use
// rowLevels instead.
func (en *Engine) vlPerCPE() int {
	if en.Nlev%sw.MeshDim != 0 {
		panic(fmt.Sprintf("exec: nlev %d not divisible by the %d CPE mesh rows; "+
			"the Figure 2 vertical decomposition requires it", en.Nlev, sw.MeshDim))
	}
	return en.Nlev / sw.MeshDim
}

// rowLevels returns the level range [start, start+count) owned by a mesh
// row under the generalized Figure 2 decomposition: blocks differ by at
// most one level, so any nlev (CAM's 30, the dycore benchmarks' 128)
// maps onto the 8 rows. Rows beyond nlev get empty ranges and still
// participate in the register-communication carry chains.
func (en *Engine) rowLevels(row int) (start, count int) {
	base := en.Nlev / sw.MeshDim
	rem := en.Nlev % sw.MeshDim
	count = base
	if row < rem {
		count++
	}
	start = row*base + min(row, rem)
	return start, count
}

// maxRowLevels is the largest per-row block (tile sizing).
func (en *Engine) maxRowLevels() int {
	base := en.Nlev / sw.MeshDim
	if en.Nlev%sw.MeshDim != 0 {
		base++
	}
	return base
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// collect drains the core-group counters into a Cost and resets them.
func (en *Engine) collect(b Backend, launches int64) Cost {
	sum, max := en.CG.Counters()
	en.CG.ResetCounters()
	mpe := en.CG.MPE.Ctr
	en.CG.MPE.Ctr.Reset()
	return Cost{
		Backend:     b,
		FlopsScalar: sum.FlopsScalar + mpe.FlopsScalar,
		FlopsVector: sum.FlopsVector,
		MaxCPEFlops: max.FlopsScalar + max.FlopsVector,
		MemBytes:    sum.DMABytes() + mpe.DMABytes(),
		DMAOps:      sum.DMAOps,
		RegMsgs:     sum.RegMsgs,
		Launches:    launches,
		LDMPeak:     max.LDMPeak,
	}
}

// serialCost builds the cost record of a serial (Intel or MPE) kernel
// run from analytic flop and byte counts.
func serialCost(b Backend, flops, bytes int64) Cost {
	return Cost{Backend: b, FlopsScalar: flops, MaxCPEFlops: flops, MemBytes: bytes}
}
