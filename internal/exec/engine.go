package exec

import (
	"fmt"
	"sync"

	"swcam/internal/dycore"
	"swcam/internal/mesh"
	"swcam/internal/obs"
	"swcam/internal/sw"
)

// Engine runs kernels for one process (one MPI rank = one core group in
// the TaihuLight model) over that rank's elements.
//
// Inside the rank, the element list is tiled across a bounded pool of
// host workers (SetWorkers); each worker owns a full set of kernel
// scratch — a simulated core group for the CPE backends and the
// dycore workspace/RHS/slab buffers for the serial backends — so tiles
// execute concurrently without sharing mutable state. Tiling preserves
// the untiled element-to-CPE assignment (tiles are aligned to the CPE
// mesh width), so kernel outputs AND the collected Cost records are
// bit-identical for every worker count; see tiling.go.
type Engine struct {
	M     *mesh.Mesh
	Elems []int // global element ids owned by this rank, in local-slot order

	Np, Nlev, Qsize int

	workers int
	pool    []*dynWorker
	tilesC  []tile // precomputed aligned tiles, one worker each

	// Tile-run coordination (see tiling.go). Kernel methods are not
	// reentrant per engine — exactly as with the former shared
	// workspace — so one set of fields suffices.
	tileWG      sync.WaitGroup
	partials    []serialPartial
	tilePanics  []any
	curSerialFn func(w *dynWorker, lo, hi int, p *serialPartial)
	curCGFn     func(cg *sw.CoreGroup, lo, hi int)

	// Subset execution (see subset.go): the identity subset backing
	// Whole runs of the split kernels, registered subsets re-tiled on
	// SetWorkers, the current subset-run callbacks, and the deferred
	// split accounting (Open parks, Close collects).
	allSub               *ElemSubset
	subs                 []*ElemSubset
	curSerialOnFn        func(w *dynWorker, slots []int, p *serialPartial)
	curCGOnFn            func(cg *sw.CoreGroup, slots []int)
	curSel               *ElemSubset
	splitPend            bool
	pendFlops, pendBytes int64

	// Observability hooks (nil = off; see instrument.go).
	obsTr   *obs.Tracer
	obsKT   *obs.KernelTable
	obsReg  *obs.Registry
	obsRank int
	// busyNs[w] accumulates worker w's kernel-tile wall time when a
	// registry is attached (exec.dyn.worker_busy_ns.<w>).
	busyNs []*obs.Counter
	// Current kernel context for per-tile spans, set by kernelProbe on
	// the rank goroutine before tiles launch.
	curKernel, curBackend string
}

// dynWorker is one intra-rank worker's private execution resources: a
// simulated core group (built lazily — serial-only runs never pay for
// it) plus the per-element scratch the serial kernels need. Replacing
// the engine's former single shared workspace with this pool is what
// lets tiles of one kernel run concurrently.
type dynWorker struct {
	cg  *sw.CoreGroup
	ws  *dycore.Workspace
	rhs *dycore.RHS
	// Serial-backend scratch.
	flxU, flxV, div  []float64
	gv1, gv2         []float64
	colA, colB       []float64
	colC, colD       []float64
	// Pooled slabs for the single-source kernel layer's serial lowering
	// (kernel.go): kScr backs a spec's kernel-visible scratch slots,
	// opScr the primitives' internal scratch.
	kScr  [4][]float64
	opScr [6][]float64
	rws   *dycore.RemapWorkspace
	// Per-CPE PPM workspaces for the CPE remap paths (64 simulated cores
	// remap columns concurrently inside one tile); built with the core
	// group, since only CPE backends need them. Host-side scratch: the
	// LDM accounting of the remap kernels is unchanged.
	cpeRWS []*dycore.RemapWorkspace
	nlev   int

	// Pooled snapshot storage for the OpenACC vertical remap (the one
	// kernel that reads whole element rows while writing single values
	// back): grown once to the tile's footprint, reused afterwards.
	snapBuf                            []float64
	snapU, snapV, snapT, snapDP, snapQ [][]float64
}

func newDynWorker(np, nlev int) *dynWorker {
	npsq := np * np
	w := &dynWorker{
		ws:   dycore.NewWorkspace(np, nlev),
		rhs:  dycore.NewRHS(np, nlev),
		flxU: make([]float64, npsq),
		flxV: make([]float64, npsq),
		div:  make([]float64, npsq),
		gv1:  make([]float64, npsq),
		gv2:  make([]float64, npsq),
		colA: make([]float64, nlev),
		colB: make([]float64, nlev),
		colC: make([]float64, nlev),
		colD: make([]float64, nlev),
		rws:  dycore.NewRemapWorkspace(nlev),
		nlev: nlev,
	}
	for i := range w.kScr {
		w.kScr[i] = make([]float64, npsq)
	}
	for i := range w.opScr {
		w.opScr[i] = make([]float64, npsq)
	}
	return w
}

// ensureCG builds the worker's simulated core group (and the per-CPE
// remap workspaces) on first use by a CPE backend.
func (w *dynWorker) ensureCG() *sw.CoreGroup {
	if w.cg == nil {
		w.cg = sw.NewCoreGroup(0)
		w.cpeRWS = make([]*dycore.RemapWorkspace, sw.CPEsPerCG)
		for i := range w.cpeRWS {
			w.cpeRWS[i] = dycore.NewRemapWorkspace(w.nlev)
		}
	}
	return w.cg
}

// snapshot copies element rows [lo, hi) of the five state field groups
// into the worker's pooled buffer, returning row views indexed by
// le-lo. rowLen is nlev*np² (U/V/T/DP rows), qRowLen is qsize*rowLen.
func (w *dynWorker) snapshot(u, v, t, dp, q [][]float64, lo, hi, rowLen, qRowLen int) (su, sv, st, sdp, sq [][]float64) {
	n := hi - lo
	need := n * (4*rowLen + qRowLen)
	if cap(w.snapBuf) < need {
		w.snapBuf = make([]float64, need)
		w.snapU = make([][]float64, n)
		w.snapV = make([][]float64, n)
		w.snapT = make([][]float64, n)
		w.snapDP = make([][]float64, n)
		w.snapQ = make([][]float64, n)
	}
	if len(w.snapU) < n {
		w.snapU = make([][]float64, n)
		w.snapV = make([][]float64, n)
		w.snapT = make([][]float64, n)
		w.snapDP = make([][]float64, n)
		w.snapQ = make([][]float64, n)
	}
	buf := w.snapBuf[:0]
	carve := func(src []float64) []float64 {
		s := buf[len(buf) : len(buf)+len(src)]
		buf = buf[:len(buf)+len(src)]
		copy(s, src)
		return s
	}
	for i := 0; i < n; i++ {
		le := lo + i
		w.snapU[i] = carve(u[le])
		w.snapV[i] = carve(v[le])
		w.snapT[i] = carve(t[le])
		w.snapDP[i] = carve(dp[le])
		w.snapQ[i] = carve(q[le])
	}
	return w.snapU[:n], w.snapV[:n], w.snapT[:n], w.snapDP[:n], w.snapQ[:n]
}

// NewEngine builds an engine for the given local element set with a
// single worker (the serial intra-rank path). The state passed to
// kernel methods must index elements in the same order. Call SetWorkers
// to enable tiled execution.
func NewEngine(m *mesh.Mesh, elems []int, nlev, qsize int) *Engine {
	en := &Engine{
		M: m, Elems: elems,
		Np: m.Np, Nlev: nlev, Qsize: qsize,
	}
	en.SetWorkers(1)
	return en
}

// element returns the mesh element of local slot le.
func (en *Engine) element(le int) *mesh.Element { return en.M.Elements[en.Elems[le]] }

// vlPerCPE returns the vertical-layer block size of the Figure 2
// decomposition when nlev divides evenly across the 8 mesh rows (the
// paper's 128-level case). Kernels that support uneven blocks use
// rowLevels instead.
func (en *Engine) vlPerCPE() int {
	if en.Nlev%sw.MeshDim != 0 {
		panic(fmt.Sprintf("exec: nlev %d not divisible by the %d CPE mesh rows; "+
			"the Figure 2 vertical decomposition requires it", en.Nlev, sw.MeshDim))
	}
	return en.Nlev / sw.MeshDim
}

// rowLevels returns the level range [start, start+count) owned by a mesh
// row under the generalized Figure 2 decomposition: blocks differ by at
// most one level, so any nlev (CAM's 30, the dycore benchmarks' 128)
// maps onto the 8 rows. Rows beyond nlev get empty ranges and still
// participate in the register-communication carry chains.
func (en *Engine) rowLevels(row int) (start, count int) {
	base := en.Nlev / sw.MeshDim
	rem := en.Nlev % sw.MeshDim
	count = base
	if row < rem {
		count++
	}
	start = row*base + min(row, rem)
	return start, count
}

// maxRowLevels is the largest per-row block (tile sizing).
func (en *Engine) maxRowLevels() int {
	base := en.Nlev / sw.MeshDim
	if en.Nlev%sw.MeshDim != 0 {
		base++
	}
	return base
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// collect merges the per-worker core-group counters into one Cost and
// resets them. Counters are merged per CPE id — CPE i's events summed
// across every worker's core group — which reconstructs exactly the
// counters a single untiled core group would have accumulated, because
// tiling preserves the element-to-CPE assignment. The sum/max reduction
// then matches the untiled path bit for bit.
//
// launches is the number of athread_spawn-style parallel-region
// launches the kernel performed on the hardware being modeled: the
// host-side tiles all simulate portions of the SAME launch, so the
// count is independent of the worker pool size.
func (en *Engine) collect(b Backend, launches int64) Cost {
	var sum, max, mpe sw.PerfCounter
	for id := 0; id < sw.CPEsPerCG; id++ {
		var m sw.PerfCounter
		for _, w := range en.pool {
			if w.cg != nil {
				m.Add(&w.cg.CPEs[id].Ctr)
			}
		}
		sum.Add(&m)
		max.MaxInPlace(&m)
	}
	for _, w := range en.pool {
		if w.cg != nil {
			mpe.Add(&w.cg.MPE.Ctr)
			w.cg.ResetCounters()
		}
	}
	return Cost{
		Backend:     b,
		FlopsScalar: sum.FlopsScalar + mpe.FlopsScalar,
		FlopsVector: sum.FlopsVector,
		MaxCPEFlops: max.FlopsScalar + max.FlopsVector,
		MemBytes:    sum.DMABytes() + mpe.DMABytes(),
		DMAOps:      sum.DMAOps,
		RegMsgs:     sum.RegMsgs,
		Launches:    launches,
		LDMPeak:     max.LDMPeak,
	}
}

// serialCost builds the cost record of a serial (Intel or MPE) kernel
// run from analytic flop and byte counts.
func serialCost(b Backend, flops, bytes int64) Cost {
	return Cost{Backend: b, FlopsScalar: flops, MaxCPEFlops: flops, MemBytes: bytes}
}
