package exec

import (
	"math"

	"swcam/internal/dycore"
	"swcam/internal/mesh"
	"swcam/internal/sw"
)

// ShallowWaterRHS runs one shallow-water RHS evaluation (out = base +
// dt*RHS(cur)) for the engine's elements on the Athread backend: one
// element per CPE-mesh column with the single layer's slabs distributed
// one CPE row each... the shallow-water system has no vertical axis, so
// the Figure 2 decomposition degenerates to element-parallel work — the
// 64 CPEs each take whole elements round-robin, with LDM-resident tiles
// and vectorized slabs. Results are bit-identical to the serial
// SWSolver's applyRHS for the same inputs (same slab arithmetic).
//
// This gives the Williamson suite the same Sunway-port treatment as the
// primitive-equation kernels: the complete model, not just the 3D core.
func (en *Engine) ShallowWaterRHS(cur, base, out *dycore.SWState, hs [][]float64, dt float64) Cost {
	np := en.Np
	npsq := np * np
	en.runTilesCG(func(cg *sw.CoreGroup, lo, hi int) {
		cg.Spawn(func(c *sw.CPE) {
			ldm := c.LDM
			deriv := ldm.MustAlloc("deriv", npsq)
			c.Setup(func() { c.DMA.GetShared(deriv, en.M.DerivFlat) })
			dinv := ldm.MustAlloc("dinv", 4*npsq)
			dflat := ldm.MustAlloc("dflat", 4*npsq)
			metdet := ldm.MustAlloc("metdet", npsq)
			lat := ldm.MustAlloc("lat", npsq)
			hsT := ldm.MustAlloc("hs", npsq)
			u := ldm.MustAlloc("u", npsq)
			v := ldm.MustAlloc("v", npsq)
			h := ldm.MustAlloc("h", npsq)
			bu := ldm.MustAlloc("bu", npsq)
			bv := ldm.MustAlloc("bv", npsq)
			bh := ldm.MustAlloc("bh", npsq)
			vort := ldm.MustAlloc("vort", npsq)
			ke := ldm.MustAlloc("ke", npsq)
			gx := ldm.MustAlloc("gx", npsq)
			gy := ldm.MustAlloc("gy", npsq)
			flxU := ldm.MustAlloc("flxU", npsq)
			flxV := ldm.MustAlloc("flxV", npsq)
			div := ldm.MustAlloc("div", npsq)
			s1 := ldm.MustAlloc("s1", npsq)
			s2 := ldm.MustAlloc("s2", npsq)

			for le := firstWorkItem(lo, c.ID); le < hi; le += sw.CPEsPerCG {
				e := en.element(le)
				c.DMA.Get(dinv, e.DinvFlat)
				c.DMA.Get(dflat, e.DFlat)
				c.DMA.Get(metdet, e.Metdet)
				c.DMA.Get(lat, e.Lat)
				c.DMA.Get(hsT, hs[le])
				c.DMA.Get(u, cur.U[le])
				c.DMA.Get(v, cur.V[le])
				c.DMA.Get(h, cur.H[le])
				c.DMA.Get(bu, base.U[le])
				c.DMA.Get(bv, base.V[le])
				c.DMA.Get(bh, base.H[le])

				vorticitySlabVec4(c, deriv, dflat, metdet, e.DAlpha, u, v, vort, s1, s2)
				for j := 0; j < np; j++ {
					uv := sw.LoadVec4(u, 4*j)
					vv := sw.LoadVec4(v, 4*j)
					hv := sw.LoadVec4(h, 4*j)
					hsv := sw.LoadVec4(hsT, 4*j)
					// ke = (u*u+v*v)/2 + g*(h+hs), matching the scalar order.
					kev := uv.Mul(uv).Add(vv.Mul(vv)).Scale(0.5).
						Add(sw.Splat(dycore.Gravit).Mul(hv.Add(hsv)))
					kev.Store(ke, 4*j)
					uv.Mul(hv).Store(flxU, 4*j)
					vv.Mul(hv).Store(flxV, 4*j)
				}
				c.CountVecFlops(int64(8 * npsq))
				gradientSlabVec4(c, deriv, dinv, e.DAlpha, ke, gx, gy, s1, s2)
				divergenceSlabVec4(c, deriv, dinv, metdet, e.DAlpha, flxU, flxV, div, s1, s2)

				for j := 0; j < np; j++ {
					fv := sw.Vec4{
						2 * dycore.Omega * math.Sin(lat[4*j]),
						2 * dycore.Omega * math.Sin(lat[4*j+1]),
						2 * dycore.Omega * math.Sin(lat[4*j+2]),
						2 * dycore.Omega * math.Sin(lat[4*j+3]),
					}
					uv := sw.LoadVec4(u, 4*j)
					vv := sw.LoadVec4(v, 4*j)
					absv := sw.LoadVec4(vort, 4*j).Add(fv)
					dtv := sw.Splat(dt)
					// out = base + dt*(absv*v - gx), etc., scalar order.
					outU := sw.LoadVec4(bu, 4*j).Add(dtv.Mul(absv.Mul(vv).Sub(sw.LoadVec4(gx, 4*j))))
					outV := sw.LoadVec4(bv, 4*j).Add(dtv.Mul(absv.Neg().Mul(uv).Sub(sw.LoadVec4(gy, 4*j))))
					outH := sw.LoadVec4(bh, 4*j).Add(dtv.Mul(sw.LoadVec4(div, 4*j).Neg()))
					outU.Store(u, 4*j)
					outV.Store(v, 4*j)
					outH.Store(h, 4*j)
				}
				c.CountVecFlops(int64(14 * npsq))
				c.DMA.Put(out.U[le], u)
				c.DMA.Put(out.V[le], v)
				c.DMA.Put(out.H[le], h)
			}
		})
	})
	return en.collect(Athread, 1)
}

// SWEngine bundles an engine with a mesh for shallow-water stepping on
// the simulator; see TestShallowWaterAthreadMatchesSerial.
func NewSWEngine(m *mesh.Mesh) *Engine {
	elems := make([]int, m.NElems())
	for i := range elems {
		elems[i] = i
	}
	// nlev=8 keeps the engine's vertical checks satisfied; the
	// shallow-water kernel ignores it.
	return NewEngine(m, elems, 8, 0)
}
