package exec

import (
	"math"

	"swcam/internal/dycore"
	"swcam/internal/sw"
)

// computeAndApplyRHS dispatches the compute_and_apply_rhs kernel over
// the selected element subset; the exported, instrumented entry points
// are in instrument.go.
func (en *Engine) computeAndApplyRHS(sub Subset, b Backend, cur, base, out *dycore.State, dt float64) Cost {
	en.beginLaunch(sub)
	sel := en.sel(sub)
	switch b {
	case Intel, MPE:
		return en.rhsSerial(sub, b, sel, cur, base, out, dt)
	case OpenACC:
		return en.rhsOpenACC(sub, sel, cur, base, out, dt)
	case Athread:
		return en.rhsAthread(sub, sel, cur, base, out, dt)
	}
	panic("exec: unknown backend")
}

func (en *Engine) rhsSerial(sub Subset, b Backend, sel *ElemSubset, cur, base, out *dycore.State, dt float64) Cost {
	flops, bytes := en.runTilesSerialOn(sel, func(w *dynWorker, slots []int, p *serialPartial) {
		for _, le := range slots {
			e := en.element(le)
			dycore.ComputeAndApplyRHSElem(e, en.M.DerivFlat, w.ws, w.rhs,
				cur.U[le], cur.V[le], cur.T[le], cur.DP[le], cur.Phis[le],
				base.U[le], base.V[le], base.T[le], base.DP[le],
				out.U[le], out.V[le], out.T[le], out.DP[le], dt)
			p.flops += rhsFlops(en.Np, en.Nlev)
			p.bytes += rhsBytes(en.Np, en.Nlev)
		}
	})
	return en.serialSplit(b, sub.Phase, flops, bytes)
}

// rhsOpenACC distributes (element, level) iterations across the CPEs,
// but the OpenACC model gives a CPE no way to receive a neighbour's
// partial sums, so every vertical dependency — the pressure scan, the
// geopotential integral, the running divergence sum — is recomputed from
// the column ends by every CPE that needs it, streaming the column data
// level by level through a small buffer. The result is the O(nlev)
// redundancy in both flops and DMA traffic that left this kernel slower
// than a single Intel core in Table 1. Arithmetic follows the serial
// kernel exactly (same order), so results are identical to the Intel
// backend.
func (en *Engine) rhsOpenACC(sub Subset, sel *ElemSubset, cur, base, out *dycore.State, dt float64) Cost {
	np, nlev := en.Np, en.Nlev
	npsq := np * np
	en.runTilesCGOn(sel, sub.Phase == Close, func(cg *sw.CoreGroup, slots []int) {
		cg.Spawn(func(c *sw.CPE) {
			ldm := c.LDM
			// Per-element restart of the round-robin item loop: the
			// global (element, level) -> CPE assignment — and each
			// CPE's item order — is identical to one loop over a
			// contiguous range covering the same elements.
			for _, le := range slots {
				for w := firstWorkItem(le*nlev, c.ID); w < (le+1)*nlev; w += sw.CPEsPerCG {
					ldm.Reset()
					k := w % nlev
					e := en.element(le)

					deriv := ldm.MustAlloc("deriv", npsq)
					dinv := ldm.MustAlloc("dinv", 4*npsq)
					dflat := ldm.MustAlloc("dflat", 4*npsq)
					metdet := ldm.MustAlloc("metdet", npsq)
					lat := ldm.MustAlloc("lat", npsq)
					phis := ldm.MustAlloc("phis", npsq)
					c.DMA.GetShared(deriv, en.M.DerivFlat)
					c.DMA.Get(dinv, e.DinvFlat)
					c.DMA.Get(dflat, e.DFlat)
					c.DMA.Get(metdet, e.Metdet)
					c.DMA.Get(lat, e.Lat)
					c.DMA.Get(phis, cur.Phis[le])

					// Streaming buffers: one level slab at a time.
					dpL := ldm.MustAlloc("dpL", npsq)
					tL := ldm.MustAlloc("tL", npsq)
					uL := ldm.MustAlloc("uL", npsq)
					vL := ldm.MustAlloc("vL", npsq)
					flxU := ldm.MustAlloc("flxU", npsq)
					flxV := ldm.MustAlloc("flxV", npsq)
					div := ldm.MustAlloc("div", npsq)
					s1 := ldm.MustAlloc("s1", npsq)
					s2 := ldm.MustAlloc("s2", npsq)

					pRun := ldm.MustAlloc("pRun", npsq)   // running interface pressure
					cumDiv := ldm.MustAlloc("cum", npsq)  // running divergence sum
					pMidK := ldm.MustAlloc("pMidK", npsq) // pressure at my level
					divK := ldm.MustAlloc("divK", npsq)
					uK := ldm.MustAlloc("uK", npsq)
					vK := ldm.MustAlloc("vK", npsq)
					tK := ldm.MustAlloc("tK", npsq)
					dpK := ldm.MustAlloc("dpK", npsq)
					// Buffered hydrostatic increments for the descending sum:
					// one value per node per level at or below k.
					dphi := ldm.MustAlloc("dphi", nlev*npsq)

					for n := 0; n < npsq; n++ {
						pRun[n] = dycore.PTop
						cumDiv[n] = 0
					}
					// Pass 1 (top -> my level): pressure scan, mass-flux
					// divergence, running omega sum. Every level's data is
					// re-fetched by every CPE working on this element.
					for l := 0; l <= k; l++ {
						o := l * npsq
						c.DMA.Get(dpL, cur.DP[le][o:o+npsq])
						c.DMA.Get(uL, cur.U[le][o:o+npsq])
						c.DMA.Get(vL, cur.V[le][o:o+npsq])
						for n := 0; n < npsq; n++ {
							flxU[n] = uL[n] * dpL[n]
							flxV[n] = vL[n] * dpL[n]
						}
						dycore.DivergenceSlab(deriv, dinv, metdet, e.DAlpha, np, flxU, flxV, div, s1, s2)
						c.CountFlops(int64(2*npsq) + divFlops(np))
						if l < k {
							for n := 0; n < npsq; n++ {
								cumDiv[n] += div[n]
								pRun[n] += dpL[n]
							}
							c.CountFlops(int64(2 * npsq))
						} else {
							for n := 0; n < npsq; n++ {
								pMidK[n] = pRun[n] + dpL[n]/2
								cumDiv[n] = cumDiv[n] + div[n]/2
								divK[n] = div[n]
								uK[n], vK[n], tK[n], dpK[n] = uL[n], vL[n], 0, dpL[n]
							}
							c.CountFlops(int64(4 * npsq))
						}
					}
					c.DMA.Get(tK, cur.T[le][k*npsq:(k+1)*npsq])

					// Pass 2 (my level -> surface, then back up): the hydrostatic
					// geopotential integrates surface-to-top, so each CPE streams
					// the remaining column downward (re-reading dp and T for every
					// level at or below its own — the second redundancy), buffers
					// the increments, and accumulates them in the serial kernel's
					// descending order.
					phiK := s1
					phiInt := s2
					for l := k; l < nlev; l++ {
						o := l * npsq
						c.DMA.Get(dpL, cur.DP[le][o:o+npsq])
						c.DMA.Get(tL, cur.T[le][o:o+npsq])
						for n := 0; n < npsq; n++ {
							pm := pRun[n] + dpL[n]/2
							dphi[l*npsq+n] = dycore.Rd * tL[n] * dpL[n] / pm
							pRun[n] += dpL[n]
						}
						c.CountFlops(int64(6 * npsq))
					}
					for n := 0; n < npsq; n++ {
						phiInt[n] = phis[n]
					}
					for l := nlev - 1; l >= k; l-- {
						for n := 0; n < npsq; n++ {
							if l == k {
								phiK[n] = phiInt[n] + dphi[l*npsq+n]/2
							}
							phiInt[n] += dphi[l*npsq+n]
						}
						c.CountFlops(int64(npsq))
					}

					// Level-k horizontal terms and tendencies.
					gx := ldm.MustAlloc("gx", npsq)
					gy := ldm.MustAlloc("gy", npsq)
					gpx := ldm.MustAlloc("gpx", npsq)
					gpy := ldm.MustAlloc("gpy", npsq)
					tx := ldm.MustAlloc("tx", npsq)
					ty := ldm.MustAlloc("ty", npsq)
					vort := ldm.MustAlloc("vort", npsq)
					ke := ldm.MustAlloc("ke", npsq)
					sa := ldm.MustAlloc("sa", npsq)
					sb := ldm.MustAlloc("sb", npsq)
					for n := 0; n < npsq; n++ {
						ke[n] = (uK[n]*uK[n]+vK[n]*vK[n])/2 + phiK[n]
					}
					dycore.GradientSlab(deriv, dinv, e.DAlpha, np, ke, gx, gy, sa, sb)
					dycore.GradientSlab(deriv, dinv, e.DAlpha, np, pMidK, gpx, gpy, sa, sb)
					dycore.GradientSlab(deriv, dinv, e.DAlpha, np, tK, tx, ty, sa, sb)
					dycore.VorticitySlab(deriv, dflat, metdet, e.DAlpha, np, uK, vK, vort, sa, sb)
					c.CountFlops(int64(4*npsq) + 3*gradFlops(np) + vortFlops(np))

					o := k * npsq
					outU := ldm.MustAlloc("outU", npsq)
					outV := ldm.MustAlloc("outV", npsq)
					outT := ldm.MustAlloc("outT", npsq)
					outDP := ldm.MustAlloc("outDP", npsq)
					c.DMA.Get(outU, base.U[le][o:o+npsq])
					c.DMA.Get(outV, base.V[le][o:o+npsq])
					c.DMA.Get(outT, base.T[le][o:o+npsq])
					c.DMA.Get(outDP, base.DP[le][o:o+npsq])
					for n := 0; n < npsq; n++ {
						f := 2 * dycore.Omega * math.Sin(lat[n])
						absv := vort[n] + f
						p := pMidK[n]
						vgradP := uK[n]*gpx[n] + vK[n]*gpy[n]
						omega := vgradP - cumDiv[n]
						omegaP := omega / p
						ut := absv*vK[n] - gx[n] - dycore.Rd*tK[n]/p*gpx[n]
						vt := -absv*uK[n] - gy[n] - dycore.Rd*tK[n]/p*gpy[n]
						tt := -(uK[n]*tx[n] + vK[n]*ty[n]) + dycore.Kappa*tK[n]*omegaP
						dpt := -divK[n]
						outU[n] += dt * ut
						outV[n] += dt * vt
						outT[n] += dt * tt
						outDP[n] += dt * dpt
					}
					c.CountFlops(int64(38 * npsq))
					c.DMA.Put(out.U[le][o:o+npsq], outU)
					c.DMA.Put(out.V[le][o:o+npsq], outV)
					c.DMA.Put(out.T[le][o:o+npsq], outT)
					c.DMA.Put(out.DP[le][o:o+npsq], outDP)
				}
			}
		})
	})
	return en.collectSplit(OpenACC, sub.Phase)
}

// rhsAthread is the fine-grained redesign: one element per CPE-mesh
// column, the vertical split into 8 row blocks (Figure 2), and the three
// vertical dependency chains — pressure, geopotential, omega — carried
// across rows by register communication (§7.4). Inner loops are
// vectorized. The scan regrouping changes floating-point rounding at the
// 1e-15 relative level against the serial backends.
func (en *Engine) rhsAthread(sub Subset, sel *ElemSubset, cur, base, out *dycore.State, dt float64) Cost {
	np := en.Np
	npsq := np * np
	maxVl := en.maxRowLevels()
	en.runTilesCGOn(sel, sub.Phase == Close, func(cg *sw.CoreGroup, slots []int) {
		cg.Spawn(func(c *sw.CPE) {
			ldm := c.LDM
			s, vl := en.rowLevels(c.Row)
			slab := vl * npsq
			maxSlab := maxVl * npsq

			deriv := ldm.MustAlloc("deriv", npsq)
			c.Setup(func() { c.DMA.GetShared(deriv, en.M.DerivFlat) })
			dinv := ldm.MustAlloc("dinv", 4*npsq)
			dflat := ldm.MustAlloc("dflat", 4*npsq)
			metdet := ldm.MustAlloc("metdet", npsq)
			lat := ldm.MustAlloc("lat", npsq)
			phis := ldm.MustAlloc("phis", npsq)

			uT := ldm.MustAlloc("u", maxSlab)[:slab]
			vT := ldm.MustAlloc("v", maxSlab)[:slab]
			tT := ldm.MustAlloc("t", maxSlab)[:slab]
			dpT := ldm.MustAlloc("dp", maxSlab)[:slab]
			pMid := ldm.MustAlloc("pMid", maxSlab)[:slab]
			phi := ldm.MustAlloc("phi", maxSlab)[:slab]
			divDp := ldm.MustAlloc("divDp", maxSlab)[:slab]
			cumDiv := ldm.MustAlloc("cumDiv", maxSlab)[:slab]

			colIn := ldm.MustAlloc("colIn", maxVl)[:vl]
			colOut := ldm.MustAlloc("colOut", maxVl)[:vl]

			flxU := ldm.MustAlloc("flxU", npsq)
			flxV := ldm.MustAlloc("flxV", npsq)
			gv1 := ldm.MustAlloc("gv1", npsq)
			gv2 := ldm.MustAlloc("gv2", npsq)
			ke := ldm.MustAlloc("ke", npsq)
			gx := ldm.MustAlloc("gx", npsq)
			gy := ldm.MustAlloc("gy", npsq)
			gpx := ldm.MustAlloc("gpx", npsq)
			gpy := ldm.MustAlloc("gpy", npsq)
			tx := ldm.MustAlloc("tx", npsq)
			ty := ldm.MustAlloc("ty", npsq)
			vort := ldm.MustAlloc("vort", npsq)

			oU := ldm.MustAlloc("oU", maxSlab)[:slab]
			oV := ldm.MustAlloc("oV", maxSlab)[:slab]
			oT := ldm.MustAlloc("oT", maxSlab)[:slab]
			oDP := ldm.MustAlloc("oDP", maxSlab)[:slab]

			// Element le belongs to mesh column le % MeshDim; every row
			// of a column sees the same slot sequence (the filter is
			// row-independent), so the register-communication column
			// scans stay paired exactly as in the contiguous block loop.
			for _, le := range slots {
				if le%sw.MeshDim != c.Col {
					continue
				}
				e := en.element(le)
				c.DMA.Get(dinv, e.DinvFlat)
				c.DMA.Get(dflat, e.DFlat)
				c.DMA.Get(metdet, e.Metdet)
				c.DMA.Get(lat, e.Lat)
				c.DMA.Get(phis, cur.Phis[le])
				c.DMA.Get(uT, cur.U[le][s*npsq:s*npsq+slab])
				c.DMA.Get(vT, cur.V[le][s*npsq:s*npsq+slab])
				c.DMA.Get(tT, cur.T[le][s*npsq:s*npsq+slab])
				c.DMA.Get(dpT, cur.DP[le][s*npsq:s*npsq+slab])

				// Pressure: exclusive column scan of dp per node, carried
				// down the CPE column by register communication, then the
				// midpoint offset.
				for n := 0; n < npsq; n++ {
					for k := 0; k < vl; k++ {
						colIn[k] = dpT[k*npsq+n]
					}
					sw.ColumnScanExclusive(c, colIn, colOut, dycore.PTop)
					for k := 0; k < vl; k++ {
						pMid[k*npsq+n] = colOut[k] + colIn[k]/2
					}
					c.CountFlops(int64(2 * vl))
				}

				// Mass-flux divergence per level (vectorized).
				for k := 0; k < vl; k++ {
					o := k * npsq
					for j := 0; j < np; j++ {
						uv := sw.LoadVec4(uT, o+4*j)
						vv := sw.LoadVec4(vT, o+4*j)
						dv := sw.LoadVec4(dpT, o+4*j)
						uv.Mul(dv).Store(flxU, 4*j)
						vv.Mul(dv).Store(flxV, 4*j)
					}
					c.CountVecFlops(int64(2 * npsq))
					divergenceSlabVec4(c, deriv, dinv, metdet, e.DAlpha, flxU, flxV, divDp[o:o+npsq], gv1, gv2)
				}

				// Geopotential: reverse (surface-to-top) scan of
				// Rd T dp / pMid with the half-level fraction.
				for n := 0; n < npsq; n++ {
					for k := 0; k < vl; k++ {
						i := k*npsq + n
						colIn[k] = dycore.Rd * tT[i] * dpT[i] / pMid[i]
					}
					c.CountFlops(int64(3 * vl))
					sw.ColumnScanReverse(c, colIn, colOut, phis[n], 0.5)
					for k := 0; k < vl; k++ {
						phi[k*npsq+n] = colOut[k]
					}
				}

				// Omega running sum: exclusive scan of divDp plus half-level.
				for n := 0; n < npsq; n++ {
					for k := 0; k < vl; k++ {
						colIn[k] = divDp[k*npsq+n]
					}
					sw.ColumnScanExclusive(c, colIn, colOut, 0)
					for k := 0; k < vl; k++ {
						cumDiv[k*npsq+n] = colOut[k] + colIn[k]/2
					}
					c.CountFlops(int64(2 * vl))
				}

				c.DMA.Get(oU, base.U[le][s*npsq:s*npsq+slab])
				c.DMA.Get(oV, base.V[le][s*npsq:s*npsq+slab])
				c.DMA.Get(oT, base.T[le][s*npsq:s*npsq+slab])
				c.DMA.Get(oDP, base.DP[le][s*npsq:s*npsq+slab])

				// Per-level horizontal terms and vectorized tendencies.
				for k := 0; k < vl; k++ {
					o := k * npsq
					for j := 0; j < np; j++ {
						uv := sw.LoadVec4(uT, o+4*j)
						vv := sw.LoadVec4(vT, o+4*j)
						pv := sw.LoadVec4(phi, o+4*j)
						kev := uv.Mul(uv).Add(vv.Mul(vv)).Scale(0.5).Add(pv)
						kev.Store(ke, 4*j)
					}
					c.CountVecFlops(int64(4 * npsq))
					gradientSlabVec4(c, deriv, dinv, e.DAlpha, ke, gx, gy, gv1, gv2)
					gradientSlabVec4(c, deriv, dinv, e.DAlpha, pMid[o:o+npsq], gpx, gpy, gv1, gv2)
					gradientSlabVec4(c, deriv, dinv, e.DAlpha, tT[o:o+npsq], tx, ty, gv1, gv2)
					vorticitySlabVec4(c, deriv, dflat, metdet, e.DAlpha, uT[o:o+npsq], vT[o:o+npsq], vort, gv1, gv2)

					for j := 0; j < np; j++ {
						fv := sw.Vec4{
							2 * dycore.Omega * math.Sin(lat[4*j]),
							2 * dycore.Omega * math.Sin(lat[4*j+1]),
							2 * dycore.Omega * math.Sin(lat[4*j+2]),
							2 * dycore.Omega * math.Sin(lat[4*j+3]),
						}
						uv := sw.LoadVec4(uT, o+4*j)
						vv := sw.LoadVec4(vT, o+4*j)
						tv := sw.LoadVec4(tT, o+4*j)
						pv := sw.LoadVec4(pMid, o+4*j)
						absv := sw.LoadVec4(vort, 4*j).Add(fv)
						vgradP := uv.Mul(sw.LoadVec4(gpx, 4*j)).Add(vv.Mul(sw.LoadVec4(gpy, 4*j)))
						omega := vgradP.Sub(sw.LoadVec4(cumDiv, o+4*j))
						omegaP := omega.Div(pv)
						rt := sw.Splat(dycore.Rd).Mul(tv).Div(pv)
						ut := absv.Mul(vv).Sub(sw.LoadVec4(gx, 4*j)).Sub(rt.Mul(sw.LoadVec4(gpx, 4*j)))
						vt := absv.Neg().Mul(uv).Sub(sw.LoadVec4(gy, 4*j)).Sub(rt.Mul(sw.LoadVec4(gpy, 4*j)))
						tt := uv.Mul(sw.LoadVec4(tx, 4*j)).Add(vv.Mul(sw.LoadVec4(ty, 4*j))).Neg().
							Add(sw.Splat(dycore.Kappa).Mul(tv).Mul(omegaP))
						dpt := sw.LoadVec4(divDp, o+4*j).Neg()

						dtv := sw.Splat(dt)
						sw.LoadVec4(oU, o+4*j).Add(dtv.Mul(ut)).Store(oU, o+4*j)
						sw.LoadVec4(oV, o+4*j).Add(dtv.Mul(vt)).Store(oV, o+4*j)
						sw.LoadVec4(oT, o+4*j).Add(dtv.Mul(tt)).Store(oT, o+4*j)
						sw.LoadVec4(oDP, o+4*j).Add(dtv.Mul(dpt)).Store(oDP, o+4*j)
					}
					c.CountVecFlops(int64(38 * npsq))
				}

				c.DMA.Put(out.U[le][s*npsq:s*npsq+slab], oU)
				c.DMA.Put(out.V[le][s*npsq:s*npsq+slab], oV)
				c.DMA.Put(out.T[le][s*npsq:s*npsq+slab], oT)
				c.DMA.Put(out.DP[le][s*npsq:s*npsq+slab], oDP)
			}
		})
	})
	return en.collectSplit(Athread, sub.Phase)
}
