package exec

import (
	"swcam/internal/dycore"
	"swcam/internal/sw"
)

// eulerStep dispatches the euler_step kernel over the selected element
// subset; the exported, instrumented entry points are in instrument.go.
func (en *Engine) eulerStep(sub Subset, b Backend, st *dycore.State, dt float64) Cost {
	en.beginLaunch(sub)
	sel := en.sel(sub)
	switch b {
	case Intel, MPE:
		return en.eulerSerial(sub, b, sel, st, dt)
	case OpenACC:
		return en.eulerOpenACC(sub, sel, st, dt)
	case Athread:
		return en.eulerAthread(sub, sel, st, dt)
	}
	panic("exec: unknown backend")
}

// eulerSerial is the reference path: the dycore element kernel on one
// conventional core (Intel) or on the management core (MPE), tiled
// across the worker pool.
func (en *Engine) eulerSerial(sub Subset, b Backend, sel *ElemSubset, st *dycore.State, dt float64) Cost {
	flops, bytes := en.runTilesSerialOn(sel, func(w *dynWorker, slots []int, p *serialPartial) {
		for _, le := range slots {
			e := en.element(le)
			for q := 0; q < en.Qsize; q++ {
				qdp := st.QdpAt(le, q)
				dycore.EulerStepElem(e, en.M.DerivFlat, en.Np, en.Nlev,
					st.U[le], st.V[le], qdp, qdp, dt, w.flxU, w.flxV, w.div, w.gv1, w.gv2)
			}
			p.flops += eulerStageFlops(en.Np, en.Nlev) * int64(en.Qsize)
			p.bytes += eulerBytes(en.Np, en.Nlev, en.Qsize)
		}
	})
	return en.serialSplit(b, sub.Phase, flops, bytes)
}

// eulerOpenACC is Algorithm 1: the collapse(2) parallelization over
// (element, tracer) pairs the Sunway OpenACC compiler produces. Because
// the copyin sits inside the q loop, every (ie, q) iteration re-reads
// the velocity and metric arrays — the redundant traffic that made
// bandwidth "the inevitable bottleneck" (§7.3). Each element tile covers
// the item range [lo*qsize, hi*qsize) with the global item → CPE
// assignment intact.
func (en *Engine) eulerOpenACC(sub Subset, sel *ElemSubset, st *dycore.State, dt float64) Cost {
	np, nlev, qsize := en.Np, en.Nlev, en.Qsize
	npsq := np * np
	en.runTilesCGOn(sel, sub.Phase == Close, func(cg *sw.CoreGroup, slots []int) {
		cg.Spawn(func(c *sw.CPE) {
			ldm := c.LDM
			// Per-element restart keeps the global (element, tracer) ->
			// CPE assignment and per-CPE item order of the contiguous
			// collapse(2) loop.
			for _, le := range slots {
				for w := firstWorkItem(le*qsize, c.ID); w < (le+1)*qsize; w += sw.CPEsPerCG {
					ldm.Reset()
					q := w % qsize
					e := en.element(le)

					// Per-iteration copyin of everything, Algorithm 1 style.
					deriv := ldm.MustAlloc("deriv", npsq)
					dinv := ldm.MustAlloc("dinv", 4*npsq)
					metdet := ldm.MustAlloc("metdet", npsq)
					uT := ldm.MustAlloc("u", nlev*npsq)
					vT := ldm.MustAlloc("v", nlev*npsq)
					qT := ldm.MustAlloc("qdp", nlev*npsq)
					c.DMA.GetShared(deriv, en.M.DerivFlat)
					c.DMA.Get(dinv, e.DinvFlat)
					c.DMA.Get(metdet, e.Metdet)
					c.DMA.Get(uT, st.U[le])
					c.DMA.Get(vT, st.V[le])
					qdp := st.QdpAt(le, q)
					c.DMA.Get(qT, qdp)

					flxU := ldm.MustAlloc("flxU", npsq)
					flxV := ldm.MustAlloc("flxV", npsq)
					div := ldm.MustAlloc("div", npsq)
					gv1 := ldm.MustAlloc("gv1", npsq)
					gv2 := ldm.MustAlloc("gv2", npsq)
					for k := 0; k < nlev; k++ {
						o := k * npsq
						for n := 0; n < npsq; n++ {
							flxU[n] = uT[o+n] * qT[o+n]
							flxV[n] = vT[o+n] * qT[o+n]
						}
						dycore.DivergenceSlab(deriv, dinv, metdet, e.DAlpha, np,
							flxU, flxV, div, gv1, gv2)
						for n := 0; n < npsq; n++ {
							qT[o+n] -= dt * div[n]
						}
					}
					c.CountFlops(eulerStageFlops(np, nlev)) // scalar: no manual vectorization
					c.DMA.Put(qdp, qT)
				}
			}
		})
	})
	// One parallel-region launch for the whole kernel (the OpenACC
	// runtime launches per directive region; the q loop is collapsed
	// into the same region, and the host-side tiles all simulate
	// portions of that one region).
	return en.collectSplit(OpenACC, sub.Phase)
}

// eulerAthread is Algorithm 2: elements advance in blocks of 8 across
// the CPE mesh columns, the 8 mesh rows split the vertical into
// nlev/8-layer groups, non-tracer arrays are fetched once per element
// and kept resident in LDM across the whole q loop, and the inner
// arithmetic runs through the vector unit. Tiles are MeshDim-aligned,
// so each tile's block loop visits exactly the untiled (base, column)
// pairs within its range.
func (en *Engine) eulerAthread(sub Subset, sel *ElemSubset, st *dycore.State, dt float64) Cost {
	np := en.Np
	npsq := np * np
	maxVl := en.maxRowLevels()
	en.runTilesCGOn(sel, sub.Phase == Close, func(cg *sw.CoreGroup, slots []int) {
		cg.Spawn(func(c *sw.CPE) {
			ldm := c.LDM
			s, vl := en.rowLevels(c.Row)
			slab := vl * npsq

			// Persistent tiles, allocated once for the whole kernel (sized
			// for the largest row block so all CPEs allocate identically).
			deriv := ldm.MustAlloc("deriv", npsq)
			c.Setup(func() { c.DMA.GetShared(deriv, en.M.DerivFlat) })
			dinv := ldm.MustAlloc("dinv", 4*npsq)
			metdet := ldm.MustAlloc("metdet", npsq)
			uT := ldm.MustAlloc("u", maxVl*npsq)[:slab]
			vT := ldm.MustAlloc("v", maxVl*npsq)[:slab]
			qT := ldm.MustAlloc("qdp", maxVl*npsq)[:slab]
			flxU := ldm.MustAlloc("flxU", npsq)
			flxV := ldm.MustAlloc("flxV", npsq)
			div := ldm.MustAlloc("div", npsq)
			gv1 := ldm.MustAlloc("gv1", npsq)
			gv2 := ldm.MustAlloc("gv2", npsq)

			// Column membership is per element (le % MeshDim), so any
			// slot list executes on the same CPEs as a contiguous run.
			for _, le := range slots {
				if le%sw.MeshDim != c.Col {
					continue
				}
				e := en.element(le)
				if vl == 0 {
					continue // more mesh rows than levels: this row idles
				}
				// Non-q arrays: one DMA per element, reused across all tracers.
				c.DMA.Get(dinv, e.DinvFlat)
				c.DMA.Get(metdet, e.Metdet)
				c.DMA.Get(uT, st.U[le][s*npsq:s*npsq+slab])
				c.DMA.Get(vT, st.V[le][s*npsq:s*npsq+slab])

				for q := 0; q < en.Qsize; q++ {
					qdp := st.QdpAt(le, q)
					c.DMA.Get(qT, qdp[s*npsq:s*npsq+slab])
					for k := 0; k < vl; k++ {
						o := k * npsq
						for j := 0; j < np; j++ {
							uv := sw.LoadVec4(uT, o+4*j)
							vv := sw.LoadVec4(vT, o+4*j)
							qv := sw.LoadVec4(qT, o+4*j)
							uv.Mul(qv).Store(flxU, 4*j)
							vv.Mul(qv).Store(flxV, 4*j)
						}
						c.CountVecFlops(int64(2 * npsq))
						divergenceSlabVec4(c, deriv, dinv, metdet, e.DAlpha,
							flxU, flxV, div, gv1, gv2)
						for j := 0; j < np; j++ {
							qv := sw.LoadVec4(qT, o+4*j)
							dv := sw.LoadVec4(div, 4*j)
							qv.Sub(dv.Scale(dt)).Store(qT, o+4*j)
						}
						c.CountVecFlops(int64(2 * npsq))
					}
					c.DMA.Put(qdp[s*npsq:s*npsq+slab], qT)
				}
			}
		})
	})
	return en.collectSplit(Athread, sub.Phase)
}
