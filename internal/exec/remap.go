package exec

import (
	"swcam/internal/dycore"
	"swcam/internal/sw"
)

// verticalRemap runs the vertical_remap kernel (Table 1 row 3) under the
// chosen backend, remapping every local element's state back to the
// reference hybrid grid; the exported, instrumented entry point is in
// instrument.go.
//
// The remap is column-independent, so the CPE backends distribute
// (element, node) columns across the 64 cores. The columns live strided
// in the level-major arrays, which is exactly the axis-switch problem of
// §7.3/§7.5: the Athread backend gathers each column with one strided
// DMA per field (fine-grained but batched by the DMA engine), while the
// OpenACC backend re-fetches whole level slabs per column and extracts
// the single node it needs — the directive-level access pattern that
// cannot express a stride.
func (en *Engine) verticalRemap(b Backend, h *dycore.HybridCoord, st *dycore.State) Cost {
	en.beginLaunch(Subset{})
	np, nlev, qsize := en.Np, en.Nlev, en.Qsize
	npsq := np * np
	switch b {
	case Intel, MPE:
		flops, bytes := en.runTilesSerial(func(w *dynWorker, lo, hi int, p *serialPartial) {
			for le := lo; le < hi; le++ {
				dycore.RemapStateElem(h, np, nlev, qsize,
					st.U[le], st.V[le], st.T[le], st.DP[le], st.Qdp[le],
					w.colA, w.colB, w.colC, w.colD, w.rws)
				p.flops += remapFlops(np, nlev, qsize)
				p.bytes += remapBytes(np, nlev, qsize)
			}
		})
		return serialCost(b, flops, bytes)

	case OpenACC:
		// The directive version's whole-slab fetches would overlap other
		// cores' single-value write-backs; on the hardware each core only
		// consumes its own column so the overlap is benign, but in the
		// simulator we read from an immutable snapshot to keep the Go
		// memory model honest. Traffic accounting is unchanged. Each tile
		// snapshots only its own element rows (into the worker's pooled
		// buffer): tiles never read another tile's rows, so the restricted
		// snapshot is exactly as honest as the former whole-state copy.
		en.runTilesCG(func(cg *sw.CoreGroup, lo, hi int) {
			wk := en.workerOf(cg)
			inU, inV, inT, inDP, inQ := wk.snapshot(st.U, st.V, st.T, st.DP, st.Qdp,
				lo, hi, nlev*npsq, qsize*nlev*npsq)
			qdpAt := func(le, q int) []float64 {
				n := nlev * npsq
				return inQ[le-lo][q*n : (q+1)*n]
			}
			wlo, whi := lo*npsq, hi*npsq
			cg.Spawn(func(c *sw.CPE) {
				ldm := c.LDM
				rw := wk.cpeRWS[c.ID]
				for w := firstWorkItem(wlo, c.ID); w < whi; w += sw.CPEsPerCG {
					ldm.Reset()
					le, n := w/npsq, w%npsq
					// Whole-slab fetches per column: nlev levels x npsq nodes
					// read to use one node each — the un-hoistable pattern.
					slabBuf := ldm.MustAlloc("slab", npsq)
					colSrc := ldm.MustAlloc("colSrc", nlev)
					colVal := ldm.MustAlloc("colVal", nlev)
					colRef := ldm.MustAlloc("colRef", nlev)
					colOut := ldm.MustAlloc("colOut", nlev)

					fetchColumn := func(f []float64, dst []float64) {
						for k := 0; k < nlev; k++ {
							c.DMA.Get(slabBuf, f[k*npsq:(k+1)*npsq])
							dst[k] = slabBuf[n]
						}
					}
					storeColumn := func(f []float64, src []float64) {
						// One single-value DMA per level: the write-back
						// granule a directive compiler emits for a strided
						// store it cannot batch.
						for k := 0; k < nlev; k++ {
							slabBuf[0] = src[k]
							c.DMA.PutStride(f[k*npsq+n:], slabBuf[:1], 1, 1, 1)
						}
					}

					fetchColumn(inDP[le-lo], colSrc)
					ps := dycore.PTop
					for k := 0; k < nlev; k++ {
						ps += colSrc[k]
					}
					c.CountFlops(int64(nlev))
					h.ReferenceDP(ps, colRef)
					c.CountFlops(int64(4 * nlev))

					remap := func(src, dst []float64, asMass bool) {
						fetchColumn(src, colVal)
						if asMass {
							for k := 0; k < nlev; k++ {
								colVal[k] /= colSrc[k]
							}
							c.CountFlops(int64(nlev))
						}
						rw.RemapPPM(colSrc, colVal, colRef, colOut)
						c.CountFlops(int64(40 * nlev))
						if asMass {
							for k := 0; k < nlev; k++ {
								colOut[k] *= colRef[k]
							}
							c.CountFlops(int64(nlev))
						}
						storeColumn(dst, colOut)
					}
					remap(inU[le-lo], st.U[le], false)
					remap(inV[le-lo], st.V[le], false)
					remap(inT[le-lo], st.T[le], false)
					for q := 0; q < qsize; q++ {
						remap(qdpAt(le, q), st.QdpAt(le, q), true)
					}
					storeColumn(st.DP[le], colRef)
				}
			})
		})
		return en.collect(OpenACC, 1)

	case Athread:
		en.runTilesCG(func(cg *sw.CoreGroup, lo, hi int) {
			wk := en.workerOf(cg)
			wlo, whi := lo*npsq, hi*npsq
			cg.Spawn(func(c *sw.CPE) {
				ldm := c.LDM
				rw := wk.cpeRWS[c.ID]
				colSrc := ldm.MustAlloc("colSrc", nlev)
				colVal := ldm.MustAlloc("colVal", nlev)
				colRef := ldm.MustAlloc("colRef", nlev)
				colOut := ldm.MustAlloc("colOut", nlev)
				for w := firstWorkItem(wlo, c.ID); w < whi; w += sw.CPEsPerCG {
					le, n := w/npsq, w%npsq
					// One strided DMA gathers the whole column per field.
					c.DMA.GetStride(colSrc, st.DP[le][n:], 1, npsq, nlev)
					ps := dycore.PTop
					for k := 0; k < nlev; k++ {
						ps += colSrc[k]
					}
					c.CountFlops(int64(nlev))
					h.ReferenceDP(ps, colRef)
					c.CountFlops(int64(4 * nlev))

					remap := func(f []float64, asMass bool) {
						c.DMA.GetStride(colVal, f[n:], 1, npsq, nlev)
						if asMass {
							for k := 0; k < nlev; k++ {
								colVal[k] /= colSrc[k]
							}
							c.CountFlops(int64(nlev))
						}
						rw.RemapPPM(colSrc, colVal, colRef, colOut)
						c.CountFlops(int64(40 * nlev))
						if asMass {
							for k := 0; k < nlev; k++ {
								colOut[k] *= colRef[k]
							}
							c.CountFlops(int64(nlev))
						}
						c.DMA.PutStride(f[n:], colOut, 1, npsq, nlev)
					}
					remap(st.U[le], false)
					remap(st.V[le], false)
					remap(st.T[le], false)
					for q := 0; q < qsize; q++ {
						remap(st.QdpAt(le, q), true)
					}
					c.DMA.PutStride(st.DP[le][n:], colRef, 1, npsq, nlev)
				}
			})
		})
		return en.collect(Athread, 1)
	}
	panic("exec: unknown backend")
}
