// Package exec implements the paper's four execution strategies for the
// CAM-SE kernels and runs them against the SW26010 simulator:
//
//   - Intel:   the reference — one conventional x86 core running the
//     serial dycore kernels (the paper's Xeon E5-2680v3 baseline).
//   - MPE:     the same serial kernels on the SW26010 management core
//     (the paper's "original ported version using only MPEs").
//   - OpenACC: the first-stage refactoring (§7.2): work spread over the
//     64 CPEs, but with the Sunway OpenACC compiler's constraints —
//     every outer-loop iteration re-reads its input arrays (Algorithm 1),
//     no manual vectorization, a threading launch overhead per parallel
//     region, and no register communication (vertical dependencies are
//     computed redundantly per CPE).
//   - Athread: the fine-grained redesign (§7.3-7.5): persistent LDM
//     tiles, 4-wide vectorized inner loops, the vertical-layer
//     decomposition of Figure 2 with register-communication scans, and
//     batched DMA.
//
// All four backends execute the same floating-point work and are
// validated against each other; they differ in the architectural events
// they generate (Cost), which internal/perf converts into modeled time.
package exec

import "fmt"

// Backend selects an execution strategy.
type Backend int

// The four execution strategies of Table 1 / Figure 5.
const (
	Intel Backend = iota
	MPE
	OpenACC
	Athread
)

// String returns the paper's name for the backend.
func (b Backend) String() string {
	switch b {
	case Intel:
		return "Intel"
	case MPE:
		return "MPE"
	case OpenACC:
		return "OpenACC"
	case Athread:
		return "Athread"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// Backends lists all four in Table 1 order.
var Backends = []Backend{Intel, MPE, OpenACC, Athread}

// Cost is the architectural event count of one kernel execution on one
// process (one core group, or one conventional core for Intel).
type Cost struct {
	Backend Backend

	FlopsScalar int64 // scalar double-precision operations, total
	FlopsVector int64 // vector-retired double-precision operations, total
	MaxCPEFlops int64 // busiest CPE's flops — bounds the parallel makespan

	MemBytes int64 // main-memory traffic (DMA for CPE backends, loads/stores otherwise)
	DMAOps   int64 // discrete DMA transfers (issue latency each)
	RegMsgs  int64 // register-communication messages
	Launches int64 // parallel-region spawns (threading overhead each)
	LDMPeak  int64 // peak LDM working set, bytes (must be <= 64 KB)
}

// Flops returns total double-precision operations.
func (c Cost) Flops() int64 { return c.FlopsScalar + c.FlopsVector }

// Add accumulates another cost (same backend) into c.
func (c *Cost) Add(o Cost) {
	c.FlopsScalar += o.FlopsScalar
	c.FlopsVector += o.FlopsVector
	c.MemBytes += o.MemBytes
	c.DMAOps += o.DMAOps
	c.RegMsgs += o.RegMsgs
	c.Launches += o.Launches
	if o.MaxCPEFlops > c.MaxCPEFlops {
		c.MaxCPEFlops = o.MaxCPEFlops
	}
	if o.LDMPeak > c.LDMPeak {
		c.LDMPeak = o.LDMPeak
	}
}
