// Intra-rank tiling: each kernel invocation splits the rank's element
// list into contiguous tiles and runs them concurrently on a bounded
// pool of host workers, one private workspace (and, for the CPE
// backends, one private simulated core group) per worker.
//
// The determinism contract — tiled output bit-identical to the
// single-worker path for every backend and every worker count — rests
// on three properties:
//
//  1. Tiles are aligned to the CPE mesh width (sw.MeshDim): an
//     Athread-style block loop over a tile visits exactly the
//     (element, CPE column) pairs the untiled loop visits, so every
//     element is computed by the same simulated CPE with the same
//     arithmetic, and per-CPE counters land on the same ids.
//  2. Round-robin work-item loops (OpenACC collapse, remap columns,
//     shallow-water elements) restart inside a tile at
//     firstWorkItem(start, id), preserving the global item → CPE
//     assignment.
//  3. Tiles write disjoint element rows and read only their own rows
//     (the one cross-row reader, the OpenACC remap, snapshots its tile
//     first), so there are no cross-tile data flows whose order could
//     matter; per-tile partial sums and counters are gathered in fixed
//     tile order afterwards.
//  4. Per-launch setup fetches hoisted out of a kernel's work loop
//     (the broadcast derivative-matrix load) are wrapped in sw.CPE
//     Setup: every tile's core group still loads its own LDM image,
//     but only the first tile accounts the traffic, so DMA counters
//     match the untiled single spawn exactly.
package exec

import (
	"runtime"
	"time"

	"swcam/internal/obs"
	"swcam/internal/sw"
)

// tile is a contiguous, MeshDim-aligned range [Lo, Hi) of local
// element slots.
type tile struct{ Lo, Hi int }

// serialPartial collects one tile's analytic flop/byte sums for the
// serial backends; padded so concurrent tiles don't share a cache line.
type serialPartial struct {
	flops, bytes int64
	_            [48]byte
}

// DefaultDynWorkers is the worker-pool size used when none is
// configured: the host's CPUs, capped at the CPE mesh width (tiles are
// MeshDim-aligned, so more workers than mesh-width element blocks
// rarely pay off at bench scales).
func DefaultDynWorkers() int {
	n := runtime.NumCPU()
	if n > sw.MeshDim {
		n = sw.MeshDim
	}
	if n < 1 {
		n = 1
	}
	return n
}

// minBlocksPerWorker is the adaptive-sizing floor: a worker must own at
// least this many MeshDim-aligned element blocks before the goroutine
// launch and tile barrier pay for themselves. Below it, the measured
// BENCH history shows parallel tiling *losing* to serial (BENCH_1 ->
// BENCH_2: dyn_workers=4 cost ~10% SYPD on a small grid), so auto mode
// downshifts — to serial in the limit — instead of splitting for show.
const minBlocksPerWorker = 4

// AdaptiveWorkers returns the worker-pool size for a rank that owns
// nelems elements: at most max (<= 0 selects DefaultDynWorkers), then
// downshifted so every worker keeps >= minBlocksPerWorker aligned
// blocks. Results are bit-identical for every outcome; this knob trades
// only overhead against parallelism.
func AdaptiveWorkers(nelems, max int) int {
	if max <= 0 {
		max = DefaultDynWorkers()
	}
	blocks := (nelems + sw.MeshDim - 1) / sw.MeshDim
	w := blocks / minBlocksPerWorker
	if w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SetWorkersAuto sizes the pool adaptively for this engine's local
// element count (AdaptiveWorkers with the machine default as the cap) —
// the per-rank resolution of "dyn_workers auto": big ranks fan out,
// small ranks run the inline serial fast path with coarser (whole-rank)
// tiles.
func (en *Engine) SetWorkersAuto() {
	en.SetWorkers(AdaptiveWorkers(len(en.Elems), 0))
}

// SetWorkers sizes the intra-rank worker pool to n (n <= 0 selects
// DefaultDynWorkers). Worker workspaces are allocated here, once;
// steady-state kernel calls then run without heap allocation. Not safe
// to call concurrently with kernel execution.
func (en *Engine) SetWorkers(n int) {
	if n <= 0 {
		n = DefaultDynWorkers()
	}
	if n == en.workers && en.pool != nil {
		return
	}
	en.workers = n
	// Keep existing workers (their core-group counters may hold state
	// between collects only transiently — kernels always collect before
	// returning — but their LDM high-water marks feed LDMPeak, so
	// shrinking the pool mid-run would lose nothing correctness-wise).
	for len(en.pool) < n {
		en.pool = append(en.pool, newDynWorker(en.Np, en.Nlev))
	}
	en.pool = en.pool[:n]
	en.tilesC = computeTiles(len(en.Elems), n)
	// Subset tiles are not MeshDim-aligned, so a subset can split into
	// more tiles than the aligned Whole decomposition (up to one per
	// worker); size the shared per-tile state for the pool.
	en.partials = make([]serialPartial, n)
	en.tilePanics = make([]any, n)
	if en.allSub == nil {
		ids := make([]int, len(en.Elems))
		for i := range ids {
			ids[i] = i
		}
		en.allSub = &ElemSubset{slots: ids}
	}
	// The identity subset reuses the aligned Whole tiles (slot i is
	// element i), so a Whole run through the subset runners executes
	// exactly the tile shapes of the legacy runners.
	en.allSub.tiles = en.tilesC
	for _, s := range en.subs {
		s.retile(n)
	}
	en.bindObsRegistry()
}

// Workers reports the configured intra-rank worker-pool size.
func (en *Engine) Workers() int { return en.workers }

// Tiles reports how many element tiles kernel calls actually run
// (min(workers, aligned element blocks), and 1 when the rank is empty).
func (en *Engine) Tiles() int { return len(en.tilesC) }

// computeTiles splits n elements into at most `workers` contiguous
// tiles aligned to sw.MeshDim. Alignment blocks are distributed as
// evenly as possible (counts differ by at most one), matching how the
// untiled Athread block loop strides the list. n == 0 still yields one
// empty tile so every kernel performs exactly one (empty) launch
// regardless of the pool size.
func computeTiles(n, workers int) []tile {
	if n == 0 {
		return []tile{{0, 0}}
	}
	blocks := (n + sw.MeshDim - 1) / sw.MeshDim
	nt := workers
	if nt > blocks {
		nt = blocks
	}
	tiles := make([]tile, nt)
	base, rem := blocks/nt, blocks%nt
	b := 0
	for i := range tiles {
		nb := base
		if i < rem {
			nb++
		}
		lo := b * sw.MeshDim
		b += nb
		hi := b * sw.MeshDim
		if hi > n {
			hi = n
		}
		tiles[i] = tile{lo, hi}
	}
	return tiles
}

// firstWorkItem returns the smallest work-item index >= start assigned
// to CPE id under the global round-robin distribution (item % CPEsPerCG
// == id). Item loops restricted to a tile's [start, end) range start
// here so tiling never changes which CPE computes which item.
func firstWorkItem(start, id int) int {
	r := (id - start%sw.CPEsPerCG + sw.CPEsPerCG) % sw.CPEsPerCG
	return start + r
}

// runTilesSerial runs fn over every tile on the worker pool, each tile
// with its own dynWorker scratch, and returns the analytic flop/byte
// sums accumulated in fixed tile order. With one tile the call is
// inline on the caller's goroutine — the zero-overhead, zero-allocation
// serial path.
func (en *Engine) runTilesSerial(fn func(w *dynWorker, lo, hi int, p *serialPartial)) (flops, bytes int64) {
	tiles := en.tilesC
	for i := range en.partials {
		en.partials[i] = serialPartial{}
	}
	if len(tiles) == 1 {
		sp, done := en.tileObsStart(0)
		fn(en.pool[0], tiles[0].Lo, tiles[0].Hi, &en.partials[0])
		en.tileObsEnd(0, sp, done)
		return en.partials[0].flops, en.partials[0].bytes
	}
	en.curSerialFn = fn
	en.tileWG.Add(len(tiles))
	for i := 1; i < len(tiles); i++ {
		go en.serialTile(i)
	}
	en.serialTile(0)
	en.tileWG.Wait()
	en.curSerialFn = nil
	en.rethrowTilePanic()
	for i := range tiles {
		flops += en.partials[i].flops
		bytes += en.partials[i].bytes
	}
	return flops, bytes
}

// serialTile executes one tile of the current serial kernel; panics are
// parked for the coordinating goroutine to re-raise.
func (en *Engine) serialTile(i int) {
	defer en.tileWG.Done()
	defer func() { en.tilePanics[i] = recover() }()
	sp, done := en.tileObsStart(i)
	t := en.tilesC[i]
	en.curSerialFn(en.pool[i], t.Lo, t.Hi, &en.partials[i])
	en.tileObsEnd(i, sp, done)
}

// runTilesCG runs fn over every tile, handing each tile its worker's
// private simulated core group; fn spawns the CPE closure itself (so it
// can do per-tile setup such as the OpenACC remap snapshot). Counters
// accumulate on the per-worker core groups and are merged by collect.
func (en *Engine) runTilesCG(fn func(cg *sw.CoreGroup, lo, hi int)) {
	tiles := en.tilesC
	for i := range tiles {
		en.pool[i].ensureCG()
		en.pool[i].cg.SetReplaySetup(i != 0)
	}
	if len(tiles) == 1 {
		sp, done := en.tileObsStart(0)
		fn(en.pool[0].cg, tiles[0].Lo, tiles[0].Hi)
		en.tileObsEnd(0, sp, done)
		return
	}
	en.curCGFn = fn
	en.tileWG.Add(len(tiles))
	for i := 1; i < len(tiles); i++ {
		go en.cgTile(i)
	}
	en.cgTile(0)
	en.tileWG.Wait()
	en.curCGFn = nil
	en.rethrowTilePanic()
}

// workerOf maps a core group handed out by runTilesCG back to its
// owning worker, for kernels that also need the worker's host-side
// scratch (the OpenACC remap snapshot). The pool is at most MeshDim
// entries, so the scan is trivial and allocation-free.
func (en *Engine) workerOf(cg *sw.CoreGroup) *dynWorker {
	for _, w := range en.pool {
		if w.cg == cg {
			return w
		}
	}
	panic("exec: core group not owned by this engine's pool")
}

// cgTile executes one tile of the current core-group kernel.
func (en *Engine) cgTile(i int) {
	defer en.tileWG.Done()
	defer func() { en.tilePanics[i] = recover() }()
	sp, done := en.tileObsStart(i)
	t := en.tilesC[i]
	en.curCGFn(en.pool[i].cg, t.Lo, t.Hi)
	en.tileObsEnd(i, sp, done)
}

// rethrowTilePanic re-raises the first parked tile panic on the rank
// goroutine, where the mpirt runtime's failure handling expects kernel
// faults to surface.
func (en *Engine) rethrowTilePanic() {
	for i, p := range en.tilePanics {
		if p != nil {
			en.tilePanics[i] = nil
			panic(p)
		}
	}
}

// tileObsStart opens a per-tile trace span (tid = worker slot + 1, so
// worker utilization reads directly off the trace timeline next to the
// rank's tid-0 kernel spans) and a busy-time stamp when observation is
// attached; both are no-ops — and allocation-free — otherwise.
func (en *Engine) tileObsStart(i int) (sp obs.Span, start time.Time) {
	if en.obsTr == nil && en.busyNs == nil {
		return obs.Span{}, time.Time{}
	}
	if en.obsTr != nil {
		sp = en.obsTr.BeginTid(en.obsRank, i+1, en.curKernel+".tile", en.curBackend)
	}
	return sp, time.Now()
}

func (en *Engine) tileObsEnd(i int, sp obs.Span, start time.Time) {
	sp.End()
	if en.busyNs != nil && i < len(en.busyNs) && !start.IsZero() {
		en.busyNs[i].Add(time.Since(start).Nanoseconds())
	}
}
