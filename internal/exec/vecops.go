package exec

import (
	"swcam/internal/dycore"
	"swcam/internal/sw"
)

// Vectorized slab operators for the Athread backend: the same arithmetic
// as the dycore scalar slabs, restructured into 4-lane Vec4 operations
// over groups of four consecutive nodes (one GLL row), the way the
// paper's fine-grained redesign hand-vectorizes its inner loops (§7.3).
// Every lane performs the scalar sequence of operations in the scalar
// order, so results match the serial kernels bit for bit (no FMA
// contraction, no reassociation). Only np = 4 is supported — the Vec4
// width is the reason CAM-SE's np=4 maps so naturally onto the SW26010.

// lanes4 gathers the strided metric coefficients dinvFlat[4*n + off] for
// the four nodes n = 4*j .. 4*j+3 into one register.
func lanes4(m []float64, j, off int) sw.Vec4 {
	base := 16*j + off
	return sw.Vec4{m[base], m[base+4], m[base+8], m[base+12]}
}

// divergenceSlabVec4 is dycore.DivergenceSlab vectorized. Scratch gv1,
// gv2 are np*np LDM buffers. Counts vector flops and shuffle-free
// gathers on the CPE.
func divergenceSlabVec4(c *sw.CPE, derivFlat, dinvFlat, metdet []float64, dAlpha float64,
	u, v, div, gv1, gv2 []float64) {
	const np = 4
	// Pointwise: gv = metdet * (Dinv . (u,v)), four nodes per iteration.
	for j := 0; j < np; j++ {
		uv := sw.LoadVec4(u, 4*j)
		vv := sw.LoadVec4(v, 4*j)
		md := sw.LoadVec4(metdet, 4*j)
		c1 := lanes4(dinvFlat, j, 0).Mul(uv).Add(lanes4(dinvFlat, j, 1).Mul(vv))
		c2 := lanes4(dinvFlat, j, 2).Mul(uv).Add(lanes4(dinvFlat, j, 3).Mul(vv))
		md.Mul(c1).Store(gv1, 4*j)
		md.Mul(c2).Store(gv2, 4*j)
	}
	c.CountVecFlops(4 * np * 8)

	fac := 2 / dAlpha
	for j := 0; j < np; j++ {
		// dda over the four i-lanes: sum_m derivcol(m) * gv1[j][m].
		dda := sw.Splat(0)
		ddb := sw.Splat(0)
		for m := 0; m < np; m++ {
			dcol := sw.Vec4{derivFlat[0*np+m], derivFlat[1*np+m], derivFlat[2*np+m], derivFlat[3*np+m]}
			dda = dda.Add(dcol.Mul(sw.Splat(gv1[j*np+m])))
			drow := sw.Splat(derivFlat[j*np+m])
			ddb = ddb.Add(drow.Mul(sw.LoadVec4(gv2, m*np)))
		}
		out := dda.Add(ddb).Scale(fac).Scale(dycore.Rrearth).Div(sw.LoadVec4(metdet, 4*j))
		out.Store(div, 4*j)
	}
	c.CountVecFlops(4 * np * (4*np + 4))
}

// gradientSlabVec4 is dycore.GradientSlab vectorized; scratch da, db.
func gradientSlabVec4(c *sw.CPE, derivFlat, dinvFlat []float64, dAlpha float64,
	s, gx, gy, da, db []float64) {
	const np = 4
	fac := 2 / dAlpha
	for j := 0; j < np; j++ {
		ga := sw.Splat(0)
		gb := sw.Splat(0)
		for m := 0; m < np; m++ {
			dcol := sw.Vec4{derivFlat[0*np+m], derivFlat[1*np+m], derivFlat[2*np+m], derivFlat[3*np+m]}
			ga = ga.Add(dcol.Mul(sw.Splat(s[j*np+m])))
			gb = gb.Add(sw.Splat(derivFlat[j*np+m]).Mul(sw.LoadVec4(s, m*np)))
		}
		ga.Scale(fac).Store(da, 4*j)
		gb.Scale(fac).Store(db, 4*j)
	}
	c.CountVecFlops(4 * np * (4*np + 2))
	for j := 0; j < np; j++ {
		dav := sw.LoadVec4(da, 4*j)
		dbv := sw.LoadVec4(db, 4*j)
		gxv := lanes4(dinvFlat, j, 0).Mul(dav).Add(lanes4(dinvFlat, j, 2).Mul(dbv)).Scale(dycore.Rrearth)
		gyv := lanes4(dinvFlat, j, 1).Mul(dav).Add(lanes4(dinvFlat, j, 3).Mul(dbv)).Scale(dycore.Rrearth)
		gxv.Store(gx, 4*j)
		gyv.Store(gy, 4*j)
	}
	c.CountVecFlops(4 * np * 8)
}

// vorticitySlabVec4 is dycore.VorticitySlab vectorized; scratch cov1, cov2.
func vorticitySlabVec4(c *sw.CPE, derivFlat, dFlat, metdet []float64, dAlpha float64,
	u, v, vort, cov1, cov2 []float64) {
	const np = 4
	for j := 0; j < np; j++ {
		uv := sw.LoadVec4(u, 4*j)
		vv := sw.LoadVec4(v, 4*j)
		c1 := lanes4(dFlat, j, 0).Mul(uv).Add(lanes4(dFlat, j, 2).Mul(vv))
		c2 := lanes4(dFlat, j, 1).Mul(uv).Add(lanes4(dFlat, j, 3).Mul(vv))
		c1.Store(cov1, 4*j)
		c2.Store(cov2, 4*j)
	}
	c.CountVecFlops(4 * np * 6)
	fac := 2 / dAlpha
	for j := 0; j < np; j++ {
		dda := sw.Splat(0)
		ddb := sw.Splat(0)
		for m := 0; m < np; m++ {
			dcol := sw.Vec4{derivFlat[0*np+m], derivFlat[1*np+m], derivFlat[2*np+m], derivFlat[3*np+m]}
			dda = dda.Add(dcol.Mul(sw.Splat(cov2[j*np+m])))
			ddb = ddb.Add(sw.Splat(derivFlat[j*np+m]).Mul(sw.LoadVec4(cov1, m*np)))
		}
		out := dda.Sub(ddb).Scale(fac).Scale(dycore.Rrearth).Div(sw.LoadVec4(metdet, 4*j))
		out.Store(vort, 4*j)
	}
	c.CountVecFlops(4 * np * (4*np + 4))
}

// laplaceSlabVec4 composes gradient + divergence (scratch s1..s4).
func laplaceSlabVec4(c *sw.CPE, derivFlat, dinvFlat, metdet []float64, dAlpha float64,
	s, out, s1, s2, s3, s4 []float64) {
	gradientSlabVec4(c, derivFlat, dinvFlat, dAlpha, s, s1, s2, s3, s4)
	divergenceSlabVec4(c, derivFlat, dinvFlat, metdet, dAlpha, s1, s2, out, s3, s4)
}

// vecLaplaceSlabVec4 is dycore.VecLaplaceSlab vectorized (scratch s1..s6).
func vecLaplaceSlabVec4(c *sw.CPE, derivFlat, dFlat, dinvFlat, metdet []float64, dAlpha float64,
	u, v, lu, lv, s1, s2, s3, s4, s5, s6 []float64) {
	const np = 4
	div, vort := s1, s2
	divergenceSlabVec4(c, derivFlat, dinvFlat, metdet, dAlpha, u, v, div, s3, s4)
	vorticitySlabVec4(c, derivFlat, dFlat, metdet, dAlpha, u, v, vort, s3, s4)
	gradientSlabVec4(c, derivFlat, dinvFlat, dAlpha, div, lu, lv, s3, s4)
	gradientSlabVec4(c, derivFlat, dinvFlat, dAlpha, vort, s5, s6, s3, s4)
	for j := 0; j < np; j++ {
		// lu -= -gy(vort); lv -= gx(vort) — matching the scalar slab.
		luv := sw.LoadVec4(lu, 4*j).Sub(sw.LoadVec4(s6, 4*j).Neg())
		lvv := sw.LoadVec4(lv, 4*j).Sub(sw.LoadVec4(s5, 4*j))
		luv.Store(lu, 4*j)
		lvv.Store(lv, 4*j)
	}
	c.CountVecFlops(4 * np * 3)
}
