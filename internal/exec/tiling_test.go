package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"swcam/internal/dycore"
	"swcam/internal/mesh"
	"swcam/internal/obs"
	"swcam/internal/sw"
)

// ---------------------------------------------------------------------------
// Tile geometry properties
// ---------------------------------------------------------------------------

func TestComputeTilesProperties(t *testing.T) {
	for _, n := range []int{0, 1, 5, 8, 9, 16, 24, 54, 96, 1000} {
		for _, workers := range []int{1, 2, 3, 4, 8, 16} {
			tiles := computeTiles(n, workers)
			if n == 0 {
				if len(tiles) != 1 || tiles[0] != (tile{0, 0}) {
					t.Fatalf("n=0 workers=%d: want one empty tile, got %v", workers, tiles)
				}
				continue
			}
			blocks := (n + sw.MeshDim - 1) / sw.MeshDim
			wantNT := workers
			if wantNT > blocks {
				wantNT = blocks
			}
			if len(tiles) != wantNT {
				t.Fatalf("n=%d workers=%d: %d tiles, want %d", n, workers, len(tiles), wantNT)
			}
			// Contiguous, exhaustive, MeshDim-aligned interior boundaries.
			pos := 0
			minB, maxB := n, 0
			for i, tl := range tiles {
				if tl.Lo != pos {
					t.Fatalf("n=%d workers=%d tile %d: Lo=%d, want %d", n, workers, i, tl.Lo, pos)
				}
				if tl.Hi <= tl.Lo {
					t.Fatalf("n=%d workers=%d tile %d: empty tile %v", n, workers, i, tl)
				}
				if tl.Lo%sw.MeshDim != 0 {
					t.Fatalf("n=%d workers=%d tile %d: Lo=%d not MeshDim-aligned", n, workers, i, tl.Lo)
				}
				if i < len(tiles)-1 && tl.Hi%sw.MeshDim != 0 {
					t.Fatalf("n=%d workers=%d tile %d: interior Hi=%d not aligned", n, workers, i, tl.Hi)
				}
				nb := (tl.Hi - tl.Lo + sw.MeshDim - 1) / sw.MeshDim
				if nb < minB {
					minB = nb
				}
				if nb > maxB {
					maxB = nb
				}
				pos = tl.Hi
			}
			if pos != n {
				t.Fatalf("n=%d workers=%d: tiles end at %d", n, workers, pos)
			}
			if maxB-minB > 1 {
				t.Fatalf("n=%d workers=%d: uneven block split (%d..%d blocks per tile)",
					n, workers, minB, maxB)
			}
		}
	}
}

func TestFirstWorkItem(t *testing.T) {
	for _, start := range []int{0, 1, 7, 8, 63, 64, 65, 128, 1000, 4096 + 17} {
		for id := 0; id < sw.CPEsPerCG; id++ {
			w := firstWorkItem(start, id)
			if w < start || w >= start+sw.CPEsPerCG {
				t.Fatalf("firstWorkItem(%d,%d)=%d outside [start, start+64)", start, id, w)
			}
			if w%sw.CPEsPerCG != id {
				t.Fatalf("firstWorkItem(%d,%d)=%d not assigned to CPE %d", start, id, w, id)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Determinism differential sweep: every backend x worker count, every
// kernel, bit-identical state AND bit-identical Cost counters.
// ---------------------------------------------------------------------------

// tiledEngine builds a second engine over the same mesh/elements with n
// workers. A fresh engine (rather than SetWorkers on a shared one) keeps
// the lifetime LDM high-water marks of the two runs independent.
func tiledEngine(m *mesh.Mesh, nlev, qsize, workers int) *Engine {
	elems := make([]int, m.NElems())
	for i := range elems {
		elems[i] = i
	}
	en := NewEngine(m, elems, nlev, qsize)
	en.SetWorkers(workers)
	return en
}

// hashState folds every bit of the prognostic fields into one value, so
// "bit-identical" is a single comparison (and NaNs can't slip through a
// numeric-difference check).
func hashState(st *dycore.State) uint64 {
	var h uint64 = 1469598103934665603 // FNV-64 offset basis
	mix := func(f [][]float64) {
		for _, row := range f {
			for _, v := range row {
				b := math.Float64bits(v)
				for s := 0; s < 64; s += 8 {
					h ^= (b >> s) & 0xFF
					h *= 1099511628211
				}
			}
		}
	}
	mix(st.U)
	mix(st.V)
	mix(st.T)
	mix(st.DP)
	mix(st.Qdp)
	return h
}

func hashFields(fs ...[][]float64) uint64 {
	var h uint64 = 1469598103934665603
	for _, f := range fs {
		for _, row := range f {
			for _, v := range row {
				b := math.Float64bits(v)
				for s := 0; s < 64; s += 8 {
					h ^= (b >> s) & 0xFF
					h *= 1099511628211
				}
			}
		}
	}
	return h
}

// kernelRun drives every engine kernel once over a seeded random state
// and returns the state hash and the summed Cost — the full observable
// output of the dynamics kernels for one backend.
func kernelRun(t *testing.T, en *Engine, b Backend, m *mesh.Mesh, st0 *dycore.State, nlev int) (uint64, Cost) {
	t.Helper()
	st := st0.Clone()
	h := dycore.NewHybridCoord(nlev)
	npsq := m.Np * m.Np
	mk := func() [][]float64 {
		f := make([][]float64, m.NElems())
		for i := range f {
			f[i] = make([]float64, nlev*npsq)
		}
		return f
	}

	var total Cost
	total.Add(en.EulerStep(b, st, 90))
	out := st.Clone()
	total.Add(en.ComputeAndApplyRHS(b, st, st, out, 90))
	lu, lv, lt, lp := mk(), mk(), mk(), mk()
	total.Add(en.HypervisDP1(b, out, lu, lv, lt, lp))
	total.Add(en.HypervisDP2(b, lu, lv, lt, lp, out, 90, 1e15, 1e15))
	bi := mk()
	total.Add(en.BiharmonicDP3D(b, out.DP, bi))
	// Deform dp so the remap works, then remap (restores reference dp).
	for ei := range out.DP {
		for i := range out.DP[ei] {
			out.DP[ei][i] *= 1 + 0.04*math.Sin(float64(i+ei))
		}
	}
	total.Add(en.VerticalRemap(b, h, out))

	hash := hashState(out) ^ hashFields(lu, lv, lt, lp, bi)
	return hash, total
}

// TestTiledBitIdenticalAllBackends is the determinism contract of this
// package: for every backend and every worker count, the tiled engine
// must reproduce the single-worker engine bit for bit — state fields,
// Laplacian outputs, and every architectural counter in Cost (flops,
// DMA bytes and ops, register messages, launches, LDM peak).
func TestTiledBitIdenticalAllBackends(t *testing.T) {
	const ne, nlev, qsize = 4, 8, 2 // 96 elements: 12 aligned blocks to tile
	m, _, st0 := testSetup(t, ne, nlev, qsize)

	for _, b := range Backends {
		ref := tiledEngine(m, nlev, qsize, 1)
		wantHash, wantCost := kernelRun(t, ref, b, m, st0, nlev)
		for _, workers := range []int{2, 4, 8} {
			en := tiledEngine(m, nlev, qsize, workers)
			gotHash, gotCost := kernelRun(t, en, b, m, st0, nlev)
			if gotHash != wantHash {
				t.Errorf("%v workers=%d: state hash %x != serial %x", b, workers, gotHash, wantHash)
			}
			if gotCost != wantCost {
				t.Errorf("%v workers=%d: cost diverged\n tiled:  %+v\n serial: %+v",
					b, workers, gotCost, wantCost)
			}
		}
	}
}

// The transposed-remap ablation and the shallow-water kernel follow the
// same contract.
func TestTiledBitIdenticalTransposeAndShallow(t *testing.T) {
	const ne, nlev, qsize = 4, 16, 2
	m, _, st0 := testSetup(t, ne, nlev, qsize)
	h := dycore.NewHybridCoord(nlev)
	for ei := range st0.DP {
		for i := range st0.DP[ei] {
			st0.DP[ei][i] *= 1 + 0.03*math.Sin(float64(i))
		}
	}
	ref := tiledEngine(m, nlev, qsize, 1)
	a := st0.Clone()
	refCost := ref.VerticalRemapTransposed(h, a)
	wantHash := hashState(a)

	for _, workers := range []int{2, 4, 8} {
		en := tiledEngine(m, nlev, qsize, workers)
		g := st0.Clone()
		c := en.VerticalRemapTransposed(h, g)
		if hg := hashState(g); hg != wantHash {
			t.Errorf("transposed remap workers=%d: state hash differs", workers)
		}
		if c != refCost {
			t.Errorf("transposed remap workers=%d: cost diverged\n tiled:  %+v\n serial: %+v",
				workers, c, refCost)
		}
	}

	// Shallow water.
	sols, err := dycore.NewSWSolver(2, 300)
	if err != nil {
		t.Fatal(err)
	}
	sst := sols.NewState()
	sols.InitRossbyHaurwitz(sst)
	swRun := func(workers int) (uint64, Cost) {
		en := NewSWEngine(sols.Mesh)
		en.SetWorkers(workers)
		out := sst.Clone()
		c := en.ShallowWaterRHS(sst, sst, out, sols.Hs, sols.Dt)
		return hashFields(out.U, out.V, out.H), c
	}
	wh, wc := swRun(1)
	for _, workers := range []int{2, 4, 8} {
		gh, gc := swRun(workers)
		if gh != wh || gc != wc {
			t.Errorf("shallow water workers=%d: hash/cost diverged", workers)
		}
	}
}

// Worker counts that don't divide the block count, plus uneven vertical
// levels: the pathological shapes must stay bit-identical too.
func TestTiledBitIdenticalAwkwardShapes(t *testing.T) {
	const ne, nlev, qsize = 3, 10, 1 // 54 elements -> 7 blocks; nlev 10 splits 2,2,1,...
	m, _, st0 := testSetup(t, ne, nlev, qsize)
	for _, b := range Backends {
		ref := tiledEngine(m, nlev, qsize, 1)
		wantHash, wantCost := kernelRun(t, ref, b, m, st0, nlev)
		for _, workers := range []int{3, 5, 7, 16} {
			en := tiledEngine(m, nlev, qsize, workers)
			gotHash, gotCost := kernelRun(t, en, b, m, st0, nlev)
			if gotHash != wantHash || gotCost != wantCost {
				t.Errorf("%v workers=%d (awkward shape): diverged from serial", b, workers)
			}
		}
	}
}

// A panic inside one tile must surface on the kernel caller's goroutine
// (where mpirt expects rank faults), not kill the process from a worker.
func TestTilePanicPropagates(t *testing.T) {
	m, _, _ := testSetup(t, 4, 8, 1)
	en := tiledEngine(m, 8, 1, 4)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("tile panic did not propagate to the caller")
		}
	}()
	en.runTilesSerial(func(w *dynWorker, lo, hi int, p *serialPartial) {
		if lo > 0 { // panic on a non-caller tile goroutine
			panic("tile fault")
		}
	})
}

// ---------------------------------------------------------------------------
// Steady-state allocation guards
// ---------------------------------------------------------------------------

// Once the per-worker pools are warm, a kernel call's only allocations
// are goroutine-launch machinery: at most ~1 per extra host tile on the
// serial backends, and one simulated athread_spawn (64 CPE goroutines)
// per tile on the CPE backends. Crucially the bounds are per TILE, not
// per element or per column: with 96 elements and 1536 columns in play,
// any per-element scratch allocation would blow these limits by orders
// of magnitude.
func TestTiledSteadyStateAllocs(t *testing.T) {
	const ne, nlev, qsize = 4, 8, 2
	m, _, st0 := testSetup(t, ne, nlev, qsize)
	h := dycore.NewHybridCoord(nlev)

	for _, workers := range []int{1, 4} {
		en := tiledEngine(m, nlev, qsize, workers)
		tiles := float64(en.Tiles())
		// Serial backends: the kernel closure plus one goroutine launch
		// per non-caller tile.
		serialCap := 4 + 4*tiles
		// CPE backends: Spawn starts 64 goroutines per tile (~2 allocs
		// each on current Go); generous headroom for runtime changes.
		cpeCap := 16 + 256*tiles

		for _, b := range Backends {
			budget := serialCap
			if b == OpenACC || b == Athread {
				budget = cpeCap
			}
			st := st0.Clone()
			out := st0.Clone()
			// Warm every pool (workspaces, core groups, snapshot buffers).
			en.EulerStep(b, st, 10)
			en.ComputeAndApplyRHS(b, st, st, out, 10)
			en.VerticalRemap(b, h, st)

			cases := map[string]func(){
				"euler": func() { en.EulerStep(b, st, 10) },
				"rhs":   func() { en.ComputeAndApplyRHS(b, st, st, out, 10) },
				"remap": func() { en.VerticalRemap(b, h, st) },
			}
			for name, fn := range cases {
				if got := testing.AllocsPerRun(10, fn); got > budget {
					t.Errorf("%v %s workers=%d: %.0f allocs per call, budget %.0f",
						b, name, workers, got, budget)
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Conservation and positivity properties, serial and tiled
// ---------------------------------------------------------------------------

// colSum integrates a level-major field over one element column.
func colSum(f []float64, n, nlev, npsq int) float64 {
	var s float64
	for k := 0; k < nlev; k++ {
		s += f[k*npsq+n]
	}
	return s
}

// TestRemapPropertiesSerialAndTiled: for every backend and for both a
// serial and a tiled engine, the vertical remap over randomized deformed
// columns must (a) conserve each column's dry mass (sum of dp) exactly
// to roundoff, (b) conserve each column's tracer mass, and (c) never
// produce a negative tracer mass from non-negative input (the PPM
// monotonicity property the limiter relies on).
func TestRemapPropertiesSerialAndTiled(t *testing.T) {
	const ne, nlev, qsize = 2, 8, 2
	m, _, _ := testSetup(t, ne, nlev, qsize)
	npsq := m.Np * m.Np
	h := dycore.NewHybridCoord(nlev)

	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		mkState := func() *dycore.State {
			cfg := dycore.DefaultConfig(ne)
			cfg.Nlev = nlev
			cfg.Qsize = qsize
			s, err := dycore.NewSolver(cfg)
			if err != nil {
				t.Fatal(err)
			}
			st := s.NewState()
			s.InitBaroclinicWave(st)
			for ei := range st.DP {
				for i := range st.DP[ei] {
					st.DP[ei][i] *= 1 + 0.2*(rng.Float64()-0.5)
				}
				for i := range st.Qdp[ei] {
					st.Qdp[ei][i] = rng.Float64() * 5 // non-negative tracer mass
				}
			}
			return st
		}
		st0 := mkState()

		for _, workers := range []int{1, 4} {
			en := tiledEngine(m, nlev, qsize, workers)
			for _, b := range Backends {
				st := st0.Clone()
				en.VerticalRemap(b, h, st)
				for ei := range st.DP {
					for n := 0; n < npsq; n++ {
						m0 := colSum(st0.DP[ei], n, nlev, npsq)
						m1 := colSum(st.DP[ei], n, nlev, npsq)
						if d := math.Abs(m1 - m0); d > 1e-8*m0 {
							t.Fatalf("trial %d %v workers=%d elem %d node %d: dry mass %g -> %g",
								trial, b, workers, ei, n, m0, m1)
						}
						for q := 0; q < qsize; q++ {
							off := q * nlev * npsq
							q0 := colSum(st0.Qdp[ei][off:], n, nlev, npsq)
							q1 := colSum(st.Qdp[ei][off:], n, nlev, npsq)
							if d := math.Abs(q1 - q0); d > 1e-8*(1+q0) {
								t.Fatalf("trial %d %v workers=%d elem %d node %d q%d: tracer mass %g -> %g",
									trial, b, workers, ei, n, q, q0, q1)
							}
						}
					}
					for i, v := range st.Qdp[ei] {
						if v < 0 {
							t.Fatalf("trial %d %v workers=%d elem %d: negative tracer mass %g at %d",
								trial, b, workers, ei, v, i)
						}
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Obs integration: per-worker spans and utilization counters
// ---------------------------------------------------------------------------

func TestWorkerUtilizationCounters(t *testing.T) {
	m, _, st0 := testSetup(t, 4, 8, 1)
	en := tiledEngine(m, 8, 1, 4)
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	en.Instrument(tr, nil, reg, 0)
	st := st0.Clone()
	en.EulerStep(Athread, st, 10)

	if v := reg.Gauge("exec.dyn.workers").Value(); v != float64(en.Workers()) {
		t.Errorf("exec.dyn.workers gauge = %v, want %d", v, en.Workers())
	}
	if v := reg.Gauge("exec.dyn.tiles").Value(); v != float64(en.Tiles()) {
		t.Errorf("exec.dyn.tiles gauge = %v, want %d", v, en.Tiles())
	}
	var busy int64
	for i := 0; i < en.Tiles(); i++ {
		busy += reg.CounterValue(fmt.Sprintf("exec.dyn.worker_busy_ns.%d", i))
	}
	if busy <= 0 {
		t.Error("no per-worker busy time accumulated")
	}
	if tr.Len() == 0 {
		t.Error("no spans recorded")
	}
	// Reshaping the pool must rebind the gauges, not orphan them.
	en.SetWorkers(2)
	if v := reg.Gauge("exec.dyn.workers").Value(); v != 2 {
		t.Errorf("after SetWorkers(2): workers gauge = %v", v)
	}
}
