package exec

import (
	"swcam/internal/dycore"
	"swcam/internal/sw"
)

// hypervisDP1 dispatches the first Laplacian pass over the selected
// element subset; the exported, instrumented entry points are in
// instrument.go.
func (en *Engine) hypervisDP1(sub Subset, b Backend, st *dycore.State, lapU, lapV, lapT, lapDP [][]float64) Cost {
	en.beginLaunch(sub)
	sel := en.sel(sub)
	switch b {
	case Intel, MPE:
		flops, bytes := en.runTilesSerialOn(sel, func(w *dynWorker, slots []int, p *serialPartial) {
			for _, le := range slots {
				dycore.HypervisDP1Elem(en.element(le), en.M.DerivFlat, en.Np, en.Nlev,
					st.U[le], st.V[le], st.T[le], st.DP[le],
					lapU[le], lapV[le], lapT[le], lapDP[le])
				p.flops += hypervis1Flops(en.Np, en.Nlev)
				p.bytes += hypervisBytes(en.Np, en.Nlev)
			}
		})
		return en.serialSplit(b, sub.Phase, flops, bytes)
	case OpenACC:
		return en.hvLevelParallel(sub, sel, OpenACC, st.U, st.V, st.T, st.DP, lapU, lapV, lapT, lapDP, 0, 0, 0, false)
	case Athread:
		return en.hvLevelParallel(sub, sel, Athread, st.U, st.V, st.T, st.DP, lapU, lapV, lapT, lapDP, 0, 0, 0, false)
	}
	panic("exec: unknown backend")
}

// hypervisDP2 dispatches the second pass over the selected element
// subset; the exported, instrumented entry points are in instrument.go.
func (en *Engine) hypervisDP2(sub Subset, b Backend, lapU, lapV, lapT, lapDP [][]float64,
	st *dycore.State, dt, nuV, nuS float64) Cost {
	en.beginLaunch(sub)
	sel := en.sel(sub)
	switch b {
	case Intel, MPE:
		flops, bytes := en.runTilesSerialOn(sel, func(w *dynWorker, slots []int, p *serialPartial) {
			for _, le := range slots {
				dycore.HypervisDP2Elem(en.element(le), en.M.DerivFlat, en.Np, en.Nlev,
					lapU[le], lapV[le], lapT[le], lapDP[le],
					st.U[le], st.V[le], st.T[le], st.DP[le],
					dt, nuV, nuS, w.scrU, w.scrV, w.scrS)
				p.flops += hypervis2Flops(en.Np, en.Nlev)
				p.bytes += hypervisBytes(en.Np, en.Nlev)
			}
		})
		return en.serialSplit(b, sub.Phase, flops, bytes)
	case OpenACC:
		return en.hvLevelParallel(sub, sel, OpenACC, lapU, lapV, lapT, lapDP, st.U, st.V, st.T, st.DP, dt, nuV, nuS, true)
	case Athread:
		return en.hvLevelParallel(sub, sel, Athread, lapU, lapV, lapT, lapDP, st.U, st.V, st.T, st.DP, dt, nuV, nuS, true)
	}
	panic("exec: unknown backend")
}

// hvLevelParallel distributes (element, level) Laplacian work across the
// CPEs for both passes of the hyperviscosity operator.
//
//   - OpenACC mode re-fetches the metric tiles for every (element, level)
//     iteration (the directive compiler cannot hoist the copyin out of a
//     collapsed loop) and computes with scalar arithmetic.
//   - Athread mode assigns whole elements to mesh columns with levels
//     split across rows, fetches the metric once per element, and runs
//     the vectorized slabs.
//
// With update=false, dst = laplace(src) (pass 1). With update=true,
// dst -= dt*nu*laplace(src) where src holds the DSS'd first pass (pass 2).
func (en *Engine) hvLevelParallel(sub Subset, sel *ElemSubset, b Backend,
	srcU, srcV, srcT, srcDP [][]float64,
	dstU, dstV, dstT, dstDP [][]float64,
	dt, nuV, nuS float64, update bool) Cost {

	np, nlev := en.Np, en.Nlev
	npsq := np * np

	if b == OpenACC {
		en.runTilesCGOn(sel, sub.Phase == Close, func(cg *sw.CoreGroup, slots []int) {
			cg.Spawn(func(c *sw.CPE) {
				ldm := c.LDM
				for _, le := range slots {
					for w := firstWorkItem(le*nlev, c.ID); w < (le+1)*nlev; w += sw.CPEsPerCG {
						ldm.Reset()
						k := w % nlev
						e := en.element(le)
						o := k * npsq
						deriv := ldm.MustAlloc("deriv", npsq)
						dinv := ldm.MustAlloc("dinv", 4*npsq)
						dflat := ldm.MustAlloc("dflat", 4*npsq)
						metdet := ldm.MustAlloc("metdet", npsq)
						c.DMA.GetShared(deriv, en.M.DerivFlat)
						c.DMA.Get(dinv, e.DinvFlat)
						c.DMA.Get(dflat, e.DFlat)
						c.DMA.Get(metdet, e.Metdet)

						u := ldm.MustAlloc("u", npsq)
						v := ldm.MustAlloc("v", npsq)
						tt := ldm.MustAlloc("t", npsq)
						dp := ldm.MustAlloc("dp", npsq)
						c.DMA.Get(u, srcU[le][o:o+npsq])
						c.DMA.Get(v, srcV[le][o:o+npsq])
						c.DMA.Get(tt, srcT[le][o:o+npsq])
						c.DMA.Get(dp, srcDP[le][o:o+npsq])

						lu := ldm.MustAlloc("lu", npsq)
						lv := ldm.MustAlloc("lv", npsq)
						lt := ldm.MustAlloc("lt", npsq)
						ldp := ldm.MustAlloc("ldp", npsq)
						s1 := ldm.MustAlloc("s1", npsq)
						s2 := ldm.MustAlloc("s2", npsq)
						s3 := ldm.MustAlloc("s3", npsq)
						s4 := ldm.MustAlloc("s4", npsq)
						s5 := ldm.MustAlloc("s5", npsq)
						s6 := ldm.MustAlloc("s6", npsq)

						dycore.VecLaplaceSlab(deriv, dflat, dinv, metdet, e.DAlpha, np,
							u, v, lu, lv, s1, s2, s3, s4, s5, s6)
						dycore.LaplaceSlab(deriv, dinv, metdet, e.DAlpha, np, tt, lt, s1, s2, s3, s4)
						dycore.LaplaceSlab(deriv, dinv, metdet, e.DAlpha, np, dp, ldp, s1, s2, s3, s4)
						c.CountFlops(vecLapFlops(np) + 2*lapFlops(np))

						if update {
							du := ldm.MustAlloc("du", npsq)
							dv := ldm.MustAlloc("dv", npsq)
							dtt := ldm.MustAlloc("dt", npsq)
							ddp := ldm.MustAlloc("ddp", npsq)
							c.DMA.Get(du, dstU[le][o:o+npsq])
							c.DMA.Get(dv, dstV[le][o:o+npsq])
							c.DMA.Get(dtt, dstT[le][o:o+npsq])
							c.DMA.Get(ddp, dstDP[le][o:o+npsq])
							for n := 0; n < npsq; n++ {
								du[n] -= dt * nuV * lu[n]
								dv[n] -= dt * nuV * lv[n]
								dtt[n] -= dt * nuS * lt[n]
								ddp[n] -= dt * nuS * ldp[n]
							}
							c.CountFlops(int64(12 * npsq))
							c.DMA.Put(dstU[le][o:o+npsq], du)
							c.DMA.Put(dstV[le][o:o+npsq], dv)
							c.DMA.Put(dstT[le][o:o+npsq], dtt)
							c.DMA.Put(dstDP[le][o:o+npsq], ddp)
						} else {
							c.DMA.Put(dstU[le][o:o+npsq], lu)
							c.DMA.Put(dstV[le][o:o+npsq], lv)
							c.DMA.Put(dstT[le][o:o+npsq], lt)
							c.DMA.Put(dstDP[le][o:o+npsq], ldp)
						}
					}
				}
			})
		})
		return en.collectSplit(OpenACC, sub.Phase)
	}

	// Athread: element per mesh column, levels split across rows,
	// metric resident, vectorized slabs.
	en.runTilesCGOn(sel, sub.Phase == Close, func(cg *sw.CoreGroup, slots []int) {
		cg.Spawn(func(c *sw.CPE) {
			ldm := c.LDM
			s, vl := en.rowLevels(c.Row)
			deriv := ldm.MustAlloc("deriv", npsq)
			c.Setup(func() { c.DMA.GetShared(deriv, en.M.DerivFlat) })
			dinv := ldm.MustAlloc("dinv", 4*npsq)
			dflat := ldm.MustAlloc("dflat", 4*npsq)
			metdet := ldm.MustAlloc("metdet", npsq)
			u := ldm.MustAlloc("u", npsq)
			v := ldm.MustAlloc("v", npsq)
			tt := ldm.MustAlloc("t", npsq)
			dp := ldm.MustAlloc("dp", npsq)
			lu := ldm.MustAlloc("lu", npsq)
			lv := ldm.MustAlloc("lv", npsq)
			lt := ldm.MustAlloc("lt", npsq)
			ldp := ldm.MustAlloc("ldp", npsq)
			s1 := ldm.MustAlloc("s1", npsq)
			s2 := ldm.MustAlloc("s2", npsq)
			s3 := ldm.MustAlloc("s3", npsq)
			s4 := ldm.MustAlloc("s4", npsq)
			s5 := ldm.MustAlloc("s5", npsq)
			s6 := ldm.MustAlloc("s6", npsq)
			dd := ldm.MustAlloc("dd", 4*npsq)

			for _, le := range slots {
				if le%sw.MeshDim != c.Col {
					continue
				}
				e := en.element(le)
				c.DMA.Get(dinv, e.DinvFlat)
				c.DMA.Get(dflat, e.DFlat)
				c.DMA.Get(metdet, e.Metdet)
				for k := s; k < s+vl; k++ {
					o := k * npsq
					c.DMA.Get(u, srcU[le][o:o+npsq])
					c.DMA.Get(v, srcV[le][o:o+npsq])
					c.DMA.Get(tt, srcT[le][o:o+npsq])
					c.DMA.Get(dp, srcDP[le][o:o+npsq])

					vecLaplaceSlabVec4(c, deriv, dflat, dinv, metdet, e.DAlpha,
						u, v, lu, lv, s1, s2, s3, s4, s5, s6)
					laplaceSlabVec4(c, deriv, dinv, metdet, e.DAlpha, tt, lt, s1, s2, s3, s4)
					laplaceSlabVec4(c, deriv, dinv, metdet, e.DAlpha, dp, ldp, s1, s2, s3, s4)

					if update {
						c.DMA.Get(dd[:npsq], dstU[le][o:o+npsq])
						c.DMA.Get(dd[npsq:2*npsq], dstV[le][o:o+npsq])
						c.DMA.Get(dd[2*npsq:3*npsq], dstT[le][o:o+npsq])
						c.DMA.Get(dd[3*npsq:4*npsq], dstDP[le][o:o+npsq])
						for j := 0; j < np; j++ {
							dnv := sw.Splat(dt * nuV)
							dns := sw.Splat(dt * nuS)
							sw.LoadVec4(dd, 4*j).Sub(dnv.Mul(sw.LoadVec4(lu, 4*j))).Store(dd, 4*j)
							sw.LoadVec4(dd, npsq+4*j).Sub(dnv.Mul(sw.LoadVec4(lv, 4*j))).Store(dd, npsq+4*j)
							sw.LoadVec4(dd, 2*npsq+4*j).Sub(dns.Mul(sw.LoadVec4(lt, 4*j))).Store(dd, 2*npsq+4*j)
							sw.LoadVec4(dd, 3*npsq+4*j).Sub(dns.Mul(sw.LoadVec4(ldp, 4*j))).Store(dd, 3*npsq+4*j)
						}
						c.CountVecFlops(int64(8 * npsq))
						c.DMA.Put(dstU[le][o:o+npsq], dd[:npsq])
						c.DMA.Put(dstV[le][o:o+npsq], dd[npsq:2*npsq])
						c.DMA.Put(dstT[le][o:o+npsq], dd[2*npsq:3*npsq])
						c.DMA.Put(dstDP[le][o:o+npsq], dd[3*npsq:4*npsq])
					} else {
						c.DMA.Put(dstU[le][o:o+npsq], lu)
						c.DMA.Put(dstV[le][o:o+npsq], lv)
						c.DMA.Put(dstT[le][o:o+npsq], lt)
						c.DMA.Put(dstDP[le][o:o+npsq], ldp)
					}
				}
			}
		})
	})
	return en.collectSplit(Athread, sub.Phase)
}

// biharmonicDP3D dispatches the weak biharmonic of dp3d; the exported,
// instrumented entry point is in instrument.go.
func (en *Engine) biharmonicDP3D(b Backend, in, out [][]float64) Cost {
	en.beginLaunch(Subset{})
	np, nlev := en.Np, en.Nlev
	npsq := np * np
	switch b {
	case Intel, MPE:
		flops, bytes := en.runTilesSerial(func(w *dynWorker, lo, hi int, p *serialPartial) {
			for le := lo; le < hi; le++ {
				dycore.BiharmonicDP3DElem(en.element(le), en.M.DerivFlat, np, nlev, in[le], out[le])
				p.flops += biharmonicFlops(np, nlev)
				p.bytes += int64(16 * npsq * nlev)
			}
		})
		return serialCost(b, flops, bytes)
	case OpenACC:
		en.runTilesCG(func(cg *sw.CoreGroup, lo, hi int) {
			wlo, whi := lo*nlev, hi*nlev
			cg.Spawn(func(c *sw.CPE) {
				ldm := c.LDM
				for w := firstWorkItem(wlo, c.ID); w < whi; w += sw.CPEsPerCG {
					ldm.Reset()
					le, k := w/nlev, w%nlev
					e := en.element(le)
					o := k * npsq
					deriv := ldm.MustAlloc("deriv", npsq)
					dinv := ldm.MustAlloc("dinv", 4*npsq)
					metdet := ldm.MustAlloc("metdet", npsq)
					c.DMA.GetShared(deriv, en.M.DerivFlat)
					c.DMA.Get(dinv, e.DinvFlat)
					c.DMA.Get(metdet, e.Metdet)
					src := ldm.MustAlloc("src", npsq)
					dst := ldm.MustAlloc("dst", npsq)
					s1 := ldm.MustAlloc("s1", npsq)
					s2 := ldm.MustAlloc("s2", npsq)
					s3 := ldm.MustAlloc("s3", npsq)
					s4 := ldm.MustAlloc("s4", npsq)
					c.DMA.Get(src, in[le][o:o+npsq])
					dycore.LaplaceSlab(deriv, dinv, metdet, e.DAlpha, np, src, dst, s1, s2, s3, s4)
					c.CountFlops(lapFlops(np))
					c.DMA.Put(out[le][o:o+npsq], dst)
				}
			})
		})
		return en.collect(OpenACC, 1)
	case Athread:
		en.runTilesCG(func(cg *sw.CoreGroup, lo, hi int) {
			cg.Spawn(func(c *sw.CPE) {
				ldm := c.LDM
				s, vl := en.rowLevels(c.Row)
				deriv := ldm.MustAlloc("deriv", npsq)
				c.Setup(func() { c.DMA.GetShared(deriv, en.M.DerivFlat) })
				dinv := ldm.MustAlloc("dinv", 4*npsq)
				metdet := ldm.MustAlloc("metdet", npsq)
				src := ldm.MustAlloc("src", npsq)
				dst := ldm.MustAlloc("dst", npsq)
				s1 := ldm.MustAlloc("s1", npsq)
				s2 := ldm.MustAlloc("s2", npsq)
				s3 := ldm.MustAlloc("s3", npsq)
				s4 := ldm.MustAlloc("s4", npsq)
				for blk := lo; blk+c.Col < hi; blk += sw.MeshDim {
					le := blk + c.Col
					e := en.element(le)
					c.DMA.Get(dinv, e.DinvFlat)
					c.DMA.Get(metdet, e.Metdet)
					for k := s; k < s+vl; k++ {
						o := k * npsq
						c.DMA.Get(src, in[le][o:o+npsq])
						laplaceSlabVec4(c, deriv, dinv, metdet, e.DAlpha, src, dst, s1, s2, s3, s4)
						c.DMA.Put(out[le][o:o+npsq], dst)
					}
				}
			})
		})
		return en.collect(Athread, 1)
	}
	panic("exec: unknown backend")
}
