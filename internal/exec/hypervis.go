package exec

import (
	"swcam/internal/dycore"
)

// The hyperviscosity and biharmonic kernels are written once as
// single-source slab specs (kernel.go: hypervisDP1Spec,
// hypervisDP2Spec, biharmonicDP3DSpec) and lowered per backend; the
// functions here only bind state rows and hoisted coefficients to the
// spec. The exported, instrumented entry points are in instrument.go.

// hypervisDP1 runs the first Laplacian pass over the selected element
// subset: (lapU, lapV) = vector Laplacian of (u, v); lapT, lapDP =
// scalar Laplacians of T, dp.
func (en *Engine) hypervisDP1(sub Subset, b Backend, st *dycore.State, lapU, lapV, lapT, lapDP [][]float64) Cost {
	en.beginLaunch(sub)
	bind := slabBind{
		in:  [4][][]float64{st.U, st.V, st.T, st.DP},
		out: [4][][]float64{lapU, lapV, lapT, lapDP},
	}
	return en.lowerSlab(&hypervisDP1Spec, sub, b, &bind)
}

// hypervisDP2 runs the second pass + update over the selected element
// subset: field -= dt*nu * laplace(DSS'd first pass), with the
// momentum (nuV) and scalar (nuS) coefficients hoisted to launch scope
// here — every lowering sees them as ready-made slab coefficients.
func (en *Engine) hypervisDP2(sub Subset, b Backend, lapU, lapV, lapT, lapDP [][]float64,
	st *dycore.State, dt, nuV, nuS float64) Cost {
	en.beginLaunch(sub)
	bind := slabBind{
		in:   [4][][]float64{lapU, lapV, lapT, lapDP},
		out:  [4][][]float64{st.U, st.V, st.T, st.DP},
		coef: [2]float64{dt * nuV, dt * nuS},
	}
	return en.lowerSlab(&hypervisDP2Spec, sub, b, &bind)
}

// biharmonicDP3D runs the weak biharmonic of dp3d as a Whole launch
// (it is not part of the boundary/inner split); the identity subset
// reproduces the aligned tile geometry of the unsplit runners.
func (en *Engine) biharmonicDP3D(b Backend, in, out [][]float64) Cost {
	en.beginLaunch(Subset{})
	bind := slabBind{
		in:  [4][][]float64{in},
		out: [4][][]float64{out},
	}
	return en.lowerSlab(&biharmonicDP3DSpec, Subset{}, b, &bind)
}
