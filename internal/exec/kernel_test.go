package exec

// Tests of the single-source kernel layer (kernel.go): cross-backend
// bit-identity and Cost-counter consistency of the lowered
// hypervis/biharmonic kernels, the cost-parity regressions for the two
// historical accounting divergences, the primitive-derived analytic
// formulas, and the rowLevels vertical split at awkward nlev.
//
// Before the hand-written backend bodies were deleted, a transient
// differential sweep proved the lowered kernels bit-identical in state
// (FNV-64) and exactly equal in every Cost counter to the fixed
// hand-written kernels across backends × workers {1,4} × subset splits
// {Whole, even-odd, head-tail, empty-open, empty-close} — with one
// intended delta: the hand-written Athread DP1 allocated an unused
// 4·np² LDM buffer ("dd"), so its LDMPeak was 28·np²·8 where the
// lowered kernel's is 24·np²·8. The goldens pinned below are from that
// verified run.

import (
	"math/rand"
	"testing"

	"swcam/internal/dycore"
	"swcam/internal/mesh"
	"swcam/internal/sw"
)

// slabKernelRun drives the three lowered dissipation kernels (DP1 and
// DP2 through `launch`, Whole or Open+Close; biharmonic Whole) and
// returns the combined FNV-64 state/output hash plus the per-kernel
// Costs.
func slabKernelRun(en *Engine, b Backend, st0 *dycore.State, nlev, npsq int,
	launch func(func(Subset) Cost) Cost) (uint64, [3]Cost) {
	st := st0.Clone()
	mk := func() [][]float64 {
		f := make([][]float64, st.NElem())
		for i := range f {
			f[i] = make([]float64, nlev*npsq)
		}
		return f
	}
	lu, lv, lt, lp := mk(), mk(), mk(), mk()
	bi := mk()
	var costs [3]Cost
	costs[0] = launch(func(sub Subset) Cost { return en.hypervisDP1(sub, b, st, lu, lv, lt, lp) })
	costs[1] = launch(func(sub Subset) Cost { return en.hypervisDP2(sub, b, lu, lv, lt, lp, st, 90, 1e15, 1e15) })
	costs[2] = en.biharmonicDP3D(b, st.DP, bi)
	return hashState(st) ^ hashFields(lu, lv, lt, lp, bi), costs
}

// TestLoweredKernelSweep: one body, four lowerings — every backend,
// worker count, and subset split must produce the SAME bits as the
// Intel workers=1 Whole reference (the Vec4 slabs are bit-exact
// against the scalar slabs, so cross-backend identity is exact, not
// approximate), and every variant of one backend must report the same
// Cost as that backend's Whole reference.
func TestLoweredKernelSweep(t *testing.T) {
	for _, shape := range []struct{ ne, nlev, qsize int }{
		{4, 8, 2},
		{3, 10, 1},
	} {
		m, _, st0 := testSetup(t, shape.ne, shape.nlev, shape.qsize)
		npsq := m.Np * m.Np
		refEn := tiledEngine(m, shape.nlev, shape.qsize, 1)
		refHash, _ := slabKernelRun(refEn, Intel, st0, shape.nlev, npsq,
			func(f func(Subset) Cost) Cost { return f(Subset{}) })
		for _, b := range Backends {
			wholeEn := tiledEngine(m, shape.nlev, shape.qsize, 1)
			wantHash, wantCosts := slabKernelRun(wholeEn, b, st0, shape.nlev, npsq,
				func(f func(Subset) Cost) Cost { return f(Subset{}) })
			if wantHash != refHash {
				t.Errorf("ne%d %v: state hash %x != Intel reference %x (cross-backend bit-identity)",
					shape.ne, b, wantHash, refHash)
			}
			for _, workers := range []int{1, 4} {
				for _, split := range splitNames {
					en := tiledEngine(m, shape.nlev, shape.qsize, workers)
					oSlots, cSlots := splitOf(split, m.NElems())
					open, inner := en.CompileSubset(oSlots), en.CompileSubset(cSlots)
					gotHash, gotCosts := slabKernelRun(en, b, st0, shape.nlev, npsq,
						func(f func(Subset) Cost) Cost {
							var c Cost
							c.Add(f(Subset{Sel: open, Phase: Open}))
							c.Add(f(Subset{Sel: inner, Phase: Close}))
							c.Backend = b // Cost.Add merges counters only
							return c
						})
					if gotHash != wantHash {
						t.Errorf("ne%d %v workers=%d split=%s: state hash %x != whole %x",
							shape.ne, b, workers, split, gotHash, wantHash)
					}
					if gotCosts != wantCosts {
						t.Errorf("ne%d %v workers=%d split=%s: cost diverged\n split: %+v\n whole: %+v",
							shape.ne, b, workers, split, gotCosts, wantCosts)
					}
				}
			}
		}
	}
}

// TestLoweredKernelCostGoldens pins the exact Cost records of the
// DP1 → DP2 → biharmonic sequence (Whole, workers=1, ne=2, nlev=8,
// qsize=1), captured from the run that was differentially verified
// against the hand-written kernels. Any change to a lowering's flop,
// byte, DMA, launch, or LDM accounting fails here. Note LDMPeak is a
// lifetime high-water mark per worker, so DP2's 28·np²·8 = 3584 bytes
// carries into the biharmonic row of this sequence.
func TestLoweredKernelCostGoldens(t *testing.T) {
	want := map[Backend][3]Cost{
		Intel: {
			{Backend: Intel, FlopsScalar: 645120, MaxCPEFlops: 645120, MemBytes: 196608},
			{Backend: Intel, FlopsScalar: 669696, MaxCPEFlops: 669696, MemBytes: 196608},
			{Backend: Intel, FlopsScalar: 159744, MaxCPEFlops: 159744, MemBytes: 49152},
		},
		MPE: {
			{Backend: MPE, FlopsScalar: 645120, MaxCPEFlops: 645120, MemBytes: 196608},
			{Backend: MPE, FlopsScalar: 669696, MaxCPEFlops: 669696, MemBytes: 196608},
			{Backend: MPE, FlopsScalar: 159744, MaxCPEFlops: 159744, MemBytes: 49152},
		},
		OpenACC: {
			{Backend: OpenACC, FlopsScalar: 645120, MaxCPEFlops: 10080, MemBytes: 418176, DMAOps: 2304, Launches: 1, LDMPeak: 3072},
			{Backend: OpenACC, FlopsScalar: 669696, MaxCPEFlops: 10464, MemBytes: 516480, DMAOps: 3072, Launches: 1, LDMPeak: 3584},
			{Backend: OpenACC, FlopsScalar: 159744, MaxCPEFlops: 2496, MemBytes: 172416, DMAOps: 960, Launches: 1, LDMPeak: 3584},
		},
		Athread: {
			{Backend: Athread, FlopsVector: 666624, MaxCPEFlops: 10416, MemBytes: 417920, DMAOps: 2176, Launches: 1, LDMPeak: 3072},
			{Backend: Athread, FlopsVector: 691200, MaxCPEFlops: 10800, MemBytes: 516224, DMAOps: 2944, Launches: 1, LDMPeak: 3584},
			{Backend: Athread, FlopsVector: 165888, MaxCPEFlops: 2592, MemBytes: 172160, DMAOps: 832, Launches: 1, LDMPeak: 3584},
		},
	}
	m, _, st0 := testSetup(t, 2, 8, 1)
	npsq := m.Np * m.Np
	for _, b := range Backends {
		en := tiledEngine(m, 8, 1, 1)
		_, costs := slabKernelRun(en, b, st0, 8, npsq,
			func(f func(Subset) Cost) Cost { return f(Subset{}) })
		for ki, kn := range []string{"hypervis_dp1", "hypervis_dp2", "biharmonic_dp3d"} {
			if costs[ki] != want[b][ki] {
				t.Errorf("%v %s:\n got:  %+v\n want: %+v", b, kn, costs[ki], want[b][ki])
			}
		}
	}
}

// TestHypervisUpdateFlopParity is the satellite-1 regression: the DP2
// update must cost the SAME on every backend — 4 fields × axpyFlops =
// 8·np² per level — observable as the DP2−DP1 flop delta (the
// Laplacian passes of the two kernels are identical work). The
// original divergence (12·np² OpenACC, 8·np² Athread, 16·np² serial
// analytic) fails this immediately.
func TestHypervisUpdateFlopParity(t *testing.T) {
	for _, shape := range []struct{ ne, nlev, qsize int }{
		{2, 8, 1},
		{3, 10, 1},
	} {
		m, _, st0 := testSetup(t, shape.ne, shape.nlev, shape.qsize)
		np := m.Np
		npsq := np * np
		wantDelta := 4 * axpyFlops(np) * int64(shape.nlev) * int64(m.NElems())
		for _, b := range Backends {
			en := tiledEngine(m, shape.nlev, shape.qsize, 1)
			_, costs := slabKernelRun(en, b, st0, shape.nlev, npsq,
				func(f func(Subset) Cost) Cost { return f(Subset{}) })
			delta := costs[1].Flops() - costs[0].Flops()
			if delta != wantDelta {
				t.Errorf("ne%d %v: DP2-DP1 flop delta %d, want %d (= 8·np²·nlev·nelems)",
					shape.ne, b, delta, wantDelta)
			}
			// The scalar backends charge the primitive-derived analytic
			// totals; any per-kernel flop or byte mismatch between them
			// for identical logical work is a drift regression.
			if b == Intel || b == MPE || b == OpenACC {
				want1 := hypervis1Flops(np, shape.nlev) * int64(m.NElems())
				want2 := hypervis2Flops(np, shape.nlev) * int64(m.NElems())
				if costs[0].Flops() != want1 || costs[1].Flops() != want2 {
					t.Errorf("ne%d %v: kernel flops (%d, %d) != analytic (%d, %d)",
						shape.ne, b, costs[0].Flops(), costs[1].Flops(), want1, want2)
				}
			}
			wantBytes := hypervisBytes(np, shape.nlev) * int64(m.NElems())
			if b == Intel || b == MPE {
				if costs[0].MemBytes != wantBytes || costs[1].MemBytes != wantBytes {
					t.Errorf("ne%d %v: kernel bytes (%d, %d) != analytic %d",
						shape.ne, b, costs[0].MemBytes, costs[1].MemBytes, wantBytes)
				}
			}
		}
	}
}

// TestAthreadDP2VectorCounters is the satellite-2 regression: the
// Athread update is pure Vec4 work with the Splat of the hoisted
// coefficient at slab scope — the counters must show zero scalar CPE
// flops and exactly 8·np² vector flops per level over DP1's count.
func TestAthreadDP2VectorCounters(t *testing.T) {
	m, _, st0 := testSetup(t, 2, 8, 1)
	npsq := m.Np * m.Np
	en := tiledEngine(m, 8, 1, 1)
	_, costs := slabKernelRun(en, Athread, st0, 8, npsq,
		func(f func(Subset) Cost) Cost { return f(Subset{}) })
	if costs[0].FlopsScalar != 0 || costs[1].FlopsScalar != 0 {
		t.Errorf("Athread hypervis counted scalar CPE flops: dp1=%d dp2=%d",
			costs[0].FlopsScalar, costs[1].FlopsScalar)
	}
	wantDelta := int64(8*npsq) * 8 * int64(m.NElems())
	if d := costs[1].FlopsVector - costs[0].FlopsVector; d != wantDelta {
		t.Errorf("Athread DP2-DP1 vector flops %d, want %d", d, wantDelta)
	}
	// Absolute pin at this config (ne=2, nlev=8): the per-level Vec4
	// Laplacian counts (3472) plus the 128-flop update, over 24
	// elements — unchanged by the Splat hoist.
	if costs[1].FlopsVector != 691200 {
		t.Errorf("Athread DP2 vector flops %d, want 691200", costs[1].FlopsVector)
	}
}

// TestAnalyticFormulasDerivedFromSpecs: the model formulas exported to
// internal/perf are literally the specs' counted bodies — this pins
// the shape of each body (one vector + two scalar Laplacians; plus
// four axpy updates for DP2; one scalar Laplacian for biharmonic) and
// the serial byte model.
func TestAnalyticFormulasDerivedFromSpecs(t *testing.T) {
	for _, np := range []int{3, 4, 5} {
		for _, nlev := range []int{1, 8, 30} {
			nl := int64(nlev)
			if got, want := hypervis1Flops(np, nlev), (vecLapFlops(np)+2*lapFlops(np))*nl; got != want {
				t.Errorf("hypervis1Flops(%d,%d) = %d, want %d", np, nlev, got, want)
			}
			if got, want := hypervis2Flops(np, nlev), (vecLapFlops(np)+2*lapFlops(np)+4*axpyFlops(np))*nl; got != want {
				t.Errorf("hypervis2Flops(%d,%d) = %d, want %d", np, nlev, got, want)
			}
			if got, want := biharmonicFlops(np, nlev), lapFlops(np)*nl; got != want {
				t.Errorf("biharmonicFlops(%d,%d) = %d, want %d", np, nlev, got, want)
			}
			if got, want := hypervisDP1Spec.serialBytes(np, nlev), hypervisBytes(np, nlev); got != want {
				t.Errorf("dp1 serialBytes(%d,%d) = %d, want hypervisBytes %d", np, nlev, got, want)
			}
			if got, want := hypervisDP2Spec.serialBytes(np, nlev), hypervisBytes(np, nlev); got != want {
				t.Errorf("dp2 serialBytes(%d,%d) = %d, want hypervisBytes %d", np, nlev, got, want)
			}
			if got, want := biharmonicDP3DSpec.serialBytes(np, nlev), int64(16*np*np*nlev); got != want {
				t.Errorf("biharmonic serialBytes(%d,%d) = %d, want %d", np, nlev, got, want)
			}
		}
	}
}

// TestRowLevelsEdgeCases (satellite 3): for any nlev — including
// nlev < MeshDim, nlev=1, nlev=9 — the 8 per-row ranges must tile
// [0, nlev) exactly, in row order, with block sizes differing by at
// most one; rows beyond nlev get empty ranges; maxRowLevels is the
// ceiling block.
func TestRowLevelsEdgeCases(t *testing.T) {
	for _, nlev := range []int{1, 2, 3, 5, 7, 8, 9, 10, 16, 30, 128} {
		en := &Engine{Nlev: nlev}
		next := 0
		minC, maxC := nlev+1, -1
		for row := 0; row < sw.MeshDim; row++ {
			start, count := en.rowLevels(row)
			if count < 0 || start != next {
				t.Fatalf("nlev=%d row=%d: range [%d,%d) does not continue at %d",
					nlev, row, start, start+count, next)
			}
			if row >= nlev && count != 0 {
				t.Errorf("nlev=%d row=%d: want empty range, got %d levels", nlev, row, count)
			}
			if count < minC {
				minC = count
			}
			if count > maxC {
				maxC = count
			}
			next = start + count
		}
		if next != nlev {
			t.Errorf("nlev=%d: rows cover [0,%d), want [0,%d)", nlev, next, nlev)
		}
		if maxC-minC > 1 {
			t.Errorf("nlev=%d: block sizes range %d..%d, want spread <= 1", nlev, minC, maxC)
		}
		if got := en.maxRowLevels(); got != maxC {
			t.Errorf("nlev=%d: maxRowLevels = %d, want %d", nlev, got, maxC)
		}
	}
}

// TestLoweredSmallNlevBitIdenticalToSerial (satellite 3): at nlev=1
// (seven of eight mesh rows idle), nlev=3, and nlev=9 the lowered CPE
// kernels must still be bit-identical to the serial backend.
func TestLoweredSmallNlevBitIdenticalToSerial(t *testing.T) {
	m := mesh.New(2, 4)
	np := m.Np
	npsq := np * np
	for _, nlev := range []int{1, 3, 9} {
		st0 := dycore.NewState(m.NElems(), np, nlev, 0)
		rng := rand.New(rand.NewSource(7))
		for _, f := range [][][]float64{st0.U, st0.V, st0.T, st0.DP} {
			for _, row := range f {
				for i := range row {
					row[i] = rng.Float64()*2 - 1
				}
			}
		}
		ref := tiledEngine(m, nlev, 0, 1)
		wantHash, _ := slabKernelRun(ref, Intel, st0, nlev, npsq,
			func(f func(Subset) Cost) Cost { return f(Subset{}) })
		for _, b := range []Backend{OpenACC, Athread} {
			for _, workers := range []int{1, 4} {
				en := tiledEngine(m, nlev, 0, workers)
				gotHash, _ := slabKernelRun(en, b, st0, nlev, npsq,
					func(f func(Subset) Cost) Cost { return f(Subset{}) })
				if gotHash != wantHash {
					t.Errorf("nlev=%d %v workers=%d: hash %x != serial %x",
						nlev, b, workers, gotHash, wantHash)
				}
			}
		}
	}
}
