package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestRegistryMergeAcrossRanks folds per-rank registries into a job-wide
// one, the way a distributed run aggregates: counters add, gauges keep
// the global high-water mark and the last value, histograms combine.
func TestRegistryMergeAcrossRanks(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("halo.msgs").Add(5)
	r2.Counter("halo.msgs").Add(7)
	r2.Counter("mpirt.send.bytes").Add(100)

	r1.Gauge("exec.ldm.peak").Set(100)
	r1.Gauge("exec.ldm.peak").Set(80)
	r2.Gauge("exec.ldm.peak").Set(120)
	r2.Gauge("exec.ldm.peak").Set(60)

	r1.Histogram("mpirt.rank.send.bytes").Observe(2)
	r1.Histogram("mpirt.rank.send.bytes").Observe(4)
	r2.Histogram("mpirt.rank.send.bytes").Observe(8)

	total := NewRegistry()
	total.Merge(r1)
	total.Merge(r2)

	if got := total.CounterValue("halo.msgs"); got != 12 {
		t.Errorf("merged halo.msgs = %d, want 12", got)
	}
	if got := total.CounterValue("mpirt.send.bytes"); got != 100 {
		t.Errorf("merged mpirt.send.bytes = %d, want 100", got)
	}
	g := total.Gauge("exec.ldm.peak")
	if g.Max() != 120 {
		t.Errorf("merged gauge max = %g, want 120", g.Max())
	}
	if g.Value() != 60 {
		t.Errorf("merged gauge last = %g, want 60", g.Value())
	}
	h := total.Histogram("mpirt.rank.send.bytes")
	if h.Count() != 3 {
		t.Errorf("merged histogram count = %d, want 3", h.Count())
	}
	if want := 14.0 / 3; math.Abs(h.Mean()-want) > 1e-12 {
		t.Errorf("merged histogram mean = %g, want %g", h.Mean(), want)
	}

	// Merging an empty registry must not disturb anything.
	total.Merge(NewRegistry())
	if got := total.CounterValue("halo.msgs"); got != 12 {
		t.Errorf("after empty merge halo.msgs = %d, want 12", got)
	}
}

// TestRegistryConcurrent exercises concurrent recording from many ranks
// plus concurrent merges under -race.
func TestRegistryConcurrent(t *testing.T) {
	total := NewRegistry()
	const ranks, per = 8, 100
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			local := NewRegistry()
			for i := 0; i < per; i++ {
				local.Counter("exec.launches").Add(1)
				local.Gauge("exec.ldm.peak").Set(float64(r*per + i))
				local.Histogram("mpirt.rank.send.bytes").Observe(float64(i))
			}
			total.Merge(local)
		}(r)
	}
	wg.Wait()
	if got := total.CounterValue("exec.launches"); got != ranks*per {
		t.Errorf("exec.launches = %d, want %d", got, ranks*per)
	}
	if got := total.Histogram("mpirt.rank.send.bytes").Count(); got != ranks*per {
		t.Errorf("histogram count = %d, want %d", got, ranks*per)
	}
	if got := total.Gauge("exec.ldm.peak").Max(); got != ranks*per-1 {
		t.Errorf("gauge max = %g, want %d", got, ranks*per-1)
	}
}

// TestNilRegistry checks that nil registries and nil metrics absorb
// every operation without panicking.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	if r.CounterValue("x") != 0 {
		t.Fatal("nil registry returned nonzero")
	}
	r.Merge(NewRegistry())
	NewRegistry().Merge(r)
	var p *Probe
	if p.T() != nil || p.R() != nil || p.K() != nil {
		t.Fatal("nil probe returned non-nil components")
	}
	var kt *KernelTable
	kt.Record("k", "b", 1, 1, 1, 0, 0)
	if kt.Stats() != nil {
		t.Fatal("nil kernel table returned stats")
	}
}

func TestRegistryDumps(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(3)
	r.Gauge("a.gauge").Set(2.5)
	r.Histogram("c.hist").Observe(4)
	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	want := "a.gauge                          2.5 (max 2.5)\n" +
		"b.count                          3\n" +
		"c.hist                           n=1 mean=4 min=4 max=4\n"
	if txt.String() != want {
		t.Errorf("WriteText:\n%q\nwant:\n%q", txt.String(), want)
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var metrics []map[string]any
	if err := json.Unmarshal(js.Bytes(), &metrics); err != nil {
		t.Fatalf("WriteJSON invalid: %v", err)
	}
	if len(metrics) != 3 || metrics[0]["name"] != "a.gauge" {
		t.Errorf("WriteJSON = %v", metrics)
	}
}

func TestSYPDGuards(t *testing.T) {
	// One simulated year in one wall day is exactly 1 SYPD.
	if got := SYPD(365*86400, 86400); math.Abs(got-1) > 1e-12 {
		t.Errorf("SYPD(1 year, 1 day) = %g, want 1", got)
	}
	// 1500 sim s in 0.01 wall s: (1500/31536000)/(0.01/86400).
	want := (1500.0 / (365 * 86400)) / (0.01 / 86400)
	if got := SYPD(1500, 0.01); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("SYPD(1500, 0.01) = %g, want %g", got, want)
	}
	for _, wall := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if got := SYPD(1500, wall); got != 0 {
			t.Errorf("SYPD(1500, %g) = %g, want 0", wall, got)
		}
	}
}

func TestStepReport(t *testing.T) {
	kt := NewKernelTable()
	kt.Record("compute_and_apply_rhs", "Athread", 300, 1e15, 500, 2, 3)
	kt.Record("euler_step", "Athread", 100, 1e15, 100, 1, 1)

	reg := NewRegistry()
	reg.Counter("halo.ns").Add(100)
	reg.Counter("halo.wait.ns").Add(25)

	// Without any overlap window the ratio is unmeasured: no pipeline ran,
	// so there is nothing to quantify (the text report prints "n/a").
	rep := BuildStepReport(kt, reg, ReportInput{
		Steps: 10, SimSeconds: 365 * 86400, WallSeconds: 2,
	})
	if rep.OverlapMeasured || rep.OverlapRatio != 0 {
		t.Errorf("unmeasured overlap: measured=%v ratio=%g, want false/0",
			rep.OverlapMeasured, rep.OverlapRatio)
	}
	if !strings.Contains(rep.Text(), "comm overlap n/a") {
		t.Errorf("text without overlap windows should say n/a:\n%s", rep.Text())
	}

	// With recorded overlap windows the ratio is 1 - wait/total.
	reg.Counter("halo.overlap.windows").Add(3)
	rep = BuildStepReport(kt, reg, ReportInput{
		Steps: 10, SimSeconds: 365 * 86400, WallSeconds: 2,
	})
	if !rep.OverlapMeasured {
		t.Error("OverlapMeasured = false with halo.overlap.windows > 0")
	}
	if math.Abs(rep.OverlapRatio-0.75) > 1e-12 {
		t.Errorf("OverlapRatio = %g, want 0.75", rep.OverlapRatio)
	}
	if !strings.Contains(rep.Text(), "comm overlap 75%") {
		t.Errorf("text with overlap should print the ratio:\n%s", rep.Text())
	}
	// 2e15 counted flops over 2 wall seconds = 1e15 flops/s = 1 PFlops.
	if math.Abs(rep.PFlops-1) > 1e-12 {
		t.Errorf("PFlops = %g, want 1", rep.PFlops)
	}
	// One simulated year in 2 s of wall: 86400/2 SYPD.
	if want := 86400.0 / 2; math.Abs(rep.SYPD-want)/want > 1e-12 {
		t.Errorf("SYPD = %g, want %g", rep.SYPD, want)
	}
	if len(rep.Kernels) != 2 {
		t.Fatalf("got %d kernels", len(rep.Kernels))
	}
	// Sorted by descending time; shares 0.75 and 0.25.
	if rep.Kernels[0].Kernel != "compute_and_apply_rhs" {
		t.Errorf("kernel order: %q first", rep.Kernels[0].Kernel)
	}
	if math.Abs(rep.Kernels[0].TimeShare-0.75) > 1e-12 ||
		math.Abs(rep.Kernels[1].TimeShare-0.25) > 1e-12 {
		t.Errorf("shares = %g, %g; want 0.75, 0.25",
			rep.Kernels[0].TimeShare, rep.Kernels[1].TimeShare)
	}
}

func TestKernelTableMerge(t *testing.T) {
	a, b := NewKernelTable(), NewKernelTable()
	a.Record("euler_step", "Athread", 100, 10, 20, 1, 2)
	b.Record("euler_step", "Athread", 50, 5, 10, 1, 1)
	b.Record("euler_step", "Intel", 400, 10, 20, 0, 0)
	a.Merge(b)
	stats := a.Stats()
	if len(stats) != 2 {
		t.Fatalf("got %d stats", len(stats))
	}
	// Intel has more time, so it sorts first.
	if stats[0].Backend != "Intel" || stats[0].Ns != 400 {
		t.Errorf("stats[0] = %+v", stats[0])
	}
	if stats[1].Calls != 2 || stats[1].Ns != 150 || stats[1].Flops != 15 {
		t.Errorf("merged athread stat = %+v", stats[1])
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	kt := NewKernelTable()
	kt.Record("euler_step", "Athread", 1000, 10, 20, 1, 2)

	f := NewBenchFile(BenchConfig{Ne: 2, Nlev: 4, Qsize: 3, Steps: 5, Ranks: 2})
	f.AddBackend("athread", kt, 12.5, 0.25)
	p1, err := WriteBenchFile(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "BENCH_1.json" {
		t.Errorf("first file = %s, want BENCH_1.json", p1)
	}
	p2, err := WriteBenchFile(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p2) != "BENCH_2.json" {
		t.Errorf("second file = %s, want BENCH_2.json", p2)
	}
	got, err := LoadBenchFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != BenchSchema || got.Config.Ne != 2 {
		t.Errorf("loaded %+v", got)
	}
	b := got.Backends["athread"]
	if b.SYPD != 12.5 || b.Kernels["euler_step"].Ns != 1000 {
		t.Errorf("loaded backend %+v", b)
	}
}

func TestBenchFileValidate(t *testing.T) {
	good := func() *BenchFile {
		kt := NewKernelTable()
		kt.Record("euler_step", "Athread", 1000, 10, 20, 1, 2)
		f := NewBenchFile(BenchConfig{Ne: 2, Nlev: 4, Qsize: 3, Steps: 5, Ranks: 2})
		f.AddBackend("athread", kt, 12.5, 0.25)
		return f
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good file invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*BenchFile)
	}{
		{"unknown schema", func(f *BenchFile) { f.Schema = "swcam-bench/v999" }},
		{"zero ne", func(f *BenchFile) { f.Config.Ne = 0 }},
		{"no backends", func(f *BenchFile) { f.Backends = nil }},
		{"zero sypd", func(f *BenchFile) {
			b := f.Backends["athread"]
			b.SYPD = 0
			f.Backends["athread"] = b
		}},
		{"nan sypd", func(f *BenchFile) {
			b := f.Backends["athread"]
			b.SYPD = math.NaN()
			f.Backends["athread"] = b
		}},
		{"no kernels", func(f *BenchFile) {
			b := f.Backends["athread"]
			b.Kernels = nil
			f.Backends["athread"] = b
		}},
		{"zero-call kernel", func(f *BenchFile) {
			f.Backends["athread"].Kernels["euler_step"] = BenchKernel{Calls: 0, Ns: 1}
		}},
		{"zero-ns kernel", func(f *BenchFile) {
			f.Backends["athread"].Kernels["euler_step"] = BenchKernel{Calls: 1, Ns: 0}
		}},
		{"negative recovery counter", func(f *BenchFile) {
			f.Recovery = &BenchRecovery{Localized: -1}
		}},
		{"retransmitted exceeds retransmits", func(f *BenchFile) {
			f.Recovery = &BenchRecovery{Retransmits: 1, Retransmitted: 2}
		}},
		{"zero phys workers", func(f *BenchFile) {
			f.Phys = &BenchPhys{Workers: 0, Columns: 10}
		}},
		{"negative phys counter", func(f *BenchFile) {
			f.Phys = &BenchPhys{Workers: 2, Chunks: -1}
		}},
		{"phys steals exceed attempts", func(f *BenchFile) {
			f.Phys = &BenchPhys{Workers: 2, Steals: 3, StealAttempts: 1}
		}},
		{"phys worker slot mismatch", func(f *BenchFile) {
			f.Phys = &BenchPhys{Workers: 4, Chunks: 6, WorkerChunks: []int64{6}}
		}},
		{"phys worker chunks don't sum", func(f *BenchFile) {
			f.Phys = &BenchPhys{Workers: 2, Chunks: 6, WorkerChunks: []int64{1, 2}}
		}},
		{"nan phys sypd", func(f *BenchFile) {
			f.Phys = &BenchPhys{Workers: 2, SerialSYPD: math.NaN()}
		}},
		{"zero integrity generations", func(f *BenchFile) {
			f.Integrity = &BenchIntegrity{ScrubEvery: 1, Generations: 0}
		}},
		{"negative integrity scrub_every", func(f *BenchFile) {
			f.Integrity = &BenchIntegrity{ScrubEvery: -1, Generations: 1}
		}},
		{"negative integrity counter", func(f *BenchFile) {
			f.Integrity = &BenchIntegrity{ScrubEvery: 1, Generations: 1, ScrubDetections: -1}
		}},
		{"nan integrity overhead", func(f *BenchFile) {
			f.Integrity = &BenchIntegrity{ScrubEvery: 1, Generations: 1, OverheadPct: math.NaN()}
		}},
	}
	for _, tc := range cases {
		f := good()
		tc.mutate(f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad file", tc.name)
		}
	}
	var nilFile *BenchFile
	if err := nilFile.Validate(); err == nil {
		t.Error("nil file validated")
	}
	// A well-formed recovery block is accepted and survives the disk
	// round trip; a file without one stays backward compatible (nil).
	f := good()
	f.Recovery = &BenchRecovery{
		Retransmits: 4, Retransmitted: 3, Checkpoints: 7,
		Localized: 2, Shrinks: 1, RecoveryWallNs: 5e6,
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("recovery block rejected: %v", err)
	}
	dir := t.TempDir()
	p, err := WriteBenchFile(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Recovery == nil || *got.Recovery != *f.Recovery {
		t.Errorf("recovery round trip: got %+v, want %+v", got.Recovery, f.Recovery)
	}
	if _, err := WriteBenchFile(dir, good()); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadBenchFile(filepath.Join(dir, "BENCH_2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got2.Recovery != nil {
		t.Errorf("fault-free file grew a recovery block: %+v", got2.Recovery)
	}
	if got2.Phys != nil {
		t.Errorf("adiabatic file grew a phys block: %+v", got2.Phys)
	}

	// A well-formed phys block round-trips, worker slices included.
	pf := good()
	pf.Config.Physics = "moist"
	pf.Config.PhysWorkers = 4
	pf.Phys = &BenchPhys{
		Workers: 4, Columns: 1536, Chunks: 96, Steals: 11, StealAttempts: 40,
		WorkerChunks: []int64{30, 24, 22, 20},
		WorkerBusyNs: []int64{5e6, 4e6, 4e6, 3e6},
		SerialSYPD:   1.5, ParallelSYPD: 2.25,
	}
	if err := pf.Validate(); err != nil {
		t.Fatalf("phys block rejected: %v", err)
	}
	pp, err := WriteBenchFile(dir, pf)
	if err != nil {
		t.Fatal(err)
	}
	pgot, err := LoadBenchFile(pp)
	if err != nil {
		t.Fatal(err)
	}
	if pgot.Phys == nil || pgot.Phys.Workers != 4 || pgot.Phys.Steals != 11 ||
		len(pgot.Phys.WorkerChunks) != 4 || pgot.Phys.WorkerChunks[0] != 30 ||
		pgot.Config.Physics != "moist" || pgot.Config.PhysWorkers != 4 {
		t.Errorf("phys round trip: got %+v / config %+v", pgot.Phys, pgot.Config)
	}
	if pgot.Integrity != nil {
		t.Errorf("defense-free file grew an integrity block: %+v", pgot.Integrity)
	}

	// A well-formed integrity block round-trips.
	inf := good()
	inf.Integrity = &BenchIntegrity{
		ScrubEvery: 1, Generations: 3, Seals: 40, Verifies: 38,
		FlipsInjected: 5, ScrubDetections: 3, LedgerDetections: 1,
		PoisonedCopies: 1, Escalations: 1, PreShipRejects: 0,
		ScrubNs: 2e6, StepNs: 9e7, OverheadPct: 2.2,
	}
	if err := inf.Validate(); err != nil {
		t.Fatalf("integrity block rejected: %v", err)
	}
	ip, err := WriteBenchFile(dir, inf)
	if err != nil {
		t.Fatal(err)
	}
	igot, err := LoadBenchFile(ip)
	if err != nil {
		t.Fatal(err)
	}
	if igot.Integrity == nil || *igot.Integrity != *inf.Integrity {
		t.Errorf("integrity round trip: got %+v, want %+v", igot.Integrity, inf.Integrity)
	}
}

func TestStepReportRecoverySummary(t *testing.T) {
	kt := NewKernelTable()
	kt.Record("euler_step", "Athread", 100, 10, 20, 1, 1)

	// No recovery counters: the report stays recovery-free.
	rep := BuildStepReport(kt, NewRegistry(), ReportInput{Steps: 1, SimSeconds: 1, WallSeconds: 1})
	if rep.Recovery != nil {
		t.Fatalf("fault-free report has recovery summary: %+v", rep.Recovery)
	}
	if strings.Contains(rep.Text(), "recovery:") {
		t.Error("fault-free report text mentions recovery")
	}

	reg := NewRegistry()
	reg.Counter("mpirt.retx.attempts").Add(5)
	reg.Counter("mpirt.retx.recovered").Add(4)
	reg.Counter("core.recovery.checkpoints").Add(9)
	reg.Counter("core.recovery.localized").Add(2)
	reg.Counter("core.recovery.shrinks").Add(1)
	reg.Counter("core.recovery.rollbacks").Add(3)
	reg.Counter("core.recovery.replayed_steps").Add(6)
	reg.Counter("core.recovery.ns").Add(7e6)

	rep = BuildStepReport(kt, reg, ReportInput{Steps: 1, SimSeconds: 1, WallSeconds: 1})
	rec := rep.Recovery
	if rec == nil {
		t.Fatal("report with recovery counters has no summary")
	}
	want := RecoverySummary{
		Retransmits: 5, Retransmitted: 4, Checkpoints: 9, Localized: 2,
		Shrinks: 1, Rollbacks: 3, ReplayedSteps: 6, RecoveryWallNs: 7e6,
	}
	if *rec != want {
		t.Errorf("summary = %+v, want %+v", *rec, want)
	}
	if txt := rep.Text(); !strings.Contains(txt, "recovery: 4/5 retransmits recovered") {
		t.Errorf("report text missing recovery line:\n%s", txt)
	}
}

// goodScaling builds a valid scaling block for mutation tests.
func goodScaling() *BenchScaling {
	pt := BenchScalingPoint{
		Ne: 4, Ranks: 16, ElemsPerRank: 6, Steps: 3,
		WallNs: 5e8, PerStepNs: 17e7, DynNs: 3e8, HaloNs: 1e8, CollNs: 2e7,
		WireBytes: 1 << 20, Msgs: 4096, RankBytes: 8 << 20,
		SYPD: 0.8, Flops: 1e9, MemBytes: 4e9,
	}
	pt2 := pt
	pt2.Ranks, pt2.ElemsPerRank = 32, 3
	return &BenchScaling{
		Mode: "calibrated", Backend: "athread", BudgetBytes: 512 << 20,
		Weak:   []BenchScalingPoint{pt},
		Strong: []BenchScalingPoint{pt, pt2},
		Fit: &BenchScalingFit{
			NsPerFlop: 0.4, NsPerByte: 0.1, NsPerMsg: 1200,
			NsPerWireByte: 0.05, FixedNs: 3e5, Points: 3, ResidualRMS: 0.07,
		},
		Projection: []BenchScalingProjection{
			{Ne: 256, ResKm: 11.7, Ranks: 38400, SYPD: 2.1, ModelSYPD: 3.4},
			{Ne: 4000, ResKm: 0.75, Ranks: 163840, SYPD: 0.02, ModelSYPD: 0.09},
		},
	}
}

// TestBenchScalingValidate: the scaling block's invariants, and that a
// scaling-only file (no backends) is a legal benchmark.
func TestBenchScalingValidate(t *testing.T) {
	good := func() *BenchFile {
		f := NewBenchFile(BenchConfig{Ne: 4, Nlev: 8, Qsize: 2, Steps: 3, Ranks: 16})
		f.Backends = nil
		f.Scaling = goodScaling()
		return f
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good scaling-only file invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*BenchFile)
	}{
		{"bad mode", func(f *BenchFile) { f.Scaling.Mode = "guessed" }},
		{"no backend", func(f *BenchFile) { f.Scaling.Backend = "" }},
		{"negative budget", func(f *BenchFile) { f.Scaling.BudgetBytes = -1 }},
		{"no points", func(f *BenchFile) { f.Scaling.Weak, f.Scaling.Strong = nil, nil }},
		{"zero-rank point", func(f *BenchFile) { f.Scaling.Weak[0].Ranks = 0 }},
		{"zero-wall point", func(f *BenchFile) { f.Scaling.Strong[1].WallNs = 0 }},
		{"nan sypd point", func(f *BenchFile) { f.Scaling.Weak[0].SYPD = math.NaN() }},
		{"negative phase ns", func(f *BenchFile) { f.Scaling.Strong[0].CollNs = -5 }},
		{"calibrated without fit", func(f *BenchFile) { f.Scaling.Fit = nil }},
		{"nan fit coefficient", func(f *BenchFile) { f.Scaling.Fit.NsPerMsg = math.Inf(1) }},
		{"zero-point fit", func(f *BenchFile) { f.Scaling.Fit.Points = 0 }},
		{"zero-res projection", func(f *BenchFile) { f.Scaling.Projection[0].ResKm = 0 }},
		{"inf projection sypd", func(f *BenchFile) { f.Scaling.Projection[1].SYPD = math.Inf(1) }},
		{"negative model sypd", func(f *BenchFile) { f.Scaling.Projection[0].ModelSYPD = -1 }},
	}
	for _, tc := range cases {
		f := good()
		tc.mutate(f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad scaling block", tc.name)
		}
	}
	// measured mode needs no fit.
	f := good()
	f.Scaling.Mode = "measured"
	f.Scaling.Fit = nil
	f.Scaling.Projection = nil
	if err := f.Validate(); err != nil {
		t.Errorf("measured-mode block without fit rejected: %v", err)
	}
}

// TestBenchScalingRoundTrip: the block survives the disk round trip
// bit-for-bit at the field level.
func TestBenchScalingRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := NewBenchFile(BenchConfig{Ne: 4, Nlev: 8, Qsize: 2, Steps: 3, Ranks: 16})
	f.Backends = nil
	f.Scaling = goodScaling()
	p, err := WriteBenchFile(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scaling == nil {
		t.Fatal("scaling block lost in round trip")
	}
	if !reflect.DeepEqual(got.Scaling, f.Scaling) {
		t.Errorf("round trip changed the block:\n got %+v\nwant %+v", got.Scaling, f.Scaling)
	}
}
