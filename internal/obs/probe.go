package obs

// Probe bundles the three observation surfaces — spans, metrics, and
// per-kernel attribution — that instrumented subsystems share. A nil
// Probe (the default everywhere) observes nothing; the accessors return
// nil components, which are themselves no-ops.
type Probe struct {
	Tracer  *Tracer
	Reg     *Registry
	Kernels *KernelTable
}

// NewProbe returns a fully enabled probe.
func NewProbe() *Probe {
	return &Probe{Tracer: NewTracer(), Reg: NewRegistry(), Kernels: NewKernelTable()}
}

// T returns the tracer (nil on a nil probe).
func (p *Probe) T() *Tracer {
	if p == nil {
		return nil
	}
	return p.Tracer
}

// R returns the registry (nil on a nil probe).
func (p *Probe) R() *Registry {
	if p == nil {
		return nil
	}
	return p.Reg
}

// K returns the kernel table (nil on a nil probe).
func (p *Probe) K() *KernelTable {
	if p == nil {
		return nil
	}
	return p.Kernels
}
