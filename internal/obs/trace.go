package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Tracer records wall-clock spans from many goroutines (ranks) at once
// and exports them in the Chrome about://tracing JSON format. A nil
// Tracer is valid and records nothing; Begin on a nil Tracer returns a
// Span whose End is a no-op and costs no time.Now call.
type Tracer struct {
	mu     sync.Mutex
	origin time.Time
	events []traceEvent
	procs  map[int]string // pid -> process name, for trace metadata
}

// traceEvent is one complete ("ph":"X") or instant ("ph":"i") event.
type traceEvent struct {
	Name  string // span name, e.g. "exec.euler_step"
	Cat   string // category, e.g. backend name or "comm"
	Pid   int    // rank
	Tid   int    // timeline within the rank
	Start time.Time
	Dur   time.Duration
	Inst  bool // instant event (no duration)
}

// NewTracer returns an enabled tracer whose timestamps are relative to
// now.
func NewTracer() *Tracer {
	return &Tracer{origin: time.Now(), procs: make(map[int]string)}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// NameProcess labels a pid (rank) in the exported trace, shown as the
// process name in the viewer.
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.procs[pid] = name
	t.mu.Unlock()
}

// Span is one open interval. The zero Span (from a nil tracer) is inert.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	pid   int
	tid   int
	start time.Time
}

// Begin opens a span on rank pid. End must be called on the same
// goroutine or any other — the tracer is locked only at End.
func (t *Tracer) Begin(pid int, name, cat string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, pid: pid, start: time.Now()}
}

// BeginTid is Begin with an explicit timeline id within the rank (used
// when several goroutines trace inside one rank, e.g. physics workers).
func (t *Tracer) BeginTid(pid, tid int, name, cat string) Span {
	s := t.Begin(pid, name, cat)
	s.tid = tid
	return s
}

// End closes the span and records it.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := time.Since(s.start)
	s.t.mu.Lock()
	s.t.events = append(s.t.events, traceEvent{
		Name: s.name, Cat: s.cat, Pid: s.pid, Tid: s.tid,
		Start: s.start, Dur: d,
	})
	s.t.mu.Unlock()
}

// Instant records a zero-duration marker event (a recovery decision, a
// checkpoint) on rank pid.
func (t *Tracer) Instant(pid int, name, cat string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Pid: pid, Start: now, Inst: true,
	})
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// chromeEvent is the JSON shape of the Trace Event Format that
// chrome://tracing and Perfetto load.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since trace origin
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the recorded spans as a Chrome trace JSON
// document. Events are sorted by (pid, start time) so the output is
// deterministic given deterministic spans.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	doc := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		t.mu.Lock()
		events := append([]traceEvent(nil), t.events...)
		procs := make(map[int]string, len(t.procs))
		for pid, name := range t.procs {
			procs[pid] = name
		}
		origin := t.origin
		t.mu.Unlock()

		sort.SliceStable(events, func(i, j int) bool {
			if events[i].Pid != events[j].Pid {
				return events[i].Pid < events[j].Pid
			}
			return events[i].Start.Before(events[j].Start)
		})
		pids := make([]int, 0, len(procs))
		for pid := range procs {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		for _, pid := range pids {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": procs[pid]},
			})
		}
		for _, e := range events {
			ts := float64(e.Start.Sub(origin)) / float64(time.Microsecond)
			ce := chromeEvent{Name: e.Name, Cat: e.Cat, Pid: e.Pid, Tid: e.Tid, Ts: ts}
			if e.Inst {
				ce.Ph = "i"
				ce.S = "p" // process-scoped instant
			} else {
				ce.Ph = "X"
				ce.Dur = float64(e.Dur) / float64(time.Microsecond)
			}
			doc.TraceEvents = append(doc.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteChromeTraceFile writes the trace to path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace: %w", err)
	}
	defer f.Close()
	if err := t.WriteChromeTrace(f); err != nil {
		return fmt.Errorf("obs: trace: %w", err)
	}
	return nil
}
