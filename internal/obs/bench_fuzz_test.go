package obs

import (
	"encoding/json"
	"testing"
)

// validBenchBytes builds the canonical well-formed BENCH file used to
// seed the fuzzer (and the checked-in corpus).
func validBenchBytes(tb testing.TB) []byte {
	tb.Helper()
	f := NewBenchFile(BenchConfig{Ne: 4, Nlev: 8, Qsize: 2, Steps: 3, Ranks: 2, DynWorkers: 4})
	f.Backends["Athread"] = BenchBackend{
		SYPD:        1.25,
		WallSeconds: 2.5,
		Kernels: map[string]BenchKernel{
			"euler_step":     {Calls: 6, Ns: 120000, Flops: 500000, Bytes: 40000},
			"vertical_remap": {Calls: 3, Ns: 90000, Flops: 300000, Bytes: 30000},
		},
	}
	data, err := json.Marshal(f)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzDecodeBench: DecodeBench is the whole untrusted-input surface of
// the BENCH_<n>.json format (CI's bench-smoke job feeds it files from
// disk). It must return an error — never panic — on arbitrary bytes,
// and anything it accepts must satisfy Validate and survive a
// re-encode/re-decode round trip.
func FuzzDecodeBench(f *testing.F) {
	valid := validBenchBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated JSON
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":"swcam-bench/v1"}`))
	f.Add([]byte(`{"schema":"swcam-bench/v0","config":{"ne":4,"nlev":8,"steps":1,"ranks":1},"backends":{}}`))
	f.Add([]byte(`{"schema":"swcam-bench/v1","config":{"ne":-4,"nlev":8,"steps":1,"ranks":1},"backends":{}}`))
	f.Add([]byte(`{"schema":"swcam-bench/v1","config":{"ne":4,"nlev":8,"steps":1,"ranks":1},` +
		`"backends":{"Intel":{"sypd":0,"wall_seconds":1,"kernels":{"k":{"calls":1,"ns":1}}}}}`))
	f.Add([]byte(`{"schema":"swcam-bench/v1","config":{"ne":4,"nlev":8,"steps":1,"ranks":1},` +
		`"backends":{"Intel":{"sypd":1,"wall_seconds":1,"kernels":{}}}}`))
	f.Add([]byte(`{"schema":"swcam-bench/v1","config":{"ne":4,"nlev":8,"steps":1,"ranks":1,` +
		`"physics":"moist","phys_workers":4},` +
		`"backends":{"Intel":{"sypd":1,"wall_seconds":1,"kernels":{"k":{"calls":1,"ns":1}}}},` +
		`"phys":{"workers":4,"columns":64,"chunks":4,"steals":1,"steal_attempts":3,` +
		`"worker_chunks":[1,1,1,1],"worker_busy_ns":[5,5,5,5],"serial_sypd":1,"parallel_sypd":2}}`))
	f.Add([]byte(`{"schema":"swcam-bench/v1","config":{"ne":4,"nlev":8,"steps":1,"ranks":1},` +
		`"backends":{"Intel":{"sypd":1,"wall_seconds":1,"kernels":{"k":{"calls":1,"ns":1}}}},` +
		`"phys":{"workers":2,"chunks":6,"worker_chunks":[1,2]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		bf, err := DecodeBench(data)
		if err != nil {
			if bf != nil {
				t.Fatal("non-nil bench file returned with an error")
			}
			return
		}
		if verr := bf.Validate(); verr != nil {
			t.Fatalf("accepted file fails its own validation: %v", verr)
		}
		out, merr := json.Marshal(bf)
		if merr != nil {
			t.Fatalf("accepted file does not re-encode: %v", merr)
		}
		if _, rerr := DecodeBench(out); rerr != nil {
			t.Fatalf("round trip rejected: %v", rerr)
		}
	})
}
