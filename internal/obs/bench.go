package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

// BenchSchema identifies the BENCH_<n>.json format version. Consumers
// (CI's bench-smoke job, trajectory diffing) reject files whose schema
// string they do not know.
const BenchSchema = "swcam-bench/v1"

// BenchConfig records the model configuration a benchmark file measured.
// DynWorkers is the intra-rank worker-pool size the run used (0 in files
// written before tiling existed; treated as 1, the serial path).
// Physics names the column-physics suite stepped during the run
// ("moist", "held-suarez"; empty = adiabatic) and PhysWorkers the
// work-stealing pool size it ran on (0 in pre-physics files and in
// adiabatic runs; treated as 1, the serial path).
type BenchConfig struct {
	Ne          int    `json:"ne"`
	Nlev        int    `json:"nlev"`
	Qsize       int    `json:"qsize"`
	Steps       int    `json:"steps"`
	Ranks       int    `json:"ranks"`
	DynWorkers  int    `json:"dyn_workers,omitempty"`
	Physics     string `json:"physics,omitempty"`
	PhysWorkers int    `json:"phys_workers,omitempty"`
}

// BenchKernel is one kernel's accumulated record within one backend.
type BenchKernel struct {
	Calls int64 `json:"calls"`
	Ns    int64 `json:"ns"`
	Flops int64 `json:"flops"`
	Bytes int64 `json:"bytes"`
}

// BenchBackend is one execution strategy's measurement. OverlapRatio is
// the measured comm/compute overlap of the redesigned exchange (§7.6);
// it is only present (nonzero encoding) when the run actually overlapped
// — the field is additive, so older files interoperate unchanged.
type BenchBackend struct {
	SYPD         float64                `json:"sypd"`
	WallSeconds  float64                `json:"wall_seconds"`
	OverlapRatio float64                `json:"overlap_ratio,omitempty"`
	Kernels      map[string]BenchKernel `json:"kernels"`
}

// BenchRecovery records the resilience activity behind a benchmarked
// run: how often each rung of the recovery ladder fired and what the
// recovery actions cost in wall time. Nil in fault-free runs and in
// files written before the ladder existed — the field is additive, so
// older consumers and older files interoperate unchanged.
type BenchRecovery struct {
	Retransmits    int64 `json:"retransmits"`      // delivery retries attempted (rung 1)
	Retransmitted  int64 `json:"retransmitted"`    // retries that recovered the message
	Checkpoints    int64 `json:"checkpoints"`      // partner-replicated snapshots taken
	Localized      int64 `json:"localized"`        // single-rank rebuilds from a buddy copy
	Respawns       int64 `json:"respawns"`         // dead ranks replaced from spares
	Shrinks        int64 `json:"shrinks"`          // degraded-mode repartitions onto n-1 ranks
	Rollbacks      int64 `json:"rollbacks"`        // global rollbacks (fallback rung)
	RecoveryWallNs int64 `json:"recovery_wall_ns"` // wall time inside recovery actions
}

// BenchServing records a load-generator run against the ensemble
// forecast service: sustained request rate, latency percentiles, and
// the degradation the run observed (sheds, stale serves, member
// restarts). Nil for pure-compute benchmarks — the block is additive,
// so older consumers and older files interoperate unchanged.
type BenchServing struct {
	Members       int     `json:"members"`       // ensemble size served
	DurationSecs  float64 `json:"duration_secs"` // load window
	Requests      int64   `json:"requests"`      // completed requests
	QPS           float64 `json:"qps"`           // sustained completed-request rate
	P50Ms         float64 `json:"p50_ms"`        // median latency
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	Errors5xx     int64   `json:"errors_5xx"`     // server-fault responses observed
	Shed429       int64   `json:"shed_429"`       // load-shed responses (429)
	StaleServes   int64   `json:"stale_serves"`   // responses carrying a staleness header
	Restarts      int64   `json:"restarts"`       // member restarts during the window
	Quarantines   int64   `json:"quarantines"`    // members quarantined during the window
	TornSnapshots int64   `json:"torn_snapshots"` // detected-and-retried torn reads
}

// BenchPhys records the work-stealing physics pool's activity behind a
// benchmarked run: column throughput, steal traffic, and the per-worker
// utilization split that the steal scheduler produced. Nil for
// adiabatic runs and files written before parallel physics existed —
// the block is additive, so older consumers and files interoperate
// unchanged.
type BenchPhys struct {
	Workers       int     `json:"workers"`                  // steal-pool size
	Columns       int64   `json:"columns"`                  // columns stepped, whole run
	Chunks        int64   `json:"chunks"`                   // element chunks executed
	Steals        int64   `json:"steals"`                   // successful steals
	StealAttempts int64   `json:"steal_attempts"`           // steal probes, successful or not
	WorkerChunks  []int64 `json:"worker_chunks,omitempty"`  // chunks per worker slot
	WorkerBusyNs  []int64 `json:"worker_busy_ns,omitempty"` // busy wall time per worker slot
	SerialSYPD    float64 `json:"serial_sypd,omitempty"`    // paired 1-worker run, when measured
	ParallelSYPD  float64 `json:"parallel_sypd,omitempty"`  // paired N-worker run, when measured
}

// BenchIntegrity records the silent-data-corruption defense activity
// behind a benchmarked run: scrub cadence and cost, injected flip
// faults, what each guard detected, and how the verified checkpoint
// ring reacted. Nil when the integrity layer was off and in files
// written before it existed — the block is additive, so older
// consumers and older files interoperate unchanged.
type BenchIntegrity struct {
	ScrubEvery       int     `json:"scrub_every"`            // at-rest scrub cadence (steps)
	Generations      int     `json:"generations"`            // checkpoint generations retained
	Seals            int64   `json:"seals"`                  // end-of-step CRC seals taken
	Verifies         int64   `json:"verifies"`               // at-rest verifications performed
	FlipsInjected    int64   `json:"flips_injected"`         // flipState+flipCheckpoint+flipBuddy fired
	ScrubDetections  int64   `json:"scrub_detections"`       // flips the at-rest scrubber caught
	LedgerDetections int64   `json:"ledger_detections"`      // conservation-ledger violations flagged
	PoisonedCopies   int64   `json:"poisoned_copies"`        // checkpoint copies rejected by verification
	Escalations      int64   `json:"escalations"`            // restores that skipped a poisoned generation
	PreShipRejects   int64   `json:"preship_rejects"`        // buddy snapshots rejected before shipping
	ScrubNs          int64   `json:"scrub_ns"`               // wall time inside seal/verify
	StepNs           int64   `json:"step_ns"`                // wall time inside model steps
	OverheadPct      float64 `json:"overhead_pct,omitempty"` // 100 * scrub_ns / step_ns
}

// BenchScalingPoint is one measured configuration of a scaling sweep: a
// real goroutine-rank run at (ne, ranks) with its per-phase wall-time
// attribution and memory accounting.
type BenchScalingPoint struct {
	Ne           int     `json:"ne"`
	Ranks        int     `json:"ranks"`
	ElemsPerRank int     `json:"elems_per_rank"` // max local elements on any rank
	Steps        int     `json:"steps"`
	WallNs       int64   `json:"wall_ns"`     // whole-run wall time
	DynNs        int64   `json:"dyn_ns"`      // kernel time, summed over ranks
	HaloNs       int64   `json:"halo_ns"`     // DSS exchange time, summed over ranks
	CollNs       int64   `json:"coll_ns"`     // collective time, summed over ranks
	WireBytes    int64   `json:"wire_bytes"`  // halo bytes crossing rank boundaries
	Msgs         int64   `json:"msgs"`        // point-to-point messages sent
	RankBytes    int64   `json:"rank_bytes"`  // per-rank resident state footprint
	SYPD         float64 `json:"sypd"`        // simulated years per day at this point
	Flops        int64   `json:"flops"`       // accounted kernel flops, whole run
	MemBytes     int64   `json:"mem_bytes"`   // accounted kernel bytes, whole run
	PerStepNs    int64   `json:"per_step_ns"` // WallNs / Steps, the curve's y-axis
}

// BenchScalingFit is the calibrated cost model: per-step rank time
// fitted as a·flops + b·membytes + c·msgs + d·wirebytes + e over the
// measured points (least squares; see scale.Fit).
type BenchScalingFit struct {
	NsPerFlop     float64 `json:"ns_per_flop"`
	NsPerByte     float64 `json:"ns_per_byte"`
	NsPerMsg      float64 `json:"ns_per_msg"`
	NsPerWireByte float64 `json:"ns_per_wire_byte"`
	FixedNs       float64 `json:"fixed_ns"`
	Points        int     `json:"points"`       // measurements fitted
	ResidualRMS   float64 `json:"residual_rms"` // RMS relative residual over the fit
}

// BenchScalingProjection is one row of the NGGPS-style extrapolation
// table: a resolution, the rank count it would run at, and the SYPD the
// calibrated model (this box's coefficients scaled out) and the
// TaihuLight machine model predict.
type BenchScalingProjection struct {
	Ne        int     `json:"ne"`
	ResKm     float64 `json:"res_km"`
	Ranks     int     `json:"ranks"`
	SYPD      float64 `json:"sypd"`                 // calibrated-coefficients projection
	ModelSYPD float64 `json:"model_sypd,omitempty"` // analytic TaihuLight model, when computed
}

// BenchScaling records a measured scaling campaign: weak/strong curves
// of real rank sweeps, the per-rank memory budget they ran under, and
// (in calibrate mode) the fitted cost model plus the full-machine
// extrapolation table. Nil for non-campaign benchmarks — the block is
// additive, so older consumers and older files interoperate unchanged.
type BenchScaling struct {
	Mode        string                   `json:"mode"`    // "measured" or "calibrated"
	Backend     string                   `json:"backend"` // backend the sweep ran
	BudgetBytes int64                    `json:"budget_bytes_per_rank"`
	Weak        []BenchScalingPoint      `json:"weak,omitempty"`
	Strong      []BenchScalingPoint      `json:"strong,omitempty"`
	Fit         *BenchScalingFit         `json:"fit,omitempty"`
	Projection  []BenchScalingProjection `json:"projection,omitempty"`
}

// BenchFile is the on-disk schema of BENCH_<n>.json — the perf
// trajectory's data points: per-kernel nanoseconds and bytes plus SYPD
// for every backend measured, (when faults were injected) the recovery
// activity that the measured wall time absorbed, (for serving
// benchmarks) the load-test summary, and (for scaling campaigns) the
// measured curves and calibrated extrapolation.
type BenchFile struct {
	Schema   string                  `json:"schema"`
	Config   BenchConfig             `json:"config"`
	Backends map[string]BenchBackend `json:"backends,omitempty"`
	Recovery *BenchRecovery          `json:"recovery,omitempty"`
	Serving  *BenchServing           `json:"serving,omitempty"`
	Scaling  *BenchScaling           `json:"scaling,omitempty"`
	Phys     *BenchPhys              `json:"phys,omitempty"`

	// Integrity is present when the SDC defenses were enabled for the
	// measured run.
	Integrity *BenchIntegrity `json:"integrity,omitempty"`
}

// NewBenchFile builds a file from per-backend kernel tables and rates.
func NewBenchFile(cfg BenchConfig) *BenchFile {
	return &BenchFile{Schema: BenchSchema, Config: cfg, Backends: make(map[string]BenchBackend)}
}

// AddBackend folds one backend's kernel table and run totals in.
func (f *BenchFile) AddBackend(name string, kt *KernelTable, sypd, wallSeconds float64) {
	b := BenchBackend{SYPD: sypd, WallSeconds: wallSeconds, Kernels: make(map[string]BenchKernel)}
	for _, s := range kt.Stats() {
		k := b.Kernels[s.Kernel]
		k.Calls += s.Calls
		k.Ns += s.Ns
		k.Flops += s.Flops
		k.Bytes += s.Bytes
		b.Kernels[s.Kernel] = k
	}
	f.Backends[name] = b
}

// SetBackendOverlap records a backend's measured comm/compute overlap
// ratio (clamped validation happens in Validate). No-op for backends
// not yet added.
func (f *BenchFile) SetBackendOverlap(name string, ratio float64) {
	b, ok := f.Backends[name]
	if !ok {
		return
	}
	b.OverlapRatio = ratio
	f.Backends[name] = b
}

// Validate checks the schema invariants CI enforces: known schema
// string, a sane configuration, at least one backend (or a serving or
// scaling block — those benchmarks measure latency or sweep curves, not
// kernels), and for every backend a finite nonzero SYPD and a non-empty
// kernel set with positive times.
func (f *BenchFile) Validate() error {
	if f == nil {
		return fmt.Errorf("obs: nil bench file")
	}
	if f.Schema != BenchSchema {
		return fmt.Errorf("obs: bench schema %q, want %q", f.Schema, BenchSchema)
	}
	if f.Config.Ne < 1 || f.Config.Nlev < 1 || f.Config.Steps < 1 || f.Config.Ranks < 1 {
		return fmt.Errorf("obs: bench config %+v has a non-positive dimension", f.Config)
	}
	if len(f.Backends) == 0 && f.Serving == nil && f.Scaling == nil {
		return fmt.Errorf("obs: bench file has neither backends nor a serving or scaling block")
	}
	for name, b := range f.Backends {
		if b.SYPD <= 0 || math.IsNaN(b.SYPD) || math.IsInf(b.SYPD, 0) {
			return fmt.Errorf("obs: backend %s: SYPD %v is zero/NaN/Inf", name, b.SYPD)
		}
		if len(b.Kernels) == 0 {
			return fmt.Errorf("obs: backend %s: no kernels recorded", name)
		}
		if b.OverlapRatio < 0 || b.OverlapRatio > 1 || math.IsNaN(b.OverlapRatio) {
			return fmt.Errorf("obs: backend %s: overlap ratio %v outside [0, 1]", name, b.OverlapRatio)
		}
		for kn, k := range b.Kernels {
			if k.Calls < 1 || k.Ns < 1 {
				return fmt.Errorf("obs: backend %s kernel %s: calls=%d ns=%d", name, kn, k.Calls, k.Ns)
			}
		}
	}
	if rec := f.Recovery; rec != nil {
		for _, c := range []struct {
			name string
			v    int64
		}{
			{"retransmits", rec.Retransmits},
			{"retransmitted", rec.Retransmitted},
			{"checkpoints", rec.Checkpoints},
			{"localized", rec.Localized},
			{"respawns", rec.Respawns},
			{"shrinks", rec.Shrinks},
			{"rollbacks", rec.Rollbacks},
			{"recovery_wall_ns", rec.RecoveryWallNs},
		} {
			if c.v < 0 {
				return fmt.Errorf("obs: bench recovery %s is negative: %d", c.name, c.v)
			}
		}
		if rec.Retransmitted > rec.Retransmits {
			return fmt.Errorf("obs: bench recovery retransmitted %d exceeds retransmits %d",
				rec.Retransmitted, rec.Retransmits)
		}
	}
	if sv := f.Serving; sv != nil {
		if sv.Members < 1 {
			return fmt.Errorf("obs: bench serving members %d < 1", sv.Members)
		}
		if sv.DurationSecs <= 0 || math.IsNaN(sv.DurationSecs) || math.IsInf(sv.DurationSecs, 0) {
			return fmt.Errorf("obs: bench serving duration %v not positive-finite", sv.DurationSecs)
		}
		if sv.Requests < 1 {
			return fmt.Errorf("obs: bench serving has no completed requests")
		}
		if sv.QPS <= 0 || math.IsNaN(sv.QPS) || math.IsInf(sv.QPS, 0) {
			return fmt.Errorf("obs: bench serving qps %v not positive-finite", sv.QPS)
		}
		for _, c := range []struct {
			name string
			v    float64
		}{{"p50_ms", sv.P50Ms}, {"p90_ms", sv.P90Ms}, {"p99_ms", sv.P99Ms}} {
			if c.v <= 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
				return fmt.Errorf("obs: bench serving %s %v not positive-finite", c.name, c.v)
			}
		}
		if sv.P50Ms > sv.P90Ms || sv.P90Ms > sv.P99Ms {
			return fmt.Errorf("obs: bench serving percentiles not monotone: p50 %v p90 %v p99 %v",
				sv.P50Ms, sv.P90Ms, sv.P99Ms)
		}
		for _, c := range []struct {
			name string
			v    int64
		}{
			{"errors_5xx", sv.Errors5xx}, {"shed_429", sv.Shed429},
			{"stale_serves", sv.StaleServes}, {"restarts", sv.Restarts},
			{"quarantines", sv.Quarantines}, {"torn_snapshots", sv.TornSnapshots},
		} {
			if c.v < 0 {
				return fmt.Errorf("obs: bench serving %s is negative: %d", c.name, c.v)
			}
		}
	}
	if ph := f.Phys; ph != nil {
		if ph.Workers < 1 {
			return fmt.Errorf("obs: bench phys workers %d < 1", ph.Workers)
		}
		for _, c := range []struct {
			name string
			v    int64
		}{
			{"columns", ph.Columns}, {"chunks", ph.Chunks},
			{"steals", ph.Steals}, {"steal_attempts", ph.StealAttempts},
		} {
			if c.v < 0 {
				return fmt.Errorf("obs: bench phys %s is negative: %d", c.name, c.v)
			}
		}
		if ph.Steals > ph.StealAttempts {
			return fmt.Errorf("obs: bench phys steals %d exceed attempts %d", ph.Steals, ph.StealAttempts)
		}
		if len(ph.WorkerChunks) > 0 {
			if len(ph.WorkerChunks) != ph.Workers {
				return fmt.Errorf("obs: bench phys worker_chunks has %d slots for %d workers",
					len(ph.WorkerChunks), ph.Workers)
			}
			var sum int64
			for w, v := range ph.WorkerChunks {
				if v < 0 {
					return fmt.Errorf("obs: bench phys worker_chunks[%d] is negative: %d", w, v)
				}
				sum += v
			}
			if sum != ph.Chunks {
				return fmt.Errorf("obs: bench phys worker_chunks sum %d != chunks %d", sum, ph.Chunks)
			}
		}
		if len(ph.WorkerBusyNs) > 0 && len(ph.WorkerBusyNs) != ph.Workers {
			return fmt.Errorf("obs: bench phys worker_busy_ns has %d slots for %d workers",
				len(ph.WorkerBusyNs), ph.Workers)
		}
		for w, v := range ph.WorkerBusyNs {
			if v < 0 {
				return fmt.Errorf("obs: bench phys worker_busy_ns[%d] is negative: %d", w, v)
			}
		}
		for _, c := range []struct {
			name string
			v    float64
		}{{"serial_sypd", ph.SerialSYPD}, {"parallel_sypd", ph.ParallelSYPD}} {
			if c.v < 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
				return fmt.Errorf("obs: bench phys %s %v is negative/NaN/Inf", c.name, c.v)
			}
		}
	}
	if in := f.Integrity; in != nil {
		if in.ScrubEvery < 0 {
			return fmt.Errorf("obs: bench integrity scrub_every %d is negative", in.ScrubEvery)
		}
		if in.Generations < 1 {
			return fmt.Errorf("obs: bench integrity generations %d < 1", in.Generations)
		}
		for _, c := range []struct {
			name string
			v    int64
		}{
			{"seals", in.Seals}, {"verifies", in.Verifies},
			{"flips_injected", in.FlipsInjected}, {"scrub_detections", in.ScrubDetections},
			{"ledger_detections", in.LedgerDetections}, {"poisoned_copies", in.PoisonedCopies},
			{"escalations", in.Escalations}, {"preship_rejects", in.PreShipRejects},
			{"scrub_ns", in.ScrubNs}, {"step_ns", in.StepNs},
		} {
			if c.v < 0 {
				return fmt.Errorf("obs: bench integrity %s is negative: %d", c.name, c.v)
			}
		}
		if in.OverheadPct < 0 || math.IsNaN(in.OverheadPct) || math.IsInf(in.OverheadPct, 0) {
			return fmt.Errorf("obs: bench integrity overhead_pct %v is negative/NaN/Inf", in.OverheadPct)
		}
	}
	if sc := f.Scaling; sc != nil {
		if sc.Mode != "measured" && sc.Mode != "calibrated" {
			return fmt.Errorf("obs: bench scaling mode %q, want measured or calibrated", sc.Mode)
		}
		if sc.Backend == "" {
			return fmt.Errorf("obs: bench scaling has no backend")
		}
		if sc.BudgetBytes < 0 {
			return fmt.Errorf("obs: bench scaling budget %d is negative", sc.BudgetBytes)
		}
		if len(sc.Weak)+len(sc.Strong) == 0 {
			return fmt.Errorf("obs: bench scaling block has no measured points")
		}
		checkCurve := func(curve string, pts []BenchScalingPoint) error {
			for i, p := range pts {
				if p.Ne < 1 || p.Ranks < 1 || p.Steps < 1 || p.ElemsPerRank < 1 {
					return fmt.Errorf("obs: bench scaling %s[%d] has a non-positive dimension: %+v", curve, i, p)
				}
				if p.WallNs < 1 || p.PerStepNs < 1 {
					return fmt.Errorf("obs: bench scaling %s[%d] has no wall time", curve, i)
				}
				if p.SYPD <= 0 || math.IsNaN(p.SYPD) || math.IsInf(p.SYPD, 0) {
					return fmt.Errorf("obs: bench scaling %s[%d]: SYPD %v is zero/NaN/Inf", curve, i, p.SYPD)
				}
				if p.DynNs < 0 || p.HaloNs < 0 || p.CollNs < 0 ||
					p.WireBytes < 0 || p.Msgs < 0 || p.RankBytes < 0 {
					return fmt.Errorf("obs: bench scaling %s[%d] has a negative phase counter: %+v", curve, i, p)
				}
			}
			return nil
		}
		if err := checkCurve("weak", sc.Weak); err != nil {
			return err
		}
		if err := checkCurve("strong", sc.Strong); err != nil {
			return err
		}
		if sc.Mode == "calibrated" && sc.Fit == nil {
			return fmt.Errorf("obs: bench scaling mode calibrated but no fit block")
		}
		if fit := sc.Fit; fit != nil {
			if fit.Points < 1 {
				return fmt.Errorf("obs: bench scaling fit over %d points", fit.Points)
			}
			for _, c := range []struct {
				name string
				v    float64
			}{
				{"ns_per_flop", fit.NsPerFlop}, {"ns_per_byte", fit.NsPerByte},
				{"ns_per_msg", fit.NsPerMsg}, {"ns_per_wire_byte", fit.NsPerWireByte},
				{"fixed_ns", fit.FixedNs}, {"residual_rms", fit.ResidualRMS},
			} {
				if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
					return fmt.Errorf("obs: bench scaling fit %s %v is NaN/Inf", c.name, c.v)
				}
			}
		}
		for i, p := range sc.Projection {
			if p.Ne < 1 || p.Ranks < 1 {
				return fmt.Errorf("obs: bench scaling projection[%d] has a non-positive dimension: %+v", i, p)
			}
			if p.ResKm <= 0 || math.IsNaN(p.ResKm) || math.IsInf(p.ResKm, 0) {
				return fmt.Errorf("obs: bench scaling projection[%d]: res %v km", i, p.ResKm)
			}
			if p.SYPD <= 0 || math.IsNaN(p.SYPD) || math.IsInf(p.SYPD, 0) {
				return fmt.Errorf("obs: bench scaling projection[%d]: SYPD %v is zero/NaN/Inf", i, p.SYPD)
			}
			if p.ModelSYPD < 0 || math.IsNaN(p.ModelSYPD) || math.IsInf(p.ModelSYPD, 0) {
				return fmt.Errorf("obs: bench scaling projection[%d]: model SYPD %v is negative/NaN/Inf", i, p.ModelSYPD)
			}
		}
	}
	return nil
}

var benchNameRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// NextBenchPath returns the path of the next unused BENCH_<n>.json in
// dir (1-based), scanning existing files so the trajectory appends.
func NextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("obs: bench dir: %w", err)
	}
	next := 1
	for _, e := range entries {
		m := benchNameRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n >= next {
			next = n + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}

// WriteBenchFile validates f and writes it to the next BENCH_<n>.json
// slot in dir, returning the path written.
func WriteBenchFile(dir string, f *BenchFile) (string, error) {
	if err := f.Validate(); err != nil {
		return "", err
	}
	path, err := NextBenchPath(dir)
	if err != nil {
		return "", err
	}
	w, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("obs: bench: %w", err)
	}
	defer w.Close()
	if err := EncodeJSON(w, f); err != nil {
		return "", fmt.Errorf("obs: bench: %w", err)
	}
	return path, nil
}

// DecodeBench parses and validates a benchmark file's raw bytes. This
// is the whole untrusted-input surface of the bench format — fuzzed in
// bench_fuzz_test.go — and must return an error, never panic, on
// arbitrary input.
func DecodeBench(data []byte) (*BenchFile, error) {
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("obs: bench: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// LoadBenchFile reads and validates a benchmark file.
func LoadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: bench: %w", err)
	}
	f, err := DecodeBench(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return f, nil
}
