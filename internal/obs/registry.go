package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is the unified metrics store. Metric names are dot-separated
// and lowercase, prefixed with the owning subsystem (sw.dma.bytes,
// mpirt.send.bytes, halo.pack.bytes, exec.flops.vector, core.recovery
// .rollbacks — see DESIGN.md, "Observability"). A nil Registry is valid:
// lookups return nil metrics whose methods are no-ops, so instrumented
// code needs no guards.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing integer metric, safe for
// concurrent use across ranks. The nil Counter accepts and discards.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric tracking the latest value and the maximum
// ever set (LDM high-water marks are max-gauges by nature).
type Gauge struct {
	mu   sync.Mutex
	last float64
	max  float64
	set  bool
}

// Set records a value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.last = v
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
	g.mu.Unlock()
}

// Value returns the last set value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.last
}

// Max returns the high-water mark.
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// Histogram accumulates a distribution in power-of-two buckets (bucket i
// counts values in [2^i, 2^(i+1))), plus count/sum/min/max — enough for
// message-size and span-length distributions without configuration.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [64]int64
}

// Observe records one sample (negative samples clamp to bucket 0).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	b := int(math.Floor(math.Log2(v)))
	if b < 0 {
		b = 0
	}
	if b > 63 {
		b = 63
	}
	return b
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Counter returns (creating if needed) the named counter. Nil registry
// returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterValue returns the named counter's value without creating it.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// Merge accumulates another registry into r: counters add, gauges keep
// the maximum high-water mark and the other's last value, histograms
// combine samples. Used to fold per-rank registries into a job-wide one.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	o.mu.Lock()
	names := make([]string, 0, len(o.counters))
	for name := range o.counters {
		names = append(names, name)
	}
	counterVals := make(map[string]int64, len(names))
	for _, name := range names {
		counterVals[name] = o.counters[name].Value()
	}
	gaugeVals := make(map[string][2]float64, len(o.gauges))
	for name, g := range o.gauges {
		gaugeVals[name] = [2]float64{g.Value(), g.Max()}
	}
	type histCopy struct {
		count    int64
		sum      float64
		min, max float64
		buckets  [64]int64
	}
	histVals := make(map[string]histCopy, len(o.hists))
	for name, h := range o.hists {
		h.mu.Lock()
		histVals[name] = histCopy{h.count, h.sum, h.min, h.max, h.buckets}
		h.mu.Unlock()
	}
	o.mu.Unlock()

	for name, v := range counterVals {
		r.Counter(name).Add(v)
	}
	for name, v := range gaugeVals {
		g := r.Gauge(name)
		g.Set(v[1]) // establish the other's high-water mark
		g.Set(v[0]) // then its last value
	}
	for name, hc := range histVals {
		if hc.count == 0 {
			r.Histogram(name)
			continue
		}
		h := r.Histogram(name)
		h.mu.Lock()
		if h.count == 0 || hc.min < h.min {
			h.min = hc.min
		}
		if h.count == 0 || hc.max > h.max {
			h.max = hc.max
		}
		h.count += hc.count
		h.sum += hc.sum
		for i := range h.buckets {
			h.buckets[i] += hc.buckets[i]
		}
		h.mu.Unlock()
	}
}

// metricJSON is the serialized form of one registry entry.
type metricJSON struct {
	Name  string  `json:"name"`
	Type  string  `json:"type"` // counter | gauge | histogram
	Value float64 `json:"value"`
	Max   float64 `json:"max,omitempty"`   // gauges
	Count int64   `json:"count,omitempty"` // histograms
	Mean  float64 `json:"mean,omitempty"`  // histograms
	Min   float64 `json:"min,omitempty"`   // histograms
}

// snapshot returns every metric in name order.
func (r *Registry) snapshot() []metricJSON {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]metricJSON, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, metricJSON{Name: name, Type: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, metricJSON{Name: name, Type: "gauge", Value: g.Value(), Max: g.Max()})
	}
	for name, h := range r.hists {
		h.mu.Lock()
		m := metricJSON{Name: name, Type: "histogram", Count: h.count, Min: h.min, Max: h.max}
		if h.count > 0 {
			m.Mean = h.sum / float64(h.count)
			m.Value = h.sum
		}
		h.mu.Unlock()
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText dumps the registry as aligned "name value" lines in name
// order.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.snapshot() {
		var err error
		switch m.Type {
		case "counter":
			_, err = fmt.Fprintf(w, "%-32s %d\n", m.Name, int64(m.Value))
		case "gauge":
			_, err = fmt.Fprintf(w, "%-32s %g (max %g)\n", m.Name, m.Value, m.Max)
		default:
			_, err = fmt.Fprintf(w, "%-32s n=%d mean=%g min=%g max=%g\n",
				m.Name, m.Count, m.Mean, m.Min, m.Max)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON dumps the registry as a JSON array of metrics in name order.
func (r *Registry) WriteJSON(w io.Writer) error {
	return EncodeJSON(w, r.snapshot())
}

// EncodeJSON writes v as indented JSON with a trailing newline — the
// one JSON encoder every obs output format (registry dumps, StepReport,
// BENCH files, benchtab -json) shares.
func EncodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
