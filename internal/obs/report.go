package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// KernelTable accumulates per-(kernel, backend) wall time and
// architectural events — the per-kernel attribution behind Table 1 and
// Figure 5. It is goroutine-safe (many ranks record concurrently) and
// nil-safe (a nil table discards records).
type KernelTable struct {
	mu sync.Mutex
	m  map[kernelKey]*KernelStat
}

type kernelKey struct{ Kernel, Backend string }

// KernelStat is the accumulated record of one (kernel, backend) pair.
type KernelStat struct {
	Kernel  string `json:"kernel"`
	Backend string `json:"backend"`
	Calls   int64  `json:"calls"`
	Ns      int64  `json:"ns"`       // wall time across all calls and ranks
	Flops   int64  `json:"flops"`    // architectural double-precision ops
	Bytes   int64  `json:"bytes"`    // main-memory traffic
	DMAOps  int64  `json:"dma_ops"`  // discrete DMA transfers
	RegMsgs int64  `json:"reg_msgs"` // register-communication messages
}

// NewKernelTable returns an empty table.
func NewKernelTable() *KernelTable {
	return &KernelTable{m: make(map[kernelKey]*KernelStat)}
}

// Record accumulates one kernel invocation.
func (t *KernelTable) Record(kernel, backend string, ns, flops, bytes, dmaOps, regMsgs int64) {
	if t == nil {
		return
	}
	k := kernelKey{kernel, backend}
	t.mu.Lock()
	s, ok := t.m[k]
	if !ok {
		s = &KernelStat{Kernel: kernel, Backend: backend}
		t.m[k] = s
	}
	s.Calls++
	s.Ns += ns
	s.Flops += flops
	s.Bytes += bytes
	s.DMAOps += dmaOps
	s.RegMsgs += regMsgs
	t.mu.Unlock()
}

// Stats returns every record sorted by descending wall time, then name.
func (t *KernelTable) Stats() []KernelStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]KernelStat, 0, len(t.m))
	for _, s := range t.m {
		out = append(out, *s)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ns != out[j].Ns {
			return out[i].Ns > out[j].Ns
		}
		if out[i].Kernel != out[j].Kernel {
			return out[i].Kernel < out[j].Kernel
		}
		return out[i].Backend < out[j].Backend
	})
	return out
}

// Merge adds another table's records into t (cross-rank aggregation).
func (t *KernelTable) Merge(o *KernelTable) {
	if t == nil || o == nil {
		return
	}
	for _, s := range o.Stats() {
		if s.Calls == 0 {
			continue
		}
		k := kernelKey{s.Kernel, s.Backend}
		t.mu.Lock()
		dst, ok := t.m[k]
		if !ok {
			dst = &KernelStat{Kernel: s.Kernel, Backend: s.Backend}
			t.m[k] = dst
		}
		dst.Calls += s.Calls
		dst.Ns += s.Ns
		dst.Flops += s.Flops
		dst.Bytes += s.Bytes
		dst.DMAOps += s.DMAOps
		dst.RegMsgs += s.RegMsgs
		t.mu.Unlock()
	}
}

// KernelShare is one StepReport line: a kernel's share of the total
// instrumented kernel time.
type KernelShare struct {
	KernelStat
	TimeShare float64 `json:"time_share"` // fraction of total kernel ns
}

// StepReport summarizes one run: per-kernel time shares, the achieved
// simulation rate, the counted floating-point rate, and how much of the
// halo communication was hidden behind computation.
type StepReport struct {
	Steps       int     `json:"steps"`
	SimSeconds  float64 `json:"sim_seconds"`  // simulated time advanced
	WallSeconds float64 `json:"wall_seconds"` // host wall-clock spent
	SYPD        float64 `json:"sypd"`         // simulated years per wall day
	PFlops      float64 `json:"pflops"`       // counted flops / wall (host rate)
	// OverlapRatio is the fraction of halo-exchange wall time not spent
	// blocked waiting for messages: 1 means communication fully hidden
	// behind computation (the §7.6 goal), 0 means fully exposed. Only
	// meaningful when OverlapMeasured is true; otherwise it is 0 and the
	// text report prints "n/a".
	OverlapRatio float64 `json:"overlap_ratio"`
	// OverlapMeasured is true when the redesigned exchange actually ran
	// with a real inner-compute window at least once (the
	// halo.overlap.windows counter fired). Runs using the original
	// blocking exchange — where there is no pipeline to quantify — leave
	// it false.
	OverlapMeasured bool             `json:"overlap_measured"`
	Kernels         []KernelShare    `json:"kernels"`
	Recovery        *RecoverySummary `json:"recovery,omitempty"`
}

// RecoverySummary is the run's resilience activity, assembled from the
// registry counters the recovery ladder maintains (core.recovery.* and
// mpirt.retx.*). Nil when the run saw no recovery activity at all —
// fault-free runs keep their reports unchanged.
type RecoverySummary struct {
	Retransmits    int64 `json:"retransmits"`      // mpirt.retx.attempts
	Retransmitted  int64 `json:"retransmitted"`    // mpirt.retx.recovered
	Checkpoints    int64 `json:"checkpoints"`      // core.recovery.checkpoints
	Localized      int64 `json:"localized"`        // core.recovery.localized
	Respawns       int64 `json:"respawns"`         // core.recovery.respawns
	Shrinks        int64 `json:"shrinks"`          // core.recovery.shrinks
	Rollbacks      int64 `json:"rollbacks"`        // core.recovery.rollbacks
	ReplayedSteps  int64 `json:"replayed_steps"`   // core.recovery.replayed_steps
	RecoveryWallNs int64 `json:"recovery_wall_ns"` // core.recovery.ns
}

// ReportInput carries what BuildStepReport needs beyond the kernel table.
type ReportInput struct {
	Steps       int
	SimSeconds  float64
	WallSeconds float64
	// HaloNs / HaloWaitNs come from the registry counters halo.ns and
	// halo.wait.ns; zero HaloNs yields OverlapRatio 0.
	HaloNs     int64
	HaloWaitNs int64
	// OverlapWindows comes from the halo.overlap.windows counter: the
	// number of exchanges that ran a real inner-compute window. Zero
	// marks the overlap ratio as not measured.
	OverlapWindows int64
}

// SYPD converts simulated seconds over wall seconds into simulated
// years per wall-clock day; guards against zero/NaN wall time.
func SYPD(simSeconds, wallSeconds float64) float64 {
	if wallSeconds <= 0 || math.IsNaN(wallSeconds) || math.IsInf(wallSeconds, 0) {
		return 0
	}
	simYears := simSeconds / (365 * 86400)
	wallDays := wallSeconds / 86400
	return simYears / wallDays
}

// BuildStepReport aggregates a kernel table and run totals into a report.
func BuildStepReport(kt *KernelTable, reg *Registry, in ReportInput) StepReport {
	rep := StepReport{
		Steps:       in.Steps,
		SimSeconds:  in.SimSeconds,
		WallSeconds: in.WallSeconds,
		SYPD:        SYPD(in.SimSeconds, in.WallSeconds),
	}
	haloNs, waitNs, windows := in.HaloNs, in.HaloWaitNs, in.OverlapWindows
	if reg != nil {
		if v := reg.CounterValue("halo.ns"); v > 0 {
			haloNs = v
		}
		if v := reg.CounterValue("halo.wait.ns"); v > 0 {
			waitNs = v
		}
		if v := reg.CounterValue("halo.overlap.windows"); v > 0 {
			windows = v
		}
		rec := RecoverySummary{
			Retransmits:    reg.CounterValue("mpirt.retx.attempts"),
			Retransmitted:  reg.CounterValue("mpirt.retx.recovered"),
			Checkpoints:    reg.CounterValue("core.recovery.checkpoints"),
			Localized:      reg.CounterValue("core.recovery.localized"),
			Respawns:       reg.CounterValue("core.recovery.respawns"),
			Shrinks:        reg.CounterValue("core.recovery.shrinks"),
			Rollbacks:      reg.CounterValue("core.recovery.rollbacks"),
			ReplayedSteps:  reg.CounterValue("core.recovery.replayed_steps"),
			RecoveryWallNs: reg.CounterValue("core.recovery.ns"),
		}
		if rec != (RecoverySummary{}) {
			rep.Recovery = &rec
		}
	}
	// The ratio only quantifies a pipeline that exists: require at least
	// one exchange to have run a real inner-compute window.
	if windows > 0 && haloNs > 0 {
		rep.OverlapMeasured = true
		r := 1 - float64(waitNs)/float64(haloNs)
		if r < 0 {
			r = 0
		}
		rep.OverlapRatio = r
	}
	stats := kt.Stats()
	var totalNs, totalFlops int64
	for _, s := range stats {
		totalNs += s.Ns
		totalFlops += s.Flops
	}
	if in.WallSeconds > 0 {
		rep.PFlops = float64(totalFlops) / in.WallSeconds / 1e15
	}
	for _, s := range stats {
		ks := KernelShare{KernelStat: s}
		if totalNs > 0 {
			ks.TimeShare = float64(s.Ns) / float64(totalNs)
		}
		rep.Kernels = append(rep.Kernels, ks)
	}
	return rep
}

// Text renders the report as an aligned human-readable table.
func (r StepReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== step report: %d steps, %.1f sim s in %.3f wall s ==\n",
		r.Steps, r.SimSeconds, r.WallSeconds)
	overlap := "n/a"
	if r.OverlapMeasured {
		overlap = fmt.Sprintf("%.0f%%", 100*r.OverlapRatio)
	}
	fmt.Fprintf(&b, "  SYPD %.3f   counted PFlops %.3e   comm overlap %s\n",
		r.SYPD, r.PFlops, overlap)
	if rec := r.Recovery; rec != nil {
		fmt.Fprintf(&b, "  recovery: %d/%d retransmits recovered, %d ckpt, %d localized, %d respawn, %d shrink, %d rollback, %d steps replayed, %.3f ms\n",
			rec.Retransmitted, rec.Retransmits, rec.Checkpoints, rec.Localized,
			rec.Respawns, rec.Shrinks, rec.Rollbacks, rec.ReplayedSteps,
			float64(rec.RecoveryWallNs)/1e6)
	}
	if len(r.Kernels) > 0 {
		fmt.Fprintf(&b, "  %-26s %-8s %6s %12s %7s %14s %14s\n",
			"kernel", "backend", "calls", "ns", "share", "flops", "bytes")
		for _, k := range r.Kernels {
			fmt.Fprintf(&b, "  %-26s %-8s %6d %12d %6.1f%% %14d %14d\n",
				k.Kernel, k.Backend, k.Calls, k.Ns, 100*k.TimeShare, k.Flops, k.Bytes)
		}
	}
	return b.String()
}

// WriteJSON writes the report through the shared obs encoder.
func (r StepReport) WriteJSON(w io.Writer) error { return EncodeJSON(w, r) }
