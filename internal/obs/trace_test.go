package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTracerConcurrent hammers one tracer from many goroutines (the
// per-rank span sources) under -race: spans, instants, cross-goroutine
// End, process naming, and a concurrent export.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	const ranks, per = 8, 50
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr.NameProcess(r, "rank")
			for i := 0; i < per; i++ {
				sp := tr.Begin(r, "exec.euler_step", "Athread")
				tr.Instant(r, "core.checkpoint", "model")
				sp.End()
			}
		}(r)
	}
	// Export concurrently with emission; content is checked after Wait.
	var scratch bytes.Buffer
	if err := tr.WriteChromeTrace(&scratch); err != nil {
		t.Fatalf("concurrent export: %v", err)
	}
	wg.Wait()

	if got, want := tr.Len(), ranks*per*2; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	// ranks*per spans + instants, plus one process_name metadata per rank.
	if got, want := len(doc.TraceEvents), ranks*per*2+ranks; got != want {
		t.Fatalf("exported %d events, want %d", got, want)
	}
	lastPid := -1
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Pid < lastPid {
			t.Fatalf("events not sorted by pid: %d after %d", e.Pid, lastPid)
		}
		lastPid = e.Pid
	}
}

// TestNilTracer checks the nil-safety contract end to end: a nil tracer
// must accept every call, and its export must still be a loadable
// (empty) Chrome trace.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	tr.NameProcess(0, "x")
	sp := tr.Begin(0, "a", "b")
	sp.End()
	tr.BeginTid(0, 1, "a", "b").End()
	tr.Instant(0, "a", "b")
	if tr.Len() != 0 {
		t.Fatal("nil tracer recorded events")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil export: %v", err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil export not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 0 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("nil export = %+v", doc)
	}
}

// TestChromeTraceGolden pins the exported JSON shape against a golden
// file. Timestamps and durations are wall-clock and so normalized (ts=0,
// dur=1) before comparison; everything else — field names, phase codes,
// metadata events, sort order, indentation — must match exactly.
// Regenerate with: go test ./internal/obs -run Golden -update
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer()
	tr.NameProcess(0, "rank 0 (athread)")
	tr.NameProcess(1, "rank 1 (athread)")
	sp := tr.Begin(0, "exec.euler_step", "Athread")
	sp.End()
	tr.Instant(0, "core.checkpoint", "model")
	tr.Begin(1, "halo.dss_overlap", "comm").End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range doc.TraceEvents {
		doc.TraceEvents[i].Ts = 0
		if doc.TraceEvents[i].Ph == "X" {
			doc.TraceEvents[i].Dur = 1
		}
	}
	got, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "chrome_trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden: %v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace JSON differs from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
