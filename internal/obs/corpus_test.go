package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// writeFuzzCorpusEntry encodes data in the Go native fuzzing corpus
// format (go test fuzz v1) under testdata/fuzz/<fuzzName>/<entry>, the
// directory `go test` replays on every ordinary test run.
func writeFuzzCorpusEntry(t *testing.T, fuzzName, entry string, data []byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
	if err := os.WriteFile(filepath.Join(dir, entry), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRegenFuzzCorpora rewrites the checked-in seed corpus for
// FuzzDecodeBench. Gated behind SWCAM_REGEN_FUZZ_CORPUS so ordinary
// test runs never touch the tree; run with the variable set after
// changing the bench schema, then commit the result.
func TestRegenFuzzCorpora(t *testing.T) {
	if os.Getenv("SWCAM_REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set SWCAM_REGEN_FUZZ_CORPUS=1 to regenerate the checked-in fuzz seed corpora")
	}
	valid := validBenchBytes(t)
	writeFuzzCorpusEntry(t, "FuzzDecodeBench", "seed-valid", valid)
	writeFuzzCorpusEntry(t, "FuzzDecodeBench", "seed-truncated", valid[:len(valid)/2])
	writeFuzzCorpusEntry(t, "FuzzDecodeBench", "seed-not-json", []byte(`not json at all`))
	writeFuzzCorpusEntry(t, "FuzzDecodeBench", "seed-empty-object", []byte(`{}`))
	writeFuzzCorpusEntry(t, "FuzzDecodeBench", "seed-wrong-schema",
		[]byte(`{"schema":"swcam-bench/v0","config":{"ne":4,"nlev":8,"steps":1,"ranks":1},"backends":{}}`))
	writeFuzzCorpusEntry(t, "FuzzDecodeBench", "seed-zero-sypd",
		[]byte(`{"schema":"swcam-bench/v1","config":{"ne":4,"nlev":8,"steps":1,"ranks":1},`+
			`"backends":{"Intel":{"sypd":0,"wall_seconds":1,"kernels":{"k":{"calls":1,"ns":1}}}}}`))
}

// TestFuzzCorporaCheckedIn guards against the seed corpus being
// accidentally deleted: every fuzz target must have checked-in entries
// (they run as regular test cases on every `go test`).
func TestFuzzCorporaCheckedIn(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "fuzz", "FuzzDecodeBench"))
	if err != nil {
		t.Fatalf("missing checked-in corpus for FuzzDecodeBench: %v", err)
	}
	if len(entries) < 3 {
		t.Fatalf("FuzzDecodeBench corpus has %d entries, want >= 3", len(entries))
	}
}
