// Package obs is the unified observability layer of the model: every
// headline result of the paper — Table 1 per-kernel speedups, Figure 5
// backend attribution, Figure 6 SYPD, Figures 7-8 scaling — is a
// measurement, and this package is where the repository's measurements
// live. It replaces the previously scattered, mutually incompatible
// instrumentation (sw.PerfCounter, mpirt.Stats, exec.Cost accounting)
// with three cooperating pieces:
//
//   - Tracer / Span (trace.go): a low-overhead, goroutine-safe wall-clock
//     span recorder with Chrome about://tracing JSON export, so a full
//     camsw step can be inspected kernel-by-kernel and rank-by-rank in a
//     browser. Ranks map to trace processes (pid), so the per-rank
//     timelines line up the way the paper's per-process timing plots do.
//
//   - Registry / Counter / Gauge / Histogram (registry.go): a metrics
//     registry unifying the existing counters — SW DMA bytes, LDM
//     high-water marks, register-communication messages, mpirt send/recv
//     bytes, halo pack/unpack volumes, exec flop accounting — behind one
//     interface with a deterministic text and JSON dump and cross-rank
//     merging.
//
//   - KernelTable / StepReport (report.go) and the BENCH_<n>.json schema
//     (bench.go): the aggregation layer. KernelTable accumulates
//     per-(kernel, backend) wall time and architectural events;
//     StepReport turns a run into per-kernel time shares, SYPD, PFlops
//     and the communication/computation overlap ratio; bench.go writes
//     the machine-readable benchmark-regression files cmd/swprof emits
//     and CI diffs.
//
// # Nil safety
//
// Every type in this package is nil-safe: calling any method on a nil
// *Tracer, *Registry, *Counter, *Gauge, *Histogram or *KernelTable is a
// cheap no-op (a single pointer test, no time.Now call, no allocation).
// Instrumented packages therefore carry bare pointers that default to
// nil, and the whole subsystem costs near-zero when observation is off —
// the property the <2% bench_test.go regression budget demands.
//
// # Span taxonomy
//
// Span names are dot-separated, lowercase, prefixed with the owning
// package: exec.compute_and_apply_rhs, exec.euler_step,
// exec.vertical_remap, exec.hypervis_dp1, exec.hypervis_dp2,
// exec.biharmonic_dp3d (category = backend name); halo.dss_original,
// halo.dss_overlap (category "comm"); mpirt.allreduce, mpirt.reduce,
// mpirt.bcast, mpirt.gather, mpirt.barrier (category "comm");
// core.dynamics, core.physics, core.step, core.checkpoint,
// core.rollback (category "model"). Metric names follow the same
// convention (see DESIGN.md, "Observability").
package obs
