package tc

import (
	"math"

	"swcam/internal/dycore"
	"swcam/internal/mesh"
)

// Fix is one tracker position: the storm centre and intensity at one
// time. The JSON tags are the wire shape of the forecast service's
// TC-track endpoint (internal/serve), so field renames are API changes.
type Fix struct {
	Hours float64 `json:"hours"`   // since initialization
	Lon   float64 `json:"lon_rad"` // radians
	Lat   float64 `json:"lat_rad"` // radians
	MSWms float64 `json:"msw_ms"`  // maximum sustained wind within the search radius, m/s
	MinPs float64 `json:"min_ps"`  // minimum surface pressure, Pa
}

// MSWkt returns the maximum sustained wind in knots, Figure 9d's unit.
func (f Fix) MSWkt() float64 { return f.MSWms * 1.9438 }

// Tracker locates a warm-core cyclone in a model state by the standard
// two-pass algorithm: find the surface-pressure minimum, then measure
// the maximum wind within SearchRadius of it.
type Tracker struct {
	SearchRadius float64 // m, wind search radius around the pressure centre
}

// NewTracker returns a tracker with the NHC-style 500 km search radius.
func NewTracker() *Tracker { return &Tracker{SearchRadius: 500e3} }

// Locate finds the storm in the state, returning its fix at the given
// forecast hour. The previous fix (may be nil) restricts the search to
// 1000 km of the last position, preventing jumps to unrelated lows.
func (tr *Tracker) Locate(s *dycore.Solver, st *dycore.State, hours float64, prev *Fix) Fix {
	npsq := s.Cfg.Np * s.Cfg.Np
	var prevPos mesh.Vec3
	if prev != nil {
		prevPos = lonLatToCart(prev.Lon, prev.Lat)
	}

	best := Fix{Hours: hours, MinPs: math.Inf(1)}
	var bestPos mesh.Vec3
	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			if prev != nil {
				if mesh.GreatCircleDist(prevPos, e.Pos[n])*dycore.Rearth > 1000e3 {
					continue
				}
			}
			ps := st.SurfacePressure(ei, n)
			if ps < best.MinPs {
				best.MinPs = ps
				best.Lon = e.Lon[n]
				best.Lat = e.Lat[n]
				bestPos = e.Pos[n]
			}
		}
	}

	// Maximum near-surface wind within the search radius (lowest level).
	k := s.Cfg.Nlev - 1
	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			if mesh.GreatCircleDist(bestPos, e.Pos[n])*dycore.Rearth > tr.SearchRadius {
				continue
			}
			w := math.Hypot(st.U[ei][k*npsq+n], st.V[ei][k*npsq+n])
			if w > best.MSWms {
				best.MSWms = w
			}
		}
	}
	return best
}

// TrackError returns the great-circle distance (km) between a model fix
// and an observed position.
func TrackError(model Fix, obsLonDeg, obsLatDeg float64) float64 {
	a := lonLatToCart(model.Lon, model.Lat)
	b := lonLatToCart(obsLonDeg*math.Pi/180, obsLatDeg*math.Pi/180)
	return mesh.GreatCircleDist(a, b) * dycore.Rearth / 1000
}

// MeanTrackError averages TrackError over paired fixes and observations
// (matched by index).
func MeanTrackError(fixes []Fix, obs []BestTrackEntry) float64 {
	n := len(fixes)
	if len(obs) < n {
		n = len(obs)
	}
	if n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += TrackError(fixes[i], obs[i].LonDeg, obs[i].LatDeg)
	}
	return sum / float64(n)
}

// WarmCore reports whether the fix has the warm-core signature of a
// tropical cyclone: the mid-tropospheric temperature near the centre
// exceeds the mean of an annulus at 3-6x the search radius around it.
// Trackers use this criterion to reject extratropical and cold-core
// lows (Zarzycki & Ullrich style).
func (tr *Tracker) WarmCore(s *dycore.Solver, st *dycore.State, fix Fix) bool {
	npsq := s.Cfg.Np * s.Cfg.Np
	kMid := s.Cfg.Nlev * 2 / 5 // ~400 hPa for a standard distribution
	centre := lonLatToCart(fix.Lon, fix.Lat)

	var coreSum, coreW, envSum, envW float64
	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			d := mesh.GreatCircleDist(centre, e.Pos[n]) * dycore.Rearth
			tv := st.T[ei][kMid*npsq+n]
			switch {
			case d < tr.SearchRadius:
				coreSum += tv * e.SphereMP[n]
				coreW += e.SphereMP[n]
			case d > 3*tr.SearchRadius && d < 6*tr.SearchRadius:
				envSum += tv * e.SphereMP[n]
				envW += e.SphereMP[n]
			}
		}
	}
	if coreW == 0 || envW == 0 {
		return false
	}
	return coreSum/coreW > envSum/envW
}
