package tc

// BestTrackEntry is one 6-hourly fix of an observed tropical cyclone.
type BestTrackEntry struct {
	Hours   float64 // since 2005-08-23 18:00 UTC
	LatDeg  float64 // degrees north
	LonDeg  float64 // degrees east (Katrina: 360 - west longitude)
	MSWkt   float64 // maximum sustained wind, knots
	MinPhPa float64 // central pressure, hPa
}

// KatrinaBestTrack is the NHC best track of hurricane Katrina (Tropical
// Cyclone Report, Knabb et al. 2005; values to best-track precision),
// from tropical-depression formation at 1800 UTC 23 August 2005 through
// the Ohio-valley decay at 1200 UTC 31 August — the observation series
// behind Figure 9c (positions) and 9d (maximum sustained wind). This is
// the "close-to-observation" reference the paper verifies against.
var KatrinaBestTrack = []BestTrackEntry{
	{0, 23.1, 360 - 75.1, 30, 1008},   // Aug 23 18Z, tropical depression
	{6, 23.4, 360 - 75.7, 30, 1007},   // Aug 24 00Z
	{12, 23.8, 360 - 76.2, 30, 1007},  // Aug 24 06Z
	{18, 24.5, 360 - 76.5, 35, 1006},  // Aug 24 12Z, TS Katrina
	{24, 25.4, 360 - 76.9, 40, 1003},  // Aug 24 18Z
	{30, 26.0, 360 - 77.7, 45, 1000},  // Aug 25 00Z
	{36, 26.1, 360 - 78.4, 50, 997},   // Aug 25 06Z
	{42, 26.2, 360 - 79.0, 55, 994},   // Aug 25 12Z
	{48, 26.2, 360 - 79.6, 60, 988},   // Aug 25 18Z
	{54, 25.9, 360 - 80.3, 70, 983},   // Aug 26 00Z, hurricane, FL landfall
	{60, 25.4, 360 - 81.3, 65, 987},   // Aug 26 06Z
	{66, 25.1, 360 - 82.0, 75, 979},   // Aug 26 12Z
	{72, 24.9, 360 - 82.6, 85, 968},   // Aug 26 18Z
	{78, 24.6, 360 - 83.3, 90, 959},   // Aug 27 00Z
	{84, 24.4, 360 - 84.0, 95, 950},   // Aug 27 06Z
	{90, 24.4, 360 - 84.7, 100, 942},  // Aug 27 12Z
	{96, 24.5, 360 - 85.3, 100, 948},  // Aug 27 18Z
	{102, 24.8, 360 - 85.9, 100, 941}, // Aug 28 00Z
	{108, 25.2, 360 - 86.7, 125, 930}, // Aug 28 06Z, category 4
	{114, 25.7, 360 - 87.7, 145, 909}, // Aug 28 12Z, category 5
	{120, 26.3, 360 - 88.6, 150, 902}, // Aug 28 18Z, peak intensity
	{126, 27.2, 360 - 89.2, 140, 905}, // Aug 29 00Z
	{132, 28.2, 360 - 89.6, 125, 913}, // Aug 29 06Z
	{138, 29.5, 360 - 89.6, 110, 920}, // Aug 29 12Z, LA landfall
	{144, 31.1, 360 - 89.6, 80, 948},  // Aug 29 18Z
	{150, 32.6, 360 - 89.1, 50, 961},  // Aug 30 00Z
	{156, 34.1, 360 - 88.6, 40, 978},  // Aug 30 06Z
	{162, 35.6, 360 - 88.0, 30, 985},  // Aug 30 12Z
	{168, 37.0, 360 - 87.0, 30, 990},  // Aug 30 18Z
	{174, 38.6, 360 - 85.3, 25, 994},  // Aug 31 00Z
	{180, 39.5, 360 - 84.2, 25, 996},  // Aug 31 06Z
	{186, 40.1, 360 - 82.9, 25, 996},  // Aug 31 12Z, extratropical
}

// KatrinaPeak returns the peak observed intensity (knots) and the hour
// it occurred.
func KatrinaPeak() (kt, hours float64) {
	for _, e := range KatrinaBestTrack {
		if e.MSWkt > kt {
			kt, hours = e.MSWkt, e.Hours
		}
	}
	return kt, hours
}

// KatrinaAt linearly interpolates the best track to an arbitrary hour.
func KatrinaAt(hours float64) BestTrackEntry {
	bt := KatrinaBestTrack
	if hours <= bt[0].Hours {
		return bt[0]
	}
	for i := 1; i < len(bt); i++ {
		if hours <= bt[i].Hours {
			f := (hours - bt[i-1].Hours) / (bt[i].Hours - bt[i-1].Hours)
			lerp := func(a, b float64) float64 { return a + f*(b-a) }
			return BestTrackEntry{
				Hours:   hours,
				LatDeg:  lerp(bt[i-1].LatDeg, bt[i].LatDeg),
				LonDeg:  lerp(bt[i-1].LonDeg, bt[i].LonDeg),
				MSWkt:   lerp(bt[i-1].MSWkt, bt[i].MSWkt),
				MinPhPa: lerp(bt[i-1].MinPhPa, bt[i].MinPhPa),
			}
		}
	}
	return bt[len(bt)-1]
}
