package tc

import (
	"math"
	"testing"

	"swcam/internal/core"
	"swcam/internal/dycore"
	"swcam/internal/mesh"
	"swcam/internal/physics"
)

func TestGradientWindProfile(t *testing.T) {
	vp := KatrinaLikeVortex()
	rho := 1.15
	// Zero at the centre, positive in the core, decaying far away.
	if v := vp.gradientWind(0.5, vp.LatC, rho); v != 0 {
		t.Errorf("wind at centre = %v", v)
	}
	vmax, rmax := 0.0, 0.0
	for r := 5e3; r < 1500e3; r += 5e3 {
		v := vp.gradientWind(r, vp.LatC, rho)
		if v < 0 {
			t.Fatalf("negative gradient wind at r=%g", r)
		}
		if v > vmax {
			vmax, rmax = v, r
		}
	}
	// A 20 hPa depression over 200 km supports a tropical-storm-force
	// vortex with a compact radius of maximum wind.
	if vmax < 15 || vmax > 60 {
		t.Errorf("peak gradient wind %v m/s, expected tropical-storm strength", vmax)
	}
	if rmax < 50e3 || rmax > 400e3 {
		t.Errorf("radius of maximum wind %v km", rmax/1000)
	}
	far := vp.gradientWind(1500e3, vp.LatC, rho)
	if far > 0.2*vmax {
		t.Errorf("wind does not decay: %v at 1500 km vs peak %v", far, vmax)
	}
}

func TestVortexInstallAndTrack(t *testing.T) {
	cfg := dycore.DefaultConfig(8)
	cfg.Nlev = 8
	cfg.Qsize = 1
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitRest(st, 288)
	vp := KatrinaLikeVortex()
	vp.SteerU, vp.SteerV = 0, 0 // no background flow for this check
	vp.Install(s, st)

	// Surface pressure minimum near the prescribed centre and depth.
	tr := NewTracker()
	fix := tr.Locate(s, st, 0, nil)
	if err := TrackError(fix, vp.LonC*180/math.Pi, vp.LatC*180/math.Pi); err > 600 {
		t.Errorf("tracker missed the centre by %v km", err)
	}
	if fix.MinPs > vp.Background-0.3*vp.DeltaP {
		t.Errorf("central pressure %v, expected a clear depression", fix.MinPs)
	}
	if fix.MSWms <= 2 {
		t.Errorf("no vortex winds found: %v m/s", fix.MSWms)
	}
	// Mass must be consistent: total dry mass close to the background.
	m := s.TotalMass(st)
	ref := (vp.Background - dycore.PTop) * 4 * math.Pi
	if rel := math.Abs(m-ref) / ref; rel > 0.02 {
		t.Errorf("vortex state mass off by %v relative", rel)
	}
}

func TestVortexSurvivesDynamics(t *testing.T) {
	run, err := RunResolution(8, 8, 6, 3, KatrinaLikeVortex())
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Fixes) != 3 {
		t.Fatalf("fixes = %d", len(run.Fixes))
	}
	last := run.Fixes[len(run.Fixes)-1]
	if math.IsNaN(last.MSWms) || last.MSWms <= 0 {
		t.Fatalf("vortex lost: %+v", last)
	}
	if last.MinPs > KatrinaLikeVortex().Background {
		t.Errorf("depression vanished entirely")
	}
}

// The Figure 9a/9b contrast: after a few hours of dynamics, the coarse
// grid has diffused the Katrina-scale vortex away (its hyperviscosity
// acts at the storm's own scale) while the finer grids retain it —
// resolution controls whether the simulated storm exists at all.
func TestResolutionControlsIntensity(t *testing.T) {
	vp := KatrinaLikeVortex()
	run := func(ne int) ResolutionRun {
		t.Helper()
		r, err := RunResolution(ne, 8, 24, 12, vp)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	coarse := run(4) // ~750 km grid
	fine := run(12)  // ~250 km grid
	retC := coarse.FinalKt / coarse.InitialKt
	retF := fine.FinalKt / fine.InitialKt
	if retF <= retC {
		t.Errorf("finer grid should retain the storm better: fine %.2f vs coarse %.2f", retF, retC)
	}
	if retC > 0.4 {
		t.Errorf("coarse grid retained %.2f of the vortex; the Figure 9a claim is that it cannot", retC)
	}
	if retF < 0.5 {
		t.Errorf("fine grid retained only %.2f of the vortex", retF)
	}
}

func TestKatrinaBestTrackData(t *testing.T) {
	bt := KatrinaBestTrack
	if len(bt) != 32 {
		t.Fatalf("best track entries = %d", len(bt))
	}
	for i := 1; i < len(bt); i++ {
		if bt[i].Hours != bt[i-1].Hours+6 {
			t.Fatalf("entry %d not 6-hourly", i)
		}
	}
	kt, hours := KatrinaPeak()
	if kt != 150 || hours != 120 {
		t.Errorf("peak = %v kt at %v h, expected 150 kt at 120 h (Aug 28 18Z)", kt, hours)
	}
	// Pressure and wind are anti-correlated at peak.
	for _, e := range bt {
		if e.MSWkt == 150 && e.MinPhPa != 902 {
			t.Errorf("902 hPa expected at peak, got %v", e.MinPhPa)
		}
	}
	// Track: moves west across the Gulf, then north at landfall.
	if !(bt[0].LonDeg > bt[20].LonDeg) {
		t.Error("track should move west through hour 120")
	}
	if !(bt[31].LatDeg > bt[20].LatDeg+10) {
		t.Error("track should turn sharply north after peak")
	}
}

func TestKatrinaInterpolation(t *testing.T) {
	// At a best-track time, interpolation returns the entry exactly.
	e := KatrinaAt(120)
	if e.MSWkt != 150 {
		t.Errorf("KatrinaAt(120) = %v kt", e.MSWkt)
	}
	// Midway between 114 and 120: between 145 and 150.
	m := KatrinaAt(117)
	if m.MSWkt <= 145 || m.MSWkt >= 150 {
		t.Errorf("interpolated wind %v outside (145, 150)", m.MSWkt)
	}
	// Clamped at the ends.
	if KatrinaAt(-5).Hours != 0 || KatrinaAt(1e4).MSWkt != 25 {
		t.Error("interpolation not clamped")
	}
}

func TestMeanTrackErrorZeroOnPerfectTrack(t *testing.T) {
	var fixes []Fix
	var obs []BestTrackEntry
	for _, e := range KatrinaBestTrack[:5] {
		fixes = append(fixes, Fix{
			Hours: e.Hours,
			Lon:   e.LonDeg * math.Pi / 180,
			Lat:   e.LatDeg * math.Pi / 180,
		})
		obs = append(obs, e)
	}
	if err := MeanTrackError(fixes, obs); err > 1e-9 {
		t.Errorf("perfect track has error %v km", err)
	}
	// A 1-degree offset is ~111 km at the equator, less at 23N in lon.
	fixes[0].Lat += math.Pi / 180
	if err := MeanTrackError(fixes[:1], obs[:1]); math.Abs(err-111) > 3 {
		t.Errorf("1-degree error = %v km, want ~111", err)
	}
}

func TestGridSpacing(t *testing.T) {
	if GridSpacingKM(30) != 100 {
		t.Errorf("ne30 = %v km, the paper's 100 km", GridSpacingKM(30))
	}
	if GridSpacingKM(120) != 25 {
		t.Errorf("ne120 = %v km, the paper's 25 km", GridSpacingKM(120))
	}
}

func TestWarmCoreCriterion(t *testing.T) {
	cfg := dycore.DefaultConfig(8)
	cfg.Nlev = 8
	cfg.Qsize = 0
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker()

	// A proper warm-core vortex passes.
	st := s.NewState()
	s.InitRest(st, 288)
	vp := KatrinaLikeVortex()
	vp.SteerU, vp.SteerV = 0, 0
	vp.Install(s, st)
	fix := tr.Locate(s, st, 0, nil)
	if !tr.WarmCore(s, st, fix) {
		t.Error("installed warm-core vortex rejected")
	}

	// A cold-core low (same pressure depression, cold anomaly aloft)
	// is rejected.
	cold := s.NewState()
	s.InitRest(cold, 288)
	vp.Install(s, cold)
	npsq := s.Cfg.Np * s.Cfg.Np
	centre := lonLatToCart(vp.LonC, vp.LatC)
	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			d := mesh.GreatCircleDist(centre, e.Pos[n]) * dycore.Rearth
			if d < 800e3 {
				for k := 0; k < s.Cfg.Nlev; k++ {
					// Invert the thermal structure: cold aloft.
					cold.T[ei][k*npsq+n] -= 8 * math.Exp(-d/400e3)
				}
			}
		}
	}
	coldFix := tr.Locate(s, cold, 0, nil)
	if tr.WarmCore(s, cold, coldFix) {
		t.Error("cold-core low accepted as a tropical cyclone")
	}
}

// Mechanism behind the Figure 9a dichotomy: at fixed resolution, the
// storm's survival is controlled by the scale-selective dissipation —
// multiplying the hyperviscosity coefficient accelerates the decay the
// way coarsening the grid does (coarser grids carry larger nu AND larger
// truncation error).
func TestHypervisCoefficientControlsDecay(t *testing.T) {
	vp := KatrinaLikeVortex()
	retention := func(nuScale float64) float64 {
		cfg := dycore.DefaultConfig(8)
		cfg.Nlev = 8
		cfg.Qsize = 0
		cfg.NuV *= nuScale
		cfg.NuS *= nuScale
		s, err := dycore.NewSolver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := s.NewState()
		s.InitRest(st, 288)
		vp.Install(s, st)
		tr := NewTracker()
		first := tr.Locate(s, st, 0, nil)
		for i := 0; i < 12; i++ {
			s.Step(st)
		}
		last := tr.Locate(s, st, 1, &first)
		return last.MSWms / first.MSWms
	}
	weak := retention(1)
	strong := retention(8)
	if strong >= weak {
		t.Errorf("8x hyperviscosity should decay the vortex faster: %0.2f vs %0.2f", strong, weak)
	}
}

// Full moist coupling at coarse resolution: the vortex rains and keeps
// its warm core, but the grid cannot sustain it — maximum winds decay.
// This is precisely the paper's coarse-grid result ("the ne30 test
// failed to simulate hurricane Katrina", Figure 9a): tropical-cyclone
// intensification requires <= 50 km grid spacing (paper §9, citing
// Bengtsson et al.), far finer than any laptop-scale run here. The
// resolution-retention contrast is established by
// TestResolutionControlsIntensity; this test verifies the moist
// machinery engages and the coarse-grid failure mode is the observed
// one.
func TestMoistCoarseGridFailsToIntensify(t *testing.T) {
	cfg := core.DefaultConfig(8)
	cfg.Dycore.Nlev = 8
	cfg.Dycore.Qsize = 3
	cfg.Physics = physics.Moist
	cfg.PhysEvery = 2
	cfg.SST = 303
	m, err := core.NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Solver.InitRest(m.State, 288)
	vp := KatrinaLikeVortex()
	vp.SteerU, vp.SteerV = 0, 0
	vp.Install(m.Solver, m.State)

	tr := NewTracker()
	first := tr.Locate(m.Solver, m.State, 0, nil)
	for i := 0; i < 24; i++ {
		m.Step()
	}
	last := tr.Locate(m.Solver, m.State, m.SimHours(), &first)
	if m.TotalPrecip <= 0 {
		t.Error("moist vortex produced no precipitation")
	}
	if !tr.WarmCore(m.Solver, m.State, last) {
		t.Error("vortex lost its warm core unphysically fast")
	}
	if last.MSWkt() >= first.MSWkt() {
		t.Errorf("coarse grid should NOT intensify the storm: %0.1f -> %0.1f kt",
			first.MSWkt(), last.MSWkt())
	}
}
