package tc

import (
	"swcam/internal/dycore"
)

// ResolutionRun is the Figure 9 resolution-sensitivity experiment at one
// grid: install the Katrina-like vortex, integrate the dycore, track the
// storm.
type ResolutionRun struct {
	Ne        int
	GridKM    float64 // nominal grid spacing
	Fixes     []Fix
	InitialKt float64 // tracker intensity right after initialization
	FinalKt   float64 // at the end of the run
}

// GridSpacingKM returns the nominal CAM-SE grid spacing for a cubed-
// sphere resolution: ne30 ~ 100 km, ne120 ~ 25 km (the paper's pairing).
func GridSpacingKM(ne int) float64 { return 3000.0 / float64(ne) }

// RunResolution integrates the vortex for the given number of dynamics
// steps on an ne grid, producing a tracker fix every fixEvery steps.
func RunResolution(ne, nlev int, steps, fixEvery int, vp VortexParams) (ResolutionRun, error) {
	cfg := dycore.DefaultConfig(ne)
	cfg.Nlev = nlev
	cfg.Qsize = 1
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		return ResolutionRun{}, err
	}
	st := s.NewState()
	s.InitRest(st, 288)
	vp.Install(s, st)

	tr := NewTracker()
	run := ResolutionRun{Ne: ne, GridKM: GridSpacingKM(ne)}
	fix := tr.Locate(s, st, 0, nil)
	run.Fixes = append(run.Fixes, fix)
	run.InitialKt = fix.MSWkt()

	hoursPerStep := cfg.Dt / 3600
	for i := 1; i <= steps; i++ {
		s.Step(st)
		if i%fixEvery == 0 {
			prev := run.Fixes[len(run.Fixes)-1]
			fix = tr.Locate(s, st, float64(i)*hoursPerStep, &prev)
			run.Fixes = append(run.Fixes, fix)
		}
	}
	run.FinalKt = run.Fixes[len(run.Fixes)-1].MSWkt()
	return run, nil
}
