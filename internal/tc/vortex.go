// Package tc provides the tropical-cyclone machinery of the paper's
// hurricane-Katrina experiment (Figure 9): an analytic warm-core vortex
// initialization in the style of Reed & Jablonowski (2011), a vortex
// tracker (minimum surface pressure + maximum sustained wind), the
// observed NHC best track of hurricane Katrina as verification data, and
// the resolution-sensitivity experiment — the paper's central Figure 9
// claim is that 25 km resolves the storm while 100 km cannot.
package tc

import (
	"math"

	"swcam/internal/dycore"
	"swcam/internal/mesh"
)

// VortexParams describes the initial analytic cyclone.
type VortexParams struct {
	LonC, LatC float64 // centre, radians
	DeltaP     float64 // central surface-pressure depression, Pa
	RadiusP    float64 // pressure-profile radius, m
	ZWidth     float64 // vertical decay scale of the warm core, in sigma
	Background float64 // environmental surface pressure, Pa
	SST        float64 // underlying sea-surface temperature, K
	SteerU     float64 // uniform steering flow, m/s (zonal)
	SteerV     float64 // meridional steering
}

// KatrinaLikeVortex returns parameters shaped on Katrina's genesis: a
// weak tropical-storm vortex at Katrina's 23 Aug position with a
// westward-then-northward steering current.
func KatrinaLikeVortex() VortexParams {
	return VortexParams{
		LonC:       (360 - 75.1) * math.Pi / 180,
		LatC:       23.1 * math.Pi / 180,
		DeltaP:     2000,
		RadiusP:    200e3,
		ZWidth:     0.5,
		Background: dycore.P0,
		SST:        302,
		SteerU:     -5.5,
		SteerV:     1.0,
	}
}

// gradientWind returns the gradient-wind-balanced tangential speed at
// radius r (m) and latitude lat for the exponential pressure profile
// p_s(r) = bg - dp * exp(-(r/rp)^1.5): solving v^2/r + f v = (1/rho)
// dp/dr for the positive root.
func (vp VortexParams) gradientWind(r, lat, rho float64) float64 {
	if r < 1 {
		return 0
	}
	x := math.Pow(r/vp.RadiusP, 1.5)
	dpdr := vp.DeltaP * 1.5 * x / r * math.Exp(-x)
	f := math.Abs(2 * dycore.Omega * math.Sin(lat))
	// v = -fr/2 + sqrt((fr/2)^2 + r/rho dp/dr)
	a := f * r / 2
	return -a + math.Sqrt(a*a+r/rho*dpdr)
}

// Install writes the balanced vortex plus steering flow onto a rest
// state: surface pressure depression through the layer thicknesses,
// gradient-wind tangential flow decaying with height, a warm core, and a
// moist envelope in tracer 0 (specific humidity x dp) if present.
func (vp VortexParams) Install(s *dycore.Solver, st *dycore.State) {
	npsq := s.Cfg.Np * s.Cfg.Np
	nlev := s.Cfg.Nlev
	center := mesh.CubeToSphere(0, 0, 0) // placeholder, replaced below
	center = lonLatToCart(vp.LonC, vp.LatC)
	dpRef := make([]float64, nlev)

	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			p := e.Pos[n]
			r := mesh.GreatCircleDist(center, p) * dycore.Rearth
			x := math.Pow(r/vp.RadiusP, 1.5)
			ps := vp.Background - vp.DeltaP*math.Exp(-x)
			s.Hybrid.ReferenceDP(ps, dpRef)

			// Tangential unit vector (cyclonic around the centre):
			// k x (radial direction), projected on the local basis.
			east, north := mesh.SphericalBasis(p)
			toC := center.Sub(p.Scale(center.Dot(p))) // tangent-plane direction to centre
			var tHatE, tHatN float64
			if nrm := toC.Norm(); nrm > 1e-12 {
				toC = toC.Scale(1 / nrm)
				// Cyclonic (counter-clockwise in the N hemisphere):
				// tangential = k x radial_outward = -(k x toC).
				radE, radN := -toC.Dot(east), -toC.Dot(north)
				tHatE, tHatN = -radN, radE
				if vp.LatC < 0 {
					tHatE, tHatN = radN, -radE
				}
			}

			rho := ps / (dycore.Rd * vp.SST)
			vt := vp.gradientWind(r, vp.LatC, rho)
			for k := 0; k < nlev; k++ {
				i := k*npsq + n
				sig := (s.Hybrid.HyAM[k]*dycore.P0 + s.Hybrid.HyBM[k]*ps) / ps
				vert := math.Exp(-(1 - sig) * (1 - sig) / (vp.ZWidth * vp.ZWidth))
				st.U[ei][i] = vp.SteerU + vt*vert*tHatE
				st.V[ei][i] = vp.SteerV + vt*vert*tHatN
				st.DP[ei][i] = dpRef[k]
				// Warm core: peak anomaly in the mid troposphere.
				core := 3.0 * math.Exp(-x) * math.Exp(-(sig-0.4)*(sig-0.4)/0.08)
				st.T[ei][i] = baseT(sig, vp.SST) + core
			}
			if s.Cfg.Qsize > 0 {
				qdp := st.QdpAt(ei, 0)
				for k := 0; k < nlev; k++ {
					i := k*npsq + n
					sig := (s.Hybrid.HyAM[k]*dycore.P0 + s.Hybrid.HyBM[k]*ps) / ps
					qv := 0.018 * math.Exp(-(1-sig)/0.25) // moist marine layer
					qdp[i] = qv * st.DP[ei][i]
				}
			}
		}
	}
}

// baseT is the environmental temperature profile at normalized pressure
// sigma over an ocean with the given SST: a 6.5 K/km troposphere over an
// isothermal stratosphere.
func baseT(sig, sst float64) float64 {
	height := -7500 * math.Log(math.Max(sig, 1e-6))
	t := sst - 0.0065*height
	if t < 200 {
		t = 200
	}
	return t
}

// lonLatToCart converts spherical coordinates to a unit vector.
func lonLatToCart(lon, lat float64) mesh.Vec3 {
	cl := math.Cos(lat)
	return mesh.Vec3{cl * math.Cos(lon), cl * math.Sin(lon), math.Sin(lat)}
}
