package baseline

import (
	"fmt"
	"math"
)

// HexMesh is a doubly periodic unstructured mesh of hexagonal cells
// (offset rows), the planar stand-in for MPAS's spherical centroidal
// Voronoi tessellation. Connectivity is stored in explicit index arrays
// — cellsOnEdge, edgesOnCell — so fluxes go through the same indirect
// addressing MPAS pays for on every edge loop.
type HexMesh struct {
	Nx, Ny int // hex grid dimensions (Nx columns x Ny offset rows)
	NCells int
	NEdges int

	// Geometry.
	Area     float64   // all hexagons congruent
	EdgeLen  float64   // shared edge length
	CellDist float64   // distance between adjacent cell centres
	CX, CY   []float64 // cell centres

	// Connectivity (the MPAS signature).
	CellsOnEdge [][2]int32 // the two cells sharing each edge
	EdgesOnCell [][6]int32 // the six edges of each cell
	EdgeSign    [][6]int8  // +1 if the edge normal points out of the cell
	NormalX     []float64  // unit normal of each edge (cell0 -> cell1)
	NormalY     []float64

	Q []float64 // cell-centred scalar
}

// NewHexMesh builds an Nx x Ny periodic hexagonal mesh with the given
// centre-to-centre spacing. Ny must be even for periodic row offsets to
// close.
func NewHexMesh(nx, ny int, dist float64) *HexMesh {
	if nx < 3 || ny < 4 || ny%2 != 0 {
		panic(fmt.Sprintf("baseline: hex mesh needs nx>=3, even ny>=4, got %dx%d", nx, ny))
	}
	m := &HexMesh{
		Nx: nx, Ny: ny, NCells: nx * ny,
		CellDist: dist,
		EdgeLen:  dist / math.Sqrt(3),
		Area:     dist * dist * math.Sqrt(3) / 2,
	}
	m.CX = make([]float64, m.NCells)
	m.CY = make([]float64, m.NCells)
	rowH := dist * math.Sqrt(3) / 2
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			c := j*nx + i
			off := 0.0
			if j%2 == 1 {
				off = dist / 2
			}
			m.CX[c] = float64(i)*dist + off
			m.CY[c] = float64(j) * rowH
		}
	}
	m.Q = make([]float64, m.NCells)
	m.buildEdges()
	return m
}

// neighbor returns the cell index of the k-th neighbour (0:E, 1:W,
// 2:NE, 3:NW, 4:SE, 5:SW) with periodic wrapping.
func (m *HexMesh) neighbor(i, j, k int) int {
	odd := j % 2
	var di, dj int
	switch k {
	case 0:
		di, dj = 1, 0
	case 1:
		di, dj = -1, 0
	case 2:
		di, dj = odd, 1
	case 3:
		di, dj = odd-1, 1
	case 4:
		di, dj = odd, -1
	case 5:
		di, dj = odd-1, -1
	}
	ii := ((i+di)%m.Nx + m.Nx) % m.Nx
	jj := ((j+dj)%m.Ny + m.Ny) % m.Ny
	return jj*m.Nx + ii
}

// buildEdges enumerates each undirected cell adjacency once.
func (m *HexMesh) buildEdges() {
	type pair struct{ a, b int }
	seen := map[pair]int{}
	m.EdgesOnCell = make([][6]int32, m.NCells)
	m.EdgeSign = make([][6]int8, m.NCells)
	for j := 0; j < m.Ny; j++ {
		for i := 0; i < m.Nx; i++ {
			c := j*m.Nx + i
			for k := 0; k < 6; k++ {
				nb := m.neighbor(i, j, k)
				key := pair{c, nb}
				if nb < c {
					key = pair{nb, c}
				}
				eid, ok := seen[key]
				if !ok {
					eid = len(m.CellsOnEdge)
					seen[key] = eid
					m.CellsOnEdge = append(m.CellsOnEdge, [2]int32{int32(key.a), int32(key.b)})
					// Normal from the lower-indexed cell toward the other,
					// on the shortest periodic displacement.
					dx := m.shortest(m.CX[key.b]-m.CX[key.a], float64(m.Nx)*m.CellDist)
					dy := m.shortest(m.CY[key.b]-m.CY[key.a], float64(m.Ny)*m.CellDist*math.Sqrt(3)/2)
					nrm := math.Hypot(dx, dy)
					m.NormalX = append(m.NormalX, dx/nrm)
					m.NormalY = append(m.NormalY, dy/nrm)
				}
				m.EdgesOnCell[c][k] = int32(eid)
				if int32(c) == m.CellsOnEdge[eid][0] {
					m.EdgeSign[c][k] = 1
				} else {
					m.EdgeSign[c][k] = -1
				}
			}
		}
	}
	m.NEdges = len(m.CellsOnEdge)
}

// shortest maps a periodic displacement into (-period/2, period/2].
func (m *HexMesh) shortest(d, period float64) float64 {
	for d > period/2 {
		d -= period
	}
	for d <= -period/2 {
		d += period
	}
	return d
}

// Advect advances the cell-centred scalar one step under a uniform wind
// (u, v) with first-order upwind edge fluxes — the MPAS C-grid transport
// skeleton, dominated by indirect addressing. The scheme is exactly
// conservative. CFL: |wind| * dt must stay below ~half the cell spacing.
func (m *HexMesh) Advect(u, v, dt float64) {
	if math.Hypot(u, v)*dt > 0.5*m.CellDist {
		panic("baseline: hex CFL violated")
	}
	// Edge normal velocities and upwind fluxes.
	div := make([]float64, m.NCells)
	for e := 0; e < m.NEdges; e++ {
		un := u*m.NormalX[e] + v*m.NormalY[e]
		c0 := m.CellsOnEdge[e][0]
		c1 := m.CellsOnEdge[e][1]
		var donor float64
		if un >= 0 {
			donor = m.Q[c0]
		} else {
			donor = m.Q[c1]
		}
		f := un * donor * m.EdgeLen // mass per unit time through the edge
		div[c0] += f
		div[c1] -= f
	}
	for c := 0; c < m.NCells; c++ {
		m.Q[c] -= dt * div[c] / m.Area
	}
}

// TotalMass returns the mesh integral of the scalar.
func (m *HexMesh) TotalMass() float64 {
	tot := 0.0
	for _, v := range m.Q {
		tot += v
	}
	return tot * m.Area
}

// Centroid returns the mass-weighted centre of the (non-negative) field,
// using periodic-aware first moments about the domain centre.
func (m *HexMesh) Centroid() (x, y float64) {
	var sx, sy, sw float64
	for c := 0; c < m.NCells; c++ {
		w := m.Q[c]
		if w <= 0 {
			continue
		}
		sx += w * m.CX[c]
		sy += w * m.CY[c]
		sw += w
	}
	if sw == 0 {
		return 0, 0
	}
	return sx / sw, sy / sw
}
