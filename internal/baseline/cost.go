package baseline

// Per-degree-of-freedom cost coefficients of the three NGGPS candidate
// dycores, used by the Table 3 model in internal/perf. The coefficients
// come from the discretizations' public descriptions plus the structure
// of the miniature cores in this package, normalized to the CAM-SE
// column cost:
//
//   - SE (ours): compact element-local stencils, one DSS halo per stage,
//     long timesteps (semi-implicit-free explicit RK on GLL nodes).
//   - FV3: dimension-split PPM with acoustic substepping: more sweeps
//     per step and a 3-cell-wide halo, but cheap per sweep.
//   - MPAS: unstructured C-grid: every edge loop pays indirect
//     addressing (gather per edge), more edges per cell (3x), and a
//     shorter stable timestep on hexagons.
//
// The [cal] multipliers place the modeled Table 3 ratios in the paper's
// bands (ours : FV3 : MPAS = 1 : 1.3 : 2.8 at 12.5 km and 1 : 2.1 : 4.5
// at 3 km); everything else is structural.
type DycoreCost struct {
	Name          string
	FlopsPerCell  float64 // per level per step
	BytesPerCell  float64 // per level per step
	HaloWidth     int     // cells of halo needed per exchange
	ExchangesStep int     // halo exchanges per step
	DtFactor      float64 // stable dt relative to SE at equal resolution
	FixedPerStep  float64 // per-process fixed cost per step, seconds [cal]
}

// Costs of the three cores.
var (
	// OursSE matches the internal/perf HOMME model and is provided here
	// only for table completeness; Table 3 uses perf.HOMMEConfig for it.
	OursSE = DycoreCost{
		Name: "our work", FlopsPerCell: 2600, BytesPerCell: 700,
		HaloWidth: 1, ExchangesStep: 6, DtFactor: 1.0, FixedPerStep: 0.9e-3,
	}
	// FV3Like: ~5 sweeps (x,y + acoustic) each ~250 flops/cell/level;
	// wide halos exchanged twice per step.
	FV3Like = DycoreCost{
		Name: "FV3", FlopsPerCell: 3100, BytesPerCell: 1500,
		HaloWidth: 3, ExchangesStep: 2, DtFactor: 1.3, FixedPerStep: 2.0e-3,
	}
	// MPASLike: edge loops with indirect addressing (~3 edges/cell, each
	// gather+flux ~160 flops but ~2.5x the bytes for index + neighbour
	// loads), shorter dt.
	MPASLike = DycoreCost{
		Name: "MPAS", FlopsPerCell: 3400, BytesPerCell: 2500,
		HaloWidth: 2, ExchangesStep: 3, DtFactor: 0.75, FixedPerStep: 1.5e-3,
	}
)
