package baseline

import (
	"math"
	"testing"
)

func gaussianFV(g *FVGrid, x0, y0, sigma float64) {
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			dx := (float64(i)+0.5)*g.Dx - x0
			dy := (float64(j)+0.5)*g.Dy - y0
			g.Set(i, j, math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma)))
		}
	}
}

func TestFVConservesMass(t *testing.T) {
	g := NewFVGrid(40, 40, 1, 1)
	gaussianFV(g, 20, 20, 4)
	m0 := g.TotalMass()
	for s := 0; s < 50; s++ {
		g.AdvectSplit(0.7, -0.4, 1)
	}
	m1 := g.TotalMass()
	if math.Abs(m1-m0) > 1e-10*m0 {
		t.Fatalf("FV mass drifted: %v -> %v", m0, m1)
	}
}

func TestFVMonotone(t *testing.T) {
	// A 0/1 step function must stay within [0, 1].
	g := NewFVGrid(50, 20, 1, 1)
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			if i > 10 && i < 25 {
				g.Set(i, j, 1)
			}
		}
	}
	for s := 0; s < 100; s++ {
		g.AdvectSplit(0.45, 0.2, 1)
	}
	lo, hi := g.MinMax()
	if lo < -1e-12 || hi > 1+1e-12 {
		t.Fatalf("FV overshoot: [%g, %g]", lo, hi)
	}
}

func TestFVTranslatesCorrectDistance(t *testing.T) {
	// One full period of translation must return the blob to its start.
	g := NewFVGrid(32, 32, 1, 1)
	gaussianFV(g, 16, 16, 3)
	ref := append([]float64(nil), g.Q...)
	// u=0.5, dt=1: 64 steps = one x period.
	for s := 0; s < 64; s++ {
		g.AdvectSplit(0.5, 0, 1)
	}
	// Diffused but centred at the same place: correlation with the
	// original must be high and the centroid must match.
	var dot, na, nb float64
	for k := range ref {
		dot += ref[k] * g.Q[k]
		na += ref[k] * ref[k]
		nb += g.Q[k] * g.Q[k]
	}
	if corr := dot / math.Sqrt(na*nb); corr < 0.95 {
		t.Fatalf("after one period correlation = %.3f", corr)
	}
}

func TestFVExactAtUnitCourant(t *testing.T) {
	// At Courant number exactly 1 the scheme is exact translation.
	g := NewFVGrid(16, 8, 1, 1)
	gaussianFV(g, 8, 4, 2)
	ref := append([]float64(nil), g.Q...)
	for s := 0; s < 16; s++ {
		g.AdvectSplit(1.0, 0, 1)
	}
	for k := range ref {
		if math.Abs(g.Q[k]-ref[k]) > 1e-12 {
			t.Fatalf("unit-Courant translation not exact at %d", k)
		}
	}
}

func TestFVCFLGuard(t *testing.T) {
	g := NewFVGrid(8, 8, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("CFL violation not caught")
		}
	}()
	g.AdvectSplit(2.0, 0, 1)
}

func TestHexMeshConnectivity(t *testing.T) {
	m := NewHexMesh(8, 6, 1)
	if m.NCells != 48 {
		t.Fatalf("cells = %d", m.NCells)
	}
	// Euler: periodic hex mesh has exactly 3 edges per cell.
	if m.NEdges != 3*m.NCells {
		t.Fatalf("edges = %d, want %d", m.NEdges, 3*m.NCells)
	}
	// Every edge's two cells must list it with opposite signs.
	listed := make([]int, m.NEdges)
	for c := 0; c < m.NCells; c++ {
		for k := 0; k < 6; k++ {
			e := m.EdgesOnCell[c][k]
			listed[e]++
			cells := m.CellsOnEdge[e]
			if int32(c) != cells[0] && int32(c) != cells[1] {
				t.Fatalf("cell %d lists edge %d it does not border", c, e)
			}
		}
	}
	for e, n := range listed {
		if n != 2 {
			t.Fatalf("edge %d listed %d times", e, n)
		}
	}
	// Normals are unit.
	for e := 0; e < m.NEdges; e++ {
		if math.Abs(math.Hypot(m.NormalX[e], m.NormalY[e])-1) > 1e-12 {
			t.Fatalf("edge %d normal not unit", e)
		}
	}
}

func TestHexAdvectConservesMass(t *testing.T) {
	m := NewHexMesh(20, 20, 1)
	for c := 0; c < m.NCells; c++ {
		dx := m.shortest(m.CX[c]-10, float64(m.Nx)*m.CellDist)
		dy := m.shortest(m.CY[c]-8, float64(m.Ny)*m.CellDist*math.Sqrt(3)/2)
		m.Q[c] = math.Exp(-(dx*dx + dy*dy) / 8)
	}
	m0 := m.TotalMass()
	for s := 0; s < 100; s++ {
		m.Advect(0.3, 0.2, 1)
	}
	if d := math.Abs(m.TotalMass() - m0); d > 1e-10*m0 {
		t.Fatalf("hex mass drifted by %g", d)
	}
}

func TestHexAdvectMovesBlobDownwind(t *testing.T) {
	m := NewHexMesh(30, 20, 1)
	x0, y0 := 8.0, 8.0
	for c := 0; c < m.NCells; c++ {
		dx := m.shortest(m.CX[c]-x0, float64(m.Nx)*m.CellDist)
		dy := m.shortest(m.CY[c]-y0, float64(m.Ny)*m.CellDist*math.Sqrt(3)/2)
		m.Q[c] = math.Exp(-(dx*dx + dy*dy) / 4)
	}
	cx0, _ := m.Centroid()
	const u, dt = 0.4, 1.0
	const steps = 10
	for s := 0; s < steps; s++ {
		m.Advect(u, 0, dt)
	}
	cx1, _ := m.Centroid()
	moved := cx1 - cx0
	want := u * dt * steps
	if moved < 0.5*want || moved > 1.5*want {
		t.Fatalf("blob moved %.2f, expected ~%.2f downwind", moved, want)
	}
}

func TestHexAdvectNonNegative(t *testing.T) {
	// First-order upwind is positivity-preserving.
	m := NewHexMesh(16, 10, 1)
	m.Q[37] = 5
	for s := 0; s < 50; s++ {
		m.Advect(0.3, -0.25, 1)
	}
	for c, v := range m.Q {
		if v < -1e-13 {
			t.Fatalf("negative value %g at cell %d", v, c)
		}
	}
}

func TestHexCFLGuard(t *testing.T) {
	m := NewHexMesh(8, 6, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("hex CFL violation not caught")
		}
	}()
	m.Advect(5, 0, 1)
}

func TestDycoreCostShape(t *testing.T) {
	// The structural statement behind Table 3: per degree of freedom,
	// MPAS moves the most bytes, FV3 needs the widest halos, SE takes
	// the longest stable step of the explicit pair SE/MPAS.
	if !(MPASLike.BytesPerCell > FV3Like.BytesPerCell &&
		FV3Like.BytesPerCell > OursSE.BytesPerCell) {
		t.Error("byte-per-cell ordering violated")
	}
	if FV3Like.HaloWidth <= OursSE.HaloWidth {
		t.Error("FV3 should need wider halos than SE")
	}
	if MPASLike.DtFactor >= OursSE.DtFactor {
		t.Error("MPAS hexagons take shorter steps than SE")
	}
}
