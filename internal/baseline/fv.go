// Package baseline implements working miniatures of the two comparison
// dynamical cores of the paper's NGGPS evaluation (Table 3):
//
//   - FV3-like: a flux-form finite-volume transport core with monotonic
//     PPM reconstruction and dimension splitting — the computational
//     signature of GFDL's FV3 (wide halos, directional sweeps, large
//     per-cell stencils).
//   - MPAS-like: an unstructured C-grid transport core on a hexagonal
//     mesh with edge-based upwind fluxes and indirect addressing — the
//     computational signature of NCAR's MPAS.
//
// The paper compares full nonhydrostatic models; rebuilding those is out
// of scope (see DESIGN.md), but these cores are real, tested solvers
// whose flop/byte/halo structure feeds the Table 3 cost model in
// internal/perf, preserving the comparison's shape: SE beats FV beats
// MPAS per degree of freedom on this machine, with the gap widening at
// 3 km where per-process work shrinks.
package baseline

import (
	"fmt"
	"math"
)

// FVGrid is a doubly periodic planar finite-volume grid (the planar
// stand-in for one cubed-sphere face).
type FVGrid struct {
	Nx, Ny int
	Dx, Dy float64
	Q      []float64 // cell averages
	flux   []float64 // scratch: face fluxes along a sweep
	q1d    []float64 // scratch: one row/column
}

// NewFVGrid builds an nx x ny grid with spacing dx, dy.
func NewFVGrid(nx, ny int, dx, dy float64) *FVGrid {
	if nx < 5 || ny < 5 {
		panic(fmt.Sprintf("baseline: FV grid needs >= 5 cells per side, got %dx%d", nx, ny))
	}
	n := nx
	if ny > n {
		n = ny
	}
	return &FVGrid{
		Nx: nx, Ny: ny, Dx: dx, Dy: dy,
		Q:    make([]float64, nx*ny),
		flux: make([]float64, n+1),
		q1d:  make([]float64, n),
	}
}

// At returns the cell average at (i, j) with periodic wrapping.
func (g *FVGrid) At(i, j int) float64 {
	i = ((i % g.Nx) + g.Nx) % g.Nx
	j = ((j % g.Ny) + g.Ny) % g.Ny
	return g.Q[j*g.Nx+i]
}

// Set writes the cell average at (i, j).
func (g *FVGrid) Set(i, j int, v float64) { g.Q[j*g.Nx+i] = v }

// mcSlope returns the monotonized-central limited slope of the cell
// with neighbours l, c, r — the van-Leer family limiter FV cores use to
// keep transport monotone.
func mcSlope(l, c, r float64) float64 {
	d := (r - l) / 2
	if (r-c)*(c-l) <= 0 {
		return 0
	}
	m := math.Min(math.Abs(d), 2*math.Min(math.Abs(r-c), math.Abs(c-l)))
	return math.Copysign(m, d)
}

// sweep1D advances one periodic row of cell averages q by 1D flux-form
// MUSCL transport with face Courant number cr = u*dt/dx (|cr| <= 1),
// writing the result in place. The reconstruction is piecewise linear
// with the MC limiter (the second-order member of the PPM family FV3
// uses); the scheme is exactly conservative and monotone.
func sweep1D(q []float64, flux []float64, cr float64) {
	n := len(q)
	for i := 0; i < n; i++ {
		// Face between cell i and i+1: integrate the upwind cell's
		// reconstruction over the departure interval.
		if cr >= 0 {
			s := mcSlope(q[(i-1+n)%n], q[i], q[(i+1)%n])
			flux[i] = cr * (q[i] + 0.5*(1-cr)*s)
		} else {
			ip := (i + 1) % n
			s := mcSlope(q[i], q[ip], q[(i+2)%n])
			flux[i] = cr * (q[ip] - 0.5*(1+cr)*s)
		}
	}
	q0 := make([]float64, n)
	copy(q0, q)
	for i := 0; i < n; i++ {
		q[i] = q0[i] - (flux[i] - flux[(i-1+n)%n])
	}
}

// AdvectSplit advances the field one step under constant winds (u, v)
// with Strang-like XY dimension splitting, the FV3 transport pattern.
// Courant numbers must satisfy |u dt/dx| <= 1 and |v dt/dy| <= 1.
func (g *FVGrid) AdvectSplit(u, v, dt float64) {
	crx := u * dt / g.Dx
	cry := v * dt / g.Dy
	if math.Abs(crx) > 1 || math.Abs(cry) > 1 {
		panic(fmt.Sprintf("baseline: FV Courant number too large (%g, %g)", crx, cry))
	}
	// X sweeps.
	for j := 0; j < g.Ny; j++ {
		row := g.Q[j*g.Nx : (j+1)*g.Nx]
		sweep1D(row, g.flux[:g.Nx], crx)
	}
	// Y sweeps (gather/scatter a column — the transpose cost is real in
	// FV codes too).
	col := g.q1d[:g.Ny]
	for i := 0; i < g.Nx; i++ {
		for j := 0; j < g.Ny; j++ {
			col[j] = g.Q[j*g.Nx+i]
		}
		sweep1D(col, g.flux[:g.Ny], cry)
		for j := 0; j < g.Ny; j++ {
			g.Q[j*g.Nx+i] = col[j]
		}
	}
}

// TotalMass returns the grid integral of the field.
func (g *FVGrid) TotalMass() float64 {
	tot := 0.0
	for _, v := range g.Q {
		tot += v
	}
	return tot * g.Dx * g.Dy
}

// MinMax returns the extrema of the field.
func (g *FVGrid) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range g.Q {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
