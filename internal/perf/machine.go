package perf

import (
	"math"

	"swcam/internal/exec"
)

// CGEfficiency is the sustained fraction of nominal DMA bandwidth the
// dycore's access patterns achieve (strided gathers, short tiles). [cal:
// anchors the 650-elements-per-process weak-scaling point near the
// paper's 3.3 PFlops; see EXPERIMENTS.md.]
const CGEfficiency = 0.35

// CGFixedElems expresses the fixed per-step cost of one core group
// (kernel launches, DSS synchronization, MPE serial glue) in units of
// per-element work: the paper's own per-CG throughputs (derived from the
// PFlops labels of Figure 7) saturate like e/(e+e0). [cal]
const CGFixedElems = 15.0

// NetContention models endpoint/backplane contention as the job grows
// toward the full machine: effective per-CG bandwidth divides by
// (1 + NetContention * nprocs/TotalCGs). [cal: Figure 7's efficiency
// collapse at 131,072 processes.]
const NetContention = 0.5

// ImbalanceRate models per-doubling load-imbalance and OS-jitter losses
// beyond one supernode, stronger for small per-process loads:
// loss = ImbalanceRate * log2(nprocs/512) * (48/e)^0.25. [cal: Figure
// 8's weak-scaling efficiencies at 131,072 processes.]
const ImbalanceRate = 0.0146

// HOMMEConfig describes a dycore-only workload (the HOMME scaling runs
// of Figures 7-8 use nlev=128).
type HOMMEConfig struct {
	Ne        int
	Np        int
	Nlev      int
	Qsize     int
	RemapFreq int
	Dt        float64 // dynamics step, seconds of simulated time
}

// DefaultHOMMEConfig returns the paper's dycore benchmark shape for a
// given resolution.
func DefaultHOMMEConfig(ne int) HOMMEConfig {
	return HOMMEConfig{Ne: ne, Np: 4, Nlev: 128, Qsize: 4, RemapFreq: 2,
		Dt: 300 * 30 / float64(ne)}
}

// NElems returns the total element count.
func (c HOMMEConfig) NElems() int { return 6 * c.Ne * c.Ne }

// FlopsPerElemStep returns modeled double-precision operations per
// element per dynamics step: two RHS stages, one two-pass
// hyperviscosity, two tracer stages, and the amortized remap.
func (c HOMMEConfig) FlopsPerElemStep() float64 {
	return 2*float64(exec.RHSFlops(c.Np, c.Nlev)) +
		float64(exec.Hypervis1Flops(c.Np, c.Nlev)) +
		float64(exec.Hypervis2Flops(c.Np, c.Nlev)) +
		2*float64(c.Qsize)*float64(exec.EulerStageFlops(c.Np, c.Nlev)) +
		float64(exec.RemapFlops(c.Np, c.Nlev, c.Qsize))/float64(c.RemapFreq)
}

// BytesPerElemStep returns the compulsory main-memory traffic per
// element per step (Athread backend: every field touched once per pass).
func (c HOMMEConfig) BytesPerElemStep() float64 {
	return 2*float64(exec.RHSBytes(c.Np, c.Nlev)) +
		2*float64(exec.HypervisBytes(c.Np, c.Nlev)) +
		2*float64(exec.EulerBytes(c.Np, c.Nlev, c.Qsize)) +
		float64(exec.RemapBytes(c.Np, c.Nlev, c.Qsize))/float64(c.RemapFreq)
}

// exchangesPerStep is the halo-exchange count of one dynamics step: two
// RHS stages, two in the hyperviscosity pair, two tracer stages (the
// paper's "3 sub-cycles edge packing/unpacking" per RK loop maps to the
// same count for our 2-stage RK).
const exchangesPerStep = 6

// perElemTime is the roofline time for one element's dynamics step on
// one core group (Athread backend).
func (c HOMMEConfig) perElemTime() float64 {
	compute := c.FlopsPerElemStep() / (64 * CPEVectorRate * 0.75)
	memory := c.BytesPerElemStep() / (CGMemBW * CGEfficiency)
	return math.Max(compute, memory)
}

// CGStepTime returns the modeled compute time of one process (core
// group) advancing elemsPerProc elements one dynamics step on the
// Athread backend, including the fixed per-step cost.
func (c HOMMEConfig) CGStepTime(elemsPerProc float64) float64 {
	return (elemsPerProc + CGFixedElems) * c.perElemTime()
}

// haloBytes estimates the per-exchange message volume of one process
// owning elemsPerProc elements on an SFC partition: the patch perimeter
// in shared GLL nodes, times levels, fields, and 8 bytes.
func (c HOMMEConfig) haloBytes(elemsPerProc float64, fields int) float64 {
	if elemsPerProc < 1 {
		elemsPerProc = 1
	}
	perimElems := 4 * math.Sqrt(elemsPerProc)
	sharedNodes := perimElems*float64(c.Np-1) + 4
	return sharedNodes * float64(c.Nlev) * float64(fields) * 8
}

// imbalanceLoss returns the fractional step-time inflation from load
// imbalance and jitter at scale.
func imbalanceLoss(elems float64, nprocs int) float64 {
	if nprocs <= 512 {
		return 0
	}
	if elems < 1 {
		elems = 1
	}
	return ImbalanceRate * math.Log2(float64(nprocs)/512) * math.Pow(48/elems, 0.25)
}

// commTime models the per-step halo-exchange cost of one process at the
// given scale, including network contention near full machine.
func (c HOMMEConfig) commTime(elems float64, nprocs int) float64 {
	local := nprocs <= SupernodeCGs
	avgFields := (4*4 + 2*c.Qsize) / 6
	if avgFields < 1 {
		avgFields = 1
	}
	bytesPer := c.haloBytes(elems, avgFields)
	bw := NetBWPerCG / (1 + NetContention*float64(nprocs)/float64(TotalCGs))
	const neighbors = 8
	perExchange := float64(neighbors)*pick(local, NetLatencyLocal, NetLatency) + bytesPer/bw
	return exchangesPerStep * perExchange
}

// StepTime returns the modeled wall-clock of one dynamics step at the
// given process count, with or without the §7.6
// computation/communication overlap, plus the step's total flops.
func (c HOMMEConfig) StepTime(nprocs int, overlap bool) (seconds, flops float64) {
	elems := float64(c.NElems()) / float64(nprocs)
	compute := c.CGStepTime(elems)
	comm := c.commTime(elems, nprocs)

	var step float64
	if overlap {
		// Boundary elements compute first; inner compute hides the
		// messages (§7.6). The hideable window is the inner fraction.
		perim := math.Min(1, 4*math.Sqrt(elems)/math.Max(elems, 1))
		boundary := compute * perim
		inner := compute - boundary
		step = boundary + math.Max(inner, comm)
	} else {
		step = compute + comm
	}
	step *= 1 + imbalanceLoss(elems, nprocs)
	return step, float64(c.NElems()) * c.FlopsPerElemStep()
}

func pick(cond bool, a, b float64) float64 {
	if cond {
		return a
	}
	return b
}

// PFlops returns the modeled sustained performance at nprocs processes.
func (c HOMMEConfig) PFlops(nprocs int, overlap bool) float64 {
	t, f := c.StepTime(nprocs, overlap)
	return f / t / 1e15
}

// Efficiency returns parallel efficiency relative to a baseline process
// count: eff = (T0 * N0) / (T * N).
func (c HOMMEConfig) Efficiency(nprocs, baseProcs int, overlap bool) float64 {
	t0, _ := c.StepTime(baseProcs, overlap)
	t, _ := c.StepTime(nprocs, overlap)
	return t0 * float64(baseProcs) / (t * float64(nprocs))
}

// WeakPoint is one weak-scaling measurement.
type WeakPoint struct {
	ElemsPerProc int
	NProcs       int
	PFlops       float64
	StepTime     float64
}

// WeakScaling evaluates a fixed per-process load at a process count.
func WeakScaling(elemsPerProc, nprocs, nlev, qsize int) WeakPoint {
	cfg := HOMMEConfig{Ne: 1, Np: 4, Nlev: nlev, Qsize: qsize, RemapFreq: 2, Dt: 1}
	e := float64(elemsPerProc)
	compute := cfg.CGStepTime(e)
	comm := cfg.commTime(e, nprocs)
	perim := math.Min(1, 4*math.Sqrt(e)/e)
	boundary := compute * perim
	step := boundary + math.Max(compute-boundary, comm)
	step *= 1 + imbalanceLoss(e, nprocs)
	flops := e * cfg.FlopsPerElemStep() * float64(nprocs)
	return WeakPoint{ElemsPerProc: elemsPerProc, NProcs: nprocs,
		PFlops: flops / step / 1e15, StepTime: step}
}

// WeakEfficiency is the weak-scaling parallel efficiency of a point
// relative to the same per-process load on baseProcs processes.
func WeakEfficiency(elemsPerProc, nprocs, baseProcs, nlev, qsize int) float64 {
	base := WeakScaling(elemsPerProc, baseProcs, nlev, qsize)
	at := WeakScaling(elemsPerProc, nprocs, nlev, qsize)
	return base.StepTime / at.StepTime
}

// PowerEfficiency returns the modeled system-level GFlops/W at a given
// sustained PFlops on nprocs core groups: sustained flops over the
// powered-on fraction of the machine (chips draw near-constant power
// regardless of utilization; system overhead scales chip power by the
// factor that reproduces the published 6.06 GFlops/W at the 93-PFlops
// Linpack point).
func PowerEfficiency(pflops float64, nprocs int) float64 {
	chips := float64(nprocs) / 4 // 4 CGs per chip
	// System power per chip: chip watts x overhead. Linpack: 93 PFlops
	// on the full machine at 6.06 GFlops/W -> 15.35 MW system power for
	// 40,960 chips -> 374.7 W per chip (chip alone: 306 W).
	const systemWattsPerChip = 93.0e15 / 6.06e9 / 40960
	return pflops * 1e15 / (chips * systemWattsPerChip) / 1e9
}
