package perf

import (
	"math"

	"swcam/internal/exec"
)

// KernelTime converts one kernel execution's cost record into modeled
// seconds on the backend that produced it — a roofline: the kernel takes
// the longer of its compute time and its memory time, plus fixed
// launch/issue overheads.
func KernelTime(c exec.Cost) float64 {
	switch c.Backend {
	case exec.Intel:
		return serialTime(c, IntelRate, IntelMemBW)
	case exec.MPE:
		return serialTime(c, MPERate, MPEMemBW)
	case exec.OpenACC:
		return cpeTime(c, ACCRegionOverhead, ACCMemEff)
	case exec.Athread:
		return cpeTime(c, SpawnOverhead, AthMemEff)
	}
	panic("perf: unknown backend")
}

func serialTime(c exec.Cost, rate, bw float64) float64 {
	compute := float64(c.Flops()) / rate
	memory := float64(c.MemBytes) / bw
	return math.Max(compute, memory)
}

// cpeTime models a CPE-cluster kernel: the makespan is set by the
// busiest CPE's arithmetic (at the scalar or vector rate according to
// its mix), the core group's shared memory bandwidth, and the DMA issue
// costs, overlapped against each other (the hardware overlaps DMA with
// compute); register communication and the region launch are serial
// additions.
// ACCMemEff is the sustained bandwidth fraction of directive-generated
// DMA: smaller, unaligned, un-batched transfers. [cal: places the
// OpenACC euler_step near the paper's 1.5x-over-Intel and the OpenACC
// rhs below Intel, as in Table 1.]
const ACCMemEff = 0.15

// AthMemEff is the sustained bandwidth fraction of the Athread
// backend's large tiled transfers — close to the DMA-benchmark ceiling.
// (The whole-machine scaling model uses the more conservative
// CGEfficiency, which folds in remap gathers and halo packing.) [cal]
const AthMemEff = 0.55

func cpeTime(c exec.Cost, launch, memEff float64) float64 {
	// Arithmetic time of the busiest CPE, splitting its flops by the
	// aggregate scalar/vector mix.
	var compute float64
	if tot := c.Flops(); tot > 0 {
		fv := float64(c.FlopsVector) / float64(tot)
		per := float64(c.MaxCPEFlops)
		compute = per*fv/CPEVectorRate + per*(1-fv)/CPERate
	}
	// Memory: all DMA traffic shares the CG's bandwidth; issue costs
	// are paid per transfer but spread across the 64 engines.
	memory := float64(c.MemBytes)/(CGMemBW*memEff) + float64(c.DMAOps)/64*DMAIssue
	// Register messages serialize along dependency chains within the
	// mesh; charge them at chain depth (messages / 64 CPEs ~ per-CPE
	// share) — the scans' pipelining is already reflected in their
	// being counted per CPE.
	reg := float64(c.RegMsgs) / 64 * RegCommLatency
	return float64(c.Launches)*launch + math.Max(compute, memory) + reg
}

// NetTime models one message of b bytes between two core groups with a
// LogGP cost; local selects the within-supernode latency.
func NetTime(b int64, local bool) float64 {
	l := NetLatency
	if local {
		l = NetLatencyLocal
	}
	return l + float64(b)/NetBWPerCG
}

// ExchangeTime models one halo exchange for a process with nNbr
// neighbours, each message bytesPer long. With overlap, the exchange
// hides behind innerCompute seconds of computation (the §7.6 redesign);
// the residual is whatever communication exceeds the overlap window.
// Messages to different neighbours pipeline on the NIC: one latency is
// paid per neighbour, bandwidth is shared.
func ExchangeTime(nNbr int, bytesPer int64, local bool, overlap bool, innerCompute float64) float64 {
	if nNbr == 0 {
		return innerCompute
	}
	l := NetLatency
	if local {
		l = NetLatencyLocal
	}
	comm := float64(nNbr)*l + float64(int64(nNbr)*bytesPer)/NetBWPerCG
	if !overlap {
		return comm + innerCompute
	}
	return math.Max(comm, innerCompute)
}

// KernelTimeNoVec models the same cost with the vector unit disabled
// (all flops at the scalar rate) — the ablation for the §7.3 manual
// vectorization step. Only meaningful for CPE backends.
func KernelTimeNoVec(c exec.Cost) float64 {
	c.FlopsScalar += c.FlopsVector
	c.FlopsVector = 0
	return KernelTime(c)
}
