package perf

import "math"

// Whole-CAM performance composition (Figure 6). The complete model is
// the dynamical core (run nsub times per physics step) plus the physics
// suite and a long tail of hundreds of small modules ("20 to 30 kernels
// that contribute a meaningful portion, usually only 2% to 5%", §3)
// plus fixed per-step costs (collectives, load imbalance, amortized
// I/O). The three ported versions compose differently:
//
//	ori     — everything on the MPE.
//	openacc — the whole model on the CPE clusters through the directive
//	          compiler: scalar code, per-region launch overheads, the
//	          rhs redundancy.
//	athread — the six dycore kernels rewritten fine-grained with
//	          communication overlap (§7.3-7.6); physics and the tail
//	          remain OpenACC.
//
// Whole-CAM wall time cannot be predicted from the kernel model alone
// (the tail is not in this repository), so the per-version coefficients
// below are CALIBRATED to the paper's published operating points and
// stated ratios:
//
//	ne30/athread/5400 procs   = 21.5 SYPD      (§7.1, Figure 6 left)
//	ne120/openacc/28800 procs = 3.4 SYPD       (§7.1, Figure 6 right)
//	ori -> openacc            = 1.4-1.5x       (§8.3)
//	openacc -> athread        = 1.1-1.4x       (§8.3)
//
// The fit and its residuals are recorded in EXPERIMENTS.md. The
// kernel-level comparisons (Table 1 / Figure 5) use the event-driven
// model in model.go instead, with no per-kernel fitting.
type CAMVersion int

// The three Figure 6 code versions.
const (
	VersionOri CAMVersion = iota
	VersionOpenACC
	VersionAthread
)

// String names the version as in Figure 6's legend.
func (v CAMVersion) String() string {
	switch v {
	case VersionOri:
		return "ori"
	case VersionOpenACC:
		return "openacc"
	case VersionAthread:
		return "athread"
	}
	return "?"
}

// CAMConfig is a whole-model configuration (CAM5 physics shape: 30
// levels, ~25 advected tracers, 1800 s physics step).
type CAMConfig struct {
	Ne     int
	Np     int
	Nlev   int
	Qsize  int
	DtPhys float64
	DtDyn  float64
}

// DefaultCAMConfig returns the CAM5 operating point for a resolution.
func DefaultCAMConfig(ne int) CAMConfig {
	return CAMConfig{Ne: ne, Np: 4, Nlev: 30, Qsize: 25,
		DtPhys: 1800, DtDyn: 300 * 30 / float64(ne)}
}

// camCoef is the calibrated per-version cost structure, per physics
// step, seconds: T = camFixed + A + nsub*(d*e + comm) + r*e, where e is
// elements per process and nsub = DtPhys/DtDyn.
type camCoef struct {
	A float64 // per-step fixed cost of this version (launches, MPE glue)
	d float64 // dynamics cost per element per substep
	r float64 // physics + tail cost per element per physics step
}

// camFixed is the version-independent floor per physics step. [cal]
const camFixed = 0.04

// Calibrated version coefficients [cal: see the package comment].
var camCoefs = map[CAMVersion]camCoef{
	VersionOri:     {A: 0.190, d: 0.0250, r: 0.029},
	VersionOpenACC: {A: 0.112, d: 0.0172, r: 0.020},
	VersionAthread: {A: 0.112, d: 0.0095, r: 0.020},
}

// dynCommTime is the per-substep halo cost at this configuration.
func (c CAMConfig) dynCommTime(elems float64, nprocs int) float64 {
	h := HOMMEConfig{Ne: c.Ne, Np: c.Np, Nlev: c.Nlev, Qsize: c.Qsize}
	return h.commTime(elems, nprocs)
}

// PhysStepTime returns the modeled wall-clock of one full physics step
// (including its dynamics substeps) for one process at nprocs.
func (c CAMConfig) PhysStepTime(v CAMVersion, nprocs int) float64 {
	elems := float64(6*c.Ne*c.Ne) / float64(nprocs)
	nsub := c.DtPhys / c.DtDyn
	k := camCoefs[v]
	comm := c.dynCommTime(elems, nprocs)
	dynSub := k.d * elems
	if v == VersionAthread {
		// The redesigned bndry_exchangev overlaps communication with
		// inner-element computation (§7.6).
		dynSub = math.Max(dynSub, comm)
	} else {
		dynSub += comm
	}
	return camFixed + k.A + nsub*dynSub + k.r*elems
}

// SYPD returns simulated years per wall-clock day for the whole model.
func (c CAMConfig) SYPD(v CAMVersion, nprocs int) float64 {
	stepsPerDay := 86400 / c.DtPhys
	simDayWall := stepsPerDay * c.PhysStepTime(v, nprocs)
	return 86400 / (365 * simDayWall)
}
