package perf

import (
	"math"

	"swcam/internal/baseline"
)

// Table 3: the NGGPS dycore comparison — run time of a 2-hour forecast
// at 12.5 km and a 30-minute forecast at 3 km for our redesigned HOMME
// vs FV3-like and MPAS-like cost models, at the paper's process counts.
//
// All three dycores run through the same machine model (roofline over
// per-column flop/byte volumes, halo exchange, fixed per-step cost); the
// structural differences live in baseline.DycoreCost. Absolute seconds
// are anchored by a single scale factor that pins our 12.5 km entry to
// the paper's 2.712 s [cal]; every other number — both resolutions, both
// baselines — then follows from the models, so the ratios and the
// widening gap at 3 km are genuine model output.

// Table3Row is one dycore's entry at one resolution.
type Table3Row struct {
	Name    string
	NProcs  int
	RunTime float64 // seconds
}

// Table3Case is one resolution block of the table.
type Table3Case struct {
	Label    string
	Forecast float64 // simulated seconds
	Rows     []Table3Row
}

// nggpsColumns returns the global column count at a grid spacing dx (m):
// sphere area over dx^2.
func nggpsColumns(dx float64) float64 {
	const earthArea = 4 * math.Pi * 6.376e6 * 6.376e6
	return earthArea / (dx * dx)
}

// nggpsDtBase is the stable explicit step of the SE reference at grid
// spacing dx: advective CFL with ~350 m/s gravity-wave speed and a 0.7
// safety factor times the dycore's DtFactor.
func nggpsDtBase(dx float64) float64 { return 0.7 * dx / 350 * 125 / 10 }

// dycoreStepTime models one step of a dycore on one core group holding
// cols columns of nlev levels.
func dycoreStepTime(d baseline.DycoreCost, cols float64, nlev int, nprocs int) float64 {
	flops := cols * d.FlopsPerCell * float64(nlev)
	bytes := cols * d.BytesPerCell * float64(nlev)
	compute := math.Max(flops/(64*CPEVectorRate*0.75), bytes/(CGMemBW*CGEfficiency))
	// Halo: perimeter columns x halo width x levels x 8 bytes x fields.
	perim := 4 * math.Sqrt(cols) * float64(d.HaloWidth)
	msg := perim * float64(nlev) * 8 * 4
	bw := NetBWPerCG / (1 + NetContention*float64(nprocs)/float64(TotalCGs))
	comm := float64(d.ExchangesStep) * (8*NetLatency + msg/bw)
	return compute + comm + d.FixedPerStep
}

// table3Scale pins our 12.5 km entry to the paper's 2.712 s. [cal]
var table3Scale = func() float64 {
	const paper = 2.712
	model := table3RunTime(baseline.OursSE, 12500, 131072, 7200, 1)
	return paper / model
}()

// table3RunTime is the unscaled forecast wall time.
func table3RunTime(d baseline.DycoreCost, dx float64, nprocs int, forecast, scale float64) float64 {
	const nlev = 128
	cols := nggpsColumns(dx) / float64(nprocs)
	dt := nggpsDtBase(dx) * d.DtFactor
	steps := math.Ceil(forecast / dt)
	return steps * dycoreStepTime(d, cols, nlev, nprocs) * scale
}

// Table3 generates both resolution blocks at the paper's process counts.
func Table3() []Table3Case {
	return []Table3Case{
		{
			Label: "12.5 km simulation for 2-hour prediction workload", Forecast: 7200,
			Rows: []Table3Row{
				{Name: "our work", NProcs: 131072, RunTime: table3RunTime(baseline.OursSE, 12500, 131072, 7200, table3Scale)},
				{Name: "FV3", NProcs: 110592, RunTime: table3RunTime(baseline.FV3Like, 12500, 110592, 7200, table3Scale)},
				{Name: "MPAS", NProcs: 96000, RunTime: table3RunTime(baseline.MPASLike, 12500, 96000, 7200, table3Scale)},
			},
		},
		{
			Label: "3 km simulation for 30-min prediction workload", Forecast: 1800,
			Rows: []Table3Row{
				{Name: "our work", NProcs: 131072, RunTime: table3RunTime(baseline.OursSE, 3000, 131072, 1800, table3Scale)},
				{Name: "FV3", NProcs: 110592, RunTime: table3RunTime(baseline.FV3Like, 3000, 110592, 1800, table3Scale)},
				{Name: "MPAS", NProcs: 131072, RunTime: table3RunTime(baseline.MPASLike, 3000, 131072, 1800, table3Scale)},
			},
		},
	}
}
