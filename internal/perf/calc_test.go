package perf

import (
	"math"
	"testing"

	"swcam/internal/exec"
)

func close(t *testing.T, name string, got, want, rtol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %g, want 0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > rtol {
		t.Errorf("%s = %g, want %g (rtol %g)", name, got, want, rtol)
	}
}

// TestKernelTimeSerialHandComputed pins the serial (Intel/MPE) roofline
// against values computed by hand from the published machine constants:
// time = max(flops/rate, bytes/bw).
func TestKernelTimeSerialHandComputed(t *testing.T) {
	// Compute-bound on Intel: 3.0e9 flops at 3.0 GFlops/s = 1 s exactly.
	c := exec.Cost{Backend: exec.Intel, FlopsScalar: 3_000_000_000}
	close(t, "intel compute-bound", KernelTime(c), 1.0, 1e-12)

	// Memory-bound on Intel: 28e9 bytes at 14 GB/s = 2 s; the 3e9 flops
	// would take only 1 s, so memory dominates.
	c.MemBytes = 28_000_000_000
	close(t, "intel memory-bound", KernelTime(c), 2.0, 1e-12)

	// MPE: 1.1e9 flops at 0.55 GFlops/s = 2 s; 6e9 bytes at 6 GB/s = 1 s.
	m := exec.Cost{Backend: exec.MPE, FlopsScalar: 1_100_000_000, MemBytes: 6_000_000_000}
	close(t, "mpe compute-bound", KernelTime(m), 2.0, 1e-12)
}

// TestKernelTimeCPEHandComputed pins the CPE-cluster model (Athread):
// launches*overhead + max(busiest-CPE compute, DMA memory) + reg chain.
func TestKernelTimeCPEHandComputed(t *testing.T) {
	// All-vector kernel: the busiest CPE holds 5.8e9 flops at the 5.8
	// GFlops/s vector rate = 1 s of compute. Memory: 64 DMA ops spread
	// over 64 engines pay one 150 ns issue; no bytes. Register chain: 64
	// messages / 64 CPEs at 7 ns = 7 ns. One spawn at 2 us.
	c := exec.Cost{
		Backend:     exec.Athread,
		FlopsVector: 64 * 5_800_000_000,
		MaxCPEFlops: 5_800_000_000,
		DMAOps:      64,
		RegMsgs:     64,
		Launches:    1,
	}
	want := SpawnOverhead + 1.0 + RegCommLatency
	close(t, "athread all-vector", KernelTime(c), want, 1e-12)

	// Memory-bound: 29e9 bytes at CGMemBW*AthMemEff = 29e9*0.55 B/s
	// takes 1/0.55 s, dominating the 0.5 s of compute.
	m := exec.Cost{
		Backend:     exec.Athread,
		FlopsVector: 64 * 2_900_000_000,
		MaxCPEFlops: 2_900_000_000,
		MemBytes:    29_000_000_000,
		Launches:    1,
	}
	want = SpawnOverhead + 1.0/AthMemEff
	close(t, "athread memory-bound", KernelTime(m), want, 1e-12)

	// KernelTimeNoVec moves the same flops to the 1.45 GFlops/s scalar
	// rate: compute becomes 5.8/1.45 = 4x slower.
	v := exec.Cost{
		Backend:     exec.Athread,
		FlopsVector: 64 * 5_800_000_000,
		MaxCPEFlops: 5_800_000_000,
		Launches:    1,
	}
	want = SpawnOverhead + CPEVectorRate/CPERate
	close(t, "athread novec", KernelTimeNoVec(v), want, 1e-12)
}

// TestCAMSYPDHandComputed pins the whole-CAM SYPD conversion: with
// (86400/DtPhys) physics steps per simulated day, a simulated day costs
// stepsPerDay*PhysStepTime of wall, and SYPD = 86400/(365*simDayWall).
func TestCAMSYPDHandComputed(t *testing.T) {
	for _, ne := range []int{30, 120} {
		c := DefaultCAMConfig(ne)
		for _, v := range []CAMVersion{VersionOri, VersionOpenACC, VersionAthread} {
			for _, np := range []int{600, 5400, 28800} {
				stepWall := c.PhysStepTime(v, np)
				want := 86400 / (365 * (86400 / c.DtPhys) * stepWall)
				close(t, "SYPD", c.SYPD(v, np), want, 1e-12)
			}
		}
	}
	// The calibration anchor the model was fit to (§7.1): ne30 athread
	// at 5400 processes lands at 21.5 SYPD.
	close(t, "ne30 anchor", DefaultCAMConfig(30).SYPD(VersionAthread, 5400), 21.5, 0.05)
}

// TestPFlopsHandComputed pins the PFlops conversions: sustained rate is
// the step's total flops over its modeled wall time.
func TestPFlopsHandComputed(t *testing.T) {
	h := DefaultHOMMEConfig(256)
	for _, np := range []int{4096, 131072} {
		secs, flops := h.StepTime(np, true)
		// Total flops must be elements x per-element flops, independent
		// of the process count.
		close(t, "step flops", flops, float64(h.NElems())*h.FlopsPerElemStep(), 1e-12)
		close(t, "PFlops", h.PFlops(np, true), flops/secs/1e15, 1e-12)
	}

	// Weak scaling: per-process flops times nprocs over the step time.
	cfg := HOMMEConfig{Ne: 1, Np: 4, Nlev: 128, Qsize: 4, RemapFreq: 2, Dt: 1}
	w := WeakScaling(650, 155000, 128, 4)
	wantFlops := 650 * cfg.FlopsPerElemStep() * 155000
	close(t, "weak PFlops", w.PFlops, wantFlops/w.StepTime/1e15, 1e-12)

	// Efficiency at the baseline is exactly 1 by definition.
	close(t, "strong eff base", h.Efficiency(4096, 4096, true), 1.0, 1e-12)
	close(t, "weak eff base", WeakEfficiency(650, 512, 512, 128, 4), 1.0, 1e-12)
}
