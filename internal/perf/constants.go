// Package perf converts the architectural event counts produced by the
// execution backends (internal/exec) and the communication runtime
// (internal/halo, internal/mpirt) into modeled wall-clock time, and
// generates every scaling experiment of the paper's evaluation (Figures
// 6-8, Tables 1 and 3) from first-principles compute and communication
// volumes on a calibrated model of the Sunway TaihuLight.
//
// Absolute seconds off the real hardware are not meaningful; the model's
// purpose is to reproduce the *shape* of the paper's results — which
// backend wins each kernel and by roughly what factor, how efficiency
// falls with strong scaling and rises with per-process load, where the
// FV3/MPAS crossovers sit. Every constant below carries its provenance.
package perf

// SW26010 and TaihuLight machine constants.
//
// Provenance legend:
//
//	[spec]  published SW26010 / TaihuLight specification (paper §5, Fu et
//	        al. 2016 "The Sunway TaihuLight supercomputer").
//	[lit]   measured values from the Sunway micro-benchmarking literature
//	        (Xu et al., "Benchmarking SW26010", and the paper's own
//	        observations, e.g. MPE 2-10x slower than a Xeon core).
//	[cal]   calibrated here so the four backends land in the paper's
//	        reported ratio bands; documented in EXPERIMENTS.md.
const (
	// CPERate is the sustained scalar double-precision rate of one CPE,
	// flops/s. The CPE runs at 1.45 GHz with a dual-issue in-order
	// pipeline; scalar DP code sustains roughly one op per cycle. [lit]
	CPERate = 1.45e9

	// CPEVectorRate is the sustained 256-bit vector rate of one CPE:
	// 4 lanes, with FMA the peak is 11.6 GFlops; hand-vectorized
	// mul/add code sustains about half of peak. [lit]
	CPEVectorRate = 5.8e9

	// MPERate is the sustained rate of the management core running
	// legacy scalar code. The paper observes one MPE is 2-10x slower
	// than one Xeon E5-2680v3 core on the CAM kernels. [lit]
	MPERate = 0.55e9

	// IntelRate is the sustained rate of one Xeon E5-2680v3 core
	// (2.5 GHz Haswell) on compiler-vectorized stencil code. [lit]
	IntelRate = 3.0e9

	// CGMemBW is the memory bandwidth available to one core group: the
	// chip's 136.5 GB/s DDR3 split across 4 CGs, with ~85% achievable
	// through DMA. [spec, lit]
	CGMemBW = 29.0e9

	// MPEMemBW is the bandwidth one MPE achieves through its cache
	// hierarchy (no DMA): a small fraction of the CG's share. [lit]
	MPEMemBW = 6.0e9

	// IntelMemBW is the single-core STREAM bandwidth of the Xeon. [lit]
	IntelMemBW = 14.0e9

	// DMAIssue is the fixed cost of one DMA transfer descriptor, per
	// CPE, seconds. Fine-grained strided DMA pays this per row. [lit]
	DMAIssue = 150e-9

	// RegCommLatency is the per-message register-communication latency:
	// ~10 cycles at 1.45 GHz (§7.4 "within tens of cycles"). [spec]
	RegCommLatency = 7e-9

	// SpawnOverhead is the cost of launching one Athread parallel
	// region on the CPE cluster. [lit]
	SpawnOverhead = 2e-6

	// ACCRegionOverhead is the cost of entering one Sunway OpenACC
	// parallel region: the directive runtime re-marshals its argument
	// descriptors every launch, the "threading overhead" the paper
	// calls a huge issue for programs with no clear hot spots. [lit, cal]
	ACCRegionOverhead = 60e-6

	// Network (two-level fat tree, §5.1): MPI latency and per-process
	// bandwidth. Within a 256-node supernode the latency is lower. [lit]
	NetLatency      = 2.5e-6 // seconds, cross-supernode
	NetLatencyLocal = 1.0e-6 // seconds, within a supernode
	NetBWPerCG      = 2.75e9 // bytes/s per core group (11 GB/s node / 4)
	SupernodeCGs    = 1024   // 256 nodes x 4 CGs

	// Full system size: 40,960 nodes x 4 CGs x 65 cores. [spec]
	TotalCGs   = 163840
	CoresPerCG = 65
	TotalCores = TotalCGs * CoresPerCG // 10,649,600
)

// Power model (§5.1-5.2: the chip delivers >3 TFlops at ~10 GFlops/W;
// the full machine sustains 6.06 GFlops/W on Linpack).
const (
	// ChipPeakFlops is the SW26010 peak double-precision rate. [spec]
	ChipPeakFlops = 3.06e12
	// ChipWatts is the processor's power draw implied by its published
	// 10 GFlops/W efficiency. [spec]
	ChipWatts = ChipPeakFlops / 10e9
)
