package perf

import (
	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/mesh"
)

// Table 1 / Figure 5: per-kernel timings of the four execution
// strategies at the paper's dycore benchmark shape (6,144 processes,
// nlev=128, CAM's ~25 advected tracers; 64 elements per process for the
// ne256 grid). The costs come from running the functional simulator on a
// representative element block and scaling the extensive counters to the
// full per-process load — kernel costs are exactly linear in elements —
// then converting through the machine model.

// KernelRow is one Table 1 row: modeled per-process seconds per kernel
// invocation under each strategy.
type KernelRow struct {
	Name  string
	Times map[exec.Backend]float64
}

// Speedup returns the Figure 5 ratio: reference backend time over b's
// time (>1 means b is faster than the reference).
func (r KernelRow) Speedup(reference, b exec.Backend) float64 {
	return r.Times[reference] / r.Times[b]
}

// Table1Config shapes the kernel benchmark.
type Table1Config struct {
	Nlev         int
	Qsize        int
	ElemsPerProc int // per-process elements at the Table 1 scale
	SampleElems  int // elements actually simulated (costs scaled up)
}

// DefaultTable1Config matches the paper's setup: ne256 on 6,144
// processes = 64 elements per process, nlev 128, CAM tracer count.
func DefaultTable1Config() Table1Config {
	return Table1Config{Nlev: 128, Qsize: 25, ElemsPerProc: 64, SampleElems: 8}
}

// scaleCost multiplies the extensive counters by f (element-count
// scaling); launches and LDM peak are intensive.
func scaleCost(c exec.Cost, f int64) exec.Cost {
	c.FlopsScalar *= f
	c.FlopsVector *= f
	c.MaxCPEFlops *= f
	c.MemBytes *= f
	c.DMAOps *= f
	c.RegMsgs *= f
	return c
}

// Table1 runs all six kernels under all four strategies and returns the
// modeled per-process times in the paper's row order.
func Table1(cfg Table1Config) []KernelRow {
	m := mesh.New(2, 4) // 24 elements; the sample uses the first block
	elems := make([]int, cfg.SampleElems)
	for i := range elems {
		elems[i] = i
	}
	en := exec.NewEngine(m, elems, cfg.Nlev, cfg.Qsize)
	scale := int64(cfg.ElemsPerProc / cfg.SampleElems)

	dcfg := dycore.Config{Ne: 2, Np: 4, Nlev: cfg.Nlev, Qsize: cfg.Qsize,
		Dt: 60, RemapFreq: 2, HypervisSubcycle: 1, NuV: 1e15, NuS: 1e15}
	solver, err := dycore.NewSolver(dcfg)
	if err != nil {
		panic(err)
	}
	full := solver.NewState()
	solver.InitBaroclinicWave(full)
	// Local state over the sample elements.
	mkState := func() *dycore.State {
		st := dycore.NewState(cfg.SampleElems, 4, cfg.Nlev, cfg.Qsize)
		for le, ge := range elems {
			copy(st.U[le], full.U[ge])
			copy(st.V[le], full.V[ge])
			copy(st.T[le], full.T[ge])
			copy(st.DP[le], full.DP[ge])
			copy(st.Qdp[le], full.Qdp[ge])
			copy(st.Phis[le], full.Phis[ge])
		}
		// Tracers need structure for euler/remap to exercise real data.
		for le := range st.Qdp {
			for i := range st.Qdp[le] {
				st.Qdp[le][i] = st.DP[le][i%len(st.DP[le])] * 0.01 * float64(1+i%7)
			}
		}
		return st
	}

	h := dycore.NewHybridCoord(cfg.Nlev)
	npsq := 16
	allocF := func() [][]float64 {
		f := make([][]float64, cfg.SampleElems)
		for i := range f {
			f[i] = make([]float64, cfg.Nlev*npsq)
		}
		return f
	}

	rows := []KernelRow{
		{Name: "compute_and_apply_rhs", Times: map[exec.Backend]float64{}},
		{Name: "euler_step", Times: map[exec.Backend]float64{}},
		{Name: "vertical_remap", Times: map[exec.Backend]float64{}},
		{Name: "hypervis_dp1", Times: map[exec.Backend]float64{}},
		{Name: "hypervis_dp2", Times: map[exec.Backend]float64{}},
		{Name: "biharmonic_dp3d", Times: map[exec.Backend]float64{}},
	}
	for _, b := range exec.Backends {
		st := mkState()
		out := st.Clone()
		cost := en.ComputeAndApplyRHS(b, st, st, out, 60)
		rows[0].Times[b] = KernelTime(scaleCost(cost, scale))

		cost = en.EulerStep(b, st.Clone(), 60)
		rows[1].Times[b] = KernelTime(scaleCost(cost, scale))

		cost = en.VerticalRemap(b, h, st.Clone())
		rows[2].Times[b] = KernelTime(scaleCost(cost, scale))

		lu, lv, lt, lp := allocF(), allocF(), allocF(), allocF()
		cost = en.HypervisDP1(b, st, lu, lv, lt, lp)
		rows[3].Times[b] = KernelTime(scaleCost(cost, scale))
		cost = en.HypervisDP2(b, lu, lv, lt, lp, st, 60, 1e15, 1e15)
		rows[4].Times[b] = KernelTime(scaleCost(cost, scale))

		bout := allocF()
		cost = en.BiharmonicDP3D(b, st.DP, bout)
		rows[5].Times[b] = KernelTime(scaleCost(cost, scale))
	}
	return rows
}
