package perf

import (
	"math"
	"testing"

	"swcam/internal/exec"
)

func TestKernelTimePositiveAndOrdered(t *testing.T) {
	// A compute-heavy cost: MPE must be slower than Intel; a vectorized
	// CPE run must beat both.
	mk := func(b exec.Backend, scalar, vector, maxCPE, bytes int64) exec.Cost {
		return exec.Cost{Backend: b, FlopsScalar: scalar, FlopsVector: vector,
			MaxCPEFlops: maxCPE, MemBytes: bytes, Launches: 1}
	}
	flops := int64(1e9)
	intel := KernelTime(mk(exec.Intel, flops, 0, flops, 1e8))
	mpe := KernelTime(mk(exec.MPE, flops, 0, flops, 1e8))
	ath := KernelTime(mk(exec.Athread, 0, flops, flops/64, 1e8))
	if intel <= 0 || mpe <= 0 || ath <= 0 {
		t.Fatal("non-positive kernel time")
	}
	if mpe <= intel {
		t.Errorf("MPE (%g) not slower than Intel (%g)", mpe, intel)
	}
	if ratio := mpe / intel; ratio < 2 || ratio > 10 {
		t.Errorf("MPE/Intel ratio %.1f outside the paper's 2-10x band", ratio)
	}
	if ath >= intel {
		t.Errorf("vectorized CPE cluster (%g) not faster than one Intel core (%g)", ath, intel)
	}
}

func TestKernelTimeMemoryBound(t *testing.T) {
	// A byte-heavy cost must be bandwidth-limited, not flop-limited.
	c := exec.Cost{Backend: exec.Athread, FlopsVector: 1e6, MaxCPEFlops: 1e6 / 64,
		MemBytes: 1e9, Launches: 1}
	got := KernelTime(c)
	wantAtLeast := 1e9 / CGMemBW
	if got < wantAtLeast {
		t.Errorf("time %g below bandwidth bound %g", got, wantAtLeast)
	}
}

func TestACCLaunchOverheadVisible(t *testing.T) {
	// Tiny kernels: the OpenACC region overhead must dominate.
	c := exec.Cost{Backend: exec.OpenACC, FlopsScalar: 1000, MaxCPEFlops: 100, Launches: 1}
	if got := KernelTime(c); got < ACCRegionOverhead {
		t.Errorf("ACC kernel time %g below region overhead", got)
	}
}

func TestNetTime(t *testing.T) {
	small := NetTime(8, true)
	if small < NetLatencyLocal {
		t.Error("message faster than latency")
	}
	big := NetTime(1<<20, false)
	if big < float64(1<<20)/NetBWPerCG {
		t.Error("bandwidth term missing")
	}
	if NetTime(1024, true) >= NetTime(1024, false) {
		t.Error("local messages should be cheaper")
	}
}

func TestExchangeOverlapHidesComm(t *testing.T) {
	inner := 1e-3
	noOv := ExchangeTime(8, 1<<16, false, false, inner)
	ov := ExchangeTime(8, 1<<16, false, true, inner)
	if ov >= noOv {
		t.Errorf("overlap (%g) not cheaper than sequential (%g)", ov, noOv)
	}
	// When compute dominates, the overlapped exchange costs ~compute.
	if math.Abs(ov-inner)/inner > 0.5 {
		t.Errorf("overlapped exchange %g far from inner compute %g", ov, inner)
	}
	if ExchangeTime(0, 0, true, false, inner) != inner {
		t.Error("no neighbours should cost exactly the compute")
	}
}

// Figure 6 shape assertions against the paper's published anchors.
func TestFig6CAMAnchors(t *testing.T) {
	c := DefaultCAMConfig(30)
	ath5400 := c.SYPD(VersionAthread, 5400)
	if ath5400 < 21.5*0.85 || ath5400 > 21.5*1.15 {
		t.Errorf("ne30 athread @5400 = %.2f SYPD, paper 21.5 (+-15%%)", ath5400)
	}
	for _, np := range []int{216, 600, 900, 1350, 5400} {
		ori := c.SYPD(VersionOri, np)
		acc := c.SYPD(VersionOpenACC, np)
		ath := c.SYPD(VersionAthread, np)
		if !(ori < acc && acc < ath) {
			t.Errorf("np=%d: ordering violated: ori %.2f acc %.2f ath %.2f", np, ori, acc, ath)
		}
		if r := acc / ori; r < 1.3 || r > 1.8 {
			t.Errorf("np=%d: openacc/ori = %.2f, paper band 1.4-1.5", np, r)
		}
		if r := ath / acc; r < 1.05 || r > 1.6 {
			t.Errorf("np=%d: athread/openacc = %.2f, paper band 1.1-1.4", np, r)
		}
	}
	// SYPD must rise monotonically with process count over Fig 6's range.
	prev := 0.0
	for _, np := range []int{216, 600, 900, 1350, 5400} {
		s := c.SYPD(VersionAthread, np)
		if s <= prev {
			t.Errorf("SYPD not increasing at np=%d", np)
		}
		prev = s
	}

	c120 := DefaultCAMConfig(120)
	acc28800 := c120.SYPD(VersionOpenACC, 28800)
	if acc28800 < 3.4*0.8 || acc28800 > 3.4*1.2 {
		t.Errorf("ne120 openacc @28800 = %.2f SYPD, paper 3.4 (+-20%%)", acc28800)
	}
}

// Figure 7 shape: both problem sizes lose efficiency under strong
// scaling; the larger problem (ne1024) retains much more.
func TestFig7StrongScalingShape(t *testing.T) {
	h256 := DefaultHOMMEConfig(256)
	h1024 := DefaultHOMMEConfig(1024)

	prevPF := 0.0
	for _, np := range []int{4096, 8192, 16384, 32768, 65536, 131072} {
		pf := h256.PFlops(np, true)
		if pf <= prevPF {
			t.Errorf("ne256 PFlops not increasing at np=%d", np)
		}
		prevPF = pf
	}
	eff256 := h256.Efficiency(131072, 4096, true)
	eff1024 := h1024.Efficiency(131072, 8192, true)
	if eff256 >= eff1024 {
		t.Errorf("ne256 efficiency (%.3f) should be far below ne1024 (%.3f)", eff256, eff1024)
	}
	// Bands around the paper's 21.7%% and 51.2%% (model tolerance 2x).
	if eff256 < 0.217/2 || eff256 > 0.217*2 {
		t.Errorf("ne256 eff @131072 = %.3f, paper 0.217 (x/2)", eff256)
	}
	if eff1024 < 0.512/2 || eff1024 > 0.512*1.5 {
		t.Errorf("ne1024 eff @131072 = %.3f, paper 0.512", eff1024)
	}
	// PFlops at the endpoints within 2x of the paper's labels.
	if pf := h256.PFlops(4096, true); pf < 0.07/2 || pf > 0.07*2 {
		t.Errorf("ne256 @4096 = %.3f PFlops, paper 0.07", pf)
	}
	if pf := h1024.PFlops(131072, true); pf < 1.76/2 || pf > 1.76*1.5 {
		t.Errorf("ne1024 @131072 = %.3f PFlops, paper 1.76", pf)
	}
}

// Figure 8 shape: weak scaling holds high efficiency, larger per-process
// loads scale better, and the 650-element full-machine run sustains
// ~3.3 PFlops.
func TestFig8WeakScalingShape(t *testing.T) {
	for _, e := range []int{48, 192, 768} {
		eff := WeakEfficiency(e, 131072, 512, 128, 4)
		if eff < 0.85 || eff > 1.0 {
			t.Errorf("weak eff (e=%d) @131072 = %.3f, paper band 0.88-0.93", e, eff)
		}
	}
	if e48, e768 := WeakEfficiency(48, 131072, 512, 128, 4),
		WeakEfficiency(768, 131072, 512, 128, 4); e48 >= e768 {
		t.Errorf("bigger per-process load should scale better: 48->%.3f, 768->%.3f", e48, e768)
	}
	full := WeakScaling(650, 155000, 128, 4)
	if full.PFlops < 3.3*0.85 || full.PFlops > 3.3*1.15 {
		t.Errorf("650 elems @155000 = %.2f PFlops, paper 3.3 (+-15%%)", full.PFlops)
	}
	// 10,075,000 cores = 155,000 CGs x 65 cores.
	if cores := 155000 * CoresPerCG; cores != 10075000 {
		t.Errorf("core count arithmetic: %d", cores)
	}
}

func TestMachineConstantsSanity(t *testing.T) {
	if TotalCores != 10649600 {
		t.Errorf("TaihuLight core count %d, spec 10,649,600", TotalCores)
	}
	if CPEVectorRate <= CPERate {
		t.Error("vector rate must exceed scalar rate")
	}
	if MPERate >= IntelRate {
		t.Error("the paper's premise: MPE slower than a Xeon core")
	}
	if 64*CPEVectorRate <= IntelRate {
		t.Error("a full CPE cluster must beat one Xeon core")
	}
}

func TestCAMVersionString(t *testing.T) {
	if VersionOri.String() != "ori" || VersionOpenACC.String() != "openacc" ||
		VersionAthread.String() != "athread" {
		t.Error("version names must match Figure 6's legend")
	}
	if CAMVersion(9).String() != "?" {
		t.Error("unknown version")
	}
}

func TestHOMMEConfigBasics(t *testing.T) {
	h := DefaultHOMMEConfig(256)
	if h.NElems() != 393216 {
		t.Errorf("ne256 elements = %d, Table 2 says 393,216", h.NElems())
	}
	if h.FlopsPerElemStep() <= 0 || h.BytesPerElemStep() <= 0 {
		t.Error("non-positive per-element costs")
	}
	// Overlap must never be slower than no overlap.
	for _, np := range []int{4096, 131072} {
		tOv, _ := h.StepTime(np, true)
		tNo, _ := h.StepTime(np, false)
		if tOv > tNo {
			t.Errorf("np=%d: overlap slower (%g > %g)", np, tOv, tNo)
		}
	}
}

// Table 1 / Figure 5 band assertions: who wins each kernel, by roughly
// the paper's factors. Uses a reduced sample (2 elements scaled to 64)
// to keep the functional simulation fast; costs are linear in elements.
func TestTable1Fig5Bands(t *testing.T) {
	cfg := DefaultTable1Config()
	cfg.SampleElems = 8
	rows := Table1(cfg)
	if len(rows) != 6 {
		t.Fatalf("Table 1 has %d rows", len(rows))
	}
	byName := map[string]KernelRow{}
	for _, r := range rows {
		byName[r.Name] = r
		for b, tm := range r.Times {
			if tm <= 0 {
				t.Fatalf("%s/%v: non-positive time", r.Name, b)
			}
		}
		// MPE is 2-11x slower than one Intel core on every kernel.
		slow := r.Times[exec.MPE] / r.Times[exec.Intel]
		if slow < 2 || slow > 11 {
			t.Errorf("%s: MPE %0.1fx slower than Intel, paper band 2-11x", r.Name, slow)
		}
		// Athread beats Intel on every kernel, by 2-46x.
		sp := r.Speedup(exec.Intel, exec.Athread)
		if sp < 2 || sp > 46 {
			t.Errorf("%s: Athread %0.1fx vs Intel, paper band ~7-46x (remap lower)", r.Name, sp)
		}
		// Athread always beats OpenACC.
		if r.Speedup(exec.OpenACC, exec.Athread) < 2 {
			t.Errorf("%s: Athread should clearly beat OpenACC", r.Name)
		}
	}
	// The dependency-heavy kernel loses under OpenACC (paper: 6x slower
	// than Intel), while euler_step gains ~1.5x.
	if r := byName["compute_and_apply_rhs"]; r.Speedup(exec.Intel, exec.OpenACC) > 0.5 {
		t.Errorf("rhs under OpenACC should lose to Intel, got %.2fx",
			r.Speedup(exec.Intel, exec.OpenACC))
	}
	if r := byName["euler_step"]; r.Speedup(exec.Intel, exec.OpenACC) < 1.0 ||
		r.Speedup(exec.Intel, exec.OpenACC) > 2.5 {
		t.Errorf("euler under OpenACC = %.2fx vs Intel, paper 1.56x",
			r.Speedup(exec.Intel, exec.OpenACC))
	}
	// Peak Athread-over-OpenACC gain lands in the tens (paper: up to 50x).
	maxGain := 0.0
	for _, r := range rows {
		if g := r.Speedup(exec.OpenACC, exec.Athread); g > maxGain {
			maxGain = g
		}
	}
	if maxGain < 20 || maxGain > 150 {
		t.Errorf("peak Athread/OpenACC gain = %.0fx, paper 'up to 50x'", maxGain)
	}
}

// Table 3 band assertions: our SE core beats FV3 beats MPAS at both
// NGGPS workloads, and the margin widens at 3 km (paper: 1.31x/2.79x at
// 12.5 km, 2.11x/4.51x at 3 km).
func TestTable3Bands(t *testing.T) {
	cases := Table3()
	if len(cases) != 2 {
		t.Fatalf("Table 3 has %d cases", len(cases))
	}
	ratios := make([][]float64, 2)
	for i, c := range cases {
		if len(c.Rows) != 3 || c.Rows[0].Name != "our work" {
			t.Fatalf("case %d malformed", i)
		}
		base := c.Rows[0].RunTime
		for _, r := range c.Rows {
			if r.RunTime <= 0 {
				t.Fatalf("%s/%s: non-positive runtime", c.Label, r.Name)
			}
			ratios[i] = append(ratios[i], r.RunTime/base)
		}
		if !(ratios[i][1] > 1 && ratios[i][2] > ratios[i][1]) {
			t.Errorf("%s: ordering violated: %v", c.Label, ratios[i])
		}
	}
	// 12.5 km bands.
	if r := ratios[0][1]; r < 1.1 || r > 1.8 {
		t.Errorf("FV3 @12.5km = %.2fx ours, paper 1.31x", r)
	}
	if r := ratios[0][2]; r < 2.0 || r > 3.5 {
		t.Errorf("MPAS @12.5km = %.2fx ours, paper 2.79x", r)
	}
	// 3 km bands.
	if r := ratios[1][1]; r < 1.4 || r > 2.6 {
		t.Errorf("FV3 @3km = %.2fx ours, paper 2.11x", r)
	}
	if r := ratios[1][2]; r < 3.0 || r > 5.5 {
		t.Errorf("MPAS @3km = %.2fx ours, paper 4.51x", r)
	}
	// The gap widens at higher resolution for both baselines.
	if ratios[1][1] <= ratios[0][1] || ratios[1][2] <= ratios[0][2] {
		t.Errorf("margins should widen at 3 km: 12.5km %v vs 3km %v", ratios[0], ratios[1])
	}
	// The anchor itself (catches calibration regressions).
	if math.Abs(cases[0].Rows[0].RunTime-2.712) > 1e-9 {
		t.Errorf("our 12.5 km entry = %v, anchored to 2.712 s", cases[0].Rows[0].RunTime)
	}
}

// The paper's 750-m headline: the 650-elements-per-process full-machine
// run IS the ne4096 grid — 100,663,296 elements over 155,000 processes
// is 649.4 elements each. Verify the arithmetic that ties Figure 8's
// flagship point to Table 2's ne4096 row and the 3.3 PFlops claim.
func TestUltraHighRes750m(t *testing.T) {
	const ne4096Elems = 6 * 4096 * 4096
	if ne4096Elems != 100663296 {
		t.Fatalf("ne4096 = %d elements", ne4096Elems)
	}
	perProc := float64(ne4096Elems) / 155000
	if perProc < 645 || perProc > 655 {
		t.Errorf("ne4096 over 155,000 processes = %.1f elements each, expected ~650", perProc)
	}
	// Grid spacing: ~3000/ne km -> ne4096 ~ 0.73 km ("750-m resolution").
	dx := 3000.0 / 4096 * 1000
	if dx < 700 || dx > 800 {
		t.Errorf("ne4096 spacing %.0f m, paper says 750 m", dx)
	}
	pf := WeakScaling(650, 155000, 128, 4).PFlops
	if pf < 2.8 || pf > 3.8 {
		t.Errorf("750-m full-machine run = %.2f PFlops, paper 3.3", pf)
	}
}

// Vectorization ablation: disabling the vector unit must slow the
// Athread kernels whenever they are compute-bound, and never speed them
// up. (Memory-bound kernels shift less — also informative.)
func TestVectorizationAblation(t *testing.T) {
	// Compute-bound cost: the scalar fallback must pay the full vector
	// speedup.
	c := exec.Cost{Backend: exec.Athread, FlopsVector: 1e9, MaxCPEFlops: 1e9 / 64, Launches: 1}
	tv := KernelTime(c)
	ts := KernelTimeNoVec(c)
	if ts <= tv {
		t.Errorf("scalar fallback (%g) not slower than vectorized (%g)", ts, tv)
	}
	if ratio := ts / tv; ratio < 2 || ratio > 6 {
		t.Errorf("vector speedup %0.1fx outside the 256-bit unit's plausible band", ratio)
	}
	// Memory-bound cost: disabling the vector unit barely matters — the
	// paper's insight that bandwidth, not arithmetic, limits these
	// kernels once the data movement is wrong.
	mb := exec.Cost{Backend: exec.Athread, FlopsVector: 1e6, MaxCPEFlops: 1e6 / 64,
		MemBytes: 1e9, Launches: 1}
	if KernelTimeNoVec(mb)/KernelTime(mb) > 1.05 {
		t.Error("memory-bound kernel should be insensitive to vectorization")
	}
}

// The Table 1 generator scales an 8-element sample to the 64-element
// per-process load assuming kernel costs are linear in elements. Verify
// the assumption: doubling the sample must leave the scaled times
// within a few percent.
func TestTable1SampleLinearity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the functional simulator twice")
	}
	small := DefaultTable1Config()
	small.SampleElems = 8
	big := DefaultTable1Config()
	big.SampleElems = 16
	rs := Table1(small)
	rb := Table1(big)
	for i := range rs {
		for _, b := range exec.Backends {
			a, c := rs[i].Times[b], rb[i].Times[b]
			if rel := math.Abs(a-c) / c; rel > 0.05 {
				t.Errorf("%s/%v: sample-size dependence %.1f%% (8 elems: %g, 16 elems: %g)",
					rs[i].Name, b, 100*rel, a, c)
			}
		}
	}
}

// Power model anchors: Linpack's 93 PFlops on the full machine is
// 6.06 GFlops/W by construction; the 3.3-PFlops dycore run on the
// 155,000-CG partition lands near 0.23 GFlops/W — the typical 20-30x
// gap between Linpack and memory-bound real applications.
func TestPowerEfficiency(t *testing.T) {
	if e := PowerEfficiency(93, TotalCGs); math.Abs(e-6.06) > 0.01 {
		t.Errorf("Linpack anchor = %.2f GFlops/W, want 6.06", e)
	}
	app := PowerEfficiency(3.3, 155000)
	if app < 0.1 || app > 0.6 {
		t.Errorf("dycore run = %.2f GFlops/W, expected a few tenths", app)
	}
	if PowerEfficiency(1, 1024) <= PowerEfficiency(1, 2048) {
		t.Error("same flops on more hardware must be less efficient")
	}
}
