// The column-physics driver shared by the serial Model and the
// distributed ParallelJob: a work-stealing pool over elements, with the
// reduction merged in fixed element order so the result is bit-identical
// to serial for every worker count and every steal schedule.
//
// Chunk = one element (Np*Np columns). That granularity is coarse enough
// to amortize deque traffic and fine enough that convection triggering
// over one storm-track element cannot serialize a worker's whole range —
// idle workers steal the remaining elements. Each worker owns one pooled
// physics.Column (and each Column owns its scheme scratch), so the
// steady-state step allocates nothing.
//
// Determinism: the pool decides only *which worker* runs an element.
// Every element's columns are stepped in ascending node order by exactly
// one worker, partials land in per-element slots, and the merge folds
// those slots in ascending element order — the same association the
// serial path uses, hence the same bits.
package core

import (
	"math"

	"swcam/internal/dycore"
	"swcam/internal/mesh"
	"swcam/internal/physics"
)

// minElemsPerPhysWorker is the adaptive downshift threshold: a worker
// needs at least this many elements of work before the goroutine and
// steal traffic pays for itself on a toy grid.
const minElemsPerPhysWorker = 2

// resolvePhysWorkers maps a requested worker count (<= 0 = auto) to the
// pool size for a grid of nelems elements, downshifting so no
// configuration runs with less than minElemsPerPhysWorker elements per
// worker (1 worker = the serial fast path).
func resolvePhysWorkers(requested, nelems int) int {
	w := requested
	if w <= 0 {
		w = physics.DefaultStealWorkers()
	}
	if cap := nelems / minElemsPerPhysWorker; w > cap {
		w = cap
	}
	if w < 1 {
		w = 1
	}
	return w
}

// physPartial is one element's reduction contribution.
type physPartial struct {
	precip float64 // quadrature-weighted accumulated precipitation
	area   float64 // quadrature weight sum
}

// physStepFn advances the physics of one column (element ei, node n)
// using the worker-owned column buffer, returning its weighted precip
// and weight. Implemented by Model.stepColumn and the rank-local
// equivalent in ParallelJob.
type physStepFn func(col *physics.Column, ei, n int, dt float64) (precipW, area float64)

// physRunner executes a physics step over nelems elements on a steal
// pool and merges the per-element partials deterministically.
type physRunner struct {
	pool  *physics.StealPool
	cols  []*physics.Column // one per worker: scratch never shared
	parts []physPartial     // one slot per element, merged in order
	npsq  int
	dt    float64 // set by run; read by the prebuilt chunk closure
	step  physStepFn
	fn    func(w, ei int) // built once so steady-state runs don't allocate
	hook  func(w, ei int) // test-only chunk-entry hook (chaos injection)
}

// newPhysRunner builds a runner for a grid of nelems elements with npsq
// columns each. requested <= 0 selects the machine default; the count is
// then downshifted for tiny grids (resolvePhysWorkers). The seed only
// rotates the pool's victim-scan order — results are identical for every
// seed, which the determinism sweep exploits.
func newPhysRunner(requested int, seed uint64, nelems, npsq, nlev int, step physStepFn) *physRunner {
	workers := resolvePhysWorkers(requested, nelems)
	r := &physRunner{
		pool:  physics.NewStealPool(workers, seed),
		cols:  make([]*physics.Column, workers),
		parts: make([]physPartial, nelems),
		npsq:  npsq,
		step:  step,
	}
	for w := range r.cols {
		r.cols[w] = physics.NewColumn(nlev)
	}
	r.fn = func(w, ei int) {
		if r.hook != nil {
			r.hook(w, ei)
		}
		col := r.cols[w]
		var ps, as float64
		for n := 0; n < r.npsq; n++ {
			pw, a := r.step(col, ei, n, r.dt)
			ps += pw
			as += a
		}
		r.parts[ei] = physPartial{ps, as}
	}
	return r
}

// workers reports the resolved pool size.
func (r *physRunner) workers() int { return r.pool.Workers() }

// surfaceT is the prescribed SST profile: sst at the equator, cooling
// poleward with cos^2(lat).
func surfaceT(lat, sst, sstDelta float64) float64 {
	c := math.Cos(lat)
	return sst - sstDelta*(1-c*c)
}

// stepOneColumn loads the column at (local element le, node n) of st
// into the worker-owned buffer, steps it through the suite, stores it
// back, and returns the quadrature-weighted precipitation and weight.
// e is the mesh element backing le (global for the serial model, the
// plan's mapping for a rank). This is THE column step — serial model
// and every rank run these exact lines, so backends and worker counts
// cannot diverge here.
func stepOneColumn(suite *physics.Suite, st *dycore.State, e *mesh.Element,
	np, nlev, qsize int, col *physics.Column, le, n int, dt, sst, sstDelta float64) (precipW, area float64) {
	npsq := np * np

	ps := dycore.PTop
	for k := 0; k < nlev; k++ {
		col.DP[k] = st.DP[le][k*npsq+n]
		ps += col.DP[k]
	}
	p := dycore.PTop
	for k := 0; k < nlev; k++ {
		i := k*npsq + n
		col.P[k] = p + col.DP[k]/2
		p += col.DP[k]
		col.T[k] = st.T[le][i]
		col.U[k] = st.U[le][i]
		col.V[k] = st.V[le][i]
		col.Qv[k], col.Qc[k], col.Qr[k] = 0, 0, 0
		if qsize > 0 {
			col.Qv[k] = st.QdpAt(le, 0)[i] / col.DP[k]
		}
		if qsize > 1 {
			col.Qc[k] = st.QdpAt(le, 1)[i] / col.DP[k]
		}
		if qsize > 2 {
			col.Qr[k] = st.QdpAt(le, 2)[i] / col.DP[k]
		}
	}
	col.Ps = ps
	col.Lat = e.Lat[n]
	col.Ts = surfaceT(e.Lat[n], sst, sstDelta)
	col.Precip = 0

	suite.Step(col, dt)

	for k := 0; k < nlev; k++ {
		i := k*npsq + n
		st.T[le][i] = col.T[k]
		st.U[le][i] = col.U[k]
		st.V[le][i] = col.V[k]
		if qsize > 0 {
			st.QdpAt(le, 0)[i] = col.Qv[k] * col.DP[k]
		}
		if qsize > 1 {
			st.QdpAt(le, 1)[i] = col.Qc[k] * col.DP[k]
		}
		if qsize > 2 {
			st.QdpAt(le, 2)[i] = col.Qr[k] * col.DP[k]
		}
	}
	return col.Precip * e.SphereMP[n], e.SphereMP[n]
}

// run steps the physics of every element and returns the fixed-order
// merged (weighted precip, weight) totals. The division into a mean is
// the caller's business: the serial Model divides locally, the parallel
// job first reduces partials canonically across ranks.
func (r *physRunner) run(dt float64) (precip, area float64) {
	r.dt = dt
	r.pool.Run(len(r.parts), r.fn)
	for i := range r.parts {
		precip += r.parts[i].precip
		area += r.parts[i].area
	}
	return precip, area
}
