package core

import (
	"testing"

	"swcam/internal/exec"
	"swcam/internal/mesh"
)

// TestPartitionOrderingBitIdentity is the SFC differential demanded by
// the partition upgrade: the trajectory must be bit-identical (FNV-64
// over every float64 of the gathered state) no matter which curve the
// elements were chopped along — Hilbert, Morton, or whatever
// mesh.Partition picked — across backends and rank counts. This is the
// property that makes the min-cut curve selection safe to ship: layout
// choices move elements between ranks but can never move a bit of
// physics, because the canonical per-copy DSS and the canonical rank-0
// mass fixer erase partition shape from the arithmetic.
func TestPartitionOrderingBitIdentity(t *testing.T) {
	cfg := testDycoreCfg(3, 6, 2)
	const (
		seed  = 20260808
		steps = 3
	)
	global, err := randomizedGlobal(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := mesh.New(cfg.Ne, cfg.Np)

	chop := func(order []int, nranks int) []int {
		rankOf := make([]int, len(order))
		base, extra := len(order)/nranks, len(order)%nranks
		pos := 0
		for r := 0; r < nranks; r++ {
			size := base
			if r < extra {
				size++
			}
			for k := 0; k < size; k++ {
				rankOf[order[pos]] = r
				pos++
			}
		}
		return rankOf
	}

	for _, b := range []exec.Backend{exec.Intel, exec.Athread} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			for _, nranks := range []int{2, 3, 4} {
				minCut, err := m.Partition(nranks)
				if err != nil {
					t.Fatal(err)
				}
				layouts := []struct {
					name   string
					rankOf []int
				}{
					{"min-cut", minCut},
					{"hilbert", chop(m.HilbertOrder(), nranks)},
					{"morton", chop(m.SFCOrder(), nranks)},
				}
				var refHash uint64
				for li, lay := range layouts {
					job, err := newJobWithPartition(cfg, b, true, nranks, lay.rankOf)
					if err != nil {
						t.Fatal(err)
					}
					local := job.Scatter(global)
					job.Run(local, steps)
					h := hashGlobal(job.Gather(local))
					if li == 0 {
						refHash = h
						continue
					}
					if h != refHash {
						t.Errorf("nranks=%d: %s layout hash %016x != %s reference %016x",
							nranks, lay.name, h, layouts[0].name, refHash)
					}
				}
			}
		})
	}
}
