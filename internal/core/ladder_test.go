package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"swcam/internal/dycore"
	"swcam/internal/mpirt"
)

// fillStateFields walks every field of dycore.State by reflection and
// fills the float64 payloads with pseudorandom values. The reflection
// walk is deliberate: a field added to State later must either be
// handled here or fail the test loudly, so the snapshot/restore and
// wire-codec round-trip properties below can never silently skip it.
func fillStateFields(t *testing.T, st *dycore.State, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	v := reflect.ValueOf(st).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := v.Type().Field(i).Name
		switch f.Kind() {
		case reflect.Int:
			// dims, set by NewState
		case reflect.Slice:
			ff, ok := f.Interface().([][]float64)
			if !ok {
				t.Fatalf("dycore.State field %s has unhandled slice type %s — extend the round-trip tests", name, f.Type())
			}
			for e := range ff {
				for j := range ff[e] {
					ff[e][j] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(40)-20)
				}
			}
		default:
			t.Fatalf("dycore.State field %s has unhandled kind %s — extend the round-trip tests", name, f.Kind())
		}
	}
}

// diffStateFields compares two states bitwise, again by reflection over
// every State field.
func diffStateFields(t *testing.T, got, want *dycore.State, context string) {
	t.Helper()
	gv := reflect.ValueOf(got).Elem()
	wv := reflect.ValueOf(want).Elem()
	for i := 0; i < gv.NumField(); i++ {
		name := gv.Type().Field(i).Name
		if gv.Field(i).Kind() != reflect.Slice {
			continue
		}
		gf := gv.Field(i).Interface().([][]float64)
		wf := wv.Field(i).Interface().([][]float64)
		if len(gf) != len(wf) {
			t.Fatalf("%s: field %s has %d elements, want %d", context, name, len(gf), len(wf))
		}
		for e := range gf {
			for j := range gf[e] {
				if math.Float64bits(gf[e][j]) != math.Float64bits(wf[e][j]) {
					t.Fatalf("%s: field %s[%d][%d] = %x, want %x (not bit-identical)",
						context, name, e, j, math.Float64bits(gf[e][j]), math.Float64bits(wf[e][j]))
				}
			}
		}
	}
}

// The snapshot/restore round-trip property: restore(snapshot(x))
// reproduces every State field bit-for-bit, including non-finite values
// and denormals, and including fields the checkpoint CRC covers.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	st := dycore.NewState(3, 4, 5, 2)
	fillStateFields(t, st, 7)
	// Plant awkward bit patterns a tolerance-based comparison would miss.
	st.U[0][0] = math.Copysign(0, -1) // negative zero
	st.T[1][2] = math.SmallestNonzeroFloat64
	st.DP[2][1] = math.MaxFloat64

	snap := snapshot([]*dycore.State{st})
	mutated := []*dycore.State{st}
	fillStateFields(t, st, 99) // clobber everything
	restore(mutated, snap)
	diffStateFields(t, st, snap[0], "restore(snapshot(x))")
}

// The buddy-snapshot wire codec round-trip: Decode(Encode(x)) is
// bit-identical across every field and preserves the step.
func TestRankSnapshotWireRoundTrip(t *testing.T) {
	st := dycore.NewState(2, 4, 3, 1)
	fillStateFields(t, st, 11)
	st.Phis[0][0] = math.Copysign(0, -1)

	enc, err := EncodeRankSnapshot(st, 42)
	if err != nil {
		t.Fatal(err)
	}
	dec, step, err := DecodeRankSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if step != 42 {
		t.Errorf("decoded step %d, want 42", step)
	}
	diffStateFields(t, dec, st, "Decode(Encode(x))")

	// A flipped payload bit must be caught by the checkpoint CRC, and the
	// failure must be classified as a buddy-snapshot error.
	bad := append([]float64(nil), enc...)
	bad[len(bad)/2] = math.Float64frombits(math.Float64bits(bad[len(bad)/2]) ^ 1)
	if _, _, err := DecodeRankSnapshot(bad); !errors.Is(err, ErrBuddySnapshot) {
		t.Errorf("corrupted payload decoded without ErrBuddySnapshot: %v", err)
	}
}

// runLadderCase drives one supervised ladder run over the shared chaos
// scenario and hands back everything the table tests assert on.
func runLadderCase(t *testing.T, cs *chaosSetup, plan *mpirt.FaultPlan, spares, maxRetries int) (ResilientStats, error, *ResilientJob) {
	t.Helper()
	job := cs.newJob(t)
	job.Faults = plan
	job.RecvTimeout = 2 * time.Second
	rj := NewResilientJob(job)
	rj.Mode = ModeLadder
	rj.CheckpointEvery = 2
	rj.MaxRetries = maxRetries
	rj.Spares = spares
	local := job.Scatter(cs.global)
	rs, err := rj.Run(local, cs.steps)
	return rs, err, rj
}

// The escalation table: each fault pattern must resolve on exactly the
// rung the ladder design assigns it — retransmission for message
// faults, localized rebuild for a transient kill, respawn/shrink for a
// persistent kill (with and without spares), and give-up when the
// budget is zero. Every recovering case must also land bit-identical.
func TestLadderEscalation(t *testing.T) {
	cs := newChaosSetup(t)
	cases := []struct {
		name        string
		plan        func() *mpirt.FaultPlan
		spares      int
		maxRetries  int
		wantErr     bool
		wantRetx    bool // rung 1 recovered something
		wantLocal   int
		wantRespawn int
		wantShrink  int
		wantRoll    int
		wantRanks   int // NRanks after the run
		wantRank    int // attributed rank on the first rank-kinded event (-1 = none expected)
	}{
		{
			name: "retry-absorbs-corrupt",
			plan: func() *mpirt.FaultPlan {
				return mpirt.NewFaultPlan(cs.nranks).
					Add(mpirt.Fault{Rank: 0, AfterOp: cs.ops[0] / 2, Kind: mpirt.CorruptMsg})
			},
			maxRetries: 4, wantRetx: true, wantRanks: cs.nranks, wantRank: -1,
		},
		{
			name: "retry-absorbs-drop",
			plan: func() *mpirt.FaultPlan {
				return mpirt.NewFaultPlan(cs.nranks).
					Add(mpirt.Fault{Rank: 2, AfterOp: cs.ops[2] / 2, Kind: mpirt.DropMsg})
			},
			maxRetries: 4, wantRetx: true, wantRanks: cs.nranks, wantRank: -1,
		},
		{
			name: "localized-kill",
			plan: func() *mpirt.FaultPlan {
				return mpirt.NewFaultPlan(cs.nranks).
					Add(mpirt.Fault{Rank: 1, AfterOp: cs.ops[1] / 2, Kind: mpirt.KillRank})
			},
			maxRetries: 4, wantLocal: 1, wantRanks: cs.nranks, wantRank: 1,
		},
		{
			name: "respawn-persistent-kill",
			plan: func() *mpirt.FaultPlan {
				return mpirt.NewFaultPlan(cs.nranks).
					Add(mpirt.Fault{Rank: 1, AfterOp: cs.ops[1] / 2, Kind: mpirt.KillRank}).
					Add(mpirt.Fault{Rank: 1, AfterOp: cs.ops[1]/2 + 10, Kind: mpirt.KillRank})
			},
			spares: 1, maxRetries: 4,
			wantLocal: 1, wantRespawn: 1, wantRanks: cs.nranks, wantRank: 1,
		},
		{
			name: "shrink-persistent-kill",
			plan: func() *mpirt.FaultPlan {
				return mpirt.NewFaultPlan(cs.nranks).
					Add(mpirt.Fault{Rank: 1, AfterOp: cs.ops[1] / 2, Kind: mpirt.KillRank}).
					Add(mpirt.Fault{Rank: 1, AfterOp: cs.ops[1]/2 + 10, Kind: mpirt.KillRank})
			},
			maxRetries: 4,
			wantLocal:  1, wantShrink: 1, wantRanks: cs.nranks - 1, wantRank: 1,
		},
		{
			name: "giveup-zero-budget",
			plan: func() *mpirt.FaultPlan {
				return mpirt.NewFaultPlan(cs.nranks).
					Add(mpirt.Fault{Rank: 0, AfterOp: cs.ops[0] / 2, Kind: mpirt.KillRank})
			},
			maxRetries: 0, wantErr: true, wantRanks: cs.nranks, wantRank: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rs, err, rj := runLadderCase(t, cs, tc.plan(), tc.spares, tc.maxRetries)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("expected a supervision error, got none (events: %v)", rs.Events)
				}
				if len(rs.Events) == 0 || rs.Events[len(rs.Events)-1].Kind != "giveup" {
					t.Errorf("no giveup event: %v", rs.Events)
				}
				return
			}
			if err != nil {
				t.Fatalf("supervised run failed: %v (events: %v)", err, rs.Events)
			}
			if tc.wantRetx && rs.RetxRecovered == 0 {
				t.Errorf("message fault not absorbed by retransmission: %+v", rs.Events)
			}
			if rs.Localized != tc.wantLocal || rs.Respawns != tc.wantRespawn ||
				rs.Shrinks != tc.wantShrink || rs.Rollbacks != tc.wantRoll {
				t.Errorf("rung ledger = localized:%d respawns:%d shrinks:%d rollbacks:%d, want %d/%d/%d/%d (events: %v)",
					rs.Localized, rs.Respawns, rs.Shrinks, rs.Rollbacks,
					tc.wantLocal, tc.wantRespawn, tc.wantShrink, tc.wantRoll, rs.Events)
			}
			if rj.Job.NRanks != tc.wantRanks {
				t.Errorf("NRanks = %d after run, want %d", rj.Job.NRanks, tc.wantRanks)
			}
			if tc.wantRank >= 0 {
				found := false
				for _, ev := range rs.Events {
					if ev.Rank >= 0 && ev.Kind != "checkpoint" {
						if ev.Rank != tc.wantRank {
							t.Errorf("first recovery attributed to rank %d, want %d: %v", ev.Rank, tc.wantRank, ev)
						}
						found = true
						break
					}
				}
				if !found {
					t.Errorf("no rank-attributed recovery event: %v", rs.Events)
				}
			}
			// The contract every rung must honor: the recovered (possibly
			// shrunk) run reproduces the fault-free trajectory exactly.
			cs.assertBitIdentical(t, rj.Job.Gather(rj.States()))
		})
	}
}

// Ladder supervision without faults must be invisible: buddy replication
// and checkpointing cannot perturb the trajectory or invent recoveries.
func TestLadderFaultFreeMatchesPlain(t *testing.T) {
	cs := newChaosSetup(t)
	for _, every := range []int{1, 3} {
		job := cs.newJob(t)
		rj := NewResilientJob(job)
		rj.Mode = ModeLadder
		rj.CheckpointEvery = every
		local := job.Scatter(cs.global)
		rs, err := rj.Run(local, cs.steps)
		if err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		if rs.Localized+rs.Respawns+rs.Shrinks+rs.Rollbacks != 0 {
			t.Errorf("every=%d: spurious recoveries: %v", every, rs.Events)
		}
		if rs.BuddyBytes == 0 {
			t.Errorf("every=%d: no buddy replication traffic recorded", every)
		}
		cs.assertBitIdentical(t, job.Gather(rj.States()))
	}
}

// A lost buddy copy (corrupted in the buddy's memory) must not wedge the
// ladder: with a disk checkpoint configured the global rung takes over;
// the run still completes bit-identical.
func TestLadderFallsBackToDiskOnLostBuddyCopy(t *testing.T) {
	cs := newChaosSetup(t)
	job := cs.newJob(t)
	job.Faults = mpirt.NewFaultPlan(cs.nranks).
		Add(mpirt.Fault{Rank: 1, AfterOp: cs.ops[1] / 2, Kind: mpirt.KillRank})
	job.RecvTimeout = 2 * time.Second
	rj := NewResilientJob(job)
	rj.Mode = ModeLadder
	rj.CheckpointEvery = 2
	rj.MaxRetries = 4
	rj.DiskPath = t.TempDir() + "/ladder.ck"
	// Corrupt every buddy copy of rank 1 as soon as it is replicated, so
	// the localized rung's CRC check rejects it and escalates.
	rj.OnEvent = func(e RecoveryEvent) {
		if e.Kind == "checkpoint" && len(rj.gens) > 0 && rj.gens[0].buddy != nil && rj.gens[0].buddy[1] != nil {
			enc := rj.gens[0].buddy[1]
			enc[len(enc)/2] = math.Float64frombits(math.Float64bits(enc[len(enc)/2]) ^ 1)
		}
	}
	local := job.Scatter(cs.global)
	rs, err := rj.Run(local, cs.steps)
	if err != nil {
		t.Fatalf("disk fallback failed: %v (events: %v)", err, rs.Events)
	}
	if rs.Localized != 0 {
		t.Errorf("localized rung succeeded on a corrupt buddy copy: %v", rs.Events)
	}
	if rs.Rollbacks == 0 {
		t.Errorf("global rung never fired: %v", rs.Events)
	}
	cs.assertBitIdentical(t, job.Gather(rj.States()))
}

// The blowup watchdog under ladder supervision: a planted NaN is not a
// rank failure, so the ladder must use the global rung (nobody's memory
// was lost, everyone's state is suspect), and since the blowup replays
// deterministically the budget exhausts into a graceful give-up.
func TestLadderBlowupUsesGlobalRung(t *testing.T) {
	cs := newChaosSetup(t)
	job := cs.newJob(t)
	job.CheckEvery = 1
	rj := NewResilientJob(job)
	rj.Mode = ModeLadder
	rj.MaxRetries = 2
	local := job.Scatter(cs.global)
	local[1].T[0][3] = math.NaN()
	rs, err := rj.Run(local, cs.steps)
	if !errors.Is(err, ErrBlowup) {
		t.Fatalf("watchdog missed the blowup: %v", err)
	}
	if rs.Rollbacks != rj.MaxRetries {
		t.Errorf("rollbacks = %d, want %d (blowups must use the global rung)", rs.Rollbacks, rj.MaxRetries)
	}
	if rs.Localized+rs.Respawns+rs.Shrinks != 0 {
		t.Errorf("blowup triggered localized machinery: %v", rs.Events)
	}
}

// The chaos soak: every fault kind on every rank, plus seeded random
// plans, under ladder supervision. Single-rank message faults must be
// absorbed below the checkpoint layer entirely, single kills by the
// localized rung — never a global rollback — and every recovered run
// must be bit-identical to the fault-free trajectory.
func TestLadderChaosSoak(t *testing.T) {
	cs := newChaosSetup(t)
	kinds := []mpirt.FaultKind{mpirt.KillRank, mpirt.CorruptMsg, mpirt.DropMsg, mpirt.DelayMsg}
	for _, kind := range kinds {
		for r := 0; r < cs.nranks; r++ {
			kind, r := kind, r
			t.Run(fmt.Sprintf("%s-rank%d", kind, r), func(t *testing.T) {
				t.Parallel()
				plan := mpirt.NewFaultPlan(cs.nranks).
					Add(mpirt.Fault{Rank: r, AfterOp: cs.ops[r] / 2, Kind: kind, Delay: 5 * time.Millisecond})
				rs, err, rj := runLadderCase(t, cs, plan, 0, 6)
				if err != nil {
					t.Fatalf("supervised run failed: %v (events: %v)", err, rs.Events)
				}
				if rs.Rollbacks != 0 {
					t.Errorf("single %s fault escalated to a global rollback: %v", kind, rs.Events)
				}
				if kind == mpirt.KillRank {
					if rs.Localized != 1 {
						t.Errorf("kill recovered via %d localized rebuilds, want 1: %v", rs.Localized, rs.Events)
					}
				} else if rs.Localized+rs.Respawns+rs.Shrinks != 0 {
					t.Errorf("%s fault reached the checkpoint layer: %v", kind, rs.Events)
				}
				if pending := plan.Pending(); len(pending) != 0 {
					t.Errorf("fault never fired: %+v", pending)
				}
				cs.assertBitIdentical(t, rj.Job.Gather(rj.States()))
			})
		}
	}
	for _, seed := range []int64{41, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seeded-%d", seed), func(t *testing.T) {
			t.Parallel()
			minOps := cs.ops[0]
			for _, v := range cs.ops {
				if v < minOps {
					minOps = v
				}
			}
			plan := mpirt.NewChaosPlan(seed, cs.nranks, minOps, 4)
			rs, err, rj := runLadderCase(t, cs, plan, 1, 20)
			if err != nil {
				t.Fatalf("supervised run failed: %v (events: %v)", err, rs.Events)
			}
			cs.assertBitIdentical(t, rj.Job.Gather(rj.States()))
		})
	}
}
