package core

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"swcam/internal/exec"
	"swcam/internal/physics"
)

// moistTestModel builds a small moist model with seeded vapor, the
// shared fixture of the physics determinism and allocation tests.
func moistTestModel(t *testing.T, workers int) *Model {
	t.Helper()
	cfg := DefaultConfig(4)
	cfg.Dycore.Nlev = 8
	cfg.Dycore.Qsize = 3
	cfg.PhysEvery = 2
	cfg.PhysWorkers = workers
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Solver.InitBaroclinicWave(m.State)
	npsq := m.Solver.Cfg.Np * m.Solver.Cfg.Np
	for ei := range m.State.Qdp {
		qdp := m.State.QdpAt(ei, 0)
		for k := 0; k < m.Solver.Cfg.Nlev; k++ {
			sig := float64(k+1) / 8
			for n := 0; n < npsq; n++ {
				qdp[k*npsq+n] = 0.014 * sig * sig * m.State.DP[ei][k*npsq+n]
			}
		}
	}
	return m
}

// The serial-model determinism sweep: for every worker count and every
// victim-scan seed (i.e. every steal schedule), a multi-step run must
// reproduce the workers=1 reference exactly — FNV-64 state hash,
// TotalPrecip bits, and the pool's chunk ledger.
func TestModelPhysicsDeterministicAcrossSchedules(t *testing.T) {
	run := func(workers int, seed uint64) (uint64, float64, int64) {
		m := moistTestModel(t, 1)
		m.SetPhysPoolForTest(workers, seed)
		m.Run(6)
		return hashGlobal(m.State), m.TotalPrecip, m.PhysStats().Chunks
	}
	refHash, refPrecip, refChunks := run(1, 0)
	if refPrecip <= 0 {
		t.Fatal("reference run produced no precipitation — sweep is vacuous")
	}
	if refChunks == 0 {
		t.Fatal("reference run scheduled no physics chunks")
	}
	for _, workers := range []int{2, 4, 8} {
		for _, seed := range []uint64{0, 3, 11} {
			h, p, ch := run(workers, seed)
			if h != refHash {
				t.Errorf("workers=%d seed=%d: state hash %016x, want %016x", workers, seed, h, refHash)
			}
			if p != refPrecip {
				t.Errorf("workers=%d seed=%d: TotalPrecip %v, want %v", workers, seed, p, refPrecip)
			}
			if ch != refChunks {
				t.Errorf("workers=%d seed=%d: %d chunks, want %d", workers, seed, ch, refChunks)
			}
		}
	}
}

// The distributed determinism sweep, end-to-end: a multi-rank run with
// halo exchanges, hyperviscosity, tracers, vertical remap AND the
// physics phase must be bit-identical — state hash, TotalPrecip, and
// Cost/Halo counters — across physics worker counts and steal
// schedules, per backend. Mirrors the exec tiling sweep one layer up.
func TestJobPhysicsDeterministicAcrossSchedules(t *testing.T) {
	cfg := testDycoreCfg(3, 8, 2)
	const ranks, steps = 2, 4
	global, err := randomizedGlobal(cfg, 20260808)
	if err != nil {
		t.Fatal(err)
	}

	run := func(b exec.Backend, workers int, seed uint64) (uint64, float64, RunStats, int64) {
		job, err := NewParallelJob(cfg, b, true, ranks)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.EnablePhysics(physics.Moist, 2, 302, 30); err != nil {
			t.Fatal(err)
		}
		job.SetPhysPoolForTest(workers, seed)
		local := job.Scatter(global)
		stats := job.Run(local, steps)
		return hashGlobal(job.Gather(local)), job.TotalPrecip, stats, job.PhysStats().Chunks
	}

	for _, b := range []exec.Backend{exec.Intel, exec.Athread} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			refHash, refPrecip, refStats, refChunks := run(b, 1, 0)
			if refPrecip <= 0 {
				t.Fatal("reference run produced no precipitation")
			}
			for _, workers := range []int{2, 4, 8} {
				for _, seed := range []uint64{0, 7} {
					h, p, stats, ch := run(b, workers, seed)
					if h != refHash {
						t.Errorf("workers=%d seed=%d: state hash %016x, want %016x", workers, seed, h, refHash)
					}
					if p != refPrecip {
						t.Errorf("workers=%d seed=%d: TotalPrecip %v, want %v", workers, seed, p, refPrecip)
					}
					if stats.Cost != refStats.Cost {
						t.Errorf("workers=%d seed=%d: kernel Cost diverged", workers, seed)
					}
					if stats.Halo != refStats.Halo {
						t.Errorf("workers=%d seed=%d: halo stats diverged", workers, seed)
					}
					if ch != refChunks {
						t.Errorf("workers=%d seed=%d: %d physics chunks, want %d", workers, seed, ch, refChunks)
					}
				}
			}
		})
	}
}

// Partition invariance of the physics phase: the canonical precip
// reduction (gather by global element id, sum ascending) must make the
// trajectory AND the precipitation diagnostic independent of the rank
// count, like the mass fixer before it.
func TestJobPhysicsPartitionInvariant(t *testing.T) {
	cfg := testDycoreCfg(3, 8, 2)
	global, err := randomizedGlobal(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	run := func(ranks int) (uint64, float64) {
		job, err := NewParallelJob(cfg, exec.Intel, true, ranks)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.EnablePhysics(physics.Moist, 2, 302, 30); err != nil {
			t.Fatal(err)
		}
		job.SetPhysWorkers(3)
		local := job.Scatter(global)
		job.Run(local, 4)
		return hashGlobal(job.Gather(local)), job.TotalPrecip
	}
	refHash, refPrecip := run(1)
	if refPrecip <= 0 {
		t.Fatal("reference run produced no precipitation")
	}
	for _, ranks := range []int{2, 3} {
		h, p := run(ranks)
		if h != refHash {
			t.Errorf("ranks=%d: state hash %016x, want %016x", ranks, h, refHash)
		}
		if p != refPrecip {
			t.Errorf("ranks=%d: TotalPrecip %v, want %v", ranks, p, refPrecip)
		}
	}
}

// Work-stealing chaos at the job level: a panic raised inside a physics
// chunk — on whichever worker ends up running it, owner or thief (the
// straggler first chunk makes theft near-certain) — must fail the job
// cleanly with an error instead of hanging the world or leaking
// goroutines, and the job must run cleanly afterwards.
func TestJobPhysicsChunkPanicFailsCleanly(t *testing.T) {
	cfg := testDycoreCfg(3, 8, 2)
	global, err := randomizedGlobal(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 2, 3} {
		job, err := NewParallelJob(cfg, exec.Intel, true, 2)
		if err != nil {
			t.Fatal(err)
		}
		var armed atomic.Bool
		armed.Store(true)
		job.PhysPanicHook = func(rank, worker, elem int) {
			if rank != 0 || !armed.Load() {
				return
			}
			if elem == 0 {
				time.Sleep(2 * time.Millisecond) // straggle: the rest of the range gets stolen
			}
			if elem == 6 && armed.CompareAndSwap(true, false) {
				panic("phys-chaos")
			}
		}
		if err := job.EnablePhysics(physics.Moist, 1, 302, 30); err != nil {
			t.Fatal(err)
		}
		job.SetPhysPoolForTest(4, seed)
		local := job.Scatter(global)
		if _, err := job.RunChecked(local, 2); err == nil {
			t.Fatalf("seed=%d: chunk panic did not fail the job", seed)
		}
		// Disarmed hook: the same job must complete a clean run.
		local = job.Scatter(global)
		job.SetStepCount(0)
		job.TotalPrecip = 0
		if _, err := job.RunChecked(local, 2); err != nil {
			t.Fatalf("seed=%d: job unusable after chunk panic: %v", seed, err)
		}
	}
}

// The precipitation accumulator must rewind with the state on recovery:
// a supervised run that loses a chunk to a physics panic and replays it
// must end with exactly the fault-free TotalPrecip — without the rewind
// the burned attempt's rain is double-counted.
func TestResilientRewindsPrecipOnRollback(t *testing.T) {
	cfg := testDycoreCfg(3, 8, 2)
	global, err := randomizedGlobal(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	run := func(inject bool) (uint64, float64, int) {
		job, err := NewParallelJob(cfg, exec.Intel, true, 2)
		if err != nil {
			t.Fatal(err)
		}
		var fired atomic.Int64
		if inject {
			// Fail the third physics application (step 3): the supervisor
			// has checkpointed at steps 1 and 2 by then, so the rollback
			// rewinds precipitation already accumulated by earlier steps.
			job.PhysPanicHook = func(rank, worker, elem int) {
				if rank == 0 && elem == 0 && fired.Add(1) == 3 {
					panic("phys-chaos")
				}
			}
		}
		if err := job.EnablePhysics(physics.Moist, 1, 302, 30); err != nil {
			t.Fatal(err)
		}
		job.SetPhysWorkers(2)
		rj := NewResilientJob(job)
		local := job.Scatter(global)
		rs, err := rj.Run(local, 4)
		if err != nil {
			t.Fatalf("inject=%v: supervised run failed: %v", inject, err)
		}
		return hashGlobal(job.Gather(local)), job.TotalPrecip, rs.Rollbacks
	}
	refHash, refPrecip, _ := run(false)
	if refPrecip <= 0 {
		t.Fatal("fault-free run produced no precipitation")
	}
	h, p, rollbacks := run(true)
	if rollbacks == 0 {
		t.Fatal("injected physics panic caused no rollback — the test exercised nothing")
	}
	if h != refHash {
		t.Errorf("recovered state hash %016x, want fault-free %016x", h, refHash)
	}
	if p != refPrecip {
		t.Errorf("recovered TotalPrecip %v, want fault-free %v (double-counted replay?)", p, refPrecip)
	}
}

// The serial-driver physics step is allocation-free at steady state on
// one worker, and bounded by goroutine-launch machinery on several —
// the core-side face of the zero-alloc audit.
func TestModelPhysicsSteadyStateAllocs(t *testing.T) {
	for _, workers := range []int{1, 4} {
		m := moistTestModel(t, workers)
		m.applyPhysics() // warm column scratch and the pool
		got := testing.AllocsPerRun(10, func() { m.applyPhysics() })
		budget := 0.0
		if workers > 1 {
			budget = float64(2 + 2*workers)
		}
		if got > budget {
			t.Errorf("workers=%d: %.1f allocs per physics step, budget %.0f", workers, got, budget)
		}
	}
}

// On a machine with enough cores, parallel physics must beat serial
// wall-clock — the bench-regression smoke CI runs on >= 4-core runners.
// Fewer cores cannot demonstrate a speedup, so the test skips with a
// logged reason rather than asserting noise.
func TestParallelPhysicsSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("skipping speedup assertion: %d CPUs (< 4) cannot demonstrate parallel speedup", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	wall := func(workers int) time.Duration {
		m := moistTestModel(t, workers)
		m.applyPhysics() // warm
		t0 := time.Now()
		for i := 0; i < 10; i++ {
			m.applyPhysics()
		}
		return time.Since(t0)
	}
	serial := wall(1)
	par := wall(4)
	// Demand a real margin (1.2x) rather than parity, but stay far from
	// the ideal 4x so shared CI runners don't flake.
	if float64(par) > float64(serial)/1.2 {
		t.Errorf("parallel physics (4 workers) %v not faster than serial %v", par, serial)
	}
	t.Logf("physics step: serial %v, 4 workers %v (%.2fx)", serial, par, float64(serial)/float64(par))
}
