package core

import (
	"errors"
	"fmt"
	"time"

	"swcam/internal/dycore"
	"swcam/internal/integrity"
	"swcam/internal/mpirt"
)

// At-rest scrubbing and in-compute invariant guards for ParallelJob —
// the per-step halves of the silent-data-corruption defense (the
// checkpoint-generation half lives in generations.go / resilient.go).
//
// Integrity is opt-in (EnableIntegrity) because the invariant ledger
// adds one reduction per step to every rank's operation stream, which
// would shift the op counters every existing seeded fault schedule is
// calibrated against.

// tagInvariant is the point-to-point tag of the canonical invariant
// reduction (outside halo's 101, the mass fixer's 202, and the buddy
// tags 203/204).
const tagInvariant = 205

// EnableIntegrity turns on the per-step SDC defenses: at-rest state
// scrubbing every scrubEvery steps (each rank's state is CRC-32C-sealed
// per element after it is finalized at end-of-step and re-verified
// before it is consumed at start-of-next-step) and the global
// mass/energy/tracer conservation ledger on the canonical rank-0
// reduction. Must be called before Run; tolerances can be tuned on the
// returned ledger. scrubEvery == 1 verifies every at-rest window — the
// only cadence that guarantees a resident-state flip is caught before
// the next checkpoint captures it; coarser cadences trade detection
// latency for scrub cost.
func (j *ParallelJob) EnableIntegrity(scrubEvery int) *integrity.Ledger {
	if scrubEvery < 1 {
		panic(fmt.Sprintf("core: EnableIntegrity(scrubEvery=%d)", scrubEvery))
	}
	j.ScrubEvery = scrubEvery
	j.seals = make([]*integrity.RankSeal, j.NRanks)
	j.ledger = integrity.NewLedger()
	return j.ledger
}

// IntegrityEnabled reports whether EnableIntegrity was called.
func (j *ParallelJob) IntegrityEnabled() bool { return j.ScrubEvery > 0 }

// scrubVerify re-verifies rank r's state against its live seal at the
// start of step stepNo. A seal from any step other than stepNo-1 is
// legitimately stale (coarse cadence, or the first step after a
// restore) and is skipped — staleness is not corruption.
func (j *ParallelJob) scrubVerify(r int, st *dycore.State, stepNo int) {
	s := j.seals[r]
	if s == nil || s.Step != stepNo-1 {
		return
	}
	t0 := time.Now()
	err := s.Verify(st)
	reg := j.Obs.R()
	reg.Counter("integrity.scrub.verifies").Add(1)
	reg.Counter("integrity.scrub.ns").Add(time.Since(t0).Nanoseconds())
	if err != nil {
		reg.Counter("integrity.scrub.detections").Add(1)
		mpirt.Fail(fmt.Errorf("core: at-rest scrub of rank %d before step %d: %w", r, stepNo, err))
	}
}

// scrubSeal reseals rank r's state at the end of step stepNo, at the
// configured cadence.
func (j *ParallelJob) scrubSeal(r int, st *dycore.State, stepNo int) {
	if stepNo%j.ScrubEvery != 0 {
		return
	}
	t0 := time.Now()
	if j.seals[r] == nil {
		j.seals[r] = integrity.NewRankSeal(st.NElem())
	}
	j.seals[r].Reseal(st, stepNo)
	reg := j.Obs.R()
	reg.Counter("integrity.scrub.seals").Add(1)
	reg.Counter("integrity.scrub.ns").Add(time.Since(t0).Nanoseconds())
}

// ScrubVerifyLive verifies every rank's live state against its current
// seal — the supervisor's pre-checkpoint gate, closing the window on
// flips that land after the last step's verify (i.e. on the final step
// of a chunk, where no next-step verify would run before the state is
// captured into a checkpoint). Seals not sealed at exactly the current
// step are stale and skipped. The returned error wraps
// integrity.ErrCorrupt.
func (j *ParallelJob) ScrubVerifyLive(local []*dycore.State) error {
	if j.ScrubEvery <= 0 {
		return nil
	}
	reg := j.Obs.R()
	// Verify every rank before reporting: two flips can land in the
	// same at-rest window, and a first-corrupt-rank short-circuit would
	// let the rollback discard the second flip undetected (fired faults
	// stay fired, so it would never resurface).
	var all error
	for r, st := range local {
		s := j.seals[r]
		if s == nil || s.Step != j.steps {
			continue
		}
		t0 := time.Now()
		err := s.Verify(st)
		reg.Counter("integrity.scrub.verifies").Add(1)
		reg.Counter("integrity.scrub.ns").Add(time.Since(t0).Nanoseconds())
		if err != nil {
			reg.Counter("integrity.scrub.detections").Add(1)
			all = errors.Join(all, fmt.Errorf("core: pre-checkpoint scrub of rank %d at step %d: %w", r, j.steps, err))
		}
	}
	return all
}

// installSeals replaces the live seals with clones of a checkpoint
// generation's (or clears them when seals is nil) — the restore hook:
// after a rollback the live seals must witness the restored bits, not
// the discarded ones. No-op when scrubbing is off.
func (j *ParallelJob) installSeals(seals []*integrity.RankSeal) {
	if j.ScrubEvery <= 0 {
		return
	}
	j.seals = make([]*integrity.RankSeal, j.NRanks)
	for r := range seals {
		if r < len(j.seals) && seals[r] != nil {
			j.seals[r] = seals[r].Clone()
		}
	}
}

// elemInvariants integrates mass, total energy, and tracer mass over
// each of rank r's elements separately — the canonical per-element
// partials of the invariant reduction.
func (j *ParallelJob) elemInvariants(r int, st *dycore.State) []float64 {
	npsq := j.Cfg.Np * j.Cfg.Np
	nlev := j.Cfg.Nlev
	out := make([]float64, 3*len(j.Plans[r].Elems))
	for le, ge := range j.Plans[r].Elems {
		e := j.Mesh.Elements[ge]
		var mass, energy, tracer float64
		for n := 0; n < npsq; n++ {
			var colM, colE float64
			for k := 0; k < nlev; k++ {
				i := k*npsq + n
				dp := st.DP[le][i]
				u, v, T := st.U[le][i], st.V[le][i], st.T[le][i]
				colM += dp
				colE += (dycore.Cp*T + 0.5*(u*u+v*v)) * dp
			}
			mass += e.SphereMP[n] * colM
			energy += e.SphereMP[n] * colE
		}
		for i, v := range st.Qdp[le] {
			tracer += e.SphereMP[i%npsq] * v
		}
		out[3*le], out[3*le+1], out[3*le+2] = mass, energy, tracer
	}
	return out
}

// checkInvariants runs the per-step conservation ledger: per-element
// partials are gathered to rank 0, placed by global element id, summed
// in ascending-id order (partition-invariant, like the mass fixer), and
// checked against the previous step's record. The verdict is broadcast
// so every rank aborts together on a violation; on a healthy step the
// broadcast scalar is constant and cannot change the trajectory.
func (j *ParallelJob) checkInvariants(c *mpirt.Comm, r int, st *dycore.State, stepNo int) {
	local := j.elemInvariants(r, st)
	verdict := []float64{0}
	if r == 0 {
		global := make([]float64, 3*j.Mesh.NElems())
		for le, ge := range j.Plans[0].Elems {
			copy(global[3*ge:3*ge+3], local[3*le:3*le+3])
		}
		for src := 1; src < j.NRanks; src++ {
			buf := make([]float64, 3*len(j.Plans[src].Elems))
			c.Recv(src, tagInvariant, buf)
			for le, ge := range j.Plans[src].Elems {
				copy(global[3*ge:3*ge+3], buf[3*le:3*le+3])
			}
		}
		var inv integrity.Invariants
		for ge := 0; ge < j.Mesh.NElems(); ge++ {
			inv.Mass += global[3*ge]
			inv.Energy += global[3*ge+1]
			inv.TracerMass += global[3*ge+2]
		}
		reg := j.Obs.R()
		reg.Counter("integrity.ledger.checks").Add(1)
		if err := j.ledger.Check(stepNo, inv); err != nil {
			reg.Counter("integrity.ledger.detections").Add(1)
			j.ledgerErr = fmt.Errorf("core: invariant ledger at step %d: %w", stepNo, err)
			verdict[0] = 1
		}
	} else {
		c.Send(0, tagInvariant, local)
	}
	c.Bcast(0, verdict)
	if verdict[0] > 0 {
		if r == 0 {
			mpirt.Fail(j.ledgerErr)
		}
		mpirt.Fail(fmt.Errorf("%w (invariant drift flagged by rank 0 at step %d)", integrity.ErrCorrupt, stepNo))
	}
}

// injectStateFlip polls the fault plan for a due flipState fault on
// rank r and, when one fires, flips one mantissa bit of the rank's
// resident state — after the end-of-step reseal, so the corruption
// lands in the at-rest window exactly like a real memory flip. Fired
// faults stay fired; a post-recovery replay of the step does not
// re-flip, so recovery converges to the fault-free trajectory.
func (j *ParallelJob) injectStateFlip(r int, st *dycore.State) {
	if j.Faults == nil {
		return
	}
	f := j.Faults.FireIntegrity(r, mpirt.FlipState)
	if f == nil {
		return
	}
	desc := flipStateBit(st, faultKey(f))
	j.Obs.R().Counter("integrity.flips.state").Add(1)
	j.Obs.T().Instant(r, "integrity.flipState "+desc, "fault")
}
