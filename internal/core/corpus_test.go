package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// writeFuzzCorpusEntry encodes data in the Go native fuzzing corpus
// format (go test fuzz v1) under testdata/fuzz/<fuzzName>/<entry>, the
// directory `go test` replays on every ordinary test run.
func writeFuzzCorpusEntry(t *testing.T, fuzzName, entry string, data []byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
	if err := os.WriteFile(filepath.Join(dir, entry), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRegenFuzzCorpora rewrites the checked-in seed corpora for
// FuzzReadCheckpoint and FuzzReadHistory from the same generators that
// seed the fuzzers, so corpus and f.Add seeds cannot drift apart.
// Gated behind SWCAM_REGEN_FUZZ_CORPUS; run with the variable set after
// changing the checkpoint or history format, then commit the result.
func TestRegenFuzzCorpora(t *testing.T) {
	if os.Getenv("SWCAM_REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set SWCAM_REGEN_FUZZ_CORPUS=1 to regenerate the checked-in fuzz seed corpora")
	}
	st := makeSeedState()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, st, 3); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	writeFuzzCorpusEntry(t, "FuzzReadCheckpoint", "seed-valid-v2", valid)
	writeFuzzCorpusEntry(t, "FuzzReadCheckpoint", "seed-truncated-body", valid[:len(valid)/2])
	writeFuzzCorpusEntry(t, "FuzzReadCheckpoint", "seed-truncated-crc", valid[:len(valid)-2])
	writeFuzzCorpusEntry(t, "FuzzReadCheckpoint", "seed-garbage", []byte("garbage"))

	corrupted := append([]byte(nil), valid...)
	corrupted[4] ^= 0xFF
	writeFuzzCorpusEntry(t, "FuzzReadCheckpoint", "seed-corrupt-dims", corrupted)

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	writeFuzzCorpusEntry(t, "FuzzReadCheckpoint", "seed-bitflip-field", flipped)

	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-1] ^= 0xFF
	writeFuzzCorpusEntry(t, "FuzzReadCheckpoint", "seed-bad-crc", badCRC)

	v1 := append([]byte(nil), valid[:len(valid)-4]...)
	v1[4] = 1 // legacy version byte, no CRC trailer
	writeFuzzCorpusEntry(t, "FuzzReadCheckpoint", "seed-legacy-v1", v1)

	writeFuzzCorpusEntry(t, "FuzzReadHistory", "seed-junk", []byte("junk"))
	writeFuzzCorpusEntry(t, "FuzzReadHistory", "seed-zero-header", make([]byte, 48))

	for name, data := range buddySnapshotSeeds(t.Fatal) {
		writeFuzzCorpusEntry(t, "FuzzDecodeRankSnapshot", name, data)
	}
}

// TestFuzzCorporaCheckedIn guards against the seed corpora being
// accidentally deleted: every fuzz target must have checked-in entries
// (they run as regular test cases on every `go test`).
func TestFuzzCorporaCheckedIn(t *testing.T) {
	for target, min := range map[string]int{
		"FuzzReadCheckpoint":     5,
		"FuzzReadHistory":        2,
		"FuzzDecodeRankSnapshot": 12,
	} {
		entries, err := os.ReadDir(filepath.Join("testdata", "fuzz", target))
		if err != nil {
			t.Errorf("missing checked-in corpus for %s: %v", target, err)
			continue
		}
		if len(entries) < min {
			t.Errorf("%s corpus has %d entries, want >= %d", target, len(entries), min)
		}
	}
}
