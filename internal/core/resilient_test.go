package core

import (
	"errors"
	"math"
	"path/filepath"
	"testing"
	"time"

	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/mpirt"
)

// chaosSetup builds the shared scenario: a 3-rank distributed run over a
// small baroclinic-wave case, the fault-free reference trajectory, and a
// calibration of how many mpirt operations each rank performs — fault
// schedules are placed as fractions of that, so the test stays valid if
// the step's communication pattern evolves.
type chaosSetup struct {
	cfg    dycore.Config
	global *dycore.State
	ref    *dycore.State // fault-free final state after `steps`
	ops    []int64       // per-rank op counts of a fault-free run
	steps  int
	nranks int
}

func newChaosSetup(t *testing.T) *chaosSetup {
	t.Helper()
	cs := &chaosSetup{steps: 6, nranks: 3}
	cs.cfg = testDycoreCfg(2, 8, 1)
	s, err := dycore.NewSolver(cs.cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs.global = s.NewState()
	s.InitBaroclinicWave(cs.global)
	s.InitCosineBellTracer(cs.global, 0, 1, 0, 0.5)

	// Fault-free reference trajectory (plain job; the watchdog's
	// allreduce never modifies state, so it cannot change this).
	job := cs.newJob(t)
	local := job.Scatter(cs.global)
	job.Run(local, cs.steps)
	cs.ref = job.Gather(local)

	// Probe run with an empty plan attached to count ops per rank.
	probe := mpirt.NewFaultPlan(cs.nranks)
	job2 := cs.newJob(t)
	job2.Faults = probe
	local2 := job2.Scatter(cs.global)
	job2.Run(local2, cs.steps)
	cs.ops = make([]int64, cs.nranks)
	for r := 0; r < cs.nranks; r++ {
		cs.ops[r] = probe.Ops(r)
		if cs.ops[r] < 20 {
			t.Fatalf("rank %d performed only %d ops; fault placement would be degenerate", r, cs.ops[r])
		}
	}
	return cs
}

// newJob builds a job with the watchdog on — identical numerics to the
// plain configuration.
func (cs *chaosSetup) newJob(t *testing.T) *ParallelJob {
	t.Helper()
	job, err := NewParallelJob(cs.cfg, exec.Intel, true, cs.nranks)
	if err != nil {
		t.Fatal(err)
	}
	job.CheckEvery = 2
	return job
}

func (cs *chaosSetup) assertBitIdentical(t *testing.T, got *dycore.State) {
	t.Helper()
	if d := got.MaxAbsDiff(cs.ref); d != 0 {
		t.Fatalf("recovered state differs from fault-free run by %g (must be bit-identical)", d)
	}
	for ei := range cs.ref.Phis {
		for n := range cs.ref.Phis[ei] {
			if got.Phis[ei][n] != cs.ref.Phis[ei][n] {
				t.Fatal("Phis differs after recovery")
			}
		}
	}
}

// The keystone chaos test: a multi-rank run with a rank kill, a payload
// corruption, a dropped message, and a delayed message injected mid-run
// must finish — recovering through checkpoint rollbacks — and produce
// the bit-identical final state of the fault-free run.
func TestResilientJobRecoversBitIdentical(t *testing.T) {
	cs := newChaosSetup(t)
	plan := mpirt.NewFaultPlan(cs.nranks).
		Add(mpirt.Fault{Rank: 1, AfterOp: cs.ops[1] * 2 / 5, Kind: mpirt.KillRank}).
		Add(mpirt.Fault{Rank: 0, AfterOp: cs.ops[0] * 3 / 5, Kind: mpirt.CorruptMsg}).
		Add(mpirt.Fault{Rank: 2, AfterOp: cs.ops[2] * 4 / 5, Kind: mpirt.DropMsg}).
		Add(mpirt.Fault{Rank: 0, AfterOp: cs.ops[0] / 5, Kind: mpirt.DelayMsg, Delay: 5 * time.Millisecond})

	job := cs.newJob(t)
	job.Faults = plan
	job.RecvTimeout = 2 * time.Second
	rj := NewResilientJob(job)
	rj.CheckpointEvery = 2
	rj.MaxRetries = 10
	rj.Backoff = time.Millisecond

	local := job.Scatter(cs.global)
	rs, err := rj.Run(local, cs.steps)
	if err != nil {
		t.Fatalf("supervised run failed: %v (events: %v)", err, rs.Events)
	}
	if rs.Rollbacks < 3 {
		t.Errorf("expected >=3 rollbacks (kill, corrupt, drop), got %d: %v", rs.Rollbacks, rs.Events)
	}
	if pending := plan.Pending(); len(pending) != 0 {
		t.Errorf("faults never fired: %+v", pending)
	}
	if rs.Run.Steps != cs.steps {
		t.Errorf("finished at step %d, want %d", rs.Run.Steps, cs.steps)
	}
	cs.assertBitIdentical(t, job.Gather(local))
}

// The same property under a seeded random chaos plan, with on-disk
// checkpointing enabled: the final state is still bit-identical and the
// last disk checkpoint matches it.
func TestResilientJobSurvivesSeededChaos(t *testing.T) {
	cs := newChaosSetup(t)
	minOps := cs.ops[0]
	for _, v := range cs.ops {
		if v < minOps {
			minOps = v
		}
	}
	plan := mpirt.NewChaosPlan(1234, cs.nranks, minOps, 5)

	job := cs.newJob(t)
	job.Faults = plan
	job.RecvTimeout = 2 * time.Second
	path := filepath.Join(t.TempDir(), "resilient.ck")
	rj := NewResilientJob(job)
	rj.CheckpointEvery = 2
	rj.MaxRetries = 20
	rj.DiskPath = path

	local := job.Scatter(cs.global)
	rs, err := rj.Run(local, cs.steps)
	if err != nil {
		t.Fatalf("supervised run failed: %v (events: %v)", err, rs.Events)
	}
	if rs.Rollbacks == 0 {
		t.Errorf("chaos plan injected no recoverable fault: %v", plan.Pending())
	}
	got := job.Gather(local)
	cs.assertBitIdentical(t, got)

	disk, step, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("disk checkpoint unreadable: %v", err)
	}
	if step != cs.steps {
		t.Errorf("disk checkpoint at step %d, want %d", step, cs.steps)
	}
	if d := disk.MaxAbsDiff(got); d != 0 {
		t.Errorf("disk checkpoint differs from final state by %g", d)
	}
}

// A kill at the very first communication op — before the first
// checkpoint exists beyond the initial snapshot — still recovers: the
// rollback target is the step-0 snapshot taken at Run entry.
func TestResilientJobRecoversFromImmediateKill(t *testing.T) {
	cs := newChaosSetup(t)
	job := cs.newJob(t)
	job.Faults = mpirt.NewFaultPlan(cs.nranks).Add(mpirt.Fault{Rank: 2, AfterOp: 1, Kind: mpirt.KillRank})
	rj := NewResilientJob(job)
	local := job.Scatter(cs.global)
	rs, err := rj.Run(local, cs.steps)
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if rs.Rollbacks != 1 {
		t.Errorf("rollbacks = %d, want 1", rs.Rollbacks)
	}
	cs.assertBitIdentical(t, job.Gather(local))
}

// The blowup watchdog: a NaN planted in one rank's initial state must be
// caught by the allreduced check on every rank (cooperative abort), and
// since the blowup replays deterministically, the retry budget exhausts
// and the supervisor degrades gracefully — best-effort state plus a
// diagnosis wrapping ErrBlowup, not a hang and not a panic.
func TestWatchdogCatchesBlowupAndDegradesGracefully(t *testing.T) {
	cs := newChaosSetup(t)
	job := cs.newJob(t)
	job.CheckEvery = 1
	rj := NewResilientJob(job)
	rj.MaxRetries = 2

	local := job.Scatter(cs.global)
	local[1].T[0][3] = math.NaN() // the blowup
	var events []RecoveryEvent
	rj.OnEvent = func(e RecoveryEvent) { events = append(events, e) }

	rs, err := rj.Run(local, cs.steps)
	if !errors.Is(err, ErrBlowup) {
		t.Fatalf("watchdog missed the blowup: %v", err)
	}
	if !errors.Is(err, dycore.ErrUnstable) {
		t.Errorf("diagnosis lost the State.Check detail: %v", err)
	}
	if rs.Rollbacks != rj.MaxRetries {
		t.Errorf("rollbacks = %d, want %d", rs.Rollbacks, rj.MaxRetries)
	}
	if len(events) == 0 || events[len(events)-1].Kind != "giveup" {
		t.Errorf("no giveup event recorded: %v", events)
	}
	// Best-effort state: the job is rewound to the last good checkpoint.
	if job.StepCount() != 0 {
		t.Errorf("step counter not rewound: %d", job.StepCount())
	}
}

// Chunked supervision must not change the answer even without faults:
// checkpoint cadence is semantically invisible (remap and watchdog
// cadences are driven by the global step counter, not the chunking).
func TestResilientJobFaultFreeMatchesPlain(t *testing.T) {
	cs := newChaosSetup(t)
	for _, every := range []int{1, 2, 4} {
		job := cs.newJob(t)
		rj := NewResilientJob(job)
		rj.CheckpointEvery = every
		local := job.Scatter(cs.global)
		rs, err := rj.Run(local, cs.steps)
		if err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		if rs.Rollbacks != 0 {
			t.Errorf("every=%d: spurious rollbacks: %v", every, rs.Events)
		}
		cs.assertBitIdentical(t, job.Gather(local))
	}
}

// RunChecked surfaces a kill as an error without advancing the step
// counter, and a plain Run (the legacy API) panics on the same fault —
// the two documented failure modes.
func TestRunCheckedReportsFault(t *testing.T) {
	cs := newChaosSetup(t)
	job := cs.newJob(t)
	job.Faults = mpirt.NewFaultPlan(cs.nranks).Add(mpirt.Fault{Rank: 0, AfterOp: 5, Kind: mpirt.KillRank})
	local := job.Scatter(cs.global)
	_, err := job.RunChecked(local, cs.steps)
	if !errors.Is(err, mpirt.ErrKilled) {
		t.Fatalf("RunChecked gave %v, want ErrKilled", err)
	}
	var re *mpirt.RunError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("faulty rank not identified: %v", err)
	}
	if job.StepCount() != 0 {
		t.Errorf("step counter advanced on a failed run: %d", job.StepCount())
	}
}
