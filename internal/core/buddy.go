package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"swcam/internal/dycore"
)

// Partner-replicated diskless checkpoints — the middle rung of the
// recovery ladder. At every checkpoint interval each rank serializes
// its local dycore.State with the v2 checkpoint encoding (fixed header,
// raw fields, CRC32-C trailer) and ships the bytes to its buddy rank
// (r+1 mod n) over the message runtime. When a single rank dies, it is
// rebuilt in place from the buddy's in-memory copy while the survivors
// restore their own local snapshots — no disk, no global replay. The
// encoding is framed into a float64 payload because that is the only
// wire type mpirt carries, exactly as a real implementation would pack
// bytes into its transport's native datatype.

// buddy exchange tags (outside halo's 101, the mass fixer's 202, and
// the reserved negative collective tags).
const (
	tagBuddySize = 203
	tagBuddyData = 204
)

// maxSnapshotBytes bounds a framed snapshot before decoding: the
// largest per-rank state the checkpoint reader itself would accept
// (1<<28 values), plus header and trailer slack.
const maxSnapshotBytes = 1<<31 - 1

// ErrBuddySnapshot reports a buddy-snapshot payload that cannot be
// decoded: bad framing, truncation, or a failed checkpoint CRC. The
// supervisor treats it as a lost copy and escalates to the next rung.
var ErrBuddySnapshot = errors.New("core: buddy snapshot undecodable")

// EncodeRankSnapshot serializes one rank's state (plus the step it was
// taken at) into a float64 wire payload: word 0 holds the byte length
// as a raw bit pattern, the remaining words hold the v2 checkpoint
// bytes little-endian, zero-padded to a word boundary.
func EncodeRankSnapshot(st *dycore.State, step int) ([]float64, error) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, st, step); err != nil {
		return nil, fmt.Errorf("core: encoding rank snapshot: %w", err)
	}
	b := buf.Bytes()
	words := (len(b) + 7) / 8
	out := make([]float64, 1+words)
	out[0] = math.Float64frombits(uint64(len(b)))
	padded := b
	if len(b) != words*8 {
		padded = make([]byte, words*8)
		copy(padded, b)
	}
	for i := 0; i < words; i++ {
		out[1+i] = math.Float64frombits(binary.LittleEndian.Uint64(padded[i*8:]))
	}
	return out, nil
}

// VerifyRankSnapshot checks an encoded snapshot end to end — framing,
// header dimensions, payload CRC — without keeping the decoded state.
// The checkpoint path runs it on every payload *before* shipping to the
// buddy rank, so a snapshot that rotted between encode and ship can
// never overwrite the partner's last good copy; the generation store
// runs it when auditing retained buddy copies.
func VerifyRankSnapshot(payload []float64) error {
	_, _, err := DecodeRankSnapshot(payload)
	return err
}

// DecodeRankSnapshot decodes a payload produced by EncodeRankSnapshot.
// This is the untrusted surface of the localized-recovery path: the
// copy survived in a peer's memory across a failure, so framing, every
// header dimension, and the payload CRC are all verified before any
// allocation is trusted. All failures wrap ErrBuddySnapshot.
func DecodeRankSnapshot(payload []float64) (*dycore.State, int, error) {
	if len(payload) < 1 {
		return nil, 0, fmt.Errorf("%w: empty payload", ErrBuddySnapshot)
	}
	n := math.Float64bits(payload[0])
	if n > maxSnapshotBytes {
		return nil, 0, fmt.Errorf("%w: framed length %d too large", ErrBuddySnapshot, n)
	}
	words := (int(n) + 7) / 8
	if words != len(payload)-1 {
		return nil, 0, fmt.Errorf("%w: framed length %d needs %d words, payload has %d",
			ErrBuddySnapshot, n, words, len(payload)-1)
	}
	b := make([]byte, words*8)
	for i := 0; i < words; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(payload[1+i]))
	}
	st, step, err := ReadCheckpoint(bytes.NewReader(b[:n]))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %w", ErrBuddySnapshot, err)
	}
	return st, step, nil
}
