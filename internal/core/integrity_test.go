package core

import (
	"errors"
	"math"
	"path/filepath"
	"testing"
	"time"

	"swcam/internal/integrity"
	"swcam/internal/mpirt"
	"swcam/internal/obs"
)

// The integrity-defense tests: resident-state flips caught by the
// at-rest scrubber, checkpoint-copy flips caught by verified restore
// and end-of-life audits, invariant drift caught by the conservation
// ledger, pre-ship verification keeping rotten snapshots off the wire —
// and through all of it, recovery that converges to the bit-identical
// fault-free trajectory.

// integrityJob wires a probe (the counters the assertions read) into a
// chaos-setup job with the SDC defenses on.
func (cs *chaosSetup) integrityJob(t *testing.T, scrubEvery int) (*ParallelJob, *obs.Probe) {
	t.Helper()
	job := cs.newJob(t)
	job.EnableIntegrity(scrubEvery)
	p := obs.NewProbe()
	job.Instrument(p)
	return job, p
}

// A single resident-state bit flip — finite, physically plausible,
// invisible to every message CRC — must be caught by the next at-rest
// scrub window, rolled back, and replayed to the bit-identical answer.
func TestScrubDetectsResidentStateFlip(t *testing.T) {
	cs := newChaosSetup(t)
	job, p := cs.integrityJob(t, 1)
	job.Faults = mpirt.NewFaultPlan(cs.nranks).
		Add(mpirt.Fault{Rank: 1, AfterOp: cs.ops[1] / 2, Kind: mpirt.FlipState})
	rj := NewResilientJob(job)
	rj.CheckpointEvery = 2
	rj.MaxRetries = 5

	local := job.Scatter(cs.global)
	rs, err := rj.Run(local, cs.steps)
	if err != nil {
		t.Fatalf("supervised run failed: %v (events: %v)", err, rs.Events)
	}
	if got := p.R().CounterValue("integrity.flips.state"); got != 1 {
		t.Fatalf("injected flips = %d, want 1", got)
	}
	if got := p.R().CounterValue("integrity.scrub.detections"); got < 1 {
		t.Errorf("scrub never detected the flip (detections = %d): %v", got, rs.Events)
	}
	if rs.Rollbacks < 1 {
		t.Errorf("no rollback after detection: %v", rs.Events)
	}
	cs.assertBitIdentical(t, job.Gather(local))
}

// The detection error must route through the corruption rung, not the
// failure detector: a ladder-supervised run with only flip faults must
// never localize, respawn, or shrink (the ranks are healthy — their
// bits rotted).
func TestLadderRoutesCorruptionToVerifiedRestore(t *testing.T) {
	cs := newChaosSetup(t)
	job, p := cs.integrityJob(t, 1)
	job.Faults = mpirt.NewFaultPlan(cs.nranks).
		Add(mpirt.Fault{Rank: 0, AfterOp: cs.ops[0] / 3, Kind: mpirt.FlipState}).
		Add(mpirt.Fault{Rank: 2, AfterOp: cs.ops[2] / 2, Kind: mpirt.FlipState})
	rj := NewResilientJob(job)
	rj.Mode = ModeLadder
	rj.CheckpointEvery = 2
	rj.MaxRetries = 8

	local := job.Scatter(cs.global)
	rs, err := rj.Run(local, cs.steps)
	if err != nil {
		t.Fatalf("supervised run failed: %v (events: %v)", err, rs.Events)
	}
	if rs.Localized+rs.Respawns+rs.Shrinks != 0 {
		t.Errorf("corruption advanced the failure detector: %v", rs.Events)
	}
	if rs.Rollbacks < 1 {
		t.Errorf("no verified restore happened: %v", rs.Events)
	}
	if got := p.R().CounterValue("integrity.scrub.detections"); got < 2 {
		t.Errorf("detections = %d, want >= 2", got)
	}
	cs.assertBitIdentical(t, job.Gather(rj.States()))
}

// The flip chaos soak: seeded random plans of flipState, flipCheckpoint
// and flipBuddy faults across all ranks. Every injected flip must be
// detected somewhere (scrub, verified restore, or end-of-life audit —
// zero undetected corruptions), every fault must fire, and the run must
// finish bit-identical to the fault-free trajectory.
func TestFlipChaosSoakDetectsEverythingBitIdentical(t *testing.T) {
	cs := newChaosSetup(t)
	minOps := cs.ops[0]
	for _, v := range cs.ops {
		if v < minOps {
			minOps = v
		}
	}
	for _, seed := range []int64{7, 42, 1234} {
		job, p := cs.integrityJob(t, 1)
		plan := mpirt.NewFlipChaosPlan(seed, cs.nranks, minOps, 6)
		job.Faults = plan
		job.RecvTimeout = 2 * time.Second
		rj := NewResilientJob(job)
		rj.Mode = ModeLadder
		rj.CheckpointEvery = 2
		rj.Generations = 2
		rj.MaxRetries = 25
		rj.DiskPath = filepath.Join(t.TempDir(), "soak.ck")

		local := job.Scatter(cs.global)
		rs, err := rj.Run(local, cs.steps)
		if err != nil {
			t.Fatalf("seed %d: supervised run failed: %v (events: %v)", seed, err, rs.Events)
		}
		if pending := plan.Pending(); len(pending) != 0 {
			t.Errorf("seed %d: flips never fired: %+v", seed, pending)
		}
		reg := p.R()
		injected := reg.CounterValue("integrity.flips.state") +
			reg.CounterValue("integrity.flips.checkpoint") +
			reg.CounterValue("integrity.flips.buddy")
		detected := reg.CounterValue("integrity.scrub.detections") +
			reg.CounterValue("integrity.ledger.detections") +
			reg.CounterValue("integrity.gen.poisoned") +
			reg.CounterValue("integrity.preship.rejects")
		if injected != 6 {
			t.Errorf("seed %d: %d flips injected, want 6", seed, injected)
		}
		if detected < injected {
			t.Errorf("seed %d: %d/%d flips detected — undetected silent corruption: %v",
				seed, detected, injected, rs.Events)
		}
		cs.assertBitIdentical(t, job.Gather(rj.States()))
	}
}

// corruptGenOwn flips one mantissa bit of rank 1's own snapshot in
// generation g — rot landing in checkpoint memory after the seal.
func corruptGenOwn(g *ckptGeneration) {
	v := &g.own[1].T[0][3]
	*v = math.Float64frombits(math.Float64bits(*v) ^ (1 << 17))
}

// The poisoned-generation escalation matrix, case 1: the newest
// generation rots in checkpoint memory, so a rollback must escalate to
// the next-older (verified) generation and replay the extra steps.
func TestRestoreEscalatesPastPoisonedGeneration(t *testing.T) {
	cs := newChaosSetup(t)
	job, p := cs.integrityJob(t, 1)
	job.Faults = mpirt.NewFaultPlan(cs.nranks).
		Add(mpirt.Fault{Rank: 2, AfterOp: cs.ops[2] * 3 / 4, Kind: mpirt.KillRank})
	rj := NewResilientJob(job)
	rj.CheckpointEvery = 2
	rj.Generations = 3
	rj.MaxRetries = 5
	corrupted := false
	rj.OnEvent = func(e RecoveryEvent) {
		// Poison the newest generation right after the second checkpoint
		// is captured; the kill later in the run forces a restore through
		// it.
		if e.Kind == "checkpoint" && e.Step == 4 && !corrupted {
			corrupted = true
			corruptGenOwn(rj.gens[0])
		}
	}
	local := job.Scatter(cs.global)
	rs, err := rj.Run(local, cs.steps)
	if err != nil {
		t.Fatalf("supervised run failed: %v (events: %v)", err, rs.Events)
	}
	if !corrupted {
		t.Fatal("test never corrupted a generation (checkpoint cadence changed?)")
	}
	if rs.Poisoned < 1 || rs.Escalations < 1 {
		t.Errorf("poisoned = %d, escalations = %d, want >= 1 each: %v", rs.Poisoned, rs.Escalations, rs.Events)
	}
	if got := p.R().CounterValue("integrity.gen.escalations"); got < 1 {
		t.Errorf("escalation counter = %d, want >= 1", got)
	}
	if rs.Rollbacks < 1 {
		t.Errorf("no rollback recorded: %v", rs.Events)
	}
	cs.assertBitIdentical(t, job.Gather(local))
}

// Case 2: every retained generation is poisoned, so the restore falls
// through the whole ring to the disk checkpoint — and still finishes
// bit-identical.
func TestRestoreFallsThroughPoisonedRingToDisk(t *testing.T) {
	cs := newChaosSetup(t)
	job, _ := cs.integrityJob(t, 1)
	job.Faults = mpirt.NewFaultPlan(cs.nranks).
		Add(mpirt.Fault{Rank: 2, AfterOp: cs.ops[2] * 3 / 4, Kind: mpirt.KillRank})
	rj := NewResilientJob(job)
	rj.CheckpointEvery = 2
	rj.Generations = 2
	rj.MaxRetries = 5
	rj.DiskPath = filepath.Join(t.TempDir(), "fallthrough.ck")
	hit := map[*ckptGeneration]bool{}
	rj.OnEvent = func(e RecoveryEvent) {
		if e.Kind == "checkpoint" {
			for _, g := range rj.gens {
				if !hit[g] {
					hit[g] = true
					corruptGenOwn(g)
				}
			}
		}
	}
	local := job.Scatter(cs.global)
	rs, err := rj.Run(local, cs.steps)
	if err != nil {
		t.Fatalf("supervised run failed: %v (events: %v)", err, rs.Events)
	}
	if rs.Escalations < 2 {
		t.Errorf("escalations = %d, want >= 2 (both generations dropped): %v", rs.Escalations, rs.Events)
	}
	if rs.Rollbacks < 1 {
		t.Errorf("disk rung never fired: %v", rs.Events)
	}
	cs.assertBitIdentical(t, job.Gather(local))
}

// Case 3: every generation poisoned and no disk checkpoint — the
// supervisor must give up gracefully with a diagnosis wrapping
// ErrCorrupt, not restore garbage and not hang.
func TestRestoreGivesUpWhenEverythingIsPoisoned(t *testing.T) {
	cs := newChaosSetup(t)
	job, _ := cs.integrityJob(t, 1)
	job.Faults = mpirt.NewFaultPlan(cs.nranks).
		Add(mpirt.Fault{Rank: 2, AfterOp: cs.ops[2] * 3 / 4, Kind: mpirt.KillRank})
	rj := NewResilientJob(job)
	rj.CheckpointEvery = 2
	rj.Generations = 2
	rj.MaxRetries = 5
	hit := map[*ckptGeneration]bool{}
	rj.OnEvent = func(e RecoveryEvent) {
		if e.Kind == "checkpoint" {
			for _, g := range rj.gens {
				if !hit[g] {
					hit[g] = true
					corruptGenOwn(g)
				}
			}
		}
	}
	local := job.Scatter(cs.global)
	rs, err := rj.Run(local, cs.steps)
	if err == nil {
		t.Fatalf("run claimed success with every checkpoint poisoned: %v", rs.Events)
	}
	if !errors.Is(err, integrity.ErrCorrupt) {
		t.Errorf("diagnosis lost the corruption detail: %v", err)
	}
	kinds := map[string]bool{}
	for _, e := range rs.Events {
		kinds[e.Kind] = true
	}
	if !kinds["giveup"] || !kinds["poisoned"] {
		t.Errorf("missing giveup/poisoned events: %v", rs.Events)
	}
}

// A snapshot that rots between encode and ship is rejected by the
// pre-ship verification and re-encoded from the live state — the
// partner's last good copy is never overwritten with garbage, and the
// run proceeds as if nothing happened.
func TestPreShipVerificationRepairsRottenSnapshot(t *testing.T) {
	cs := newChaosSetup(t)
	job, p := cs.integrityJob(t, 1)
	rj := NewResilientJob(job)
	rj.Mode = ModeLadder
	rj.CheckpointEvery = 2
	corrupted := false
	rj.PreShipHook = func(rank int, enc []float64) {
		if rank == 1 && !corrupted {
			corrupted = true
			enc[len(enc)/2] = math.Float64frombits(math.Float64bits(enc[len(enc)/2]) ^ 1)
		}
	}
	local := job.Scatter(cs.global)
	rs, err := rj.Run(local, cs.steps)
	if err != nil {
		t.Fatalf("supervised run failed: %v (events: %v)", err, rs.Events)
	}
	if got := p.R().CounterValue("integrity.preship.rejects"); got != 1 {
		t.Errorf("preship rejects = %d, want 1", got)
	}
	if rs.Rollbacks+rs.Localized != 0 {
		t.Errorf("pre-ship repair leaked into recovery: %v", rs.Events)
	}
	cs.assertBitIdentical(t, job.Gather(rj.States()))
}

// A snapshot that fails verification even after a re-encode must not
// ship at all: the checkpoint round fails with ErrCorrupt instead of
// poisoning the partner.
func TestPreShipVerificationRefusesPersistentRot(t *testing.T) {
	cs := newChaosSetup(t)
	job, _ := cs.integrityJob(t, 1)
	rj := NewResilientJob(job)
	rj.Mode = ModeLadder
	rj.MaxRetries = 0
	rj.PreShipHook = func(rank int, enc []float64) {
		if rank == 1 {
			enc[len(enc)/2] = math.Float64frombits(math.Float64bits(enc[len(enc)/2]) ^ 1)
		}
	}
	local := job.Scatter(cs.global)
	_, err := rj.Run(local, cs.steps)
	if err == nil {
		t.Fatal("a persistently rotten snapshot shipped")
	}
	if !errors.Is(err, integrity.ErrCorrupt) {
		t.Errorf("rejection not classified as corruption: %v", err)
	}
}

// A flipped checkpoint copy that no restore ever consults must still be
// counted: the end-of-life audit (eviction past the retention cap, or
// end of run) verifies it and records the poisoning. Zero undetected
// corruptions means zero, not "zero among the copies we happened to
// read".
func TestAuditCountsUnconsultedCorruption(t *testing.T) {
	cs := newChaosSetup(t)
	job, p := cs.integrityJob(t, 1)
	rj := NewResilientJob(job)
	rj.CheckpointEvery = 2
	rj.Generations = 1 // second checkpoint evicts (and audits) the first
	corrupted := false
	rj.OnEvent = func(e RecoveryEvent) {
		if e.Kind == "checkpoint" && !corrupted {
			corrupted = true
			corruptGenOwn(rj.gens[0])
		}
	}
	local := job.Scatter(cs.global)
	rs, err := rj.Run(local, cs.steps)
	if err != nil {
		t.Fatalf("fault-free run failed: %v (events: %v)", err, rs.Events)
	}
	if rs.Poisoned < 1 {
		t.Errorf("audit missed the corrupted evicted generation: %v", rs.Events)
	}
	if got := p.R().CounterValue("integrity.gen.audits"); got < 1 {
		t.Errorf("audit counter = %d, want >= 1", got)
	}
	if rs.Rollbacks != 0 {
		t.Errorf("audit triggered recovery on a fault-free run: %v", rs.Events)
	}
	// The live trajectory never read the poisoned copy: still identical.
	cs.assertBitIdentical(t, job.Gather(local))
}

// The in-compute guard: corruption that lands where the scrubber cannot
// see it (inside a step, or with scrubbing effectively off) must still
// trip the conservation ledger — here a temperature scaling that leaves
// the state finite but breaks energy conservation step-over-step.
func TestLedgerDetectsInComputeCorruption(t *testing.T) {
	cs := newChaosSetup(t)
	// Scrub cadence far beyond the run: the ledger is the only guard.
	job, p := cs.integrityJob(t, 1000)
	local := job.Scatter(cs.global)
	if _, err := job.RunChecked(local, 2); err != nil {
		t.Fatalf("clean steps failed: %v", err)
	}
	for e := range local[0].T {
		for i := range local[0].T[e] {
			local[0].T[e][i] *= 2 // finite, watchdog-invisible, unphysical
		}
	}
	_, err := job.RunChecked(local, 1)
	if err == nil {
		t.Fatal("ledger missed a 2x energy injection")
	}
	if !errors.Is(err, integrity.ErrCorrupt) {
		t.Errorf("ledger detection not classified as corruption: %v", err)
	}
	if got := p.R().CounterValue("integrity.ledger.detections"); got != 1 {
		t.Errorf("ledger detections = %d, want 1", got)
	}
	if job.StepCount() != 2 {
		t.Errorf("step counter advanced past a flagged step: %d", job.StepCount())
	}
}

// The ledger must tolerate the model's real step-over-step drift: a
// fault-free supervised run with the defenses on reports nothing.
func TestIntegrityFaultFreeIsSilentAndBitIdentical(t *testing.T) {
	cs := newChaosSetup(t)
	job, p := cs.integrityJob(t, 1)
	rj := NewResilientJob(job)
	rj.Mode = ModeLadder
	rj.CheckpointEvery = 2
	rj.Generations = 3
	local := job.Scatter(cs.global)
	rs, err := rj.Run(local, cs.steps)
	if err != nil {
		t.Fatalf("fault-free run failed: %v (events: %v)", err, rs.Events)
	}
	reg := p.R()
	for _, c := range []string{
		"integrity.scrub.detections", "integrity.ledger.detections",
		"integrity.gen.poisoned", "integrity.preship.rejects",
	} {
		if got := reg.CounterValue(c); got != 0 {
			t.Errorf("%s = %d on a fault-free run", c, got)
		}
	}
	if reg.CounterValue("integrity.scrub.verifies") == 0 ||
		reg.CounterValue("integrity.ledger.checks") == 0 ||
		reg.CounterValue("integrity.preship.checks") == 0 {
		t.Error("defenses were silent because they never ran")
	}
	if rs.Rollbacks+rs.Localized+rs.Poisoned != 0 {
		t.Errorf("spurious recovery activity: %v", rs.Events)
	}
	cs.assertBitIdentical(t, job.Gather(rj.States()))
}

// ScrubVerifyLive is the pre-checkpoint gate: a flip landing after the
// final step of a chunk — where no next-step verify would run — must be
// caught before the state is captured.
func TestScrubVerifyLiveClosesTheLastWindow(t *testing.T) {
	cs := newChaosSetup(t)
	job, _ := cs.integrityJob(t, 1)
	local := job.Scatter(cs.global)
	if _, err := job.RunChecked(local, 2); err != nil {
		t.Fatal(err)
	}
	if err := job.ScrubVerifyLive(local); err != nil {
		t.Fatalf("clean state failed live verification: %v", err)
	}
	v := &local[1].DP[0][7]
	*v = math.Float64frombits(math.Float64bits(*v) ^ (1 << 3))
	err := job.ScrubVerifyLive(local)
	if err == nil {
		t.Fatal("live verification missed a post-step flip")
	}
	if !errors.Is(err, integrity.ErrCorrupt) {
		t.Errorf("detection not classified as corruption: %v", err)
	}
}
