package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"swcam/internal/mesh"
)

// History output: regular lat-lon snapshots of named model fields, the
// "h0 history file" role in CAM. The sampler maps each lat-lon point to
// its nearest GLL node once at setup; frames are then cheap. The file
// format is self-describing (header + field names + frames) and has a
// matching reader.

// Sampler maps a regular lat-lon grid onto the cubed-sphere GLL nodes.
type Sampler struct {
	Nlon, Nlat int
	elem       []int32 // per grid point: element id
	node       []int32 // per grid point: node index within the element
}

// NewSampler builds the nearest-node mapping for an nlon x nlat grid
// (cell-centred: lon_i = (i+0.5)*2pi/nlon, lat_j from -pi/2 to pi/2).
func NewSampler(m *mesh.Mesh, nlon, nlat int) *Sampler {
	if nlon < 1 || nlat < 1 {
		panic(fmt.Sprintf("core: bad sampler grid %dx%d", nlon, nlat))
	}
	s := &Sampler{
		Nlon: nlon, Nlat: nlat,
		elem: make([]int32, nlon*nlat),
		node: make([]int32, nlon*nlat),
	}
	npsq := m.Np * m.Np
	for j := 0; j < nlat; j++ {
		lat := -math.Pi/2 + (float64(j)+0.5)*math.Pi/float64(nlat)
		for i := 0; i < nlon; i++ {
			lon := (float64(i) + 0.5) * 2 * math.Pi / float64(nlon)
			p := mesh.Vec3{
				math.Cos(lat) * math.Cos(lon),
				math.Cos(lat) * math.Sin(lon),
				math.Sin(lat),
			}
			bestD := math.Inf(1)
			var be, bn int32
			for ei, e := range m.Elements {
				// Cheap reject: compare against the element's first node
				// before scanning all nodes.
				if d := mesh.GreatCircleDist(p, e.Pos[0]); d-2*e.DAlpha > bestD {
					continue
				}
				for n := 0; n < npsq; n++ {
					if d := mesh.GreatCircleDist(p, e.Pos[n]); d < bestD {
						bestD, be, bn = d, int32(ei), int32(n)
					}
				}
			}
			s.elem[j*nlon+i] = be
			s.node[j*nlon+i] = bn
		}
	}
	return s
}

// Sample extracts one level of a per-element field onto the lat-lon grid.
func (s *Sampler) Sample(field [][]float64, level, npsq int, out []float64) {
	if len(out) != s.Nlon*s.Nlat {
		panic("core: sample buffer size mismatch")
	}
	for g := range out {
		out[g] = field[s.elem[g]][level*npsq+int(s.node[g])]
	}
}

// HistoryWriter streams frames of named fields to w.
type HistoryWriter struct {
	w       *bufio.Writer
	sampler *Sampler
	fields  []string
	frames  int
}

const historyMagic = 0x53574831 // "SWH1"

// NewHistoryWriter writes the header (grid dims + field names) and
// returns a writer for subsequent frames.
func NewHistoryWriter(w io.Writer, sampler *Sampler, fields []string) (*HistoryWriter, error) {
	hw := &HistoryWriter{w: bufio.NewWriter(w), sampler: sampler, fields: fields}
	hdr := []int64{historyMagic, int64(sampler.Nlon), int64(sampler.Nlat), int64(len(fields))}
	if err := binary.Write(hw.w, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	for _, f := range fields {
		name := make([]byte, 16)
		copy(name, f)
		if _, err := hw.w.Write(name); err != nil {
			return nil, err
		}
	}
	return hw, nil
}

// WriteFrame samples and writes one snapshot: the given level of each
// field, stamped with the simulated hours.
func (hw *HistoryWriter) WriteFrame(hours float64, level, npsq int, fieldData ...[][]float64) error {
	if len(fieldData) != len(hw.fields) {
		return fmt.Errorf("core: frame has %d fields, header declared %d", len(fieldData), len(hw.fields))
	}
	if err := binary.Write(hw.w, binary.LittleEndian, hours); err != nil {
		return err
	}
	buf := make([]float64, hw.sampler.Nlon*hw.sampler.Nlat)
	for _, f := range fieldData {
		hw.sampler.Sample(f, level, npsq, buf)
		if err := binary.Write(hw.w, binary.LittleEndian, buf); err != nil {
			return err
		}
	}
	hw.frames++
	return nil
}

// Close flushes buffered frames.
func (hw *HistoryWriter) Close() error { return hw.w.Flush() }

// HistoryFrame is one decoded snapshot.
type HistoryFrame struct {
	Hours float64
	Data  map[string][]float64 // field name -> nlon*nlat values
}

// ReadHistory decodes a complete history stream.
func ReadHistory(r io.Reader) (nlon, nlat int, frames []HistoryFrame, err error) {
	br := bufio.NewReader(r)
	hdr := make([]int64, 4)
	if err = binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return 0, 0, nil, fmt.Errorf("core: history header: %w", err)
	}
	if hdr[0] != historyMagic {
		return 0, 0, nil, fmt.Errorf("core: not a history file (magic %#x)", hdr[0])
	}
	nlon, nlat = int(hdr[1]), int(hdr[2])
	nf := int(hdr[3])
	// Bound dims before allocating frame buffers (hostile-input safety,
	// like the checkpoint reader).
	if nlon < 1 || nlon > 1<<16 || nlat < 1 || nlat > 1<<15 || nf < 1 || nf > 1024 {
		return 0, 0, nil, fmt.Errorf("core: corrupt history dims %v", hdr)
	}
	if nlon*nlat > 1<<26 {
		return 0, 0, nil, fmt.Errorf("core: history grid too large (%dx%d)", nlon, nlat)
	}
	names := make([]string, nf)
	for i := range names {
		raw := make([]byte, 16)
		if _, err = io.ReadFull(br, raw); err != nil {
			return 0, 0, nil, err
		}
		end := 0
		for end < len(raw) && raw[end] != 0 {
			end++
		}
		names[i] = string(raw[:end])
	}
	for {
		var hours float64
		if err = binary.Read(br, binary.LittleEndian, &hours); err == io.EOF {
			return nlon, nlat, frames, nil
		} else if err != nil {
			return 0, 0, nil, fmt.Errorf("core: history frame: %w", err)
		}
		fr := HistoryFrame{Hours: hours, Data: map[string][]float64{}}
		for _, name := range names {
			vals := make([]float64, nlon*nlat)
			if err = binary.Read(br, binary.LittleEndian, vals); err != nil {
				return 0, 0, nil, fmt.Errorf("core: history frame %q: %w", name, err)
			}
			fr.Data[name] = vals
		}
		frames = append(frames, fr)
	}
}

// WriteHistoryFrameForModel is a convenience: sample the model's surface
// level of T, U, V (and qv if present) into an open writer.
func WriteHistoryFrameForModel(hw *HistoryWriter, m *Model) error {
	npsq := m.Solver.Cfg.Np * m.Solver.Cfg.Np
	level := m.Solver.Cfg.Nlev - 1
	fields := [][][]float64{m.State.T, m.State.U, m.State.V}
	if m.Solver.Cfg.Qsize > 0 {
		qv := make([][]float64, m.State.NElem())
		for ei := range qv {
			qv[ei] = m.State.QdpAt(ei, 0)
		}
		fields = append(fields, qv)
	}
	return hw.WriteFrame(m.SimHours(), level, npsq, fields...)
}
