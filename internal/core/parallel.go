package core

import (
	"errors"
	"fmt"
	"time"

	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/halo"
	"swcam/internal/integrity"
	"swcam/internal/mesh"
	"swcam/internal/mpirt"
	"swcam/internal/obs"
)

// ErrBlowup is wrapped by the blowup watchdog when the allreduced state
// check fails on any rank: every rank agrees to abort together, and the
// supervisor (ResilientJob) rolls back to the last checkpoint.
var ErrBlowup = errors.New("core: numerical blowup detected by watchdog")

// ParallelJob is the distributed dycore driver: the mesh partitioned
// over nranks processes (one simulated core group each), every rank
// running its kernels through an execution backend and resolving shared
// GLL nodes with the boundary exchange — the full "MPI + X" pipeline of
// the paper, in miniature. Its results are validated against the serial
// Solver bit-for-bit up to scan-regrouping rounding.
type ParallelJob struct {
	Cfg     dycore.Config
	Backend exec.Backend
	Overlap bool // use the redesigned bndry_exchangev (§7.6)
	NRanks  int

	Mesh   *mesh.Mesh
	Hybrid *dycore.HybridCoord
	RankOf []int
	Plans  []*halo.Plan
	engs   []*exec.Engine

	// Per-rank compiled element subsets for the §7.6 boundary-first
	// split: bsub covers Plan.BoundaryElems, isub Plan.InnerElems.
	// Rebuilt whenever the partition changes (Shrink).
	bsub []*exec.ElemSubset
	isub []*exec.ElemSubset

	// Resilience knobs (zero values = the historical fault-free setup).
	Faults      *mpirt.FaultPlan  // injected faults, threaded through every world
	RecvTimeout time.Duration     // receive deadline; makes lost messages ErrTimeout
	CheckEvery  int               // run the blowup watchdog every N steps (0 = off)
	MaxWind     float64           // CFL wind guard for the watchdog; 0 = Cfg.CFLMaxWind(0.9)
	Retry       mpirt.RetryPolicy // bounded per-message retransmission (zero = off)

	// Obs observes the run when set via Instrument (nil = off).
	Obs *obs.Probe

	// DynWorkers records the configured intra-rank worker-pool size
	// (0 = the engines' default of one worker; set via SetDynWorkers).
	DynWorkers int
	dynSet     bool // SetDynWorkers was called (0 then means "auto", not "default")

	// Physics phase (nil = dynamics-only; see EnablePhysics).
	phys     *jobPhysics
	rankPhys []*rankPhys

	// TotalPrecip is the global-mean accumulated precipitation, kg/m^2,
	// advanced by rank 0 after each canonical reduction. ResilientJob
	// rewinds it with the step counter on rollback.
	TotalPrecip float64

	// PhysPanicHook, when set BEFORE EnablePhysics, is called at the
	// start of every physics chunk — the chaos tests' fault injector for
	// the work-stealing scheduler.
	PhysPanicHook func(rank, worker, elem int)

	// Integrity defenses (0/nil = off; see EnableIntegrity): the at-rest
	// scrub cadence, per-rank live seals (each rank goroutine touches
	// only its own slot, like scratch), and the rank-0-owned invariant
	// ledger with its pending violation detail.
	ScrubEvery int
	seals      []*integrity.RankSeal
	ledger     *integrity.Ledger
	ledgerErr  error

	steps   int
	scratch []*stepScratch // per-rank pooled step workspaces (lazy)
}

// stepScratch is one rank's reusable step-loop workspace: the SSP-RK2
// stage states, the hyperviscosity Laplacian fields, and the tracer
// stage copy. Pooling these removes the per-step heap churn that
// dominated stepRank before the engines went parallel; every field is
// fully overwritten before it is read each step, so reuse cannot change
// results.
type stepScratch struct {
	s1, s2                 *dycore.State
	lapU, lapV, lapT, lapP [][]float64
	qn                     [][]float64
}

// stepScratchFor returns rank r's pooled step workspace, building it on
// first use to match the rank's local state shape. The backing slice is
// allocated eagerly in NewParallelJob: rank goroutines call this
// concurrently, and each may only touch its own slot — a lazy nil-check
// here would race on the slice header itself.
func (j *ParallelJob) stepScratchFor(r int, st *dycore.State) *stepScratch {
	sc := j.scratch[r]
	if sc == nil {
		nlev := j.Cfg.Nlev
		npsq := j.Cfg.Np * j.Cfg.Np
		n := st.NElem()
		sc = &stepScratch{
			s1:   dycore.NewState(n, j.Cfg.Np, nlev, j.Cfg.Qsize),
			s2:   dycore.NewState(n, j.Cfg.Np, nlev, j.Cfg.Qsize),
			lapU: allocFields(n, nlev*npsq),
			lapV: allocFields(n, nlev*npsq),
			lapT: allocFields(n, nlev*npsq),
			lapP: allocFields(n, nlev*npsq),
			qn:   allocFields(n, j.Cfg.Qsize*nlev*npsq),
		}
		j.scratch[r] = sc
	}
	return sc
}

// SetDynWorkers sizes every rank engine's intra-rank worker pool: each
// kernel call tiles the rank's elements across n concurrent workers
// with private workspaces. n <= 0 selects per-rank ADAPTIVE sizing
// (exec.SetWorkersAuto): the machine default capped so each worker
// keeps enough element blocks to amortize tiling overhead, down to the
// inline serial path on tiny ranks. Results are bit-identical for
// every n.
func (j *ParallelJob) SetDynWorkers(n int) {
	j.DynWorkers = n
	j.dynSet = true
	for _, en := range j.engs {
		if n <= 0 {
			en.SetWorkersAuto()
		} else {
			en.SetWorkers(n)
		}
	}
}

// EngineWorkers reports the effective per-rank worker-pool size after
// defaulting (1 until SetDynWorkers is called).
func (j *ParallelJob) EngineWorkers() int {
	if len(j.engs) == 0 {
		return 1
	}
	return j.engs[0].Workers()
}

// NewParallelJob partitions the mesh and builds per-rank plans/engines.
func NewParallelJob(cfg dycore.Config, backend exec.Backend, overlap bool, nranks int) (*ParallelJob, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := mesh.New(cfg.Ne, cfg.Np)
	rankOf, err := m.Partition(nranks)
	if err != nil {
		return nil, err
	}
	j := &ParallelJob{
		Cfg: cfg, Backend: backend, Overlap: overlap, NRanks: nranks,
		Mesh: m, Hybrid: dycore.NewHybridCoord(cfg.Nlev), RankOf: rankOf,
	}
	j.Plans = make([]*halo.Plan, nranks)
	j.engs = make([]*exec.Engine, nranks)
	j.scratch = make([]*stepScratch, nranks)
	for r := 0; r < nranks; r++ {
		j.Plans[r] = halo.NewPlan(m, rankOf, r)
		j.engs[r] = exec.NewEngine(m, j.Plans[r].Elems, cfg.Nlev, cfg.Qsize)
	}
	j.compileSubsets()
	return j, nil
}

// compileSubsets registers each rank's boundary/interior element lists
// with its engine so the overlap path can launch kernels in two halves.
// Must be re-run after any change to Plans or engs (partition rebuilds).
func (j *ParallelJob) compileSubsets() {
	j.bsub = make([]*exec.ElemSubset, j.NRanks)
	j.isub = make([]*exec.ElemSubset, j.NRanks)
	for r := 0; r < j.NRanks; r++ {
		j.bsub[r] = j.engs[r].CompileSubset(j.Plans[r].BoundaryElems)
		j.isub[r] = j.engs[r].CompileSubset(j.Plans[r].InnerElems)
	}
}

// Scatter splits a global state (element-indexed like the mesh) into
// per-rank local states.
func (j *ParallelJob) Scatter(global *dycore.State) []*dycore.State {
	out := make([]*dycore.State, j.NRanks)
	for r := 0; r < j.NRanks; r++ {
		p := j.Plans[r]
		st := dycore.NewState(p.NLocal(), j.Cfg.Np, j.Cfg.Nlev, j.Cfg.Qsize)
		for le, ge := range p.Elems {
			copy(st.U[le], global.U[ge])
			copy(st.V[le], global.V[ge])
			copy(st.T[le], global.T[ge])
			copy(st.DP[le], global.DP[ge])
			copy(st.Qdp[le], global.Qdp[ge])
			copy(st.Phis[le], global.Phis[ge])
		}
		out[r] = st
	}
	return out
}

// Gather reassembles a global state from the per-rank locals.
func (j *ParallelJob) Gather(local []*dycore.State) *dycore.State {
	g := dycore.NewState(j.Mesh.NElems(), j.Cfg.Np, j.Cfg.Nlev, j.Cfg.Qsize)
	for r, st := range local {
		for le, ge := range j.Plans[r].Elems {
			copy(g.U[ge], st.U[le])
			copy(g.V[ge], st.V[le])
			copy(g.T[ge], st.T[le])
			copy(g.DP[ge], st.DP[le])
			copy(g.Qdp[ge], st.Qdp[le])
			copy(g.Phis[ge], st.Phis[le])
		}
	}
	return g
}

// RunStats aggregates one run's communication and kernel costs.
type RunStats struct {
	Halo  halo.Stats
	Cost  exec.Cost
	Steps int
	// Retransmission activity across all ranks (nonzero only with a
	// RetryPolicy set): retry cycles entered, and messages recovered
	// from the retransmit log instead of aborting the world.
	RetxAttempts  int64
	RetxRecovered int64
}

// runDSS runs a DSS-preceding kernel and its exchange as one pipelined
// unit on rank r. In Overlap mode the kernel is launched boundary-first
// (§7.6): the Open half covers Plan.BoundaryElems, whose values the
// exchange packs and posts asynchronously, and the Close half runs over
// Plan.InnerElems *inside* the exchange's computeInner — real work
// filling the window while messages are in flight. Without Overlap the
// kernel runs whole and the original blocking exchange follows. Both
// paths are bit-identical: the split launches compute exactly the
// unsplit kernel (see exec/subset.go) and both exchange flavours walk
// the same canonical chains.
//
// A detected transport fault (corruption, loss, aborted world) unwinds
// the rank via mpirt.Fail rather than threading an error through every
// frame of the timestep; World.Run converts it back into an error.
func (j *ParallelJob) runDSS(c *mpirt.Comm, r int, rs *RunStats, levels int,
	run func(exec.Subset) exec.Cost, fields ...[][]float64) {
	lay := halo.LevelMajor(levels, j.Cfg.Np*j.Cfg.Np)
	var s halo.Stats
	var err error
	if j.Overlap {
		rs.Cost.Add(run(exec.Subset{Sel: j.bsub[r], Phase: exec.Open}))
		inner := func() {
			rs.Cost.Add(run(exec.Subset{Sel: j.isub[r], Phase: exec.Close}))
		}
		s, err = j.Plans[r].DSSOverlap(c, lay, inner, fields...)
	} else {
		rs.Cost.Add(run(exec.Subset{}))
		s, err = j.Plans[r].DSSOriginal(c, lay, fields...)
	}
	if err != nil {
		mpirt.Fail(err)
	}
	rs.Halo.Add(s)
}

// Run advances the per-rank states n dynamics steps, mirroring the
// serial Solver.Step sequence exactly: SSP-RK2 dynamics, two-pass
// hyperviscosity with a global mass fixer, SSP-RK2 tracers with the
// positivity limiter, and the periodic vertical remap. A faulted world
// panics; fault-tolerant callers use RunChecked (or the ResilientJob
// supervisor, which adds checkpoints and rollback).
func (j *ParallelJob) Run(local []*dycore.State, n int) RunStats {
	stats, err := j.RunChecked(local, n)
	if err != nil {
		panic(err)
	}
	return stats
}

// RunChecked is Run with failure semantics: if any rank faults (injected
// kill, detected corruption, lost message, blowup watchdog, panic), it
// returns the error from World.Run naming the faulty rank. On error the
// step counter is NOT advanced and the local states are in an undefined,
// partially-stepped condition — the caller must restore them from a
// checkpoint before retrying.
func (j *ParallelJob) RunChecked(local []*dycore.State, n int) (RunStats, error) {
	if len(local) != j.NRanks {
		panic(fmt.Sprintf("core: %d local states for %d ranks", len(local), j.NRanks))
	}
	var stats RunStats
	stats.Cost.Backend = j.Backend
	perRank := make([]RunStats, j.NRanks)
	w := mpirt.NewWorld(j.NRanks)
	if j.Faults != nil {
		w.SetFaults(j.Faults)
	}
	if j.RecvTimeout > 0 {
		w.SetRecvTimeout(j.RecvTimeout)
	}
	w.SetRetry(j.Retry)
	w.SetTracer(j.Obs.T())
	err := w.Run(func(c *mpirt.Comm) {
		r := c.Rank()
		for step := 0; step < n; step++ {
			sp := j.Obs.T().Begin(r, "core.step", "model")
			t0 := time.Now()
			j.stepRank(c, r, local[r], &perRank[r], j.steps+step+1)
			j.Obs.R().Counter("core.step.ns").Add(time.Since(t0).Nanoseconds())
			sp.End()
			// Injected resident-state flips land here, in the at-rest
			// window after the end-of-step reseal — whether or not the
			// scrubber is on; the fault model never depends on the defense.
			j.injectStateFlip(r, local[r])
		}
	})
	for r := range perRank {
		stats.Halo.Add(perRank[r].Halo)
		stats.Cost.Add(perRank[r].Cost)
	}
	for r := 0; r < j.NRanks; r++ {
		ws := w.Stats(r)
		stats.RetxAttempts += ws.RetxAttempts
		stats.RetxRecovered += ws.RetxRecovered
	}
	w.DumpStats(j.Obs.R())
	recordCost(j.Obs.R(), stats.Cost)
	if err != nil {
		return stats, err
	}
	j.steps += n
	stats.Steps = j.steps
	return stats, nil
}

// StepCount returns the number of dynamics steps completed so far.
func (j *ParallelJob) StepCount() int { return j.steps }

// SetStepCount rewinds (or fast-forwards) the step counter — the restart
// hook: after loading a checkpoint taken at step s, SetStepCount(s)
// resumes the remap and watchdog cadence exactly.
func (j *ParallelJob) SetStepCount(s int) { j.steps = s }

// checkState runs the blowup watchdog on one rank and allreduces the
// verdict so every rank agrees to abort together (the collective is a
// max over per-rank failure flags, so it cannot change the trajectory of
// a healthy run).
func (j *ParallelJob) checkState(c *mpirt.Comm, st *dycore.State) {
	maxWind := j.MaxWind
	if maxWind == 0 {
		maxWind = j.Cfg.CFLMaxWind(0.9)
	}
	err := st.Check(maxWind)
	bad := 0.0
	if err != nil {
		bad = 1
	}
	if c.AllreduceScalar(mpirt.OpMax, bad) > 0 {
		if err != nil {
			mpirt.Fail(fmt.Errorf("%w: %w", ErrBlowup, err))
		}
		mpirt.Fail(fmt.Errorf("%w (on a peer rank)", ErrBlowup))
	}
}

func (j *ParallelJob) stepRank(c *mpirt.Comm, r int, st *dycore.State, rs *RunStats, stepNo int) {
	cfg := j.Cfg
	en := j.engs[r]
	nlev := cfg.Nlev
	npsq := cfg.Np * cfg.Np

	// --- At-rest scrub: verify the state against the seal taken when it
	// was finalized, before any kernel consumes (and spreads) a flip. ---
	if j.ScrubEvery > 0 {
		j.scrubVerify(r, st, stepNo)
	}

	// --- Dynamics: SSP-RK2 with DSS after each stage. ---
	sc := j.stepScratchFor(r, st)
	s1, s2 := sc.s1, sc.s2
	s1.CopyFrom(st)
	j.runDSS(c, r, rs, nlev, func(sub exec.Subset) exec.Cost {
		return en.ComputeAndApplyRHSOn(sub, j.Backend, st, st, s1, cfg.Dt)
	}, s1.U, s1.V, s1.T, s1.DP)
	s2.CopyFrom(s1)
	j.runDSS(c, r, rs, nlev, func(sub exec.Subset) exec.Cost {
		return en.ComputeAndApplyRHSOn(sub, j.Backend, s1, s1, s2, cfg.Dt)
	}, s2.U, s2.V, s2.T, s2.DP)
	for le := range st.U {
		dycore.SSPRK2Combine(st.U[le], s2.U[le], st.U[le])
		dycore.SSPRK2Combine(st.V[le], s2.V[le], st.V[le])
		dycore.SSPRK2Combine(st.T[le], s2.T[le], st.T[le])
		dycore.SSPRK2Combine(st.DP[le], s2.DP[le], st.DP[le])
	}

	// --- Hyperviscosity with the proportional mass fixer. ---
	if cfg.HypervisSubcycle > 0 && (cfg.NuV != 0 || cfg.NuS != 0) {
		mass0 := j.canonicalMass(c, r, st)
		dt := cfg.Dt / float64(cfg.HypervisSubcycle)
		// Pooled Laplacian fields: HypervisDP1 overwrites every entry
		// before the DSS reads them, so reuse is safe.
		lapU, lapV, lapT, lapP := sc.lapU, sc.lapV, sc.lapT, sc.lapP
		for cyc := 0; cyc < cfg.HypervisSubcycle; cyc++ {
			j.runDSS(c, r, rs, nlev, func(sub exec.Subset) exec.Cost {
				return en.HypervisDP1On(sub, j.Backend, st, lapU, lapV, lapT, lapP)
			}, lapU, lapV, lapT, lapP)
			j.runDSS(c, r, rs, nlev, func(sub exec.Subset) exec.Cost {
				return en.HypervisDP2On(sub, j.Backend, lapU, lapV, lapT, lapP, st, dt, cfg.NuV, cfg.NuS)
			}, st.U, st.V, st.T, st.DP)
		}
		mass1 := j.canonicalMass(c, r, st)
		if mass1 > 0 {
			scale := mass0 / mass1
			for le := range st.DP {
				for i := range st.DP[le] {
					st.DP[le][i] *= scale
				}
			}
		}
	}

	// --- Tracers: SSP-RK2 with limiter, all tracers per exchange. ---
	if cfg.Qsize > 0 {
		qn := sc.qn
		for le := range st.Qdp {
			copy(qn[le], st.Qdp[le])
		}
		// The positivity limiter is element-local and must run before the
		// exchange packs an element's tracers, so under the split it is
		// applied per launch, over exactly the launch's slots.
		limitElem := func(le int) {
			e := j.Mesh.Elements[j.Plans[r].Elems[le]]
			for q := 0; q < cfg.Qsize; q++ {
				qdp := st.QdpAt(le, q)
				for k := 0; k < nlev; k++ {
					dycore.LimiterClipAndSum(qdp[k*npsq:(k+1)*npsq], e.SphereMP)
				}
			}
		}
		advance := func() {
			j.runDSS(c, r, rs, cfg.Qsize*nlev, func(sub exec.Subset) exec.Cost {
				cost := en.EulerStepOn(sub, j.Backend, st, cfg.Dt)
				if cfg.Limiter {
					if sub.Sel != nil {
						for _, le := range sub.Sel.Slots() {
							limitElem(le)
						}
					} else {
						for le := range st.Qdp {
							limitElem(le)
						}
					}
				}
				return cost
			}, st.Qdp)
		}
		advance()
		advance()
		for le := range st.Qdp {
			dycore.SSPRK2Combine(qn[le], st.Qdp[le], st.Qdp[le])
		}
	}

	// --- Vertical remap every RemapFreq steps (column-local). ---
	if stepNo%cfg.RemapFreq == 0 {
		rs.Cost.Add(en.VerticalRemap(j.Backend, j.Hybrid, st))
	}

	// --- Column physics every phys.every steps (opt-in), before the
	// watchdog so a physics-driven blowup is caught the same step. ---
	if j.phys != nil && stepNo%j.phys.every == 0 {
		sp := j.Obs.T().Begin(r, "core.physics", "model")
		j.applyPhysicsRank(c, r, st)
		sp.End()
	}

	// --- Invariant ledger: canonical global mass/energy/tracer sums,
	// checked step over step on rank 0 — the guard for in-compute flips
	// the scrubber's at-rest timing cannot see. Before the watchdog, so
	// an exponent-scale excursion is attributed to corruption rather
	// than reported as a generic blowup. ---
	if j.ledger != nil {
		j.checkInvariants(c, r, st, stepNo)
	}

	// --- Blowup watchdog at the configured cadence. ---
	if j.CheckEvery > 0 && stepNo%j.CheckEvery == 0 {
		j.checkState(c, st)
	}

	// --- Seal the finalized state for the next at-rest window. ---
	if j.ScrubEvery > 0 {
		j.scrubSeal(r, st, stepNo)
	}
}

// tagMass is the point-to-point tag of the canonical mass reduction
// (outside the halo tag and the reserved negative collective tags).
const tagMass = 202

// elemMasses integrates dp over each of this rank's elements separately.
func (j *ParallelJob) elemMasses(r int, st *dycore.State) []float64 {
	npsq := j.Cfg.Np * j.Cfg.Np
	out := make([]float64, len(j.Plans[r].Elems))
	for le, ge := range j.Plans[r].Elems {
		e := j.Mesh.Elements[ge]
		total := 0.0
		for n := 0; n < npsq; n++ {
			col := 0.0
			for k := 0; k < j.Cfg.Nlev; k++ {
				col += st.DP[le][k*npsq+n]
			}
			total += e.SphereMP[n] * col
		}
		out[le] = total
	}
	return out
}

// canonicalMass computes the global dp mass with a partition-invariant
// floating-point grouping: per-element masses are gathered to rank 0,
// placed by global element id, summed in ascending-id order, and the
// scalar broadcast back. A rank-order allreduce tree would regroup the
// sum whenever the partition changes, so a shrink-recovered run would
// drift from the fault-free trajectory at the mass fixer even though
// the DSS itself is canonical; this chain never depends on ownership.
func (j *ParallelJob) canonicalMass(c *mpirt.Comm, r int, st *dycore.State) float64 {
	local := j.elemMasses(r, st)
	out := []float64{0}
	if r == 0 {
		global := make([]float64, j.Mesh.NElems())
		for le, ge := range j.Plans[0].Elems {
			global[ge] = local[le]
		}
		for src := 1; src < j.NRanks; src++ {
			buf := make([]float64, len(j.Plans[src].Elems))
			c.Recv(src, tagMass, buf)
			for le, ge := range j.Plans[src].Elems {
				global[ge] = buf[le]
			}
		}
		total := 0.0
		for _, v := range global {
			total += v
		}
		out[0] = total
	} else {
		c.Send(0, tagMass, local)
	}
	c.Bcast(0, out)
	return out[0]
}

func allocFields(n, per int) [][]float64 {
	f := make([][]float64, n)
	for i := range f {
		f[i] = make([]float64, per)
	}
	return f
}

// Shrink removes a permanently dead rank from the job — degraded-mode
// recovery: the dead rank's elements are redistributed over the
// survivors along the space-filling curve, the halo plans, engines
// (re-tiled for the new element counts), scratch pools, and fault plan
// are rebuilt for the reduced world, and the step counter is preserved.
// The caller owns moving the state data: rebuild a global state from
// checkpoints and Scatter it with the new plans. Because the DSS and
// the mass fixer are partition-invariant, the shrunk job continues the
// exact fault-free trajectory.
func (j *ParallelJob) Shrink(dead int) error {
	newRankOf, err := j.Mesh.ShrinkPartition(j.RankOf, dead, j.NRanks)
	if err != nil {
		return err
	}
	j.RankOf = newRankOf
	j.NRanks--
	j.Plans = make([]*halo.Plan, j.NRanks)
	j.engs = make([]*exec.Engine, j.NRanks)
	j.scratch = make([]*stepScratch, j.NRanks)
	for r := 0; r < j.NRanks; r++ {
		j.Plans[r] = halo.NewPlan(j.Mesh, j.RankOf, r)
		j.engs[r] = exec.NewEngine(j.Mesh, j.Plans[r].Elems, j.Cfg.Nlev, j.Cfg.Qsize)
		if j.dynSet {
			// Re-apply the worker policy on the new, larger per-rank
			// element counts — adaptive mode may now choose differently.
			if j.DynWorkers <= 0 {
				j.engs[r].SetWorkersAuto()
			} else {
				j.engs[r].SetWorkers(j.DynWorkers)
			}
		}
	}
	j.compileSubsets()
	j.buildRankPhys()
	if j.ScrubEvery > 0 {
		// Fresh (unsealed) live seals for the new partition shapes; the
		// first post-shrink reseal re-arms scrubbing.
		j.seals = make([]*integrity.RankSeal, j.NRanks)
	}
	if j.Faults != nil {
		j.Faults = j.Faults.Shrink(dead)
	}
	if j.Obs != nil {
		j.Instrument(j.Obs)
	}
	return nil
}

// newJobWithPartition builds a job over a caller-supplied element-to-
// rank assignment (partition-quality experiments).
func newJobWithPartition(cfg dycore.Config, backend exec.Backend, overlap bool, nranks int, rankOf []int) (*ParallelJob, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := mesh.New(cfg.Ne, cfg.Np)
	if len(rankOf) != m.NElems() {
		return nil, fmt.Errorf("core: rankOf covers %d of %d elements", len(rankOf), m.NElems())
	}
	j := &ParallelJob{
		Cfg: cfg, Backend: backend, Overlap: overlap, NRanks: nranks,
		Mesh: m, Hybrid: dycore.NewHybridCoord(cfg.Nlev), RankOf: rankOf,
	}
	j.Plans = make([]*halo.Plan, nranks)
	j.engs = make([]*exec.Engine, nranks)
	j.scratch = make([]*stepScratch, nranks)
	for r := 0; r < nranks; r++ {
		j.Plans[r] = halo.NewPlan(m, rankOf, r)
		j.engs[r] = exec.NewEngine(m, j.Plans[r].Elems, cfg.Nlev, cfg.Qsize)
	}
	j.compileSubsets()
	return j, nil
}
