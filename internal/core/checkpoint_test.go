package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"swcam/internal/dycore"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := testDycoreCfg(2, 8, 2)
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitBaroclinicWave(st)
	s.InitCosineBellTracer(st, 0, 1, 0, 0.5)
	s.Step(st)

	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, st, 7); err != nil {
		t.Fatal(err)
	}
	got, step, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if step != 7 {
		t.Errorf("step = %d", step)
	}
	if d := got.MaxAbsDiff(st); d != 0 {
		t.Errorf("round trip not bit-exact: %g", d)
	}
	// Phis restored too (MaxAbsDiff skips it).
	for ei := range st.Phis {
		for n := range st.Phis[ei] {
			if got.Phis[ei][n] != st.Phis[ei][n] {
				t.Fatal("Phis not restored")
			}
		}
	}
}

// Bit-exact restart: stepping N then M steps equals stepping N, saving,
// loading, and stepping M — the climate-model restart contract.
func TestCheckpointRestartBitExact(t *testing.T) {
	cfg := testDycoreCfg(2, 8, 1)
	mk := func() (*dycore.Solver, *dycore.State) {
		s, err := dycore.NewSolver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := s.NewState()
		s.InitBaroclinicWave(st)
		s.InitCosineBellTracer(st, 0, 1, 0, 0.5)
		return s, st
	}
	// Continuous run: 5 steps.
	s1, ref := mk()
	for i := 0; i < 5; i++ {
		s1.Step(ref)
	}
	// Interrupted run: 2 steps, checkpoint, restore into a FRESH solver,
	// 3 more steps. Note the remap cadence must survive the restart.
	s2, st := mk()
	for i := 0; i < 2; i++ {
		s2.Step(st)
	}
	path := filepath.Join(t.TempDir(), "restart.bin")
	if err := SaveCheckpoint(path, st, 2); err != nil {
		t.Fatal(err)
	}
	restored, step, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	s3, _ := dycore.NewSolver(cfg)
	s3.SetStep(step)
	for i := 0; i < 3; i++ {
		s3.Step(restored)
	}
	if d := restored.MaxAbsDiff(ref); d != 0 {
		t.Errorf("restart not bit-exact: diff %g", d)
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, _, err := ReadCheckpoint(bytes.NewReader([]byte("not a checkpoint at all............"))); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	st := dycore.NewState(2, 4, 4, 0)
	if err := WriteCheckpoint(&buf, st, 0); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-field.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, _, err := ReadCheckpoint(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}
