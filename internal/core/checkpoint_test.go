package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"swcam/internal/dycore"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := testDycoreCfg(2, 8, 2)
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitBaroclinicWave(st)
	s.InitCosineBellTracer(st, 0, 1, 0, 0.5)
	s.Step(st)

	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, st, 7); err != nil {
		t.Fatal(err)
	}
	got, step, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if step != 7 {
		t.Errorf("step = %d", step)
	}
	if d := got.MaxAbsDiff(st); d != 0 {
		t.Errorf("round trip not bit-exact: %g", d)
	}
	// Phis restored too (MaxAbsDiff skips it).
	for ei := range st.Phis {
		for n := range st.Phis[ei] {
			if got.Phis[ei][n] != st.Phis[ei][n] {
				t.Fatal("Phis not restored")
			}
		}
	}
}

// Bit-exact restart: stepping N then M steps equals stepping N, saving,
// loading, and stepping M — the climate-model restart contract.
func TestCheckpointRestartBitExact(t *testing.T) {
	cfg := testDycoreCfg(2, 8, 1)
	mk := func() (*dycore.Solver, *dycore.State) {
		s, err := dycore.NewSolver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := s.NewState()
		s.InitBaroclinicWave(st)
		s.InitCosineBellTracer(st, 0, 1, 0, 0.5)
		return s, st
	}
	// Continuous run: 5 steps.
	s1, ref := mk()
	for i := 0; i < 5; i++ {
		s1.Step(ref)
	}
	// Interrupted run: 2 steps, checkpoint, restore into a FRESH solver,
	// 3 more steps. Note the remap cadence must survive the restart.
	s2, st := mk()
	for i := 0; i < 2; i++ {
		s2.Step(st)
	}
	path := filepath.Join(t.TempDir(), "restart.bin")
	if err := SaveCheckpoint(path, st, 2); err != nil {
		t.Fatal(err)
	}
	restored, step, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	s3, _ := dycore.NewSolver(cfg)
	s3.SetStep(step)
	for i := 0; i < 3; i++ {
		s3.Step(restored)
	}
	if d := restored.MaxAbsDiff(ref); d != 0 {
		t.Errorf("restart not bit-exact: diff %g", d)
	}
}

// writeCheckpointV1 emits the legacy (pre-CRC) format, as earlier
// releases did, to pin backward compatibility.
func writeCheckpointV1(w io.Writer, st *dycore.State, step int) error {
	h := struct {
		Magic, Version                uint32
		NElem, Np, Nlev, Qsize, Step int64
	}{0x53574341, 1, int64(st.NElem()), int64(st.Np), int64(st.Nlev), int64(st.Qsize), int64(step)}
	if err := binary.Write(w, binary.LittleEndian, &h); err != nil {
		return err
	}
	for _, field := range [][][]float64{st.U, st.V, st.T, st.DP, st.Qdp, st.Phis} {
		for _, e := range field {
			if err := binary.Write(w, binary.LittleEndian, e); err != nil {
				return err
			}
		}
	}
	return nil
}

// Version-1 files (no payload CRC) must stay readable bit-for-bit.
func TestCheckpointReadsVersion1(t *testing.T) {
	cfg := testDycoreCfg(2, 4, 1)
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitBaroclinicWave(st)
	var buf bytes.Buffer
	if err := writeCheckpointV1(&buf, st, 5); err != nil {
		t.Fatal(err)
	}
	got, step, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatalf("v1 checkpoint rejected: %v", err)
	}
	if step != 5 {
		t.Errorf("step = %d", step)
	}
	if d := got.MaxAbsDiff(st); d != 0 {
		t.Errorf("v1 round trip not bit-exact: %g", d)
	}
}

// A single flipped bit anywhere in a v2 body must be caught by the CRC,
// and a truncated v2 body must fail cleanly.
func TestCheckpointV2DetectsCorruption(t *testing.T) {
	st := dycore.NewState(2, 4, 4, 1)
	st.U[0][0] = 1.5
	st.T[1][7] = 280
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, st, 3); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	const headerLen = 8 + 5*8
	for _, off := range []int{headerLen, headerLen + 100, len(valid) - 5} {
		corrupt := append([]byte(nil), valid...)
		corrupt[off] ^= 0x10
		_, _, err := ReadCheckpoint(bytes.NewReader(corrupt))
		if !errors.Is(err, ErrChecksum) {
			t.Errorf("bit flip at %d gave %v, want ErrChecksum", off, err)
		}
	}
	// Flipping the stored CRC itself is also a checksum mismatch.
	corrupt := append([]byte(nil), valid...)
	corrupt[len(valid)-1] ^= 0xFF
	if _, _, err := ReadCheckpoint(bytes.NewReader(corrupt)); !errors.Is(err, ErrChecksum) {
		t.Errorf("flipped CRC gave %v, want ErrChecksum", err)
	}
	// Truncations: mid-body and mid-CRC.
	for _, n := range []int{len(valid) / 2, len(valid) - 2} {
		if _, _, err := ReadCheckpoint(bytes.NewReader(valid[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestSaveCheckpointDurable(t *testing.T) {
	st := dycore.NewState(2, 4, 4, 0)
	st.DP[0][0] = 1000
	path := filepath.Join(t.TempDir(), "ck.bin")
	if err := SaveCheckpoint(path, st, 1); err != nil {
		t.Fatal(err)
	}
	// The temp file must not survive the atomic rename.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}
	got, _, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.DP[0][0] != 1000 {
		t.Error("state not restored")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, _, err := ReadCheckpoint(bytes.NewReader([]byte("not a checkpoint at all............"))); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	st := dycore.NewState(2, 4, 4, 0)
	if err := WriteCheckpoint(&buf, st, 0); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-field.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, _, err := ReadCheckpoint(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}
