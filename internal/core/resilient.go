package core

import (
	"errors"
	"fmt"
	"time"

	"swcam/internal/dycore"
	"swcam/internal/integrity"
	"swcam/internal/mpirt"
)

// ResilientJob supervises a ParallelJob through faults. Two supervision
// modes are available:
//
// ModeGlobal (the default, and the original design): periodic in-memory
// checkpoints of every rank's state; any abort — an injected kill, a
// corrupted or lost message, a blowup caught by the watchdog, a rank
// panic — rolls the whole world back to the last checkpoint and replays.
//
// ModeLadder: a three-rung escalation that localizes recovery instead of
// always paying the global bill.
//
//  1. Bounded retransmission (mpirt.RetryPolicy): a corrupted or lost
//     message is re-pulled from the sender-side log with exponential
//     backoff before anyone declares a failure. Most transient faults
//     never surface past this rung.
//  2. Localized rebuild from partner-replicated diskless checkpoints:
//     at every checkpoint each rank ships its encoded state (v2
//     checkpoint format, CRC32-C) to its buddy rank (r+1 mod n). When a
//     single rank dies, it alone is rebuilt from the buddy's in-memory
//     copy while the survivors restore their own local snapshots at a
//     recovery barrier — no disk, no global replay. A rank that keeps
//     dying (DeadAfter consecutive failures) is declared permanently
//     dead and either respawned onto a spare (Spares > 0) or removed by
//     shrink recovery: its elements are repartitioned over the
//     survivors along the space-filling curve and the run continues on
//     n-1 ranks at reduced throughput.
//  3. Global rollback, the PR-1 path, as the fallback rung: blowups
//     (every rank's state is suspect, nobody's memory was lost),
//     unattributable faults, and lost/undecodable buddy copies fall
//     back to restoring everything — from own snapshots when they
//     survive, else from the disk checkpoint when DiskPath is set.
//
// Both modes retain up to Generations verified checkpoint generations
// (generations.go): every restore target is re-verified against its
// CRC-32C seals before a bit is copied back, rotten own copies heal
// from buddy replicas, and a poisoned generation escalates to the
// next-older one instead of restoring garbage. Detected silent data
// corruption (the at-rest scrubber, the invariant ledger, a pre-ship
// snapshot verification — all wrapping integrity.ErrCorrupt) routes to
// verified restore directly: the rank is healthy, its bits rotted, so
// it would be wrong to advance the failure detector toward declaring
// it dead.
//
// Because the dycore, the DSS, and the mass fixer are deterministic and
// partition-invariant, every rung — including shrink onto fewer ranks —
// reproduces the fault-free trajectory bit-for-bit.
//
// This is the miniature of the checkpoint/restart discipline every
// production climate model runs under (the ladder mirrors ULFM-style
// shrink-and-recover MPI practice plus diskless buddy checkpointing):
// at the paper's 10M-core scale the question is not whether a rank dies
// mid-run but how cheaply the job continues when it does.
type ResilientJob struct {
	Job *ParallelJob

	// Mode selects the supervision strategy: ModeGlobal (default, also
	// the zero value) or ModeLadder.
	Mode string

	// CheckpointEvery is the number of steps between checkpoints
	// (default 1). Larger values checkpoint less often but replay more
	// steps after a fault.
	CheckpointEvery int

	// Generations is how many verified checkpoint generations the
	// supervisor retains (default 1, the historical single-checkpoint
	// behavior). With K > 1, a restore whose newest generation is
	// poisoned escalates to the next-older one — replaying more steps —
	// instead of falling straight through to disk.
	Generations int

	// MaxRetries bounds the total number of recovery actions across the
	// run (default 3). When exhausted, Run restores the last good
	// checkpoint into the supervised states (best-effort result) and
	// returns an error wrapping the final cause — graceful degradation,
	// not a panic.
	MaxRetries int

	// Backoff is the sleep before the first retry, doubling per
	// consecutive retry (default 0: retry immediately; an in-process
	// world has no transient congestion to wait out, so backoff mainly
	// models the real-machine discipline and paces the test clock).
	Backoff time.Duration

	// DiskPath, when set, additionally persists every checkpoint to this
	// file (gathered global state, atomic rename, v2 CRC format) so a
	// killed process can restart from disk with LoadCheckpoint. It is
	// the bottom rung when every retained generation is lost or
	// poisoned.
	DiskPath string

	// Spares is the number of replacement ranks available to ladder
	// recovery: a permanently dead rank consumes one spare and is
	// respawned (rebuilt from its buddy copy) instead of shrinking the
	// world.
	Spares int

	// DeadAfter is how many consecutive failures attributed to the same
	// rank escalate it from "suspect" (rebuild in place) to "permanently
	// dead" (respawn or shrink). Default 2.
	DeadAfter int

	// OnEvent, when set, observes every recovery decision.
	OnEvent func(RecoveryEvent)

	// PreShipHook, when set, sees every encoded snapshot right before
	// its pre-ship verification at checkpoint time — the test hook that
	// simulates a snapshot rotting between encode and ship.
	PreShipHook func(rank int, enc []float64)

	// Ladder bookkeeping.
	local       []*dycore.State   // states under supervision (shrink replaces the slice)
	gens        []*ckptGeneration // verified checkpoint ring, newest first (generations.go)
	suspectRank int               // rank of the most recent attributed failure
	suspectRun  int               // consecutive failures attributed to suspectRank
	diskStep    int               // step of the last disk checkpoint written
	diskPrecip  float64           // TotalPrecip at that disk checkpoint
}

// Supervision modes.
const (
	ModeGlobal = "global"
	ModeLadder = "ladder"
)

// RecoveryEvent describes one supervisor decision, for diagnostics.
type RecoveryEvent struct {
	Kind    string // "checkpoint", "rollback", "giveup", "localized", "respawn", "shrink", "poisoned"
	Step    int    // model step of the affected checkpoint
	Attempt int    // consecutive failures at this checkpoint (recovery kinds)
	Rank    int    // failed rank for localized/respawn/shrink/poisoned; -1 otherwise
	Err     error  // the fault that triggered it (recovery kinds)
}

func (e RecoveryEvent) String() string {
	rank := ""
	if e.Rank >= 0 {
		rank = fmt.Sprintf(" rank%d", e.Rank)
	}
	if e.Err == nil {
		return fmt.Sprintf("%s@step%d%s", e.Kind, e.Step, rank)
	}
	return fmt.Sprintf("%s@step%d%s attempt %d: %v", e.Kind, e.Step, rank, e.Attempt, e.Err)
}

// ResilientStats aggregates a supervised run: the underlying
// communication/kernel stats (including traffic burned by failed
// attempts) plus the recovery history.
type ResilientStats struct {
	Run         RunStats
	Checkpoints int
	Rollbacks   int // global rollbacks (rung 3)
	Localized   int // single-rank rebuilds from a buddy copy (rung 2)
	Respawns    int // permanently dead ranks replaced from spares
	Shrinks     int // permanently dead ranks removed by repartitioning
	Poisoned    int // checkpoint copies (own or buddy) rejected by verification
	Escalations int // restores that skipped past a poisoned generation
	// RetxAttempts/RetxRecovered mirror RunStats: rung-1 activity.
	RetxAttempts  int64
	RetxRecovered int64
	RecoveryNs    int64 // wall time spent inside recovery actions
	BuddyBytes    int64 // buddy-replication traffic (checkpoint + recovery)
	Events        []RecoveryEvent
}

// NewResilientJob wraps a ParallelJob with default supervision
// (global mode, checkpoint every step, 3 retries, no backoff,
// in-memory only, one retained generation).
func NewResilientJob(job *ParallelJob) *ResilientJob {
	return &ResilientJob{Job: job, CheckpointEvery: 1, MaxRetries: 3}
}

// States returns the state slice currently under supervision. It aliases
// the slice passed to Run until a shrink recovery replaces it (the world
// lost a rank, so the slice length changed); ladder-mode callers must
// gather results via States() rather than the slice they passed in.
func (rj *ResilientJob) States() []*dycore.State { return rj.local }

// snapshot deep-copies the per-rank states.
func snapshot(local []*dycore.State) []*dycore.State {
	out := make([]*dycore.State, len(local))
	for i, st := range local {
		out[i] = st.Clone()
	}
	return out
}

// restore copies a snapshot back into the caller's state objects.
func restore(local, snap []*dycore.State) {
	for i := range local {
		local[i].CopyFrom(snap[i])
	}
}

func (rj *ResilientJob) event(e RecoveryEvent) {
	rj.observe(e)
	if rj.OnEvent != nil {
		rj.OnEvent(e)
	}
}

// addRecoveryNs folds one recovery action's wall time into the run's
// stats and mirrors it into the registry (core.recovery.ns), where the
// StepReport's recovery summary picks it up.
func (rj *ResilientJob) addRecoveryNs(rs *ResilientStats, t0 time.Time) {
	ns := time.Since(t0).Nanoseconds()
	rs.RecoveryNs += ns
	rj.Job.Obs.R().Counter("core.recovery.ns").Add(ns)
}

// rewindTo resets the job's step counter, its accumulated diagnostics,
// and its live scrub seals to checkpoint generation g. Replayed physics
// steps re-accumulate precipitation, so restoring the states without
// rewinding TotalPrecip would double-count every burned chunk's rain;
// likewise the live seals must witness the restored bits.
func (rj *ResilientJob) rewindTo(g *ckptGeneration) {
	rj.Job.SetStepCount(g.step)
	rj.Job.TotalPrecip = g.precip
	rj.Job.installSeals(g.seals)
}

// takeCheckpoint captures a new verified generation of the supervised
// states — own snapshots (CRC-sealed when scrubbing is on), the buddy
// exchange in ladder mode, the disk copy when DiskPath is set — and
// pushes it onto the retention ring. Injected checkpoint-copy flips
// land after the seals and the exchange are taken, so the seals always
// witness the clean bits.
func (rj *ResilientJob) takeCheckpoint(rs *ResilientStats, step int) error {
	sp := rj.Job.Obs.T().Begin(0, "core.checkpoint", "model")
	defer sp.End()
	g := &ckptGeneration{
		step:   step,
		precip: rj.Job.TotalPrecip,
		own:    snapshot(rj.local),
		seals:  make([]*integrity.RankSeal, len(rj.local)),
	}
	if rj.Job.ScrubEvery > 0 {
		t0 := time.Now()
		for r, st := range g.own {
			g.seals[r] = integrity.SealState(st, step)
		}
		reg := rj.Job.Obs.R()
		reg.Counter("integrity.scrub.seals").Add(int64(len(g.own)))
		reg.Counter("integrity.scrub.ns").Add(time.Since(t0).Nanoseconds())
	}
	if rj.Mode == ModeLadder {
		if err := rj.exchangeBuddies(rs, g); err != nil {
			return err
		}
	}
	rj.injectCheckpointFlips(g)
	rj.pushGeneration(rs, g)
	return rj.persist(rj.local, step)
}

// injectCheckpointFlips polls the fault plan for due flipCheckpoint /
// flipBuddy faults and corrupts the captured copies accordingly: the
// rank's own snapshot after its seal was taken (so the rot is
// detectable, and the clean buddy replica can heal it), or the
// buddy-held replica after the exchange (so the owner's copy stays
// good and localized recovery must reject the replica).
func (rj *ResilientJob) injectCheckpointFlips(g *ckptGeneration) {
	plan := rj.Job.Faults
	if plan == nil {
		return
	}
	reg := rj.Job.Obs.R()
	for r := range g.own {
		if f := plan.FireIntegrity(r, mpirt.FlipCheckpoint); f != nil {
			desc := flipStateBit(g.own[r], faultKey(f))
			reg.Counter("integrity.flips.checkpoint").Add(1)
			rj.Job.Obs.T().Instant(0, "integrity.flipCheckpoint rank"+fmt.Sprint(r)+" "+desc, "fault")
		}
		if g.buddy != nil && g.buddy[r] != nil {
			if f := plan.FireIntegrity(r, mpirt.FlipBuddy); f != nil {
				flipPayloadWord(g.buddy[r], faultKey(f))
				reg.Counter("integrity.flips.buddy").Add(1)
				rj.Job.Obs.T().Instant(0, "integrity.flipBuddy rank"+fmt.Sprint(r), "fault")
			}
		}
	}
}

// Run advances the local states n steps under supervision. On success
// the states hold exactly what a fault-free ParallelJob.Run would have
// produced (bit-identical: every rung restores checkpointed bits and the
// replay is deterministic). On retry-budget exhaustion the states hold
// the last good checkpoint and the returned error wraps the final
// fault; the stats' Events list is the full recovery history either way.
// In ladder mode a shrink recovery replaces the supervised slice — read
// results via States().
func (rj *ResilientJob) Run(local []*dycore.State, n int) (ResilientStats, error) {
	if rj.Mode == ModeLadder {
		return rj.runLadder(local, n)
	}
	rj.local = local
	every := rj.CheckpointEvery
	if every < 1 {
		every = 1
	}
	var rs ResilientStats
	rs.Run.Cost.Backend = rj.Job.Backend

	if err := rj.takeCheckpoint(&rs, rj.Job.StepCount()); err != nil {
		return rs, err
	}
	target := rj.Job.StepCount() + n
	retries := 0
	attempt := 0
	backoff := rj.Backoff

	for rj.Job.StepCount() < target {
		chunk := every
		if left := target - rj.Job.StepCount(); left < chunk {
			chunk = left
		}
		stats, err := rj.Job.RunChecked(local, chunk)
		rs.Run.Halo.Add(stats.Halo)
		rs.Run.Cost.Add(stats.Cost)
		rs.RetxAttempts += stats.RetxAttempts
		rs.RetxRecovered += stats.RetxRecovered
		if err == nil {
			// Close the final at-rest window before capturing: a flip on
			// the chunk's last step must never reach a checkpoint.
			err = rj.Job.ScrubVerifyLive(local)
		}
		if err == nil {
			attempt = 0
			backoff = rj.Backoff
			step := rj.Job.StepCount()
			if cerr := rj.takeCheckpoint(&rs, step); cerr != nil {
				if !errors.Is(cerr, integrity.ErrCorrupt) {
					return rs, cerr
				}
				err = cerr // corrupt capture: recover below
			} else {
				rs.Checkpoints++
				rs.Events = append(rs.Events, RecoveryEvent{Kind: "checkpoint", Step: step, Rank: -1})
				rj.event(rs.Events[len(rs.Events)-1])
				continue
			}
		}

		attempt++
		if retries >= rj.MaxRetries {
			// Graceful degradation: hand back the last state known good
			// and the full diagnosis instead of a corrupt field set.
			t0 := time.Now()
			rj.bestEffortRestore(&rs)
			rj.addRecoveryNs(&rs, t0)
			rj.auditAllGenerations(&rs)
			ev := RecoveryEvent{Kind: "giveup", Step: rj.checkpointStep(), Attempt: attempt, Rank: -1, Err: err}
			rs.Events = append(rs.Events, ev)
			rj.event(ev)
			return rs, fmt.Errorf("core: retry budget (%d) exhausted at step %d (best-effort state restored): %w",
				rj.MaxRetries, rj.checkpointStep(), err)
		}
		retries++
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		// The failed chunk's steps are burned work: they get replayed
		// from the checkpoint on the next attempt.
		rj.Job.Obs.R().Counter("core.recovery.replayed_steps").Add(int64(chunk))
		t0 := time.Now()
		rerr := rj.restoreVerified(&rs, attempt, err)
		rj.addRecoveryNs(&rs, t0)
		if rerr != nil {
			return rs, rerr
		}
	}
	rj.auditAllGenerations(&rs)
	rs.Run.Steps = rj.Job.StepCount()
	return rs, nil
}

// deadAfterN returns the escalation threshold with its default applied.
func (rj *ResilientJob) deadAfterN() int {
	if rj.DeadAfter < 1 {
		return 2
	}
	return rj.DeadAfter
}

// runLadder is Run in ModeLadder: bounded retransmission underneath,
// partner-replicated checkpoints for localized recovery, respawn/shrink
// for permanent deaths, verified global rollback as the fallback rung.
func (rj *ResilientJob) runLadder(local []*dycore.State, n int) (ResilientStats, error) {
	every := rj.CheckpointEvery
	if every < 1 {
		every = 1
	}
	// The ladder's first rung: make sure message-level retransmission is
	// on, and that lost messages surface as timeouts rather than hanging
	// the job forever when faults are being injected.
	if rj.Job.Retry.MaxAttempts == 0 {
		rj.Job.Retry = mpirt.DefaultRetryPolicy()
	}
	if rj.Job.Faults != nil && rj.Job.RecvTimeout == 0 {
		rj.Job.RecvTimeout = 150 * time.Millisecond
	}
	rj.local = local
	rj.suspectRank, rj.suspectRun = -1, 0

	var rs ResilientStats
	rs.Run.Cost.Backend = rj.Job.Backend

	if err := rj.takeCheckpoint(&rs, rj.Job.StepCount()); err != nil {
		return rs, err
	}
	target := rj.Job.StepCount() + n
	retries := 0
	attempt := 0
	backoff := rj.Backoff

	for rj.Job.StepCount() < target {
		chunk := every
		if left := target - rj.Job.StepCount(); left < chunk {
			chunk = left
		}
		stats, err := rj.Job.RunChecked(rj.local, chunk)
		rs.Run.Halo.Add(stats.Halo)
		rs.Run.Cost.Add(stats.Cost)
		rs.RetxAttempts += stats.RetxAttempts
		rs.RetxRecovered += stats.RetxRecovered
		if err == nil {
			err = rj.Job.ScrubVerifyLive(rj.local)
		}
		if err == nil {
			attempt = 0
			backoff = rj.Backoff
			rj.suspectRank, rj.suspectRun = -1, 0
			step := rj.Job.StepCount()
			if cerr := rj.takeCheckpoint(&rs, step); cerr != nil {
				if !errors.Is(cerr, integrity.ErrCorrupt) {
					return rs, cerr
				}
				err = cerr // corrupt capture: recover below
			} else {
				rs.Checkpoints++
				rs.Events = append(rs.Events, RecoveryEvent{Kind: "checkpoint", Step: step, Rank: -1})
				rj.event(rs.Events[len(rs.Events)-1])
				continue
			}
		}

		attempt++
		if retries >= rj.MaxRetries {
			t0 := time.Now()
			rj.bestEffortRestore(&rs)
			rj.addRecoveryNs(&rs, t0)
			rj.auditAllGenerations(&rs)
			ev := RecoveryEvent{Kind: "giveup", Step: rj.checkpointStep(), Attempt: attempt, Rank: -1, Err: err}
			rs.Events = append(rs.Events, ev)
			rj.event(ev)
			return rs, fmt.Errorf("core: retry budget (%d) exhausted at step %d (best-effort state restored): %w",
				rj.MaxRetries, rj.checkpointStep(), err)
		}
		retries++
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		rj.Job.Obs.R().Counter("core.recovery.replayed_steps").Add(int64(chunk))
		t0 := time.Now()
		rerr := rj.recoverLadder(&rs, attempt, err)
		rj.addRecoveryNs(&rs, t0)
		if rerr != nil {
			return rs, rerr
		}
	}
	rj.auditAllGenerations(&rs)
	rs.Run.Steps = rj.Job.StepCount()
	return rs, nil
}

// recoverLadder picks and executes the recovery rung for one failed
// chunk. A nil return means the supervised states are back at a
// verified checkpoint (possibly on a reduced world, possibly an older
// generation) and the chunk can be replayed; an error means every
// applicable rung failed.
func (rj *ResilientJob) recoverLadder(rs *ResilientStats, attempt int, cause error) error {
	// Detected silent corruption is not process death: the rank is
	// healthy, its resident bits rotted. Restore from a verified
	// generation and leave the failure detector alone.
	if errors.Is(cause, integrity.ErrCorrupt) {
		return rj.restoreVerified(rs, attempt, cause)
	}
	var re *mpirt.RunError
	faulty := -1
	if errors.As(cause, &re) {
		faulty = re.Rank
	}
	// Blowups are not rank failures: nobody's memory was lost, and the
	// state is wrong (or about to be) everywhere. Likewise a fault with
	// no rank attribution gives localized recovery nothing to localize.
	if faulty < 0 || errors.Is(cause, ErrBlowup) {
		return rj.restoreVerified(rs, attempt, cause)
	}
	if faulty == rj.suspectRank {
		rj.suspectRun++
	} else {
		rj.suspectRank, rj.suspectRun = faulty, 1
	}
	if rj.suspectRun >= rj.deadAfterN() {
		// Permanently dead: the failure detector has watched this rank
		// die DeadAfter times in a row through localized rebuilds.
		rj.suspectRank, rj.suspectRun = -1, 0
		if rj.Spares > 0 {
			rj.Spares--
			return rj.localizedRestore(rs, "respawn", faulty, attempt, cause)
		}
		if rj.Job.NRanks > 1 {
			return rj.shrinkRestore(rs, faulty, attempt, cause)
		}
		// A 1-rank world has nothing to shrink onto.
		return rj.restoreVerified(rs, attempt, cause)
	}
	return rj.localizedRestore(rs, "localized", faulty, attempt, cause)
}

// restoreVerified is the global rung with checkpoint hygiene: walk the
// generation ring newest-first, restore from the first generation whose
// every rank still verifies (healing single copies from buddy
// replicas), and drop poisoned generations — audited out, so their
// remaining rot is counted — instead of restoring garbage. When the
// ring is exhausted, the disk checkpoint is the last resort.
func (rj *ResilientJob) restoreVerified(rs *ResilientStats, attempt int, cause error) error {
	for len(rj.gens) > 0 {
		g := rj.gens[0]
		verr := rj.verifyGeneration(rs, g)
		if verr == nil {
			sp := rj.Job.Obs.T().Begin(0, "core.rollback", "model")
			restore(rj.local, g.own)
			sp.End()
			rj.rewindTo(g)
			rs.Rollbacks++
			ev := RecoveryEvent{Kind: "rollback", Step: g.step, Attempt: attempt, Rank: -1, Err: cause}
			rs.Events = append(rs.Events, ev)
			rj.event(ev)
			return nil
		}
		rj.dropPoisonedGeneration(rs, g)
		cause = fmt.Errorf("%w; %w", cause, verr)
	}
	return rj.globalFallback(rs, attempt, cause)
}

// dropPoisonedGeneration audits and removes the newest generation after
// a failed verification, recording the escalation to the next-older
// restore target.
func (rj *ResilientJob) dropPoisonedGeneration(rs *ResilientStats, g *ckptGeneration) {
	rj.auditGeneration(rs, g)
	rj.gens = rj.gens[1:]
	rs.Escalations++
	rj.Job.Obs.R().Counter("integrity.gen.escalations").Add(1)
}

// bestEffortRestore puts the freshest verifiable generation back into
// the supervised states on the way out of a failed run — the caller
// hands back the last state known good, never a corrupt field set. If
// nothing verifies, the states are left as they are.
func (rj *ResilientJob) bestEffortRestore(rs *ResilientStats) {
	for len(rj.gens) > 0 {
		g := rj.gens[0]
		if rj.verifyGeneration(rs, g) == nil {
			restore(rj.local, g.own)
			rj.rewindTo(g)
			return
		}
		rj.dropPoisonedGeneration(rs, g)
	}
}

// localizedRestore rebuilds a single failed rank from its buddy's
// in-memory copy while the survivors restore their own re-verified
// snapshots. kind is "localized" (suspect rebuild in place) or
// "respawn" (permanently dead rank replaced from a spare — same data
// path, different ledger).
func (rj *ResilientJob) localizedRestore(rs *ResilientStats, kind string, faulty, attempt int, cause error) error {
	if len(rj.gens) == 0 {
		return rj.globalFallback(rs, attempt, cause)
	}
	g := rj.gens[0]
	// The failed process's memory is gone: drop its own snapshot first
	// so every fallback is honest about what survives.
	g.own[faulty] = nil
	st, err := rj.fetchBuddy(rs, g, faulty)
	if err != nil {
		if g.buddy != nil && g.buddy[faulty] != nil {
			rj.markPoisoned(rs, g, faulty, fmt.Errorf("buddy checkpoint copy: %w", err))
			g.buddy[faulty] = nil
		}
		return rj.restoreVerified(rs, attempt,
			fmt.Errorf("core: localized recovery of rank %d failed: %w (original fault: %w)", faulty, err, cause))
	}
	g.own[faulty] = st
	if g.seals[faulty] != nil {
		g.seals[faulty] = integrity.SealState(st, g.step)
	}
	// Survivors' own copies sat in memory since the checkpoint — they
	// are re-verified (and healed from buddies if rotten) before any of
	// them is restored.
	if verr := rj.verifyGeneration(rs, g); verr != nil {
		rj.dropPoisonedGeneration(rs, g)
		return rj.restoreVerified(rs, attempt,
			fmt.Errorf("core: localized recovery of rank %d found a poisoned generation: %w (original fault: %w)", faulty, verr, cause))
	}
	sp := rj.Job.Obs.T().Begin(0, "core."+kind, "model")
	restore(rj.local, g.own)
	sp.End()
	rj.rewindTo(g)
	if kind == "respawn" {
		rs.Respawns++
	} else {
		rs.Localized++
	}
	ev := RecoveryEvent{Kind: kind, Step: g.step, Attempt: attempt, Rank: faulty, Err: cause}
	rs.Events = append(rs.Events, ev)
	rj.event(ev)
	return nil
}

// shrinkRestore removes a permanently dead rank: the checkpoint-time
// global state is reassembled from the survivors' re-verified own
// snapshots plus the dead rank's buddy copy (using the pre-shrink
// plans), the job is repartitioned over n-1 ranks, and the reassembled
// state is scattered onto the new layout. The supervised slice is
// replaced — see States(). The old partition's generations cannot
// restore the new world, so the ring is audited out and restarted with
// a fresh checkpoint on the reduced layout.
func (rj *ResilientJob) shrinkRestore(rs *ResilientStats, dead, attempt int, cause error) error {
	if len(rj.gens) == 0 {
		return rj.globalFallback(rs, attempt, cause)
	}
	g := rj.gens[0]
	g.own[dead] = nil
	st, err := rj.fetchBuddy(rs, g, dead)
	if err != nil {
		if g.buddy != nil && g.buddy[dead] != nil {
			rj.markPoisoned(rs, g, dead, fmt.Errorf("buddy checkpoint copy: %w", err))
			g.buddy[dead] = nil
		}
		return rj.restoreVerified(rs, attempt,
			fmt.Errorf("core: shrink recovery of rank %d failed: %w (original fault: %w)", dead, err, cause))
	}
	g.own[dead] = st
	if g.seals[dead] != nil {
		g.seals[dead] = integrity.SealState(st, g.step)
	}
	if verr := rj.verifyGeneration(rs, g); verr != nil {
		rj.dropPoisonedGeneration(rs, g)
		return rj.restoreVerified(rs, attempt,
			fmt.Errorf("core: shrink recovery of rank %d found a poisoned generation: %w (original fault: %w)", dead, verr, cause))
	}
	sp := rj.Job.Obs.T().Begin(0, "core.shrink", "model")
	gstate := rj.Job.Gather(g.own) // pre-shrink plans: checkpoint-time global state
	if serr := rj.Job.Shrink(dead); serr != nil {
		sp.End()
		return rj.globalFallback(rs, attempt,
			fmt.Errorf("core: shrinking away rank %d failed: %w (original fault: %w)", dead, serr, cause))
	}
	rj.local = rj.Job.Scatter(gstate)
	sp.End()
	rj.Job.SetStepCount(g.step)
	rj.Job.TotalPrecip = g.precip
	rj.auditAllGenerations(rs)
	rj.gens = nil
	// A fresh checkpoint round on the reduced world: new own snapshots,
	// new buddy assignment, new seals.
	if err := rj.takeCheckpoint(rs, g.step); err != nil {
		return err
	}
	rs.Shrinks++
	ev := RecoveryEvent{Kind: "shrink", Step: g.step, Attempt: attempt, Rank: dead, Err: cause}
	rs.Events = append(rs.Events, ev)
	rj.event(ev)
	return nil
}

// globalFallback is the bottom rung when every retained generation is
// lost or poisoned: reload the disk checkpoint if there is one,
// otherwise give up with the freshest verifiable state restored
// best-effort.
func (rj *ResilientJob) globalFallback(rs *ResilientStats, attempt int, cause error) error {
	if rj.DiskPath != "" {
		g, step, err := LoadCheckpoint(rj.DiskPath)
		if err == nil && step != rj.diskStep {
			err = fmt.Errorf("disk checkpoint at step %d, want %d", step, rj.diskStep)
		}
		if err == nil {
			locals := rj.Job.Scatter(g)
			for r := range rj.local {
				rj.local[r].CopyFrom(locals[r])
			}
			rj.Job.SetStepCount(rj.diskStep)
			rj.Job.TotalPrecip = rj.diskPrecip
			rj.Job.installSeals(nil)
			// Restart the ring from the disk bits.
			rj.auditAllGenerations(rs)
			rj.gens = nil
			if rerr := rj.takeCheckpoint(rs, rj.diskStep); rerr != nil {
				return rerr
			}
			rs.Rollbacks++
			ev := RecoveryEvent{Kind: "rollback", Step: rj.diskStep, Attempt: attempt, Rank: -1, Err: cause}
			rs.Events = append(rs.Events, ev)
			rj.event(ev)
			return nil
		}
		cause = fmt.Errorf("%w; disk fallback also failed: %w", cause, err)
	}
	// Nothing left to restore from: hand back what survives and the
	// full diagnosis.
	rj.bestEffortRestore(rs)
	rj.auditAllGenerations(rs)
	ev := RecoveryEvent{Kind: "giveup", Step: rj.checkpointStep(), Attempt: attempt, Rank: -1, Err: cause}
	rs.Events = append(rs.Events, ev)
	rj.event(ev)
	return fmt.Errorf("core: recovery ladder exhausted at step %d (best-effort state restored): %w", rj.checkpointStep(), cause)
}

// exchangeBuddies runs the buddy replication round for a new checkpoint
// generation: each rank encodes its state (v2 checkpoint format with
// CRC), verifies the encoding end to end BEFORE shipping — a snapshot
// that rotted between encode and ship must never overwrite the
// partner's last good copy — and sends it to rank (r+1)%n over the
// message runtime. The replication network is modeled reliable (no
// fault injection): the fault plan's operation counters are threaded
// only through the computation worlds, keeping the chaos schedule
// independent of the checkpoint cadence.
func (rj *ResilientJob) exchangeBuddies(rs *ResilientStats, g *ckptGeneration) error {
	n := rj.Job.NRanks
	encodeVerified := func(r int) ([]float64, error) {
		e, err := EncodeRankSnapshot(rj.local[r], g.step)
		if err != nil {
			return nil, err
		}
		if rj.PreShipHook != nil {
			rj.PreShipHook(r, e)
		}
		reg := rj.Job.Obs.R()
		reg.Counter("integrity.preship.checks").Add(1)
		if verr := VerifyRankSnapshot(e); verr != nil {
			reg.Counter("integrity.preship.rejects").Add(1)
			// Re-encode once from the live state: a flip that landed in
			// the encoded bytes (not the state) is repaired locally. A
			// second failure means the state itself cannot serialize
			// cleanly — do not ship it.
			e2, err2 := EncodeRankSnapshot(rj.local[r], g.step)
			if err2 != nil {
				return nil, err2
			}
			if rj.PreShipHook != nil {
				rj.PreShipHook(r, e2)
			}
			if verr2 := VerifyRankSnapshot(e2); verr2 != nil {
				return nil, fmt.Errorf("%w: rank %d snapshot fails pre-ship verification: %w", integrity.ErrCorrupt, r, verr2)
			}
			e = e2
		}
		return e, nil
	}
	if n == 1 {
		e, err := encodeVerified(0)
		if err != nil {
			return err
		}
		g.buddy = [][]float64{e}
		return nil
	}
	recvd := make([][]float64, n)
	w := mpirt.NewWorld(n)
	w.SetTracer(rj.Job.Obs.T())
	err := w.Run(func(c *mpirt.Comm) {
		r := c.Rank()
		e, eerr := encodeVerified(r)
		if eerr != nil {
			mpirt.Fail(eerr)
		}
		buddy := (r + 1) % n
		prev := (r - 1 + n) % n
		c.Send(buddy, tagBuddySize, []float64{float64(len(e))})
		c.Send(buddy, tagBuddyData, e)
		sz := make([]float64, 1)
		c.Recv(prev, tagBuddySize, sz)
		buf := make([]float64, int(sz[0]))
		c.Recv(prev, tagBuddyData, buf)
		recvd[r] = buf // rank r now holds the copy of rank prev
	})
	rs.BuddyBytes += w.TotalBytes()
	if err != nil {
		if errors.Is(err, integrity.ErrCorrupt) {
			return fmt.Errorf("core: buddy replication at step %d: %w", g.step, err)
		}
		return fmt.Errorf("core: buddy replication at step %d: %w", g.step, err)
	}
	enc := make([][]float64, n)
	for r := 0; r < n; r++ {
		enc[r] = recvd[(r+1)%n]
	}
	g.buddy = enc
	return nil
}

// fetchBuddy retrieves and decodes generation g's buddy-held copy of a
// failed rank's checkpoint, shipping it from the buddy's rank to the
// failed rank's slot over a recovery world (survivors wait at the
// barrier). The decode verifies framing, dimensions, the checkpoint
// CRC, the checkpoint step, and the shape expected by the failed rank's
// plan.
func (rj *ResilientJob) fetchBuddy(rs *ResilientStats, g *ckptGeneration, faulty int) (*dycore.State, error) {
	if g.buddy == nil || g.buddy[faulty] == nil {
		return nil, fmt.Errorf("%w: no buddy copy of rank %d", ErrBuddySnapshot, faulty)
	}
	enc := g.buddy[faulty]
	n := rj.Job.NRanks
	host := (faulty + 1) % n
	var st *dycore.State
	var step int
	var derr error
	if host == faulty {
		st, step, derr = DecodeRankSnapshot(enc)
	} else {
		w := mpirt.NewWorld(n)
		w.SetTracer(rj.Job.Obs.T())
		err := w.Run(func(c *mpirt.Comm) {
			switch c.Rank() {
			case host:
				c.Send(faulty, tagBuddySize, []float64{float64(len(enc))})
				c.Send(faulty, tagBuddyData, enc)
			case faulty:
				sz := make([]float64, 1)
				c.Recv(host, tagBuddySize, sz)
				buf := make([]float64, int(sz[0]))
				c.Recv(host, tagBuddyData, buf)
				st, step, derr = DecodeRankSnapshot(buf)
			}
			// The recovery barrier: survivors wait here until the
			// rebuilt rank has its state back.
			c.Barrier()
		})
		rs.BuddyBytes += w.TotalBytes()
		if err != nil {
			return nil, err
		}
	}
	if derr != nil {
		return nil, derr
	}
	if step != g.step {
		return nil, fmt.Errorf("%w: buddy copy of rank %d at step %d, want %d", ErrBuddySnapshot, faulty, step, g.step)
	}
	if st.NElem() != rj.local[faulty].NElem() {
		return nil, fmt.Errorf("%w: buddy copy of rank %d has %d elements, want %d",
			ErrBuddySnapshot, faulty, st.NElem(), rj.local[faulty].NElem())
	}
	return st, nil
}

// persist writes the gathered global state to DiskPath, if configured,
// and records the step/precip pair the disk fallback will rewind to.
func (rj *ResilientJob) persist(local []*dycore.State, step int) error {
	if rj.DiskPath == "" {
		return nil
	}
	g := rj.Job.Gather(local)
	if err := SaveCheckpoint(rj.DiskPath, g, step); err != nil {
		return fmt.Errorf("core: persisting checkpoint at step %d: %w", step, err)
	}
	rj.diskStep = step
	rj.diskPrecip = rj.Job.TotalPrecip
	return nil
}
