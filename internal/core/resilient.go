package core

import (
	"errors"
	"fmt"
	"time"

	"swcam/internal/dycore"
	"swcam/internal/mpirt"
)

// ResilientJob supervises a ParallelJob through faults. Two supervision
// modes are available:
//
// ModeGlobal (the default, and the original design): periodic in-memory
// checkpoints of every rank's state; any abort — an injected kill, a
// corrupted or lost message, a blowup caught by the watchdog, a rank
// panic — rolls the whole world back to the last checkpoint and replays.
//
// ModeLadder: a three-rung escalation that localizes recovery instead of
// always paying the global bill.
//
//  1. Bounded retransmission (mpirt.RetryPolicy): a corrupted or lost
//     message is re-pulled from the sender-side log with exponential
//     backoff before anyone declares a failure. Most transient faults
//     never surface past this rung.
//  2. Localized rebuild from partner-replicated diskless checkpoints:
//     at every checkpoint each rank ships its encoded state (v2
//     checkpoint format, CRC32-C) to its buddy rank (r+1 mod n). When a
//     single rank dies, it alone is rebuilt from the buddy's in-memory
//     copy while the survivors restore their own local snapshots at a
//     recovery barrier — no disk, no global replay. A rank that keeps
//     dying (DeadAfter consecutive failures) is declared permanently
//     dead and either respawned onto a spare (Spares > 0) or removed by
//     shrink recovery: its elements are repartitioned over the
//     survivors along the space-filling curve and the run continues on
//     n-1 ranks at reduced throughput.
//  3. Global rollback, the PR-1 path, as the fallback rung: blowups
//     (every rank's state is suspect, nobody's memory was lost),
//     unattributable faults, and lost/undecodable buddy copies fall
//     back to restoring everything — from own snapshots when they
//     survive, else from the disk checkpoint when DiskPath is set.
//
// Because the dycore, the DSS, and the mass fixer are deterministic and
// partition-invariant, every rung — including shrink onto fewer ranks —
// reproduces the fault-free trajectory bit-for-bit.
//
// This is the miniature of the checkpoint/restart discipline every
// production climate model runs under (the ladder mirrors ULFM-style
// shrink-and-recover MPI practice plus diskless buddy checkpointing):
// at the paper's 10M-core scale the question is not whether a rank dies
// mid-run but how cheaply the job continues when it does.
type ResilientJob struct {
	Job *ParallelJob

	// Mode selects the supervision strategy: ModeGlobal (default, also
	// the zero value) or ModeLadder.
	Mode string

	// CheckpointEvery is the number of steps between checkpoints
	// (default 1). Larger values checkpoint less often but replay more
	// steps after a fault.
	CheckpointEvery int

	// MaxRetries bounds the total number of recovery actions across the
	// run (default 3). When exhausted, Run restores the last good
	// checkpoint into the supervised states (best-effort result) and
	// returns an error wrapping the final cause — graceful degradation,
	// not a panic.
	MaxRetries int

	// Backoff is the sleep before the first retry, doubling per
	// consecutive retry (default 0: retry immediately; an in-process
	// world has no transient congestion to wait out, so backoff mainly
	// models the real-machine discipline and paces the test clock).
	Backoff time.Duration

	// DiskPath, when set, additionally persists every checkpoint to this
	// file (gathered global state, atomic rename, v2 CRC format) so a
	// killed process can restart from disk with LoadCheckpoint. In
	// ladder mode it doubles as the bottom rung when a buddy copy is
	// lost together with the rank it covered.
	DiskPath string

	// Spares is the number of replacement ranks available to ladder
	// recovery: a permanently dead rank consumes one spare and is
	// respawned (rebuilt from its buddy copy) instead of shrinking the
	// world.
	Spares int

	// DeadAfter is how many consecutive failures attributed to the same
	// rank escalate it from "suspect" (rebuild in place) to "permanently
	// dead" (respawn or shrink). Default 2.
	DeadAfter int

	// OnEvent, when set, observes every recovery decision.
	OnEvent func(RecoveryEvent)

	// Ladder bookkeeping.
	local       []*dycore.State // states under supervision (shrink replaces the slice)
	own         []*dycore.State // per-rank own snapshots ("node-local memory")
	buddyEnc    [][]float64     // buddyEnc[r] = encoded snapshot of rank r, held by rank (r+1)%n
	suspectRank int             // rank of the most recent attributed failure
	suspectRun  int             // consecutive failures attributed to suspectRank
	snapPrecip  float64         // TotalPrecip at the active checkpoint (see rewind)
}

// markCheckpoint records the diagnostics that ride along with a
// checkpoint but live outside the rank states — currently the
// accumulated precipitation.
func (rj *ResilientJob) markCheckpoint() { rj.snapPrecip = rj.Job.TotalPrecip }

// rewind resets the job's step counter and its accumulated diagnostics
// to the checkpoint. Replayed physics steps re-accumulate precipitation,
// so restoring the states without rewinding TotalPrecip would
// double-count every burned chunk's rain.
func (rj *ResilientJob) rewind(snapStep int) {
	rj.Job.SetStepCount(snapStep)
	rj.Job.TotalPrecip = rj.snapPrecip
}

// Supervision modes.
const (
	ModeGlobal = "global"
	ModeLadder = "ladder"
)

// RecoveryEvent describes one supervisor decision, for diagnostics.
type RecoveryEvent struct {
	Kind    string // "checkpoint", "rollback", "giveup", "localized", "respawn", "shrink"
	Step    int    // model step of the active checkpoint
	Attempt int    // consecutive failures at this checkpoint (recovery kinds)
	Rank    int    // failed rank for localized/respawn/shrink; -1 otherwise
	Err     error  // the fault that triggered it (recovery kinds)
}

func (e RecoveryEvent) String() string {
	rank := ""
	if e.Rank >= 0 {
		rank = fmt.Sprintf(" rank%d", e.Rank)
	}
	if e.Err == nil {
		return fmt.Sprintf("%s@step%d%s", e.Kind, e.Step, rank)
	}
	return fmt.Sprintf("%s@step%d%s attempt %d: %v", e.Kind, e.Step, rank, e.Attempt, e.Err)
}

// ResilientStats aggregates a supervised run: the underlying
// communication/kernel stats (including traffic burned by failed
// attempts) plus the recovery history.
type ResilientStats struct {
	Run         RunStats
	Checkpoints int
	Rollbacks   int // global rollbacks (rung 3)
	Localized   int // single-rank rebuilds from a buddy copy (rung 2)
	Respawns    int // permanently dead ranks replaced from spares
	Shrinks     int // permanently dead ranks removed by repartitioning
	// RetxAttempts/RetxRecovered mirror RunStats: rung-1 activity.
	RetxAttempts  int64
	RetxRecovered int64
	RecoveryNs    int64 // wall time spent inside recovery actions
	BuddyBytes    int64 // buddy-replication traffic (checkpoint + recovery)
	Events        []RecoveryEvent
}

// NewResilientJob wraps a ParallelJob with default supervision
// (global mode, checkpoint every step, 3 retries, no backoff,
// in-memory only).
func NewResilientJob(job *ParallelJob) *ResilientJob {
	return &ResilientJob{Job: job, CheckpointEvery: 1, MaxRetries: 3}
}

// States returns the state slice currently under supervision. It aliases
// the slice passed to Run until a shrink recovery replaces it (the world
// lost a rank, so the slice length changed); ladder-mode callers must
// gather results via States() rather than the slice they passed in.
func (rj *ResilientJob) States() []*dycore.State { return rj.local }

// snapshot deep-copies the per-rank states.
func snapshot(local []*dycore.State) []*dycore.State {
	out := make([]*dycore.State, len(local))
	for i, st := range local {
		out[i] = st.Clone()
	}
	return out
}

// restore copies a snapshot back into the caller's state objects.
func restore(local, snap []*dycore.State) {
	for i := range local {
		local[i].CopyFrom(snap[i])
	}
}

func (rj *ResilientJob) event(e RecoveryEvent) {
	rj.observe(e)
	if rj.OnEvent != nil {
		rj.OnEvent(e)
	}
}

// addRecoveryNs folds one recovery action's wall time into the run's
// stats and mirrors it into the registry (core.recovery.ns), where the
// StepReport's recovery summary picks it up.
func (rj *ResilientJob) addRecoveryNs(rs *ResilientStats, t0 time.Time) {
	ns := time.Since(t0).Nanoseconds()
	rs.RecoveryNs += ns
	rj.Job.Obs.R().Counter("core.recovery.ns").Add(ns)
}

// Run advances the local states n steps under supervision. On success
// the states hold exactly what a fault-free ParallelJob.Run would have
// produced (bit-identical: every rung restores checkpointed bits and the
// replay is deterministic). On retry-budget exhaustion the states hold
// the last good checkpoint and the returned error wraps the final
// fault; the stats' Events list is the full recovery history either way.
// In ladder mode a shrink recovery replaces the supervised slice — read
// results via States().
func (rj *ResilientJob) Run(local []*dycore.State, n int) (ResilientStats, error) {
	if rj.Mode == ModeLadder {
		return rj.runLadder(local, n)
	}
	rj.local = local
	every := rj.CheckpointEvery
	if every < 1 {
		every = 1
	}
	var rs ResilientStats
	rs.Run.Cost.Backend = rj.Job.Backend

	snap := snapshot(local)
	snapStep := rj.Job.StepCount()
	rj.markCheckpoint()
	if err := rj.persist(local, snapStep); err != nil {
		return rs, err
	}
	target := snapStep + n
	retries := 0
	attempt := 0
	backoff := rj.Backoff

	for rj.Job.StepCount() < target {
		chunk := every
		if left := target - rj.Job.StepCount(); left < chunk {
			chunk = left
		}
		stats, err := rj.Job.RunChecked(local, chunk)
		rs.Run.Halo.Add(stats.Halo)
		rs.Run.Cost.Add(stats.Cost)
		rs.RetxAttempts += stats.RetxAttempts
		rs.RetxRecovered += stats.RetxRecovered
		if err == nil {
			attempt = 0
			backoff = rj.Backoff
			sp := rj.Job.Obs.T().Begin(0, "core.checkpoint", "model")
			snap = snapshot(local)
			sp.End()
			snapStep = rj.Job.StepCount()
			rj.markCheckpoint()
			rs.Checkpoints++
			rs.Events = append(rs.Events, RecoveryEvent{Kind: "checkpoint", Step: snapStep, Rank: -1})
			rj.event(rs.Events[len(rs.Events)-1])
			if err := rj.persist(local, snapStep); err != nil {
				return rs, err
			}
			continue
		}

		attempt++
		if retries >= rj.MaxRetries {
			// Graceful degradation: hand back the last state known good
			// and the full diagnosis instead of a corrupt field set.
			t0 := time.Now()
			restore(local, snap)
			rj.rewind(snapStep)
			rj.addRecoveryNs(&rs, t0)
			ev := RecoveryEvent{Kind: "giveup", Step: snapStep, Attempt: attempt, Rank: -1, Err: err}
			rs.Events = append(rs.Events, ev)
			rj.event(ev)
			return rs, fmt.Errorf("core: retry budget (%d) exhausted at step %d (best-effort state restored): %w",
				rj.MaxRetries, snapStep, err)
		}
		retries++
		rs.Rollbacks++
		ev := RecoveryEvent{Kind: "rollback", Step: snapStep, Attempt: attempt, Rank: -1, Err: err}
		rs.Events = append(rs.Events, ev)
		rj.event(ev)
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		// The failed chunk's steps are burned work: they get replayed
		// from the checkpoint on the next attempt.
		rj.Job.Obs.R().Counter("core.recovery.replayed_steps").Add(int64(chunk))
		t0 := time.Now()
		sp := rj.Job.Obs.T().Begin(0, "core.rollback", "model")
		restore(local, snap)
		sp.End()
		rj.rewind(snapStep)
		rj.addRecoveryNs(&rs, t0)
	}
	rs.Run.Steps = rj.Job.StepCount()
	return rs, nil
}

// deadAfterN returns the escalation threshold with its default applied.
func (rj *ResilientJob) deadAfterN() int {
	if rj.DeadAfter < 1 {
		return 2
	}
	return rj.DeadAfter
}

// runLadder is Run in ModeLadder: bounded retransmission underneath,
// partner-replicated checkpoints for localized recovery, respawn/shrink
// for permanent deaths, global rollback as the fallback rung.
func (rj *ResilientJob) runLadder(local []*dycore.State, n int) (ResilientStats, error) {
	every := rj.CheckpointEvery
	if every < 1 {
		every = 1
	}
	// The ladder's first rung: make sure message-level retransmission is
	// on, and that lost messages surface as timeouts rather than hanging
	// the job forever when faults are being injected.
	if rj.Job.Retry.MaxAttempts == 0 {
		rj.Job.Retry = mpirt.DefaultRetryPolicy()
	}
	if rj.Job.Faults != nil && rj.Job.RecvTimeout == 0 {
		rj.Job.RecvTimeout = 150 * time.Millisecond
	}
	rj.local = local
	rj.suspectRank, rj.suspectRun = -1, 0

	var rs ResilientStats
	rs.Run.Cost.Backend = rj.Job.Backend

	snapStep := rj.Job.StepCount()
	rj.markCheckpoint()
	if err := rj.replicate(&rs, snapStep); err != nil {
		return rs, err
	}
	if err := rj.persist(rj.local, snapStep); err != nil {
		return rs, err
	}
	target := snapStep + n
	retries := 0
	attempt := 0
	backoff := rj.Backoff

	for rj.Job.StepCount() < target {
		chunk := every
		if left := target - rj.Job.StepCount(); left < chunk {
			chunk = left
		}
		stats, err := rj.Job.RunChecked(rj.local, chunk)
		rs.Run.Halo.Add(stats.Halo)
		rs.Run.Cost.Add(stats.Cost)
		rs.RetxAttempts += stats.RetxAttempts
		rs.RetxRecovered += stats.RetxRecovered
		if err == nil {
			attempt = 0
			backoff = rj.Backoff
			rj.suspectRank, rj.suspectRun = -1, 0
			snapStep = rj.Job.StepCount()
			rj.markCheckpoint()
			if err := rj.replicate(&rs, snapStep); err != nil {
				return rs, err
			}
			rs.Checkpoints++
			rs.Events = append(rs.Events, RecoveryEvent{Kind: "checkpoint", Step: snapStep, Rank: -1})
			rj.event(rs.Events[len(rs.Events)-1])
			if err := rj.persist(rj.local, snapStep); err != nil {
				return rs, err
			}
			continue
		}

		attempt++
		if retries >= rj.MaxRetries {
			t0 := time.Now()
			restore(rj.local, rj.own)
			rj.rewind(snapStep)
			rj.addRecoveryNs(&rs, t0)
			ev := RecoveryEvent{Kind: "giveup", Step: snapStep, Attempt: attempt, Rank: -1, Err: err}
			rs.Events = append(rs.Events, ev)
			rj.event(ev)
			return rs, fmt.Errorf("core: retry budget (%d) exhausted at step %d (best-effort state restored): %w",
				rj.MaxRetries, snapStep, err)
		}
		retries++
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		rj.Job.Obs.R().Counter("core.recovery.replayed_steps").Add(int64(chunk))
		t0 := time.Now()
		rerr := rj.recoverLadder(&rs, snapStep, attempt, err)
		rj.addRecoveryNs(&rs, t0)
		if rerr != nil {
			return rs, rerr
		}
	}
	rs.Run.Steps = rj.Job.StepCount()
	return rs, nil
}

// recoverLadder picks and executes the recovery rung for one failed
// chunk. A nil return means the supervised states are back at the last
// checkpoint (possibly on a reduced world) and the chunk can be
// replayed; an error means every applicable rung failed.
func (rj *ResilientJob) recoverLadder(rs *ResilientStats, snapStep, attempt int, cause error) error {
	var re *mpirt.RunError
	faulty := -1
	if errors.As(cause, &re) {
		faulty = re.Rank
	}
	// Blowups are not rank failures: nobody's memory was lost, and the
	// state is wrong (or about to be) everywhere. Likewise a fault with
	// no rank attribution gives localized recovery nothing to localize.
	if faulty < 0 || errors.Is(cause, ErrBlowup) {
		return rj.rollbackOwn(rs, snapStep, attempt, cause)
	}
	if faulty == rj.suspectRank {
		rj.suspectRun++
	} else {
		rj.suspectRank, rj.suspectRun = faulty, 1
	}
	if rj.suspectRun >= rj.deadAfterN() {
		// Permanently dead: the failure detector has watched this rank
		// die DeadAfter times in a row through localized rebuilds.
		rj.suspectRank, rj.suspectRun = -1, 0
		if rj.Spares > 0 {
			rj.Spares--
			return rj.localizedRestore(rs, "respawn", faulty, snapStep, attempt, cause)
		}
		if rj.Job.NRanks > 1 {
			return rj.shrinkRestore(rs, faulty, snapStep, attempt, cause)
		}
		// A 1-rank world has nothing to shrink onto.
		return rj.rollbackOwn(rs, snapStep, attempt, cause)
	}
	return rj.localizedRestore(rs, "localized", faulty, snapStep, attempt, cause)
}

// rollbackOwn is the global rung when every rank's own snapshot
// survives: restore all, rewind, replay.
func (rj *ResilientJob) rollbackOwn(rs *ResilientStats, snapStep, attempt int, cause error) error {
	sp := rj.Job.Obs.T().Begin(0, "core.rollback", "model")
	restore(rj.local, rj.own)
	sp.End()
	rj.rewind(snapStep)
	rs.Rollbacks++
	ev := RecoveryEvent{Kind: "rollback", Step: snapStep, Attempt: attempt, Rank: -1, Err: cause}
	rs.Events = append(rs.Events, ev)
	rj.event(ev)
	return nil
}

// localizedRestore rebuilds a single failed rank from its buddy's
// in-memory copy while the survivors restore their own snapshots. kind
// is "localized" (suspect rebuild in place) or "respawn" (permanently
// dead rank replaced from a spare — same data path, different ledger).
func (rj *ResilientJob) localizedRestore(rs *ResilientStats, kind string, faulty, snapStep, attempt int, cause error) error {
	// The failed process's memory is gone: drop its own snapshot first
	// so every fallback is honest about what survives.
	rj.own[faulty] = nil
	st, err := rj.fetchBuddy(rs, faulty, snapStep)
	if err != nil {
		return rj.globalFallback(rs, snapStep, attempt,
			fmt.Errorf("core: localized recovery of rank %d failed: %w (original fault: %w)", faulty, err, cause))
	}
	sp := rj.Job.Obs.T().Begin(0, "core."+kind, "model")
	for r := range rj.local {
		if r == faulty {
			rj.local[r].CopyFrom(st)
		} else {
			rj.local[r].CopyFrom(rj.own[r])
		}
	}
	// The rebuilt rank holds the checkpoint in memory again.
	rj.own[faulty] = st
	sp.End()
	rj.rewind(snapStep)
	if kind == "respawn" {
		rs.Respawns++
	} else {
		rs.Localized++
	}
	ev := RecoveryEvent{Kind: kind, Step: snapStep, Attempt: attempt, Rank: faulty, Err: cause}
	rs.Events = append(rs.Events, ev)
	rj.event(ev)
	return nil
}

// shrinkRestore removes a permanently dead rank: the checkpoint-time
// global state is reassembled from the survivors' own snapshots plus the
// dead rank's buddy copy (using the pre-shrink plans), the job is
// repartitioned over n-1 ranks, and the reassembled state is scattered
// onto the new layout. The supervised slice is replaced — see States().
func (rj *ResilientJob) shrinkRestore(rs *ResilientStats, dead, snapStep, attempt int, cause error) error {
	rj.own[dead] = nil
	st, err := rj.fetchBuddy(rs, dead, snapStep)
	if err != nil {
		return rj.globalFallback(rs, snapStep, attempt,
			fmt.Errorf("core: shrink recovery of rank %d failed: %w (original fault: %w)", dead, err, cause))
	}
	sp := rj.Job.Obs.T().Begin(0, "core.shrink", "model")
	srcs := make([]*dycore.State, rj.Job.NRanks)
	for r := range srcs {
		if r == dead {
			srcs[r] = st
		} else {
			srcs[r] = rj.own[r]
		}
	}
	g := rj.Job.Gather(srcs) // pre-shrink plans: checkpoint-time global state
	if serr := rj.Job.Shrink(dead); serr != nil {
		sp.End()
		return rj.globalFallback(rs, snapStep, attempt,
			fmt.Errorf("core: shrinking away rank %d failed: %w (original fault: %w)", dead, serr, cause))
	}
	rj.local = rj.Job.Scatter(g)
	sp.End()
	rj.rewind(snapStep)
	// A fresh replication round on the reduced world: new own snapshots,
	// new buddy assignment.
	if err := rj.replicate(rs, snapStep); err != nil {
		return err
	}
	rs.Shrinks++
	ev := RecoveryEvent{Kind: "shrink", Step: snapStep, Attempt: attempt, Rank: dead, Err: cause}
	rs.Events = append(rs.Events, ev)
	rj.event(ev)
	return nil
}

// globalFallback is the bottom rung when a rank's memory AND its buddy
// copy are both gone: reload the disk checkpoint if there is one,
// otherwise give up with the survivors restored best-effort.
func (rj *ResilientJob) globalFallback(rs *ResilientStats, snapStep, attempt int, cause error) error {
	if rj.DiskPath != "" {
		g, step, err := LoadCheckpoint(rj.DiskPath)
		if err == nil && step != snapStep {
			err = fmt.Errorf("disk checkpoint at step %d, want %d", step, snapStep)
		}
		if err == nil {
			locals := rj.Job.Scatter(g)
			for r := range rj.local {
				rj.local[r].CopyFrom(locals[r])
			}
			rj.rewind(snapStep)
			if rerr := rj.replicate(rs, snapStep); rerr != nil {
				return rerr
			}
			rs.Rollbacks++
			ev := RecoveryEvent{Kind: "rollback", Step: snapStep, Attempt: attempt, Rank: -1, Err: cause}
			rs.Events = append(rs.Events, ev)
			rj.event(ev)
			return nil
		}
		cause = fmt.Errorf("%w; disk fallback also failed: %w", cause, err)
	}
	// Nothing left to restore the lost rank from: hand back what
	// survives and the full diagnosis.
	for r := range rj.local {
		if rj.own[r] != nil {
			rj.local[r].CopyFrom(rj.own[r])
		}
	}
	rj.rewind(snapStep)
	ev := RecoveryEvent{Kind: "giveup", Step: snapStep, Attempt: attempt, Rank: -1, Err: cause}
	rs.Events = append(rs.Events, ev)
	rj.event(ev)
	return fmt.Errorf("core: recovery ladder exhausted at step %d (best-effort state restored): %w", snapStep, cause)
}

// replicate takes the ladder checkpoint: own snapshots of every rank
// plus the buddy exchange — each rank encodes its state (v2 checkpoint
// format with CRC) and ships it to rank (r+1)%n over the message
// runtime, so a copy of every rank's state survives in a peer's memory.
// The replication network is modeled reliable (no fault injection): the
// fault plan's operation counters are threaded only through the
// computation worlds, keeping the chaos schedule independent of the
// checkpoint cadence.
func (rj *ResilientJob) replicate(rs *ResilientStats, step int) error {
	sp := rj.Job.Obs.T().Begin(0, "core.checkpoint", "model")
	defer sp.End()
	rj.own = snapshot(rj.local)
	n := rj.Job.NRanks
	enc := make([][]float64, n)
	if n == 1 {
		e, err := EncodeRankSnapshot(rj.local[0], step)
		if err != nil {
			return err
		}
		enc[0] = e
		rj.buddyEnc = enc
		return nil
	}
	recvd := make([][]float64, n)
	w := mpirt.NewWorld(n)
	w.SetTracer(rj.Job.Obs.T())
	err := w.Run(func(c *mpirt.Comm) {
		r := c.Rank()
		e, eerr := EncodeRankSnapshot(rj.local[r], step)
		if eerr != nil {
			mpirt.Fail(eerr)
		}
		buddy := (r + 1) % n
		prev := (r - 1 + n) % n
		c.Send(buddy, tagBuddySize, []float64{float64(len(e))})
		c.Send(buddy, tagBuddyData, e)
		sz := make([]float64, 1)
		c.Recv(prev, tagBuddySize, sz)
		buf := make([]float64, int(sz[0]))
		c.Recv(prev, tagBuddyData, buf)
		recvd[r] = buf // rank r now holds the copy of rank prev
	})
	rs.BuddyBytes += w.TotalBytes()
	if err != nil {
		return fmt.Errorf("core: buddy replication at step %d: %w", step, err)
	}
	for r := 0; r < n; r++ {
		enc[r] = recvd[(r+1)%n]
	}
	rj.buddyEnc = enc
	return nil
}

// fetchBuddy retrieves and decodes the buddy-held copy of a failed
// rank's checkpoint, shipping it from the buddy's rank to the failed
// rank's slot over a recovery world (survivors wait at the barrier).
// The decode verifies framing, dimensions, the checkpoint CRC, the
// checkpoint step, and the shape expected by the failed rank's plan.
func (rj *ResilientJob) fetchBuddy(rs *ResilientStats, faulty, snapStep int) (*dycore.State, error) {
	enc := rj.buddyEnc[faulty]
	if enc == nil {
		return nil, fmt.Errorf("%w: no buddy copy of rank %d", ErrBuddySnapshot, faulty)
	}
	n := rj.Job.NRanks
	host := (faulty + 1) % n
	var st *dycore.State
	var step int
	var derr error
	if host == faulty {
		st, step, derr = DecodeRankSnapshot(enc)
	} else {
		w := mpirt.NewWorld(n)
		w.SetTracer(rj.Job.Obs.T())
		err := w.Run(func(c *mpirt.Comm) {
			switch c.Rank() {
			case host:
				c.Send(faulty, tagBuddySize, []float64{float64(len(enc))})
				c.Send(faulty, tagBuddyData, enc)
			case faulty:
				sz := make([]float64, 1)
				c.Recv(host, tagBuddySize, sz)
				buf := make([]float64, int(sz[0]))
				c.Recv(host, tagBuddyData, buf)
				st, step, derr = DecodeRankSnapshot(buf)
			}
			// The recovery barrier: survivors wait here until the
			// rebuilt rank has its state back.
			c.Barrier()
		})
		rs.BuddyBytes += w.TotalBytes()
		if err != nil {
			return nil, err
		}
	}
	if derr != nil {
		return nil, derr
	}
	if step != snapStep {
		return nil, fmt.Errorf("%w: buddy copy of rank %d at step %d, want %d", ErrBuddySnapshot, faulty, step, snapStep)
	}
	if st.NElem() != rj.local[faulty].NElem() {
		return nil, fmt.Errorf("%w: buddy copy of rank %d has %d elements, want %d",
			ErrBuddySnapshot, faulty, st.NElem(), rj.local[faulty].NElem())
	}
	return st, nil
}

// persist writes the gathered global state to DiskPath, if configured.
func (rj *ResilientJob) persist(local []*dycore.State, step int) error {
	if rj.DiskPath == "" {
		return nil
	}
	g := rj.Job.Gather(local)
	if err := SaveCheckpoint(rj.DiskPath, g, step); err != nil {
		return fmt.Errorf("core: persisting checkpoint at step %d: %w", step, err)
	}
	return nil
}
