package core

import (
	"fmt"
	"time"

	"swcam/internal/dycore"
)

// ResilientJob supervises a ParallelJob through faults: it takes
// periodic in-memory checkpoints of every rank's state plus the step
// counter, and when the world aborts — an injected kill, a corrupted or
// lost message, a blowup caught by the watchdog, a rank panic — it rolls
// back to the last checkpoint, rebuilds a fresh world, and replays.
// Because the dycore is deterministic, the recovered trajectory is
// bit-identical to a fault-free run.
//
// This is the miniature of the checkpoint/restart discipline every
// production climate model runs under (and the in-memory flavour mirrors
// ULFM-style shrink-and-recover MPI practice): at the paper's 10M-core
// scale the question is not whether a rank dies mid-run but how cheaply
// the job continues when it does.
type ResilientJob struct {
	Job *ParallelJob

	// CheckpointEvery is the number of steps between checkpoints
	// (default 1). Larger values checkpoint less often but replay more
	// steps after a fault.
	CheckpointEvery int

	// MaxRetries bounds the total number of rollbacks across the run
	// (default 3). When exhausted, Run restores the last good checkpoint
	// into the caller's states (best-effort result) and returns an error
	// wrapping the final cause — graceful degradation, not a panic.
	MaxRetries int

	// Backoff is the sleep before the first retry, doubling per
	// consecutive retry (default 0: retry immediately; an in-process
	// world has no transient congestion to wait out, so backoff mainly
	// models the real-machine discipline and paces the test clock).
	Backoff time.Duration

	// DiskPath, when set, additionally persists every checkpoint to this
	// file (gathered global state, atomic rename, v2 CRC format) so a
	// killed process can restart from disk with LoadCheckpoint.
	DiskPath string

	// OnEvent, when set, observes every recovery decision.
	OnEvent func(RecoveryEvent)
}

// RecoveryEvent describes one supervisor decision, for diagnostics.
type RecoveryEvent struct {
	Kind    string // "checkpoint", "rollback", "giveup"
	Step    int    // model step of the active checkpoint
	Attempt int    // consecutive failures at this checkpoint (rollback/giveup)
	Err     error  // the fault that triggered it (rollback/giveup)
}

func (e RecoveryEvent) String() string {
	if e.Err == nil {
		return fmt.Sprintf("%s@step%d", e.Kind, e.Step)
	}
	return fmt.Sprintf("%s@step%d attempt %d: %v", e.Kind, e.Step, e.Attempt, e.Err)
}

// ResilientStats aggregates a supervised run: the underlying
// communication/kernel stats (including traffic burned by failed
// attempts) plus the recovery history.
type ResilientStats struct {
	Run         RunStats
	Checkpoints int
	Rollbacks   int
	Events      []RecoveryEvent
}

// NewResilientJob wraps a ParallelJob with default supervision
// (checkpoint every step, 3 retries, no backoff, in-memory only).
func NewResilientJob(job *ParallelJob) *ResilientJob {
	return &ResilientJob{Job: job, CheckpointEvery: 1, MaxRetries: 3}
}

// snapshot deep-copies the per-rank states.
func snapshot(local []*dycore.State) []*dycore.State {
	out := make([]*dycore.State, len(local))
	for i, st := range local {
		out[i] = st.Clone()
	}
	return out
}

// restore copies a snapshot back into the caller's state objects.
func restore(local, snap []*dycore.State) {
	for i := range local {
		local[i].CopyFrom(snap[i])
	}
}

func (rj *ResilientJob) event(e RecoveryEvent) {
	rj.observe(e)
	if rj.OnEvent != nil {
		rj.OnEvent(e)
	}
}

// Run advances the local states n steps under supervision. On success
// the states hold exactly what a fault-free ParallelJob.Run would have
// produced (bit-identical: rollback restores checkpointed bits and the
// replay is deterministic). On retry-budget exhaustion the states hold
// the last good checkpoint and the returned error wraps the final
// fault; the stats' Events list is the full recovery history either way.
func (rj *ResilientJob) Run(local []*dycore.State, n int) (ResilientStats, error) {
	every := rj.CheckpointEvery
	if every < 1 {
		every = 1
	}
	var rs ResilientStats
	rs.Run.Cost.Backend = rj.Job.Backend

	snap := snapshot(local)
	snapStep := rj.Job.StepCount()
	if err := rj.persist(local, snapStep); err != nil {
		return rs, err
	}
	target := snapStep + n
	retries := 0
	attempt := 0
	backoff := rj.Backoff

	for rj.Job.StepCount() < target {
		chunk := every
		if left := target - rj.Job.StepCount(); left < chunk {
			chunk = left
		}
		stats, err := rj.Job.RunChecked(local, chunk)
		rs.Run.Halo.Add(stats.Halo)
		rs.Run.Cost.Add(stats.Cost)
		if err == nil {
			attempt = 0
			backoff = rj.Backoff
			sp := rj.Job.Obs.T().Begin(0, "core.checkpoint", "model")
			snap = snapshot(local)
			sp.End()
			snapStep = rj.Job.StepCount()
			rs.Checkpoints++
			rs.Events = append(rs.Events, RecoveryEvent{Kind: "checkpoint", Step: snapStep})
			rj.event(rs.Events[len(rs.Events)-1])
			if err := rj.persist(local, snapStep); err != nil {
				return rs, err
			}
			continue
		}

		attempt++
		if retries >= rj.MaxRetries {
			// Graceful degradation: hand back the last state known good
			// and the full diagnosis instead of a corrupt field set.
			restore(local, snap)
			rj.Job.SetStepCount(snapStep)
			ev := RecoveryEvent{Kind: "giveup", Step: snapStep, Attempt: attempt, Err: err}
			rs.Events = append(rs.Events, ev)
			rj.event(ev)
			return rs, fmt.Errorf("core: retry budget (%d) exhausted at step %d (best-effort state restored): %w",
				rj.MaxRetries, snapStep, err)
		}
		retries++
		rs.Rollbacks++
		ev := RecoveryEvent{Kind: "rollback", Step: snapStep, Attempt: attempt, Err: err}
		rs.Events = append(rs.Events, ev)
		rj.event(ev)
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		// The failed chunk's steps are burned work: they get replayed
		// from the checkpoint on the next attempt.
		rj.Job.Obs.R().Counter("core.recovery.replayed_steps").Add(int64(chunk))
		sp := rj.Job.Obs.T().Begin(0, "core.rollback", "model")
		restore(local, snap)
		sp.End()
		rj.Job.SetStepCount(snapStep)
	}
	rs.Run.Steps = rj.Job.StepCount()
	return rs, nil
}

// persist writes the gathered global state to DiskPath, if configured.
func (rj *ResilientJob) persist(local []*dycore.State, step int) error {
	if rj.DiskPath == "" {
		return nil
	}
	g := rj.Job.Gather(local)
	if err := SaveCheckpoint(rj.DiskPath, g, step); err != nil {
		return fmt.Errorf("core: persisting checkpoint at step %d: %w", step, err)
	}
	return nil
}
