package core

import (
	"math"
	"testing"

	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/perf"
	"swcam/internal/physics"
)

func testDycoreCfg(ne, nlev, qsize int) dycore.Config {
	cfg := dycore.DefaultConfig(ne)
	cfg.Nlev = nlev
	cfg.Qsize = qsize
	return cfg
}

// The central integration test: the distributed driver (partitioned
// mesh, per-rank engines, halo exchanges, allreduce mass fixer) must
// reproduce the serial Solver to rounding for the Intel backend (same
// arithmetic everywhere) across several full steps including remap.
func TestParallelMatchesSerialIntel(t *testing.T) {
	cfg := testDycoreCfg(4, 8, 2)
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := s.NewState()
	s.InitBaroclinicWave(ref)
	s.InitCosineBellTracer(ref, 0, math.Pi/2, 0.2, 0.7)
	s.InitCosineBellTracer(ref, 1, math.Pi, -0.3, 0.5)
	global := ref.Clone()

	const steps = 4
	for i := 0; i < steps; i++ {
		s.Step(ref)
	}

	for _, nranks := range []int{1, 3, 6} {
		job, err := NewParallelJob(cfg, exec.Intel, true, nranks)
		if err != nil {
			t.Fatal(err)
		}
		local := job.Scatter(global)
		stats := job.Run(local, steps)
		got := job.Gather(local)
		if d := got.MaxAbsDiff(ref); d > 1e-7 {
			t.Errorf("nranks=%d: parallel differs from serial by %g", nranks, d)
		}
		if nranks > 1 && stats.Halo.WireBytes == 0 {
			t.Errorf("nranks=%d: no halo traffic", nranks)
		}
		if stats.Cost.Flops() == 0 {
			t.Errorf("nranks=%d: no kernel cost accounted", nranks)
		}
	}
}

// The Athread backend (vertical scans over register communication,
// vectorized kernels) must agree with serial to scan-regrouping
// rounding, through full distributed steps.
func TestParallelAthreadMatchesSerial(t *testing.T) {
	cfg := testDycoreCfg(2, 8, 1)
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := s.NewState()
	s.InitBaroclinicWave(ref)
	s.InitCosineBellTracer(ref, 0, math.Pi/2, 0.2, 0.7)
	global := ref.Clone()
	const steps = 3
	for i := 0; i < steps; i++ {
		s.Step(ref)
	}
	job, err := NewParallelJob(cfg, exec.Athread, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	local := job.Scatter(global)
	stats := job.Run(local, steps)
	got := job.Gather(local)
	// Scale: T ~ 300 K, dp ~ 1e4 Pa; 1e-6 absolute is ~1e-10 relative.
	if d := got.MaxAbsDiff(ref); d > 1e-5 {
		t.Errorf("Athread parallel differs from serial by %g", d)
	}
	if stats.Cost.RegMsgs == 0 {
		t.Error("Athread run used no register communication")
	}
	if stats.Cost.FlopsVector == 0 {
		t.Error("Athread run retired no vector flops")
	}
}

// Both exchange flavours produce identical results; the redesigned one
// must move fewer staged bytes (§7.6).
func TestParallelOverlapVsOriginal(t *testing.T) {
	cfg := testDycoreCfg(4, 8, 1)
	s, _ := dycore.NewSolver(cfg)
	g := s.NewState()
	s.InitBaroclinicWave(g)
	s.InitCosineBellTracer(g, 0, 1, 0, 0.5)

	run := func(overlap bool) (*dycore.State, RunStats) {
		job, err := NewParallelJob(cfg, exec.Intel, overlap, 4)
		if err != nil {
			t.Fatal(err)
		}
		local := job.Scatter(g)
		stats := job.Run(local, 2)
		return job.Gather(local), stats
	}
	a, sa := run(false)
	b, sb := run(true)
	if d := a.MaxAbsDiff(b); d != 0 {
		t.Errorf("exchange flavours diverge by %g", d)
	}
	if sa.Halo.StagingBytes == 0 {
		t.Error("original exchange reported no staging copies")
	}
	if sb.Halo.StagingBytes != 0 {
		t.Error("redesigned exchange still staging")
	}
	if sa.Halo.WireBytes != sb.Halo.WireBytes {
		t.Error("wire traffic should not depend on the flavour")
	}
}

func TestModelMoistRunStable(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Dycore.Nlev = 8
	cfg.Dycore.Qsize = 3
	cfg.PhysEvery = 2
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Solver.InitBaroclinicWave(m.State)
	// Moisten the boundary layer so the moist schemes engage.
	npsq := m.Solver.Cfg.Np * m.Solver.Cfg.Np
	for ei := range m.State.Qdp {
		qdp := m.State.QdpAt(ei, 0)
		for k := 0; k < m.Solver.Cfg.Nlev; k++ {
			for n := 0; n < npsq; n++ {
				i := k*npsq + n
				sig := float64(k+1) / float64(m.Solver.Cfg.Nlev)
				qdp[i] = 0.016 * math.Pow(sig, 3) * m.State.DP[ei][i]
			}
		}
	}
	m.Run(6)
	if w := m.Solver.MaxWind(m.State); w > 300 || math.IsNaN(w) {
		t.Fatalf("wind blew up: %v", w)
	}
	for ei := range m.State.T {
		for _, v := range m.State.T[ei] {
			if v < 120 || v > 400 || math.IsNaN(v) {
				t.Fatalf("unphysical T %v", v)
			}
		}
	}
	if m.TotalPrecip < 0 || math.IsNaN(m.TotalPrecip) {
		t.Fatalf("bad precip accumulation %v", m.TotalPrecip)
	}
	if m.SimHours() <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestModelHeldSuarezDrivesJets(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Dycore.Nlev = 8
	cfg.Dycore.Qsize = 0
	cfg.Physics = physics.HeldSuarezMode
	cfg.PhysEvery = 1
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Solver.InitRest(m.State, 280)
	m.Run(30)
	// The HS forcing must have produced motion (baroclinicity -> wind)
	// while keeping the run stable.
	w := m.Solver.MaxWind(m.State)
	if w <= 0.01 || w > 300 || math.IsNaN(w) {
		t.Fatalf("HS run wind = %v", w)
	}
	// Equator warmer than poles near the surface.
	zm := m.Solver.ZonalMeanT(m.State, m.Solver.Cfg.Nlev-1, 9)
	if !(zm[4] > zm[0] && zm[4] > zm[8]) {
		t.Errorf("no equator-pole contrast: %v", zm)
	}
}

// Figure 4's claim: control (Intel) and test (Athread) hardware produce
// the same climate. We run the same Held-Suarez case through the serial
// solver and the Athread distributed driver and compare zonal-mean
// temperature — the paper's comparison metric.
func TestClimatologyBackendEquivalence(t *testing.T) {
	cfg := testDycoreCfg(2, 8, 0)
	s, _ := dycore.NewSolver(cfg)
	ref := s.NewState()
	s.InitBaroclinicWave(ref)
	g := ref.Clone()
	const steps = 6
	for i := 0; i < steps; i++ {
		s.Step(ref)
	}
	job, err := NewParallelJob(cfg, exec.Athread, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	local := job.Scatter(g)
	job.Run(local, steps)
	got := job.Gather(local)

	zmRef := s.ZonalMeanT(ref, cfg.Nlev-1, 12)
	zmGot := s.ZonalMeanT(got, cfg.Nlev-1, 12)
	for b := range zmRef {
		if d := math.Abs(zmRef[b] - zmGot[b]); d > 1e-6 {
			t.Errorf("band %d: zonal-mean T differs by %g K between backends", b, d)
		}
	}
}

func TestNewModelValidation(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.PhysEvery = 0
	if _, err := NewModel(cfg); err == nil {
		t.Error("PhysEvery=0 accepted")
	}
	cfg = DefaultConfig(4)
	cfg.Dycore.Qsize = 0 // moist physics without vapour tracer
	if _, err := NewModel(cfg); err == nil {
		t.Error("moist physics without tracers accepted")
	}
	cfg = DefaultConfig(4)
	cfg.Dycore.Ne = 0
	if _, err := NewModel(cfg); err == nil {
		t.Error("bad dycore config accepted")
	}
}

func TestSurfaceTProfile(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Dycore.Nlev = 8
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.SurfaceT(0) != cfg.SST {
		t.Error("equatorial SST wrong")
	}
	if m.SurfaceT(math.Pi/2) >= m.SurfaceT(0) {
		t.Error("poles should be colder")
	}
}

// Partition ablation: the SFC partition must produce far less halo
// traffic than round-robin in a real distributed run — the reason
// HOMME (and this driver) order elements along a space-filling curve.
func TestSFCPartitionReducesHaloTraffic(t *testing.T) {
	cfg := testDycoreCfg(4, 8, 0)
	s, _ := dycore.NewSolver(cfg)
	g := s.NewState()
	s.InitBaroclinicWave(g)

	traffic := func(job *ParallelJob) int64 {
		local := job.Scatter(g)
		stats := job.Run(local, 1)
		return stats.Halo.WireBytes
	}
	sfcJob, err := NewParallelJob(cfg, exec.Intel, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	sfcBytes := traffic(sfcJob)

	// Round-robin assignment: worst-case locality.
	rrJob, err := NewParallelJob(cfg, exec.Intel, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	for id := range rrJob.RankOf {
		rrJob.RankOf[id] = id % 8
	}
	// Rebuild plans and engines for the new assignment.
	rr, err := newJobWithPartition(cfg, exec.Intel, true, 8, rrJob.RankOf)
	if err != nil {
		t.Fatal(err)
	}
	rrBytes := traffic(rr)
	if sfcBytes*2 > rrBytes {
		t.Errorf("SFC halo %d B not well below round-robin %d B", sfcBytes, rrBytes)
	}
}

// Column physics is embarrassingly parallel: any worker count must give
// bit-identical results (CAM's chunk decomposition), INCLUDING the
// global precipitation reduction — per-element partials merge in fixed
// element order, so not even the last ULP may move.
func TestPhysicsWorkersEquivalent(t *testing.T) {
	mk := func(workers int) *Model {
		cfg := DefaultConfig(4)
		cfg.Dycore.Nlev = 8
		cfg.Dycore.Qsize = 3
		cfg.PhysEvery = 1
		cfg.PhysWorkers = workers
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.Solver.InitBaroclinicWave(m.State)
		npsq := m.Solver.Cfg.Np * m.Solver.Cfg.Np
		for ei := range m.State.Qdp {
			qdp := m.State.QdpAt(ei, 0)
			for k := 0; k < m.Solver.Cfg.Nlev; k++ {
				sig := float64(k+1) / 8
				for n := 0; n < npsq; n++ {
					qdp[k*npsq+n] = 0.014 * sig * sig * m.State.DP[ei][k*npsq+n]
				}
			}
		}
		return m
	}
	serial := mk(1)
	parallel := mk(7)
	serial.Run(3)
	parallel.Run(3)
	if d := serial.State.MaxAbsDiff(parallel.State); d != 0 {
		t.Errorf("physics workers changed the answer by %g", d)
	}
	if serial.TotalPrecip != parallel.TotalPrecip {
		t.Errorf("precip accumulation differs: %v vs %v", serial.TotalPrecip, parallel.TotalPrecip)
	}
	if serial.TotalPrecip <= 0 {
		t.Errorf("run produced no precipitation — the comparison is vacuous")
	}
}

// Cross-validation of the two performance layers: modeled kernel time
// from the FUNCTIONAL simulator's measured counters must scale down as
// ranks are added (the work divides), with sub-linear speedup (the halo
// grows) — the measured-counter analogue of the analytic strong-scaling
// model in internal/perf.
func TestMeasuredCountersStrongScaling(t *testing.T) {
	cfg := testDycoreCfg(4, 8, 1)
	s, _ := dycore.NewSolver(cfg)
	g := s.NewState()
	s.InitBaroclinicWave(g)

	perRankTime := func(nranks int) (compute float64, wire int64) {
		job, err := NewParallelJob(cfg, exec.Athread, true, nranks)
		if err != nil {
			t.Fatal(err)
		}
		local := job.Scatter(g.Clone())
		stats := job.Run(local, 2)
		// Max-loaded rank approximated by even division (SFC balance).
		c := stats.Cost
		c.MaxCPEFlops /= int64(nranks) // aggregate max is summed across ranks
		c.MemBytes /= int64(nranks)
		c.DMAOps /= int64(nranks)
		c.RegMsgs /= int64(nranks)
		return perf.KernelTime(c), stats.Halo.WireBytes
	}
	t2, w2 := perRankTime(2)
	t8, w8 := perRankTime(8)
	if t8 >= t2 {
		t.Errorf("modeled per-rank time did not drop with ranks: %g -> %g", t2, t8)
	}
	// Total halo traffic grows with the number of ranks (more cut edges).
	if w8 <= w2 {
		t.Errorf("total halo traffic should grow with ranks: %d -> %d", w2, w8)
	}
	// Speedup is sublinear: 4x ranks buys less than 4x.
	if t2/t8 >= 4 {
		t.Errorf("superlinear measured speedup %g is implausible", t2/t8)
	}
}

// CAM's real vertical resolution (30 levels, not divisible by the 8 CPE
// mesh rows) through the full distributed Athread pipeline.
func TestParallelAthreadCAMLevels(t *testing.T) {
	cfg := testDycoreCfg(2, 30, 1)
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := s.NewState()
	s.InitBaroclinicWave(ref)
	s.InitCosineBellTracer(ref, 0, 1.5, 0.1, 0.6)
	global := ref.Clone()
	const steps = 2
	for i := 0; i < steps; i++ {
		s.Step(ref)
	}
	job, err := NewParallelJob(cfg, exec.Athread, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	local := job.Scatter(global)
	job.Run(local, steps)
	got := job.Gather(local)
	if d := got.MaxAbsDiff(ref); d > 1e-5 {
		t.Errorf("nlev=30 Athread distributed run differs from serial by %g", d)
	}
}
