// Package core composes the full miniature CAM: the spectral-element
// dycore (internal/dycore), the CAM5-lite physics suite
// (internal/physics), and — for distributed runs — the per-rank
// execution engines (internal/exec) stitched together with the
// boundary-exchange plans (internal/halo) over the message-passing
// runtime (internal/mpirt). This is the layer the paper calls "the
// entire model": dynamics and physics executed in turn each timestep.
package core

import (
	"fmt"
	"math"
	"sync"

	"swcam/internal/dycore"
	"swcam/internal/obs"
	"swcam/internal/physics"
)

// Config selects the whole-model setup.
type Config struct {
	Dycore  dycore.Config
	Physics physics.SuiteMode
	// PhysEvery applies the physics suite every N dynamics steps
	// (CAM's dtime / dtdyn ratio).
	PhysEvery int
	// SST is the prescribed sea-surface temperature at the equator;
	// the surface cools poleward with cos^2(lat).
	SST      float64
	SSTDelta float64
	// PhysWorkers runs the column-physics loop on N goroutines (CAM
	// parallelizes physics over "chunks" of columns the same way).
	// 0 or 1 means serial. Columns are independent, so results are
	// identical for any worker count.
	PhysWorkers int
}

// DefaultConfig returns a runnable whole-model setup at resolution ne.
func DefaultConfig(ne int) Config {
	d := dycore.DefaultConfig(ne)
	return Config{Dycore: d, Physics: physics.Moist, PhysEvery: 6, SST: 302, SSTDelta: 30}
}

// Model is the serial whole-model driver.
type Model struct {
	Cfg    Config
	Solver *dycore.Solver
	Suite  *physics.Suite
	State  *dycore.State

	col   *physics.Column
	steps int
	obs   *obs.Probe // nil = unobserved (see Attach in obs.go)

	// Accumulated diagnostics.
	TotalPrecip float64 // global mean accumulated precipitation, kg/m^2
}

// NewModel builds the model and an empty state.
func NewModel(cfg Config) (*Model, error) {
	if cfg.PhysEvery < 1 {
		return nil, fmt.Errorf("core: PhysEvery = %d", cfg.PhysEvery)
	}
	s, err := dycore.NewSolver(cfg.Dycore)
	if err != nil {
		return nil, err
	}
	var suite *physics.Suite
	switch cfg.Physics {
	case physics.Moist:
		if cfg.Dycore.Qsize < 1 {
			return nil, fmt.Errorf("core: moist physics needs at least 1 tracer (qv)")
		}
		suite = physics.NewMoistSuite()
	case physics.HeldSuarezMode:
		suite = physics.NewHeldSuarezSuite()
	default:
		return nil, fmt.Errorf("core: unknown physics mode %d", cfg.Physics)
	}
	m := &Model{
		Cfg:    cfg,
		Solver: s,
		Suite:  suite,
		State:  s.NewState(),
		col:    physics.NewColumn(cfg.Dycore.Nlev),
	}
	return m, nil
}

// stepColumn runs the physics suite on the column at (element ei, node
// n) of the state, using the caller-owned column buffer, and returns
// the accumulated precipitation weighted by the node's quadrature weight.
func (m *Model) stepColumn(col *physics.Column, ei, n int, dt float64) (precipW, area float64) {
	st := m.State
	s := m.Solver
	e := s.Mesh.Elements[ei]
	npsq := s.Cfg.Np * s.Cfg.Np
	nlev := s.Cfg.Nlev

	ps := dycore.PTop
	for k := 0; k < nlev; k++ {
		col.DP[k] = st.DP[ei][k*npsq+n]
		ps += col.DP[k]
	}
	p := dycore.PTop
	for k := 0; k < nlev; k++ {
		i := k*npsq + n
		col.P[k] = p + col.DP[k]/2
		p += col.DP[k]
		col.T[k] = st.T[ei][i]
		col.U[k] = st.U[ei][i]
		col.V[k] = st.V[ei][i]
		col.Qv[k], col.Qc[k], col.Qr[k] = 0, 0, 0
		if s.Cfg.Qsize > 0 {
			col.Qv[k] = st.QdpAt(ei, 0)[i] / col.DP[k]
		}
		if s.Cfg.Qsize > 1 {
			col.Qc[k] = st.QdpAt(ei, 1)[i] / col.DP[k]
		}
		if s.Cfg.Qsize > 2 {
			col.Qr[k] = st.QdpAt(ei, 2)[i] / col.DP[k]
		}
	}
	col.Ps = ps
	col.Lat = e.Lat[n]
	col.Ts = m.SurfaceT(e.Lat[n])
	col.Precip = 0

	m.Suite.Step(col, dt)

	for k := 0; k < nlev; k++ {
		i := k*npsq + n
		st.T[ei][i] = col.T[k]
		st.U[ei][i] = col.U[k]
		st.V[ei][i] = col.V[k]
		if s.Cfg.Qsize > 0 {
			st.QdpAt(ei, 0)[i] = col.Qv[k] * col.DP[k]
		}
		if s.Cfg.Qsize > 1 {
			st.QdpAt(ei, 1)[i] = col.Qc[k] * col.DP[k]
		}
		if s.Cfg.Qsize > 2 {
			st.QdpAt(ei, 2)[i] = col.Qr[k] * col.DP[k]
		}
	}
	return col.Precip * e.SphereMP[n], e.SphereMP[n]
}

// SurfaceT returns the prescribed SST at a latitude.
func (m *Model) SurfaceT(lat float64) float64 {
	c := math.Cos(lat)
	return m.Cfg.SST - m.Cfg.SSTDelta*(1-c*c)
}

// applyPhysics runs the suite over every column of the state, advancing
// it by dtPhys = PhysEvery dynamics steps of simulated time. Columns are
// independent; with PhysWorkers > 1 they run on a goroutine pool (CAM's
// chunk parallelism), with identical results.
func (m *Model) applyPhysics() {
	s := m.Solver
	npsq := s.Cfg.Np * s.Cfg.Np
	dt := s.Cfg.Dt * float64(m.Cfg.PhysEvery)
	ncols := s.Mesh.NElems() * npsq

	workers := m.Cfg.PhysWorkers
	if workers <= 1 {
		var precipSum, areaSum float64
		for c := 0; c < ncols; c++ {
			pw, a := m.stepColumn(m.col, c/npsq, c%npsq, dt)
			precipSum += pw
			areaSum += a
		}
		if areaSum > 0 {
			m.TotalPrecip += precipSum / areaSum
		}
		return
	}

	type partial struct{ precip, area float64 }
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	chunk := (ncols + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > ncols {
			hi = ncols
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			col := physics.NewColumn(s.Cfg.Nlev)
			for c := lo; c < hi; c++ {
				pw, a := m.stepColumn(col, c/npsq, c%npsq, dt)
				parts[w].precip += pw
				parts[w].area += a
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var precipSum, areaSum float64
	for _, p := range parts {
		precipSum += p.precip
		areaSum += p.area
	}
	if areaSum > 0 {
		m.TotalPrecip += precipSum / areaSum
	}
}

// Step advances the model one dynamics step, applying physics every
// PhysEvery steps (the CAM dynamics/physics alternation).
func (m *Model) Step() {
	sp := m.obs.T().Begin(0, "core.dynamics", "model")
	m.Solver.Step(m.State)
	sp.End()
	m.steps++
	if m.steps%m.Cfg.PhysEvery == 0 {
		sp = m.obs.T().Begin(0, "core.physics", "model")
		m.applyPhysics()
		sp.End()
	}
}

// Run advances n steps.
func (m *Model) Run(n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// SimHours returns the simulated time so far in hours.
func (m *Model) SimHours() float64 { return float64(m.steps) * m.Cfg.Dycore.Dt / 3600 }
