// Package core composes the full miniature CAM: the spectral-element
// dycore (internal/dycore), the CAM5-lite physics suite
// (internal/physics), and — for distributed runs — the per-rank
// execution engines (internal/exec) stitched together with the
// boundary-exchange plans (internal/halo) over the message-passing
// runtime (internal/mpirt). This is the layer the paper calls "the
// entire model": dynamics and physics executed in turn each timestep.
package core

import (
	"fmt"

	"swcam/internal/dycore"
	"swcam/internal/obs"
	"swcam/internal/physics"
)

// Config selects the whole-model setup.
type Config struct {
	Dycore  dycore.Config
	Physics physics.SuiteMode
	// PhysEvery applies the physics suite every N dynamics steps
	// (CAM's dtime / dtdyn ratio).
	PhysEvery int
	// SST is the prescribed sea-surface temperature at the equator;
	// the surface cools poleward with cos^2(lat).
	SST      float64
	SSTDelta float64
	// PhysWorkers runs the column-physics loop on a work-stealing pool
	// of N goroutines (CAM parallelizes physics over "chunks" of columns
	// the same way). 0 or 1 means serial; a negative value auto-sizes to
	// the machine (physics.DefaultStealWorkers, downshifted on tiny
	// grids). Results are bit-identical for every value — partials merge
	// in fixed element order.
	PhysWorkers int
}

// physWorkersRequest maps the Config/flag convention (negative = auto,
// 0 or 1 = serial) onto the runner's request convention (<= 0 = auto).
func physWorkersRequest(n int) int {
	switch {
	case n < 0:
		return 0 // auto-size
	case n == 0:
		return 1 // legacy default: serial
	default:
		return n
	}
}

// DefaultConfig returns a runnable whole-model setup at resolution ne.
func DefaultConfig(ne int) Config {
	d := dycore.DefaultConfig(ne)
	return Config{Dycore: d, Physics: physics.Moist, PhysEvery: 6, SST: 302, SSTDelta: 30}
}

// Model is the serial whole-model driver.
type Model struct {
	Cfg    Config
	Solver *dycore.Solver
	Suite  *physics.Suite
	State  *dycore.State

	phys  *physRunner
	steps int
	obs   *obs.Probe // nil = unobserved (see Attach in obs.go)

	// Accumulated diagnostics.
	TotalPrecip float64 // global mean accumulated precipitation, kg/m^2
}

// NewModel builds the model and an empty state.
func NewModel(cfg Config) (*Model, error) {
	if cfg.PhysEvery < 1 {
		return nil, fmt.Errorf("core: PhysEvery = %d", cfg.PhysEvery)
	}
	s, err := dycore.NewSolver(cfg.Dycore)
	if err != nil {
		return nil, err
	}
	var suite *physics.Suite
	switch cfg.Physics {
	case physics.Moist:
		if cfg.Dycore.Qsize < 1 {
			return nil, fmt.Errorf("core: moist physics needs at least 1 tracer (qv)")
		}
		suite = physics.NewMoistSuite()
	case physics.HeldSuarezMode:
		suite = physics.NewHeldSuarezSuite()
	default:
		return nil, fmt.Errorf("core: unknown physics mode %d", cfg.Physics)
	}
	m := &Model{
		Cfg:    cfg,
		Solver: s,
		Suite:  suite,
		State:  s.NewState(),
	}
	m.phys = newPhysRunner(physWorkersRequest(cfg.PhysWorkers), 0,
		s.Mesh.NElems(), s.Cfg.Np*s.Cfg.Np, s.Cfg.Nlev, m.stepColumn)
	return m, nil
}

// SetPhysWorkers rebuilds the physics pool with n workers (negative =
// auto-size to the machine, 0 or 1 = serial). Results are bit-identical
// for every value — only the schedule changes. The optional seed knob on
// the Config is not exposed here; tests that need distinct steal
// schedules use SetPhysPoolForTest.
func (m *Model) SetPhysWorkers(n int) {
	m.setPhysPool(n, m.phys.pool.Seed())
}

// SetPhysPoolForTest rebuilds the physics pool with an explicit worker
// count and victim-scan seed — the determinism sweep's schedule knob.
func (m *Model) SetPhysPoolForTest(n int, seed uint64) { m.setPhysPool(n, seed) }

func (m *Model) setPhysPool(n int, seed uint64) {
	m.Cfg.PhysWorkers = n
	s := m.Solver
	m.phys = newPhysRunner(physWorkersRequest(n), seed,
		s.Mesh.NElems(), s.Cfg.Np*s.Cfg.Np, s.Cfg.Nlev, m.stepColumn)
	if m.obs != nil {
		m.phys.pool.Instrument(m.obs.R())
	}
}

// PhysWorkers reports the resolved physics pool size.
func (m *Model) PhysWorkers() int { return m.phys.workers() }

// PhysStats snapshots the physics pool's cumulative scheduling activity.
func (m *Model) PhysStats() physics.StealStats { return m.phys.pool.Stats() }

// stepColumn runs the physics suite on the column at (element ei, node
// n) of the state, using the caller-owned column buffer, and returns
// the accumulated precipitation weighted by the node's quadrature
// weight. The actual column step is stepOneColumn in physdriver.go,
// shared with the per-rank path of ParallelJob.
func (m *Model) stepColumn(col *physics.Column, ei, n int, dt float64) (precipW, area float64) {
	s := m.Solver
	return stepOneColumn(m.Suite, m.State, s.Mesh.Elements[ei],
		s.Cfg.Np, s.Cfg.Nlev, s.Cfg.Qsize, col, ei, n, dt, m.Cfg.SST, m.Cfg.SSTDelta)
}

// SurfaceT returns the prescribed SST at a latitude.
func (m *Model) SurfaceT(lat float64) float64 {
	return surfaceT(lat, m.Cfg.SST, m.Cfg.SSTDelta)
}

// applyPhysics runs the suite over every column of the state, advancing
// it by dtPhys = PhysEvery dynamics steps of simulated time, on the
// work-stealing element pool. Serial and parallel share one code path
// (a 1-worker pool runs inline), and the per-element partials merge in
// fixed element order, so the state and TotalPrecip are bit-identical
// for every worker count.
func (m *Model) applyPhysics() {
	dt := m.Solver.Cfg.Dt * float64(m.Cfg.PhysEvery)
	precip, area := m.phys.run(dt)
	if area > 0 {
		m.TotalPrecip += precip / area
	}
}

// Step advances the model one dynamics step, applying physics every
// PhysEvery steps (the CAM dynamics/physics alternation).
func (m *Model) Step() {
	sp := m.obs.T().Begin(0, "core.dynamics", "model")
	m.Solver.Step(m.State)
	sp.End()
	m.steps++
	if m.steps%m.Cfg.PhysEvery == 0 {
		sp = m.obs.T().Begin(0, "core.physics", "model")
		m.applyPhysics()
		sp.End()
	}
}

// Run advances n steps.
func (m *Model) Run(n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// SimHours returns the simulated time so far in hours.
func (m *Model) SimHours() float64 { return float64(m.steps) * m.Cfg.Dycore.Dt / 3600 }
