package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"swcam/internal/dycore"
)

// FuzzReadCheckpoint: the checkpoint reader must reject arbitrary bytes
// with an error, never panic or over-allocate.
func FuzzReadCheckpoint(f *testing.F) {
	// Seed with a valid checkpoint and a few corruptions of it.
	st := makeSeedState()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, st, 3); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes() // v2: header + fields + CRC
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated v2 body
	f.Add(valid[:len(valid)-2]) // truncated mid-CRC
	f.Add([]byte("garbage"))
	corrupted := append([]byte(nil), valid...)
	corrupted[4] ^= 0xFF // dims
	f.Add(corrupted)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01 // bit-flipped v2 field data
	f.Add(flipped)
	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-1] ^= 0xFF // bit-flipped stored CRC
	f.Add(badCRC)
	v1 := valid[:len(valid)-4] // strip the CRC trailer...
	v1 = append([]byte(nil), v1...)
	v1[4] = 1 // ...and claim version 1: a legacy file, must parse
	f.Add(v1)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against absurd allocations: the header's dims are
		// validated before field reads, so any panic is a bug.
		got, _, err := ReadCheckpoint(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("nil state with nil error")
		}
	})
}

// FuzzReadHistory: same contract for the history reader.
func FuzzReadHistory(f *testing.F) {
	f.Add([]byte("junk"))
	f.Add(make([]byte, 48))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _, _ = nlonNlatFrames(data)
	})
}

func nlonNlatFrames(data []byte) (int, int, []HistoryFrame, error) {
	return ReadHistory(bytes.NewReader(data))
}

func makeSeedState() *dycore.State {
	st := dycore.NewState(2, 4, 4, 1)
	st.U[0][0] = 1.5
	return st
}

// payloadToBytes flattens a buddy-snapshot float64 payload to wire
// bytes (little-endian words) for the byte-oriented fuzz corpus.
func payloadToBytes(p []float64) []byte {
	out := make([]byte, len(p)*8)
	for i, v := range p {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// payloadFromBytes is the inverse: 8-byte little-endian chunks become
// payload words (a trailing partial chunk is dropped, as a transport
// delivering whole datatype elements would).
func payloadFromBytes(data []byte) []float64 {
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out
}

// buddySnapshotSeeds generates the seed payloads shared by
// FuzzDecodeRankSnapshot and the checked-in corpus: a valid snapshot
// plus the corruptions the localized-recovery rung must survive.
func buddySnapshotSeeds(fatal func(...any)) map[string][]byte {
	enc, err := EncodeRankSnapshot(makeSeedState(), 3)
	if err != nil {
		fatal(err)
	}
	valid := payloadToBytes(enc)

	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-9] ^= 0x01 // flip a checkpoint byte, CRC now stale

	corruptDims := append([]byte(nil), valid...)
	corruptDims[16] ^= 0xFF // NElem's low byte inside the framed header

	badFraming := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(badFraming[0:], 1<<40) // absurd framed length

	// Targeted single-byte flips at each structural offset of the framed
	// checkpoint — the exact damage a flipCheckpoint/flipBuddy fault
	// injects. Byte 0 of the checkpoint sits at offset 8, after the
	// framing length word; the header is Magic(4) Version(4) then five
	// int64 dims, so Step starts at checkpoint offset 40.
	flipMagic := append([]byte(nil), valid...)
	flipMagic[8] ^= 0x01
	flipVersion := append([]byte(nil), valid...)
	flipVersion[12] ^= 0x04 // version 2 -> 6: unsupported, must be rejected
	flipStep := append([]byte(nil), valid...)
	flipStep[8+40] ^= 0x02 // step is header metadata outside the CRC
	flipPayload := append([]byte(nil), valid...)
	flipPayload[8+48+(len(valid)-8-48-4)/2] ^= 0x80 // sign bit mid-field
	n := binary.LittleEndian.Uint64(valid[0:8])     // framed checkpoint byte length
	flipCRC := append([]byte(nil), valid...)
	flipCRC[8+int(n)-1] ^= 0x01 // last byte of the CRC trailer itself

	return map[string][]byte{
		"seed-valid":        valid,
		"seed-truncated":    valid[:len(valid)/2],
		"seed-length-only":  valid[:8],
		"seed-garbage":      []byte("garbage buddy payload"),
		"seed-bad-crc":      badCRC,
		"seed-corrupt-dims": corruptDims,
		"seed-bad-framing":  badFraming,
		"seed-flip-magic":   flipMagic,
		"seed-flip-version": flipVersion,
		"seed-flip-step":    flipStep,
		"seed-flip-payload": flipPayload,
		"seed-flip-crc":     flipCRC,
	}
}

// FuzzDecodeRankSnapshot: the buddy-snapshot wire decoder is the
// untrusted surface of localized recovery (the payload survived in a
// peer's memory across a failure). It must reject arbitrary payloads
// with an error wrapping ErrBuddySnapshot — never panic, never
// over-allocate, never return a state it cannot vouch for.
func FuzzDecodeRankSnapshot(f *testing.F) {
	for _, seed := range buddySnapshotSeeds(f.Fatal) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, _, err := DecodeRankSnapshot(payloadFromBytes(data))
		if err == nil && st == nil {
			t.Fatal("nil state with nil error")
		}
		if err != nil && !errors.Is(err, ErrBuddySnapshot) {
			t.Fatalf("decode failure not classified as ErrBuddySnapshot: %v", err)
		}
	})
}
