package core

import (
	"bytes"
	"testing"

	"swcam/internal/dycore"
)

// FuzzReadCheckpoint: the checkpoint reader must reject arbitrary bytes
// with an error, never panic or over-allocate.
func FuzzReadCheckpoint(f *testing.F) {
	// Seed with a valid checkpoint and a few corruptions of it.
	st := makeSeedState()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, st, 3); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes() // v2: header + fields + CRC
	f.Add(valid)
	f.Add(valid[:len(valid)/2])     // truncated v2 body
	f.Add(valid[:len(valid)-2])     // truncated mid-CRC
	f.Add([]byte("garbage"))
	corrupted := append([]byte(nil), valid...)
	corrupted[4] ^= 0xFF // dims
	f.Add(corrupted)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01 // bit-flipped v2 field data
	f.Add(flipped)
	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-1] ^= 0xFF // bit-flipped stored CRC
	f.Add(badCRC)
	v1 := valid[:len(valid)-4] // strip the CRC trailer...
	v1 = append([]byte(nil), v1...)
	v1[4] = 1 // ...and claim version 1: a legacy file, must parse
	f.Add(v1)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against absurd allocations: the header's dims are
		// validated before field reads, so any panic is a bug.
		got, _, err := ReadCheckpoint(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("nil state with nil error")
		}
	})
}

// FuzzReadHistory: same contract for the history reader.
func FuzzReadHistory(f *testing.F) {
	f.Add([]byte("junk"))
	f.Add(make([]byte, 48))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _, _ = nlonNlatFrames(data)
	})
}

func nlonNlatFrames(data []byte) (int, int, []HistoryFrame, error) {
	return ReadHistory(bytes.NewReader(data))
}

func makeSeedState() *dycore.State {
	st := dycore.NewState(2, 4, 4, 1)
	st.U[0][0] = 1.5
	return st
}
