package core

import (
	"swcam/internal/exec"
	"swcam/internal/obs"
)

// Attach wires the observability probe into the serial whole-model
// driver: dynamics and physics phases get spans (pid 0 — the serial
// model is one rank) and the physics suite feeds the registry. A nil
// probe detaches everything.
func (m *Model) Attach(p *obs.Probe) {
	m.obs = p
	m.Suite.Instrument(p.R())
	m.phys.pool.Instrument(p.R())
}

// Instrument wires the probe into every rank of the distributed driver:
// each rank's engine records kernel spans and per-kernel attribution,
// each rank's exchange plan records halo spans and counters, the
// message runtime traces collectives, and the step loop itself gets
// per-rank spans. A nil probe detaches everything.
func (j *ParallelJob) Instrument(p *obs.Probe) {
	j.Obs = p
	for r := range j.engs {
		j.engs[r].Instrument(p.T(), p.K(), p.R(), r)
		j.Plans[r].Instrument(p.T(), p.R())
	}
	// Physics pools and suites share counter names across ranks (all
	// sinks are atomic), so physics.steals etc. aggregate the whole job.
	for _, rp := range j.rankPhys {
		rp.suite.Instrument(p.R())
		rp.runner.pool.Instrument(p.R())
	}
}

// observe mirrors one recovery decision into the unified registry and
// trace (instant events on the supervisor's timeline, pid 0). It runs
// on every event, before any user OnEvent callback; with no probe on
// the underlying job it is inert.
func (rj *ResilientJob) observe(e RecoveryEvent) {
	reg := rj.Job.Obs.R()
	switch e.Kind {
	case "checkpoint":
		reg.Counter("core.recovery.checkpoints").Add(1)
	case "rollback":
		reg.Counter("core.recovery.rollbacks").Add(1)
	case "giveup":
		reg.Counter("core.recovery.giveups").Add(1)
	case "localized":
		reg.Counter("core.recovery.localized").Add(1)
	case "respawn":
		reg.Counter("core.recovery.respawns").Add(1)
	case "shrink":
		reg.Counter("core.recovery.shrinks").Add(1)
	case "poisoned":
		reg.Counter("core.recovery.poisoned").Add(1)
	}
	rj.Job.Obs.T().Instant(0, "core."+e.Kind, "model")
}

// recordCost folds one run's aggregated kernel cost into the unified
// registry — the exec/sw counter unification: DMA traffic, LDM
// high-water mark, and register-communication volume all originate in
// sw.PerfCounter and arrive here via exec.Cost.
func recordCost(reg *obs.Registry, c exec.Cost) {
	if reg == nil {
		return
	}
	reg.Counter("exec.flops.scalar").Add(c.FlopsScalar)
	reg.Counter("exec.flops.vector").Add(c.FlopsVector)
	reg.Counter("exec.mem.bytes").Add(c.MemBytes)
	reg.Counter("exec.dma.ops").Add(c.DMAOps)
	reg.Counter("exec.reg.msgs").Add(c.RegMsgs)
	reg.Counter("exec.launches").Add(c.Launches)
	reg.Gauge("exec.ldm.peak").Set(float64(c.LDMPeak))
}
