package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"swcam/internal/dycore"
)

// StateFNV folds the raw IEEE-754 bit patterns of every prognostic
// field of st (canonical Fields() order, little-endian) into an FNV-64a
// hash — the bit-exactness fingerprint the differential tests and the
// profiler's recovery-identity assertion compare trajectories with. Two
// states hash equal iff they are bit-identical.
func StateFNV(st *dycore.State) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, f := range st.Fields() {
		for e := range f.Data {
			for _, v := range f.Data[e] {
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
				h.Write(b[:])
			}
		}
	}
	return h.Sum64()
}
