package core

import (
	"fmt"
	"math"

	"swcam/internal/dycore"
	"swcam/internal/integrity"
	"swcam/internal/mpirt"
)

// The multi-generation verified checkpoint store. ResilientJob retains
// up to Generations checkpoint generations in a newest-first ring; a
// restore re-verifies its target — every rank's own copy against its
// CRC-32C seal, buddy replicas by full decode — before a single bit is
// copied back, heals a rotten own copy from the buddy's replica when
// that replica still verifies, and escalates to the next-older
// generation when a generation has no usable copy of some rank. A
// generation leaving service (evicted past the retention cap, dropped
// as poisoned, or surviving to end of run) is audited once, so every
// injected checkpoint-copy flip produces at least one detection even
// when no restore ever consulted it.

// ckptGeneration is one retained checkpoint generation.
type ckptGeneration struct {
	step    int
	precip  float64               // TotalPrecip at capture (rewound with the step counter)
	own     []*dycore.State       // per-rank own snapshots ("node-local memory")
	seals   []*integrity.RankSeal // per-rank seals over own; entries nil when scrubbing is off
	buddy   [][]float64           // buddy[r] = encoded copy of rank r held by rank (r+1)%n; nil in global mode
	audited bool                  // end-of-life audit already ran
}

// genCap returns the retention cap with its default of one generation
// (the historical single-checkpoint behavior).
func (rj *ResilientJob) genCap() int {
	if rj.Generations < 1 {
		return 1
	}
	return rj.Generations
}

// checkpointStep is the step of the active restore target, falling back
// to the disk checkpoint's when the ring is empty (diagnostics).
func (rj *ResilientJob) checkpointStep() int {
	if len(rj.gens) > 0 {
		return rj.gens[0].step
	}
	return rj.diskStep
}

// pushGeneration prepends g as the newest restore target, evicting —
// and audit-verifying — generations beyond the retention cap.
func (rj *ResilientJob) pushGeneration(rs *ResilientStats, g *ckptGeneration) {
	rj.gens = append([]*ckptGeneration{g}, rj.gens...)
	for len(rj.gens) > rj.genCap() {
		old := rj.gens[len(rj.gens)-1]
		rj.gens = rj.gens[:len(rj.gens)-1]
		rj.auditGeneration(rs, old)
	}
}

// markPoisoned records one verified-bad checkpoint copy: a detection.
func (rj *ResilientJob) markPoisoned(rs *ResilientStats, g *ckptGeneration, rank int, err error) {
	rs.Poisoned++
	rj.Job.Obs.R().Counter("integrity.gen.poisoned").Add(1)
	ev := RecoveryEvent{Kind: "poisoned", Step: g.step, Rank: rank, Err: err}
	rs.Events = append(rs.Events, ev)
	rj.event(ev)
}

// decodeBuddyCopy decodes and shape-checks generation g's buddy replica
// of rank r (local memory — the wire-shipping variant for a dead rank
// is fetchBuddy).
func (rj *ResilientJob) decodeBuddyCopy(g *ckptGeneration, r int) (*dycore.State, error) {
	if g.buddy == nil || g.buddy[r] == nil {
		return nil, fmt.Errorf("%w: no buddy copy of rank %d", ErrBuddySnapshot, r)
	}
	st, step, err := DecodeRankSnapshot(g.buddy[r])
	if err != nil {
		return nil, err
	}
	if step != g.step {
		return nil, fmt.Errorf("%w: buddy copy of rank %d at step %d, want %d", ErrBuddySnapshot, r, step, g.step)
	}
	if st.NElem() != rj.local[r].NElem() {
		return nil, fmt.Errorf("%w: buddy copy of rank %d has %d elements, want %d",
			ErrBuddySnapshot, r, st.NElem(), rj.local[r].NElem())
	}
	return st, nil
}

// verifyGeneration re-verifies every rank's copy of g before a restore
// consumes it. A rank whose own copy fails its seal is healed from the
// buddy replica when that replica decodes clean; a rank with no usable
// copy at all poisons the generation — the returned error (wrapping
// integrity.ErrCorrupt) tells the caller to escalate to an older one.
// On nil return every g.own entry verifies and can restore the world.
func (rj *ResilientJob) verifyGeneration(rs *ResilientStats, g *ckptGeneration) error {
	reg := rj.Job.Obs.R()
	for r := range g.own {
		reg.Counter("integrity.gen.verifies").Add(1)
		if g.own[r] != nil {
			if g.seals[r] == nil {
				continue // unsealed (scrubbing off): accepted as-is
			}
			err := g.seals[r].Verify(g.own[r])
			if err == nil {
				continue
			}
			rj.markPoisoned(rs, g, r, fmt.Errorf("own checkpoint copy: %w", err))
			g.own[r] = nil // never restore from it again
		}
		// Own copy gone or rotten: the buddy replica is the last copy.
		healed, err := rj.decodeBuddyCopy(g, r)
		if err != nil {
			if g.buddy != nil && g.buddy[r] != nil {
				rj.markPoisoned(rs, g, r, fmt.Errorf("buddy checkpoint copy: %w", err))
				g.buddy[r] = nil
			}
			return fmt.Errorf("%w: generation at step %d has no usable copy of rank %d: %w",
				integrity.ErrCorrupt, g.step, r, err)
		}
		g.own[r] = healed
		if g.seals[r] != nil {
			g.seals[r] = integrity.SealState(healed, g.step)
		}
		reg.Counter("integrity.gen.heals").Add(1)
	}
	return nil
}

// auditGeneration verifies every remaining copy of a generation leaving
// service — no healing, just counting: a flipped copy that no restore
// happened to consult must still register as a detection, never as a
// silent success. Idempotent per generation.
func (rj *ResilientJob) auditGeneration(rs *ResilientStats, g *ckptGeneration) {
	if g.audited {
		return
	}
	g.audited = true
	reg := rj.Job.Obs.R()
	for r := range g.own {
		reg.Counter("integrity.gen.audits").Add(1)
		if g.own[r] != nil && g.seals[r] != nil {
			if err := g.seals[r].Verify(g.own[r]); err != nil {
				rj.markPoisoned(rs, g, r, fmt.Errorf("own checkpoint copy: %w", err))
				g.own[r] = nil
			}
		}
		if g.buddy != nil && g.buddy[r] != nil {
			if _, step, err := DecodeRankSnapshot(g.buddy[r]); err != nil || step != g.step {
				if err == nil {
					err = fmt.Errorf("%w: buddy copy at step %d, want %d", ErrBuddySnapshot, step, g.step)
				}
				rj.markPoisoned(rs, g, r, fmt.Errorf("buddy checkpoint copy: %w", err))
				g.buddy[r] = nil
			}
		}
	}
}

// auditAllGenerations audits every retained generation (end of run,
// give-up, or a partition change invalidating the ring).
func (rj *ResilientJob) auditAllGenerations(rs *ResilientStats) {
	for _, g := range rj.gens {
		rj.auditGeneration(rs, g)
	}
}

// faultKey derives the deterministic bit-choice key of an injected flip
// from the fault's schedule coordinates, so a given fault spec always
// corrupts the same location.
func faultKey(f *mpirt.Fault) int64 {
	return f.AfterOp*1000003 + int64(f.Rank)*7919 + int64(f.Kind)
}

// flipStateBit flips one mantissa bit of one prognostic value of st,
// chosen deterministically from key — the silent-corruption model: the
// value stays finite and physically plausible, invisible to the blowup
// watchdog and to every message CRC. Returns a description of the
// flipped location.
func flipStateBit(st *dycore.State, key int64) string {
	k := uint64(key)
	var fields []dycore.NamedField
	for _, f := range st.Fields() {
		if len(f.Data) > 0 && len(f.Data[0]) > 0 { // Qdp is empty at qsize 0
			fields = append(fields, f)
		}
	}
	f := fields[k%uint64(len(fields))]
	e := int((k / 7) % uint64(len(f.Data)))
	vals := f.Data[e]
	i := int((k / 11) % uint64(len(vals)))
	bit := uint((k / 13) % 52)
	vals[i] = math.Float64frombits(math.Float64bits(vals[i]) ^ (1 << bit))
	return fmt.Sprintf("%s[%d][%d] bit %d", f.Name, e, i, bit)
}

// flipPayloadWord flips the low bit of one data byte of an encoded
// snapshot payload, past the framing word. Word i carries checkpoint
// bytes (i-1)*8..(i-1)*8+7, and a word exists only when its first byte
// is real data — so the flip always lands inside the CRC-covered bytes
// (or the CRC trailer itself) and a full decode must reject it.
func flipPayloadWord(p []float64, key int64) {
	if len(p) < 2 {
		return
	}
	i := 1 + int(uint64(key)%uint64(len(p)-1))
	p[i] = math.Float64frombits(math.Float64bits(p[i]) ^ 1)
}
