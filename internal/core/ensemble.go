package core

import (
	"math/rand"

	"swcam/internal/dycore"
)

// Ensemble initial-condition perturbation. Operational ensemble
// forecasting runs N copies of the model from slightly different
// analyses; the spread of the members brackets the forecast
// uncertainty. The miniature version: a seeded, deterministic
// temperature perturbation on top of a shared base state, so member i
// is exactly reproducible from (base IC, seed) — the property the
// serving layer's bit-identity chaos tests lean on: a member restarted
// from a snapshot must rejoin the very trajectory its seed defines.

// PerturbInitial applies a deterministic temperature perturbation of
// amplitude amp (K) drawn from the given seed to every node of st.
// amp <= 0 is a no-op (the unperturbed control member). The same
// (seed, amp, state shape) always produces the same perturbation.
func PerturbInitial(st *dycore.State, seed int64, amp float64) {
	if amp <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	for ei := range st.T {
		row := st.T[ei]
		for i := range row {
			row[i] += amp * (2*rng.Float64() - 1)
		}
	}
}
