package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"

	"swcam/internal/dycore"
)

// Checkpoint I/O: the paper's performance numbers are for the "whole
// application with I/O", and any production model needs restart files.
// The format is a fixed little-endian header plus the raw field arrays,
// exactly restorable (bit-for-bit restart, the climate-model
// requirement).
//
// Version history:
//   - v1: header + fields.
//   - v2: header + fields + CRC32-C of all field bytes, so a truncated
//     or bit-flipped restart file is rejected instead of silently
//     seeding a run with corrupt initial conditions. v1 files are still
//     readable (no payload verification possible).
//
// SaveCheckpoint additionally fsyncs before the atomic rename: a crash
// between rename and writeback must not leave a valid-looking name on
// top of unwritten data.

const (
	checkpointMagic   = 0x53574341 // "SWCA"
	checkpointVersion = 2
)

// ErrChecksum reports a v2 checkpoint whose payload does not match its
// stored CRC (torn write, bit rot, truncated-then-padded file).
var ErrChecksum = errors.New("core: checkpoint payload checksum mismatch")

var checkpointCRCTable = crc32.MakeTable(crc32.Castagnoli)

type checkpointHeader struct {
	Magic   uint32
	Version uint32
	NElem   int64
	Np      int64
	Nlev    int64
	Qsize   int64
	Step    int64
}

func stateFields(st *dycore.State) [][][]float64 {
	return [][][]float64{st.U, st.V, st.T, st.DP, st.Qdp, st.Phis}
}

// WriteCheckpoint serializes a state (and the step counter) to w in the
// current (v2, CRC-trailed) format.
func WriteCheckpoint(w io.Writer, st *dycore.State, step int) error {
	bw := bufio.NewWriter(w)
	h := checkpointHeader{
		Magic: checkpointMagic, Version: checkpointVersion,
		NElem: int64(st.NElem()), Np: int64(st.Np),
		Nlev: int64(st.Nlev), Qsize: int64(st.Qsize), Step: int64(step),
	}
	if err := binary.Write(bw, binary.LittleEndian, &h); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	crc := crc32.New(checkpointCRCTable)
	body := io.MultiWriter(bw, crc)
	for _, field := range stateFields(st) {
		for _, e := range field {
			if err := binary.Write(body, binary.LittleEndian, e); err != nil {
				return fmt.Errorf("core: checkpoint field: %w", err)
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("core: checkpoint crc: %w", err)
	}
	return bw.Flush()
}

// ReadCheckpoint restores a state written by WriteCheckpoint (v2) or by
// the v1 writer of earlier releases; the returned step lets the caller
// resume the remap cadence. A v2 payload that fails its CRC is rejected
// with ErrChecksum.
func ReadCheckpoint(r io.Reader) (*dycore.State, int, error) {
	br := bufio.NewReader(r)
	var h checkpointHeader
	if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
		return nil, 0, fmt.Errorf("core: checkpoint header: %w", err)
	}
	if h.Magic != checkpointMagic {
		return nil, 0, fmt.Errorf("core: not a checkpoint (magic %#x)", h.Magic)
	}
	if h.Version < 1 || h.Version > checkpointVersion {
		return nil, 0, fmt.Errorf("core: checkpoint version %d unsupported", h.Version)
	}
	// Bound every dimension before allocating: a corrupt or hostile
	// header must produce an error, not an enormous allocation. The caps
	// cover any run this library can actually perform (ne4096 worth of
	// elements on one rank would not fit in memory anyway).
	if h.NElem <= 0 || h.NElem > 1<<26 ||
		h.Np < 2 || h.Np > 64 ||
		h.Nlev < 1 || h.Nlev > 4096 ||
		h.Qsize < 0 || h.Qsize > 4096 {
		return nil, 0, fmt.Errorf("core: corrupt checkpoint dims %+v", h)
	}
	if vals := h.NElem * h.Np * h.Np * h.Nlev * (5 + h.Qsize); vals > 1<<28 {
		return nil, 0, fmt.Errorf("core: checkpoint too large (%d values)", vals)
	}
	st := dycore.NewState(int(h.NElem), int(h.Np), int(h.Nlev), int(h.Qsize))
	var crc hash.Hash32
	var body io.Reader = br
	if h.Version >= 2 {
		crc = crc32.New(checkpointCRCTable)
		body = io.TeeReader(br, crc)
	}
	for _, field := range stateFields(st) {
		for _, e := range field {
			if err := binary.Read(body, binary.LittleEndian, e); err != nil {
				return nil, 0, fmt.Errorf("core: checkpoint field: %w", err)
			}
		}
	}
	if crc != nil {
		var want uint32
		if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
			return nil, 0, fmt.Errorf("core: checkpoint crc: %w", err)
		}
		if got := crc.Sum32(); got != want {
			return nil, 0, fmt.Errorf("%w: stored %#x, computed %#x", ErrChecksum, want, got)
		}
	}
	return st, int(h.Step), nil
}

// EncodeStateBytes serializes a state (plus its step) into a v2
// checkpoint byte payload — fixed header, raw fields, CRC32-C trailer.
// This is the in-memory flavour of WriteCheckpoint, shared by the buddy
// replication wire format and the serving layer's snapshot store.
func EncodeStateBytes(st *dycore.State, step int) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, st, step); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeStateBytes restores a state from EncodeStateBytes output,
// verifying framing, dimensions, and the payload CRC. Arbitrary input
// yields an error, never a panic (the byte format is the fuzzed
// checkpoint format).
func DecodeStateBytes(b []byte) (*dycore.State, int, error) {
	return ReadCheckpoint(bytes.NewReader(b))
}

// SaveCheckpoint writes the state to a file, durably: the temp file is
// fsynced before the atomic rename so a crash leaves either the old
// complete file or the new complete file, never a torn one.
func SaveCheckpoint(path string, st *dycore.State, step int) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteCheckpoint(f, st, step); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads a state from a file.
func LoadCheckpoint(path string) (*dycore.State, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}
