package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"swcam/internal/dycore"
)

// Checkpoint I/O: the paper's performance numbers are for the "whole
// application with I/O", and any production model needs restart files.
// The format is a fixed little-endian header plus the raw field arrays,
// exactly restorable (bit-for-bit restart, the climate-model
// requirement).

const (
	checkpointMagic   = 0x53574341 // "SWCA"
	checkpointVersion = 1
)

type checkpointHeader struct {
	Magic   uint32
	Version uint32
	NElem   int64
	Np      int64
	Nlev    int64
	Qsize   int64
	Step    int64
}

// WriteCheckpoint serializes a state (and the step counter) to w.
func WriteCheckpoint(w io.Writer, st *dycore.State, step int) error {
	bw := bufio.NewWriter(w)
	h := checkpointHeader{
		Magic: checkpointMagic, Version: checkpointVersion,
		NElem: int64(st.NElem()), Np: int64(st.Np),
		Nlev: int64(st.Nlev), Qsize: int64(st.Qsize), Step: int64(step),
	}
	if err := binary.Write(bw, binary.LittleEndian, &h); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	for _, field := range [][][]float64{st.U, st.V, st.T, st.DP, st.Qdp, st.Phis} {
		for _, e := range field {
			if err := binary.Write(bw, binary.LittleEndian, e); err != nil {
				return fmt.Errorf("core: checkpoint field: %w", err)
			}
		}
	}
	return bw.Flush()
}

// ReadCheckpoint restores a state written by WriteCheckpoint; the
// returned step lets the caller resume the remap cadence.
func ReadCheckpoint(r io.Reader) (*dycore.State, int, error) {
	br := bufio.NewReader(r)
	var h checkpointHeader
	if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
		return nil, 0, fmt.Errorf("core: checkpoint header: %w", err)
	}
	if h.Magic != checkpointMagic {
		return nil, 0, fmt.Errorf("core: not a checkpoint (magic %#x)", h.Magic)
	}
	if h.Version != checkpointVersion {
		return nil, 0, fmt.Errorf("core: checkpoint version %d unsupported", h.Version)
	}
	// Bound every dimension before allocating: a corrupt or hostile
	// header must produce an error, not an enormous allocation. The caps
	// cover any run this library can actually perform (ne4096 worth of
	// elements on one rank would not fit in memory anyway).
	if h.NElem <= 0 || h.NElem > 1<<26 ||
		h.Np < 2 || h.Np > 64 ||
		h.Nlev < 1 || h.Nlev > 4096 ||
		h.Qsize < 0 || h.Qsize > 4096 {
		return nil, 0, fmt.Errorf("core: corrupt checkpoint dims %+v", h)
	}
	if vals := h.NElem * h.Np * h.Np * h.Nlev * (5 + h.Qsize); vals > 1<<28 {
		return nil, 0, fmt.Errorf("core: checkpoint too large (%d values)", vals)
	}
	st := dycore.NewState(int(h.NElem), int(h.Np), int(h.Nlev), int(h.Qsize))
	for _, field := range [][][]float64{st.U, st.V, st.T, st.DP, st.Qdp, st.Phis} {
		for _, e := range field {
			if err := binary.Read(br, binary.LittleEndian, e); err != nil {
				return nil, 0, fmt.Errorf("core: checkpoint field: %w", err)
			}
		}
	}
	return st, int(h.Step), nil
}

// SaveCheckpoint writes the state to a file (atomic via rename).
func SaveCheckpoint(path string, st *dycore.State, step int) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteCheckpoint(f, st, step); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads a state from a file.
func LoadCheckpoint(path string) (*dycore.State, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}
