// The distributed physics phase: every rank runs the column suite over
// its local elements on a work-stealing pool (physdriver.go), then the
// global precipitation diagnostic is reduced canonically — per-element
// partials gathered to rank 0 by global element id and summed in
// ascending order, exactly like the mass fixer's canonicalMass — so the
// result is partition-invariant AND bit-identical to the serial Model
// for every rank count, worker count, and steal schedule.
package core

import (
	"fmt"

	"swcam/internal/dycore"
	"swcam/internal/mpirt"
	"swcam/internal/physics"
)

// tagPhys is the point-to-point tag of the canonical precipitation
// reduction (next to tagMass, outside the halo and collective ranges).
const tagPhys = 203

// jobPhysics is the opt-in physics configuration of a ParallelJob.
type jobPhysics struct {
	mode       physics.SuiteMode
	every      int     // apply the suite every N dynamics steps
	sst        float64 // equatorial SST of the prescribed surface
	sstDelta   float64 // pole-equator SST contrast
	workersReq int     // requested pool size (Config convention)
	seed       uint64  // victim-scan seed, rotated by tests
}

// rankPhys is one rank's physics machinery: its own suite (atomic
// counters — safe under the pool), its runner, and the pooled buffers
// of the canonical reduction. st points at the rank's state only for
// the duration of one applyPhysicsRank call.
type rankPhys struct {
	suite  *physics.Suite
	runner *physRunner
	st     *dycore.State

	send []float64 // flattened (precip, area) per local element
	out  []float64 // 1-slot Bcast buffer for the reduced increment

	// Rank 0 only: the gather workspace of the canonical reduction.
	global []float64
	recv   [][]float64
}

// EnablePhysics turns on the column-physics phase: the suite runs every
// `every` dynamics steps on each rank's local columns, with the surface
// prescribed as SST(lat) = sst - sstDelta*(1-cos^2 lat). Must be called
// after construction and before Run; the worker pool defaults to serial
// until SetPhysWorkers. The trajectory matches the serial Model with
// the same Config bit-for-bit.
func (j *ParallelJob) EnablePhysics(mode physics.SuiteMode, every int, sst, sstDelta float64) error {
	if every < 1 {
		return fmt.Errorf("core: EnablePhysics every = %d", every)
	}
	switch mode {
	case physics.Moist:
		if j.Cfg.Qsize < 1 {
			return fmt.Errorf("core: moist physics needs at least 1 tracer (qv)")
		}
	case physics.HeldSuarezMode:
	default:
		return fmt.Errorf("core: unknown physics mode %d", mode)
	}
	j.phys = &jobPhysics{mode: mode, every: every, sst: sst, sstDelta: sstDelta}
	j.buildRankPhys()
	return nil
}

// SetPhysWorkers sizes every rank's physics pool (negative = auto-size
// to the machine, 0 or 1 = serial — the Config.PhysWorkers convention).
// Results are bit-identical for every value. No-op before EnablePhysics.
func (j *ParallelJob) SetPhysWorkers(n int) {
	if j.phys == nil {
		return
	}
	j.phys.workersReq = n
	j.buildRankPhys()
}

// SetPhysPoolForTest rebuilds the physics pools with an explicit worker
// count and victim-scan seed — the determinism sweep's schedule knob.
func (j *ParallelJob) SetPhysPoolForTest(n int, seed uint64) {
	if j.phys == nil {
		return
	}
	j.phys.workersReq = n
	j.phys.seed = seed
	j.buildRankPhys()
}

// PhysWorkers reports the resolved per-rank physics pool size (0 when
// physics is off).
func (j *ParallelJob) PhysWorkers() int {
	if j.phys == nil || len(j.rankPhys) == 0 {
		return 0
	}
	return j.rankPhys[0].runner.workers()
}

// PhysStats sums the physics pools' cumulative scheduling activity over
// all ranks (per-worker slices are aligned by worker index).
func (j *ParallelJob) PhysStats() physics.StealStats {
	var tot physics.StealStats
	for _, rp := range j.rankPhys {
		s := rp.runner.pool.Stats()
		tot.Runs += s.Runs
		tot.Chunks += s.Chunks
		tot.Steals += s.Steals
		tot.StealAttempts += s.StealAttempts
		if tot.WorkerChunks == nil {
			tot.WorkerChunks = make([]int64, len(s.WorkerChunks))
			tot.WorkerBusyNs = make([]int64, len(s.WorkerBusyNs))
		}
		for w := range s.WorkerChunks {
			tot.WorkerChunks[w] += s.WorkerChunks[w]
			tot.WorkerBusyNs[w] += s.WorkerBusyNs[w]
		}
	}
	return tot
}

// buildRankPhys (re)builds the per-rank suites, runners, and reduction
// buffers for the current partition. Called by EnablePhysics,
// SetPhysWorkers, and Shrink; Instrument re-wires observability after.
func (j *ParallelJob) buildRankPhys() {
	pc := j.phys
	if pc == nil {
		return
	}
	np, nlev, qsize := j.Cfg.Np, j.Cfg.Nlev, j.Cfg.Qsize
	npsq := np * np
	j.rankPhys = make([]*rankPhys, j.NRanks)
	for r := 0; r < j.NRanks; r++ {
		r := r
		rp := &rankPhys{}
		switch pc.mode {
		case physics.Moist:
			rp.suite = physics.NewMoistSuite()
		case physics.HeldSuarezMode:
			rp.suite = physics.NewHeldSuarezSuite()
		}
		elems := j.Plans[r].Elems
		rp.runner = newPhysRunner(physWorkersRequest(pc.workersReq), pc.seed,
			len(elems), npsq, nlev,
			func(col *physics.Column, le, n int, dt float64) (float64, float64) {
				return stepOneColumn(rp.suite, rp.st, j.Mesh.Elements[elems[le]],
					np, nlev, qsize, col, le, n, dt, pc.sst, pc.sstDelta)
			})
		if j.PhysPanicHook != nil {
			rp.runner.hook = func(w, le int) { j.PhysPanicHook(r, w, le) }
		}
		rp.send = make([]float64, 2*len(elems))
		rp.out = make([]float64, 1)
		j.rankPhys[r] = rp
	}
	rp0 := j.rankPhys[0]
	rp0.global = make([]float64, 2*j.Mesh.NElems())
	rp0.recv = make([][]float64, j.NRanks)
	for src := 1; src < j.NRanks; src++ {
		rp0.recv[src] = make([]float64, 2*len(j.Plans[src].Elems))
	}
}

// applyPhysicsRank runs one physics step on rank r's columns and folds
// the canonical global-mean precipitation increment into TotalPrecip
// (written by rank 0 only — the field is read after the world joins).
func (j *ParallelJob) applyPhysicsRank(c *mpirt.Comm, r int, st *dycore.State) {
	rp := j.rankPhys[r]
	rp.st = st
	dt := j.Cfg.Dt * float64(j.phys.every)
	rp.runner.run(dt)
	rp.st = nil
	inc := j.canonicalPrecip(c, r)
	if r == 0 {
		j.TotalPrecip += inc
	}
}

// canonicalPrecip reduces the per-element (precip, area) partials to
// the global area-weighted mean increment with a partition-invariant
// grouping: gather by global element id to rank 0, sum ascending,
// broadcast. The ascending-id sum is the exact association the serial
// Model uses, so serial and every partition agree bit-for-bit (compare
// canonicalMass, which earned the same property for the mass fixer).
func (j *ParallelJob) canonicalPrecip(c *mpirt.Comm, r int) float64 {
	rp := j.rankPhys[r]
	parts := rp.runner.parts
	for i := range parts {
		rp.send[2*i] = parts[i].precip
		rp.send[2*i+1] = parts[i].area
	}
	if r == 0 {
		g := rp.global
		for le, ge := range j.Plans[0].Elems {
			g[2*ge], g[2*ge+1] = rp.send[2*le], rp.send[2*le+1]
		}
		for src := 1; src < j.NRanks; src++ {
			buf := rp.recv[src]
			c.Recv(src, tagPhys, buf)
			for le, ge := range j.Plans[src].Elems {
				g[2*ge], g[2*ge+1] = buf[2*le], buf[2*le+1]
			}
		}
		var ps, as float64
		for ge := 0; ge < j.Mesh.NElems(); ge++ {
			ps += g[2*ge]
			as += g[2*ge+1]
		}
		rp.out[0] = 0
		if as > 0 {
			rp.out[0] = ps / as
		}
	} else {
		c.Send(0, tagPhys, rp.send)
	}
	c.Bcast(0, rp.out)
	return rp.out[0]
}
