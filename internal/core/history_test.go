package core

import (
	"bytes"
	"math"
	"testing"

	"swcam/internal/mesh"
	"swcam/internal/physics"
)

func TestSamplerCoversGrid(t *testing.T) {
	m := mesh.New(3, 4)
	s := NewSampler(m, 24, 12)
	for g := 0; g < 24*12; g++ {
		if s.elem[g] < 0 || int(s.elem[g]) >= m.NElems() {
			t.Fatalf("point %d mapped to element %d", g, s.elem[g])
		}
		if s.node[g] < 0 || s.node[g] >= 16 {
			t.Fatalf("point %d mapped to node %d", g, s.node[g])
		}
	}
}

func TestSamplerNearestIsClose(t *testing.T) {
	// The chosen node must be within one element diagonal of the target.
	m := mesh.New(4, 4)
	s := NewSampler(m, 36, 18)
	for j := 0; j < 18; j++ {
		lat := -math.Pi/2 + (float64(j)+0.5)*math.Pi/18
		for i := 0; i < 36; i++ {
			lon := (float64(i) + 0.5) * 2 * math.Pi / 36
			p := mesh.Vec3{math.Cos(lat) * math.Cos(lon), math.Cos(lat) * math.Sin(lon), math.Sin(lat)}
			g := j*36 + i
			e := m.Elements[s.elem[g]]
			d := mesh.GreatCircleDist(p, e.Pos[s.node[g]])
			if d > 2*e.DAlpha {
				t.Fatalf("point (%d,%d): nearest node %g rad away (element width %g)",
					i, j, d, e.DAlpha)
			}
		}
	}
}

func TestSamplerConstantField(t *testing.T) {
	m := mesh.New(2, 4)
	s := NewSampler(m, 16, 8)
	field := make([][]float64, m.NElems())
	for i := range field {
		field[i] = make([]float64, 3*16)
		for k := range field[i] {
			field[i][k] = 7.25
		}
	}
	out := make([]float64, 16*8)
	s.Sample(field, 1, 16, out)
	for _, v := range out {
		if v != 7.25 {
			t.Fatalf("constant field sampled as %v", v)
		}
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Dycore.Nlev = 8
	cfg.Dycore.Qsize = 1
	cfg.Physics = physics.HeldSuarezMode
	cfg.Dycore.Qsize = 0
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Solver.InitBaroclinicWave(m.State)

	var buf bytes.Buffer
	sampler := NewSampler(m.Solver.Mesh, 18, 9)
	hw, err := NewHistoryWriter(&buf, sampler, []string{"T", "U", "V"})
	if err != nil {
		t.Fatal(err)
	}
	const nframes = 3
	for f := 0; f < nframes; f++ {
		if err := WriteHistoryFrameForModel(hw, m); err != nil {
			t.Fatal(err)
		}
		m.Run(1)
	}
	if err := hw.Close(); err != nil {
		t.Fatal(err)
	}

	nlon, nlat, frames, err := ReadHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nlon != 18 || nlat != 9 || len(frames) != nframes {
		t.Fatalf("decoded %dx%d, %d frames", nlon, nlat, len(frames))
	}
	for i, fr := range frames {
		if len(fr.Data) != 3 {
			t.Fatalf("frame %d has %d fields", i, len(fr.Data))
		}
		for name, vals := range fr.Data {
			if len(vals) != nlon*nlat {
				t.Fatalf("frame %d field %s length %d", i, name, len(vals))
			}
		}
		// Surface temperatures sampled in a physical range.
		for _, v := range fr.Data["T"] {
			if v < 150 || v > 350 {
				t.Fatalf("frame %d: surface T %v out of range", i, v)
			}
		}
	}
	// Frames advance in simulated time.
	if !(frames[0].Hours < frames[1].Hours && frames[1].Hours < frames[2].Hours) {
		t.Error("frame timestamps not increasing")
	}
	// The state evolved: T frames must differ between first and last.
	same := true
	for g := range frames[0].Data["T"] {
		if frames[0].Data["T"][g] != frames[2].Data["T"][g] {
			same = false
			break
		}
	}
	if same {
		t.Error("frames identical; model did not evolve")
	}
}

func TestHistoryRejectsGarbage(t *testing.T) {
	if _, _, _, err := ReadHistory(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Error("garbage history accepted")
	}
}
