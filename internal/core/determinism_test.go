package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"swcam/internal/dycore"
	"swcam/internal/exec"
)

// hashGlobal folds every float64 of a gathered state into an FNV-64
// digest over the raw bit patterns, so the comparison is exact: a
// single ULP of drift — or a NaN, which compares unequal to itself and
// would slip through a tolerance check — changes the hash.
func hashGlobal(st *dycore.State) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	fold := func(fields [][]float64) {
		for _, f := range fields {
			for _, v := range f {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
				h.Write(buf[:])
			}
		}
	}
	fold(st.U)
	fold(st.V)
	fold(st.T)
	fold(st.DP)
	fold(st.Qdp)
	fold(st.Phis)
	return h.Sum64()
}

// randomizedGlobal builds a seeded, perturbed initial condition: the
// baroclinic wave plus tracers, with every prognostic field nudged by
// reproducible noise so the run exercises arbitrary data rather than
// the idealized profile's symmetries.
func randomizedGlobal(cfg dycore.Config, seed int64) (*dycore.State, error) {
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		return nil, err
	}
	st := s.NewState()
	s.InitBaroclinicWave(st)
	s.InitCosineBellTracer(st, 0, math.Pi/2, 0.2, 0.7)
	if cfg.Qsize > 1 {
		s.InitCosineBellTracer(st, 1, math.Pi, -0.3, 0.5)
	}
	rng := rand.New(rand.NewSource(seed))
	for e := range st.U {
		for i := range st.U[e] {
			st.U[e][i] += rng.NormFloat64()
			st.V[e][i] += rng.NormFloat64()
			st.T[e][i] += 0.5 * rng.NormFloat64()
			st.DP[e][i] *= 1 + 0.02*(rng.Float64()-0.5)
		}
		for i := range st.Qdp[e] {
			st.Qdp[e][i] *= 0.5 + rng.Float64() // stays non-negative
		}
	}
	return st, nil
}

// TestRunDeterministicAcrossWorkerCounts is the end-to-end determinism
// differential: a randomized multi-step distributed run (halo
// exchanges, allreduce mass fixer, hyperviscosity, tracers, vertical
// remap) must be bit-identical — state hash AND accumulated Cost/Halo
// counters — for every backend at every intra-rank worker-pool size.
// The workers=1 run is the reference; any scheduling, partial-sum
// ordering, or counter-merge sensitivity in the tiled path shows up as
// a hash or counter mismatch here.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := testDycoreCfg(3, 8, 2)
	const (
		seed   = 20260806
		ranks  = 2
		steps  = 3
		refMsg = "workers=%d: %s diverged from workers=1 reference\n tiled:  %+v\n serial: %+v"
	)
	global, err := randomizedGlobal(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}

	run := func(b exec.Backend, workers int) (uint64, RunStats) {
		job, err := NewParallelJob(cfg, b, true, ranks)
		if err != nil {
			t.Fatal(err)
		}
		job.SetDynWorkers(workers)
		if got := job.EngineWorkers(); got != workers {
			t.Fatalf("EngineWorkers() = %d after SetDynWorkers(%d)", got, workers)
		}
		local := job.Scatter(global)
		stats := job.Run(local, steps)
		return hashGlobal(job.Gather(local)), stats
	}

	for _, b := range []exec.Backend{exec.Intel, exec.MPE, exec.OpenACC, exec.Athread} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			refHash, refStats := run(b, 1)
			if refStats.Cost.Flops() == 0 {
				t.Fatal("reference run accounted no kernel cost")
			}
			if refStats.Halo.WireBytes == 0 {
				t.Fatal("reference run moved no halo bytes")
			}
			for _, workers := range []int{2, 4, 8} {
				gotHash, gotStats := run(b, workers)
				if gotHash != refHash {
					t.Errorf("workers=%d: state hash %016x, want %016x", workers, gotHash, refHash)
				}
				if gotStats.Cost != refStats.Cost {
					t.Errorf(refMsg, workers, "Cost", gotStats.Cost, refStats.Cost)
				}
				if gotStats.Halo != refStats.Halo {
					t.Errorf(refMsg, workers, "Halo stats", gotStats.Halo, refStats.Halo)
				}
				if gotStats.Steps != refStats.Steps {
					t.Errorf("workers=%d: stepped %d, want %d", workers, gotStats.Steps, refStats.Steps)
				}
			}
		})
	}
}
