package core

import (
	"testing"
	"time"

	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/mpirt"
	"swcam/internal/obs"
)

// TestOverlapDifferentialSweep is the end-to-end differential for the
// §7.6 redesign: with the boundary-first split feeding a real inner
// computation into DSSOverlap's window, the overlap run must stay
// bit-identical (FNV-64 over raw float bits) to the original blocking
// exchange for every backend, intra-rank worker count, and rank count —
// and, because both the DSS chains and the reductions are
// partition-invariant, one hash per backend must cover the whole sweep.
// The instrumented counters additionally pin that multi-rank overlap
// runs actually opened windows (computeInner was non-nil for every DSS)
// and skipped the staging copy.
func TestOverlapDifferentialSweep(t *testing.T) {
	cfg := testDycoreCfg(2, 8, 1)
	global, err := randomizedGlobal(cfg, 20260806)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 2

	// Serial anchor: the distributed runs agree with the serial Solver
	// to rounding (the serial code groups some sums differently, so this
	// comparison is tolerance-based, unlike the exact sweep below).
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial := global.Clone()
	for i := 0; i < steps; i++ {
		s.Step(serial)
	}

	type result struct {
		hash     uint64
		stats    RunStats
		windows  int64
		gathered *dycore.State
	}
	run := func(t *testing.T, b exec.Backend, overlap bool, ranks, workers int) result {
		t.Helper()
		job, err := NewParallelJob(cfg, b, overlap, ranks)
		if err != nil {
			t.Fatal(err)
		}
		job.SetDynWorkers(workers)
		probe := &obs.Probe{Reg: obs.NewRegistry()}
		job.Instrument(probe)
		local := job.Scatter(global)
		stats, err := job.RunChecked(local, steps)
		if err != nil {
			t.Fatal(err)
		}
		g := job.Gather(local)
		return result{
			hash:     hashGlobal(g),
			stats:    stats,
			windows:  probe.Reg.CounterValue("halo.overlap.windows"),
			gathered: g,
		}
	}

	for _, b := range []exec.Backend{exec.Intel, exec.MPE, exec.OpenACC, exec.Athread} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			var ref uint64
			first := true
			for _, ranks := range []int{1, 2, 4} {
				for _, workers := range []int{1, 4} {
					orig := run(t, b, false, ranks, workers)
					over := run(t, b, true, ranks, workers)
					if over.hash != orig.hash {
						t.Errorf("ranks=%d workers=%d: overlap hash %x != original %x",
							ranks, workers, over.hash, orig.hash)
					}
					if first {
						ref = orig.hash
						first = false
					} else if orig.hash != ref {
						t.Errorf("ranks=%d workers=%d: hash %x varies with partition/workers (ref %x)",
							ranks, workers, orig.hash, ref)
					}
					if ranks > 1 {
						if over.windows == 0 {
							t.Errorf("ranks=%d workers=%d: overlap run opened no windows (computeInner never ran)",
								ranks, workers)
						}
						if over.stats.Halo.StagingBytes != 0 {
							t.Errorf("ranks=%d workers=%d: overlap run still staging", ranks, workers)
						}
						if orig.stats.Halo.StagingBytes == 0 {
							t.Errorf("ranks=%d workers=%d: original run reported no staging copies", ranks, workers)
						}
						if over.stats.Halo.WireBytes != orig.stats.Halo.WireBytes {
							t.Errorf("ranks=%d workers=%d: wire traffic depends on flavour", ranks, workers)
						}
					} else if over.windows != 0 {
						t.Errorf("workers=%d: single-rank run claims overlap windows", workers)
					}
					if b == exec.Intel && ranks == 1 && workers == 1 {
						if d := over.gathered.MaxAbsDiff(serial); d > 1e-7 {
							t.Errorf("Intel distributed run differs from serial Solver by %g", d)
						}
					}
				}
			}
		})
	}
}

// TestOverlapMidExchangeFaultRecovery kills a rank and corrupts a
// payload while DSS messages are in flight — every point-to-point op in
// a step IS a halo exchange op, so a fault on one lands mid-exchange:
// the killed rank unwinds through mpirt.Fail between the boundary
// (Open) and inner (Close) kernel halves, its peers unwind inside their
// receive drains, and the engines are left holding stale split state.
// The ladder supervisor must still finish and reproduce the fault-free
// trajectory bit for bit, proving both the unwind path and the
// stale-Open discard work end to end. Swept over several fault offsets
// so the kill lands in different exchanges of the step.
func TestOverlapMidExchangeFaultRecovery(t *testing.T) {
	cs := newChaosSetup(t)
	for _, tc := range []struct {
		name string
		frac func(ops int64) int64
	}{
		{"early", func(ops int64) int64 { return ops / 3 }},
		{"mid", func(ops int64) int64 { return ops / 2 }},
		{"late", func(ops int64) int64 { return ops * 2 / 3 }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plan := mpirt.NewFaultPlan(cs.nranks).
				Add(mpirt.Fault{Rank: 1, AfterOp: tc.frac(cs.ops[1]), Kind: mpirt.KillRank}).
				Add(mpirt.Fault{Rank: 0, AfterOp: tc.frac(cs.ops[0]) + 7, Kind: mpirt.CorruptMsg})

			job := cs.newJob(t)
			job.Faults = plan
			job.RecvTimeout = 2 * time.Second
			rj := NewResilientJob(job)
			rj.Mode = ModeLadder
			rj.CheckpointEvery = 1
			rj.MaxRetries = 10
			rj.Backoff = time.Millisecond
			rj.Spares = 1

			local := job.Scatter(cs.global)
			rs, err := rj.Run(local, cs.steps)
			if err != nil {
				t.Fatalf("supervised run failed: %v (events: %v)", err, rs.Events)
			}
			if pending := plan.Pending(); len(pending) != 0 {
				t.Fatalf("faults never fired: %+v", pending)
			}
			if rs.Run.Steps != cs.steps {
				t.Errorf("finished at step %d, want %d", rs.Run.Steps, cs.steps)
			}
			cs.assertBitIdentical(t, job.Gather(local))
		})
	}
}
