// Package halo implements the distributed boundary exchange of CAM-SE —
// the bndry_exchangev subroutine the paper redesigns in §7.6 — in two
// flavours that produce identical results with different data movement:
//
//   - DSSOriginal follows HOMME's unified pack-buffer design: every
//     contribution, local or remote, is staged through pack and unpack
//     buffers, and received data takes the long path
//     receive buffer -> pack buffer -> element storage.
//   - DSSOverlap is the paper's redesign: elements are split into an
//     inner part and a boundary part, boundary contributions are packed
//     and sent first, the caller's inner computation runs while messages
//     are in flight, and received data is accumulated straight from the
//     receive buffer into element storage, eliminating the intermediate
//     copy.
//
// Both flavours implement the direct stiffness summation (DSS) that makes
// spectral-element fields C0-continuous: every GLL node shared by several
// elements — possibly on several ranks — ends up holding the
// SphereMP-weighted average of all its element copies.
package halo

import (
	"fmt"
	"sort"

	"swcam/internal/mesh"
	"swcam/internal/obs"
)

// LocalRef addresses one element-local copy of a shared node.
type LocalRef struct {
	Elem int // local element slot (index into the rank's element list)
	Node int // local node index within the element, j*np+i
}

// Group is one shared GLL node as seen from this rank: the local copies
// that contribute to it and their DSS weights. Remote groups additionally
// receive partial sums from neighbouring ranks.
type Group struct {
	Refs   []LocalRef
	W      []float64 // DSSW weight of each local copy
	Slot   int       // index into the rank's partial-sum scratch
	Remote bool      // true when other ranks also hold copies
}

// Neighbor is one adjacent rank and the agreed-order list of shared
// groups exchanged with it. Both sides sort shared nodes by global id, so
// position i of the message refers to the same physical node on each.
type Neighbor struct {
	Rank  int
	Slots []int // partial-sum slots, in global-node-id order
}

// Plan is the rank-local exchange schedule, built once per partition and
// reused every timestep (HOMME builds its edge schedules the same way).
type Plan struct {
	Rank    int
	Np      int
	Elems   []int       // global element ids owned by this rank, ascending
	LocalOf map[int]int // global element id -> local slot

	Groups    []Group
	Neighbors []Neighbor

	// BoundaryElems are local slots owning at least one remote-shared
	// node; InnerElems are the rest. The redesigned exchange computes
	// boundary elements first so their contributions can be in flight
	// while inner elements compute (§7.6).
	BoundaryElems []int
	InnerElems    []int

	scratch []float64 // partial sums, len = len(Groups)*maxStride (grown on demand)

	// Observability hooks (nil = off; see Instrument in exchange.go).
	obsTr  *obs.Tracer
	obsReg *obs.Registry
}

// NewPlan builds the exchange schedule for one rank of a partition.
// rankOf maps every global element id to its owning rank.
func NewPlan(m *mesh.Mesh, rankOf []int, rank int) *Plan {
	if len(rankOf) != m.NElems() {
		panic(fmt.Sprintf("halo: rankOf has %d entries for %d elements", len(rankOf), m.NElems()))
	}
	p := &Plan{Rank: rank, Np: m.Np, LocalOf: make(map[int]int)}
	for id, r := range rankOf {
		if r == rank {
			p.LocalOf[id] = len(p.Elems)
			p.Elems = append(p.Elems, id)
		}
	}

	// Walk every global node touched by this rank; build groups for the
	// shared ones and per-neighbour slot lists for the remote ones.
	type remoteKey struct{ nbRank, gid int }
	remoteSlots := map[int][]struct{ gid, slot int }{} // neighbour rank -> slots
	boundary := map[int]bool{}

	for gid, refs := range m.NodeElems {
		var local []LocalRef
		var w []float64
		remoteRanks := map[int]bool{}
		for _, r := range refs {
			if rankOf[r.Elem] == rank {
				le := p.LocalOf[r.Elem]
				local = append(local, LocalRef{Elem: le, Node: r.Idx})
				w = append(w, m.Elements[r.Elem].DSSW[r.Idx])
			} else {
				remoteRanks[rankOf[r.Elem]] = true
			}
		}
		if len(local) == 0 {
			continue // node not on this rank
		}
		if len(local) == 1 && len(remoteRanks) == 0 {
			continue // unshared node, no DSS needed
		}
		g := Group{Refs: local, W: w, Slot: len(p.Groups), Remote: len(remoteRanks) > 0}
		p.Groups = append(p.Groups, g)
		for nb := range remoteRanks {
			remoteSlots[nb] = append(remoteSlots[nb], struct{ gid, slot int }{gid, g.Slot})
		}
		if g.Remote {
			for _, lr := range local {
				boundary[lr.Elem] = true
			}
		}
	}

	// Deterministic neighbour ordering and agreed per-message node order.
	nbRanks := make([]int, 0, len(remoteSlots))
	for nb := range remoteSlots {
		nbRanks = append(nbRanks, nb)
	}
	sort.Ints(nbRanks)
	for _, nb := range nbRanks {
		slots := remoteSlots[nb]
		sort.Slice(slots, func(a, b int) bool { return slots[a].gid < slots[b].gid })
		n := Neighbor{Rank: nb}
		for _, s := range slots {
			n.Slots = append(n.Slots, s.slot)
		}
		p.Neighbors = append(p.Neighbors, n)
	}

	for le := range p.Elems {
		if boundary[le] {
			p.BoundaryElems = append(p.BoundaryElems, le)
		} else {
			p.InnerElems = append(p.InnerElems, le)
		}
	}
	return p
}

// NLocal returns the number of elements owned by this rank.
func (p *Plan) NLocal() int { return len(p.Elems) }

// SharedNodes returns the count of distinct nodes this rank exchanges
// with neighbour i — the per-message element count used by the machine
// model.
func (p *Plan) SharedNodes(i int) int { return len(p.Neighbors[i].Slots) }

func (p *Plan) ensureScratch(n int) []float64 {
	if cap(p.scratch) < n {
		p.scratch = make([]float64, n)
	}
	return p.scratch[:n]
}
