// Package halo implements the distributed boundary exchange of CAM-SE —
// the bndry_exchangev subroutine the paper redesigns in §7.6 — in two
// flavours that produce identical results with different data movement:
//
//   - DSSOriginal follows HOMME's unified pack-buffer design: every
//     contribution, local or remote, is staged through pack and unpack
//     buffers, and received data takes the long path
//     receive buffer -> pack buffer -> element storage.
//   - DSSOverlap is the paper's redesign: elements are split into an
//     inner part and a boundary part, boundary contributions are packed
//     and sent first, the caller's inner computation runs while messages
//     are in flight, and received data is accumulated straight from the
//     receive buffer into element storage, eliminating the intermediate
//     copy.
//
// Both flavours implement the direct stiffness summation (DSS) that makes
// spectral-element fields C0-continuous: every GLL node shared by several
// elements — possibly on several ranks — ends up holding the
// SphereMP-weighted average of all its element copies.
//
// The exchange ships individual weighted copies (one w·x value per
// element copy of a shared node) rather than per-rank partial sums, and
// every rank assembles each shared node by adding the copies in the
// mesh's canonical NodeElems order — the same chain the serial solver
// walks. That makes the distributed DSS bit-identical to the serial DSS
// and, crucially, invariant under repartitioning: the floating-point
// grouping never depends on which rank owns which element, which is what
// lets shrink recovery (core.ResilientJob) move elements between ranks
// mid-run without perturbing the trajectory.
package halo

import (
	"fmt"
	"sort"

	"swcam/internal/mesh"
	"swcam/internal/mpirt"
	"swcam/internal/obs"
)

// LocalRef addresses one element-local copy of a shared node.
type LocalRef struct {
	Elem int // local element slot (index into the rank's element list)
	Node int // local node index within the element, j*np+i
}

// ChainTerm is one link of a shared node's canonical summation chain: a
// single element copy, either held locally or arriving from a neighbour
// message. The chain lists every copy of the node in mesh.NodeElems
// order (ascending element id), so summing it term by term reproduces
// the serial DSS bit for bit on every rank that holds the node.
type ChainTerm struct {
	Local bool
	Ref   int // Local: index into Group.Refs
	Nb    int // !Local: index into Plan.Neighbors
	Pos   int // !Local: entry index within that neighbour's message
}

// Group is one shared GLL node as seen from this rank: the local copies
// that contribute to it and their DSS weights, both in mesh.NodeElems
// order. Remote groups additionally carry the full canonical chain over
// local and received copies.
type Group struct {
	Refs   []LocalRef
	W      []float64 // DSSW weight of each local copy
	Slot   int       // index into the rank's partial-sum scratch
	Remote bool      // true when other ranks also hold copies
	Chain  []ChainTerm
}

// Neighbor is one adjacent rank and the agreed-order schedules exchanged
// with it. Messages carry one weighted copy value per element copy the
// sender holds of each shared node; both sides enumerate shared nodes in
// global-node-id order and copies in mesh.NodeElems order, so entry k of
// a message means the same physical copy on each end.
type Neighbor struct {
	Rank      int
	SendGroup []int // group slot of each outgoing entry
	SendRef   []int // local copy (index into Group.Refs) of each outgoing entry
	RecvLen   int   // incoming entries: copies the peer holds of our shared nodes
	Nodes     int   // distinct shared nodes (symmetric; the machine-model message size)
}

// Plan is the rank-local exchange schedule, built once per partition and
// reused every timestep (HOMME builds its edge schedules the same way).
type Plan struct {
	Rank    int
	Np      int
	Elems   []int       // global element ids owned by this rank, ascending
	LocalOf map[int]int // global element id -> local slot

	Groups    []Group
	Neighbors []Neighbor

	// BoundaryElems are local slots owning at least one remote-shared
	// node; InnerElems are the rest. The redesigned exchange computes
	// boundary elements first so their contributions can be in flight
	// while inner elements compute (§7.6).
	BoundaryElems []int
	InnerElems    []int

	scratch []float64 // partial sums, len = len(Groups)*maxStride (grown on demand)

	// Persistent per-neighbour exchange buffers and request slots, grown
	// on demand like scratch and reused every timestep so the steady-state
	// exchange performs no heap allocation (HOMME likewise allocates its
	// edge buffers once per schedule).
	sendBufs [][]float64
	recvBufs [][]float64
	staged   [][]float64 // DSSOriginal's modeled receive->pack staging copy
	sendReqs []mpirt.Request
	recvReqs []mpirt.Request
	// exchStats is the in-progress exchange's stats accumulator. It lives
	// on the Plan because its address is taken by the obs probe closure,
	// which would force a per-call heap allocation as a local.
	exchStats Stats

	// Observability hooks (nil = off; see Instrument in exchange.go).
	obsTr  *obs.Tracer
	obsReg *obs.Registry
}

// NewPlan builds the exchange schedule for one rank of a partition.
// rankOf maps every global element id to its owning rank.
func NewPlan(m *mesh.Mesh, rankOf []int, rank int) *Plan {
	if len(rankOf) != m.NElems() {
		panic(fmt.Sprintf("halo: rankOf has %d entries for %d elements", len(rankOf), m.NElems()))
	}
	p := &Plan{Rank: rank, Np: m.Np, LocalOf: make(map[int]int)}
	for id, r := range rankOf {
		if r == rank {
			p.LocalOf[id] = len(p.Elems)
			p.Elems = append(p.Elems, id)
		}
	}

	// Pass 1: collect the neighbour rank set so chain terms can refer to
	// neighbours by their final sorted index.
	nbSet := map[int]bool{}
	for _, refs := range m.NodeElems {
		onRank := false
		for _, r := range refs {
			if rankOf[r.Elem] == rank {
				onRank = true
				break
			}
		}
		if !onRank {
			continue
		}
		for _, r := range refs {
			if rankOf[r.Elem] != rank {
				nbSet[rankOf[r.Elem]] = true
			}
		}
	}
	nbRanks := make([]int, 0, len(nbSet))
	for nb := range nbSet {
		nbRanks = append(nbRanks, nb)
	}
	sort.Ints(nbRanks)
	nbIndex := make(map[int]int, len(nbRanks))
	p.Neighbors = make([]Neighbor, len(nbRanks))
	for i, nb := range nbRanks {
		p.Neighbors[i] = Neighbor{Rank: nb}
		nbIndex[nb] = i
	}

	// Pass 2: walk every global node in ascending-gid order (NodeElems is
	// indexed by gid) and build groups, canonical chains, and the agreed
	// send/receive schedules. Because every rank enumerates the same
	// NodeElems refs in the same order, sender entry order and receiver
	// chain positions agree by construction.
	boundary := map[int]bool{}
	for _, refs := range m.NodeElems {
		var local []LocalRef
		var w []float64
		remote := false
		for _, r := range refs {
			if rankOf[r.Elem] == rank {
				local = append(local, LocalRef{Elem: p.LocalOf[r.Elem], Node: r.Idx})
				w = append(w, m.Elements[r.Elem].DSSW[r.Idx])
			} else {
				remote = true
			}
		}
		if len(local) == 0 {
			continue // node not on this rank
		}
		if len(local) == 1 && !remote {
			continue // unshared node, no DSS needed
		}
		g := Group{Refs: local, W: w, Slot: len(p.Groups), Remote: remote}
		if remote {
			// Canonical chain over every copy, and per-neighbour message
			// positions advanced in the same canonical order.
			localIdx := 0
			touched := map[int]bool{}
			for _, r := range refs {
				if rankOf[r.Elem] == rank {
					g.Chain = append(g.Chain, ChainTerm{Local: true, Ref: localIdx})
					localIdx++
					continue
				}
				ni := nbIndex[rankOf[r.Elem]]
				nb := &p.Neighbors[ni]
				g.Chain = append(g.Chain, ChainTerm{Nb: ni, Pos: nb.RecvLen})
				nb.RecvLen++
				touched[ni] = true
			}
			// Every local copy of the node is sent to every neighbour
			// that holds it, in chain (NodeElems) order.
			for ni := range touched {
				nb := &p.Neighbors[ni]
				nb.Nodes++
				for li := range g.Refs {
					nb.SendGroup = append(nb.SendGroup, g.Slot)
					nb.SendRef = append(nb.SendRef, li)
				}
			}
			for _, lr := range local {
				boundary[lr.Elem] = true
			}
		}
		p.Groups = append(p.Groups, g)
	}

	for le := range p.Elems {
		if boundary[le] {
			p.BoundaryElems = append(p.BoundaryElems, le)
		} else {
			p.InnerElems = append(p.InnerElems, le)
		}
	}
	return p
}

// NLocal returns the number of elements owned by this rank.
func (p *Plan) NLocal() int { return len(p.Elems) }

// SharedNodes returns the count of distinct nodes this rank exchanges
// with neighbour i — the per-message element count used by the machine
// model. Symmetric between the two ends of a neighbour pair.
func (p *Plan) SharedNodes(i int) int { return p.Neighbors[i].Nodes }

func (p *Plan) ensureScratch(n int) []float64 {
	if cap(p.scratch) < n {
		p.scratch = make([]float64, n)
	}
	return p.scratch[:n]
}

// ensureBufs sizes the persistent per-neighbour send/receive/staging
// buffers and request slots for an exchange of nf fields with `stride`
// values per node. Buffers only ever grow, so after the first exchange
// of a given shape the hot path is allocation-free.
func (p *Plan) ensureBufs(nf, stride int) {
	n := len(p.Neighbors)
	if len(p.sendBufs) < n {
		p.sendBufs = make([][]float64, n)
		p.recvBufs = make([][]float64, n)
		p.staged = make([][]float64, n)
		p.sendReqs = make([]mpirt.Request, n)
		p.recvReqs = make([]mpirt.Request, n)
	}
	for i := range p.Neighbors {
		nb := &p.Neighbors[i]
		if sl := p.sendLen(nb, nf, stride); cap(p.sendBufs[i]) < sl {
			p.sendBufs[i] = make([]float64, sl)
		} else {
			p.sendBufs[i] = p.sendBufs[i][:sl]
		}
		rl := p.recvLen(nb, nf, stride)
		if cap(p.recvBufs[i]) < rl {
			p.recvBufs[i] = make([]float64, rl)
		} else {
			p.recvBufs[i] = p.recvBufs[i][:rl]
		}
		if cap(p.staged[i]) < rl {
			p.staged[i] = make([]float64, rl)
		} else {
			p.staged[i] = p.staged[i][:rl]
		}
	}
}
