package halo

import (
	"fmt"
	"time"

	"swcam/internal/mpirt"
	"swcam/internal/obs"
)

// Stats reports the data movement of one exchange, the quantity the
// §7.6 redesign attacks. Wire traffic is identical between the two
// flavours; staging-copy volume is not.
type Stats struct {
	PackBytes    int64 // element/partial data copied into send buffers
	UnpackBytes  int64 // data copied out of buffers into element storage
	StagingBytes int64 // extra receive->pack-buffer copies (original only)
	Msgs         int64 // messages sent
	WireBytes    int64 // payload bytes sent
	// WaitNs is wall time spent blocked waiting for messages —
	// communication NOT hidden behind computation. Only measured when
	// the plan is instrumented (Instrument), else 0; the obs StepReport
	// derives its comm/compute overlap ratio from WaitNs over the full
	// exchange duration.
	WaitNs int64
}

// Add accumulates another exchange's stats.
func (s *Stats) Add(o Stats) {
	s.PackBytes += o.PackBytes
	s.UnpackBytes += o.UnpackBytes
	s.StagingBytes += o.StagingBytes
	s.Msgs += o.Msgs
	s.WireBytes += o.WireBytes
	s.WaitNs += o.WaitNs
}

// Instrument attaches the observability subsystem to this plan: every
// exchange records a span (pid = rank) and feeds the halo.* registry
// counters, and receive waits are timed for the overlap ratio. Either
// argument may be nil; uninstrumented plans (the default) pay a single
// nil test per exchange.
func (p *Plan) Instrument(tr *obs.Tracer, reg *obs.Registry) {
	p.obsTr, p.obsReg = tr, reg
}

func (p *Plan) instrumented() bool { return p.obsTr != nil || p.obsReg != nil }

// haloNoop avoids a closure allocation on the uninstrumented path.
var haloNoop = func() {}

// exchangeProbe opens the exchange span and returns the completion func
// that publishes st into the registry. st must be fully accumulated by
// the time the returned func runs (defer it).
func (p *Plan) exchangeProbe(name string, st *Stats) func() {
	if !p.instrumented() {
		return haloNoop
	}
	sp := p.obsTr.Begin(p.Rank, name, "comm")
	reg := p.obsReg
	start := time.Now()
	return func() {
		ns := time.Since(start).Nanoseconds()
		sp.End()
		if reg != nil {
			reg.Counter("halo.ns").Add(ns)
			reg.Counter("halo.wait.ns").Add(st.WaitNs)
			reg.Counter("halo.pack.bytes").Add(st.PackBytes)
			reg.Counter("halo.unpack.bytes").Add(st.UnpackBytes)
			reg.Counter("halo.staging.bytes").Add(st.StagingBytes)
			reg.Counter("halo.msgs").Add(st.Msgs)
			reg.Counter("halo.wire.bytes").Add(st.WireBytes)
		}
	}
}

// exchange tags; the dycore performs up to three exchanges per RK stage
// (the paper's "3 sub-cycles edge packing/unpacking"), distinguished by
// the caller's epoch.
const tagDSS = 101

// Layout describes how per-node, per-level values are indexed within an
// element's field slice: value (node, level) lives at
// node*NodeStride + level*LevelStride. CAM-SE stores tracers node-major
// in the edge buffers but the state level-major; both appear here.
type Layout struct {
	Levels      int
	NodeStride  int
	LevelStride int
}

// NodeMajor is the layout with all of a node's levels contiguous.
func NodeMajor(levels int) Layout { return Layout{Levels: levels, NodeStride: levels, LevelStride: 1} }

// LevelMajor is the layout with whole np*np level slabs contiguous.
func LevelMajor(levels, npsq int) Layout {
	return Layout{Levels: levels, NodeStride: 1, LevelStride: npsq}
}

// partials computes, for every group in the given list, the weighted sum
// of its local copies across all fields, storing it in scratch laid out
// as [slot][field][l].
func (p *Plan) partials(scratch []float64, lay Layout, nfields int, remoteOnly bool, fields ...[][]float64) {
	stride := lay.Levels
	for _, g := range p.Groups {
		if remoteOnly && !g.Remote {
			continue
		}
		base := g.Slot * nfields * stride
		for f := 0; f < nfields; f++ {
			for l := 0; l < stride; l++ {
				sum := 0.0
				for r, ref := range g.Refs {
					sum += g.W[r] * fields[f][ref.Elem][ref.Node*lay.NodeStride+l*lay.LevelStride]
				}
				scratch[base+f*stride+l] = sum
			}
		}
	}
}

// scatter writes the assembled totals back into every local copy of the
// given groups.
func (p *Plan) scatter(scratch []float64, lay Layout, nfields int, remoteOnly, localOnly bool, fields ...[][]float64) {
	stride := lay.Levels
	for _, g := range p.Groups {
		if remoteOnly && !g.Remote {
			continue
		}
		if localOnly && g.Remote {
			continue
		}
		base := g.Slot * nfields * stride
		for f := 0; f < nfields; f++ {
			for l := 0; l < stride; l++ {
				v := scratch[base+f*stride+l]
				for _, ref := range g.Refs {
					fields[f][ref.Elem][ref.Node*lay.NodeStride+l*lay.LevelStride] = v
				}
			}
		}
	}
}

// packNeighbor fills buf with this rank's partials for neighbour nb.
func (p *Plan) packNeighbor(nb *Neighbor, scratch, buf []float64, stride, nfields int) {
	k := 0
	for _, slot := range nb.Slots {
		base := slot * nfields * stride
		copy(buf[k:k+nfields*stride], scratch[base:base+nfields*stride])
		k += nfields * stride
	}
}

// accumulateNeighbor adds a received neighbour partial into scratch.
func (p *Plan) accumulateNeighbor(nb *Neighbor, scratch, buf []float64, stride, nfields int) {
	k := 0
	for _, slot := range nb.Slots {
		base := slot * nfields * stride
		for i := 0; i < nfields*stride; i++ {
			scratch[base+i] += buf[k+i]
		}
		k += nfields * stride
	}
}

// DSSOriginal performs the exchange in HOMME's original unified-buffer
// style: all contributions staged through pack buffers, blocking
// communication, and received data copied first into the pack buffer and
// only then into element storage (the redundant memory copy the paper
// removes). fields are per-element nodal arrays with `stride` values per
// GLL node; every field is exchanged in one message per neighbour, as the
// real code packs multiple tracers/levels together.
//
// A detected transport fault (CRC mismatch, receive timeout, aborted
// world) is returned as an error naming the neighbour; the fields have
// not been scattered into, so the caller sees either a completed DSS or
// its pre-exchange values — never a partially-averaged mixture.
func (p *Plan) DSSOriginal(c *mpirt.Comm, lay Layout, fields ...[][]float64) (Stats, error) {
	var st Stats
	nf := len(fields)
	if nf == 0 {
		return st, nil
	}
	timed := p.instrumented()
	defer p.exchangeProbe("halo.dss_original", &st)()
	stride := lay.Levels
	scratch := p.ensureScratch(len(p.Groups) * nf * stride)
	p.partials(scratch, lay, nf, false, fields...)

	msgLen := func(nb *Neighbor) int { return len(nb.Slots) * nf * stride }

	// Pack all, send all, receive all: no overlap anywhere.
	sendBufs := make([][]float64, len(p.Neighbors))
	for i := range p.Neighbors {
		nb := &p.Neighbors[i]
		sendBufs[i] = make([]float64, msgLen(nb))
		p.packNeighbor(nb, scratch, sendBufs[i], stride, nf)
		st.PackBytes += int64(msgLen(nb) * 8)
	}
	for i := range p.Neighbors {
		c.Send(p.Neighbors[i].Rank, tagDSS, sendBufs[i])
		st.Msgs++
		st.WireBytes += int64(msgLen(&p.Neighbors[i]) * 8)
	}
	for i := range p.Neighbors {
		nb := &p.Neighbors[i]
		recv := make([]float64, msgLen(nb))
		var w0 time.Time
		if timed {
			w0 = time.Now()
		}
		if err := c.RecvErr(nb.Rank, tagDSS, recv); err != nil {
			return st, fmt.Errorf("halo: DSS exchange with rank %d: %w", nb.Rank, err)
		}
		if timed {
			st.WaitNs += time.Since(w0).Nanoseconds()
		}
		// The original design forwards receive-buffer data through the
		// unified pack buffer before it reaches the elements: model that
		// staging copy explicitly so its cost is measurable.
		staged := make([]float64, len(recv))
		copy(staged, recv)
		st.StagingBytes += int64(len(recv) * 8)
		p.accumulateNeighbor(nb, scratch, staged, stride, nf)
		st.UnpackBytes += int64(len(recv) * 8)
	}
	p.scatter(scratch, lay, nf, false, false, fields...)
	return st, nil
}

// DSSOverlap performs the redesigned exchange of §7.6. The caller must
// already have computed the boundary elements' field values; inner
// elements are produced by computeInner, which runs while boundary
// partials are in flight. Received partials are accumulated directly from
// the receive buffers (no staging copy). computeInner may be nil when
// there is nothing to overlap.
//
// A detected transport fault is returned as an error naming the
// neighbour. Unlike DSSOriginal, local groups may already have been
// resolved by then (that is the overlap), so on error the fields must be
// treated as unusable and the step rolled back or the world aborted.
func (p *Plan) DSSOverlap(c *mpirt.Comm, lay Layout, computeInner func(), fields ...[][]float64) (Stats, error) {
	var st Stats
	nf := len(fields)
	if nf == 0 {
		if computeInner != nil {
			computeInner()
		}
		return st, nil
	}
	timed := p.instrumented()
	defer p.exchangeProbe("halo.dss_overlap", &st)()
	stride := lay.Levels
	scratch := p.ensureScratch(len(p.Groups) * nf * stride)

	// Remote groups live entirely on boundary elements, which are ready:
	// compute their partials and get the messages moving first.
	p.partials(scratch, lay, nf, true, fields...)

	msgLen := func(nb *Neighbor) int { return len(nb.Slots) * nf * stride }
	recvBufs := make([][]float64, len(p.Neighbors))
	recvReqs := make([]*mpirt.Request, len(p.Neighbors))
	for i := range p.Neighbors {
		nb := &p.Neighbors[i]
		recvBufs[i] = make([]float64, msgLen(nb))
		recvReqs[i] = c.Irecv(nb.Rank, tagDSS, recvBufs[i])
	}
	sendBufs := make([][]float64, len(p.Neighbors))
	for i := range p.Neighbors {
		nb := &p.Neighbors[i]
		sendBufs[i] = make([]float64, msgLen(nb))
		p.packNeighbor(nb, scratch, sendBufs[i], stride, nf)
		st.PackBytes += int64(msgLen(nb) * 8)
		c.Isend(nb.Rank, tagDSS, sendBufs[i]).Wait()
		st.Msgs++
		st.WireBytes += int64(msgLen(nb) * 8)
	}

	// Overlap window: inner elements compute while messages are in flight.
	if computeInner != nil {
		computeInner()
	}
	// Inner values exist now; resolve the purely local groups.
	p.partials(scratch, lay, nf, false, fields...)
	p.scatter(scratch, lay, nf, false, true, fields...)

	// Drain receives straight into the partial sums — the direct
	// receive-buffer unpack that removes the staging copy.
	for i := range p.Neighbors {
		var w0 time.Time
		if timed {
			w0 = time.Now()
		}
		if err := recvReqs[i].WaitErr(); err != nil {
			return st, fmt.Errorf("halo: DSS exchange with rank %d: %w", p.Neighbors[i].Rank, err)
		}
		if timed {
			st.WaitNs += time.Since(w0).Nanoseconds()
		}
		p.accumulateNeighbor(&p.Neighbors[i], scratch, recvBufs[i], stride, nf)
		st.UnpackBytes += int64(len(recvBufs[i]) * 8)
	}
	p.scatter(scratch, lay, nf, true, false, fields...)
	return st, nil
}
