package halo

import (
	"fmt"
	"time"

	"swcam/internal/mpirt"
	"swcam/internal/obs"
)

// Stats reports the data movement of one exchange, the quantity the
// §7.6 redesign attacks. Wire traffic is identical between the two
// flavours; staging-copy volume is not.
type Stats struct {
	PackBytes    int64 // element/partial data copied into send buffers
	UnpackBytes  int64 // data copied out of buffers into element storage
	StagingBytes int64 // extra receive->pack-buffer copies (original only)
	Msgs         int64 // messages sent
	WireBytes    int64 // payload bytes sent
	// WaitNs is wall time spent blocked waiting for messages —
	// communication NOT hidden behind computation. Only measured when
	// the plan is instrumented (Instrument), else 0; the obs StepReport
	// derives its comm/compute overlap ratio from WaitNs over the full
	// exchange duration.
	WaitNs int64
}

// Add accumulates another exchange's stats.
func (s *Stats) Add(o Stats) {
	s.PackBytes += o.PackBytes
	s.UnpackBytes += o.UnpackBytes
	s.StagingBytes += o.StagingBytes
	s.Msgs += o.Msgs
	s.WireBytes += o.WireBytes
	s.WaitNs += o.WaitNs
}

// Instrument attaches the observability subsystem to this plan: every
// exchange records a span (pid = rank) and feeds the halo.* registry
// counters, and receive waits are timed for the overlap ratio. Either
// argument may be nil; uninstrumented plans (the default) pay a single
// nil test per exchange.
func (p *Plan) Instrument(tr *obs.Tracer, reg *obs.Registry) {
	p.obsTr, p.obsReg = tr, reg
}

func (p *Plan) instrumented() bool { return p.obsTr != nil || p.obsReg != nil }

// haloNoop avoids a closure allocation on the uninstrumented path.
var haloNoop = func() {}

// exchangeProbe opens the exchange span and returns the completion func
// that publishes st into the registry. st must be fully accumulated by
// the time the returned func runs (defer it).
func (p *Plan) exchangeProbe(name string, st *Stats) func() {
	if !p.instrumented() {
		return haloNoop
	}
	sp := p.obsTr.Begin(p.Rank, name, "comm")
	reg := p.obsReg
	start := time.Now()
	return func() {
		ns := time.Since(start).Nanoseconds()
		sp.End()
		if reg != nil {
			reg.Counter("halo.ns").Add(ns)
			reg.Counter("halo.wait.ns").Add(st.WaitNs)
			reg.Counter("halo.pack.bytes").Add(st.PackBytes)
			reg.Counter("halo.unpack.bytes").Add(st.UnpackBytes)
			reg.Counter("halo.staging.bytes").Add(st.StagingBytes)
			reg.Counter("halo.msgs").Add(st.Msgs)
			reg.Counter("halo.wire.bytes").Add(st.WireBytes)
		}
	}
}

// exchange tags; the dycore performs up to three exchanges per RK stage
// (the paper's "3 sub-cycles edge packing/unpacking"), distinguished by
// the caller's epoch.
const tagDSS = 101

// Layout describes how per-node, per-level values are indexed within an
// element's field slice: value (node, level) lives at
// node*NodeStride + level*LevelStride. CAM-SE stores tracers node-major
// in the edge buffers but the state level-major; both appear here.
type Layout struct {
	Levels      int
	NodeStride  int
	LevelStride int
}

// NodeMajor is the layout with all of a node's levels contiguous.
func NodeMajor(levels int) Layout { return Layout{Levels: levels, NodeStride: levels, LevelStride: 1} }

// LevelMajor is the layout with whole np*np level slabs contiguous.
func LevelMajor(levels, npsq int) Layout {
	return Layout{Levels: levels, NodeStride: 1, LevelStride: npsq}
}

// localPartials computes, for every purely local group, the weighted sum
// of its copies across all fields, storing it in scratch laid out as
// [slot][field][l]. Remote groups are assembled by the canonical chain
// instead (assembleRemote).
func (p *Plan) localPartials(scratch []float64, lay Layout, nfields int, fields ...[][]float64) {
	stride := lay.Levels
	for gi := range p.Groups {
		g := &p.Groups[gi]
		if g.Remote {
			continue
		}
		base := g.Slot * nfields * stride
		for f := 0; f < nfields; f++ {
			for l := 0; l < stride; l++ {
				sum := 0.0
				for r, ref := range g.Refs {
					sum += g.W[r] * fields[f][ref.Elem][ref.Node*lay.NodeStride+l*lay.LevelStride]
				}
				scratch[base+f*stride+l] = sum
			}
		}
	}
}

// scatterLocal writes the assembled totals back into every copy of the
// purely local groups.
func (p *Plan) scatterLocal(scratch []float64, lay Layout, nfields int, fields ...[][]float64) {
	stride := lay.Levels
	for gi := range p.Groups {
		g := &p.Groups[gi]
		if g.Remote {
			continue
		}
		base := g.Slot * nfields * stride
		for f := 0; f < nfields; f++ {
			for l := 0; l < stride; l++ {
				v := scratch[base+f*stride+l]
				for _, ref := range g.Refs {
					fields[f][ref.Elem][ref.Node*lay.NodeStride+l*lay.LevelStride] = v
				}
			}
		}
	}
}

// packNeighbor fills buf with the weighted copy values this rank sends
// to neighbour nb: for every scheduled (group, local copy) entry, the
// copy's DSSW weight times its field value. Shipping w·x per copy — not
// per-rank partial sums — is what lets every receiver replay the
// canonical summation chain.
func (p *Plan) packNeighbor(nb *Neighbor, buf []float64, lay Layout, nfields int, fields ...[][]float64) {
	stride := lay.Levels
	k := 0
	for e, slot := range nb.SendGroup {
		g := &p.Groups[slot]
		ref := g.Refs[nb.SendRef[e]]
		w := g.W[nb.SendRef[e]]
		off := ref.Node * lay.NodeStride
		for f := 0; f < nfields; f++ {
			src := fields[f][ref.Elem]
			for l := 0; l < stride; l++ {
				buf[k] = w * src[off+l*lay.LevelStride]
				k++
			}
		}
	}
}

// assembleRemote resolves every remote-shared group by walking its
// canonical chain — local copies weighted in place, remote copies read
// from the neighbour receive buffers — and writes the total back into
// all local copies. The chain order is mesh.NodeElems order on every
// rank, so the result is bit-identical to the serial DSS and independent
// of the partition.
func (p *Plan) assembleRemote(recvBufs [][]float64, lay Layout, nfields int, fields ...[][]float64) {
	stride := lay.Levels
	for gi := range p.Groups {
		g := &p.Groups[gi]
		if !g.Remote {
			continue
		}
		for f := 0; f < nfields; f++ {
			for l := 0; l < stride; l++ {
				off := l * lay.LevelStride
				sum := 0.0
				for _, t := range g.Chain {
					if t.Local {
						ref := g.Refs[t.Ref]
						sum += g.W[t.Ref] * fields[f][ref.Elem][ref.Node*lay.NodeStride+off]
					} else {
						sum += recvBufs[t.Nb][(t.Pos*nfields+f)*stride+l]
					}
				}
				for _, ref := range g.Refs {
					fields[f][ref.Elem][ref.Node*lay.NodeStride+off] = sum
				}
			}
		}
	}
}

func (p *Plan) sendLen(nb *Neighbor, nfields, stride int) int {
	return len(nb.SendGroup) * nfields * stride
}

func (p *Plan) recvLen(nb *Neighbor, nfields, stride int) int {
	return nb.RecvLen * nfields * stride
}

// DSSOriginal performs the exchange in HOMME's original unified-buffer
// style: all contributions staged through pack buffers, blocking
// communication, and received data copied first into the pack buffer and
// only then into element storage (the redundant memory copy the paper
// removes). fields are per-element nodal arrays with `stride` values per
// GLL node; every field is exchanged in one message per neighbour, as the
// real code packs multiple tracers/levels together.
//
// A detected transport fault (CRC mismatch, receive timeout, aborted
// world) is returned as an error naming the neighbour; the fields have
// not been scattered into, so the caller sees either a completed DSS or
// its pre-exchange values — never a partially-averaged mixture.
func (p *Plan) DSSOriginal(c *mpirt.Comm, lay Layout, fields ...[][]float64) (Stats, error) {
	nf := len(fields)
	if nf == 0 {
		return Stats{}, nil
	}
	st := &p.exchStats
	*st = Stats{}
	timed := p.instrumented()
	defer p.exchangeProbe("halo.dss_original", st)()
	stride := lay.Levels
	scratch := p.ensureScratch(len(p.Groups) * nf * stride)
	p.ensureBufs(nf, stride)

	// Pack all, send all, receive all: no overlap anywhere.
	for i := range p.Neighbors {
		nb := &p.Neighbors[i]
		p.packNeighbor(nb, p.sendBufs[i], lay, nf, fields...)
		st.PackBytes += int64(len(p.sendBufs[i]) * 8)
	}
	for i := range p.Neighbors {
		c.Send(p.Neighbors[i].Rank, tagDSS, p.sendBufs[i])
		st.Msgs++
		st.WireBytes += int64(len(p.sendBufs[i]) * 8)
	}
	for i := range p.Neighbors {
		nb := &p.Neighbors[i]
		recv := p.recvBufs[i]
		var w0 time.Time
		if timed {
			w0 = time.Now()
		}
		if err := c.RecvErr(nb.Rank, tagDSS, recv); err != nil {
			return *st, fmt.Errorf("halo: DSS exchange with rank %d: %w", nb.Rank, err)
		}
		if timed {
			st.WaitNs += time.Since(w0).Nanoseconds()
		}
		// The original design forwards receive-buffer data through the
		// unified pack buffer before it reaches the elements: model that
		// staging copy explicitly so its cost is measurable.
		copy(p.staged[i], recv)
		st.StagingBytes += int64(len(recv) * 8)
		st.UnpackBytes += int64(len(recv) * 8)
	}
	// All receives verified; only now touch the fields.
	p.localPartials(scratch, lay, nf, fields...)
	p.scatterLocal(scratch, lay, nf, fields...)
	p.assembleRemote(p.staged, lay, nf, fields...)
	return *st, nil
}

// DSSOverlap performs the redesigned exchange of §7.6. The caller must
// already have computed the boundary elements' field values; inner
// elements are produced by computeInner, which runs while boundary
// partials are in flight. Receives and sends are posted asynchronously
// into the plan's persistent request slots before the overlap window and
// drained only after it, so no send serializes the pipeline. Received
// copies are assembled directly from the receive buffers (no staging
// copy). computeInner may be nil when there is nothing to overlap; each
// invocation with a real computeInner bumps the "halo.overlap.windows"
// registry counter on instrumented plans.
//
// A detected transport fault is returned as an error naming the
// neighbour. Unlike DSSOriginal, local groups may already have been
// resolved by then (that is the overlap), so on error the fields must be
// treated as unusable and the step rolled back or the world aborted.
func (p *Plan) DSSOverlap(c *mpirt.Comm, lay Layout, computeInner func(), fields ...[][]float64) (Stats, error) {
	nf := len(fields)
	if nf == 0 {
		if computeInner != nil {
			computeInner()
		}
		return Stats{}, nil
	}
	st := &p.exchStats
	*st = Stats{}
	timed := p.instrumented()
	defer p.exchangeProbe("halo.dss_overlap", st)()
	stride := lay.Levels
	scratch := p.ensureScratch(len(p.Groups) * nf * stride)
	p.ensureBufs(nf, stride)

	// Remote-shared copies live entirely on boundary elements, which are
	// ready: pack their weighted values and get the messages moving first.
	// Both receives and sends are posted into the plan's persistent
	// request slots; nothing blocks until after the overlap window.
	for i := range p.Neighbors {
		nb := &p.Neighbors[i]
		c.IrecvInto(&p.recvReqs[i], nb.Rank, tagDSS, p.recvBufs[i])
	}
	for i := range p.Neighbors {
		nb := &p.Neighbors[i]
		p.packNeighbor(nb, p.sendBufs[i], lay, nf, fields...)
		st.PackBytes += int64(len(p.sendBufs[i]) * 8)
		c.IsendInto(&p.sendReqs[i], nb.Rank, tagDSS, p.sendBufs[i])
		st.Msgs++
		st.WireBytes += int64(len(p.sendBufs[i]) * 8)
	}

	// Overlap window: inner elements compute while messages are in flight.
	// Only counted as a window when messages actually are in flight — a
	// neighbourless rank has nothing to hide work behind, and counting it
	// would let a communication-free run report an overlap ratio.
	if computeInner != nil {
		if p.obsReg != nil && len(p.Neighbors) > 0 {
			p.obsReg.Counter("halo.overlap.windows").Add(1)
		}
		computeInner()
	}
	// Inner values exist now; resolve the purely local groups.
	p.localPartials(scratch, lay, nf, fields...)
	p.scatterLocal(scratch, lay, nf, fields...)

	// Drain the tracked sends, then the receives, and assemble shared
	// nodes straight from the receive buffers — the direct unpack that
	// removes the staging copy. Time spent blocked here is communication
	// the overlap window failed to hide.
	for i := range p.Neighbors {
		if err := p.sendReqs[i].WaitErr(); err != nil {
			return *st, fmt.Errorf("halo: DSS exchange with rank %d: %w", p.Neighbors[i].Rank, err)
		}
	}
	for i := range p.Neighbors {
		var w0 time.Time
		if timed {
			w0 = time.Now()
		}
		if err := p.recvReqs[i].WaitErr(); err != nil {
			return *st, fmt.Errorf("halo: DSS exchange with rank %d: %w", p.Neighbors[i].Rank, err)
		}
		if timed {
			st.WaitNs += time.Since(w0).Nanoseconds()
		}
		st.UnpackBytes += int64(len(p.recvBufs[i]) * 8)
	}
	p.assembleRemote(p.recvBufs, lay, nf, fields...)
	return *st, nil
}
