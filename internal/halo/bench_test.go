package halo

import (
	"testing"

	"swcam/internal/mesh"
	"swcam/internal/mpirt"
)

func benchExchange(b *testing.B, overlap bool) {
	m := mesh.New(8, 4)
	const nranks = 8
	rankOf, err := m.Partition(nranks)
	if err != nil {
		b.Fatal(err)
	}
	plans := make([]*Plan, nranks)
	for r := range plans {
		plans[r] = NewPlan(m, rankOf, r)
	}
	global := makeField(m, 8, 1)
	local := scatterToRanks(global, plans)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := mpirt.NewWorld(nranks)
		w.Run(func(c *mpirt.Comm) {
			if overlap {
				plans[c.Rank()].DSSOverlap(c, NodeMajor(8), nil, local[c.Rank()])
			} else {
				plans[c.Rank()].DSSOriginal(c, NodeMajor(8), local[c.Rank()])
			}
		})
	}
}

func BenchmarkDSSOriginal(b *testing.B) { benchExchange(b, false) }
func BenchmarkDSSOverlap(b *testing.B)  { benchExchange(b, true) }

func BenchmarkPlanBuild(b *testing.B) {
	m := mesh.New(8, 4)
	rankOf, _ := m.Partition(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPlan(m, rankOf, i%8)
	}
}
