package halo

import (
	"errors"
	"math"
	"testing"
	"time"

	"swcam/internal/mesh"
	"swcam/internal/mpirt"
)

// The boundary exchange under injected transport faults: corruption and
// drops must surface as detection errors (ErrCorrupt / ErrTimeout) from
// the exchange itself, never as silently wrong fields and never as a
// hang. Both flavours are exercised through the same table.
func TestDSSDetectsInjectedFaults(t *testing.T) {
	const nranks = 4
	m := mesh.New(3, 4)
	rankOf, err := m.Partition(nranks)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]*Plan, nranks)
	for r := range plans {
		plans[r] = NewPlan(m, rankOf, r)
	}

	cases := []struct {
		name    string
		overlap bool
		kind    mpirt.FaultKind
		want    error
	}{
		{"original/corrupt", false, mpirt.CorruptMsg, mpirt.ErrCorrupt},
		{"original/drop", false, mpirt.DropMsg, mpirt.ErrTimeout},
		{"overlap/corrupt", true, mpirt.CorruptMsg, mpirt.ErrCorrupt},
		{"overlap/drop", true, mpirt.DropMsg, mpirt.ErrTimeout},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			global := makeField(m, 2, 11)
			local := scatterToRanks(global, plans)
			before := scatterToRanks(global, plans)

			// Fault the first send of rank 1's exchange; every peer of
			// rank 1 either detects the fault directly or is unblocked
			// when the world aborts.
			plan := mpirt.NewFaultPlan(nranks).Add(mpirt.Fault{Rank: 1, AfterOp: 1, Kind: tc.kind})
			w := mpirt.NewWorld(nranks)
			w.SetFaults(plan)
			w.SetRecvTimeout(200 * time.Millisecond)

			detected := make([]error, nranks)
			done := make(chan error, 1)
			go func() {
				done <- w.Run(func(c *mpirt.Comm) {
					r := c.Rank()
					var err error
					if tc.overlap {
						_, err = plans[r].DSSOverlap(c, NodeMajor(2), nil, local[r])
					} else {
						_, err = plans[r].DSSOriginal(c, NodeMajor(2), local[r])
					}
					detected[r] = err
					if err != nil {
						mpirt.Fail(err) // abort so peers cannot wait forever
					}
				})
			}()
			var runErr error
			select {
			case runErr = <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("faulty DSS exchange hung")
			}
			if runErr == nil {
				t.Fatal("faulty run completed without error")
			}
			hit := false
			for r, err := range detected {
				if errors.Is(err, tc.want) {
					hit = true
				}
				// The original flavour guarantees fields are untouched on a
				// detected fault (scatter happens after all receives).
				if !tc.overlap && err != nil {
					for le := range local[r] {
						for k := range local[r][le] {
							if local[r][le][k] != before[r][le][k] {
								t.Fatalf("rank %d: fields modified despite detection error", r)
							}
						}
					}
				}
			}
			if !hit {
				t.Fatalf("no rank detected %v; per-rank errors: %v", tc.want, detected)
			}
		})
	}
}

// A clean world with a receive deadline set must still complete the
// exchange — deadlines only bite when something is actually lost.
func TestDSSWithDeadlineStillCorrect(t *testing.T) {
	const nranks = 3
	m := mesh.New(2, 4)
	rankOf, _ := m.Partition(nranks)
	plans := make([]*Plan, nranks)
	for r := range plans {
		plans[r] = NewPlan(m, rankOf, r)
	}
	global := makeField(m, 1, 13)
	want := make([][]float64, len(global))
	for i := range global {
		want[i] = append([]float64(nil), global[i]...)
	}
	serialDSS(m, want, 1)
	local := scatterToRanks(global, plans)
	w := mpirt.NewWorld(nranks)
	w.SetRecvTimeout(10 * time.Second)
	if err := w.Run(func(c *mpirt.Comm) {
		if _, err := plans[c.Rank()].DSSOverlap(c, NodeMajor(1), nil, local[c.Rank()]); err != nil {
			mpirt.Fail(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for r, p := range plans {
		for le, ge := range p.Elems {
			for k := range local[r][le] {
				if math.Abs(local[r][le][k]-want[ge][k]) > 1e-12 {
					t.Fatalf("deadline run wrong at rank %d elem %d", r, ge)
				}
			}
		}
	}
}
