package halo

import (
	"math"
	"math/rand"
	"testing"

	"swcam/internal/mesh"
	"swcam/internal/mpirt"
)

// runDSSOnPartition applies the distributed DSS to a copy of global
// under an arbitrary rankOf map and gathers the result back into a
// global field.
func runDSSOnPartition(t *testing.T, m *mesh.Mesh, rankOf []int, nranks, stride int, overlap bool, global [][]float64) [][]float64 {
	t.Helper()
	plans := make([]*Plan, nranks)
	for r := 0; r < nranks; r++ {
		plans[r] = NewPlan(m, rankOf, r)
	}
	local := scatterToRanks(global, plans)
	w := mpirt.NewWorld(nranks)
	err := w.Run(func(c *mpirt.Comm) {
		p := plans[c.Rank()]
		var dssErr error
		if overlap {
			_, dssErr = p.DSSOverlap(c, NodeMajor(stride), nil, local[c.Rank()])
		} else {
			_, dssErr = p.DSSOriginal(c, NodeMajor(stride), local[c.Rank()])
		}
		if dssErr != nil {
			t.Error(dssErr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, len(global))
	for r, p := range plans {
		for le, ge := range p.Elems {
			out[ge] = append([]float64(nil), local[r][le]...)
		}
	}
	return out
}

// TestDSSBitIdenticalToSerial pins the canonical-chain contract: the
// distributed DSS performs the exact floating-point operations of the
// serial DSS — same products, same summation order — so the comparison
// is ==, not a tolerance. This is the property localized/shrink recovery
// builds on.
func TestDSSBitIdenticalToSerial(t *testing.T) {
	m := mesh.New(4, 4)
	const stride = 3
	global := makeField(m, stride, 7)
	want := make([][]float64, len(global))
	for i := range global {
		want[i] = append([]float64(nil), global[i]...)
	}
	serialDSS(m, want, stride)

	for _, nranks := range []int{1, 2, 3, 5, 6, 8} {
		rankOf, err := m.Partition(nranks)
		if err != nil {
			t.Fatal(err)
		}
		for _, overlap := range []bool{false, true} {
			got := runDSSOnPartition(t, m, rankOf, nranks, stride, overlap, global)
			for ge := range want {
				for k := range want[ge] {
					if math.Float64bits(got[ge][k]) != math.Float64bits(want[ge][k]) {
						t.Fatalf("nranks=%d overlap=%v: elem %d idx %d: got %x want %x (not bit-identical)",
							nranks, overlap, ge, k, math.Float64bits(got[ge][k]), math.Float64bits(want[ge][k]))
					}
				}
			}
		}
	}
}

// TestDSSPartitionInvariant is the determinism argument for shrink
// recovery: moving elements between ranks — including to a completely
// random, non-contiguous assignment — must not change a single bit of
// the DSS result, because every rank assembles shared nodes by the same
// canonical NodeElems chain regardless of ownership.
func TestDSSPartitionInvariant(t *testing.T) {
	m := mesh.New(4, 4)
	const stride = 2
	global := makeField(m, stride, 99)

	ref2, err := m.Partition(2)
	if err != nil {
		t.Fatal(err)
	}
	want := runDSSOnPartition(t, m, ref2, 2, stride, false, global)

	rng := rand.New(rand.NewSource(12345))
	partitions := [][]int{}
	for _, nranks := range []int{3, 4, 6} {
		rankOf, err := m.Partition(nranks)
		if err != nil {
			t.Fatal(err)
		}
		partitions = append(partitions, rankOf)
	}
	// A random non-contiguous 5-rank assignment (every rank non-empty).
	random := make([]int, m.NElems())
	for i := range random {
		random[i] = rng.Intn(5)
	}
	for r := 0; r < 5; r++ {
		random[r] = r
	}
	partitions = append(partitions, random)

	for pi, rankOf := range partitions {
		nranks := 0
		for _, r := range rankOf {
			if r+1 > nranks {
				nranks = r + 1
			}
		}
		for _, overlap := range []bool{false, true} {
			got := runDSSOnPartition(t, m, rankOf, nranks, stride, overlap, global)
			for ge := range want {
				for k := range want[ge] {
					if math.Float64bits(got[ge][k]) != math.Float64bits(want[ge][k]) {
						t.Fatalf("partition %d (nranks=%d) overlap=%v: elem %d idx %d differs: got %v want %v",
							pi, nranks, overlap, ge, k, got[ge][k], want[ge][k])
					}
				}
			}
		}
	}
}
