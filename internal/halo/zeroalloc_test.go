package halo

import (
	"testing"

	"swcam/internal/mesh"
	"swcam/internal/mpirt"
)

// TestExchangeSteadyStateZeroAlloc pins the §7.6 hot-path property: once
// the plan's pooled buffers are warm, a DSS exchange performs ZERO heap
// allocations per call, in both flavours. Measured marginally — the
// world setup and rank goroutines cost the same constant in both runs,
// so (allocs of a many-exchange world - allocs of a few-exchange world)
// isolates exactly the per-exchange cost. Requires the defaults the
// steady state runs under: retransmission off (payload buffers recycle
// through the destination mailbox freelist) and no receive deadline (a
// deadline arms a timer per blocking receive).
func TestExchangeSteadyStateZeroAlloc(t *testing.T) {
	const nranks, stride = 2, 4
	m := mesh.New(2, 4)
	rankOf, err := m.Partition(nranks)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]*Plan, nranks)
	for r := 0; r < nranks; r++ {
		plans[r] = NewPlan(m, rankOf, r)
	}
	global := makeField(m, stride, 7)
	local := scatterToRanks(global, plans)
	lay := NodeMajor(stride)

	for _, flavour := range []struct {
		name string
		run  func(c *mpirt.Comm, p *Plan, f [][]float64) error
	}{
		{"overlap", func(c *mpirt.Comm, p *Plan, f [][]float64) error {
			_, err := p.DSSOverlap(c, lay, haloNoop, f)
			return err
		}},
		{"original", func(c *mpirt.Comm, p *Plan, f [][]float64) error {
			_, err := p.DSSOriginal(c, lay, f)
			return err
		}},
	} {
		worldAllocs := func(exchanges int) float64 {
			return testing.AllocsPerRun(5, func() {
				w := mpirt.NewWorld(nranks)
				err := w.Run(func(c *mpirt.Comm) {
					p := plans[c.Rank()]
					f := local[c.Rank()]
					for i := 0; i < exchanges; i++ {
						if err := flavour.run(c, p, f); err != nil {
							mpirt.Fail(err)
						}
					}
				})
				if err != nil {
					t.Error(err)
				}
			})
		}
		// First call also warms the plan pools (buffers only grow). The
		// baseline world runs enough exchanges that one-time transients —
		// mailbox freelist/pending slices growing to their steady
		// capacity — happen in both worlds and cancel in the difference.
		base := worldAllocs(52)
		many := worldAllocs(102)
		perCall := (many - base) / 50
		if perCall > 0 {
			t.Errorf("%s: %.2f heap allocations per steady-state exchange, want 0 (world(2)=%.0f world(102)=%.0f)",
				flavour.name, perCall, base, many)
		}
	}
}
