package halo

import (
	"testing"

	"swcam/internal/mesh"
)

// totalSharedNodes sums every rank's halo surface — the number of GLL
// node copies that cross rank boundaries, i.e. the wire volume of one
// DSS exchange across the whole job.
func totalSharedNodes(m *mesh.Mesh, rankOf []int, nranks int) int {
	total := 0
	for r := 0; r < nranks; r++ {
		p := NewPlan(m, rankOf, r)
		for i := range p.Neighbors {
			total += p.SharedNodes(i)
		}
	}
	return total
}

// TestPartitionHaloCutNeverWorseThanMorton is the partition-locality
// property at the level that actually costs wire time: the total halo
// cut (summed Plan.SharedNodes) of mesh.Partition's chosen layout never
// exceeds the historical Morton-only chop, across mesh sizes and rank
// counts. mesh.Partition guarantees this by construction — it chops both
// candidate curves and keeps the smaller edge cut — and this test pins
// that the edge-cut proxy agrees with the real exchange volume.
func TestPartitionHaloCutNeverWorseThanMorton(t *testing.T) {
	for _, ne := range []int{2, 3, 4, 6} {
		m := mesh.New(ne, 4)
		for _, nranks := range []int{2, 3, 4, 6, 8} {
			if nranks > m.NElems() {
				continue
			}
			rankOf, err := m.Partition(nranks)
			if err != nil {
				t.Fatal(err)
			}
			mortonRankOf := mortonChop(m, nranks)
			got := totalSharedNodes(m, rankOf, nranks)
			ref := totalSharedNodes(m, mortonRankOf, nranks)
			if got > ref {
				t.Errorf("ne=%d nranks=%d: Partition halo cut %d nodes > Morton chop %d nodes",
					ne, nranks, got, ref)
			}
		}
	}
}

// mortonChop reproduces the pre-Hilbert partition: contiguous chunks of
// the Morton curve, sizes differing by at most one.
func mortonChop(m *mesh.Mesh, nranks int) []int {
	order := m.SFCOrder()
	rankOf := make([]int, len(order))
	base, extra := len(order)/nranks, len(order)%nranks
	pos := 0
	for r := 0; r < nranks; r++ {
		size := base
		if r < extra {
			size++
		}
		for k := 0; k < size; k++ {
			rankOf[order[pos]] = r
			pos++
		}
	}
	return rankOf
}
