package halo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"swcam/internal/mesh"
	"swcam/internal/mpirt"
)

// makeField builds a random per-element field over the whole mesh with
// the given per-node stride.
func makeField(m *mesh.Mesh, stride int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	np := m.Np
	f := make([][]float64, m.NElems())
	for i := range f {
		f[i] = make([]float64, np*np*stride)
		for k := range f[i] {
			f[i][k] = rng.NormFloat64()
		}
	}
	return f
}

// serialDSS applies the mesh-level DSS to a strided field, level by
// level, as the reference answer.
func serialDSS(m *mesh.Mesh, field [][]float64, stride int) {
	np := m.Np
	for l := 0; l < stride; l++ {
		lvl := make([][]float64, m.NElems())
		for i := range lvl {
			lvl[i] = make([]float64, np*np)
			for k := 0; k < np*np; k++ {
				lvl[i][k] = field[i][k*stride+l]
			}
		}
		m.DSS(lvl)
		for i := range lvl {
			for k := 0; k < np*np; k++ {
				field[i][k*stride+l] = lvl[i][k]
			}
		}
	}
}

// scatterToRanks splits a global field into per-rank local fields.
func scatterToRanks(field [][]float64, plans []*Plan) [][][]float64 {
	out := make([][][]float64, len(plans))
	for r, p := range plans {
		out[r] = make([][]float64, p.NLocal())
		for le, ge := range p.Elems {
			out[r][le] = append([]float64(nil), field[ge]...)
		}
	}
	return out
}

func runDistributedDSS(t *testing.T, m *mesh.Mesh, nranks, stride int, overlap bool) {
	t.Helper()
	rankOf, err := m.Partition(nranks)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]*Plan, nranks)
	for r := 0; r < nranks; r++ {
		plans[r] = NewPlan(m, rankOf, r)
	}
	global := makeField(m, stride, 42)
	want := make([][]float64, len(global))
	for i := range global {
		want[i] = append([]float64(nil), global[i]...)
	}
	serialDSS(m, want, stride)

	local := scatterToRanks(global, plans)
	w := mpirt.NewWorld(nranks)
	w.Run(func(c *mpirt.Comm) {
		p := plans[c.Rank()]
		if overlap {
			p.DSSOverlap(c, NodeMajor(stride), nil, local[c.Rank()])
		} else {
			p.DSSOriginal(c, NodeMajor(stride), local[c.Rank()])
		}
	})

	for r, p := range plans {
		for le, ge := range p.Elems {
			for k := range local[r][le] {
				if math.Abs(local[r][le][k]-want[ge][k]) > 1e-12 {
					t.Fatalf("nranks=%d overlap=%v: elem %d idx %d: got %v want %v",
						nranks, overlap, ge, k, local[r][le][k], want[ge][k])
				}
			}
		}
	}
}

func TestDSSOriginalMatchesSerial(t *testing.T) {
	m := mesh.New(4, 4)
	for _, nranks := range []int{1, 2, 3, 6, 8} {
		runDistributedDSS(t, m, nranks, 1, false)
	}
}

func TestDSSOverlapMatchesSerial(t *testing.T) {
	m := mesh.New(4, 4)
	for _, nranks := range []int{1, 2, 3, 6, 8} {
		runDistributedDSS(t, m, nranks, 1, true)
	}
}

func TestDSSMultiLevel(t *testing.T) {
	m := mesh.New(3, 4)
	runDistributedDSS(t, m, 4, 5, false)
	runDistributedDSS(t, m, 4, 5, true)
}

func TestDSSBothFlavoursIdentical(t *testing.T) {
	// The redesigned exchange must be bit-identical to the original:
	// same arithmetic, different staging.
	m := mesh.New(4, 4)
	const nranks = 6
	const stride = 3
	rankOf, _ := m.Partition(nranks)
	plans := make([]*Plan, nranks)
	for r := range plans {
		plans[r] = NewPlan(m, rankOf, r)
	}
	global := makeField(m, stride, 7)
	a := scatterToRanks(global, plans)
	b := scatterToRanks(global, plans)

	w := mpirt.NewWorld(nranks)
	w.Run(func(c *mpirt.Comm) { plans[c.Rank()].DSSOriginal(c, NodeMajor(stride), a[c.Rank()]) })
	w2 := mpirt.NewWorld(nranks)
	w2.Run(func(c *mpirt.Comm) { plans[c.Rank()].DSSOverlap(c, NodeMajor(stride), nil, b[c.Rank()]) })

	for r := range plans {
		for le := range a[r] {
			for k := range a[r][le] {
				if a[r][le][k] != b[r][le][k] {
					t.Fatalf("flavours differ at rank %d elem %d idx %d", r, le, k)
				}
			}
		}
	}
}

func TestDSSMultipleFields(t *testing.T) {
	m := mesh.New(3, 4)
	const nranks = 4
	const stride = 2
	rankOf, _ := m.Partition(nranks)
	plans := make([]*Plan, nranks)
	for r := range plans {
		plans[r] = NewPlan(m, rankOf, r)
	}
	gu := makeField(m, stride, 1)
	gv := makeField(m, stride, 2)
	wantU := make([][]float64, len(gu))
	wantV := make([][]float64, len(gv))
	for i := range gu {
		wantU[i] = append([]float64(nil), gu[i]...)
		wantV[i] = append([]float64(nil), gv[i]...)
	}
	serialDSS(m, wantU, stride)
	serialDSS(m, wantV, stride)

	lu := scatterToRanks(gu, plans)
	lv := scatterToRanks(gv, plans)
	w := mpirt.NewWorld(nranks)
	w.Run(func(c *mpirt.Comm) {
		plans[c.Rank()].DSSOriginal(c, NodeMajor(stride), lu[c.Rank()], lv[c.Rank()])
	})
	for r, p := range plans {
		for le, ge := range p.Elems {
			for k := range lu[r][le] {
				if math.Abs(lu[r][le][k]-wantU[ge][k]) > 1e-12 ||
					math.Abs(lv[r][le][k]-wantV[ge][k]) > 1e-12 {
					t.Fatalf("multi-field DSS wrong at rank %d elem %d", r, ge)
				}
			}
		}
	}
}

func TestOverlapRunsInnerCompute(t *testing.T) {
	m := mesh.New(2, 4)
	const nranks = 2
	rankOf, _ := m.Partition(nranks)
	plans := []*Plan{NewPlan(m, rankOf, 0), NewPlan(m, rankOf, 1)}
	global := makeField(m, 1, 3)
	local := scatterToRanks(global, plans)
	ran := make([]bool, nranks)
	w := mpirt.NewWorld(nranks)
	w.Run(func(c *mpirt.Comm) {
		r := c.Rank()
		plans[r].DSSOverlap(c, NodeMajor(1), func() { ran[r] = true }, local[r])
	})
	for r, ok := range ran {
		if !ok {
			t.Fatalf("rank %d inner compute not run", r)
		}
	}
}

func TestStagingBytesOnlyInOriginal(t *testing.T) {
	m := mesh.New(4, 4)
	const nranks = 4
	rankOf, _ := m.Partition(nranks)
	plans := make([]*Plan, nranks)
	for r := range plans {
		plans[r] = NewPlan(m, rankOf, r)
	}
	global := makeField(m, 2, 5)
	a := scatterToRanks(global, plans)
	b := scatterToRanks(global, plans)
	statsA := make([]Stats, nranks)
	statsB := make([]Stats, nranks)
	w := mpirt.NewWorld(nranks)
	w.Run(func(c *mpirt.Comm) { statsA[c.Rank()], _ = plans[c.Rank()].DSSOriginal(c, NodeMajor(2), a[c.Rank()]) })
	w2 := mpirt.NewWorld(nranks)
	w2.Run(func(c *mpirt.Comm) { statsB[c.Rank()], _ = plans[c.Rank()].DSSOverlap(c, NodeMajor(2), nil, b[c.Rank()]) })
	for r := 0; r < nranks; r++ {
		if statsA[r].StagingBytes == 0 {
			t.Errorf("rank %d: original exchange has no staging copies", r)
		}
		if statsB[r].StagingBytes != 0 {
			t.Errorf("rank %d: redesigned exchange still stages %d bytes", r, statsB[r].StagingBytes)
		}
		if statsA[r].WireBytes != statsB[r].WireBytes {
			t.Errorf("rank %d: wire traffic differs: %d vs %d", r, statsA[r].WireBytes, statsB[r].WireBytes)
		}
		if statsA[r].WireBytes == 0 {
			t.Errorf("rank %d: no wire traffic in a multi-rank DSS", r)
		}
	}
}

func TestBoundaryInnerPartition(t *testing.T) {
	m := mesh.New(8, 4)
	const nranks = 8
	rankOf, _ := m.Partition(nranks)
	for r := 0; r < nranks; r++ {
		p := NewPlan(m, rankOf, r)
		if len(p.BoundaryElems)+len(p.InnerElems) != p.NLocal() {
			t.Fatalf("rank %d: boundary+inner != local", r)
		}
		if len(p.BoundaryElems) == 0 {
			t.Fatalf("rank %d: no boundary elements in a multi-rank partition", r)
		}
		// With 48 elements per rank on an SFC partition there must be a
		// non-trivial interior.
		if len(p.InnerElems) == 0 {
			t.Errorf("rank %d: no inner elements (nothing to overlap)", r)
		}
		// Boundary elements must be exactly those owning remote groups.
		isBoundary := map[int]bool{}
		for _, g := range p.Groups {
			if !g.Remote {
				continue
			}
			for _, ref := range g.Refs {
				isBoundary[ref.Elem] = true
			}
		}
		if len(isBoundary) != len(p.BoundaryElems) {
			t.Fatalf("rank %d: boundary set mismatch", r)
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	m := mesh.New(4, 4)
	const nranks = 6
	rankOf, _ := m.Partition(nranks)
	plans := make([]*Plan, nranks)
	for r := range plans {
		plans[r] = NewPlan(m, rankOf, r)
	}
	for r, p := range plans {
		for i, nb := range p.Neighbors {
			// The neighbour must list us back, with the same distinct
			// shared-node count, and its send schedule toward us must
			// match our expected receive length entry for entry (the
			// per-copy messages themselves are asymmetric: each side
			// sends one entry per copy it holds).
			var back *Neighbor
			for j := range plans[nb.Rank].Neighbors {
				if plans[nb.Rank].Neighbors[j].Rank == r {
					back = &plans[nb.Rank].Neighbors[j]
				}
			}
			if back == nil {
				t.Fatalf("rank %d lists %d but not vice versa", r, nb.Rank)
			}
			if back.Nodes != p.SharedNodes(i) {
				t.Fatalf("asymmetric shared-node count between %d and %d", r, nb.Rank)
			}
			if len(back.SendGroup) != nb.RecvLen {
				t.Fatalf("rank %d expects %d entries from %d, which sends %d",
					r, nb.RecvLen, nb.Rank, len(back.SendGroup))
			}
			if len(nb.SendGroup) != back.RecvLen {
				t.Fatalf("rank %d sends %d entries to %d, which expects %d",
					r, len(nb.SendGroup), nb.Rank, back.RecvLen)
			}
			if len(nb.SendGroup) != len(nb.SendRef) {
				t.Fatalf("rank %d: send schedule to %d has mismatched group/ref lists", r, nb.Rank)
			}
		}
	}
}

func TestSingleRankNoTraffic(t *testing.T) {
	m := mesh.New(2, 4)
	rankOf, _ := m.Partition(1)
	p := NewPlan(m, rankOf, 0)
	if len(p.Neighbors) != 0 {
		t.Fatal("single rank has neighbours")
	}
	field := makeField(m, 1, 9)
	w := mpirt.NewWorld(1)
	w.Run(func(c *mpirt.Comm) {
		st, _ := p.DSSOriginal(c, NodeMajor(1), field)
		if st.WireBytes != 0 || st.Msgs != 0 {
			t.Errorf("single-rank DSS sent traffic: %+v", st)
		}
	})
	// And it must still equal the serial DSS.
	want := makeField(m, 1, 9)
	serialDSS(m, want, 1)
	for i := range field {
		for k := range field[i] {
			if math.Abs(field[i][k]-want[i][k]) > 1e-12 {
				t.Fatal("single-rank DSS wrong")
			}
		}
	}
}

// Property: the distributed DSS matches the serial DSS for RANDOM
// (non-SFC, possibly disconnected) partitions — the plan must not rely
// on rank territories being contiguous patches.
func TestDSSRandomPartitionsProperty(t *testing.T) {
	m := mesh.New(3, 4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nranks = 5
		rankOf := make([]int, m.NElems())
		// Random assignment, but every rank gets at least one element.
		for i := range rankOf {
			rankOf[i] = rng.Intn(nranks)
		}
		for r := 0; r < nranks; r++ {
			rankOf[rng.Intn(m.NElems())] = r
		}
		plans := make([]*Plan, nranks)
		for r := range plans {
			plans[r] = NewPlan(m, rankOf, r)
		}
		global := makeField(m, 2, seed)
		want := make([][]float64, len(global))
		for i := range global {
			want[i] = append([]float64(nil), global[i]...)
		}
		serialDSS(m, want, 2)
		local := scatterToRanks(global, plans)
		w := mpirt.NewWorld(nranks)
		w.Run(func(c *mpirt.Comm) {
			plans[c.Rank()].DSSOverlap(c, NodeMajor(2), nil, local[c.Rank()])
		})
		for r, p := range plans {
			for le, ge := range p.Elems {
				for k := range local[r][le] {
					if math.Abs(local[r][le][k]-want[ge][k]) > 1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// The real §7.6 usage: boundary elements hold values before the call,
// inner elements are produced by computeInner DURING the exchange. The
// final field must equal the serial DSS of the complete data — i.e. the
// overlap window is semantically invisible.
func TestOverlapComputeInnerParticipatesInDSS(t *testing.T) {
	m := mesh.New(4, 4)
	const nranks = 4
	rankOf, _ := m.Partition(nranks)
	plans := make([]*Plan, nranks)
	for r := range plans {
		plans[r] = NewPlan(m, rankOf, r)
	}
	global := makeField(m, 2, 21)
	want := make([][]float64, len(global))
	for i := range global {
		want[i] = append([]float64(nil), global[i]...)
	}
	serialDSS(m, want, 2)

	// Local copies start with boundary elements filled and inner
	// elements zeroed; computeInner writes the true inner values.
	local := scatterToRanks(global, plans)
	for r, p := range plans {
		for _, le := range p.InnerElems {
			for k := range local[r][le] {
				local[r][le][k] = 0
			}
		}
	}
	w := mpirt.NewWorld(nranks)
	w.Run(func(c *mpirt.Comm) {
		r := c.Rank()
		p := plans[r]
		p.DSSOverlap(c, NodeMajor(2), func() {
			for _, le := range p.InnerElems {
				copy(local[r][le], global[p.Elems[le]])
			}
		}, local[r])
	})
	for r, p := range plans {
		for le, ge := range p.Elems {
			for k := range local[r][le] {
				if math.Abs(local[r][le][k]-want[ge][k]) > 1e-12 {
					t.Fatalf("rank %d elem %d idx %d: %v != %v",
						r, ge, k, local[r][le][k], want[ge][k])
				}
			}
		}
	}
}
