package scale

import (
	"errors"
	"math"
	"testing"

	"swcam/internal/exec"
	"swcam/internal/obs"
)

// TestCampaignMeasuredPoint runs one real tiny sweep point end to end
// and checks the measurement is complete: every phase bucket saw time,
// the workload counters are populated, and the point passes the BENCH
// scaling-block validation embedded in a file.
func TestCampaignMeasuredPoint(t *testing.T) {
	c := &Campaign{Cfg: Config{
		Backend: exec.Intel, Nlev: 4, Qsize: 1, Steps: 2, Overlap: true,
		BudgetBytes: 256 << 20,
	}}
	pt, err := c.RunPoint(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Ne != 2 || pt.Ranks != 4 || pt.Steps != 2 {
		t.Errorf("point identity wrong: %+v", pt)
	}
	if pt.ElemsPerRank != 6 { // 24 elements over 4 ranks
		t.Errorf("elems per rank = %d, want 6", pt.ElemsPerRank)
	}
	if pt.WallNs < 1 || pt.PerStepNs < 1 {
		t.Errorf("no wall time measured: %+v", pt)
	}
	if pt.DynNs < 1 {
		t.Error("dynamics phase saw no kernel time")
	}
	if pt.HaloNs < 1 {
		t.Error("halo phase saw no exchange time")
	}
	if pt.CollNs < 1 {
		t.Error("collective phase saw no time (watchdog allreduce should have run)")
	}
	if pt.WireBytes < 1 || pt.Msgs < 1 {
		t.Errorf("no wire traffic recorded: %+v", pt)
	}
	if pt.Flops < 1 || pt.MemBytes < 1 {
		t.Errorf("no kernel cost accounted: %+v", pt)
	}
	if pt.RankBytes < 1 || pt.RankBytes > c.Cfg.BudgetBytes {
		t.Errorf("rank footprint %d outside (0, budget]", pt.RankBytes)
	}
	if pt.SYPD <= 0 || math.IsNaN(pt.SYPD) {
		t.Errorf("SYPD %v", pt.SYPD)
	}
	f := obs.NewBenchFile(obs.BenchConfig{Ne: 2, Nlev: 4, Qsize: 1, Steps: 2, Ranks: 4})
	f.Backends = nil
	f.Scaling = &obs.BenchScaling{
		Mode: "measured", Backend: "intel",
		BudgetBytes: c.Cfg.BudgetBytes,
		Strong:      []obs.BenchScalingPoint{pt},
	}
	if err := f.Validate(); err != nil {
		t.Errorf("measured point fails BENCH validation: %v", err)
	}
}

// TestCampaignBudgetRefusal: a configuration whose busiest rank would
// exceed the budget is refused before running, with a typed error the
// sweeps turn into skips.
func TestCampaignBudgetRefusal(t *testing.T) {
	c := &Campaign{Cfg: Config{
		Backend: exec.Intel, Nlev: 8, Qsize: 2, Steps: 1,
		BudgetBytes: 1024, // nothing fits in a kilobyte
	}}
	_, err := c.RunPoint(2, 2)
	var be *ErrBudget
	if !errors.As(err, &be) {
		t.Fatalf("want *ErrBudget, got %v", err)
	}
	if be.NeedBytes <= be.BudgetBytes {
		t.Errorf("budget error inconsistent: %+v", be)
	}
	// The strong sweep skips refused rank counts instead of failing.
	skipped := 0
	if _, err := c.StrongSweep(2, []int{1, 2}, func(int, error) { skipped++ }); err == nil {
		t.Error("sweep with every point refused should error")
	}
	if skipped != 2 {
		t.Errorf("skip callback fired %d times, want 2", skipped)
	}
}

// TestCampaignStrongSweep measures a real three-point strong curve and
// checks it is usable: per-rank load falls as ranks grow, every point
// validates.
func TestCampaignStrongSweep(t *testing.T) {
	c := &Campaign{Cfg: Config{Backend: exec.Intel, Nlev: 4, Qsize: 1, Steps: 1, Overlap: true}}
	pts, err := c.StrongSweep(2, []int{2, 4, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("measured %d points, want 3", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].ElemsPerRank > pts[i-1].ElemsPerRank {
			t.Errorf("per-rank load grew along the strong curve: %+v", pts)
		}
	}
}

// TestCampaignWeakSweep holds the per-rank load near the target while
// ranks scale.
func TestCampaignWeakSweep(t *testing.T) {
	c := &Campaign{Cfg: Config{
		Backend: exec.Intel, Nlev: 4, Qsize: 1, Steps: 1, Overlap: true,
		WeakElemsPerRank: 6,
	}}
	pts, err := c.WeakSweep([]int{4, 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("measured %d points, want >= 2", len(pts))
	}
	for _, p := range pts {
		if p.ElemsPerRank < 3 || p.ElemsPerRank > 12 {
			t.Errorf("weak point drifted from ~6 elems/rank: %+v", p)
		}
	}
}

// TestFitRecoversSyntheticCoefficients: generated points following an
// exact linear cost model must fit back to the generating coefficients.
// This is the calibration layer's correctness anchor — if the normal
// equations, pivoting, or predictor assembly were wrong, exact synthetic
// data would not round-trip.
func TestFitRecoversSyntheticCoefficients(t *testing.T) {
	want := obs.BenchScalingFit{
		NsPerFlop:     0.37,
		NsPerMsg:      1450,
		NsPerWireByte: 0.052,
		FixedNs:       2.4e5,
	}
	var pts []obs.BenchScalingPoint
	for i, w := range []struct {
		flops, msgs, wire float64
	}{
		{1e7, 100, 5e5},
		{2e7, 220, 9e5},
		{4e7, 150, 1.4e6},
		{8e7, 600, 3e6},
		{1.6e8, 380, 2e6},
		{3e7, 900, 4e6},
		{5e7, 50, 2e5},
	} {
		const steps = 2
		y := want.NsPerFlop*w.flops +
			want.NsPerMsg*w.msgs + want.NsPerWireByte*w.wire + want.FixedNs
		pts = append(pts, obs.BenchScalingPoint{
			Ne: 2 + i, Ranks: 4, ElemsPerRank: 6, Steps: steps,
			Flops: int64(w.flops * steps), MemBytes: int64(w.flops * steps * 3),
			Msgs: int64(w.msgs * steps), WireBytes: int64(w.wire * steps),
			PerStepNs: int64(y), WallNs: int64(y * steps), SYPD: 1,
		})
	}
	got, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, g, w float64) {
		if math.Abs(g-w) > 1e-3*math.Abs(w) {
			t.Errorf("%s = %v, want %v", name, g, w)
		}
	}
	check("ns_per_flop", got.NsPerFlop, want.NsPerFlop)
	check("ns_per_msg", got.NsPerMsg, want.NsPerMsg)
	check("ns_per_wire_byte", got.NsPerWireByte, want.NsPerWireByte)
	check("fixed_ns", got.FixedNs, want.FixedNs)
	if got.NsPerByte != 0 {
		t.Errorf("ns_per_byte = %v, want 0 (folded into ns_per_flop)", got.NsPerByte)
	}
	if got.Points != len(pts) {
		t.Errorf("fit.Points = %d, want %d", got.Points, len(pts))
	}
	if got.ResidualRMS > 1e-6 {
		t.Errorf("exact synthetic data left residual %v", got.ResidualRMS)
	}
}

// TestFitAcceptsProportionalMemBytes is the real-campaign shape: at
// fixed nlev/qsize the accounted kernel bytes are exactly proportional
// to flops across every sweep point. A model with both as predictors
// would be singular; the fit must handle this family, because it is
// what every single-configuration campaign produces.
func TestFitAcceptsProportionalMemBytes(t *testing.T) {
	var pts []obs.BenchScalingPoint
	wires := []float64{6e5, 4e5, 2.5e6, 1e6, 7e6, 9e5}
	for i, f := range []float64{1e7, 2e7, 4e7, 8e7, 1.6e8, 3e7} {
		msgs := float64(200 + 700*i%1100)
		wire := wires[i]
		y := 0.5*f + 1000*msgs + 0.04*wire + 1e5
		pts = append(pts, obs.BenchScalingPoint{
			Ne: 2 + i, Ranks: 4, ElemsPerRank: 6, Steps: 1,
			Flops: int64(f), MemBytes: int64(2.75 * f), // exactly collinear
			Msgs: int64(msgs), WireBytes: int64(wire),
			PerStepNs: int64(y), WallNs: int64(y), SYPD: 1,
		})
	}
	got, err := Fit(pts)
	if err != nil {
		t.Fatalf("fit rejected the realistic collinear family: %v", err)
	}
	if got.ResidualRMS > 1e-6 {
		t.Errorf("exact collinear data left residual %v", got.ResidualRMS)
	}
}

// TestFitClampsNegativeCoefficients: when the best unconstrained fit
// would assign a negative rate (here the generating model *subtracts*
// per-message cost), the NNLS clamp must zero that coefficient instead
// — negative rates predict negative step times once extrapolated.
func TestFitClampsNegativeCoefficients(t *testing.T) {
	wires := []float64{6e5, 4e5, 2.5e6, 1e6, 7e6, 9e5}
	var pts []obs.BenchScalingPoint
	for i, f := range []float64{1e7, 2e7, 4e7, 8e7, 1.6e8, 3e7} {
		msgs := float64(200 + 700*i%1100)
		y := 0.5*f + 0.04*wires[i] + 1e5 - 800*msgs // negative msg "cost"
		pts = append(pts, obs.BenchScalingPoint{
			Ne: 2 + i, Ranks: 4, ElemsPerRank: 6, Steps: 1,
			Flops: int64(f), MemBytes: int64(3 * f),
			Msgs: int64(msgs), WireBytes: int64(wires[i]),
			PerStepNs: int64(y), WallNs: int64(y), SYPD: 1,
		})
	}
	got, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"ns_per_flop": got.NsPerFlop, "ns_per_byte": got.NsPerByte,
		"ns_per_msg": got.NsPerMsg, "ns_per_wire_byte": got.NsPerWireByte,
		"fixed_ns": got.FixedNs,
	} {
		if v < 0 {
			t.Errorf("%s = %v, want >= 0", name, v)
		}
	}
	if got.NsPerMsg != 0 {
		t.Errorf("ns_per_msg = %v, want clamped to 0", got.NsPerMsg)
	}
}

// TestFitRejectsDegenerate: too few points, and collinear predictors,
// must error rather than emit garbage coefficients.
func TestFitRejectsDegenerate(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("empty fit accepted")
	}
	// Seven identical points: the normal equations are rank-1.
	p := obs.BenchScalingPoint{
		Ne: 2, Ranks: 4, ElemsPerRank: 6, Steps: 1,
		Flops: 1e7, MemBytes: 3e7, Msgs: 100, WireBytes: 5e5,
		PerStepNs: 1e7, WallNs: 1e7, SYPD: 1,
	}
	pts := make([]obs.BenchScalingPoint, 7)
	for i := range pts {
		pts[i] = p
	}
	if _, err := Fit(pts); err == nil {
		t.Error("collinear fit accepted")
	}
}

// TestExtrapolateTable: the projection rows are well-formed, rank
// counts cap at the machine size, resolution sharpens with ne, and the
// whole thing passes the BENCH schema validation.
func TestExtrapolateTable(t *testing.T) {
	fit := obs.BenchScalingFit{
		NsPerFlop: 0.4, NsPerByte: 0.1, NsPerMsg: 1200,
		NsPerWireByte: 0.05, FixedNs: 3e5, Points: 6, ResidualRMS: 0.05,
	}
	measured := []obs.BenchScalingPoint{
		{Ne: 4, Ranks: 16, ElemsPerRank: 6, Steps: 2,
			Flops: 2e9, MemBytes: 6e9, Msgs: 2000, WireBytes: 4e7,
			PerStepNs: 5e8, WallNs: 1e9, SYPD: 0.5},
		{Ne: 8, Ranks: 64, ElemsPerRank: 6, Steps: 2,
			Flops: 8e9, MemBytes: 24e9, Msgs: 9000, WireBytes: 1.8e8,
			PerStepNs: 2e9, WallNs: 4e9, SYPD: 0.12},
	}
	nes := []int{30, 120, 1024, 3072, 4000}
	rows, err := Extrapolate(fit, measured, nes, 163840, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(nes) {
		t.Fatalf("%d rows for %d resolutions", len(rows), len(nes))
	}
	for i, r := range rows {
		if r.Ne != nes[i] {
			t.Errorf("row %d ne = %d, want %d", i, r.Ne, nes[i])
		}
		if r.Ranks > 163840 || r.Ranks < 1 {
			t.Errorf("row %d ranks = %d outside machine", i, r.Ranks)
		}
		if r.Ranks > 6*r.Ne*r.Ne {
			t.Errorf("row %d has more ranks than elements", i)
		}
		if i > 0 && r.ResKm >= rows[i-1].ResKm {
			t.Errorf("resolution did not sharpen: %v then %v km", rows[i-1].ResKm, r.ResKm)
		}
		if i > 0 && r.SYPD > rows[i-1].SYPD {
			t.Errorf("calibrated SYPD rose with resolution: %+v", rows)
		}
	}
	f := obs.NewBenchFile(obs.BenchConfig{Ne: 4, Nlev: 4, Qsize: 1, Steps: 2, Ranks: 16})
	f.Backends = nil
	f.Scaling = &obs.BenchScaling{
		Mode: "calibrated", Backend: "intel",
		Strong: measured, Fit: &fit, Projection: rows,
	}
	if err := f.Validate(); err != nil {
		t.Errorf("extrapolation table fails BENCH validation: %v", err)
	}
}
