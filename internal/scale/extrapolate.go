package scale

import (
	"fmt"
	"math"

	"swcam/internal/dycore"
	"swcam/internal/obs"
	"swcam/internal/perf"
)

// unitCosts are per-element / per-rank workload rates distilled from a
// measured sweep: what one element-step costs in accounted flops and
// memory bytes, and what one rank-step costs in messages and halo wire
// bytes (the wire term carries the surface-to-volume scaling — wire
// bytes grow with the perimeter √(elems/rank), not the area).
type unitCosts struct {
	flopsPerElemStep float64
	bytesPerElemStep float64
	msgsPerRankStep  float64
	wireUnit         float64 // wire bytes per rank-step per √(elems/rank)
}

func deriveUnits(points []obs.BenchScalingPoint) (unitCosts, error) {
	var u unitCosts
	if len(points) == 0 {
		return u, fmt.Errorf("scale: no measured points to derive unit costs from")
	}
	for _, p := range points {
		elemSteps := float64(6*p.Ne*p.Ne) * float64(p.Steps)
		rankSteps := float64(p.Ranks) * float64(p.Steps)
		epr := float64(6*p.Ne*p.Ne) / float64(p.Ranks)
		u.flopsPerElemStep += float64(p.Flops) / elemSteps
		u.bytesPerElemStep += float64(p.MemBytes) / elemSteps
		u.msgsPerRankStep += float64(p.Msgs) / rankSteps
		u.wireUnit += float64(p.WireBytes) / rankSteps / math.Sqrt(epr)
	}
	n := float64(len(points))
	u.flopsPerElemStep /= n
	u.bytesPerElemStep /= n
	u.msgsPerRankStep /= n
	u.wireUnit /= n
	return u, nil
}

// Extrapolate produces the NGGPS-style SYPD-vs-resolution table: for
// each target ne it sizes the full-machine run (one rank per core
// group, capped at one element per rank), bills ONE rank's per-step
// workload through the calibrated coefficients, and converts the
// predicted step wall time to SYPD. The calibrated column therefore
// answers "a machine built of this container's measured core, one per
// rank" — the honest extrapolation from a one-box campaign; the
// ModelSYPD column re-asks the analytic TaihuLight machine model
// (spec/lit constants, §7.6 overlap on) at the same configuration, so
// the table shows measured-calibrated and modeled predictions side by
// side the way the paper's Fig. 10 compares measured points against its
// model curve.
func Extrapolate(fit obs.BenchScalingFit, points []obs.BenchScalingPoint,
	nes []int, machineRanks, nlev, qsize int) ([]obs.BenchScalingProjection, error) {
	if machineRanks < 1 {
		machineRanks = perf.TotalCGs
	}
	u, err := deriveUnits(points)
	if err != nil {
		return nil, err
	}
	var rows []obs.BenchScalingProjection
	for _, ne := range nes {
		if ne < 1 {
			return nil, fmt.Errorf("scale: extrapolation ne %d", ne)
		}
		elems := 6 * ne * ne
		ranks := machineRanks
		if elems < ranks {
			ranks = elems
		}
		epr := float64(elems) / float64(ranks)
		perStepNs := PredictPerStepNs(fit,
			u.flopsPerElemStep*epr,
			u.bytesPerElemStep*epr,
			u.msgsPerRankStep,
			u.wireUnit*math.Sqrt(epr),
		)
		if perStepNs <= 0 || math.IsNaN(perStepNs) || math.IsInf(perStepNs, 0) {
			return nil, fmt.Errorf("scale: calibrated step time %v ns at ne=%d — fit not usable for extrapolation", perStepNs, ne)
		}
		dt := dycore.DefaultConfig(ne).Dt
		sypd := obs.SYPD(dt, perStepNs*1e-9)

		hc := perf.HOMMEConfig{Ne: ne, Np: 4, Nlev: nlev, Qsize: qsize, RemapFreq: 2, Dt: dt}
		stepSec, _ := hc.StepTime(ranks, true)
		modelSypd := obs.SYPD(dt, stepSec)

		rows = append(rows, obs.BenchScalingProjection{
			Ne:        ne,
			ResKm:     3000 / float64(ne),
			Ranks:     ranks,
			SYPD:      sypd,
			ModelSYPD: modelSypd,
		})
	}
	return rows, nil
}
