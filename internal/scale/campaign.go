// Package scale is the measured scaling-campaign subsystem: it runs
// real goroutine-rank sweeps of the distributed driver over ne × ranks
// grids on one box, bills every configuration against a per-rank memory
// budget before launching it, attributes wall time to phases
// (dynamics kernels / halo exchange / collectives) from the unified
// observability counters, and calibrates the analytic machine model
// against the measured points to produce the paper's Fig. 10 /
// NGGPS-style SYPD-vs-resolution extrapolation table.
//
// The campaign measures the real runtime — partitioned mesh, per-rank
// engines, async halo exchange, recursive-doubling collectives — not a
// simulator; the only modeled step is the final extrapolation, whose
// coefficients come from least squares over the measured sweep
// (scale.Fit) rather than the spec-sheet constants internal/perf uses.
package scale

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"swcam/internal/core"
	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/footprint"
	"swcam/internal/obs"
)

// Config shapes a campaign.
type Config struct {
	Backend exec.Backend
	Nlev    int
	Qsize   int
	Steps   int  // dynamics steps per measured point
	Overlap bool // run the §7.6 boundary-first exchange
	// BudgetBytes is the per-rank resident-memory budget (prognostic
	// state + pooled step scratch, accounted by internal/footprint). A
	// configuration whose busiest rank would exceed it is refused
	// before any allocation happens. Zero means no budget.
	BudgetBytes int64
	// WeakElemsPerRank is the weak-scaling curve's target local load;
	// WeakSweep picks ne for each rank count to hold it. Zero defaults
	// to 6.
	WeakElemsPerRank int
}

// Campaign runs measured sweeps under one Config.
type Campaign struct {
	Cfg Config
}

// ErrBudget reports a configuration refused by the memory budget.
type ErrBudget struct {
	Ne, Ranks    int
	ElemsPerRank int
	NeedBytes    int64
	BudgetBytes  int64
}

func (e *ErrBudget) Error() string {
	return fmt.Sprintf("scale: ne=%d ranks=%d needs %d bytes/rank (%d elems), budget %d",
		e.Ne, e.Ranks, e.NeedBytes, e.ElemsPerRank, e.BudgetBytes)
}

// dycoreCfg builds the solver config for one sweep point.
func (c *Campaign) dycoreCfg(ne int) dycore.Config {
	cfg := dycore.DefaultConfig(ne)
	if c.Cfg.Nlev > 0 {
		cfg.Nlev = c.Cfg.Nlev
	}
	if c.Cfg.Qsize > 0 {
		cfg.Qsize = c.Cfg.Qsize
	}
	return cfg
}

// CheckBudget bills (ne, ranks) against the per-rank budget without
// running anything: the busiest rank holds ceil(elems/ranks) elements.
func (c *Campaign) CheckBudget(ne, ranks int) error {
	cfg := c.dycoreCfg(ne)
	elems := 6 * ne * ne
	epr := (elems + ranks - 1) / ranks
	if c.Cfg.BudgetBytes <= 0 {
		return nil
	}
	need := int64(footprint.RankState(cfg.Np, cfg.Nlev, cfg.Qsize, epr).Total())
	if need > c.Cfg.BudgetBytes {
		return &ErrBudget{Ne: ne, Ranks: ranks, ElemsPerRank: epr,
			NeedBytes: need, BudgetBytes: c.Cfg.BudgetBytes}
	}
	return nil
}

// RunPoint measures one (ne, ranks) configuration: a real distributed
// run of Cfg.Steps dynamics steps, instrumented, returning the BENCH
// scaling point with its per-phase attribution. The per-rank budget is
// enforced before the job is built.
func (c *Campaign) RunPoint(ne, ranks int) (obs.BenchScalingPoint, error) {
	var pt obs.BenchScalingPoint
	cfg := c.dycoreCfg(ne)
	elems := 6 * ne * ne
	if ranks > elems {
		return pt, fmt.Errorf("scale: ne=%d has %d elements for %d ranks", ne, elems, ranks)
	}
	if err := c.CheckBudget(ne, ranks); err != nil {
		return pt, err
	}
	steps := c.Cfg.Steps
	if steps < 1 {
		steps = 1
	}

	job, err := core.NewParallelJob(cfg, c.Cfg.Backend, c.Cfg.Overlap, ranks)
	if err != nil {
		return pt, err
	}
	// Run the blowup watchdog every step: its allreduce is the
	// collective the campaign's "coll" phase bucket measures, and
	// production supervised runs step with it on.
	job.CheckEvery = 1
	probe := obs.NewProbe()
	job.Instrument(probe)

	s, err := dycore.NewSolver(cfg)
	if err != nil {
		return pt, err
	}
	global := s.NewState()
	s.InitBaroclinicWave(global)
	for q := 0; q < cfg.Qsize; q++ {
		s.InitCosineBellTracer(global, q, math.Pi*float64(q+1)/2, 0.3, 0.6)
	}
	local := job.Scatter(global)

	t0 := time.Now()
	stats, err := job.RunChecked(local, steps)
	wall := time.Since(t0)
	if err != nil {
		return pt, fmt.Errorf("scale: ne=%d ranks=%d: %w", ne, ranks, err)
	}

	var dynNs int64
	for _, ks := range probe.K().Stats() {
		dynNs += ks.Ns
	}
	epr := 0
	for r := 0; r < ranks; r++ {
		if n := job.Plans[r].NLocal(); n > epr {
			epr = n
		}
	}
	reg := probe.R()
	pt = obs.BenchScalingPoint{
		Ne:           ne,
		Ranks:        ranks,
		ElemsPerRank: epr,
		Steps:        steps,
		WallNs:       wall.Nanoseconds(),
		PerStepNs:    wall.Nanoseconds() / int64(steps),
		DynNs:        dynNs,
		HaloNs:       reg.CounterValue("halo.ns"),
		CollNs:       reg.CounterValue("mpirt.coll.ns"),
		WireBytes:    stats.Halo.WireBytes,
		Msgs:         stats.Halo.Msgs,
		RankBytes:    int64(footprint.RankState(cfg.Np, cfg.Nlev, cfg.Qsize, epr).Total()),
		SYPD:         obs.SYPD(float64(steps)*cfg.Dt, wall.Seconds()),
		Flops:        stats.Cost.Flops(),
		MemBytes:     stats.Cost.MemBytes,
	}
	return pt, nil
}

// StrongSweep holds ne fixed and scales the rank count — the strong-
// scaling curve. Rank counts exceeding the element count or the memory
// budget are skipped (reported via the skip callback when non-nil).
func (c *Campaign) StrongSweep(ne int, ranks []int, skip func(ranks int, why error)) ([]obs.BenchScalingPoint, error) {
	var out []obs.BenchScalingPoint
	for _, r := range ranks {
		pt, err := c.RunPoint(ne, r)
		if err != nil {
			var be *ErrBudget
			if errors.As(err, &be) || r > 6*ne*ne {
				if skip != nil {
					skip(r, err)
				}
				continue
			}
			return out, err
		}
		out = append(out, pt)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scale: strong sweep at ne=%d measured no points", ne)
	}
	return out, nil
}

// WeakSweep holds the per-rank load near WeakElemsPerRank and scales
// ranks, picking for each rank count the ne whose cube-sphere comes
// closest to ranks × target elements. Duplicate (ne, ranks) pairs after
// rounding are dropped.
func (c *Campaign) WeakSweep(ranks []int, skip func(ranks int, why error)) ([]obs.BenchScalingPoint, error) {
	target := c.Cfg.WeakElemsPerRank
	if target < 1 {
		target = 6
	}
	type key struct{ ne, ranks int }
	seen := make(map[key]bool)
	var out []obs.BenchScalingPoint
	for _, r := range ranks {
		// 6·ne² ≈ r·target
		ne := int(math.Round(math.Sqrt(float64(r*target) / 6)))
		if ne < 2 {
			ne = 2
		}
		for r > 6*ne*ne {
			ne++ // every rank needs at least one element
		}
		k := key{ne, r}
		if seen[k] {
			continue
		}
		seen[k] = true
		pt, err := c.RunPoint(ne, r)
		if err != nil {
			var be *ErrBudget
			if errors.As(err, &be) {
				if skip != nil {
					skip(r, err)
				}
				continue
			}
			return out, err
		}
		out = append(out, pt)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scale: weak sweep measured no points")
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Ranks < out[b].Ranks })
	return out, nil
}
