package scale

import (
	"fmt"
	"math"

	"swcam/internal/obs"
)

// Fit least-squares calibrates the additive cost model
//
//	perStepWallNs = a·flops + c·msgs + d·wireBytes + e
//
// over the measured points — the compute / message-latency /
// wire-bandwidth / fixed-overhead decomposition the analytic machine
// model uses. The predictors are per-step TOTALS across ranks: on one
// box the goroutine ranks share the same cores, so wall time tracks
// total work, and the coefficients are this box's effective rates
// (a ≈ ns per accounted flop through the whole driver, d ≈ ns per halo
// byte, e ≈ fixed per-step overhead). Kernel memory bytes are NOT a
// separate predictor: at fixed nlev/qsize they are exactly proportional
// to flops across any sweep, so the normal equations would be singular
// — the memory cost is folded into the effective ns/flop, and the
// reported NsPerByte is zero. The coefficients are cost rates, so they
// are constrained non-negative: the normal equations are solved by an
// active-set non-negative least squares (solve, drop the most negative
// coefficient to zero, re-solve the reduced system), which keeps a
// noisy sweep from fitting a negative latency or fixed term that would
// predict negative step times downstream. At least 5 points with
// genuinely varying predictors are required, and more are better.
func Fit(points []obs.BenchScalingPoint) (obs.BenchScalingFit, error) {
	var fit obs.BenchScalingFit
	if len(points) < 5 {
		return fit, fmt.Errorf("scale: fit needs >= 5 measured points, have %d", len(points))
	}
	const k = 4
	var ata [k][k]float64
	var atb [k]float64
	predictors := func(p obs.BenchScalingPoint) [k]float64 {
		steps := float64(p.Steps)
		return [k]float64{
			float64(p.Flops) / steps,
			float64(p.Msgs) / steps,
			float64(p.WireBytes) / steps,
			1,
		}
	}
	for _, p := range points {
		x := predictors(p)
		y := float64(p.PerStepNs)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				ata[i][j] += x[i] * x[j]
			}
			atb[i] += x[i] * y
		}
	}
	coef, err := nnlsSolve(ata, atb)
	if err != nil {
		return fit, err
	}
	fit = obs.BenchScalingFit{
		NsPerFlop:     coef[0],
		NsPerMsg:      coef[1],
		NsPerWireByte: coef[2],
		FixedNs:       coef[3],
		Points:        len(points),
	}
	// RMS relative residual: how much of the measured curve the linear
	// model explains.
	var ss float64
	for _, p := range points {
		x := predictors(p)
		pred := 0.0
		for i := 0; i < k; i++ {
			pred += coef[i] * x[i]
		}
		rel := (pred - float64(p.PerStepNs)) / float64(p.PerStepNs)
		ss += rel * rel
	}
	fit.ResidualRMS = math.Sqrt(ss / float64(len(points)))
	for _, v := range []float64{fit.NsPerFlop, fit.NsPerByte, fit.NsPerMsg, fit.NsPerWireByte, fit.FixedNs, fit.ResidualRMS} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fit, fmt.Errorf("scale: degenerate fit (coefficient NaN/Inf) — predictors do not vary enough")
		}
	}
	return fit, nil
}

// PredictPerStepNs evaluates a fitted model on per-step workload totals.
func PredictPerStepNs(fit obs.BenchScalingFit, flops, memBytes, msgs, wireBytes float64) float64 {
	return fit.NsPerFlop*flops + fit.NsPerByte*memBytes +
		fit.NsPerMsg*msgs + fit.NsPerWireByte*wireBytes + fit.FixedNs
}

// nnlsSolve solves the 4-predictor normal equations subject to
// coefficients >= 0, by the classic active-set scheme: solve the
// unconstrained system over the active columns, and while any solved
// coefficient is negative, clamp the most negative one to zero (drop
// its column) and re-solve. Terminates in at most 4 rounds.
func nnlsSolve(ata [4][4]float64, atb [4]float64) ([4]float64, error) {
	const k = 4
	active := [k]bool{true, true, true, true}
	var coef [k]float64
	for {
		var idx []int
		for i := 0; i < k; i++ {
			if active[i] {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			return coef, fmt.Errorf("scale: every cost coefficient fit negative — measurements do not follow an additive cost model")
		}
		m := len(idx)
		a := make([][]float64, m)
		b := make([]float64, m)
		for r := 0; r < m; r++ {
			a[r] = make([]float64, m)
			for c := 0; c < m; c++ {
				a[r][c] = ata[idx[r]][idx[c]]
			}
			b[r] = atb[idx[r]]
		}
		x, bad := gauss(a, b)
		if bad >= 0 {
			return coef, fmt.Errorf("scale: singular normal equations (column %d) — predictors are collinear", idx[bad])
		}
		coef = [k]float64{}
		worst, worstAt := 0.0, -1
		for r, i := range idx {
			coef[i] = x[r]
			if x[r] < worst {
				worst, worstAt = x[r], i
			}
		}
		if worstAt < 0 {
			return coef, nil
		}
		active[worstAt] = false
	}
}

// gauss solves a dense m×m system in place by Gaussian elimination with
// partial pivoting. On a (near-)singular pivot it returns the offending
// column index; -1 means success.
func gauss(a [][]float64, b []float64) ([]float64, int) {
	m := len(b)
	for col := 0; col < m; col++ {
		piv := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-300 {
			return nil, col
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < m; r++ {
			f := a[r][col] / a[col][col]
			for cc := col; cc < m; cc++ {
				a[r][cc] -= f * a[col][cc]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, m)
	for r := m - 1; r >= 0; r-- {
		s := b[r]
		for cc := r + 1; cc < m; cc++ {
			s -= a[r][cc] * x[cc]
		}
		x[r] = s / a[r][r]
	}
	return x, -1
}
