// Work-stealing column scheduler: physics columns are embarrassingly
// parallel, but their cost is not uniform — convection triggers only
// where CAPE exceeds the threshold, so a static chunking can leave one
// worker grinding through a storm track while the rest idle (the
// imbalanced-column problem of the Xeon-Phi convection port,
// arXiv:1711.00289). The pool hands each worker a contiguous range of
// chunks up front and lets idle workers steal the far half of a
// victim's remaining range, so imbalance costs one steal instead of a
// serialized tail.
//
// A deque here is a single packed 64-bit word (hi<<32 | lo) holding the
// worker's remaining chunk range [lo, hi). The owner pops lo with a
// CAS; a thief CASes the top half [mid, hi) away, executes mid, and
// stores the rest as its own (empty) deque's new range. Correctness
// does not need ABA protection: a CAS succeeds only when the word
// currently equals the loaded value, and every transition is a pure
// function of that value which removes a subrange of the range the word
// *currently* encodes — chunks present in the live word are by
// construction pending, so a successful CAS always removes pending
// chunks exactly once. Ranges are stored only into the thief's own
// empty deque (nothing is overwritten), so no chunk is lost either.
//
// Determinism: the pool only decides *who* runs a chunk and *when* —
// what each chunk computes, and how per-chunk results are merged, is
// the caller's business. Callers that store per-chunk partials and
// merge them in ascending chunk order get results bit-identical to
// serial for every worker count and every steal schedule (see
// core.Model.applyPhysics).
package physics

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"swcam/internal/obs"
)

// DefaultStealWorkers is the pool size used for "auto" (-phys-workers
// 0): one worker per CPU, capped so toy configurations don't drown in
// goroutine overhead.
func DefaultStealWorkers() int {
	n := runtime.NumCPU()
	if n > 16 {
		n = 16
	}
	if n < 1 {
		n = 1
	}
	return n
}

// dequeSlot is one worker's range deque: a packed [lo, hi) chunk range
// in a single atomic word, padded to a cache line so neighbouring
// workers' CASes don't false-share.
type dequeSlot struct {
	bits atomic.Uint64
	_    [56]byte
}

func packRange(lo, hi int) uint64 { return uint64(uint32(hi))<<32 | uint64(uint32(lo)) }

func unpackRange(b uint64) (lo, hi int) { return int(uint32(b)), int(uint32(b >> 32)) }

// pop takes the owner's next chunk from the bottom of the range.
func (d *dequeSlot) pop() (int, bool) {
	for {
		b := d.bits.Load()
		lo, hi := unpackRange(b)
		if lo >= hi {
			return 0, false
		}
		if d.bits.CompareAndSwap(b, packRange(lo+1, hi)) {
			return lo, true
		}
	}
}

// stealHalf removes the top half (rounded up, so a 1-chunk range is
// stealable) of the victim's range and returns it.
func (d *dequeSlot) stealHalf() (lo, hi int, ok bool) {
	for {
		b := d.bits.Load()
		l, h := unpackRange(b)
		n := h - l
		if n <= 0 {
			return 0, 0, false
		}
		mid := h - (n+1)/2
		if d.bits.CompareAndSwap(b, packRange(l, mid)) {
			return mid, h, true
		}
	}
}

// workerStats is one worker's per-run ledger, padded to a cache line.
type workerStats struct {
	chunks   int64
	steals   int64
	attempts int64
	busyNs   int64
	_        [32]byte
}

// StealStats is a snapshot of a pool's cumulative activity.
type StealStats struct {
	Runs          int64 // Run invocations with at least one chunk
	Chunks        int64 // chunks executed, all workers
	Steals        int64 // successful steals
	StealAttempts int64 // steal probes, successful or not
	WorkerChunks  []int64
	WorkerBusyNs  []int64 // wall time inside chunk functions, per worker
}

// StealPool runs chunked work across a fixed set of workers with
// steal-half load balancing. One pool is built per consumer (per rank,
// per model) and reused every physics step; Run is not safe to call
// concurrently with itself, matching how one rank steps serially.
type StealPool struct {
	workers int
	seed    uint64 // perturbs the victim-scan order (test schedules)
	deques  []dequeSlot
	stats   []workerStats
	panics  []any
	fn      func(worker, chunk int)
	active  int // workers participating in the current Run
	wg      sync.WaitGroup

	// Cumulative totals, folded in by the coordinator after each Run.
	runs, totChunks, totSteals, totAttempts int64
	cumChunks, cumBusyNs                    []int64

	// Observability (nil = off; all sinks are nil-safe).
	obsWorkers  *obs.Gauge
	obsChunks   *obs.Counter
	obsSteals   *obs.Counter
	obsAttempts *obs.Counter
	obsBusy     []*obs.Counter
	obsWChunks  []*obs.Counter
}

// NewStealPool builds a pool of n workers (n < 1 selects 1). The seed
// rotates each worker's victim-scan order, giving tests distinct steal
// schedules without touching results.
func NewStealPool(n int, seed uint64) *StealPool {
	if n < 1 {
		n = 1
	}
	return &StealPool{
		workers:   n,
		seed:      seed,
		deques:    make([]dequeSlot, n),
		stats:     make([]workerStats, n),
		panics:    make([]any, n),
		cumChunks: make([]int64, n),
		cumBusyNs: make([]int64, n),
	}
}

// Workers reports the pool size.
func (p *StealPool) Workers() int { return p.workers }

// Seed reports the victim-scan seed.
func (p *StealPool) Seed() uint64 { return p.seed }

// Stats snapshots the cumulative activity since the pool was built.
func (p *StealPool) Stats() StealStats {
	s := StealStats{
		Runs: p.runs, Chunks: p.totChunks,
		Steals: p.totSteals, StealAttempts: p.totAttempts,
		WorkerChunks: make([]int64, p.workers),
		WorkerBusyNs: make([]int64, p.workers),
	}
	copy(s.WorkerChunks, p.cumChunks)
	copy(s.WorkerBusyNs, p.cumBusyNs)
	return s
}

// Instrument wires the pool's counters into the unified registry:
// physics.workers (gauge), physics.chunks / physics.steals /
// physics.steal.attempts, and per-worker physics.worker_busy_ns.<w> /
// physics.worker_chunks.<w>. A nil registry detaches them.
func (p *StealPool) Instrument(reg *obs.Registry) {
	if reg == nil {
		p.obsWorkers, p.obsChunks, p.obsSteals, p.obsAttempts = nil, nil, nil, nil
		p.obsBusy, p.obsWChunks = nil, nil
		return
	}
	p.obsWorkers = reg.Gauge("physics.workers")
	p.obsChunks = reg.Counter("physics.chunks")
	p.obsSteals = reg.Counter("physics.steals")
	p.obsAttempts = reg.Counter("physics.steal.attempts")
	p.obsBusy = make([]*obs.Counter, p.workers)
	p.obsWChunks = make([]*obs.Counter, p.workers)
	for w := 0; w < p.workers; w++ {
		p.obsBusy[w] = reg.Counter(fmt.Sprintf("physics.worker_busy_ns.%d", w))
		p.obsWChunks[w] = reg.Counter(fmt.Sprintf("physics.worker_chunks.%d", w))
	}
	p.obsWorkers.Set(float64(p.workers))
}

// Run executes fn(worker, chunk) for every chunk in [0, nchunks), on at
// most Workers() concurrent workers. Each worker owns private state
// indexed by its worker id (column scratch, partial slots), so fn sees
// a stable worker index even when its chunk was stolen. A panic in any
// chunk — owned or stolen — is re-raised on the caller's goroutine
// after the remaining workers drain, so a failed chunk fails the whole
// call cleanly instead of leaking goroutines.
func (p *StealPool) Run(nchunks int, fn func(worker, chunk int)) {
	if nchunks <= 0 {
		return
	}
	active := p.workers
	if active > nchunks {
		active = nchunks
	}
	for w := range p.stats {
		p.stats[w] = workerStats{}
	}
	// Contiguous even split, remainder to the first workers — the same
	// chunks end up everywhere for every worker count; only ownership
	// differs, and ownership is invisible to a fixed-order merge.
	base, rem := nchunks/active, nchunks%active
	lo := 0
	for w := 0; w < p.workers; w++ {
		if w >= active {
			p.deques[w].bits.Store(0)
			continue
		}
		n := base
		if w < rem {
			n++
		}
		p.deques[w].bits.Store(packRange(lo, lo+n))
		lo += n
	}
	p.fn = fn
	p.active = active

	if active == 1 {
		// Serial fast path: no goroutines, no WaitGroup — panics
		// propagate natively.
		p.runWorker(0)
		p.finishRun()
		return
	}
	p.wg.Add(active)
	for w := 1; w < active; w++ {
		go p.workerMain(w)
	}
	p.workerMain(0)
	p.wg.Wait()
	p.finishRun()
	for w, pc := range p.panics {
		if pc != nil {
			p.panics[w] = nil
			panic(pc)
		}
	}
}

// workerMain is one pooled worker: park panics for the coordinator.
func (p *StealPool) workerMain(w int) {
	defer p.wg.Done()
	defer func() { p.panics[w] = recover() }()
	p.runWorker(w)
}

// runWorker drains the worker's own deque, then steals until no victim
// has work left.
func (p *StealPool) runWorker(w int) {
	st := &p.stats[w]
	for {
		ch, ok := p.deques[w].pop()
		if !ok {
			ch, ok = p.steal(w)
		}
		if !ok {
			return
		}
		t0 := time.Now()
		p.fn(w, ch)
		st.busyNs += time.Since(t0).Nanoseconds()
		st.chunks++
	}
}

// steal scans the other workers' deques (in a seed-rotated order) for a
// non-empty range and takes its top half: one chunk is returned for
// immediate execution, the rest becomes the thief's own range — so a
// stolen backlog keeps redistributing instead of pinning to one thief.
// Two full scans (with a yield between) bound the termination race
// where the last range is mid-steal; a worker that then exits early
// only forfeits utilization, never work, because the range it missed is
// already owned by another live worker.
func (p *StealPool) steal(w int) (int, bool) {
	n := p.active
	if n <= 1 {
		return 0, false
	}
	st := &p.stats[w]
	start := int((p.seed + uint64(w)*0x9e3779b97f4a7c15) % uint64(n-1))
	for scan := 0; scan < 2; scan++ {
		for i := 0; i < n-1; i++ {
			v := (w + 1 + (start+i)%(n-1)) % n
			st.attempts++
			if lo, hi, ok := p.deques[v].stealHalf(); ok {
				st.steals++
				if lo+1 < hi {
					// Own deque is empty (pop failed and nobody can
					// push to it), so the store cannot discard chunks.
					p.deques[w].bits.Store(packRange(lo+1, hi))
				}
				return lo, true
			}
		}
		runtime.Gosched()
	}
	return 0, false
}

// finishRun folds the per-worker ledgers into the cumulative totals and
// the attached registry.
func (p *StealPool) finishRun() {
	p.fn = nil
	p.runs++
	for w := range p.stats {
		st := &p.stats[w]
		p.totChunks += st.chunks
		p.totSteals += st.steals
		p.totAttempts += st.attempts
		p.cumChunks[w] += st.chunks
		p.cumBusyNs[w] += st.busyNs
		if p.obsBusy != nil {
			p.obsBusy[w].Add(st.busyNs)
			p.obsWChunks[w].Add(st.chunks)
		}
		p.obsChunks.Add(st.chunks)
		p.obsSteals.Add(st.steals)
		p.obsAttempts.Add(st.attempts)
	}
}
