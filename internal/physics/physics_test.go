package physics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testColumn builds a realistic tropical column: warm, moist below,
// dry above, small winds.
func testColumn(nlev int, lat float64) *Column {
	c := NewColumn(nlev)
	c.Lat = lat
	c.Ps = P0
	c.Ts = 300
	for k := 0; k < nlev; k++ {
		frac := (float64(k) + 0.5) / float64(nlev)
		c.P[k] = 200 + frac*(P0-200)
		c.DP[k] = (P0 - 200) / float64(nlev)
		height := -7000 * math.Log(c.P[k]/P0)
		c.T[k] = 300 - 6.5e-3*height
		if c.T[k] < 200 {
			c.T[k] = 200
		}
		c.Qv[k] = 0.8 * QSat(c.T[k], c.P[k]) * math.Exp(-height/3000)
		c.U[k] = 5
		c.V[k] = -2
	}
	return c
}

func TestESatKnownValues(t *testing.T) {
	// es(0C) = 611.2 Pa by construction; es(20C) ~ 2339 Pa; es(30C) ~ 4247 Pa.
	if e := ESat(273.15); math.Abs(e-611.2) > 0.1 {
		t.Errorf("es(0C) = %v", e)
	}
	if e := ESat(293.15); math.Abs(e-2339)/2339 > 0.01 {
		t.Errorf("es(20C) = %v", e)
	}
	if e := ESat(303.15); math.Abs(e-4247)/4247 > 0.01 {
		t.Errorf("es(30C) = %v", e)
	}
}

func TestQSatMonotone(t *testing.T) {
	f := func(raw uint8) bool {
		tk := 210 + float64(raw)/255*100 // 210..310 K
		return QSat(tk+1, 90000) > QSat(tk, 90000) &&
			QSat(tk, 80000) > QSat(tk, 90000) // lower p -> higher qsat
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTridiagSolver(t *testing.T) {
	// Random diagonally dominant systems vs direct verification.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		d := make([]float64, n)
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64()
			c[i] = rng.NormFloat64()
			b[i] = 4 + math.Abs(a[i]) + math.Abs(c[i]) // dominant
			x[i] = rng.NormFloat64() * 10
		}
		// Build d = A x.
		for i := 0; i < n; i++ {
			d[i] = b[i] * x[i]
			if i > 0 {
				d[i] += a[i] * x[i-1]
			}
			if i < n-1 {
				d[i] += c[i] * x[i+1]
			}
		}
		SolveTridiag(a, b, c, d)
		for i := 0; i < n; i++ {
			if math.Abs(d[i]-x[i]) > 1e-9*(1+math.Abs(x[i])) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, d[i], x[i])
			}
		}
	}
}

func TestRadiationCoolsWarmAtmosphere(t *testing.T) {
	// With a cold surface under a warm atmosphere, longwave must cool
	// the column interior and OLR must be positive.
	c := testColumn(20, 0.2)
	c.Ts = 240 // cold surface: no strong upward flux to heat the air
	before := c.DryEnthalpy()
	olr := GrayRadiation(c, DefaultRadParams(), 600)
	if olr <= 0 {
		t.Fatalf("OLR = %v", olr)
	}
	// Subtract the shortwave deposit to isolate longwave cooling.
	sw := DefaultRadParams().Insolation(c.Lat) * 600
	after := c.DryEnthalpy()
	if after-before-sw >= 0 {
		t.Errorf("longwave did not cool: dE = %v (sw %v)", after-before, sw)
	}
}

func TestRadiationDrivesTowardEquilibrium(t *testing.T) {
	// Integrating a single column for many steps must approach a steady
	// temperature profile (radiative equilibrium), not blow up.
	c := testColumn(20, 0.0)
	rp := DefaultRadParams()
	var prev float64
	for i := 0; i < 2000; i++ {
		GrayRadiation(c, rp, 1800)
		// Crude convective stabilization so the column cannot develop
		// an unphysical superadiabat that blows up the Planck terms.
		for k := 1; k < c.Nlev; k++ {
			if c.T[k] < 150 {
				c.T[k] = 150
			}
			if c.T[k] > 400 {
				c.T[k] = 400
			}
		}
		prev = c.T[c.Nlev-1]
	}
	if math.IsNaN(prev) || prev < 150 || prev > 400 {
		t.Fatalf("radiative equilibrium unstable: T_sfc = %v", prev)
	}
}

func TestPBLConservesEnergyWithoutSurface(t *testing.T) {
	// With the surface exchange disabled (Cd=0) diffusion must conserve
	// the column integrals of dry static energy, Qv, U, V. (Raw T is not
	// conserved: heat diffuses as cp*T + g*z.)
	c := testColumn(16, 0.3)
	pp := DefaultPBLParams()
	pp.Cd = 0
	massInt := func(x []float64) float64 {
		tot := 0.0
		for k := range x {
			tot += x[k] * c.DP[k]
		}
		return tot
	}
	dse := func() float64 {
		// Reconstruct z the same way the scheme does.
		n := c.Nlev
		z := make([]float64, n)
		zInt := 0.0
		for k := n - 1; k >= 0; k-- {
			rho := c.P[k] / (Rd * c.T[k])
			half := c.DP[k] / (2 * Gravit * rho)
			z[k] = zInt + half
			zInt += 2 * half
		}
		tot := 0.0
		for k := 0; k < n; k++ {
			tot += (Cp*c.T[k] + Gravit*z[k]) * c.DP[k]
		}
		return tot
	}
	s0, q0, u0 := dse(), massInt(c.Qv), massInt(c.U)
	PBLDiffusion(c, pp, 1800)
	// z changes slightly with the new T, so DSE conservation holds to
	// the z-freeze approximation, not roundoff.
	if d := math.Abs(dse() - s0); d > 1e-4*s0 {
		t.Errorf("diffusion changed dry static energy by %g of %g", d, s0)
	}
	if d := math.Abs(massInt(c.Qv) - q0); d > 1e-10*(1+q0) {
		t.Errorf("diffusion changed moisture integral by %g", d)
	}
	if d := math.Abs(massInt(c.U) - u0); d > 1e-8*(1+math.Abs(u0)) {
		t.Errorf("diffusion changed momentum integral by %g", d)
	}
}

func TestPBLSmoothsGradients(t *testing.T) {
	c := testColumn(16, 0.3)
	// Sharp kink in the boundary layer.
	c.T[14] += 5
	before := math.Abs(c.T[14] - (c.T[13]+c.T[15])/2)
	PBLDiffusion(c, DefaultPBLParams(), 1800)
	after := math.Abs(c.T[14] - (c.T[13]+c.T[15])/2)
	if after >= before {
		t.Errorf("diffusion did not smooth: kink %v -> %v", before, after)
	}
}

func TestPBLWarmSurfaceHeatsColumn(t *testing.T) {
	c := testColumn(16, 0.0)
	c.Ts = c.T[15] + 10
	before := c.T[15]
	shf, lhf := PBLDiffusion(c, DefaultPBLParams(), 1800)
	if c.T[15] <= before {
		t.Error("warm surface did not heat the lowest layer")
	}
	if shf <= 0 {
		t.Errorf("sensible heat flux = %v, want positive", shf)
	}
	if lhf <= 0 {
		t.Errorf("latent heat flux = %v, want positive over saturated surface", lhf)
	}
}

func TestBettsMillerConservesMoistEnthalpy(t *testing.T) {
	c := testColumn(20, 0.1)
	// Destabilize: heat and moisten the boundary layer strongly.
	c.T[19] += 8
	c.Qv[19] = 0.9 * QSat(c.T[19], c.P[19])
	if CAPE(c) <= 0 {
		t.Skip("test column not unstable; adjust setup")
	}
	before := c.MoistEnthalpy()
	precip := BettsMiller(c, DefaultConvParams(), 1800)
	after := c.MoistEnthalpy()
	// Precipitated water removes Lv*P of latent energy from the moist
	// static energy budget (it leaves as liquid).
	if rel := math.Abs(after+Lv*precip*Gravit/1-before) / before; rel > 1e-3 {
		// Precip is kg/m^2; column integrals are per DP/g: compare in
		// consistent units below instead.
		diff := (after - before) + Lv*precip
		if math.Abs(diff)/before > 1e-6 {
			t.Errorf("convection broke enthalpy: drift %g of %g", diff, before)
		}
	}
	if precip < 0 {
		t.Errorf("negative convective precipitation %v", precip)
	}
}

func TestBettsMillerReducesCAPE(t *testing.T) {
	c := testColumn(20, 0.1)
	c.T[19] += 8
	c.Qv[19] = 0.95 * QSat(c.T[19], c.P[19])
	before := CAPE(c)
	if before < DefaultConvParams().MinCAPE {
		t.Skip("column not unstable")
	}
	// Several adjustment steps.
	for i := 0; i < 10; i++ {
		BettsMiller(c, DefaultConvParams(), 1800)
	}
	after := CAPE(c)
	if after >= before {
		t.Errorf("convection did not reduce CAPE: %v -> %v", before, after)
	}
}

func TestStableColumnNoConvection(t *testing.T) {
	c := testColumn(20, 0.3)
	// Strongly stable: isothermal and dry.
	for k := range c.T {
		c.T[k] = 260
		c.Qv[k] = 1e-4
	}
	if p := BettsMiller(c, DefaultConvParams(), 1800); p != 0 {
		t.Errorf("stable column produced precip %v", p)
	}
}

func TestKesslerConservesWater(t *testing.T) {
	c := testColumn(20, 0.1)
	// Supersaturate a mid-level layer and add cloud.
	c.Qv[10] = 1.3 * QSat(c.T[10], c.P[10])
	c.Qc[12] = 2e-3
	before := c.ColumnWater()
	precip := Kessler(c, DefaultMicroParams(), 1800)
	after := c.ColumnWater()
	if d := math.Abs(before - after - precip); d > 1e-10*(1+before) {
		t.Errorf("water not conserved: before %v, after %v, precip %v", before, after, precip)
	}
	if precip <= 0 {
		t.Error("supersaturated column produced no precipitation")
	}
}

func TestKesslerConservesMoistEnthalpy(t *testing.T) {
	c := testColumn(20, 0.1)
	c.Qv[10] = 1.3 * QSat(c.T[10], c.P[10])
	before := c.MoistEnthalpy()
	// Kessler moves vapor<->liquid with latent heating; liquid leaving
	// as rain carries no cp*T or Lv*qv, so the invariant is
	// moist enthalpy + Lv*(rain still in column) — after full fallout
	// the budget changes only through Lv*precip already removed from Qv.
	Kessler(c, DefaultMicroParams(), 1800)
	after := c.MoistEnthalpy()
	// Condensed mass m: Qv drops by m (-Lv*m) and T rises by Lv/Cp*m
	// (+Lv*m): net zero until the rain leaves. Fallout removes only
	// liquid, which carries no moist enthalpy, so the budget is exact.
	if rel := math.Abs(after-before) / before; rel > 1e-9 {
		t.Errorf("moist enthalpy drifted by %g relative", rel)
	}
}

func TestKesslerNoNegativeWater(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := testColumn(12, 0.2)
		for k := range c.Qv {
			c.Qv[k] = rng.Float64() * 0.03
			c.Qc[k] = rng.Float64() * 0.003
			c.Qr[k] = rng.Float64() * 0.003
		}
		Kessler(c, DefaultMicroParams(), 1800)
		for k := range c.Qv {
			if c.Qv[k] < 0 || c.Qc[k] < 0 || c.Qr[k] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHeldSuarezRelaxesTowardTEq(t *testing.T) {
	h := DefaultHSParams()
	c := testColumn(20, 0.8)
	// Push temperatures away from equilibrium.
	for k := range c.T {
		c.T[k] = h.TEq(c.Lat, c.P[k]) + 20
	}
	before := c.T[19] - h.TEq(c.Lat, c.P[19])
	for i := 0; i < 48; i++ {
		HeldSuarez(c, h, 1800)
	}
	after := c.T[19] - h.TEq(c.Lat, c.P[19])
	if math.Abs(after) >= math.Abs(before) {
		t.Errorf("HS did not relax toward equilibrium: %v -> %v", before, after)
	}
}

func TestHeldSuarezFrictionOnlyNearSurface(t *testing.T) {
	h := DefaultHSParams()
	c := testColumn(20, 0.3)
	uTop, uSfc := c.U[0], c.U[19]
	HeldSuarez(c, h, 1800)
	if c.U[0] != uTop {
		t.Error("friction applied above sigma_b")
	}
	if math.Abs(c.U[19]) >= math.Abs(uSfc) {
		t.Error("no surface friction")
	}
}

func TestHSTEqShape(t *testing.T) {
	h := DefaultHSParams()
	// Warmer at the equator than the pole at the surface.
	if h.TEq(0, P0) <= h.TEq(math.Pi/2, P0) {
		t.Error("equilibrium not warmer at the equator")
	}
	// Stratospheric floor respected.
	if h.TEq(0, 100) != h.TStrat {
		t.Error("stratospheric floor not applied")
	}
}

func TestSuiteModes(t *testing.T) {
	moist := NewMoistSuite()
	hs := NewHeldSuarezSuite()
	c1 := testColumn(16, 0.2)
	c2 := testColumn(16, 0.2)
	d1 := moist.Step(c1, 1800)
	_ = hs.Step(c2, 1800)
	if d1.OLR <= 0 {
		t.Error("moist suite produced no OLR")
	}
	for k := range c1.T {
		if math.IsNaN(c1.T[k]) || math.IsNaN(c2.T[k]) {
			t.Fatal("suite produced NaN")
		}
	}
}

func TestSuiteLongIntegrationStable(t *testing.T) {
	// A week of single-column integration with the full suite: bounded
	// temperatures, non-negative water, finite precipitation.
	s := NewMoistSuite()
	c := testColumn(20, 0.25)
	for i := 0; i < 7*48; i++ {
		s.Step(c, 1800)
		for k := range c.T {
			if c.T[k] < 100 || c.T[k] > 400 || math.IsNaN(c.T[k]) {
				t.Fatalf("step %d: T[%d] = %v", i, k, c.T[k])
			}
			if c.Qv[k] < 0 {
				t.Fatalf("step %d: negative vapor", i)
			}
		}
	}
	if c.Precip < 0 || math.IsNaN(c.Precip) {
		t.Fatalf("bad accumulated precip %v", c.Precip)
	}
}

// Greenhouse property of the gray atmosphere: with a more opaque
// longwave atmosphere, the same column cools less (stronger back
// radiation), so after one radiative step the lower troposphere is
// warmer than under the transparent atmosphere.
func TestRadiationGreenhouseEffect(t *testing.T) {
	run := func(tau float64) float64 {
		c := testColumn(20, 0.2)
		rp := DefaultRadParams()
		rp.TauEq, rp.TauPole = tau, tau/4
		for i := 0; i < 100; i++ {
			GrayRadiation(c, rp, 1800)
		}
		return c.T[18] // lower troposphere
	}
	thin := run(1.0)
	thick := run(8.0)
	if thick <= thin {
		t.Errorf("opaque atmosphere (%g K) not warmer than transparent (%g K)", thick, thin)
	}
}

// CAPE property: warming and moistening the lowest level can only
// increase the parcel's buoyancy integral.
func TestCAPEMonotoneInSurfaceWarmth(t *testing.T) {
	base := testColumn(20, 0.1)
	base.Qv[19] = 0.8 * QSat(base.T[19], base.P[19])
	c0 := CAPE(base)
	warm := testColumn(20, 0.1)
	warm.T[19] = base.T[19] + 3
	warm.Qv[19] = 0.8 * QSat(warm.T[19], warm.P[19])
	c1 := CAPE(warm)
	if c1 <= c0 {
		t.Errorf("warmer, moister boundary layer reduced CAPE: %g -> %g", c0, c1)
	}
}

// Insolation property: the annual-mean profile peaks at the equator.
func TestInsolationPeaksAtEquator(t *testing.T) {
	rp := DefaultRadParams()
	eq := rp.Insolation(0)
	for _, lat := range []float64{0.4, 0.8, 1.2, 1.5} {
		if rp.Insolation(lat) >= eq {
			t.Errorf("insolation at lat %.1f >= equator", lat)
		}
	}
}
