package physics

import (
	"time"

	"swcam/internal/obs"
)

// Suite bundles the schemes in CAM's calling order and applies them to
// one column per physics timestep. Two modes exist:
//
//   - Moist: radiation -> surface/PBL diffusion -> convection ->
//     microphysics, the CAM5-lite full suite.
//   - HeldSuarez: the idealized dry forcing alone, used for the
//     climatology validation (Figure 4) where CAM runs are compared
//     across hardware.
type Suite struct {
	Mode SuiteMode

	Rad   RadParams
	PBL   PBLParams
	Conv  ConvParams
	Micro MicroParams
	HS    HSParams

	// Observability hooks (nil = off): atomic counters, so the
	// chunk-parallel column workers record without coordination.
	obsCols *obs.Counter
	obsNs   *obs.Counter
}

// Instrument wires the suite's counters (physics.columns, physics.ns)
// into the unified registry. A nil registry detaches them.
func (s *Suite) Instrument(reg *obs.Registry) {
	s.obsCols = reg.Counter("physics.columns")
	s.obsNs = reg.Counter("physics.ns")
}

// SuiteMode selects the active scheme set.
type SuiteMode int

// Suite modes.
const (
	Moist SuiteMode = iota
	HeldSuarezMode
)

// NewMoistSuite returns the full CAM5-lite suite with defaults.
func NewMoistSuite() *Suite {
	return &Suite{
		Mode:  Moist,
		Rad:   DefaultRadParams(),
		PBL:   DefaultPBLParams(),
		Conv:  DefaultConvParams(),
		Micro: DefaultMicroParams(),
	}
}

// NewHeldSuarezSuite returns the idealized forcing suite.
func NewHeldSuarezSuite() *Suite {
	return &Suite{Mode: HeldSuarezMode, HS: DefaultHSParams()}
}

// Diag carries the per-column diagnostics of one physics step.
type Diag struct {
	OLR   float64 // outgoing longwave radiation, W/m^2
	SHF   float64 // surface sensible heat flux, W/m^2
	LHF   float64 // surface latent heat flux, W/m^2
	PrecC float64 // convective precipitation, kg/m^2
	PrecL float64 // large-scale precipitation, kg/m^2
}

// Step advances one column by dt through the active schemes.
func (s *Suite) Step(c *Column, dt float64) Diag {
	var t0 time.Time
	if s.obsNs != nil {
		t0 = time.Now()
	}
	var d Diag
	switch s.Mode {
	case HeldSuarezMode:
		HeldSuarez(c, s.HS, dt)
	case Moist:
		d.OLR = GrayRadiation(c, s.Rad, dt)
		d.SHF, d.LHF = PBLDiffusion(c, s.PBL, dt)
		d.PrecC = BettsMiller(c, s.Conv, dt)
		d.PrecL = Kessler(c, s.Micro, dt)
	}
	s.obsCols.Add(1)
	if s.obsNs != nil {
		s.obsNs.Add(time.Since(t0).Nanoseconds())
	}
	return d
}
