package physics

import "math"

// Betts-Miller moist convective adjustment: where a column is
// conditionally unstable and moist enough, temperature and humidity
// relax toward a moist-adiabatic, subsaturated reference profile over a
// fixed timescale, with an enthalpy correction that makes the scheme
// exactly energy-conserving; removed moisture falls as convective rain.

// ConvParams configures the adjustment.
type ConvParams struct {
	TauAdj  float64 // relaxation timescale, s
	RHRef   float64 // reference relative humidity of the post-convective profile
	MinCAPE float64 // trigger threshold on parcel buoyancy integral, J/kg
}

// DefaultConvParams returns standard Betts-Miller settings.
func DefaultConvParams() ConvParams {
	return ConvParams{TauAdj: 7200, RHRef: 0.8, MinCAPE: 10}
}

// moistAdiabatFrom lifts a parcel from level k0 and returns the
// temperature profile it implies for levels above (smaller k), following
// a pseudoadiabat integrated in pressure.
func moistAdiabatFrom(c *Column, k0 int, tRef []float64) {
	tp := c.T[k0]
	qp := c.Qv[k0]
	tRef[k0] = tp
	for k := k0 - 1; k >= 0; k-- {
		dp := c.P[k] - c.P[k+1] // negative upward
		// Dry-adiabatic estimate, then latent correction if saturated.
		dT := Rd * tp / (Cp * c.P[k+1]) * dp
		tp += dT
		qs := QSat(tp, c.P[k])
		if qp > qs {
			// Condense: release latent heat, reduce parcel vapor, one
			// Newton correction on the saturation balance.
			excess := qp - qs
			gamma := Lv / Cp * DQSatDT(tp, c.P[k])
			dTl := Lv / Cp * excess / (1 + gamma)
			tp += dTl
			qp = QSat(tp, c.P[k])
		}
		tRef[k] = tp
	}
}

// CAPE computes the convective available potential energy of a parcel
// lifted from the lowest model level, using virtual temperature excess.
func CAPE(c *Column) float64 {
	n := c.Nlev
	tRef := c.scratch().tRef
	moistAdiabatFrom(c, n-1, tRef)
	cape := 0.0
	for k := n - 2; k >= 0; k-- {
		buoy := (tRef[k] - c.T[k]) / c.T[k]
		if buoy > 0 {
			cape += Rd * (tRef[k] - c.T[k]) * math.Log(c.P[k+1]/c.P[k])
		}
	}
	return cape
}

// BettsMiller applies one convective-adjustment step. Returns the
// convective precipitation produced (kg/m^2).
func BettsMiller(c *Column, cp ConvParams, dt float64) float64 {
	n := c.Nlev
	if CAPE(c) < cp.MinCAPE {
		return 0
	}
	scr := c.scratch()
	tRef := scr.tRef
	moistAdiabatFrom(c, n-1, tRef)

	// Find the cloud top: highest level where the parcel is buoyant.
	top := n - 1
	for k := 0; k < n-1; k++ {
		if tRef[k] > c.T[k] {
			top = k
			break
		}
	}
	if top >= n-1 {
		return 0
	}

	// First-guess tendencies toward (tRef, RHRef * qsat(tRef)).
	frac := dt / cp.TauAdj
	if frac > 1 {
		frac = 1
	}
	dTsum, dQsum := 0.0, 0.0 // mass-weighted changes
	dT := scr.dT
	dQ := scr.dQ
	for k := top; k < n; k++ {
		qRef := cp.RHRef * QSat(tRef[k], c.P[k])
		dT[k] = frac * (tRef[k] - c.T[k])
		dQ[k] = frac * (qRef - c.Qv[k])
		dTsum += Cp * dT[k] * c.DP[k]
		dQsum += Lv * dQ[k] * c.DP[k]
	}
	// Enthalpy correction: shift the temperature adjustment uniformly so
	// cp*dT + Lv*dq integrates to zero (Betts' energy closure).
	var massSum float64
	for k := top; k < n; k++ {
		massSum += c.DP[k]
	}
	corr := -(dTsum + dQsum) / (Cp * massSum)
	precip := 0.0
	for k := top; k < n; k++ {
		c.T[k] += dT[k] + corr
		c.Qv[k] += dQ[k]
		precip += -dQ[k] * c.DP[k] / Gravit
	}
	if precip < 0 {
		// Net moistening columns don't rain; the closure above already
		// balanced energy, so just report zero precipitation.
		precip = 0
	}
	c.Precip += precip
	return precip
}
