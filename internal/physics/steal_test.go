package physics

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// Every chunk must run exactly once, for every (workers, chunks, seed)
// shape — including more workers than chunks, one chunk, and ranges
// that force remainder-carrying splits.
func TestStealPoolCoversAllChunks(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 8} {
		for _, chunks := range []int{0, 1, 2, 7, 16, 33, 100} {
			for _, seed := range []uint64{0, 1, 42} {
				p := NewStealPool(workers, seed)
				ran := make([]int32, chunks+1)
				p.Run(chunks, func(w, c int) {
					if w < 0 || w >= workers {
						t.Errorf("worker index %d outside [0,%d)", w, workers)
					}
					atomic.AddInt32(&ran[c], 1)
				})
				for c := 0; c < chunks; c++ {
					if n := atomic.LoadInt32(&ran[c]); n != 1 {
						t.Fatalf("w=%d n=%d seed=%d: chunk %d ran %d times", workers, chunks, seed, c, n)
					}
				}
				st := p.Stats()
				if st.Chunks != int64(chunks) {
					t.Fatalf("w=%d n=%d: stats counted %d chunks, want %d", workers, chunks, st.Chunks, chunks)
				}
				var sum int64
				for _, wc := range st.WorkerChunks {
					sum += wc
				}
				if sum != int64(chunks) {
					t.Fatalf("w=%d n=%d: per-worker chunks sum %d, want %d", workers, chunks, sum, chunks)
				}
			}
		}
	}
}

// A pool is reused across steps; cumulative stats must keep adding up.
func TestStealPoolReuse(t *testing.T) {
	p := NewStealPool(4, 7)
	total := 0
	for run := 0; run < 5; run++ {
		n := 10 + run
		var count int32
		p.Run(n, func(w, c int) { atomic.AddInt32(&count, 1) })
		total += n
		if int(count) != n {
			t.Fatalf("run %d: %d chunks ran, want %d", run, count, n)
		}
	}
	st := p.Stats()
	if st.Chunks != int64(total) {
		t.Fatalf("cumulative chunks %d, want %d", st.Chunks, total)
	}
	if st.Runs != 5 {
		t.Fatalf("runs %d, want 5", st.Runs)
	}
}

// With one worker stuck on a long chunk, idle workers must actually
// steal the rest of its range — the load-balancing claim, observed
// through the pool's own counters rather than assumed.
func TestStealPoolStealsHappen(t *testing.T) {
	const workers, chunks = 4, 64
	p := NewStealPool(workers, 1)
	var count int32
	p.Run(chunks, func(w, c int) {
		// Worker 0 owns [0,16); make its first chunk expensive so the
		// rest of its range is up for grabs.
		if c == 0 {
			time.Sleep(20 * time.Millisecond)
		}
		atomic.AddInt32(&count, 1)
	})
	if int(count) != chunks {
		t.Fatalf("%d chunks ran, want %d", count, chunks)
	}
	st := p.Stats()
	if st.Steals == 0 {
		t.Fatalf("no steals recorded despite a 20ms straggler: %+v", st)
	}
	if st.StealAttempts < st.Steals {
		t.Fatalf("attempts %d < steals %d", st.StealAttempts, st.Steals)
	}
}

// Seeded chaos: panics in chunks — owned and (with a straggler chunk
// making theft near-certain) stolen — must surface on the calling
// goroutine, exactly once, with the other workers drained; the pool
// must stay usable afterwards.
func TestStealPoolChaosPanicPropagates(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		p := NewStealPool(4, seed)
		// First: panic in a chunk deep in worker 0's range while worker 0
		// sleeps — by the time it runs, a thief owns it.
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("seed %d: stolen-chunk panic did not propagate", seed)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("seed %d: unexpected panic value %v", seed, r)
				}
			}()
			p.Run(64, func(w, c int) {
				if c == 0 {
					time.Sleep(5 * time.Millisecond)
				}
				if c == 15 { // tail of worker 0's initial range [0,16)
					panic("boom")
				}
			})
		}()
		// Then: the pool recovers — a clean run completes fully.
		var count int32
		p.Run(32, func(w, c int) { atomic.AddInt32(&count, 1) })
		if count != 32 {
			t.Fatalf("seed %d: post-panic run executed %d/32 chunks", seed, count)
		}
	}
}

// The serial path (1 worker, or 1 chunk) must not recover panics into
// the parked-panic machinery — it propagates natively.
func TestStealPoolSerialPanic(t *testing.T) {
	p := NewStealPool(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("serial panic did not propagate")
		}
	}()
	p.Run(4, func(w, c int) {
		if c == 2 {
			panic("serial boom")
		}
	})
}

// Different seeds must produce different victim-scan orders (the knob
// the determinism sweep varies) while covering the same chunks.
func TestStealPoolSeedRotatesScanOrder(t *testing.T) {
	order := func(seed uint64) string {
		p := NewStealPool(5, seed)
		n := p.active // zero until Run; set active by hand for the probe
		_ = n
		// Reconstruct the scan order formula for worker 0 of 5 active.
		s := ""
		active := 5
		start := int((seed + 0*0x9e3779b97f4a7c15) % uint64(active-1))
		for i := 0; i < active-1; i++ {
			v := (0 + 1 + (start+i)%(active-1)) % active
			s += fmt.Sprintf("%d,", v)
		}
		return s
	}
	if order(0) == order(1) {
		t.Fatalf("seeds 0 and 1 scan victims in the same order: %s", order(0))
	}
}

// Steady-state Run must not allocate beyond the goroutine-launch
// machinery: the deques, stats, and panic slots are pooled. The bound
// is marginal (like exec's tiling budget): workers-1 goroutine starts
// plus WaitGroup bookkeeping.
func TestStealPoolSteadyStateAllocs(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewStealPool(workers, 3)
		sink := make([]float64, 64)
		fn := func(w, c int) { sink[c] += float64(w) } // prebuilt: no per-run closure
		p.Run(64, fn)                                  // warm
		got := testing.AllocsPerRun(20, func() { p.Run(64, fn) })
		budget := float64(2 + 2*workers)
		if got > budget {
			t.Fatalf("workers=%d: %.1f allocs/run, budget %.0f", workers, got, budget)
		}
	}
}
