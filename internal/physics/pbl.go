package physics

import "math"

// Boundary-layer vertical diffusion with bulk surface fluxes, solved
// implicitly (backward Euler) with the Thomas tridiagonal algorithm —
// the numerical pattern of CAM's vertical_diffusion module.

// PBLParams configures the diffusion and surface exchange.
type PBLParams struct {
	KMax    float64 // peak eddy diffusivity, m^2/s
	PBLTop  float64 // diffusivity decays above this pressure, Pa
	Cd      float64 // bulk drag/exchange coefficient
	MinWind float64 // gustiness floor for the bulk formulas, m/s
}

// DefaultPBLParams returns typical values.
func DefaultPBLParams() PBLParams {
	return PBLParams{KMax: 30, PBLTop: 85000, Cd: 1.2e-3, MinWind: 1}
}

// SolveTridiag solves the tridiagonal system (a: sub, b: diag, c: super)
// x = d in place using the Thomas algorithm; a[0] and c[n-1] are ignored.
// d is overwritten with the solution.
func SolveTridiag(a, b, c, d []float64) {
	solveTridiagCP(a, b, c, d, make([]float64, len(b)))
}

// solveTridiagCP is SolveTridiag with a caller-supplied c' scratch
// column — the allocation-free path the column schemes use.
func solveTridiagCP(a, b, c, d, cp []float64) {
	n := len(b)
	cp[0] = c[0] / b[0]
	d[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		m := b[i] - a[i]*cp[i-1]
		cp[i] = c[i] / m
		d[i] = (d[i] - a[i]*d[i-1]) / m
	}
	for i := n - 2; i >= 0; i-- {
		d[i] -= cp[i] * d[i+1]
	}
}

// eddyK returns the diffusivity profile at pressure p: KMax below
// PBLTop, decaying quadratically to zero one scale height above it.
func (pp PBLParams) eddyK(p, ps float64) float64 {
	top := pp.PBLTop * ps / P0
	if p >= top {
		return pp.KMax
	}
	frac := p / top
	return pp.KMax * frac * frac
}

// PBLDiffusion applies one implicit vertical-diffusion step to T, Qv, U
// and V with bulk surface fluxes as the bottom boundary condition.
// Returns the surface sensible and latent heat fluxes (W/m^2,
// diagnostics).
func PBLDiffusion(c *Column, pp PBLParams, dt float64) (shf, lhf float64) {
	n := c.Nlev
	if n < 2 {
		return 0, 0
	}
	scr := c.scratch()
	// Geometry: layer thickness in meters and interface spacing.
	dz := scr.dz
	rho := scr.rho
	for k := 0; k < n; k++ {
		rho[k] = c.P[k] / (Rd * c.T[k])
		dz[k] = c.DP[k] / (Gravit * rho[k])
	}
	// Interface diffusive conductance g[k] couples layers k-1 and k:
	// g = rho_int * K / dz_int (kg/m^2/s after dividing by dz later).
	g := scr.g // g[0] unused
	for k := 1; k < n; k++ {
		rhoInt := (rho[k-1] + rho[k]) / 2
		dzInt := (dz[k-1] + dz[k]) / 2
		pInt := (c.P[k-1] + c.P[k]) / 2
		g[k] = rhoInt * pp.eddyK(pInt, c.Ps) / dzInt
	}
	// Surface exchange coefficients.
	wind := math.Hypot(c.U[n-1], c.V[n-1])
	if wind < pp.MinWind {
		wind = pp.MinWind
	}
	gSfc := rho[n-1] * pp.Cd * wind // kg/m^2/s

	// Mass per layer (kg/m^2).
	mass := scr.mass
	for k := 0; k < n; k++ {
		mass[k] = c.DP[k] / Gravit
	}

	solve := func(x []float64, sfcValue float64, sfcCoupled bool) {
		a, b, cc, d := scr.ta, scr.tb, scr.tc, scr.td
		for k := 0; k < n; k++ {
			a[k], cc[k] = 0, 0
			b[k] = mass[k] / dt
			d[k] = mass[k] / dt * x[k]
			if k > 0 {
				a[k] = -g[k]
				b[k] += g[k]
			}
			if k < n-1 {
				cc[k] = -g[k+1]
				b[k] += g[k+1]
			}
		}
		if sfcCoupled {
			b[n-1] += gSfc
			d[n-1] += gSfc * sfcValue
		}
		solveTridiagCP(a, b, cc, d, scr.tcp)
		copy(x, d)
	}

	// Heat diffuses as dry static energy s = cp*T + g*z, not raw
	// temperature — diffusing T would mix the adiabatic lapse rate
	// itself downward. Heights come from the hydrostatic integral of
	// the current profile and are held fixed across the implicit solve
	// (the standard approximation).
	z := scr.z
	zInt := 0.0
	for k := n - 1; k >= 0; k-- {
		half := c.DP[k] / (2 * Gravit * rho[k])
		z[k] = zInt + half
		zInt += 2 * half
	}
	s := scr.s
	for k := 0; k < n; k++ {
		s[k] = Cp*c.T[k] + Gravit*z[k]
	}
	s1Before := s[n-1]
	q1Before := c.Qv[n-1]
	solve(s, Cp*c.Ts, true) // surface DSE at z=0
	for k := 0; k < n; k++ {
		c.T[k] = (s[k] - Gravit*z[k]) / Cp
	}
	solve(c.Qv, QSat(c.Ts, c.Ps), true) // saturated ocean surface
	solve(c.U, 0, true)                 // surface drag pulls wind to zero
	solve(c.V, 0, true)

	shf = gSfc * (Cp*c.Ts - (s1Before+s[n-1])/2)
	lhf = gSfc * Lv * (QSat(c.Ts, c.Ps) - (q1Before+c.Qv[n-1])/2)
	return shf, lhf
}
