package physics

import "math"

// Gray-atmosphere two-stream radiation (Frierson et al. 2006 style):
// longwave optical depth increases toward the surface, upward and
// downward fluxes integrate the Schwarzschild equations level by level,
// and the heating rate is the flux divergence. Shortwave is a simple
// absorbed-at-surface solar beam modulated by latitude.

// RadParams configures the gray radiation.
type RadParams struct {
	TauEq    float64 // longwave optical depth at the equatorial surface
	TauPole  float64 // at the polar surface
	LinFrac  float64 // fraction of tau growing linearly with p/ps (rest quartic)
	Solar    float64 // solar constant x (1-albedo)/4, W/m^2
	SolarDel float64 // latitudinal contrast of insolation
}

// DefaultRadParams returns the Frierson-like defaults.
func DefaultRadParams() RadParams {
	return RadParams{TauEq: 6.0, TauPole: 1.5, LinFrac: 0.1, Solar: 238, SolarDel: 1.4}
}

const sbSigma = 5.670374419e-8 // Stefan-Boltzmann

// lwTau returns longwave optical depth at normalized pressure s = p/ps.
func (rp RadParams) lwTau(lat, s float64) float64 {
	tau0 := rp.TauEq + (rp.TauPole-rp.TauEq)*math.Sin(lat)*math.Sin(lat)
	return tau0 * (rp.LinFrac*s + (1-rp.LinFrac)*s*s*s*s)
}

// Insolation returns the absorbed shortwave flux at latitude lat.
func (rp RadParams) Insolation(lat float64) float64 {
	sl := math.Sin(lat)
	return rp.Solar * (1 + rp.SolarDel/4*(1-3*sl*sl)) // P2-weighted annual mean
}

// GrayRadiation applies one radiative timestep to the column: longwave
// cooling from the two-stream integration and shortwave heating of the
// surface layer. Returns the net top-of-atmosphere outgoing longwave
// flux (diagnostic).
func GrayRadiation(c *Column, rp RadParams, dt float64) (olr float64) {
	n := c.Nlev
	scr := c.scratch()
	// Interface optical depths.
	tau := scr.tau
	tau[0] = 0
	pInt := 0.0
	for k := 0; k < n; k++ {
		pInt += c.DP[k]
		tau[k+1] = rp.lwTau(c.Lat, pInt/c.Ps)
	}
	// Planck source per layer.
	b := scr.planck
	for k := 0; k < n; k++ {
		b[k] = sbSigma * c.T[k] * c.T[k] * c.T[k] * c.T[k]
	}
	// Downward beam: D(0) = 0; dD/dtau = B - D.
	down := scr.down
	down[0] = 0
	for k := 0; k < n; k++ {
		dtau := tau[k+1] - tau[k]
		e := math.Exp(-dtau)
		down[k+1] = down[k]*e + b[k]*(1-e)
	}
	// Upward beam from the surface: U(ns) = sigma Ts^4.
	up := scr.up
	up[n] = sbSigma * c.Ts * c.Ts * c.Ts * c.Ts
	for k := n - 1; k >= 0; k-- {
		dtau := tau[k+1] - tau[k]
		e := math.Exp(-dtau)
		up[k] = up[k+1]*e + b[k]*(1-e)
	}
	// Heating from net flux divergence.
	for k := 0; k < n; k++ {
		netTop := up[k] - down[k]
		netBot := up[k+1] - down[k+1]
		heat := -(netTop - netBot) * Gravit / (Cp * c.DP[k]) // K/s
		c.T[k] += dt * heat
	}
	// Shortwave: deposit insolation in the lowest model layer (the
	// gray atmosphere is SW-transparent; the surface flux heats the
	// boundary layer through the surface scheme in a full model — here
	// the bottom layer absorbs it directly, a standard simplification).
	sw := rp.Insolation(c.Lat)
	c.T[n-1] += dt * sw * Gravit / (Cp * c.DP[n-1])
	return up[0]
}
