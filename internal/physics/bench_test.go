package physics

import "testing"

func BenchmarkMoistSuiteStep(b *testing.B) {
	s := NewMoistSuite()
	c := testColumnBench(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(c, 1800)
	}
}

func BenchmarkHeldSuarezStep(b *testing.B) {
	s := NewHeldSuarezSuite()
	c := testColumnBench(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(c, 1800)
	}
}

func BenchmarkGrayRadiation(b *testing.B) {
	c := testColumnBench(30)
	rp := DefaultRadParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GrayRadiation(c, rp, 1800)
	}
}

func testColumnBench(nlev int) *Column {
	c := NewColumn(nlev)
	c.Lat = 0.3
	c.Ps = P0
	c.Ts = 300
	for k := 0; k < nlev; k++ {
		frac := (float64(k) + 0.5) / float64(nlev)
		c.P[k] = 200 + frac*(P0-200)
		c.DP[k] = (P0 - 200) / float64(nlev)
		c.T[k] = 220 + 80*frac
		c.Qv[k] = 0.01 * frac
	}
	return c
}
