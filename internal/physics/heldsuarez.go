package physics

import "math"

// Held-Suarez (1994) forcing: Newtonian relaxation of temperature
// toward a prescribed radiative-equilibrium profile plus Rayleigh
// friction on low-level winds. It is the standard idealized test for
// dry dynamical cores and drives the Figure 4 climatology comparison.

// HSParams are the published Held-Suarez constants.
type HSParams struct {
	KfDay  float64 // friction rate at the surface, 1/day
	KaDay  float64 // thermal relaxation in the free atmosphere, 1/day
	KsDay  float64 // thermal relaxation at the surface, 1/day
	DeltaT float64 // equator-pole equilibrium contrast, K
	DeltaZ float64 // static-stability parameter, K
	SigB   float64 // boundary-layer top in sigma
	TStrat float64 // stratospheric floor temperature, K
}

// DefaultHSParams returns the values from Held & Suarez (1994).
func DefaultHSParams() HSParams {
	return HSParams{KfDay: 1, KaDay: 1.0 / 40, KsDay: 1.0 / 4,
		DeltaT: 60, DeltaZ: 10, SigB: 0.7, TStrat: 200}
}

const secPerDay = 86400.0

// TEq returns the Held-Suarez equilibrium temperature at latitude lat
// and pressure p.
func (h HSParams) TEq(lat, p float64) float64 {
	sl, cl := math.Sin(lat), math.Cos(lat)
	t := (315 - h.DeltaT*sl*sl - h.DeltaZ*math.Log(p/P0)*cl*cl) *
		math.Pow(p/P0, Rd/Cp)
	if t < h.TStrat {
		t = h.TStrat
	}
	return t
}

// HeldSuarez applies one forcing step to the column.
func HeldSuarez(c *Column, h HSParams, dt float64) {
	for k := 0; k < c.Nlev; k++ {
		sigma := c.P[k] / c.Ps
		sigFac := (sigma - h.SigB) / (1 - h.SigB)
		if sigFac < 0 {
			sigFac = 0
		}
		// Thermal relaxation, stronger near the surface at low latitudes.
		cl := math.Cos(c.Lat)
		kt := (h.KaDay + (h.KsDay-h.KaDay)*sigFac*cl*cl*cl*cl) / secPerDay
		teq := h.TEq(c.Lat, c.P[k])
		c.T[k] -= dt * kt * (c.T[k] - teq)

		// Rayleigh friction in the boundary layer.
		kv := h.KfDay / secPerDay * sigFac
		c.U[k] -= dt * kv * c.U[k]
		c.V[k] -= dt * kv * c.V[k]
	}
}
