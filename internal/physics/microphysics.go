package physics

// Kessler-style warm-rain microphysics: large-scale saturation
// adjustment (condensation/evaporation between vapor and cloud),
// autoconversion and accretion from cloud to rain, rain evaporation in
// subsaturated air, and instant sedimentation of rain to the surface.
// Water and moist enthalpy are conserved exactly up to the precipitated
// mass.

// MicroParams configures the scheme.
type MicroParams struct {
	QcAuto   float64 // autoconversion threshold, kg/kg
	AutoRate float64 // autoconversion timescale^-1, 1/s
	AccrRate float64 // accretion efficiency, 1/s per kg/kg of rain
	EvapRate float64 // rain evaporation efficiency, 1/s per unit subsaturation
}

// DefaultMicroParams returns Kessler-like constants.
func DefaultMicroParams() MicroParams {
	return MicroParams{QcAuto: 5e-4, AutoRate: 1e-3, AccrRate: 2.2, EvapRate: 1e-4}
}

// saturationAdjust condenses supersaturation into cloud (or evaporates
// cloud into subsaturated air), with the latent-heat Newton correction.
func saturationAdjust(c *Column, k int) {
	qs := QSat(c.T[k], c.P[k])
	gamma := Lv / Cp * DQSatDT(c.T[k], c.P[k])
	excess := (c.Qv[k] - qs) / (1 + gamma)
	if excess > 0 {
		// Condense.
		c.Qv[k] -= excess
		c.Qc[k] += excess
		c.T[k] += Lv / Cp * excess
	} else if c.Qc[k] > 0 {
		// Evaporate cloud up to saturation or until the cloud is gone.
		evap := -excess
		if evap > c.Qc[k] {
			evap = c.Qc[k]
		}
		c.Qv[k] += evap
		c.Qc[k] -= evap
		c.T[k] -= Lv / Cp * evap
	}
}

// Kessler applies one microphysics step and returns the large-scale
// (stratiform) precipitation reaching the surface, kg/m^2.
func Kessler(c *Column, mp MicroParams, dt float64) float64 {
	n := c.Nlev
	for k := 0; k < n; k++ {
		saturationAdjust(c, k)

		// Autoconversion: cloud above threshold converts to rain.
		if c.Qc[k] > mp.QcAuto {
			conv := mp.AutoRate * (c.Qc[k] - mp.QcAuto) * dt
			if conv > c.Qc[k] {
				conv = c.Qc[k]
			}
			c.Qc[k] -= conv
			c.Qr[k] += conv
		}
		// Accretion: rain collects cloud.
		if c.Qr[k] > 0 && c.Qc[k] > 0 {
			acc := mp.AccrRate * c.Qr[k] * c.Qc[k] * dt
			if acc > c.Qc[k] {
				acc = c.Qc[k]
			}
			c.Qc[k] -= acc
			c.Qr[k] += acc
		}
		// Rain evaporation in subsaturated air.
		if c.Qr[k] > 0 {
			qs := QSat(c.T[k], c.P[k])
			sub := qs - c.Qv[k]
			if sub > 0 {
				evap := mp.EvapRate * sub * dt * c.Qr[k] / (qs + 1e-12)
				if evap > c.Qr[k] {
					evap = c.Qr[k]
				}
				c.Qv[k] += evap
				c.Qr[k] -= evap
				c.T[k] -= Lv / Cp * evap
			}
		}
	}
	// Sedimentation: all rain falls out this step (instant fallout, the
	// Kessler limit for long physics timesteps), collecting mass on the
	// way down.
	precip := 0.0
	for k := 0; k < n; k++ {
		precip += c.Qr[k] * c.DP[k] / Gravit
		c.Qr[k] = 0
	}
	c.Precip += precip
	return precip
}
