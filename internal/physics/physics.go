// Package physics is a CAM5-lite column-physics suite: the simplified
// moist physics that stands in for CAM's parameterization package in
// this reproduction (see DESIGN.md's substitution table). It provides
// the same structural role the paper's "physics part" plays — a large
// set of column-independent schemes executed between dynamics steps,
// refactored for the CPE cluster by loop transformation — with real,
// tested process models:
//
//   - gray-atmosphere two-stream radiation (longwave + shortwave),
//   - bulk aerodynamic surface fluxes,
//   - implicit boundary-layer vertical diffusion,
//   - Betts-Miller moist convective adjustment,
//   - Kessler-style large-scale condensation and precipitation,
//   - Held-Suarez forcing as the idealized climate option (Figure 4's
//     climatology validation runs use it).
//
// All schemes operate on a Column (one GLL node's vertical profile) and
// are embarrassingly parallel across columns, matching how CAM physics
// parallelizes over "chunks".
package physics

import "math"

// Thermodynamic constants shared with the dycore (CAM values).
const (
	Rd     = 287.04
	Cp     = 1004.64
	Rv     = 461.5
	Lv     = 2.501e6 // latent heat of vaporization, J/kg
	Gravit = 9.80616
	P0     = 100000.0
	Epsilo = Rd / Rv
)

// Column is one atmospheric column, index 0 = model top. Pressures in
// Pa, temperatures in K, winds in m/s, moisture as specific humidity
// (kg/kg). The physics mutates T, Qv, Qc, Qr, U, V in place.
type Column struct {
	Nlev int
	P    []float64 // midpoint pressure
	DP   []float64 // layer thickness
	T    []float64
	U    []float64
	V    []float64
	Qv   []float64 // water vapor
	Qc   []float64 // cloud condensate
	Qr   []float64 // rain
	Lat  float64   // latitude, radians
	Ts   float64   // surface temperature
	Ps   float64   // surface pressure

	Precip float64 // accumulated surface precipitation, kg/m^2 (diagnostic)

	// scr holds the pooled per-column work arrays the schemes reuse
	// across steps, so a warm column steps without heap allocation.
	// Columns are owned by one worker at a time, so the scratch needs
	// no locking.
	scr *colScratch
}

// colScratch is the per-column scheme workspace: every slice a scheme
// previously allocated per call lives here instead, sized once for the
// column's Nlev. Fields are grouped by the scheme that overwrites them
// fully before reading (so sharing a buffer between schemes of one Step
// would be safe — they get distinct fields anyway for clarity).
type colScratch struct {
	// Radiation: interface optical depths/fluxes (nlev+1) and the
	// per-layer Planck source.
	tau, down, up []float64
	planck        []float64
	// PBL: geometry, conductances, masses, heights, dry static energy,
	// and the tridiagonal bands (+ the Thomas algorithm's c' column).
	dz, rho, g, mass, z, s []float64
	ta, tb, tc, td, tcp    []float64
	// Convection: the moist-adiabat reference profile and the
	// first-guess adjustment tendencies.
	tRef, dT, dQ []float64
}

// scratch returns the column's pooled workspace, building it on first
// use (or after a level-count change — columns are normally fixed-size,
// but a reused struct with swapped slices stays correct).
func (c *Column) scratch() *colScratch {
	if c.scr == nil || len(c.scr.planck) != c.Nlev {
		n := c.Nlev
		c.scr = &colScratch{
			tau: make([]float64, n+1), down: make([]float64, n+1), up: make([]float64, n+1),
			planck: make([]float64, n),
			dz:     make([]float64, n), rho: make([]float64, n), g: make([]float64, n),
			mass: make([]float64, n), z: make([]float64, n), s: make([]float64, n),
			ta: make([]float64, n), tb: make([]float64, n), tc: make([]float64, n),
			td: make([]float64, n), tcp: make([]float64, n),
			tRef: make([]float64, n), dT: make([]float64, n), dQ: make([]float64, n),
		}
	}
	return c.scr
}

// NewColumn allocates a column with nlev levels.
func NewColumn(nlev int) *Column {
	return &Column{
		Nlev: nlev,
		P:    make([]float64, nlev),
		DP:   make([]float64, nlev),
		T:    make([]float64, nlev),
		U:    make([]float64, nlev),
		V:    make([]float64, nlev),
		Qv:   make([]float64, nlev),
		Qc:   make([]float64, nlev),
		Qr:   make([]float64, nlev),
	}
}

// ESat returns saturation vapor pressure (Pa) over liquid water
// (Bolton's formula, accurate to ~0.1% between -30C and +35C).
func ESat(tk float64) float64 {
	tc := tk - 273.15
	return 611.2 * math.Exp(17.67*tc/(tc+243.5))
}

// QSat returns saturation specific humidity at temperature tk and
// pressure p.
func QSat(tk, p float64) float64 {
	es := ESat(tk)
	if es > 0.5*p {
		es = 0.5 * p // avoid blow-up at very low pressure
	}
	return Epsilo * es / (p - (1-Epsilo)*es)
}

// DQSatDT returns d(qsat)/dT via Clausius-Clapeyron.
func DQSatDT(tk, p float64) float64 {
	return QSat(tk, p) * Lv / (Rv * tk * tk)
}

// ColumnWater returns the mass-weighted total water (vapor + condensate
// + rain) of the column, in kg/m^2 — the conservation invariant of the
// moist schemes.
func (c *Column) ColumnWater() float64 {
	tot := 0.0
	for k := 0; k < c.Nlev; k++ {
		tot += (c.Qv[k] + c.Qc[k] + c.Qr[k]) * c.DP[k] / Gravit
	}
	return tot
}

// MoistEnthalpy returns the column integral of cp*T + Lv*qv, J/m^2 —
// conserved by condensation/evaporation exchanges.
func (c *Column) MoistEnthalpy() float64 {
	tot := 0.0
	for k := 0; k < c.Nlev; k++ {
		tot += (Cp*c.T[k] + Lv*c.Qv[k]) * c.DP[k] / Gravit
	}
	return tot
}

// DryEnthalpy returns the column integral of cp*T, J/m^2.
func (c *Column) DryEnthalpy() float64 {
	tot := 0.0
	for k := 0; k < c.Nlev; k++ {
		tot += Cp * c.T[k] * c.DP[k] / Gravit
	}
	return tot
}
