package physics

import (
	"math"
	"testing"
)

// Regime corner cases for the property table: the columns where scheme
// branches flip (convection trigger, saturation, surface-flux sign,
// polar insolation) and where a sloppy rewrite would first break.
type regimeCase struct {
	name  string
	build func(nlev int) *Column
}

func regimeCases() []regimeCase {
	base := func(nlev int) *Column {
		c := NewColumn(nlev)
		c.Lat = 0.4
		c.Ts = 300
		c.Ps = P0
		for k := 0; k < nlev; k++ {
			frac := (float64(k) + 0.5) / float64(nlev)
			c.DP[k] = (P0 - 200) / float64(nlev)
			c.P[k] = 200 + frac*(P0-200)
			c.T[k] = 210 + 85*frac
			c.U[k] = 8 * (1 - frac)
			c.V[k] = -3 * frac
			c.Qv[k] = 0.012 * frac * frac
		}
		return c
	}
	return []regimeCase{
		{"tropical-moist", base},
		{"dry-column", func(n int) *Column {
			c := base(n)
			for k := range c.Qv {
				c.Qv[k], c.Qc[k], c.Qr[k] = 0, 0, 0
			}
			return c
		}},
		{"saturated-column", func(n int) *Column {
			c := base(n)
			for k := range c.Qv {
				c.Qv[k] = QSat(c.T[k], c.P[k])
				c.Qc[k] = 1e-4
			}
			return c
		}},
		{"zero-wind", func(n int) *Column {
			c := base(n)
			for k := range c.U {
				c.U[k], c.V[k] = 0, 0
			}
			return c
		}},
		{"polar-night", func(n int) *Column {
			c := base(n)
			c.Lat = math.Pi / 2
			c.Ts = 250
			for k := range c.T {
				c.T[k] -= 40
				c.Qv[k] *= 0.1
			}
			return c
		}},
		{"unstable-surface", func(n int) *Column {
			c := base(n)
			c.Ts = 310
			c.T[n-1] = 304
			c.Qv[n-1] = 0.9 * QSat(c.T[n-1], c.P[n-1])
			return c
		}},
	}
}

func checkFinitePositive(t *testing.T, c *Column, where string) {
	t.Helper()
	for k := 0; k < c.Nlev; k++ {
		for _, v := range []float64{c.T[k], c.U[k], c.V[k], c.Qv[k], c.Qc[k], c.Qr[k]} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: level %d holds NaN/Inf", where, k)
			}
		}
		if c.Qv[k] < 0 || c.Qc[k] < 0 || c.Qr[k] < 0 {
			t.Fatalf("%s: negative water at level %d: qv=%g qc=%g qr=%g",
				where, k, c.Qv[k], c.Qc[k], c.Qr[k])
		}
		if c.T[k] < 100 || c.T[k] > 400 {
			t.Fatalf("%s: unphysical temperature %g K at level %d", where, c.T[k], k)
		}
	}
}

// Per-scheme conservation and positivity over the regime table — the
// column-wise invariants the parallel physics must also preserve (the
// parallel path runs exactly this code, per chunk; see core's sweep).
func TestSchemeInvariantsAcrossRegimes(t *testing.T) {
	const nlev, dt = 20, 1800.0
	for _, rc := range regimeCases() {
		t.Run(rc.name, func(t *testing.T) {
			// Radiation: moves energy only — water bit-identical.
			c := rc.build(nlev)
			w0 := c.ColumnWater()
			GrayRadiation(c, DefaultRadParams(), dt)
			if c.ColumnWater() != w0 {
				t.Fatalf("radiation changed column water: %g -> %g", w0, c.ColumnWater())
			}
			checkFinitePositive(t, c, "radiation")

			// PBL: water changes only through the surface flux; the
			// change must be bounded by the diagnosed latent flux (the
			// diagnostic uses the trapezoid of the implicit endpoints, so
			// allow a factor-2 envelope plus roundoff).
			c = rc.build(nlev)
			w0 = c.ColumnWater()
			_, lhf := PBLDiffusion(c, DefaultPBLParams(), dt)
			dw := c.ColumnWater() - w0
			bound := 2*math.Abs(lhf)*dt/Lv + 1e-9
			if math.Abs(dw) > bound {
				t.Fatalf("PBL water change %g exceeds surface-flux bound %g (lhf=%g)", dw, bound, lhf)
			}
			checkFinitePositive(t, c, "pbl")

			// Convection: exactly energy-closed; rained water leaves the
			// column (net-moistening columns report zero rain and may
			// gain water — that branch is the clipped case below).
			c = rc.build(nlev)
			h0 := c.MoistEnthalpy()
			w0 = c.ColumnWater()
			prec := BettsMiller(c, DefaultConvParams(), dt)
			if prec < 0 {
				t.Fatalf("negative convective precip %g", prec)
			}
			if rel := math.Abs(c.MoistEnthalpy()-h0) / math.Abs(h0); rel > 1e-10 {
				t.Fatalf("convection broke moist enthalpy: rel err %g", rel)
			}
			if prec > 0 {
				if diff := (c.ColumnWater() - w0) + prec; math.Abs(diff) > 1e-9*math.Max(1, w0) {
					t.Fatalf("convective water budget off by %g (precip %g)", diff, prec)
				}
			}
			checkFinitePositive(t, c, "convection")

			// Microphysics: water conserved up to what rains out.
			c = rc.build(nlev)
			w0 = c.ColumnWater()
			precL := Kessler(c, DefaultMicroParams(), dt)
			if precL < 0 {
				t.Fatalf("negative large-scale precip %g", precL)
			}
			if diff := (c.ColumnWater() - w0) + precL; math.Abs(diff) > 1e-9*math.Max(1, w0) {
				t.Fatalf("microphysics water budget off by %g (precip %g)", diff, precL)
			}
			checkFinitePositive(t, c, "microphysics")
		})
	}
}

// The full suite stays physical over a long integration in every
// regime, and the suite-level water budget closes: water enters only
// through the surface (bounded by the latent flux) and leaves only as
// the reported precipitation.
func TestSuiteInvariantsLongRun(t *testing.T) {
	const nlev, dt, steps = 16, 1800.0, 120
	for _, rc := range regimeCases() {
		t.Run(rc.name, func(t *testing.T) {
			s := NewMoistSuite()
			c := rc.build(nlev)
			for i := 0; i < steps; i++ {
				w0 := c.ColumnWater()
				d := s.Step(c, dt)
				dw := c.ColumnWater() - w0
				evapBound := 2*math.Abs(d.LHF)*dt/Lv + 1e-9
				// Clipped net-moistening convection can add water without
				// reporting rain, but never more than the adjustment frac
				// of the column's saturation deficit — cover it with the
				// same envelope style: losses must be accounted rain.
				if dw < -(d.PrecC+d.PrecL)-evapBound-1e-9 {
					t.Fatalf("step %d: water loss %g exceeds reported precip %g+%g",
						i, -dw, d.PrecC, d.PrecL)
				}
				checkFinitePositive(t, c, "suite step")
			}
		})
	}
}

// Scratch reuse must be invisible: a warm column (scratch populated by
// prior steps on different data) and a cold column must produce
// bit-identical trajectories — the differential for the zero-alloc
// refactor.
func TestScratchReuseBitIdentical(t *testing.T) {
	const nlev, dt = 20, 1800.0
	for _, rc := range regimeCases() {
		t.Run(rc.name, func(t *testing.T) {
			s := NewMoistSuite()
			cold := rc.build(nlev)

			warm := rc.build(nlev)
			// Dirty the scratch with an unrelated regime first, then
			// reload the case data into the same column.
			other := regimeCases()[0].build(nlev)
			copyInto := func(dst, src *Column) {
				copy(dst.P, src.P)
				copy(dst.DP, src.DP)
				copy(dst.T, src.T)
				copy(dst.U, src.U)
				copy(dst.V, src.V)
				copy(dst.Qv, src.Qv)
				copy(dst.Qc, src.Qc)
				copy(dst.Qr, src.Qr)
				dst.Lat, dst.Ts, dst.Ps, dst.Precip = src.Lat, src.Ts, src.Ps, src.Precip
			}
			copyInto(warm, other)
			for i := 0; i < 3; i++ {
				s.Step(warm, dt)
			}
			copyInto(warm, rc.build(nlev))

			for i := 0; i < 10; i++ {
				s.Step(cold, dt)
				s.Step(warm, dt)
			}
			for k := 0; k < nlev; k++ {
				if cold.T[k] != warm.T[k] || cold.Qv[k] != warm.Qv[k] ||
					cold.U[k] != warm.U[k] || cold.V[k] != warm.V[k] ||
					cold.Qc[k] != warm.Qc[k] || cold.Qr[k] != warm.Qr[k] {
					t.Fatalf("level %d: warm-scratch trajectory diverged from cold", k)
				}
			}
			if cold.Precip != warm.Precip {
				t.Fatalf("precip diverged: cold %g warm %g", cold.Precip, warm.Precip)
			}
		})
	}
}

// The moist suite steps a warm column without heap allocation — the
// zero-alloc audit's direct guarantee (scratch pooled on the column,
// tridiagonal c' included).
func TestSuiteStepZeroAlloc(t *testing.T) {
	s := NewMoistSuite()
	c := regimeCases()[0].build(24)
	s.Step(c, 1800) // warm the scratch
	if got := testing.AllocsPerRun(50, func() { s.Step(c, 1800) }); got > 0 {
		t.Fatalf("moist suite step allocates %.1f times per call, want 0", got)
	}
	hs := NewHeldSuarezSuite()
	hs.Step(c, 1800)
	if got := testing.AllocsPerRun(50, func() { hs.Step(c, 1800) }); got > 0 {
		t.Fatalf("Held-Suarez step allocates %.1f times per call, want 0", got)
	}
}
