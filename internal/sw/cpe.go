package sw

import (
	"fmt"
	"sync"
)

// CPE is one computing processing element: a user-mode-only RISC core
// with a 64 KB LDM, a DMA engine into the core group's shared memory, a
// 4-lane vector unit, and register-communication links along its row and
// column of the 8x8 mesh.
type CPE struct {
	Row, Col int
	ID       int // Row*8 + Col
	LDM      *LDM
	DMA      *DMA
	Ctr      PerfCounter
	cg       *CoreGroup
}

// CountFlops accounts n double-precision scalar operations.
func (c *CPE) CountFlops(n int64) { c.Ctr.FlopsScalar += n }

// Setup runs f, a kernel's per-launch setup block: the broadcast
// constant fetches hoisted out of the work loop and executed once per
// CPE per athread_spawn. On an ordinary launch Setup is a transparent
// call. When the host has split one logical launch into several tiles
// (CoreGroup.SetReplaySetup), replay tiles still execute f — every
// core group needs its own LDM image of the constants — but with DMA
// accounting muted, so performance counters are invariant to how the
// host tiles the launch: the setup traffic is charged exactly once, by
// the tile covering the first block, just as the untiled spawn charges
// it once.
func (c *CPE) Setup(f func()) {
	if c.cg.replaySetup {
		c.DMA.mute = true
		defer func() { c.DMA.mute = false }()
	}
	f()
}

// CountVecFlops accounts n double-precision operations retired through
// the vector unit (already multiplied out to element count by the caller).
func (c *CPE) CountVecFlops(n int64) { c.Ctr.FlopsVector += n }

// CountShuffles accounts n shuffle instructions.
func (c *CPE) CountShuffles(n int64) { c.Ctr.Shuffles += n }

// MPE is the management processing element of a core group: a full
// RISC core with a conventional cache hierarchy. It runs the serial
// portions of a kernel and drives MPI communication; the "MPE-only"
// execution backend of Table 1 runs whole kernels here.
type MPE struct {
	Ctr PerfCounter
	cg  *CoreGroup
}

// CountFlops accounts n double-precision operations on the MPE.
func (m *MPE) CountFlops(n int64) { m.Ctr.FlopsScalar += n }

// CoreGroup is one of the four CGs of an SW26010: one MPE, 64 CPEs, and
// a memory controller sharing one main-memory partition. In the
// "MPI + X" programming model of TaihuLight one MPI process maps to one
// CG (§5.3), so the simulator treats the CG as the unit a rank owns.
type CoreGroup struct {
	Index  int
	MPE    *MPE
	CPEs   [CPEsPerCG]*CPE
	fabric *regFabric
	// replaySetup marks launches on this core group as re-executions of
	// a logical launch whose per-launch setup traffic another core group
	// already accounted; see CPE.Setup.
	replaySetup bool
}

// SetReplaySetup marks (or clears) this core group as replaying the
// per-launch setup of a logical launch that another core group has
// already accounted. The host tiling layer sets it on every tile but
// the first before a kernel launch, so hoisted setup fetches wrapped in
// CPE.Setup are charged once per logical launch regardless of how many
// tiles simulate it.
func (cg *CoreGroup) SetReplaySetup(v bool) { cg.replaySetup = v }

// NewCoreGroup builds a core group with fresh LDMs, counters, and
// register fabric.
func NewCoreGroup(index int) *CoreGroup {
	cg := &CoreGroup{Index: index, fabric: newRegFabric()}
	cg.MPE = &MPE{cg: cg}
	for i := 0; i < CPEsPerCG; i++ {
		cpe := &CPE{Row: i / MeshDim, Col: i % MeshDim, ID: i, LDM: NewLDM(), cg: cg}
		cpe.DMA = &DMA{ctr: &cpe.Ctr}
		cg.CPEs[i] = cpe
	}
	return cg
}

// Spawn runs fn concurrently on all 64 CPEs (the athread_spawn /
// athread_join pattern) and blocks until every CPE returns. Each CPE's
// LDM is reset before fn starts, matching a fresh kernel launch. A panic
// on any CPE (LDM overflow, illegal register communication) is re-raised
// on the caller with the CPE coordinates attached.
func (cg *CoreGroup) Spawn(fn func(c *CPE)) {
	var wg sync.WaitGroup
	panics := make([]any, CPEsPerCG)
	for i := 0; i < CPEsPerCG; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[idx] = r
				}
			}()
			c := cg.CPEs[idx]
			c.LDM.Reset()
			fn(c)
			if hw := int64(c.LDM.HighWater()); hw > c.Ctr.LDMPeak {
				c.Ctr.LDMPeak = hw
			}
		}(i)
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("sw: CPE(%d,%d) faulted: %v", i/MeshDim, i%MeshDim, p))
		}
	}
}

// Counters returns the sum and the per-CPE maximum of the 64 CPE
// counters accumulated since the last ResetCounters. The sum feeds flop
// totals; the max bounds the makespan of load-imbalanced regions.
func (cg *CoreGroup) Counters() (sum, max PerfCounter) {
	for _, c := range cg.CPEs {
		sum.Add(&c.Ctr)
		max.MaxInPlace(&c.Ctr)
	}
	return sum, max
}

// ResetCounters zeroes the MPE and all CPE counters.
func (cg *CoreGroup) ResetCounters() {
	cg.MPE.Ctr.Reset()
	for _, c := range cg.CPEs {
		c.Ctr.Reset()
	}
}

// Chip is a full SW26010 processor: 4 core groups on a network-on-chip,
// 260 cores in total.
type Chip struct {
	CGs [4]*CoreGroup
}

// NewChip builds a full processor.
func NewChip() *Chip {
	ch := &Chip{}
	for i := range ch.CGs {
		ch.CGs[i] = NewCoreGroup(i)
	}
	return ch
}

// Cores returns the total core count of the chip (4 CGs x (1 MPE + 64 CPEs)).
func (ch *Chip) Cores() int { return len(ch.CGs) * (1 + CPEsPerCG) }
