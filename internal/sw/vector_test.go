package sw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec4Arithmetic(t *testing.T) {
	a := Vec4{1, 2, 3, 4}
	b := Vec4{5, 6, 7, 8}
	if got := a.Add(b); got != (Vec4{6, 8, 10, 12}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec4{-4, -4, -4, -4}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); got != (Vec4{5, 12, 21, 32}) {
		t.Errorf("Mul = %v", got)
	}
	if got := b.Div(a); got != (Vec4{5, 3, 7.0 / 3.0, 2}) {
		t.Errorf("Div = %v", got)
	}
	if got := a.FMA(b, Vec4{1, 1, 1, 1}); got != (Vec4{6, 13, 22, 33}) {
		t.Errorf("FMA = %v", got)
	}
	if got := a.Scale(2); got != (Vec4{2, 4, 6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != (Vec4{-1, -2, -3, -4}) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Sum(); got != 10 {
		t.Errorf("Sum = %v", got)
	}
	if got := a.Max(b); got != b {
		t.Errorf("Max = %v", got)
	}
	if got := a.Min(b); got != a {
		t.Errorf("Min = %v", got)
	}
}

func TestVec4LoadStore(t *testing.T) {
	s := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	v := LoadVec4(s, 2)
	if v != (Vec4{2, 3, 4, 5}) {
		t.Fatalf("LoadVec4 = %v", v)
	}
	dst := make([]float64, 8)
	v.Store(dst, 1)
	want := []float64{0, 2, 3, 4, 5, 0, 0, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Store: dst = %v", dst)
		}
	}
}

func TestSplat(t *testing.T) {
	if Splat(3.5) != (Vec4{3.5, 3.5, 3.5, 3.5}) {
		t.Fatal("Splat broken")
	}
}

func TestShuffleSemantics(t *testing.T) {
	a := Vec4{10, 11, 12, 13}
	b := Vec4{20, 21, 22, 23}
	// The paper's Figure 3 example: lanes 0,2 of a then lanes 0,1 of b.
	got := Shuffle(a, b, ShuffleMask{0, 2, 0, 1})
	if got != (Vec4{10, 12, 20, 21}) {
		t.Fatalf("Shuffle = %v", got)
	}
}

func TestTranspose4x4(t *testing.T) {
	r0 := Vec4{0, 1, 2, 3}
	r1 := Vec4{4, 5, 6, 7}
	r2 := Vec4{8, 9, 10, 11}
	r3 := Vec4{12, 13, 14, 15}
	c0, c1, c2, c3, n := Transpose4x4(r0, r1, r2, r3)
	if n != 8 {
		t.Errorf("shuffle count = %d, want 8 (the paper's figure uses 8)", n)
	}
	if c0 != (Vec4{0, 4, 8, 12}) || c1 != (Vec4{1, 5, 9, 13}) ||
		c2 != (Vec4{2, 6, 10, 14}) || c3 != (Vec4{3, 7, 11, 15}) {
		t.Fatalf("transpose wrong: %v %v %v %v", c0, c1, c2, c3)
	}
}

// Property: transposing twice is the identity, for arbitrary matrices.
func TestTranspose4x4Involution(t *testing.T) {
	f := func(m [16]float64) bool {
		r0 := Vec4{m[0], m[1], m[2], m[3]}
		r1 := Vec4{m[4], m[5], m[6], m[7]}
		r2 := Vec4{m[8], m[9], m[10], m[11]}
		r3 := Vec4{m[12], m[13], m[14], m[15]}
		c0, c1, c2, c3, _ := Transpose4x4(r0, r1, r2, r3)
		b0, b1, b2, b3, _ := Transpose4x4(c0, c1, c2, c3)
		return b0 == r0 && b1 == r1 && b2 == r2 && b3 == r3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Shuffle never reads outside the two source registers, for any
// mask byte values (masks are taken mod 4 like hardware immediates).
func TestShufflePropertyLanes(t *testing.T) {
	f := func(a, b [4]float64, mask [4]uint8) bool {
		got := Shuffle(Vec4(a), Vec4(b), ShuffleMask(mask))
		okLane := func(x float64, src [4]float64) bool {
			for _, v := range src {
				if x == v || (math.IsNaN(x) && math.IsNaN(v)) {
					return true
				}
			}
			return false
		}
		return okLane(got[0], a) && okLane(got[1], a) && okLane(got[2], b) && okLane(got[3], b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFMAAssociativityModel(t *testing.T) {
	// FMA must be a single rounding of v*w+a in each lane; with exact
	// binary values the result is exact.
	v := Splat(1.5)
	w := Splat(2.0)
	a := Splat(0.25)
	if got := v.FMA(w, a); got != Splat(3.25) {
		t.Fatalf("FMA = %v", got)
	}
}
