package sw

// Vec4 models one 256-bit vector register holding four double-precision
// lanes, the native SIMD width of the SW26010 CPE. The Athread backend
// rewrites inner loops in terms of Vec4 operations the way the paper's
// fine-grained redesign hand-vectorizes its kernels (§7.3 step two).
type Vec4 [4]float64

// VecWidth is the number of float64 lanes per vector register.
const VecWidth = 4

// Splat returns a vector with all four lanes set to x.
func Splat(x float64) Vec4 { return Vec4{x, x, x, x} }

// LoadVec4 loads four consecutive float64 values starting at s[i].
func LoadVec4(s []float64, i int) Vec4 {
	_ = s[i+3] // bounds hint
	return Vec4{s[i], s[i+1], s[i+2], s[i+3]}
}

// Store writes the four lanes to consecutive positions starting at s[i].
func (v Vec4) Store(s []float64, i int) {
	_ = s[i+3]
	s[i], s[i+1], s[i+2], s[i+3] = v[0], v[1], v[2], v[3]
}

// Add returns the lane-wise sum v + w.
func (v Vec4) Add(w Vec4) Vec4 {
	return Vec4{v[0] + w[0], v[1] + w[1], v[2] + w[2], v[3] + w[3]}
}

// Sub returns the lane-wise difference v - w.
func (v Vec4) Sub(w Vec4) Vec4 {
	return Vec4{v[0] - w[0], v[1] - w[1], v[2] - w[2], v[3] - w[3]}
}

// Mul returns the lane-wise product v * w.
func (v Vec4) Mul(w Vec4) Vec4 {
	return Vec4{v[0] * w[0], v[1] * w[1], v[2] * w[2], v[3] * w[3]}
}

// Div returns the lane-wise quotient v / w.
func (v Vec4) Div(w Vec4) Vec4 {
	return Vec4{v[0] / w[0], v[1] / w[1], v[2] / w[2], v[3] / w[3]}
}

// FMA returns v*w + a lane-wise, modeling the CPE's fused multiply-add.
func (v Vec4) FMA(w, a Vec4) Vec4 {
	return Vec4{v[0]*w[0] + a[0], v[1]*w[1] + a[1], v[2]*w[2] + a[2], v[3]*w[3] + a[3]}
}

// Scale returns the vector with every lane multiplied by x.
func (v Vec4) Scale(x float64) Vec4 {
	return Vec4{v[0] * x, v[1] * x, v[2] * x, v[3] * x}
}

// Neg returns the lane-wise negation.
func (v Vec4) Neg() Vec4 { return Vec4{-v[0], -v[1], -v[2], -v[3]} }

// Sum returns the horizontal sum of the four lanes.
func (v Vec4) Sum() float64 { return v[0] + v[1] + v[2] + v[3] }

// Max returns the lane-wise maximum of v and w.
func (v Vec4) Max(w Vec4) Vec4 {
	r := v
	for i := range r {
		if w[i] > r[i] {
			r[i] = w[i]
		}
	}
	return r
}

// Min returns the lane-wise minimum of v and w.
func (v Vec4) Min(w Vec4) Vec4 {
	r := v
	for i := range r {
		if w[i] < r[i] {
			r[i] = w[i]
		}
	}
	return r
}

// ShuffleMask selects, for each of the four destination lanes, a source
// lane index in 0..3. The first two destination lanes read from register
// a, the last two from register b — the semantics of the SW26010 shuffle
// instruction illustrated in Figure 3 of the paper.
type ShuffleMask [4]uint8

// Shuffle implements Shuffle(a, b, mask): destination lanes 0 and 1 come
// from a at positions mask[0] and mask[1]; destination lanes 2 and 3 come
// from b at positions mask[2] and mask[3].
func Shuffle(a, b Vec4, mask ShuffleMask) Vec4 {
	return Vec4{a[mask[0]&3], a[mask[1]&3], b[mask[2]&3], b[mask[3]&3]}
}

// Transpose4x4 transposes a 4x4 block held in four vector registers using
// eight shuffle instructions, the intra-CPE stage of the paper's two-level
// transposition scheme (Figure 3, bottom left). Row i of the result holds
// column i of the input.
//
// The count of shuffle operations (8) is returned so callers can account
// the instruction cost.
func Transpose4x4(r0, r1, r2, r3 Vec4) (c0, c1, c2, c3 Vec4, shuffles int) {
	// Stage 1: interleave pairs of rows. After this stage,
	// t0 = {r0[0], r0[2], r1[0], r1[2]}, etc. — each temp register holds
	// the even or odd lanes of two source rows.
	t0 := Shuffle(r0, r1, ShuffleMask{0, 2, 0, 2})
	t1 := Shuffle(r0, r1, ShuffleMask{1, 3, 1, 3})
	t2 := Shuffle(r2, r3, ShuffleMask{0, 2, 0, 2})
	t3 := Shuffle(r2, r3, ShuffleMask{1, 3, 1, 3})
	// Stage 2: combine across the two halves to form columns.
	c0 = Shuffle(t0, t2, ShuffleMask{0, 2, 0, 2})
	c1 = Shuffle(t1, t3, ShuffleMask{0, 2, 0, 2})
	c2 = Shuffle(t0, t2, ShuffleMask{1, 3, 1, 3})
	c3 = Shuffle(t1, t3, ShuffleMask{1, 3, 1, 3})
	return c0, c1, c2, c3, 8
}
