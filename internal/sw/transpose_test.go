package sw

import (
	"math/rand"
	"testing"
)

func TestTransposeBlock(t *testing.T) {
	cg := NewCoreGroup(0)
	blk := make([]float64, 16)
	for i := range blk {
		blk[i] = float64(i)
	}
	cg.Spawn(func(c *CPE) {
		if c.ID != 0 {
			return
		}
		tile := c.LDM.MustAlloc("blk", 16)
		copy(tile, blk)
		TransposeBlock(c, tile)
		copy(blk, tile)
	})
	for r := 0; r < 4; r++ {
		for cc := 0; cc < 4; cc++ {
			if blk[r*4+cc] != float64(cc*4+r) {
				t.Fatalf("blk[%d,%d] = %v", r, cc, blk[r*4+cc])
			}
		}
	}
	sum, _ := cg.Counters()
	if sum.Shuffles != 8 {
		t.Fatalf("shuffles = %d, want 8", sum.Shuffles)
	}
}

// TestRowTranspose runs the full two-level transposition of §7.5 on the
// first row of the mesh: an NxN matrix (N = 8 CPEs x 4 lanes = 32)
// distributed block-row per CPE, transposed via 7 collision-free exchange
// phases plus intra-CPE shuffles, and verified against a serial transpose.
func TestRowTranspose(t *testing.T) {
	const nCPE = MeshDim
	const dim = nCPE * BlockDim
	m := make([]float64, dim*dim)
	rng := rand.New(rand.NewSource(11))
	for i := range m {
		m[i] = rng.Float64()
	}
	orig := make([]float64, len(m))
	copy(orig, m)

	cg := NewCoreGroup(0)
	cg.Spawn(func(c *CPE) {
		if c.Row != 0 {
			return // only the first mesh row participates
		}
		blocks := make([][]float64, nCPE)
		for j := range blocks {
			blocks[j] = c.LDM.MustAlloc("blk", BlockDim*BlockDim)
		}
		GatherBlocks(c, m, dim, c.Col, blocks)
		RowTranspose(c, blocks)
		ScatterBlocks(c, m, dim, c.Col, blocks)
	})

	for r := 0; r < dim; r++ {
		for cc := 0; cc < dim; cc++ {
			if m[r*dim+cc] != orig[cc*dim+r] {
				t.Fatalf("m[%d,%d] = %v, want %v", r, cc, m[r*dim+cc], orig[cc*dim+r])
			}
		}
	}
}

func TestRowTransposeSmallPowerOfTwo(t *testing.T) {
	// 2 CPEs x 4 lanes = 8x8 matrix, exercising the n < MeshDim path.
	const nCPE = 2
	const dim = nCPE * BlockDim
	m := make([]float64, dim*dim)
	for i := range m {
		m[i] = float64(i)
	}
	orig := make([]float64, len(m))
	copy(orig, m)
	cg := NewCoreGroup(0)
	cg.Spawn(func(c *CPE) {
		if c.Row != 0 || c.Col >= nCPE {
			return
		}
		blocks := make([][]float64, nCPE)
		for j := range blocks {
			blocks[j] = c.LDM.MustAlloc("blk", BlockDim*BlockDim)
		}
		GatherBlocks(c, m, dim, c.Col, blocks)
		RowTranspose(c, blocks)
		ScatterBlocks(c, m, dim, c.Col, blocks)
	})
	for r := 0; r < dim; r++ {
		for cc := 0; cc < dim; cc++ {
			if m[r*dim+cc] != orig[cc*dim+r] {
				t.Fatalf("m[%d,%d] = %v, want %v", r, cc, m[r*dim+cc], orig[cc*dim+r])
			}
		}
	}
}

func TestRowTransposeRejectsNonPowerOfTwo(t *testing.T) {
	cg := NewCoreGroup(0)
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two CPE count did not panic")
		}
	}()
	cg.Spawn(func(c *CPE) {
		if c.Row != 0 || c.Col != 0 {
			return
		}
		blocks := make([][]float64, 3)
		for j := range blocks {
			blocks[j] = c.LDM.MustAlloc("blk", 16)
		}
		RowTranspose(c, blocks)
	})
}

// The exchange schedule must be collision-free: in phase k, the pairing
// i <-> i XOR k is an involution, so every CPE has exactly one partner.
func TestTransposeScheduleCollisionFree(t *testing.T) {
	for n := 2; n <= MeshDim; n *= 2 {
		for k := 1; k < n; k++ {
			seen := make(map[int]int)
			for i := 0; i < n; i++ {
				p := i ^ k
				if p == i {
					t.Fatalf("n=%d phase %d: CPE %d paired with itself", n, k, i)
				}
				if q, ok := seen[p]; ok && q != i {
					t.Fatalf("n=%d phase %d: collision at partner %d", n, k, p)
				}
				seen[i] = p
			}
			for i, p := range seen {
				if seen[p] != i {
					t.Fatalf("n=%d phase %d: pairing not symmetric", n, k)
				}
			}
		}
	}
}
