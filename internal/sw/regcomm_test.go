package sw

import (
	"math"
	"math/rand"
	"testing"
)

func TestRegCommRowNeighbors(t *testing.T) {
	cg := NewCoreGroup(0)
	got := make([]float64, CPEsPerCG)
	cg.Spawn(func(c *CPE) {
		// Each CPE sends its ID to its right neighbour in the row and
		// receives from its left neighbour (ring-free open chain).
		if c.Col < MeshDim-1 {
			c.RegSendScalar(c.Row, c.Col+1, float64(c.ID))
		}
		if c.Col > 0 {
			got[c.ID] = c.RegRecvScalar(c.Row, c.Col-1)
		} else {
			got[c.ID] = -1
		}
	})
	for id, v := range got {
		col := id % MeshDim
		if col == 0 {
			if v != -1 {
				t.Fatalf("CPE %d expected no message", id)
			}
			continue
		}
		if v != float64(id-1) {
			t.Fatalf("CPE %d got %v, want %d", id, v, id-1)
		}
	}
}

func TestRegCommColumn(t *testing.T) {
	cg := NewCoreGroup(0)
	var sum [MeshDim]float64
	cg.Spawn(func(c *CPE) {
		// Column reduction onto row 0 via a chain up the column.
		v := float64(c.ID)
		if c.Row < MeshDim-1 {
			v += c.RegRecvScalar(c.Row+1, c.Col)
		}
		if c.Row > 0 {
			c.RegSendScalar(c.Row-1, c.Col, v)
		} else {
			sum[c.Col] = v
		}
	})
	for col := 0; col < MeshDim; col++ {
		want := 0.0
		for row := 0; row < MeshDim; row++ {
			want += float64(row*MeshDim + col)
		}
		if sum[col] != want {
			t.Fatalf("col %d sum = %v, want %v", col, sum[col], want)
		}
	}
}

func TestRegCommDiagonalForbidden(t *testing.T) {
	cg := NewCoreGroup(0)
	defer func() {
		if recover() == nil {
			t.Fatal("diagonal register send did not panic")
		}
	}()
	cg.Spawn(func(c *CPE) {
		if c.Row == 0 && c.Col == 0 {
			c.RegSend(1, 1, Splat(0)) // (0,0) -> (1,1): different row AND column
		}
	})
}

func TestRegCommCountsMessages(t *testing.T) {
	cg := NewCoreGroup(0)
	cg.Spawn(func(c *CPE) {
		if c.Row == 0 && c.Col == 0 {
			c.RegSend(0, 1, Splat(1))
		}
		if c.Row == 0 && c.Col == 1 {
			c.RegRecv(0, 0)
		}
	})
	sum, _ := cg.Counters()
	if sum.RegMsgs != 1 || sum.RegBytes != 32 {
		t.Fatalf("regcomm counters = %d msgs / %d bytes", sum.RegMsgs, sum.RegBytes)
	}
}

func TestColumnScanMatchesSerial(t *testing.T) {
	cg := NewCoreGroup(0)
	const perCPE = 16
	const n = MeshDim * perCPE // 128 layers, the paper's vertical size
	rng := rand.New(rand.NewSource(7))
	// One independent column of data per mesh column.
	input := make([][]float64, MeshDim)
	for j := range input {
		input[j] = make([]float64, n)
		for k := range input[j] {
			input[j][k] = rng.Float64()
		}
	}
	base := 3.25
	results := make([][]float64, MeshDim)
	for j := range results {
		results[j] = make([]float64, n)
	}
	cg.Spawn(func(c *CPE) {
		local := make([]float64, perCPE)
		copy(local, input[c.Col][c.Row*perCPE:(c.Row+1)*perCPE])
		out := make([]float64, perCPE)
		ColumnScan(c, local, out, base)
		copy(results[c.Col][c.Row*perCPE:(c.Row+1)*perCPE], out)
	})
	for j := 0; j < MeshDim; j++ {
		run := base
		for k := 0; k < n; k++ {
			run += input[j][k]
			if math.Abs(results[j][k]-run) > 1e-12*math.Abs(run) {
				t.Fatalf("col %d layer %d: scan = %v, serial = %v", j, k, results[j][k], run)
			}
		}
	}
}

func TestColumnScanExclusive(t *testing.T) {
	cg := NewCoreGroup(0)
	const perCPE = 4
	const n = MeshDim * perCPE
	input := make([]float64, n)
	for k := range input {
		input[k] = float64(k + 1)
	}
	results := make([]float64, n)
	cg.Spawn(func(c *CPE) {
		if c.Col != 0 {
			return
		}
		local := make([]float64, perCPE)
		copy(local, input[c.Row*perCPE:(c.Row+1)*perCPE])
		out := make([]float64, perCPE)
		ColumnScanExclusive(c, local, out, 10)
		copy(results[c.Row*perCPE:(c.Row+1)*perCPE], out)
	})
	run := 10.0
	for k := 0; k < n; k++ {
		if results[k] != run {
			t.Fatalf("layer %d: exclusive scan = %v, want %v", k, results[k], run)
		}
		run += input[k]
	}
}

func TestColumnScanExclusiveNeedsFullColumnMesh(t *testing.T) {
	// Columns other than 0 must not deadlock when only column 0 scans:
	// the scan in the test above sends only along column 0, and the
	// spawn joined, which is itself the assertion (no deadlock).
}

func TestColumnReduce(t *testing.T) {
	cg := NewCoreGroup(0)
	totals := make([]float64, CPEsPerCG)
	cg.Spawn(func(c *CPE) {
		totals[c.ID] = ColumnReduce(c, float64(c.ID))
	})
	for id, got := range totals {
		col := id % MeshDim
		want := 0.0
		for row := 0; row < MeshDim; row++ {
			want += float64(row*MeshDim + col)
		}
		if got != want {
			t.Fatalf("CPE %d column total = %v, want %v", id, got, want)
		}
	}
}

func TestColumnScanReverse(t *testing.T) {
	cg := NewCoreGroup(0)
	const perCPE = 4
	const n = MeshDim * perCPE
	input := make([]float64, n)
	for k := range input {
		input[k] = float64(k + 1)
	}
	results := make([]float64, n)
	cg.Spawn(func(c *CPE) {
		if c.Col != 0 {
			return
		}
		local := make([]float64, perCPE)
		copy(local, input[c.Row*perCPE:(c.Row+1)*perCPE])
		out := make([]float64, perCPE)
		ColumnScanReverse(c, local, out, 100, 0.5)
		copy(results[c.Row*perCPE:(c.Row+1)*perCPE], out)
	})
	// Serial reference: out[k] = 100 + sum_{l>k} in[l] + in[k]/2.
	for k := 0; k < n; k++ {
		want := 100.0
		for l := k + 1; l < n; l++ {
			want += input[l]
		}
		want += input[k] / 2
		if math.Abs(results[k]-want) > 1e-12*want {
			t.Fatalf("level %d: reverse scan = %v, want %v", k, results[k], want)
		}
	}
}

func TestExchangeBlockLargeNoDeadlock(t *testing.T) {
	// Blocks far larger than the receive buffer must exchange cleanly
	// between all pairs of one mesh column simultaneously.
	cg := NewCoreGroup(0)
	const n = 64 // 16 registers per pair, buffer holds 4
	results := make([][]float64, CPEsPerCG)
	cg.Spawn(func(c *CPE) {
		if c.Col != 2 {
			return
		}
		send := make([]float64, n)
		for i := range send {
			send[i] = float64(c.Row*1000 + i)
		}
		recv := make([]float64, n)
		// Pair rows via XOR phases, like the transposition schedule.
		for k := 1; k < MeshDim; k++ {
			p := c.Row ^ k
			c.ExchangeBlock(p, c.Col, send, recv)
			for i := range recv {
				if recv[i] != float64(p*1000+i) {
					t.Errorf("row %d phase %d: recv[%d] = %v", c.Row, k, i, recv[i])
					break
				}
			}
		}
		results[c.ID] = recv
	})
}

func TestExchangeBlockRejectsBadLengths(t *testing.T) {
	cg := NewCoreGroup(0)
	defer func() {
		if recover() == nil {
			t.Fatal("bad lengths accepted")
		}
	}()
	cg.Spawn(func(c *CPE) {
		if c.Row == 0 && c.Col == 0 {
			c.ExchangeBlock(1, 0, make([]float64, 6), make([]float64, 6))
		}
	})
}
