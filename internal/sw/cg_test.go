package sw

import (
	"strings"
	"testing"
)

func TestCoreGroupLayout(t *testing.T) {
	cg := NewCoreGroup(0)
	for i, c := range cg.CPEs {
		if c.ID != i || c.Row != i/MeshDim || c.Col != i%MeshDim {
			t.Fatalf("CPE %d has coords (%d,%d) id %d", i, c.Row, c.Col, c.ID)
		}
		if c.LDM == nil || c.DMA == nil {
			t.Fatalf("CPE %d missing LDM or DMA", i)
		}
	}
	if cg.MPE == nil {
		t.Fatal("missing MPE")
	}
}

func TestChipCores(t *testing.T) {
	ch := NewChip()
	if got := ch.Cores(); got != 260 {
		t.Fatalf("chip cores = %d, want 260 (4 CGs x 65 cores, §5.2)", got)
	}
}

func TestSpawnRunsAll64(t *testing.T) {
	cg := NewCoreGroup(0)
	var ran [CPEsPerCG]bool
	cg.Spawn(func(c *CPE) { ran[c.ID] = true })
	for i, r := range ran {
		if !r {
			t.Fatalf("CPE %d did not run", i)
		}
	}
}

func TestSpawnResetsLDM(t *testing.T) {
	cg := NewCoreGroup(0)
	cg.Spawn(func(c *CPE) { c.LDM.MustAlloc("x", 1000) })
	cg.Spawn(func(c *CPE) {
		if c.LDM.Used() != 0 {
			t.Errorf("CPE %d LDM not reset: %d bytes", c.ID, c.LDM.Used())
		}
	})
}

func TestSpawnPropagatesPanicWithCoords(t *testing.T) {
	cg := NewCoreGroup(0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "CPE(3,5)") {
			t.Fatalf("panic missing CPE coords: %v", r)
		}
	}()
	cg.Spawn(func(c *CPE) {
		if c.Row == 3 && c.Col == 5 {
			panic("boom")
		}
	})
}

func TestCountersSumAndMax(t *testing.T) {
	cg := NewCoreGroup(0)
	cg.Spawn(func(c *CPE) {
		c.CountFlops(int64(c.ID + 1)) // 1..64 -> sum 2080, max 64
	})
	sum, max := cg.Counters()
	if sum.FlopsScalar != 2080 {
		t.Errorf("sum flops = %d, want 2080", sum.FlopsScalar)
	}
	if max.FlopsScalar != 64 {
		t.Errorf("max flops = %d, want 64", max.FlopsScalar)
	}
	cg.ResetCounters()
	sum, _ = cg.Counters()
	if sum.Flops() != 0 {
		t.Error("counters not reset")
	}
}

func TestLDMPeakRecordedAfterSpawn(t *testing.T) {
	cg := NewCoreGroup(0)
	cg.Spawn(func(c *CPE) { c.LDM.MustAlloc("tile", 2048) })
	_, max := cg.Counters()
	if max.LDMPeak != 2048*F64Bytes {
		t.Fatalf("LDMPeak = %d, want %d", max.LDMPeak, 2048*F64Bytes)
	}
}

func TestDMAGetPut(t *testing.T) {
	cg := NewCoreGroup(0)
	main := make([]float64, 256)
	for i := range main {
		main[i] = float64(i)
	}
	out := make([]float64, 256)
	cg.Spawn(func(c *CPE) {
		if c.ID != 0 {
			return
		}
		tile := c.LDM.MustAlloc("tile", 256)
		c.DMA.Get(tile, main)
		for i := range tile {
			tile[i] *= 2
		}
		c.CountFlops(256)
		c.DMA.Put(out, tile)
	})
	for i := range out {
		if out[i] != 2*float64(i) {
			t.Fatalf("out[%d] = %v", i, out[i])
		}
	}
	sum, _ := cg.Counters()
	if sum.DMABytesIn != 256*F64Bytes || sum.DMABytesOut != 256*F64Bytes {
		t.Fatalf("DMA bytes = %d in / %d out", sum.DMABytesIn, sum.DMABytesOut)
	}
	if sum.DMAOps != 2 {
		t.Fatalf("DMA ops = %d", sum.DMAOps)
	}
}

func TestDMAStrided(t *testing.T) {
	cg := NewCoreGroup(0)
	// 8x8 row-major matrix in main memory; fetch a 4x4 sub-block.
	const dim = 8
	m := make([]float64, dim*dim)
	for i := range m {
		m[i] = float64(i)
	}
	got := make([]float64, 16)
	cg.Spawn(func(c *CPE) {
		if c.ID != 0 {
			return
		}
		tile := c.LDM.MustAlloc("blk", 16)
		c.DMA.GetStride(tile, m[2*dim+4:], 4, dim, 4) // block at (2,4)
		c.DMA.PutStride(m[2*dim+4:], tile, 4, dim, 4) // round trip
		copy(got, tile)
	})
	for r := 0; r < 4; r++ {
		for cc := 0; cc < 4; cc++ {
			want := float64((2+r)*dim + 4 + cc)
			if got[r*4+cc] != want {
				t.Fatalf("block[%d,%d] = %v, want %v", r, cc, got[r*4+cc], want)
			}
		}
	}
}

func TestDMAMismatchPanics(t *testing.T) {
	cg := NewCoreGroup(0)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	cg.Spawn(func(c *CPE) {
		if c.ID != 0 {
			return
		}
		tile := c.LDM.MustAlloc("t", 8)
		c.DMA.Get(tile, make([]float64, 4))
	})
}

func TestDMAReplyDoubleWaitPanics(t *testing.T) {
	cg := NewCoreGroup(0)
	defer func() {
		if recover() == nil {
			t.Fatal("double wait did not panic")
		}
	}()
	cg.Spawn(func(c *CPE) {
		if c.ID != 0 {
			return
		}
		tile := c.LDM.MustAlloc("t", 8)
		r := c.DMA.GetAsync(tile, make([]float64, 8))
		r.Wait()
		r.Wait()
	})
}

func TestDMAGetSharedAmortizes(t *testing.T) {
	cg := NewCoreGroup(0)
	src := make([]float64, 64)
	for i := range src {
		src[i] = float64(i)
	}
	cg.Spawn(func(c *CPE) {
		dst := c.LDM.MustAlloc("d", 64)
		c.DMA.GetShared(dst, src)
		for i := range dst {
			if dst[i] != float64(i) {
				t.Errorf("CPE %d: broadcast corrupted", c.ID)
				return
			}
		}
	})
	sum, _ := cg.Counters()
	// 64 CPEs x 64 values x 8 B = 32768 B if read separately; the
	// broadcast reads once: amortized shares sum back to one read.
	if want := int64(64 * F64Bytes); sum.DMABytesIn != want {
		t.Errorf("broadcast traffic = %d B, want %d (single read)", sum.DMABytesIn, want)
	}
}
