package sw

import (
	"errors"
	"testing"
)

func TestLDMCapacity(t *testing.T) {
	l := NewLDM()
	if l.Free() != LDMBytes {
		t.Fatalf("fresh LDM free = %d, want %d", l.Free(), LDMBytes)
	}
	// Allocate exactly the capacity: 8192 float64 = 64 KB.
	buf, err := l.Alloc("full", LDMBytes/F64Bytes)
	if err != nil {
		t.Fatalf("full allocation failed: %v", err)
	}
	if len(buf) != LDMBytes/F64Bytes {
		t.Fatalf("len = %d", len(buf))
	}
	if l.Free() != 0 {
		t.Fatalf("free after full alloc = %d", l.Free())
	}
	if _, err := l.Alloc("one more", 1); err == nil {
		t.Fatal("overflow allocation succeeded")
	}
}

func TestLDMOverflowError(t *testing.T) {
	l := NewLDM()
	l.MustAlloc("a", 4096) // 32 KB
	_, err := l.Alloc("b", 5000)
	var ov *ErrLDMOverflow
	if !errors.As(err, &ov) {
		t.Fatalf("want ErrLDMOverflow, got %v", err)
	}
	if ov.Name != "b" || ov.Requested != 5000*F64Bytes || ov.Used != 4096*F64Bytes {
		t.Fatalf("overflow detail wrong: %+v", ov)
	}
	if ov.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestLDMMarkRelease(t *testing.T) {
	l := NewLDM()
	persistent := l.MustAlloc("persistent", 100)
	persistent[0] = 42
	mark := l.Mark()
	scratch := l.MustAlloc("scratch", 200)
	scratch[0] = 7
	l.Release(mark)
	if l.Used() != 100*F64Bytes {
		t.Fatalf("used after release = %d", l.Used())
	}
	if persistent[0] != 42 {
		t.Fatal("persistent buffer clobbered by release")
	}
	// Re-allocation after release reuses the space.
	again := l.MustAlloc("again", 200)
	if &again[0] != &scratch[0] {
		t.Fatal("release did not rewind the arena")
	}
}

func TestLDMHighWater(t *testing.T) {
	l := NewLDM()
	l.MustAlloc("a", 1000)
	mark := l.Mark()
	l.MustAlloc("b", 2000)
	l.Release(mark)
	l.MustAlloc("c", 500)
	if hw := l.HighWater(); hw != 3000*F64Bytes {
		t.Fatalf("high water = %d, want %d", hw, 3000*F64Bytes)
	}
}

func TestLDMReleasePanicsOnBadMark(t *testing.T) {
	l := NewLDM()
	l.MustAlloc("a", 10)
	defer func() {
		if recover() == nil {
			t.Fatal("bad mark did not panic")
		}
	}()
	l.Release(100)
}

func TestLDMNegativeAlloc(t *testing.T) {
	l := NewLDM()
	if _, err := l.Alloc("neg", -1); err == nil {
		t.Fatal("negative allocation succeeded")
	}
}

func TestLDMBuffersDisjoint(t *testing.T) {
	l := NewLDM()
	a := l.MustAlloc("a", 16)
	b := l.MustAlloc("b", 16)
	for i := range a {
		a[i] = 1
	}
	for i := range b {
		b[i] = 2
	}
	for i := range a {
		if a[i] != 1 {
			t.Fatal("buffers overlap")
		}
	}
	// Capacity guard on append: slices are capped so appends cannot bleed
	// into the next buffer.
	a2 := append(a, 99)
	if b[0] != 2 {
		t.Fatal("append into a overwrote b")
	}
	_ = a2
}
