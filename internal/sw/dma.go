package sw

import "fmt"

// DMA is the per-CPE DMA engine moving data between shared main memory
// (ordinary Go slices owned by the core group) and the CPE's LDM buffers.
// Transfers complete synchronously in the functional simulation; the
// asynchronous get/put + wait flavor of Athread is modeled by GetAsync /
// PutAsync returning replies that must be waited on, so kernels keep the
// same issue/wait structure as the real code.
//
// Every transfer is accounted against the owning CPE's PerfCounter; the
// roofline model charges bytes against the CG memory bandwidth and a
// fixed issue latency per operation, which is what makes the OpenACC
// backend's redundant per-loop copyin (Algorithm 1) measurably worse than
// the Athread backend's persistent tiles (Algorithm 2).
type DMA struct {
	ctr *PerfCounter
	// mute suppresses counter recording while still moving data. It is
	// only set inside CPE.Setup on launch-replay tiles: when the host
	// splits one logical athread_spawn into several tiles, each tile's
	// core group must still load its own LDM image of the hoisted
	// per-launch constants, but the traffic was already accounted by the
	// tile covering the first block, so counters stay invariant to how
	// the host tiles the launch.
	mute bool
}

// Reply is the completion handle of an asynchronous DMA transfer.
// The functional simulator completes transfers at issue time, so Wait
// only validates that the handle is pending, preserving the program
// structure (issue early, wait late) without real asynchrony.
type Reply struct {
	pending bool
}

// Wait blocks until the transfer completes. Waiting twice on the same
// reply panics, which catches the double-wait bugs the real athread_syn
// interface turns into hangs.
func (r *Reply) Wait() {
	if !r.pending {
		panic("sw: DMA Wait on non-pending reply")
	}
	r.pending = false
}

// Get copies n = len(dst) float64 values from main memory src into the
// LDM buffer dst and accounts the traffic.
func (d *DMA) Get(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("sw: DMA get length mismatch: dst %d src %d", len(dst), len(src)))
	}
	copy(dst, src)
	if d.mute {
		return
	}
	d.ctr.DMABytesIn += int64(len(dst) * F64Bytes)
	d.ctr.DMAOps++
}

// Put copies the LDM buffer src back to main memory dst and accounts it.
func (d *DMA) Put(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("sw: DMA put length mismatch: dst %d src %d", len(dst), len(src)))
	}
	copy(dst, src)
	if d.mute {
		return
	}
	d.ctr.DMABytesOut += int64(len(src) * F64Bytes)
	d.ctr.DMAOps++
}

// GetAsync issues Get and returns a completion handle.
func (d *DMA) GetAsync(dst, src []float64) *Reply {
	d.Get(dst, src)
	return &Reply{pending: true}
}

// PutAsync issues Put and returns a completion handle.
func (d *DMA) PutAsync(dst, src []float64) *Reply {
	d.Put(dst, src)
	return &Reply{pending: true}
}

// GetStride gathers count rows of rowLen float64 values from main memory,
// where consecutive rows are stride values apart in src, packing them
// densely into dst. This is the multi-dimensional strided DMA the Sunway
// OpenACC extension exposes for array transposes and the Athread code
// uses to fetch (i,j) planes out of (i,j,k) arrays.
func (d *DMA) GetStride(dst, src []float64, rowLen, stride, count int) {
	if len(dst) < rowLen*count {
		panic("sw: DMA strided get: dst too small")
	}
	for r := 0; r < count; r++ {
		copy(dst[r*rowLen:(r+1)*rowLen], src[r*stride:r*stride+rowLen])
	}
	if d.mute {
		return
	}
	d.ctr.DMABytesIn += int64(rowLen * count * F64Bytes)
	// A strided transfer costs one issue per row on the hardware's DMA
	// queue; account each row so the roofline model sees the latency
	// penalty of fine-grained gathers.
	d.ctr.DMAOps += int64(count)
}

// PutStride scatters count dense rows of rowLen values from the LDM
// buffer src into main memory dst with the given row stride.
func (d *DMA) PutStride(dst, src []float64, rowLen, stride, count int) {
	if len(src) < rowLen*count {
		panic("sw: DMA strided put: src too small")
	}
	for r := 0; r < count; r++ {
		copy(dst[r*stride:r*stride+rowLen], src[r*rowLen:(r+1)*rowLen])
	}
	if d.mute {
		return
	}
	d.ctr.DMABytesOut += int64(rowLen * count * F64Bytes)
	d.ctr.DMAOps += int64(count)
}

// GetShared is the broadcast-mode DMA load of the SW26010: when all 64
// CPEs need the same read-only block (the GLL derivative matrix, shared
// coefficients), the memory controller reads it once and multicasts it
// over the mesh buses instead of servicing 64 separate reads. Each CPE
// receives its own LDM copy; the accounted main-memory traffic is the
// amortized 1/64 share per CPE, and the issue cost is charged once per
// cluster in the same way.
func (d *DMA) GetShared(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("sw: DMA broadcast length mismatch: dst %d src %d", len(dst), len(src)))
	}
	copy(dst, src)
	if d.mute {
		return
	}
	d.ctr.DMABytesIn += int64(len(dst)*F64Bytes) / CPEsPerCG
	// Each CPE still posts one receive descriptor for the multicast.
	d.ctr.DMAOps++
}
