package sw

// BlockDim is the side of the register-level transpose tile: a 4x4 block
// of float64 fits four Vec4 registers and transposes in 8 shuffles.
const BlockDim = VecWidth

// TransposeBlock transposes a 4x4 row-major block in place in LDM using
// the 8-shuffle register sequence of Figure 3 (intra-CPE stage). The
// shuffle count is accounted on the CPE.
func TransposeBlock(c *CPE, blk []float64) {
	if len(blk) < BlockDim*BlockDim {
		panic("sw: TransposeBlock needs a 16-element block")
	}
	r0 := LoadVec4(blk, 0)
	r1 := LoadVec4(blk, 4)
	r2 := LoadVec4(blk, 8)
	r3 := LoadVec4(blk, 12)
	c0, c1, c2, c3, n := Transpose4x4(r0, r1, r2, r3)
	c0.Store(blk, 0)
	c1.Store(blk, 4)
	c2.Store(blk, 8)
	c3.Store(blk, 12)
	c.CountShuffles(int64(n))
}

// RowTranspose performs the inter-CPE stage of the paper's two-level
// transposition (§7.5, Figure 3 right) across the n CPEs of one mesh row.
//
// Each CPE col=i holds, in LDM, one block-row of an (n*4) x (n*4) matrix:
// blocks[j] is the 4x4 row-major submatrix C[i][j]. On return CPE i holds
// the block-row of the transposed matrix: blocks[j] = transpose(C[j][i]).
//
// The exchange runs in n-1 collision-free phases; in phase k CPE i swaps
// its block i XOR k with CPE i XOR k, each block crossing the register
// fabric as four Vec4 registers. The diagonal block and every received
// block are transposed locally with TransposeBlock.
//
// n must be a power of two no larger than MeshDim so that i XOR k stays
// inside the row (the paper uses the full 8).
func RowTranspose(c *CPE, blocks [][]float64) {
	n := len(blocks)
	if n == 0 || n&(n-1) != 0 || n > MeshDim {
		panic("sw: RowTranspose needs a power-of-two CPE count <= 8")
	}
	i := c.Col
	if i >= n {
		panic("sw: RowTranspose called on a CPE outside the active columns")
	}
	// Diagonal block transposes in place, no communication.
	TransposeBlock(c, blocks[i])

	for k := 1; k < n; k++ {
		p := i ^ k
		mine := blocks[p] // submatrix C[i][p], destined for CPE p
		// Push my block to the partner as four registers, then pull the
		// partner's block. The per-pair receive buffer holds exactly one
		// block (4 registers), so the symmetric send-then-receive order
		// cannot deadlock.
		for r := 0; r < BlockDim; r++ {
			c.RegSend(c.Row, p, LoadVec4(mine, r*BlockDim))
		}
		for r := 0; r < BlockDim; r++ {
			v := c.RegRecv(c.Row, p)
			v.Store(mine, r*BlockDim)
		}
		TransposeBlock(c, blocks[p])
	}
}

// GatherBlocks copies an (n*4 x n*4) row-major matrix slice into per-CPE
// 4x4 blocks for one block-row, and ScatterBlocks writes them back. They
// bridge main-memory layout and the LDM block layout RowTranspose works
// in; DMA traffic is accounted through the CPE's engine.
func GatherBlocks(c *CPE, m []float64, dim, blockRow int, blocks [][]float64) {
	for j := range blocks {
		// Block (blockRow, j): rows blockRow*4..+3, cols j*4..+3.
		c.DMA.GetStride(blocks[j],
			m[blockRow*BlockDim*dim+j*BlockDim:],
			BlockDim, dim, BlockDim)
	}
}

// ScatterBlocks writes per-CPE blocks back into the row-major matrix m.
func ScatterBlocks(c *CPE, m []float64, dim, blockRow int, blocks [][]float64) {
	for j := range blocks {
		c.DMA.PutStride(m[blockRow*BlockDim*dim+j*BlockDim:],
			blocks[j], BlockDim, dim, BlockDim)
	}
}
