package sw

import "fmt"

// LDMBytes is the Local Data Memory capacity of one CPE: 64 KB (§5.2).
// The LDM replaces a hardware data cache; everything a kernel touches
// must be staged into this budget explicitly. The paper's fine-grained
// redesign exists largely because of this constraint, so the simulator
// enforces it strictly: an allocation that would not fit on the hardware
// returns ErrLDMOverflow here.
const LDMBytes = 64 * 1024

// F64Bytes is the size of one double-precision value.
const F64Bytes = 8

// ErrLDMOverflow reports that a kernel's working set exceeded the 64 KB
// Local Data Memory of a CPE.
type ErrLDMOverflow struct {
	Name      string // allocation label
	Requested int    // bytes requested
	Used      int    // bytes already allocated
}

func (e *ErrLDMOverflow) Error() string {
	return fmt.Sprintf("sw: LDM overflow allocating %q: %d B requested, %d B in use, %d B capacity",
		e.Name, e.Requested, e.Used, LDMBytes)
}

// LDM is the user-managed 64 KB scratchpad of one CPE, modeled as a
// checked bump allocator over a real backing arena. Allocations are
// released in bulk with Reset (kernels reuse the whole scratchpad between
// phases) or rewound to a mark with Release (loop-scoped buffers layered
// over kernel-persistent ones, the memory-reuse scheme of Algorithm 2).
type LDM struct {
	arena     []float64
	usedF64   int
	highWater int // peak bytes in use, for reporting tile pressure
}

// NewLDM returns an empty 64 KB scratchpad.
func NewLDM() *LDM {
	return &LDM{arena: make([]float64, LDMBytes/F64Bytes)}
}

// Alloc carves n float64 values out of the scratchpad. The name labels
// the buffer in overflow diagnostics. The returned slice aliases the LDM
// arena; it is valid until the matching Release or Reset.
func (l *LDM) Alloc(name string, n int) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("sw: negative LDM allocation %q (%d)", name, n)
	}
	if (l.usedF64+n)*F64Bytes > LDMBytes {
		return nil, &ErrLDMOverflow{Name: name, Requested: n * F64Bytes, Used: l.usedF64 * F64Bytes}
	}
	buf := l.arena[l.usedF64 : l.usedF64+n : l.usedF64+n]
	l.usedF64 += n
	if b := l.usedF64 * F64Bytes; b > l.highWater {
		l.highWater = b
	}
	return buf, nil
}

// MustAlloc is Alloc for kernels whose tiling has been statically sized to
// fit; it panics on overflow, which indicates a kernel tiling bug.
func (l *LDM) MustAlloc(name string, n int) []float64 {
	buf, err := l.Alloc(name, n)
	if err != nil {
		panic(err)
	}
	return buf
}

// Mark returns the current allocation level for use with Release.
func (l *LDM) Mark() int { return l.usedF64 }

// Release rewinds the allocator to a level previously returned by Mark,
// freeing every allocation made since. Buffers allocated after the mark
// become invalid.
func (l *LDM) Release(mark int) {
	if mark < 0 || mark > l.usedF64 {
		panic(fmt.Sprintf("sw: invalid LDM release mark %d (used %d)", mark, l.usedF64))
	}
	l.usedF64 = mark
}

// Reset frees all allocations.
func (l *LDM) Reset() { l.usedF64 = 0 }

// Used reports the bytes currently allocated.
func (l *LDM) Used() int { return l.usedF64 * F64Bytes }

// HighWater reports the peak bytes ever allocated, i.e. the kernel's true
// scratchpad working set.
func (l *LDM) HighWater() int { return l.highWater }

// Free reports the bytes still available.
func (l *LDM) Free() int { return LDMBytes - l.Used() }
