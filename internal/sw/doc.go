// Package sw is a functional simulator of the SW26010 many-core processor
// that powers the Sunway TaihuLight supercomputer, as described in §5 of
// Fu et al., "Redesigning CAM-SE for Peta-Scale Climate Modeling
// Performance and Ultra-High Resolution on Sunway TaihuLight" (SC'17).
//
// The SW26010 groups its 260 cores into 4 core groups (CGs). Each CG has
// one management processing element (MPE), an 8x8 mesh of computing
// processing elements (CPEs), and a memory controller. A CPE has no
// coherent data cache; instead it owns a 64 KB user-managed scratchpad
// (the Local Data Memory, LDM) and moves data to and from main memory
// with explicit DMA. CPEs in the same row or column of the mesh exchange
// data directly through low-latency register communication. Each CPE has
// a 256-bit vector unit (4 double-precision lanes) with shuffle support.
//
// This package models all of those mechanisms functionally:
//
//   - LDM: a checked bump allocator over a real 64 KB arena. Kernels that
//     would not fit on the hardware fail here too.
//   - DMA: explicit get/put between main-memory slices and LDM buffers,
//     with byte and operation accounting.
//   - RegComm: blocking row/column channels between CPEs, with message
//     accounting, used for the paper's scan (§7.4) and transpose (§7.5)
//     algorithms, which are provided as reusable primitives.
//   - Vec4: a 4-lane double-precision vector value with the shuffle
//     instruction of §7.5.
//   - PerfCounter: per-CPE flop, DMA, and register-communication counters
//     that feed the roofline performance model in internal/perf.
//
// The simulator is functional, not cycle-accurate: kernels compute real
// results (the dycore validates its fields against a serial reference),
// while time is reconstructed from the counters by internal/perf using
// the published SW26010 rates. This is the substitution that makes a
// hardware-bound Gordon Bell paper reproducible off-hardware: code paths,
// capacity limits, and data-movement volumes are real; seconds are modeled.
package sw
