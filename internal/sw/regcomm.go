package sw

import "fmt"

// MeshDim is the side of the CPE mesh: 8x8 = 64 CPEs per core group.
const MeshDim = 8

// CPEsPerCG is the number of computing processing elements per core group.
const CPEsPerCG = MeshDim * MeshDim

// regFabric is the register-communication fabric of one core group.
// The SW26010 lets a CPE push a 256-bit register directly into the
// receive buffer of another CPE in the same row or column of the mesh,
// within tens of cycles (§7.4). The fabric is modeled as one small
// buffered channel per ordered (src,dst) pair that shares a row or a
// column; sends to any other CPE are an architectural violation and
// panic, so kernels cannot accidentally assume all-to-all connectivity
// the hardware does not have.
type regFabric struct {
	// ch[src][dst] is non-nil iff src and dst share a row or column.
	ch [CPEsPerCG][CPEsPerCG]chan Vec4
}

// regBufDepth is the modeled depth of a CPE's register receive buffer.
// The hardware buffers a handful of in-flight registers per link; a
// depth of 4 lets the paper's pipelined scan run without artificial
// serialization while still exerting back-pressure.
const regBufDepth = 4

func newRegFabric() *regFabric {
	f := &regFabric{}
	for s := 0; s < CPEsPerCG; s++ {
		for d := 0; d < CPEsPerCG; d++ {
			if s == d {
				continue
			}
			sameRow := s/MeshDim == d/MeshDim
			sameCol := s%MeshDim == d%MeshDim
			if sameRow || sameCol {
				f.ch[s][d] = make(chan Vec4, regBufDepth)
			}
		}
	}
	return f
}

func cpeID(row, col int) int { return row*MeshDim + col }

// send pushes one register from CPE (srow,scol) to CPE (drow,dcol).
func (f *regFabric) send(srow, scol, drow, dcol int, v Vec4) {
	c := f.ch[cpeID(srow, scol)][cpeID(drow, dcol)]
	if c == nil {
		panic(fmt.Sprintf("sw: register communication between CPE(%d,%d) and CPE(%d,%d): not in same row or column",
			srow, scol, drow, dcol))
	}
	c <- v
}

// recv blocks until a register from CPE (srow,scol) arrives at (drow,dcol).
func (f *regFabric) recv(srow, scol, drow, dcol int) Vec4 {
	c := f.ch[cpeID(srow, scol)][cpeID(drow, dcol)]
	if c == nil {
		panic(fmt.Sprintf("sw: register communication between CPE(%d,%d) and CPE(%d,%d): not in same row or column",
			srow, scol, drow, dcol))
	}
	return <-c
}

// RegSend transfers one 256-bit register to the CPE at (drow,dcol), which
// must share a row or column with this CPE. Blocks when the destination's
// receive buffer is full (back-pressure), like the hardware.
func (c *CPE) RegSend(drow, dcol int, v Vec4) {
	c.cg.fabric.send(c.Row, c.Col, drow, dcol, v)
	c.Ctr.RegMsgs++
	c.Ctr.RegBytes += VecWidth * F64Bytes
}

// RegRecv blocks until a register sent by the CPE at (srow,scol) arrives.
func (c *CPE) RegRecv(srow, scol int) Vec4 {
	return c.cg.fabric.recv(srow, scol, c.Row, c.Col)
}

// RegSendScalar sends a single float64 through the register fabric
// (occupying a full register slot, as on hardware).
func (c *CPE) RegSendScalar(drow, dcol int, x float64) {
	c.RegSend(drow, dcol, Vec4{x, 0, 0, 0})
}

// RegRecvScalar receives a single float64 sent with RegSendScalar.
func (c *CPE) RegRecvScalar(srow, scol int) float64 {
	return c.RegRecv(srow, scol)[0]
}

// ExchangeBlock swaps a data block with the CPE at (drow,dcol) over the
// register fabric: send[] goes out, the partner's block arrives in
// recv[] (same length). Transfers are chunked to the receive-buffer
// depth with a symmetric send-then-drain schedule, so two CPEs
// exchanging blocks concurrently cannot deadlock regardless of block
// size. Lengths must match on both sides and be multiples of VecWidth.
func (c *CPE) ExchangeBlock(drow, dcol int, send, recv []float64) {
	if len(send) != len(recv) || len(send)%VecWidth != 0 {
		panic("sw: ExchangeBlock needs equal vector-multiple lengths")
	}
	chunk := regBufDepth * VecWidth // values per safe burst
	for off := 0; off < len(send); off += chunk {
		end := off + chunk
		if end > len(send) {
			end = len(send)
		}
		for i := off; i < end; i += VecWidth {
			c.RegSend(drow, dcol, LoadVec4(send, i))
		}
		for i := off; i < end; i += VecWidth {
			c.RegRecv(drow, dcol).Store(recv, i)
		}
	}
}
