package sw

import "testing"

func BenchmarkColumnScan128(b *testing.B) {
	cg := NewCoreGroup(0)
	const perCPE = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg.Spawn(func(c *CPE) {
			local := c.LDM.MustAlloc("l", perCPE)
			out := c.LDM.MustAlloc("o", perCPE)
			for k := range local {
				local[k] = float64(k)
			}
			ColumnScan(c, local, out, 0)
		})
	}
}

func BenchmarkRowTranspose(b *testing.B) {
	const dim = MeshDim * BlockDim
	m := make([]float64, dim*dim)
	for i := range m {
		m[i] = float64(i)
	}
	cg := NewCoreGroup(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg.Spawn(func(c *CPE) {
			if c.Row != 0 {
				return
			}
			blocks := make([][]float64, MeshDim)
			for j := range blocks {
				blocks[j] = c.LDM.MustAlloc("blk", BlockDim*BlockDim)
			}
			GatherBlocks(c, m, dim, c.Col, blocks)
			RowTranspose(c, blocks)
			ScatterBlocks(c, m, dim, c.Col, blocks)
		})
	}
}

func BenchmarkSpawnOverhead(b *testing.B) {
	cg := NewCoreGroup(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg.Spawn(func(c *CPE) {})
	}
}

func BenchmarkTranspose4x4(b *testing.B) {
	r0 := Vec4{0, 1, 2, 3}
	r1 := Vec4{4, 5, 6, 7}
	r2 := Vec4{8, 9, 10, 11}
	r3 := Vec4{12, 13, 14, 15}
	for i := 0; i < b.N; i++ {
		r0, r1, r2, r3, _ = Transpose4x4(r0, r1, r2, r3)
	}
	_ = r0
}
