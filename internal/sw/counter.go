package sw

// PerfCounter accumulates the architectural events of one core. The
// paper measures double-precision flops with the Sunway PERF hardware
// monitor (§8.1.1); here kernels account their arithmetic explicitly with
// documented formulas, and data movement is accounted by the DMA and
// register-communication primitives themselves. internal/perf converts
// these counts into modeled seconds.
//
// Counters are owned by a single core's goroutine while a parallel region
// runs and are aggregated after it joins, so no atomics are needed.
type PerfCounter struct {
	FlopsScalar int64 // double-precision scalar arithmetic operations
	FlopsVector int64 // double-precision ops retired through Vec4 lanes
	DMABytesIn  int64 // main memory -> LDM
	DMABytesOut int64 // LDM -> main memory
	DMAOps      int64 // discrete DMA transfers issued
	RegMsgs     int64 // register-communication messages sent
	RegBytes    int64 // register-communication payload bytes
	Shuffles    int64 // vector shuffle instructions
	LDMPeak     int64 // peak LDM working set observed, bytes
}

// Flops returns total double-precision operations, scalar plus vector.
func (c *PerfCounter) Flops() int64 { return c.FlopsScalar + c.FlopsVector }

// DMABytes returns total bytes moved by DMA in either direction.
func (c *PerfCounter) DMABytes() int64 { return c.DMABytesIn + c.DMABytesOut }

// Add accumulates another counter into c (used to aggregate the 64 CPEs
// of a core group after a parallel region joins).
func (c *PerfCounter) Add(o *PerfCounter) {
	c.FlopsScalar += o.FlopsScalar
	c.FlopsVector += o.FlopsVector
	c.DMABytesIn += o.DMABytesIn
	c.DMABytesOut += o.DMABytesOut
	c.DMAOps += o.DMAOps
	c.RegMsgs += o.RegMsgs
	c.RegBytes += o.RegBytes
	c.Shuffles += o.Shuffles
	if o.LDMPeak > c.LDMPeak {
		c.LDMPeak = o.LDMPeak
	}
}

// MaxInPlace records, per field, the maximum of c and o. The makespan of
// a parallel region is governed by the most loaded CPE, so the roofline
// model consumes a max-reduced counter alongside the sum.
func (c *PerfCounter) MaxInPlace(o *PerfCounter) {
	maxi := func(dst *int64, v int64) {
		if v > *dst {
			*dst = v
		}
	}
	maxi(&c.FlopsScalar, o.FlopsScalar)
	maxi(&c.FlopsVector, o.FlopsVector)
	maxi(&c.DMABytesIn, o.DMABytesIn)
	maxi(&c.DMABytesOut, o.DMABytesOut)
	maxi(&c.DMAOps, o.DMAOps)
	maxi(&c.RegMsgs, o.RegMsgs)
	maxi(&c.RegBytes, o.RegBytes)
	maxi(&c.Shuffles, o.Shuffles)
	maxi(&c.LDMPeak, o.LDMPeak)
}

// Reset zeroes every counter.
func (c *PerfCounter) Reset() { *c = PerfCounter{} }
