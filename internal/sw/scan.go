package sw

// ColumnScan computes an inclusive prefix sum distributed down one column
// of the CPE mesh — the three-stage accumulation algorithm of §7.4 used
// to parallelize the vertical pressure integral in compute_and_apply_rhs.
//
// The atmospheric column of nlev layers is split into MeshDim groups of
// nlev/MeshDim contiguous layers; the CPE in mesh row i owns group i and
// passes local[] = its layer increments a_k. base is the initial value
// (the paper's p0, the top-of-column geopotential/pressure). On return
// out[k] = base + sum of all increments up to and including local[k],
// globally across the column.
//
//	Stage 1, local accumulation:   each CPE prefix-sums its own layers.
//	Stage 2, partial sum exchange: CPE (i,j) waits for the running total
//	    from CPE (i-1,j) over register communication, adds its own block
//	    total, and forwards it to CPE (i+1,j).
//	Stage 3, global accumulation:  the carry is added to every local
//	    prefix.
//
// The result is written into out (which may alias local). Flops are
// accounted on the CPE.
func ColumnScan(c *CPE, local, out []float64, base float64) {
	n := len(local)
	if len(out) != n {
		panic("sw: ColumnScan length mismatch")
	}
	// Stage 1: local inclusive prefix sums.
	run := 0.0
	for k := 0; k < n; k++ {
		run += local[k]
		out[k] = run
	}
	c.CountFlops(int64(n))

	// Stage 2: carry chain down the mesh column. Row 0 starts from base;
	// every other row blocks on the register read from the row above —
	// the pipelined dependency the paper exploits: while CPE i waits, it
	// has already done its stage-1 work.
	carry := base
	if c.Row > 0 {
		carry = c.RegRecvScalar(c.Row-1, c.Col)
	}
	if c.Row < MeshDim-1 {
		c.RegSendScalar(c.Row+1, c.Col, carry+run)
		c.CountFlops(1)
	}

	// Stage 3: apply the carry to every local prefix.
	for k := 0; k < n; k++ {
		out[k] += carry
	}
	c.CountFlops(int64(n))
}

// ColumnScanExclusive is ColumnScan returning exclusive prefix sums:
// out[k] = base + sum of increments strictly before local[k]. The
// hydrostatic integral needs pressure at layer interfaces, which is the
// exclusive scan of layer thicknesses.
func ColumnScanExclusive(c *CPE, local, out []float64, base float64) {
	n := len(local)
	if len(out) != n {
		panic("sw: ColumnScanExclusive length mismatch")
	}
	run := 0.0
	// Stage 1 with a one-slot delay so out[k] excludes local[k].
	for k := 0; k < n; k++ {
		out[k] = run
		run += local[k]
	}
	c.CountFlops(int64(n))

	carry := base
	if c.Row > 0 {
		carry = c.RegRecvScalar(c.Row-1, c.Col)
	}
	if c.Row < MeshDim-1 {
		c.RegSendScalar(c.Row+1, c.Col, carry+run)
		c.CountFlops(1)
	}
	for k := 0; k < n; k++ {
		out[k] += carry
	}
	c.CountFlops(int64(n))
}

// ColumnScanReverse computes the upward (surface-to-top) counterpart of
// ColumnScan: out[k] = base + sum of increments at indices >= k within
// the global column, where mesh row MeshDim-1 holds the bottom of the
// column. It parallelizes the hydrostatic geopotential integral, which
// accumulates from the surface upward. The half parameter subtracts half
// of the local increment (out[k] = carry_below + sum_{l>k} local[l] +
// local[k]*frac), matching the midpoint geopotential formula with
// frac = 0.5 and plain inclusive scans with frac = 1.
func ColumnScanReverse(c *CPE, local, out []float64, base, frac float64) {
	n := len(local)
	if len(out) != n {
		panic("sw: ColumnScanReverse length mismatch")
	}
	// Stage 1: local reverse scan with the fractional top contribution.
	run := 0.0
	for k := n - 1; k >= 0; k-- {
		out[k] = run + local[k]*frac
		run += local[k]
	}
	c.CountFlops(int64(3 * n))

	// Stage 2: carry chain up the mesh column (from the last row to row 0).
	carry := base
	if c.Row < MeshDim-1 {
		carry = c.RegRecvScalar(c.Row+1, c.Col)
	}
	if c.Row > 0 {
		c.RegSendScalar(c.Row-1, c.Col, carry+run)
		c.CountFlops(1)
	}
	for k := 0; k < n; k++ {
		out[k] += carry
	}
	c.CountFlops(int64(n))
}

// ColumnReduce sums one value per CPE down a mesh column and returns the
// total on every CPE of the column. It is built from the same carry chain
// as ColumnScan plus a broadcast back up, and is used for column-integral
// diagnostics (total mass, energy) inside Athread kernels.
func ColumnReduce(c *CPE, x float64) float64 {
	carry := x
	if c.Row > 0 {
		carry = c.RegRecvScalar(c.Row-1, c.Col) + x
		c.CountFlops(1)
	}
	if c.Row < MeshDim-1 {
		c.RegSendScalar(c.Row+1, c.Col, carry)
		// Wait for the full total to come back up the column.
		total := c.RegRecvScalar(c.Row+1, c.Col)
		if c.Row > 0 {
			c.RegSendScalar(c.Row-1, c.Col, total)
		}
		return total
	}
	// Bottom row holds the grand total; start the upward broadcast.
	if c.Row > 0 {
		c.RegSendScalar(c.Row-1, c.Col, carry)
	}
	return carry
}
