package footprint

import (
	"strings"
	"testing"

	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/mesh"
	"swcam/internal/sw"
)

func TestEulerAnalyzerAgreesWithEngine(t *testing.T) {
	// The engine splits nlev over the 8 mesh rows; the analyzer, asked
	// for the largest block that fits, must accept that choice (block
	// nlev/8 must fit) for the paper's dycore dimensions.
	const np, nlev = 4, 128
	k := EulerAthreadKernel(np, nlev)
	r := Analyze(k)
	if r.MinBlockFail {
		t.Fatal("euler cannot fit at any block size")
	}
	if r.Block < nlev/8 {
		t.Errorf("analyzer's best block %d is below the engine's nlev/8 = %d", r.Block, nlev/8)
	}
	// Cross-check against the live engine: its recorded LDM peak at the
	// engine's blocking must match the analyzer's accounting to within
	// the scratch slack.
	m := mesh.New(2, 4)
	en := exec.NewEngine(m, []int{0, 1, 2, 3, 4, 5, 6, 7}, nlev, 4)
	st := dycore.NewState(8, np, nlev, 4)
	for ei := range st.DP {
		for i := range st.DP[ei] {
			st.DP[ei][i] = 100
			st.Qdp[ei][i%len(st.Qdp[ei])] = 1
		}
	}
	cost := en.EulerStep(exec.Athread, st, 10)
	analyzed := totalBytes(k, nlev/8)
	if cost.LDMPeak > int64(analyzed)+4096 {
		t.Errorf("engine LDM peak %d exceeds analyzed %d by more than slack", cost.LDMPeak, analyzed)
	}
	if cost.LDMPeak > sw.LDMBytes {
		t.Errorf("engine overflows LDM: %d", cost.LDMPeak)
	}
}

func TestRHSAnalyzerRequiresTiling(t *testing.T) {
	// At nlev=128 the rhs working set exceeds 64 KB untiled and must be
	// tiled; at nlev=8 it fits whole.
	big := Analyze(RHSAthreadKernel(4, 128))
	if big.Fits {
		t.Error("nlev=128 rhs should not fit untiled")
	}
	if big.MinBlockFail {
		t.Error("nlev=128 rhs must fit after tiling")
	}
	if big.Block < 16 {
		t.Errorf("rhs best block %d; the engine's nlev/8=16 must fit", big.Block)
	}
	small := Analyze(RHSAthreadKernel(4, 8))
	if !small.Fits {
		t.Error("nlev=8 rhs should fit untiled")
	}
}

func TestOpenACCWholeElementOverflow(t *testing.T) {
	// The directive port cannot buffer whole elements at CAM dims — the
	// reason the Sunway OpenACC compiler grew multi-dimensional
	// buffering extensions (§5.3).
	r := Analyze(OpenACCWholeElementKernel(4, 128, 8))
	if r.Fits {
		t.Error("8 whole-element fields at nlev=128 should overflow 64 KB")
	}
	if r.MinBlockFail {
		t.Error("tiling should rescue the OpenACC buffering")
	}
}

func TestAnalyzeReportStrings(t *testing.T) {
	fits := Analyze(Kernel{Name: "tiny", Axis: "levels", Full: 8,
		Arrays: []Array{{Name: "a", Elems: 100, Axis: Tiled}}})
	if !strings.Contains(fits.String(), "fits LDM untiled") {
		t.Errorf("report: %s", fits.String())
	}
	tiled := Analyze(Kernel{Name: "big", Axis: "levels", Full: 64,
		Arrays: []Array{{Name: "a", Elems: 64 * 4096, Axis: Tiled}}})
	if !strings.Contains(tiled.String(), "tile to block=") {
		t.Errorf("report: %s", tiled.String())
	}
	hopeless := Analyze(Kernel{Name: "hopeless", Axis: "levels", Full: 4,
		Arrays: []Array{{Name: "fixed monster", Elems: 10000, Axis: Fixed}}})
	if !hopeless.MinBlockFail || !strings.Contains(hopeless.String(), "restructuring") {
		t.Errorf("report: %s", hopeless.String())
	}
}

func TestBlockIsDivisorAndMaximal(t *testing.T) {
	k := Kernel{Name: "k", Axis: "levels", Full: 60,
		Arrays: []Array{{Name: "f", Elems: 60 * 300, Axis: Tiled}}}
	r := Analyze(k)
	if 60%r.Block != 0 {
		t.Errorf("block %d does not divide 60", r.Block)
	}
	// No larger divisor fits.
	for _, b := range divisorsDescending(60) {
		if b <= r.Block {
			break
		}
		if totalBytes(k, b) <= sw.LDMBytes {
			t.Errorf("divisor %d also fits but analyzer chose %d", b, r.Block)
		}
	}
}

func TestCopiesMultiply(t *testing.T) {
	single := Analyze(Kernel{Name: "s", Full: 8,
		Arrays: []Array{{Name: "a", Elems: 1000, Axis: Fixed, Copies: 1}}})
	double := Analyze(Kernel{Name: "d", Full: 8,
		Arrays: []Array{{Name: "a", Elems: 1000, Axis: Fixed, Copies: 2}}})
	if double.FullBytes != 2*single.FullBytes {
		t.Errorf("copies accounting wrong: %d vs %d", double.FullBytes, single.FullBytes)
	}
}

// TestRankStateMatchesAllocatedState cross-checks the accounting
// formula against the real thing: summing len() over every field of an
// actual dycore.State must equal StateBytes/8, for a grid of dims.
func TestRankStateMatchesAllocatedState(t *testing.T) {
	for _, tc := range []struct{ np, nlev, qsize, elems int }{
		{4, 30, 4, 1},
		{4, 30, 4, 24},
		{4, 8, 2, 6},
		{4, 128, 27, 3}, // CAM production dims
		{3, 4, 0, 5},    // tracer-free
	} {
		st := dycore.NewState(tc.elems, tc.np, tc.nlev, tc.qsize)
		floats := 0
		for e := 0; e < tc.elems; e++ {
			floats += len(st.U[e]) + len(st.V[e]) + len(st.T[e]) +
				len(st.DP[e]) + len(st.Qdp[e]) + len(st.Phis[e])
		}
		f := RankState(tc.np, tc.nlev, tc.qsize, tc.elems)
		if got := f.StateBytes; got != floats*8 {
			t.Errorf("%+v: StateBytes = %d, allocated state holds %d bytes", tc, got, floats*8)
		}
		// Scratch is 2 state copies + 4 laplacian fields + 1 tracer field.
		npsq := tc.np * tc.np
		scratchFloats := 2*floats + tc.elems*(4*tc.nlev*npsq+tc.qsize*tc.nlev*npsq)
		if got := f.ScratchBytes; got != scratchFloats*8 {
			t.Errorf("%+v: ScratchBytes = %d, want %d", tc, got, scratchFloats*8)
		}
		if f.Total() != f.StateBytes+f.ScratchBytes {
			t.Errorf("%+v: Total %d != state %d + scratch %d", tc, f.Total(), f.StateBytes, f.ScratchBytes)
		}
	}
}

// TestMaxElemsWithin: the budget knob is exact — MaxElemsWithin fits,
// one more element does not.
func TestMaxElemsWithin(t *testing.T) {
	const np, nlev, qsize = 4, 30, 4
	one := RankState(np, nlev, qsize, 1).Total()
	for _, budget := range []int{0, one - 1, one, 10 * one, 10*one + one/2} {
		k := MaxElemsWithin(np, nlev, qsize, budget)
		if k > 0 && RankState(np, nlev, qsize, k).Total() > budget {
			t.Errorf("budget %d: %d elements overshoot", budget, k)
		}
		if RankState(np, nlev, qsize, k+1).Total() <= budget {
			t.Errorf("budget %d: could have fit %d elements, said %d", budget, k+1, k)
		}
	}
}
