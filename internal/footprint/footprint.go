// Package footprint is the reproduction of the paper's memory-footprint
// analysis and reduction tool (§7.2): given a kernel's arrays and the
// loop axis being tiled, it computes the LDM working set, decides
// whether the kernel fits the 64 KB scratchpad, and — when it does not —
// finds the largest tiling (block size along the tiled axis) that fits,
// which is exactly the decision the paper's source-to-source tooling
// made for every one of CAM's hundreds of kernels.
//
// The execution engines in internal/exec encode their tilings by hand,
// the way the paper's Athread rewrite does; the tests cross-check those
// hand tilings against this analyzer, playing the role of the paper's
// "memory footprint analysis" pass over the refactored code.
package footprint

import (
	"fmt"
	"sort"
	"strings"

	"swcam/internal/sw"
)

// Axis tags how an array's leading extent responds to tiling.
type Axis int

const (
	// Fixed arrays (metric terms, derivative matrices) do not shrink
	// when the kernel is tiled.
	Fixed Axis = iota
	// Tiled arrays scale with the block size along the tiled loop
	// (e.g. per-level fields when tiling the vertical axis).
	Tiled
)

// Array describes one kernel buffer.
type Array struct {
	Name  string
	Elems int  // float64 elements at FULL extent of the tiled axis
	Axis  Axis // whether tiling shrinks it
	// Copies > 1 models double-buffering or in/out pairs.
	Copies int
}

// bytesAt returns the array's LDM bytes when the tiled axis is cut to
// block out of full.
func (a Array) bytesAt(block, full int) int {
	copies := a.Copies
	if copies < 1 {
		copies = 1
	}
	elems := a.Elems
	if a.Axis == Tiled {
		elems = a.Elems * block / full
	}
	return elems * 8 * copies
}

// Kernel is a kernel's footprint declaration.
type Kernel struct {
	Name   string
	Axis   string // human name of the tiled loop (e.g. "levels")
	Full   int    // full extent of the tiled axis
	Arrays []Array
}

// Report is the analyzer's verdict.
type Report struct {
	Kernel       string
	FullBytes    int  // working set without tiling
	Fits         bool // fits the LDM untiled
	Block        int  // largest block size that fits (== Full when Fits)
	TiledBytes   int  // working set at that block size
	MinBlockFail bool // even block=1 exceeds the LDM
}

// Analyze computes the working set and, if needed, the largest block
// size (a divisor of Full, preferring larger) that fits the LDM budget.
func Analyze(k Kernel) Report {
	r := Report{Kernel: k.Name, FullBytes: totalBytes(k, k.Full)}
	if r.FullBytes <= sw.LDMBytes {
		r.Fits = true
		r.Block = k.Full
		r.TiledBytes = r.FullBytes
		return r
	}
	// Try divisors of Full from largest to smallest.
	for _, b := range divisorsDescending(k.Full) {
		if tb := totalBytes(k, b); tb <= sw.LDMBytes {
			r.Block = b
			r.TiledBytes = tb
			return r
		}
	}
	r.MinBlockFail = true
	return r
}

func totalBytes(k Kernel, block int) int {
	tot := 0
	for _, a := range k.Arrays {
		tot += a.bytesAt(block, k.Full)
	}
	return tot
}

func divisorsDescending(n int) []int {
	var d []int
	for i := 1; i <= n; i++ {
		if n%i == 0 {
			d = append(d, i)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(d)))
	return d
}

// String renders the report the way the paper's tooling logged its
// decisions.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s full %6.1f KB", r.Kernel, float64(r.FullBytes)/1024)
	switch {
	case r.Fits:
		fmt.Fprintf(&b, "  fits LDM untiled")
	case r.MinBlockFail:
		fmt.Fprintf(&b, "  DOES NOT FIT even at block=1 — needs restructuring")
	default:
		fmt.Fprintf(&b, "  tile to block=%d (%.1f KB)", r.Block, float64(r.TiledBytes)/1024)
	}
	return b.String()
}

// EulerAthreadKernel declares the Algorithm-2 euler_step working set for
// the given dims: the analyzer must land on the same vertical blocking
// the engine hard-codes (nlev split over the 8 mesh rows).
func EulerAthreadKernel(np, nlev int) Kernel {
	npsq := np * np
	return Kernel{
		Name: "euler_step (athread)",
		Axis: "levels", Full: nlev,
		Arrays: []Array{
			{Name: "deriv", Elems: npsq, Axis: Fixed, Copies: 1},
			{Name: "dinv", Elems: 4 * npsq, Axis: Fixed, Copies: 1},
			{Name: "metdet", Elems: npsq, Axis: Fixed, Copies: 1},
			{Name: "u", Elems: nlev * npsq, Axis: Tiled, Copies: 1},
			{Name: "v", Elems: nlev * npsq, Axis: Tiled, Copies: 1},
			{Name: "qdp", Elems: nlev * npsq, Axis: Tiled, Copies: 1},
			{Name: "slab scratch", Elems: 5 * npsq, Axis: Fixed, Copies: 1},
		},
	}
}

// RHSAthreadKernel declares the Athread compute_and_apply_rhs working
// set: 4 current fields, 4 output tiles, the vertical scan scratch, and
// per-level slabs.
func RHSAthreadKernel(np, nlev int) Kernel {
	npsq := np * np
	return Kernel{
		Name: "compute_and_apply_rhs (athread)",
		Axis: "levels", Full: nlev,
		Arrays: []Array{
			{Name: "metric+deriv+lat+phis", Elems: 11 * npsq, Axis: Fixed, Copies: 1},
			{Name: "cur u,v,T,dp", Elems: nlev * npsq, Axis: Tiled, Copies: 4},
			{Name: "out u,v,T,dp", Elems: nlev * npsq, Axis: Tiled, Copies: 4},
			{Name: "pMid,phi,divDp,cumDiv", Elems: nlev * npsq, Axis: Tiled, Copies: 4},
			{Name: "column scratch", Elems: 2 * nlev, Axis: Tiled, Copies: 1},
			{Name: "level slabs", Elems: 12 * npsq, Axis: Fixed, Copies: 1},
		},
	}
}

// OpenACCWholeElementKernel declares what the directive approach tries
// to buffer — whole-element arrays with no tiling freedom beyond what
// the (single) collapsed loop allows. For nlev=128 CAM dimensions this
// overflows, which is why the paper's OpenACC port needed the customized
// multi-dimensional buffering extensions (§5.3).
func OpenACCWholeElementKernel(np, nlev, nfields int) Kernel {
	npsq := np * np
	return Kernel{
		Name: "whole-element copyin (openacc)",
		Axis: "levels", Full: nlev,
		Arrays: []Array{
			{Name: "fields", Elems: nlev * npsq, Axis: Tiled, Copies: nfields},
			{Name: "metric", Elems: 6 * npsq, Axis: Fixed, Copies: 1},
		},
	}
}

// RankFootprint is the host-memory bill for one rank of the distributed
// driver, the number the scaling campaign's per-rank memory budget is
// enforced against. Unlike the LDM analysis above (which is about one
// kernel's 64 KB scratchpad working set), this accounts the resident
// per-rank state: the prognostic fields plus the driver's pooled step
// scratch.
type RankFootprint struct {
	Elems        int // local elements on the rank
	StateBytes   int // prognostic dycore.State (U,V,T,DP,Qdp,Phis)
	ScratchBytes int // pooled stepScratch: 2 state copies + 4 laplacians + tracer scratch
}

// Total is the rank's resident float64 bytes.
func (f RankFootprint) Total() int { return f.StateBytes + f.ScratchBytes }

// stateFloatsPerElem counts one element's prognostic float64s: four
// level fields (U,V,T,DP), qsize tracer-mass fields, and the surface
// geopotential.
func stateFloatsPerElem(np, nlev, qsize int) int {
	npsq := np * np
	return (4+qsize)*nlev*npsq + npsq
}

// RankState bills elems local elements at the given dims. The scratch
// term mirrors core's stepScratch pool exactly: two full state copies
// (time-level staging), four per-level laplacian fields
// (hyperviscosity), and one tracer-shaped field (limiter staging).
func RankState(np, nlev, qsize, elems int) RankFootprint {
	npsq := np * np
	perState := stateFloatsPerElem(np, nlev, qsize)
	scratch := 2*perState + (4*nlev+qsize*nlev)*npsq
	return RankFootprint{
		Elems:        elems,
		StateBytes:   elems * perState * 8,
		ScratchBytes: elems * scratch * 8,
	}
}

// MaxElemsWithin returns the largest local element count whose rank
// footprint stays within budgetBytes (zero when even one element does
// not fit) — the knob the sweep harness uses to refuse configurations
// that would overcommit the box.
func MaxElemsWithin(np, nlev, qsize, budgetBytes int) int {
	one := RankState(np, nlev, qsize, 1).Total()
	if one <= 0 || budgetBytes < one {
		return 0
	}
	return budgetBytes / one
}
