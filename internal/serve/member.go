// Package serve is the ensemble-as-a-service layer: a resident forecast
// server that integrates N perturbed-initial-condition ensemble members
// continuously on the resilient runtime and answers field-slice, point-
// forecast, ensemble-statistics, and TC-track queries from versioned
// snapshots — degrading gracefully through member failures instead of
// dying. See DESIGN.md §12.
package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"swcam/internal/core"
	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/mpirt"
	"swcam/internal/obs"
	"swcam/internal/tc"
)

// MemberState is one ensemble member's supervision state.
type MemberState int32

const (
	// MemberStarting: built but no snapshot published yet.
	MemberStarting MemberState = iota
	// MemberRunning: integrating and publishing on cadence.
	MemberRunning
	// MemberRecovering: crashed; the supervisor is backing off and will
	// restart it from its last good snapshot. Its slot keeps serving
	// that snapshot, marked stale.
	MemberRecovering
	// MemberQuarantined: failed QuarantineAfter consecutive restarts;
	// the supervisor has given up on it. Its last snapshot stays
	// servable (stale) and ensemble queries exclude it.
	MemberQuarantined
	// MemberStopped: drained cleanly.
	MemberStopped
	// MemberCompleted: integrated out to the configured forecast
	// horizon (MaxCycles) and stopped there by design. Its final
	// snapshot keeps serving — a completed forecast is a product, not
	// a degradation, so it is not marked stale by state.
	MemberCompleted
)

func (s MemberState) String() string {
	switch s {
	case MemberStarting:
		return "starting"
	case MemberRunning:
		return "running"
	case MemberRecovering:
		return "recovering"
	case MemberQuarantined:
		return "quarantined"
	case MemberStopped:
		return "stopped"
	case MemberCompleted:
		return "completed"
	}
	return fmt.Sprintf("MemberState(%d)", int32(s))
}

// Config describes the supervised ensemble.
type Config struct {
	Members int           // ensemble size (>= 1)
	Dycore  dycore.Config // per-member model configuration
	Backend exec.Backend
	Ranks   int // simulated core groups per member
	// CycleSteps is the number of dynamics steps between snapshot
	// publishes (default 2). A member crash loses at most one cycle.
	CycleSteps int
	// MaxCycles is the forecast horizon: a member that completes this
	// many cycles stops integrating (state "completed") and serves its
	// final snapshot from then on. 0 means integrate forever — note
	// that at toy resolutions the dycore eventually goes unstable on a
	// long enough free run, at which point members crash into
	// quarantine and serve their last pre-blowup snapshot stale; a
	// bounded horizon is how real forecast systems avoid asking that
	// question in the first place.
	MaxCycles  int
	DynWorkers int // intra-rank workers per rank engine (0 = serial)

	// IC selects the shared base initial condition: "vortex" (the
	// Katrina-like warm-core cyclone; enables meaningful TC-track
	// queries) or "barowave". Default "vortex".
	IC string
	// PerturbAmp is the member-IC temperature-perturbation amplitude in
	// kelvin (default 0.01). Member 0 is the unperturbed control.
	PerturbAmp float64
	// Seed drives every deterministic choice: member perturbations,
	// restart jitter, injected kills.
	Seed int64

	// Recovery selects the intra-member supervision mode for transport
	// faults: "ladder" (default) or "global" (see core.ResilientJob).
	Recovery   string
	MaxRetries int    // intra-member retry budget per cycle (default 10)
	Spares     int    // spare ranks for ladder respawn
	Faults     string // mpirt fault spec injected inside each member's world

	// Kills is the supervisor-level fault schedule: injected member
	// crashes ("process death" of a whole member), parsed from specs
	// like "1@3,0@5" (member 1 dies entering its cycle 3, ...). Each
	// kill fires once.
	Kills KillPlan

	// RestartBackoff is the sleep before the first restart of a crashed
	// member, doubling per consecutive failure up to MaxBackoff, with
	// seeded jitter (defaults 50ms / 2s).
	RestartBackoff time.Duration
	MaxBackoff     time.Duration
	// QuarantineAfter is the number of consecutive crashes after which
	// a member is quarantined instead of restarted (default 5).
	QuarantineAfter int

	// StaleAfter additionally marks responses stale when the snapshot
	// is older than this wall-clock age (0 = staleness is state-based
	// only: recovering/quarantined members serve stale).
	StaleAfter time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Members < 1 {
		out.Members = 1
	}
	if out.Ranks < 1 {
		out.Ranks = 1
	}
	if out.CycleSteps < 1 {
		out.CycleSteps = 2
	}
	if out.IC == "" {
		out.IC = "vortex"
	}
	if out.PerturbAmp == 0 {
		out.PerturbAmp = 0.01
	}
	if out.Recovery == "" {
		out.Recovery = "ladder"
	}
	if out.MaxRetries < 1 {
		out.MaxRetries = 10
	}
	if out.RestartBackoff <= 0 {
		out.RestartBackoff = 50 * time.Millisecond
	}
	if out.MaxBackoff <= 0 {
		out.MaxBackoff = 2 * time.Second
	}
	if out.QuarantineAfter < 1 {
		out.QuarantineAfter = 5
	}
	return out
}

// KillPlan schedules injected member crashes: member index -> cycle
// indices at which the member dies instead of integrating. Each entry
// fires exactly once (a restarted member re-runs the killed cycle); a
// cycle listed k times kills the member k consecutive times there —
// the way to drive a member into quarantine.
type KillPlan map[int][]int

// ParseKillPlan parses "M@C,M@C,..." (member M dies entering cycle C).
// An empty spec yields a nil plan.
func ParseKillPlan(spec string) (KillPlan, error) {
	if spec == "" {
		return nil, nil
	}
	plan := KillPlan{}
	for _, part := range strings.Split(spec, ",") {
		m, c, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("serve: kill spec %q: want member@cycle", part)
		}
		mi, err1 := strconv.Atoi(m)
		ci, err2 := strconv.Atoi(c)
		if err1 != nil || err2 != nil || mi < 0 || ci < 0 {
			return nil, fmt.Errorf("serve: kill spec %q: want nonnegative member@cycle", part)
		}
		plan[mi] = append(plan[mi], ci)
	}
	for m := range plan {
		sort.Ints(plan[m])
	}
	return plan, nil
}

// errInjectedKill marks a supervisor-level injected member crash.
var errInjectedKill = errors.New("serve: injected member kill")

// Member is one supervised ensemble member: a ResilientJob integrating
// a perturbed-IC copy of the model, publishing a snapshot per cycle.
type Member struct {
	idx int
	sup *Supervisor
	cfg Config

	job   *core.ParallelJob
	rj    *core.ResilientJob
	local []*dycore.State
	base  *dycore.State // the member's perturbed IC (immutable)

	cycle    int         // completed cycles (monotone across restarts)
	kills    map[int]int // cycle -> remaining injected crashes there
	jitter   *rand.Rand
	state    atomic.Int32
	restarts atomic.Int64 // restarts performed so far

	mu      sync.Mutex
	lastErr string
}

// newMember builds member idx from scratch: base IC (shared init +
// seeded perturbation; member 0 is the unperturbed control) and a fresh
// job/supervisor pair.
func newMember(idx int, sup *Supervisor, cfg Config) (*Member, error) {
	s, err := dycore.NewSolver(cfg.Dycore)
	if err != nil {
		return nil, err
	}
	g := s.NewState()
	switch cfg.IC {
	case "vortex":
		s.InitRest(g, 288)
		tc.KatrinaLikeVortex().Install(s, g)
	case "barowave":
		s.InitBaroclinicWave(g)
	default:
		return nil, fmt.Errorf("serve: unknown IC %q (vortex|barowave)", cfg.IC)
	}
	if idx > 0 {
		core.PerturbInitial(g, cfg.Seed+int64(idx), cfg.PerturbAmp)
	}
	kills := map[int]int{}
	for _, c := range cfg.Kills[idx] {
		kills[c]++
	}
	m := &Member{
		idx: idx, sup: sup, cfg: cfg, base: g,
		kills:  kills,
		jitter: rand.New(rand.NewSource(cfg.Seed ^ int64(0x5eed<<8) ^ int64(idx))),
	}
	if err := m.build(nil, 0); err != nil {
		return nil, err
	}
	m.setState(MemberStarting)
	return m, nil
}

// build constructs a fresh job world (a "respawned member process") and
// seats it at the given state: from a decoded snapshot, or from the
// member's base IC when from is nil.
func (m *Member) build(from *dycore.State, step int) error {
	job, err := core.NewParallelJob(m.cfg.Dycore, m.cfg.Backend, true, m.cfg.Ranks)
	if err != nil {
		return err
	}
	if m.cfg.DynWorkers != 0 {
		job.SetDynWorkers(m.cfg.DynWorkers)
	}
	if m.sup.probe != nil {
		job.Instrument(m.sup.probe)
	}
	if m.cfg.Faults != "" {
		// Fresh plan per member lifetime, seeded by the shared spec: a
		// respawned process faces the same fault environment.
		plan, perr := mpirt.ParseFaultPlan(m.cfg.Faults, m.cfg.Ranks, int64(m.cfg.CycleSteps)*400)
		if perr != nil {
			return perr
		}
		job.Faults = plan
		job.RecvTimeout = 2 * time.Second
		job.CheckEvery = 1
	}
	rj := core.NewResilientJob(job)
	rj.CheckpointEvery = m.cfg.CycleSteps
	rj.MaxRetries = m.cfg.MaxRetries
	rj.Spares = m.cfg.Spares
	if m.cfg.Recovery == "global" {
		rj.Mode = core.ModeGlobal
	} else {
		rj.Mode = core.ModeLadder
	}
	src := m.base
	if from != nil {
		src = from
	}
	job.SetStepCount(step)
	m.job = job
	m.rj = rj
	m.local = job.Scatter(src)
	return nil
}

// atHorizon reports whether the member has integrated out to the
// configured forecast horizon.
func (m *Member) atHorizon() bool {
	return m.cfg.MaxCycles > 0 && m.cycle >= m.cfg.MaxCycles
}

// shouldKill reports (and consumes) a scheduled injected crash for the
// cycle the member is about to run.
func (m *Member) shouldKill(cycle int) bool {
	if m.kills[cycle] > 0 {
		m.kills[cycle]--
		return true
	}
	return false
}

// cycleOnce advances one cycle and publishes the resulting snapshot.
func (m *Member) cycleOnce() error {
	if m.shouldKill(m.cycle) {
		return fmt.Errorf("%w: member %d at cycle %d", errInjectedKill, m.idx, m.cycle)
	}
	_, err := m.rj.Run(m.local, m.cfg.CycleSteps)
	m.local = m.rj.States() // a shrink recovery replaces the slice
	if err != nil {
		return err
	}
	g := m.job.Gather(m.local)
	step := m.job.StepCount()
	simHours := float64(step) * m.cfg.Dycore.Dt / 3600
	if err := m.sup.store.Publish(m.idx, step, simHours, g); err != nil {
		return err
	}
	m.cycle++
	return nil
}

// rebuild restarts a crashed member: a fresh world seated at the last
// good published snapshot (or the base IC if none exists yet). Because
// the dycore is deterministic and the snapshot codec is bit-exact, the
// restarted member rejoins its own trajectory bit-for-bit.
func (m *Member) rebuild() error {
	st, meta, err := m.sup.store.Read(m.idx)
	if err != nil {
		if errors.Is(err, ErrNoSnapshot) {
			return m.build(nil, 0)
		}
		return err
	}
	// The cached state is shared read-only with the request path; build
	// scatters (copies) out of it, never mutates it.
	return m.build(st, meta.Step)
}

func (m *Member) setState(st MemberState) {
	m.state.Store(int32(st))
	m.sup.reg().Gauge(fmt.Sprintf("serve.member.%d.state", m.idx)).Set(float64(st))
}

// Index returns the member's ensemble index.
func (m *Member) Index() int { return m.idx }

// State returns the member's current supervision state.
func (m *Member) State() MemberState { return MemberState(m.state.Load()) }

// Restarts returns how many times the supervisor has restarted the
// member so far.
func (m *Member) Restarts() int64 { return m.restarts.Load() }

func (m *Member) recordErr(err error) {
	m.mu.Lock()
	m.lastErr = err.Error()
	m.mu.Unlock()
}

// LastError returns the most recent crash cause ("" if none).
func (m *Member) LastError() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

// loop is the member's supervision loop: integrate and publish until
// stopped, restarting on crashes with exponential backoff plus seeded
// jitter, quarantining after QuarantineAfter consecutive failures.
func (m *Member) loop(stop <-chan struct{}) {
	defer m.sup.wg.Done()
	backoff := m.cfg.RestartBackoff
	consecutive := 0
	for {
		select {
		case <-stop:
			m.setState(MemberStopped)
			return
		default:
		}
		if m.atHorizon() {
			m.setState(MemberCompleted)
			return
		}
		err := m.cycleOnce()
		if err == nil {
			m.setState(MemberRunning)
			consecutive = 0
			backoff = m.cfg.RestartBackoff
			continue
		}
		m.recordErr(err)
		consecutive++
		m.sup.reg().Counter("serve.member.crashes").Add(1)
		if consecutive > m.cfg.QuarantineAfter {
			m.setState(MemberQuarantined)
			m.sup.reg().Counter("serve.member.quarantines").Add(1)
			return
		}
		m.setState(MemberRecovering)
		// Exponential backoff with up to 50% seeded jitter: restarts of
		// independently crashed members de-synchronize instead of
		// stampeding the host together.
		d := backoff + time.Duration(m.jitter.Int63n(int64(backoff)/2+1))
		select {
		case <-stop:
			m.setState(MemberStopped)
			return
		case <-time.After(d):
		}
		if backoff *= 2; backoff > m.cfg.MaxBackoff {
			backoff = m.cfg.MaxBackoff
		}
		if rerr := m.rebuild(); rerr != nil {
			// The snapshot store itself failed us; count the attempt and
			// let the loop escalate toward quarantine.
			m.recordErr(rerr)
			continue
		}
		m.restarts.Add(1)
		m.sup.reg().Counter("serve.member.restarts").Add(1)
	}
}

// Supervisor owns the ensemble: N members, their snapshot store, and
// the restart ladder above them.
type Supervisor struct {
	cfg     Config
	store   *Store
	members []*Member
	solver  *dycore.Solver // shared read-only mesh/config for the request path
	probe   *obs.Probe

	wg      sync.WaitGroup
	stop    chan struct{}
	started bool
}

// NewSupervisor builds the ensemble (ICs, jobs, store) without starting
// any integration.
func NewSupervisor(cfg Config, probe *obs.Probe) (*Supervisor, error) {
	c := cfg.withDefaults()
	if err := c.Dycore.Validate(); err != nil {
		return nil, err
	}
	switch c.Recovery {
	case "ladder", "global":
	default:
		return nil, fmt.Errorf("serve: unknown recovery mode %q (ladder|global)", c.Recovery)
	}
	solver, err := dycore.NewSolver(c.Dycore)
	if err != nil {
		return nil, err
	}
	sup := &Supervisor{
		cfg:    c,
		solver: solver,
		probe:  probe,
		stop:   make(chan struct{}),
	}
	sup.store = NewStore(c.Members, sup.reg())
	for i := 0; i < c.Members; i++ {
		m, err := newMember(i, sup, c)
		if err != nil {
			return nil, fmt.Errorf("serve: building member %d: %w", i, err)
		}
		sup.members = append(sup.members, m)
	}
	return sup, nil
}

func (s *Supervisor) reg() *obs.Registry {
	if s.probe == nil {
		return nil
	}
	return s.probe.Reg
}

// Config returns the effective (defaulted) configuration.
func (s *Supervisor) Config() Config { return s.cfg }

// Store returns the ensemble's snapshot store.
func (s *Supervisor) Store() *Store { return s.store }

// Solver returns the shared solver (mesh + config) the request path
// uses for sampling and tracking. Read-only.
func (s *Supervisor) Solver() *dycore.Solver { return s.solver }

// Members returns the supervised members.
func (s *Supervisor) Members() []*Member { return s.members }

// Start launches every member's supervision loop.
func (s *Supervisor) Start() {
	if s.started {
		return
	}
	s.started = true
	for _, m := range s.members {
		s.wg.Add(1)
		go m.loop(s.stop)
	}
}

// Stop drains the ensemble: each member finishes its current cycle
// (publishing its snapshot) and exits. Idempotent.
func (s *Supervisor) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.wg.Wait()
}

// RunCycles advances every member n cycles synchronously — the
// deterministic test path (no goroutines, no backoff; a crash is
// returned, not supervised).
func (s *Supervisor) RunCycles(n int) error {
	for c := 0; c < n; c++ {
		for _, m := range s.members {
			switch m.State() {
			case MemberQuarantined, MemberStopped, MemberCompleted:
				continue
			}
			if m.atHorizon() {
				m.setState(MemberCompleted)
				continue
			}
			if err := m.cycleOnce(); err != nil {
				return fmt.Errorf("serve: member %d cycle: %w", m.idx, err)
			}
			m.setState(MemberRunning)
		}
	}
	return nil
}

// Checkpoint writes each member's latest snapshot to dir as
// member_<i>.ckpt (v2 checkpoint files) — the drain path's durable
// hand-off. Members without a snapshot are skipped.
func (s *Supervisor) Checkpoint(dir string) error {
	for i := range s.members {
		st, meta, err := s.store.Read(i)
		if err != nil {
			if errors.Is(err, ErrNoSnapshot) {
				continue
			}
			return err
		}
		path := fmt.Sprintf("%s/member_%d.ckpt", dir, i)
		if err := core.SaveCheckpoint(path, st, meta.Step); err != nil {
			return err
		}
	}
	return nil
}
