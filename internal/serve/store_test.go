package serve

import (
	"errors"
	"testing"

	"swcam/internal/dycore"
	"swcam/internal/obs"
)

func testState(t *testing.T, fill float64) (*dycore.Solver, *dycore.State) {
	t.Helper()
	cfg := dycore.DefaultConfig(2)
	cfg.Nlev = 4
	cfg.Qsize = 1
	s, err := dycore.NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitRest(st, 288+fill)
	return s, st
}

func TestStorePublishReadRoundtrip(t *testing.T) {
	reg := obs.NewRegistry()
	store := NewStore(2, reg)

	if _, _, err := store.Read(0); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty slot: want ErrNoSnapshot, got %v", err)
	}
	if _, ok := store.Latest(0); ok {
		t.Fatal("empty slot reported a Latest")
	}

	_, st := testState(t, 0)
	if err := store.Publish(0, 7, 1.5, st); err != nil {
		t.Fatal(err)
	}
	got, meta, err := store.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 7 || meta.Version != 1 || meta.SimHours != 1.5 || meta.Member != 0 {
		t.Fatalf("meta = %+v", meta)
	}
	for ei := range st.T {
		for i := range st.T[ei] {
			if got.T[ei][i] != st.T[ei][i] {
				t.Fatalf("decoded T[%d][%d] = %v, want %v", ei, i, got.T[ei][i], st.T[ei][i])
			}
		}
	}
	// Other slots are untouched.
	if _, _, err := store.Read(1); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("slot 1: want ErrNoSnapshot, got %v", err)
	}
}

func TestStoreVersionsAdvanceAndCacheIsReused(t *testing.T) {
	reg := obs.NewRegistry()
	store := NewStore(1, reg)
	_, st := testState(t, 0)

	for i := 1; i <= 3; i++ {
		if err := store.Publish(0, i, float64(i), st); err != nil {
			t.Fatal(err)
		}
		meta, ok := store.Latest(0)
		if !ok || meta.Version != int64(i) || meta.Step != i {
			t.Fatalf("publish %d: meta %+v", i, meta)
		}
	}
	a, _, err := store.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := store.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("two reads of one version decoded twice (cache not reused)")
	}
	if n := reg.CounterValue("serve.snapshots.published"); n != 3 {
		t.Fatalf("published counter = %d, want 3", n)
	}
}

func TestStoreTornSnapshotDetectedNotServed(t *testing.T) {
	reg := obs.NewRegistry()
	store := NewStore(1, reg)
	_, st := testState(t, 0)
	if err := store.Publish(0, 1, 0.5, st); err != nil {
		t.Fatal(err)
	}
	// Simulate the writer lapping a slow reader: the published buffer's
	// bytes change under the unchanged snapshot pointer. Every read
	// attempt sees the same corrupt view, so the store must fail with
	// ErrTornSnapshot — never return a state decoded from those bytes.
	snap := store.slots[0].cur.Load()
	snap.data[len(snap.data)/2] ^= 0xFF
	if _, _, err := store.Read(0); !errors.Is(err, ErrTornSnapshot) {
		t.Fatalf("want ErrTornSnapshot, got %v", err)
	}
	if n := reg.CounterValue("serve.snapshots.torn"); n < 1 {
		t.Fatal("torn reads were not counted")
	}
	// A fresh publish repairs service.
	if err := store.Publish(0, 2, 1.0, st); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Read(0); err != nil {
		t.Fatalf("read after repair: %v", err)
	}
}

func TestStoreDoubleBufferSurvivesAlternatingPublishes(t *testing.T) {
	store := NewStore(1, nil) // nil registry: counters are inert
	_, st := testState(t, 0)
	for i := 1; i <= 10; i++ {
		if err := store.Publish(0, i, 0, st); err != nil {
			t.Fatal(err)
		}
		if _, meta, err := store.Read(0); err != nil || meta.Step != i {
			t.Fatalf("publish %d: meta %+v err %v", i, meta, err)
		}
	}
}

func TestParseKillPlan(t *testing.T) {
	tests := []struct {
		spec    string
		want    map[int][]int
		wantErr bool
	}{
		{spec: "", want: nil},
		{spec: "1@3", want: map[int][]int{1: {3}}},
		{spec: "1@3,1@9,0@2", want: map[int][]int{0: {2}, 1: {3, 9}}},
		{spec: "1@9,1@3", want: map[int][]int{1: {3, 9}}}, // sorted
		{spec: "nope", wantErr: true},
		{spec: "1@", wantErr: true},
		{spec: "-1@2", wantErr: true},
		{spec: "1@-2", wantErr: true},
		{spec: "a@b", wantErr: true},
	}
	for _, tt := range tests {
		plan, err := ParseKillPlan(tt.spec)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseKillPlan(%q): want error", tt.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseKillPlan(%q): %v", tt.spec, err)
			continue
		}
		if len(plan) != len(tt.want) {
			t.Errorf("ParseKillPlan(%q) = %v, want %v", tt.spec, plan, tt.want)
			continue
		}
		for m, cycles := range tt.want {
			got := plan[m]
			if len(got) != len(cycles) {
				t.Errorf("ParseKillPlan(%q)[%d] = %v, want %v", tt.spec, m, got, cycles)
				continue
			}
			for i := range cycles {
				if got[i] != cycles[i] {
					t.Errorf("ParseKillPlan(%q)[%d] = %v, want %v", tt.spec, m, got, cycles)
				}
			}
		}
	}
}
