package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"swcam/internal/core"
	"swcam/internal/dycore"
	"swcam/internal/mesh"
	"swcam/internal/tc"
)

// Every error response is a typed JSON envelope:
//
//	{"error": {"code": "queue_full", "message": "..."}}
//
// so clients branch on stable codes, never on prose. Codes in use:
// bad_request, bad_deadline, unknown_field, unknown_member, queue_full,
// deadline_exceeded, no_snapshot, snapshot_torn, no_members.

type errEnvelope struct {
	Error errBody `json:"error"`
}

type errBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errEnvelope{Error: errBody{Code: code, Message: msg}})
}

// Staleness headers. A response served from a snapshot that is not the
// live head of a running member carries:
//
//	X-Swcam-Stale: recovering | quarantined | age
//	X-Swcam-Staleness-Ms: <snapshot age in wall ms>
//
// Degraded answers are explicit, never silent.
const (
	headerStale       = "X-Swcam-Stale"
	headerStalenessMs = "X-Swcam-Staleness-Ms"
	headerMembers     = "X-Swcam-Ensemble-Members"
)

// staleness classifies a member's snapshot: reason is "" when fresh.
func (s *Server) staleness(m *Member, meta Meta) (reason string, ageMs int64) {
	age := time.Since(meta.Taken)
	ageMs = age.Milliseconds()
	switch m.State() {
	case MemberRecovering:
		return "recovering", ageMs
	case MemberQuarantined:
		return "quarantined", ageMs
	}
	if sa := s.sup.cfg.StaleAfter; sa > 0 && age > sa {
		return "age", ageMs
	}
	return "", ageMs
}

func setStaleHeaders(w http.ResponseWriter, reason string, ageMs int64) {
	if reason != "" {
		w.Header().Set(headerStale, reason)
		w.Header().Set(headerStalenessMs, strconv.FormatInt(ageMs, 10))
	}
}

// memberParam parses ?member= (default 0) and bounds it.
func (s *Server) memberParam(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("member")
	if raw == "" {
		return 0, nil
	}
	i, err := strconv.Atoi(raw)
	if err != nil || i < 0 || i >= len(s.sup.members) {
		return 0, fmt.Errorf("member must be in [0, %d)", len(s.sup.members))
	}
	return i, nil
}

// intParam parses an integer query parameter within [lo, hi], with a
// default when absent.
func intParam(r *http.Request, name string, def, lo, hi int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < lo || v > hi {
		return 0, fmt.Errorf("%s must be an integer in [%d, %d]", name, lo, hi)
	}
	return v, nil
}

func floatParam(r *http.Request, name string, lo, hi float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("%s is required", name)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(v) || v < lo || v > hi {
		return 0, fmt.Errorf("%s must be a number in [%g, %g]", name, lo, hi)
	}
	return v, nil
}

// fieldSlice resolves a field name against a state: the backing array,
// its level count, and whether it had to be derived.
func fieldSlice(s *dycore.Solver, st *dycore.State, name string) (data [][]float64, nlev int, err error) {
	switch name {
	case "U":
		return st.U, st.Nlev, nil
	case "V":
		return st.V, st.Nlev, nil
	case "T":
		return st.T, st.Nlev, nil
	case "DP":
		return st.DP, st.Nlev, nil
	case "PHIS":
		return st.Phis, 1, nil
	case "PS":
		// Derived: one pseudo-level of surface pressure.
		npsq := s.Cfg.Np * s.Cfg.Np
		ps := make([][]float64, len(st.DP))
		for ei := range ps {
			row := make([]float64, npsq)
			for n := 0; n < npsq; n++ {
				row[n] = st.SurfacePressure(ei, n)
			}
			ps[ei] = row
		}
		return ps, 1, nil
	}
	return nil, 0, fmt.Errorf("unknown field %q (U|V|T|DP|PHIS|PS)", name)
}

// readMember fetches the member's latest decoded snapshot, mapping
// store errors to HTTP responses. Returns ok=false after writing the
// error.
func (s *Server) readMember(w http.ResponseWriter, idx int) (*dycore.State, Meta, bool) {
	st, meta, err := s.sup.store.Read(idx)
	if err == nil {
		return st, meta, true
	}
	switch {
	case errors.Is(err, ErrNoSnapshot):
		writeErr(w, http.StatusNotFound, "no_snapshot",
			fmt.Sprintf("member %d has not published a snapshot yet", idx))
	case errors.Is(err, ErrTornSnapshot):
		writeErr(w, http.StatusServiceUnavailable, "snapshot_torn",
			fmt.Sprintf("member %d snapshot unreadable; retry", idx))
	default:
		writeErr(w, http.StatusInternalServerError, "internal", err.Error())
	}
	return nil, Meta{}, false
}

// samplers caches lat-lon samplers per grid shape: building one walks
// the whole mesh, so a steady query mix pays that once per shape.
type samplers struct {
	mu    sync.Mutex
	cache map[[2]int]*core.Sampler
}

func (sc *samplers) get(m *mesh.Mesh, nlon, nlat int) *core.Sampler {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.cache == nil {
		sc.cache = map[[2]int]*core.Sampler{}
	}
	key := [2]int{nlon, nlat}
	if sp, ok := sc.cache[key]; ok {
		return sp
	}
	sp := core.NewSampler(m, nlon, nlat)
	sc.cache[key] = sp
	return sp
}

// GET /v1/config — the effective model and ensemble configuration, the
// contract a load generator or client calibrates itself against.
func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	c := s.sup.cfg
	writeJSON(w, http.StatusOK, map[string]any{
		"members":     c.Members,
		"ne":          c.Dycore.Ne,
		"np":          c.Dycore.Np,
		"nlev":        c.Dycore.Nlev,
		"qsize":       c.Dycore.Qsize,
		"dt_seconds":  c.Dycore.Dt,
		"cycle_steps": c.CycleSteps,
		"ranks":       c.Ranks,
		"ic":          c.IC,
		"recovery":    c.Recovery,
		"perturb_amp": c.PerturbAmp,
		"seed":        c.Seed,
	})
}

type memberStatus struct {
	Member    int     `json:"member"`
	State     string  `json:"state"`
	Restarts  int64   `json:"restarts"`
	LastError string  `json:"last_error,omitempty"`
	Version   int64   `json:"snapshot_version"`
	Step      int     `json:"snapshot_step"`
	SimHours  float64 `json:"sim_hours"`
	AgeMs     int64   `json:"snapshot_age_ms"`
}

// GET /v1/members — supervision state of every member.
func (s *Server) handleMembers(w http.ResponseWriter, r *http.Request) {
	out := make([]memberStatus, 0, len(s.sup.members))
	for i, m := range s.sup.members {
		ms := memberStatus{
			Member:    i,
			State:     m.State().String(),
			Restarts:  m.Restarts(),
			LastError: m.LastError(),
		}
		if meta, ok := s.sup.store.Latest(i); ok {
			ms.Version = meta.Version
			ms.Step = meta.Step
			ms.SimHours = meta.SimHours
			ms.AgeMs = time.Since(meta.Taken).Milliseconds()
		}
		out = append(out, ms)
	}
	writeJSON(w, http.StatusOK, map[string]any{"members": out})
}

// GET /v1/field?member=&field=T&level=&nlon=&nlat= — a lat-lon slice of
// one member's field, sampled on a regular grid.
func (s *Server) handleField(w http.ResponseWriter, r *http.Request) {
	idx, err := s.memberParam(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, "unknown_member", err.Error())
		return
	}
	name := r.URL.Query().Get("field")
	if name == "" {
		name = "PS"
	}
	nlon, err := intParam(r, "nlon", 72, 1, 2048)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	nlat, err := intParam(r, "nlat", 36, 1, 1024)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	st, meta, ok := s.readMember(w, idx)
	if !ok {
		return
	}
	data, nlev, err := fieldSlice(s.sup.solver, st, name)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown_field", err.Error())
		return
	}
	level, err := intParam(r, "level", nlev-1, 0, nlev-1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	sp := s.samplers.get(s.sup.solver.Mesh, nlon, nlat)
	grid := make([]float64, nlon*nlat)
	npsq := s.sup.solver.Cfg.Np * s.sup.solver.Cfg.Np
	sp.Sample(data, level, npsq, grid)

	reason, ageMs := s.staleness(s.sup.members[idx], meta)
	setStaleHeaders(w, reason, ageMs)
	writeJSON(w, http.StatusOK, map[string]any{
		"member": idx, "field": name, "level": level,
		"nlon": nlon, "nlat": nlat,
		"step": meta.Step, "sim_hours": meta.SimHours,
		"snapshot_version": meta.Version,
		"values":           grid,
	})
}

// GET /v1/point?member=&field=&level=&lon=&lat= — point forecast at the
// nearest GLL node to (lon, lat) in degrees.
func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	idx, err := s.memberParam(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, "unknown_member", err.Error())
		return
	}
	lonDeg, err := floatParam(r, "lon", -360, 360)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	latDeg, err := floatParam(r, "lat", -90, 90)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	name := r.URL.Query().Get("field")
	if name == "" {
		name = "T"
	}
	st, meta, ok := s.readMember(w, idx)
	if !ok {
		return
	}
	data, nlev, err := fieldSlice(s.sup.solver, st, name)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown_field", err.Error())
		return
	}
	level, err := intParam(r, "level", nlev-1, 0, nlev-1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	target := lonLatToCart(lonDeg*math.Pi/180, latDeg*math.Pi/180)
	npsq := s.sup.solver.Cfg.Np * s.sup.solver.Cfg.Np
	bestD := math.Inf(1)
	bestE, bestN := 0, 0
	for ei, e := range s.sup.solver.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			if d := mesh.GreatCircleDist(target, e.Pos[n]); d < bestD {
				bestD, bestE, bestN = d, ei, n
			}
		}
	}
	el := s.sup.solver.Mesh.Elements[bestE]

	reason, ageMs := s.staleness(s.sup.members[idx], meta)
	setStaleHeaders(w, reason, ageMs)
	writeJSON(w, http.StatusOK, map[string]any{
		"member": idx, "field": name, "level": level,
		"lon_deg": lonDeg, "lat_deg": latDeg,
		"node_lon_deg": el.Lon[bestN] * 180 / math.Pi,
		"node_lat_deg": el.Lat[bestN] * 180 / math.Pi,
		"value":        data[bestE][level*npsq+bestN],
		"step":         meta.Step, "sim_hours": meta.SimHours,
	})
}

// GET /v1/ensemble?field=&level=&nlon=&nlat= — pointwise mean and
// spread (population std dev) across every member that can currently
// contribute a snapshot. Quarantined members are excluded; if fewer
// than the full ensemble contribute, the X-Swcam-Ensemble-Members
// header reports the k/n subensemble and the response is marked stale
// if any contributor is.
func (s *Server) handleEnsemble(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("field")
	if name == "" {
		name = "PS"
	}
	nlon, err := intParam(r, "nlon", 72, 1, 2048)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	nlat, err := intParam(r, "nlat", 36, 1, 1024)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	n := len(s.sup.members)
	npsq := s.sup.solver.Cfg.Np * s.sup.solver.Cfg.Np
	var sp *core.Sampler
	grid := make([]float64, nlon*nlat)
	mean := make([]float64, nlon*nlat)
	m2 := make([]float64, nlon*nlat)
	level := -1
	contributors := 0
	worstReason := ""
	var worstAge int64
	minStep, maxStep := math.MaxInt32, -1

	for i, m := range s.sup.members {
		if m.State() == MemberQuarantined {
			// A quarantined member's frozen snapshot would poison the
			// statistics with an old state; the ensemble degrades to the
			// surviving subensemble instead.
			continue
		}
		st, meta, err := s.sup.store.Read(i)
		if err != nil {
			continue
		}
		data, nlev, ferr := fieldSlice(s.sup.solver, st, name)
		if ferr != nil {
			writeErr(w, http.StatusBadRequest, "unknown_field", ferr.Error())
			return
		}
		if level < 0 {
			level, err = intParam(r, "level", nlev-1, 0, nlev-1)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
				return
			}
			sp = s.samplers.get(s.sup.solver.Mesh, nlon, nlat)
		}
		sp.Sample(data, level, npsq, grid)
		contributors++
		// Welford accumulation: numerically stable spread in one pass.
		for g := range grid {
			d := grid[g] - mean[g]
			mean[g] += d / float64(contributors)
			m2[g] += d * (grid[g] - mean[g])
		}
		if reason, age := s.staleness(m, meta); reason != "" {
			worstReason = reason
			if age > worstAge {
				worstAge = age
			}
		}
		if meta.Step < minStep {
			minStep = meta.Step
		}
		if meta.Step > maxStep {
			maxStep = meta.Step
		}
	}
	if contributors == 0 {
		writeErr(w, http.StatusServiceUnavailable, "no_members",
			"no member can currently contribute a snapshot")
		return
	}
	spread := m2 // reuse
	for g := range spread {
		spread[g] = math.Sqrt(m2[g] / float64(contributors))
	}
	w.Header().Set(headerMembers, fmt.Sprintf("%d/%d", contributors, n))
	setStaleHeaders(w, worstReason, worstAge)
	writeJSON(w, http.StatusOK, map[string]any{
		"field": name, "level": level,
		"nlon": nlon, "nlat": nlat,
		"members": contributors, "ensemble_size": n,
		"min_step": minStep, "max_step": maxStep,
		"mean": mean, "spread": spread,
	})
}

// GET /v1/track?member= — the member's TC track: every fix located so
// far plus the current one. Fixes are computed lazily per snapshot
// version and cached, so the track grows as the forecast advances.
func (s *Server) handleTrack(w http.ResponseWriter, r *http.Request) {
	idx, err := s.memberParam(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, "unknown_member", err.Error())
		return
	}
	st, meta, ok := s.readMember(w, idx)
	if !ok {
		return
	}

	s.trackMu.Lock()
	hist := s.tracks[idx]
	if hist == nil || hist.version < meta.Version {
		var prev *tc.Fix
		if hist != nil && len(hist.fixes) > 0 {
			prev = &hist.fixes[len(hist.fixes)-1]
		}
		tr := tc.NewTracker()
		fix := tr.Locate(s.sup.solver, st, meta.SimHours, prev)
		warm := tr.WarmCore(s.sup.solver, st, fix)
		if hist == nil {
			hist = &trackHistory{}
			if s.tracks == nil {
				s.tracks = map[int]*trackHistory{}
			}
			s.tracks[idx] = hist
		}
		hist.version = meta.Version
		hist.fixes = append(hist.fixes, fix)
		hist.warm = warm
	}
	fixes := make([]tc.Fix, len(hist.fixes))
	copy(fixes, hist.fixes)
	warm := hist.warm
	s.trackMu.Unlock()

	reason, ageMs := s.staleness(s.sup.members[idx], meta)
	setStaleHeaders(w, reason, ageMs)
	writeJSON(w, http.StatusOK, map[string]any{
		"member": idx, "warm_core": warm,
		"step": meta.Step, "sim_hours": meta.SimHours,
		"fixes": fixes,
	})
}

// GET /v1/metrics — the obs registry counters and gauges, for scraping.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		writeJSON(w, http.StatusOK, []any{})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = s.reg.WriteJSON(w)
}

type trackHistory struct {
	version int64
	fixes   []tc.Fix
	warm    bool
}

func lonLatToCart(lon, lat float64) mesh.Vec3 {
	cl := math.Cos(lat)
	return mesh.Vec3{cl * math.Cos(lon), cl * math.Sin(lon), math.Sin(lat)}
}
