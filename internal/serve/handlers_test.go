package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/obs"
)

func testSupervisor(t *testing.T, members int, kills KillPlan) *Supervisor {
	t.Helper()
	cfg := dycore.DefaultConfig(2)
	cfg.Nlev = 4
	cfg.Qsize = 1
	sup, err := NewSupervisor(Config{
		Members:    members,
		Dycore:     cfg,
		Backend:    exec.Intel,
		Ranks:      2,
		CycleSteps: 1,
		DynWorkers: 1,
		IC:         "vortex",
		Seed:       42,
		Kills:      kills,
	}, obs.NewProbe())
	if err != nil {
		t.Fatal(err)
	}
	return sup
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: body: %v", url, err)
	}
	var m map[string]any
	if len(body) > 0 {
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("GET %s: not JSON (%v): %q", url, err, body)
		}
	}
	return resp, m
}

// errCode extracts the typed error code from an error envelope ("" if
// the body is not one).
func errCode(m map[string]any) string {
	e, ok := m["error"].(map[string]any)
	if !ok {
		return ""
	}
	code, _ := e["code"].(string)
	return code
}

// TestHandlerErrorTable is the malformed-query matrix: every bad input
// must produce a typed JSON error with the right status — never a
// panic, a hang, or an empty body.
func TestHandlerErrorTable(t *testing.T) {
	sup := testSupervisor(t, 2, nil)
	if err := sup.RunCycles(2); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sup, ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	tests := []struct {
		name       string
		path       string
		wantStatus int
		wantCode   string
	}{
		{"field: member out of range", "/v1/field?member=99", http.StatusNotFound, "unknown_member"},
		{"field: member negative", "/v1/field?member=-1", http.StatusNotFound, "unknown_member"},
		{"field: member not a number", "/v1/field?member=abc", http.StatusNotFound, "unknown_member"},
		{"field: unknown field name", "/v1/field?field=BOGUS", http.StatusBadRequest, "unknown_field"},
		{"field: level out of range", "/v1/field?field=T&level=999", http.StatusBadRequest, "bad_request"},
		{"field: level negative", "/v1/field?field=T&level=-1", http.StatusBadRequest, "bad_request"},
		{"field: nlon zero", "/v1/field?nlon=0", http.StatusBadRequest, "bad_request"},
		{"field: nlon huge", "/v1/field?nlon=1000000", http.StatusBadRequest, "bad_request"},
		{"field: nlat not a number", "/v1/field?nlat=abc", http.StatusBadRequest, "bad_request"},
		{"point: missing lon", "/v1/point?lat=20", http.StatusBadRequest, "bad_request"},
		{"point: missing lat", "/v1/point?lon=20", http.StatusBadRequest, "bad_request"},
		{"point: lat out of range", "/v1/point?lon=0&lat=91", http.StatusBadRequest, "bad_request"},
		{"point: lon not a number", "/v1/point?lon=west&lat=20", http.StatusBadRequest, "bad_request"},
		{"point: unknown member", "/v1/point?member=7&lon=0&lat=0", http.StatusNotFound, "unknown_member"},
		{"track: unknown member", "/v1/track?member=5", http.StatusNotFound, "unknown_member"},
		{"ensemble: unknown field", "/v1/ensemble?field=WAT", http.StatusBadRequest, "unknown_field"},
		{"ensemble: bad nlat", "/v1/ensemble?nlat=-3", http.StatusBadRequest, "bad_request"},
		{"deadline: not a number", "/v1/members?deadline_ms=abc", http.StatusBadRequest, "bad_deadline"},
		{"deadline: zero", "/v1/members?deadline_ms=0", http.StatusBadRequest, "bad_deadline"},
		{"deadline: beyond cap", "/v1/members?deadline_ms=61000", http.StatusBadRequest, "bad_deadline"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, body := getJSON(t, ts.URL+tt.path)
			if resp.StatusCode != tt.wantStatus {
				t.Errorf("status = %d, want %d (body %v)", resp.StatusCode, tt.wantStatus, body)
			}
			if code := errCode(body); code != tt.wantCode {
				t.Errorf("error code = %q, want %q (body %v)", code, tt.wantCode, body)
			}
		})
	}
}

func TestHandlerNoSnapshotAndReadiness(t *testing.T) {
	sup := testSupervisor(t, 1, nil)
	srv := NewServer(sup, ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Before the first publish: data 404s with a typed code, readiness
	// reports warming, liveness is already green.
	resp, body := getJSON(t, ts.URL+"/v1/field")
	if resp.StatusCode != http.StatusNotFound || errCode(body) != "no_snapshot" {
		t.Fatalf("pre-publish field: %d %v", resp.StatusCode, body)
	}
	if resp, _ := getJSON(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-publish readyz: %d", resp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	if err := sup.RunCycles(1); err != nil {
		t.Fatal(err)
	}
	if resp, _ := getJSON(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-publish readyz: %d", resp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/field?field=PS"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-publish field: %d", resp.StatusCode)
	}

	// Draining flips readiness off while data endpoints keep answering
	// in-flight-style traffic.
	srv.StartDrain()
	resp, body = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("draining readyz: %d %v", resp.StatusCode, body)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/members"); resp.StatusCode != http.StatusOK {
		t.Fatalf("members during drain: %d", resp.StatusCode)
	}
}

// TestHandlerQuarantinedMemberServesStale: a quarantined member's last
// snapshot stays servable, explicitly marked, and the ensemble answers
// from the surviving subensemble.
func TestHandlerQuarantinedMemberServesStale(t *testing.T) {
	sup := testSupervisor(t, 2, nil)
	if err := sup.RunCycles(2); err != nil {
		t.Fatal(err)
	}
	sup.members[1].setState(MemberQuarantined)
	srv := NewServer(sup, ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, _ := getJSON(t, ts.URL+"/v1/field?member=1&field=PS")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quarantined member field: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(headerStale); got != "quarantined" {
		t.Fatalf("%s = %q, want quarantined", headerStale, got)
	}
	if resp.Header.Get(headerStalenessMs) == "" {
		t.Fatalf("%s missing on a stale response", headerStalenessMs)
	}

	resp, body := getJSON(t, ts.URL+"/v1/ensemble?field=PS&nlon=8&nlat=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ensemble with quarantined member: %d %v", resp.StatusCode, body)
	}
	if got := resp.Header.Get(headerMembers); got != "1/2" {
		t.Fatalf("%s = %q, want 1/2", headerMembers, got)
	}
	if n, _ := body["members"].(float64); n != 1 {
		t.Fatalf("ensemble members = %v, want 1", body["members"])
	}

	// A recovering member serves stale with its own reason.
	sup.members[1].setState(MemberRecovering)
	resp, _ = getJSON(t, ts.URL+"/v1/field?member=1&field=PS")
	if got := resp.Header.Get(headerStale); got != "recovering" {
		t.Fatalf("%s = %q, want recovering", headerStale, got)
	}

	// Every member quarantined: the ensemble is honest about having
	// nothing, with a typed code, not a fake answer.
	sup.members[0].setState(MemberQuarantined)
	sup.members[1].setState(MemberQuarantined)
	resp, body = getJSON(t, ts.URL+"/v1/ensemble")
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(body) != "no_members" {
		t.Fatalf("all-quarantined ensemble: %d %v", resp.StatusCode, body)
	}
}

func TestHandlerDeadlineExceeded(t *testing.T) {
	sup := testSupervisor(t, 1, nil)
	if err := sup.RunCycles(1); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sup, ServerConfig{})
	srv.slowHook = func(ctx context.Context) { <-ctx.Done() }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := getJSON(t, ts.URL+"/v1/members?deadline_ms=25")
	if resp.StatusCode != http.StatusGatewayTimeout || errCode(body) != "deadline_exceeded" {
		t.Fatalf("deadline: %d %v", resp.StatusCode, body)
	}
}

// TestHandlerQueueFullSheds: with a single execution slot and a queue
// of one, a burst must shed with 429 — bounded admission, no pileup.
func TestHandlerQueueFullSheds(t *testing.T) {
	sup := testSupervisor(t, 1, nil)
	if err := sup.RunCycles(1); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sup, ServerConfig{MaxConcurrent: 1, MaxQueue: 1})
	release := make(chan struct{})
	var once sync.Once
	srv.slowHook = func(ctx context.Context) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	defer once.Do(func() { close(release) })
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const burst = 6
	codes := make(chan int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/members?deadline_ms=5000")
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	// Give the burst time to pile into the admission path, then let the
	// executing request (and the queued one) finish.
	time.Sleep(300 * time.Millisecond)
	once.Do(func() { close(release) })
	wg.Wait()
	close(codes)

	count := map[int]int{}
	for c := range codes {
		count[c]++
	}
	if count[-1] > 0 {
		t.Fatalf("transport errors in burst: %v", count)
	}
	if count[http.StatusTooManyRequests] == 0 {
		t.Fatalf("burst of %d against capacity 2 shed nothing: %v", burst, count)
	}
	for code := range count {
		if code >= 500 && code != http.StatusGatewayTimeout {
			t.Fatalf("unexpected server fault %d in shed test: %v", code, count)
		}
	}
	// Sheds are counted for the BENCH serving block.
	if n := sup.reg().CounterValue("serve.requests.shed"); n == 0 {
		t.Fatal("serve.requests.shed not incremented")
	}
}

// TestHandlerDataEndpointsRoundTrip: happy-path shapes of every data
// endpoint, including TC-track fixes on the vortex IC.
func TestHandlerDataEndpointsRoundTrip(t *testing.T) {
	sup := testSupervisor(t, 2, nil)
	if err := sup.RunCycles(2); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sup, ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := getJSON(t, ts.URL+"/v1/config")
	if resp.StatusCode != http.StatusOK || body["members"].(float64) != 2 {
		t.Fatalf("config: %d %v", resp.StatusCode, body)
	}

	resp, body = getJSON(t, ts.URL+"/v1/field?member=1&field=T&level=3&nlon=16&nlat=8")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("field: %d %v", resp.StatusCode, body)
	}
	if vals := body["values"].([]any); len(vals) != 16*8 {
		t.Fatalf("field values = %d, want %d", len(vals), 16*8)
	}
	if resp.Header.Get(headerStale) != "" {
		t.Fatal("fresh response carries a staleness header")
	}

	resp, body = getJSON(t, ts.URL+"/v1/point?member=0&field=PS&lon=-75.1&lat=23.1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("point: %d %v", resp.StatusCode, body)
	}
	// The vortex depression sits at the queried centre: surface
	// pressure there must be below the ~1e5 Pa background.
	if v := body["value"].(float64); v >= 1e5 || v < 5e4 {
		t.Fatalf("point PS at vortex centre = %v, want a depression below 1e5", v)
	}

	resp, body = getJSON(t, ts.URL+"/v1/ensemble?field=T&nlon=8&nlat=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ensemble: %d %v", resp.StatusCode, body)
	}
	if got := resp.Header.Get(headerMembers); got != "2/2" {
		t.Fatalf("%s = %q, want 2/2", headerMembers, got)
	}
	spread := body["spread"].([]any)
	anyPositive := false
	for _, s := range spread {
		if s.(float64) > 0 {
			anyPositive = true
		}
		if s.(float64) < 0 {
			t.Fatal("negative spread")
		}
	}
	if !anyPositive {
		t.Fatal("perturbed members produced identically zero spread")
	}

	resp, body = getJSON(t, ts.URL+"/v1/track?member=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("track: %d %v", resp.StatusCode, body)
	}
	fixes := body["fixes"].([]any)
	if len(fixes) == 0 {
		t.Fatal("track returned no fixes")
	}
	fix := fixes[len(fixes)-1].(map[string]any)
	if _, ok := fix["min_ps"]; !ok {
		t.Fatalf("fix missing wire fields: %v", fix)
	}

	// The track grows with the forecast: another cycle, another fix.
	if err := sup.RunCycles(1); err != nil {
		t.Fatal(err)
	}
	_, body = getJSON(t, ts.URL+"/v1/track?member=0")
	if got := len(body["fixes"].([]any)); got != len(fixes)+1 {
		t.Fatalf("track after one more cycle has %d fixes, want %d", got, len(fixes)+1)
	}

	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics []map[string]any
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatalf("metrics not a JSON array: %v", err)
	}
	if mresp.StatusCode != http.StatusOK || len(metrics) == 0 {
		t.Fatalf("metrics: %d with %d entries", mresp.StatusCode, len(metrics))
	}
}

// TestEnsembleDeterminism: two supervisors built from the same seed
// publish bit-identical snapshots — the foundation the bit-identity
// soak assertion rests on.
func TestEnsembleDeterminism(t *testing.T) {
	run := func() map[string][]byte {
		sup := testSupervisor(t, 2, nil)
		got := map[string][]byte{}
		sup.store.OnPublish = func(member, step int, data []byte) {
			got[fmt.Sprintf("%d@%d", member, step)] = data
		}
		if err := sup.RunCycles(3); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("publish counts differ: %d vs %d", len(a), len(b))
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			t.Fatalf("second run missing %s", k)
		}
		if string(av) != string(bv) {
			t.Fatalf("snapshot %s differs between identically seeded runs", k)
		}
	}
}
