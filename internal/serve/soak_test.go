package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/obs"
)

// TestServiceChaosSoak is the serving layer's survival drill: seeded
// member kills fire while the load generator hammers the service.
// The contract under fire:
//
//   - zero 5xx and zero transport errors reach clients (stale serves
//     are 200s with a header — degradation is not failure);
//   - readiness, once up, never flaps while healthy members keep
//     publishing (MinReady=1 and member 0 is never killed);
//   - the killed member is restarted by the supervisor, and every
//     snapshot it publishes after recovery is bit-identical to the
//     fault-free reference trajectory of the same seed.
func TestServiceChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: skipped in -short")
	}

	mkConfig := func(kills KillPlan) Config {
		cfg := dycore.DefaultConfig(2)
		cfg.Nlev = 4
		cfg.Qsize = 1
		return Config{
			Members:    3,
			Dycore:     cfg,
			Backend:    exec.Athread,
			Ranks:      2,
			CycleSteps: 1,
			DynWorkers: 1,
			IC:         "vortex",
			Seed:       1234,
			Kills:      kills,
			// Wide recovery windows so the load generator reliably
			// observes mid-recovery (stale) serving.
			RestartBackoff:  120 * time.Millisecond,
			MaxBackoff:      250 * time.Millisecond,
			QuarantineAfter: 5,
		}
	}
	kills, err := ParseKillPlan("1@2,1@5,2@3")
	if err != nil {
		t.Fatal(err)
	}

	type snap = map[string][]byte
	record := func(dst snap, mu *sync.Mutex) func(int, int, []byte) {
		return func(member, step int, data []byte) {
			mu.Lock()
			defer mu.Unlock()
			key := fmt.Sprintf("%d@%d", member, step)
			if prev, ok := dst[key]; ok && string(prev) != string(data) {
				t.Errorf("member %d republished step %d with different bytes", member, step)
			}
			dst[key] = data
		}
	}

	// Fault-free reference trajectory, same seed, run synchronously.
	ref, refMu := snap{}, sync.Mutex{}
	refSup, err := NewSupervisor(mkConfig(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	refSup.store.OnPublish = record(ref, &refMu)
	if err := refSup.RunCycles(40); err != nil {
		t.Fatal(err)
	}

	// The supervised run under kills and load.
	got, gotMu := snap{}, sync.Mutex{}
	probe := obs.NewProbe()
	sup, err := NewSupervisor(mkConfig(kills), probe)
	if err != nil {
		t.Fatal(err)
	}
	sup.store.OnPublish = record(got, &gotMu)
	srv := NewServer(sup, ServerConfig{MaxConcurrent: 8, MaxQueue: 256})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sup.Start()
	defer sup.Stop()

	// Warm up: wait for every member's first snapshot so the load
	// window measures steady-state degradation, not boot. The kills
	// (cycles 2, 3, 5) fire after this point, inside the window.
	warmDeadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(warmDeadline) {
		ready := 0
		for i := range sup.members {
			if _, ok := sup.store.Latest(i); ok {
				ready++
			}
		}
		if ready == len(sup.members) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Readiness watcher: after the first 200, /readyz must stay 200 for
	// the whole soak — a subset of members recovering is not a reason
	// to stop advertising the service.
	stopReady := make(chan struct{})
	readyErr := make(chan error, 1)
	go func() {
		defer close(readyErr)
		sawReady := false
		client := &http.Client{Timeout: 2 * time.Second}
		for {
			select {
			case <-stopReady:
				if !sawReady {
					readyErr <- fmt.Errorf("readiness never came up")
				}
				return
			case <-time.After(10 * time.Millisecond):
			}
			resp, err := client.Get(ts.URL + "/readyz")
			if err != nil {
				readyErr <- fmt.Errorf("readyz transport error: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				sawReady = true
			} else if sawReady {
				readyErr <- fmt.Errorf("readiness flapped: %d after being ready", resp.StatusCode)
				return
			}
		}
	}()

	res, err := RunLoad(LoadConfig{
		BaseURL:  ts.URL,
		Duration: 2500 * time.Millisecond,
		Workers:  4,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	close(stopReady)
	if err := <-readyErr; err != nil {
		t.Error(err)
	}

	if res.Requests == 0 {
		t.Fatal("load generator completed zero requests")
	}
	if res.Transport > 0 {
		t.Errorf("%d transport-level failures under load", res.Transport)
	}
	if res.Errors5xx > 0 {
		t.Errorf("%d responses were 5xx; degradation must serve stale 200s, statuses: %v",
			res.Errors5xx, res.ByStatus)
	}
	if res.Stale == 0 {
		t.Error("no stale serves observed: recovery windows were never visible to clients")
	}

	// Let the killed members finish recovering, then stop publishing.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if sup.members[1].Restarts() >= 2 && sup.members[2].Restarts() >= 1 &&
			sup.members[1].State() == MemberRunning && sup.members[2].State() == MemberRunning {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	sup.Stop()

	if r := sup.members[1].Restarts(); r < 2 {
		t.Errorf("member 1 restarts = %d, want >= 2 (two kills scheduled)", r)
	}
	if r := sup.members[2].Restarts(); r < 1 {
		t.Errorf("member 2 restarts = %d, want >= 1", r)
	}
	for i, m := range sup.members {
		if st := m.State(); st == MemberQuarantined {
			t.Errorf("member %d quarantined; kills were transient, restarts should succeed", i)
		}
	}

	// Bit-identity: every snapshot the faulted run published at a step
	// the reference also reached must match byte for byte — including
	// everything the killed members published after restarting from
	// their snapshots.
	gotMu.Lock()
	defer gotMu.Unlock()
	compared := 0
	for key, data := range got {
		refData, ok := ref[key]
		if !ok {
			continue // the faulted run outran the 40-cycle reference
		}
		compared++
		if string(data) != string(refData) {
			t.Errorf("snapshot %s diverged from the fault-free reference", key)
		}
	}
	if compared < 10 {
		t.Errorf("only %d snapshots overlapped the reference; soak too short to mean anything", compared)
	}
	if n := probe.Reg.CounterValue("serve.member.restarts"); n < 3 {
		t.Errorf("serve.member.restarts = %d, want >= 3", n)
	}
}

// TestMemberForecastHorizonCompletes: a member that integrates out to
// MaxCycles stops there by design — state "completed", final snapshot
// still served, and not labeled stale (a finished forecast is a
// product, not a degradation).
func TestMemberForecastHorizonCompletes(t *testing.T) {
	cfg := dycore.DefaultConfig(2)
	cfg.Nlev = 4
	cfg.Qsize = 1
	sup, err := NewSupervisor(Config{
		Members:    2,
		Dycore:     cfg,
		Backend:    exec.Intel,
		Ranks:      2,
		CycleSteps: 1,
		MaxCycles:  3,
		IC:         "barowave",
		Seed:       5,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sup.Start()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if sup.members[0].State() == MemberCompleted && sup.members[1].State() == MemberCompleted {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	sup.Stop()
	for i, m := range sup.members {
		if st := m.State(); st != MemberCompleted {
			t.Fatalf("member %d state = %v, want completed", i, st)
		}
		meta, ok := sup.store.Latest(i)
		if !ok || meta.Version != 3 || meta.Step != 3 {
			t.Errorf("member %d final snapshot meta = %+v, want version/step 3", i, meta)
		}
	}
	// The completed forecast serves fresh, not stale.
	srv := NewServer(sup, ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/field?member=0&field=PS&nlon=8&nlat=4")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("completed member field read = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(headerStale); got != "" {
		t.Errorf("completed member served with stale header %q", got)
	}
	// The synchronous path honors the horizon too: further cycles are
	// no-ops, not errors.
	if err := sup.RunCycles(2); err != nil {
		t.Fatalf("RunCycles past horizon: %v", err)
	}
	if meta, _ := sup.store.Latest(0); meta.Version != 3 {
		t.Errorf("RunCycles advanced past the horizon: %+v", meta)
	}
}

// TestSupervisorQuarantineAfterRepeatedCrashes: a member that keeps
// dying is quarantined, not restarted forever — and the rest of the
// ensemble keeps serving.
func TestSupervisorQuarantineAfterRepeatedCrashes(t *testing.T) {
	cfg := dycore.DefaultConfig(2)
	cfg.Nlev = 4
	cfg.Qsize = 1
	// Kill member 1 at every one of its first six cycles: with
	// QuarantineAfter=2 the supervisor gives up on the third
	// consecutive crash.
	kills, err := ParseKillPlan("1@0,1@0,1@0,1@0,1@0,1@0")
	if err != nil {
		t.Fatal(err)
	}
	probe := obs.NewProbe()
	sup, err := NewSupervisor(Config{
		Members:         2,
		Dycore:          cfg,
		Backend:         exec.Intel,
		Ranks:           2,
		CycleSteps:      1,
		DynWorkers:      1,
		IC:              "barowave",
		Seed:            9,
		Kills:           kills,
		RestartBackoff:  time.Millisecond,
		MaxBackoff:      2 * time.Millisecond,
		QuarantineAfter: 2,
	}, probe)
	if err != nil {
		t.Fatal(err)
	}
	sup.Start()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && sup.members[1].State() != MemberQuarantined {
		time.Sleep(5 * time.Millisecond)
	}
	// The quarantine must not stop the rest of the ensemble: member 0
	// keeps integrating and publishing afterwards.
	for time.Now().Before(deadline) {
		if meta, ok := sup.store.Latest(0); ok && meta.Version >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	sup.Stop()

	if st := sup.members[1].State(); st != MemberQuarantined {
		t.Fatalf("member 1 state = %v, want quarantined", st)
	}
	if sup.members[1].LastError() == "" {
		t.Error("quarantined member reports no last error")
	}
	if st := sup.members[0].State(); st != MemberStopped {
		t.Fatalf("member 0 state = %v, want stopped after drain", st)
	}
	if n := probe.Reg.CounterValue("serve.member.quarantines"); n != 1 {
		t.Errorf("quarantine counter = %d, want 1", n)
	}
	// The healthy member kept publishing throughout.
	if meta, ok := sup.store.Latest(0); !ok || meta.Version < 3 {
		t.Errorf("member 0 published %+v; expected continuous service", meta)
	}
}
