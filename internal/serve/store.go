package serve

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"swcam/internal/core"
	"swcam/internal/dycore"
	"swcam/internal/obs"
)

// Store is the versioned snapshot store between the integration loops
// and the request path. Each ensemble member owns one slot; after every
// completed cycle the member encodes its gathered global state with the
// v2 checkpoint codec (fixed header, raw fields, CRC32-C trailer) into
// one of the slot's two alternating buffers and publishes it with an
// atomic pointer swap.
//
// The contract is asymmetric by design:
//
//   - The writer (the member's integration loop) never takes a lock a
//     reader can hold: publishing is one encode into a writer-owned
//     buffer plus one atomic store. Readers can never block the
//     integration.
//   - Readers copy the published bytes and verify the CRC of the copy
//     before decoding. Double buffering means a reader that holds a
//     snapshot for two full publish intervals can observe its buffer
//     being overwritten (the writer lapped it); the CRC turns that torn
//     read into a detected, counted event and the reader retries on
//     the fresh pointer — a torn snapshot is never served.
//
// Decoded states are cached per version under a reader-side mutex so a
// burst of requests against the same snapshot pays one decode, not one
// per request. Cached states are shared read-only by handlers.
type Store struct {
	reg   *obs.Registry // nil = uncounted
	slots []storeSlot

	// OnPublish, when set, observes every published snapshot with a
	// private copy of its encoded bytes. Test hook for bit-identity
	// assertions; nil in production.
	OnPublish func(member, step int, data []byte)
}

// Meta identifies one published snapshot.
type Meta struct {
	Member   int
	Version  int64 // 1-based, monotonically increasing per member
	Step     int   // model step the snapshot was taken at
	SimHours float64
	Taken    time.Time
}

// snapshot is the published unit: metadata plus a view of the encoded
// bytes in one of the slot's reused buffers, sealed by a CRC taken at
// publish time.
type snapshot struct {
	Meta
	data []byte
	crc  uint32
}

type storeSlot struct {
	cur atomic.Pointer[snapshot]

	// Writer-owned: the two alternating encode buffers and the publish
	// count that selects between them.
	bufs [2]bytes.Buffer
	n    int64

	// Reader-side decode cache (the writer never touches it).
	mu       sync.Mutex
	cachedV  int64
	cached   *dycore.State
	cachedAt Meta
}

var storeCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Store read errors.
var (
	// ErrNoSnapshot means the member has not published anything yet
	// (still spinning up, or it crashed before its first cycle).
	ErrNoSnapshot = errors.New("serve: no snapshot published yet")
	// ErrTornSnapshot means repeated reads kept failing verification —
	// only reachable if the writer laps the reader on every retry.
	ErrTornSnapshot = errors.New("serve: snapshot torn on every read attempt")
)

// NewStore creates a store with one slot per member. The store's
// counters are pre-registered so /v1/metrics surfaces them at zero
// instead of only after the first event.
func NewStore(members int, reg *obs.Registry) *Store {
	for _, c := range []string{
		"serve.snapshots.published", "serve.snapshots.torn",
		"serve.snapshots.verifies", "serve.snapshots.verify_failed",
	} {
		reg.Counter(c).Add(0)
	}
	return &Store{reg: reg, slots: make([]storeSlot, members)}
}

// Members returns the slot count.
func (s *Store) Members() int { return len(s.slots) }

// Publish encodes st (at the given model step) into member's slot and
// makes it the latest version. Only the member's integration loop may
// call Publish for its own slot.
func (s *Store) Publish(member, step int, simHours float64, st *dycore.State) error {
	slot := &s.slots[member]
	buf := &slot.bufs[slot.n%2]
	buf.Reset()
	if err := core.WriteCheckpoint(buf, st, step); err != nil {
		return fmt.Errorf("serve: encoding snapshot of member %d: %w", member, err)
	}
	data := buf.Bytes()
	slot.n++
	snap := &snapshot{
		Meta: Meta{
			Member: member, Version: slot.n, Step: step,
			SimHours: simHours, Taken: time.Now(),
		},
		data: data,
		crc:  crc32.Checksum(data, storeCRCTable),
	}
	slot.cur.Store(snap)
	s.reg.Counter("serve.snapshots.published").Add(1)
	s.reg.Gauge(fmt.Sprintf("serve.member.%d.snapshot_step", member)).Set(float64(step))
	if s.OnPublish != nil {
		cp := make([]byte, len(data))
		copy(cp, data)
		s.OnPublish(member, step, cp)
	}
	return nil
}

// Latest returns the metadata of member's newest snapshot, or false if
// none has been published.
func (s *Store) Latest(member int) (Meta, bool) {
	snap := s.slots[member].cur.Load()
	if snap == nil {
		return Meta{}, false
	}
	return snap.Meta, true
}

// Read returns member's latest decoded snapshot. The returned state is
// shared between callers and must be treated as read-only. A torn read
// (the writer overwrote the buffer mid-copy) is detected by the CRC,
// counted, and retried against the newer version that caused it.
func (s *Store) Read(member int) (*dycore.State, Meta, error) {
	slot := &s.slots[member]
	const attempts = 4
	for try := 0; try < attempts; try++ {
		snap := slot.cur.Load()
		if snap == nil {
			return nil, Meta{}, ErrNoSnapshot
		}
		slot.mu.Lock()
		if slot.cachedV == snap.Version {
			st, meta := slot.cached, slot.cachedAt
			slot.mu.Unlock()
			return st, meta, nil
		}
		// Copy out of the shared buffer first, then verify the copy:
		// both the CRC check and the decode must see the same bytes.
		data := make([]byte, len(snap.data))
		copy(data, snap.data)
		if crc32.Checksum(data, storeCRCTable) != snap.crc {
			slot.mu.Unlock()
			s.reg.Counter("serve.snapshots.torn").Add(1)
			continue
		}
		st, step, err := core.DecodeStateBytes(data)
		if err != nil || step != snap.Step {
			// Same event as a CRC mismatch seen through the decoder.
			slot.mu.Unlock()
			s.reg.Counter("serve.snapshots.torn").Add(1)
			continue
		}
		slot.cachedV = snap.Version
		slot.cached = st
		slot.cachedAt = snap.Meta
		slot.mu.Unlock()
		return st, snap.Meta, nil
	}
	return nil, Meta{}, ErrTornSnapshot
}

// ErrSnapshotCorrupt means a member's latest published snapshot fails
// CRC verification against a stable pointer — not a torn read (the
// writer has not republished), but corruption at rest in the published
// buffer. A member in this state must not be served or counted ready.
var ErrSnapshotCorrupt = errors.New("serve: latest snapshot corrupt at rest")

// VerifyLatest re-verifies member's latest published snapshot without
// decoding or caching it — the readiness probe's integrity gate. A CRC
// mismatch while the published pointer moves is a torn read (counted,
// retried); a mismatch against a pointer that did not move means the
// bytes rotted after publish (the writer alternates two buffers and
// only republishes with a fresh CRC), which is reported as
// ErrSnapshotCorrupt. Returns ErrNoSnapshot when nothing is published.
func (s *Store) VerifyLatest(member int) error {
	slot := &s.slots[member]
	const attempts = 4
	for try := 0; try < attempts; try++ {
		snap := slot.cur.Load()
		if snap == nil {
			return ErrNoSnapshot
		}
		data := make([]byte, len(snap.data))
		copy(data, snap.data)
		s.reg.Counter("serve.snapshots.verifies").Add(1)
		if crc32.Checksum(data, storeCRCTable) == snap.crc {
			return nil
		}
		if slot.cur.Load() != snap {
			// The writer republished mid-copy: an ordinary torn read.
			s.reg.Counter("serve.snapshots.torn").Add(1)
			continue
		}
		s.reg.Counter("serve.snapshots.verify_failed").Add(1)
		return fmt.Errorf("%w: member %d version %d", ErrSnapshotCorrupt, member, snap.Version)
	}
	return ErrTornSnapshot
}
