package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"swcam/internal/obs"
)

// ServerConfig bounds the request path.
type ServerConfig struct {
	// MaxConcurrent requests execute at once (default 8); excess waits.
	MaxConcurrent int
	// MaxQueue is the bound on waiting requests (default 64). A request
	// arriving with the queue full is shed immediately with 429 — load
	// the server cannot absorb is refused at the door, not buffered
	// into collapse.
	MaxQueue int
	// DefaultDeadline is the per-request budget when the client sends
	// none (default 2s). Clients override with ?deadline_ms=.
	DefaultDeadline time.Duration
	// MinReady is how many members must have a published snapshot for
	// /readyz to report ready (default 1): the service is ready when it
	// can answer something, even mid-recovery.
	MinReady int
}

func (c *ServerConfig) withDefaults() ServerConfig {
	out := *c
	if out.MaxConcurrent < 1 {
		out.MaxConcurrent = 8
	}
	if out.MaxQueue < 1 {
		out.MaxQueue = 64
	}
	if out.DefaultDeadline <= 0 {
		out.DefaultDeadline = 2 * time.Second
	}
	if out.MinReady < 1 {
		out.MinReady = 1
	}
	return out
}

// Server is the HTTP face of a supervised ensemble.
type Server struct {
	sup *Supervisor
	cfg ServerConfig
	reg *obs.Registry

	// Admission: sem bounds executing requests, queued bounds waiters.
	sem      chan struct{}
	queued   atomic.Int64
	draining atomic.Bool

	// slowHook, when set, runs inside every data handler before the
	// work — the test lever for forcing deadline expiry.
	slowHook func(ctx context.Context)

	samplers samplers
	trackMu  sync.Mutex
	tracks   map[int]*trackHistory

	mux *http.ServeMux
}

// NewServer wraps a supervisor in the request path.
func NewServer(sup *Supervisor, cfg ServerConfig) *Server {
	s := &Server{
		sup: sup,
		cfg: cfg.withDefaults(),
		reg: sup.reg(),
	}
	s.sem = make(chan struct{}, s.cfg.MaxConcurrent)
	s.mux = http.NewServeMux()
	// Health and readiness bypass admission control entirely: a probe
	// must never be shed or queued behind data traffic, or the
	// orchestrator would kill a merely busy server.
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.Handle("/v1/config", s.admit(s.handleConfig))
	s.mux.Handle("/v1/members", s.admit(s.handleMembers))
	s.mux.Handle("/v1/field", s.admit(s.handleField))
	s.mux.Handle("/v1/point", s.admit(s.handlePoint))
	s.mux.Handle("/v1/ensemble", s.admit(s.handleEnsemble))
	s.mux.Handle("/v1/track", s.admit(s.handleTrack))
	s.mux.Handle("/v1/metrics", s.admit(s.handleMetrics))
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// StartDrain flips readiness off; new readiness probes see 503 while
// in-flight requests finish.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether a drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// deadline resolves the request's time budget: ?deadline_ms= if given
// (bounded to [1ms, 60s]), else the server default.
func (s *Server) deadline(r *http.Request) (time.Duration, bool) {
	raw := r.URL.Query().Get("deadline_ms")
	if raw == "" {
		return s.cfg.DefaultDeadline, true
	}
	ms, err := strconv.Atoi(raw)
	if err != nil || ms < 1 || ms > 60_000 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// admit wraps a data handler in the admission path: bounded queue,
// shed-with-429 when full, per-request deadline, latency histogram.
func (s *Server) admit(h func(w http.ResponseWriter, r *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d, ok := s.deadline(r)
		if !ok {
			writeErr(w, http.StatusBadRequest, "bad_deadline",
				"deadline_ms must be an integer in [1, 60000]")
			return
		}
		if n := s.queued.Add(1); n > int64(s.cfg.MaxQueue) {
			s.queued.Add(-1)
			s.reg.Counter("serve.requests.shed").Add(1)
			writeErr(w, http.StatusTooManyRequests, "queue_full",
				"admission queue is full; retry with backoff")
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		select {
		case s.sem <- struct{}{}:
			s.queued.Add(-1)
		case <-ctx.Done():
			s.queued.Add(-1)
			s.reg.Counter("serve.requests.deadline").Add(1)
			writeErr(w, http.StatusGatewayTimeout, "deadline_exceeded",
				"deadline expired while queued")
			return
		}
		defer func() { <-s.sem }()
		start := time.Now()
		if s.slowHook != nil {
			s.slowHook(ctx)
		}
		if ctx.Err() != nil {
			s.reg.Counter("serve.requests.deadline").Add(1)
			writeErr(w, http.StatusGatewayTimeout, "deadline_exceeded",
				"deadline expired during processing")
			return
		}
		h(w, r.WithContext(ctx))
		s.reg.Counter("serve.requests.served").Add(1)
		s.reg.Histogram("serve.latency_ms").Observe(
			float64(time.Since(start).Microseconds()) / 1000)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process is up and the mux is answering. Always 200;
	// an unhealthy server is one that cannot respond at all.
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "draining"})
		return
	}
	// A member counts as ready only if its latest snapshot exists AND
	// passes CRC re-verification. A snapshot corrupt at rest fails the
	// whole probe — a server holding rotted bytes must be taken out of
	// rotation, not trusted because enough other members look healthy.
	ready, corrupt := 0, 0
	for i := 0; i < s.sup.store.Members(); i++ {
		if _, ok := s.sup.store.Latest(i); !ok {
			continue
		}
		if err := s.sup.store.VerifyLatest(i); err != nil {
			if errors.Is(err, ErrSnapshotCorrupt) {
				corrupt++
			}
			continue
		}
		ready++
	}
	if corrupt > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "corrupt", "ready_members": ready,
			"corrupt_members": corrupt,
		})
		return
	}
	if ready < s.cfg.MinReady {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "warming", "ready_members": ready,
			"min_ready": s.cfg.MinReady,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ready", "ready_members": ready,
	})
}
