package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// A published snapshot whose bytes rot at rest — after the CRC was
// sealed, with no republish — must be caught by VerifyLatest, classified
// as corruption (not a torn read), and take the member out of readiness.
func TestVerifyLatestFlagsAtRestCorruption(t *testing.T) {
	sup := testSupervisor(t, 2, nil)
	if err := sup.RunCycles(1); err != nil {
		t.Fatal(err)
	}
	store := sup.store
	for m := 0; m < store.Members(); m++ {
		if err := store.VerifyLatest(m); err != nil {
			t.Fatalf("clean member %d failed verification: %v", m, err)
		}
	}

	srv := NewServer(sup, ServerConfig{MinReady: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if resp, _ := getJSON(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("clean readyz: %d", resp.StatusCode)
	}

	// Rot one byte of member 1's published snapshot in place. The
	// pointer does not move, so this is at-rest corruption, not a torn
	// read.
	snap := store.slots[1].cur.Load()
	snap.data[len(snap.data)/2] ^= 0x40

	err := store.VerifyLatest(1)
	if err == nil {
		t.Fatal("VerifyLatest accepted rotted bytes")
	}
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("corruption misclassified: %v", err)
	}
	if store.reg.CounterValue("serve.snapshots.verify_failed") < 1 {
		t.Error("verify_failed counter never moved")
	}
	// Member 0 is still fine — but one corrupt member fails the probe
	// outright, even with MinReady satisfied.
	if err := store.VerifyLatest(0); err != nil {
		t.Fatalf("healthy member dragged down: %v", err)
	}
	resp, body := getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || body["status"] != "corrupt" {
		t.Fatalf("corrupt readyz: %d %v", resp.StatusCode, body)
	}

	// The next publish replaces the rotted buffer and readiness heals.
	if err := sup.RunCycles(1); err != nil {
		t.Fatal(err)
	}
	if err := store.VerifyLatest(1); err != nil {
		t.Fatalf("republished member still failing: %v", err)
	}
	if resp, _ := getJSON(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healed readyz: %d", resp.StatusCode)
	}
}

// The store's integrity counters are pre-registered so a metrics scrape
// sees them at zero before any event has happened.
func TestMetricsSurfaceIntegrityCounters(t *testing.T) {
	sup := testSupervisor(t, 1, nil)
	if err := sup.RunCycles(1); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sup, ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var dump []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("metrics body not a registry dump: %v", err)
	}
	names := map[string]bool{}
	for _, m := range dump {
		names[m.Name] = true
	}
	for _, c := range []string{
		"serve.snapshots.torn", "serve.snapshots.verifies",
		"serve.snapshots.verify_failed",
	} {
		if !names[c] {
			t.Errorf("counter %s not surfaced in /v1/metrics", c)
		}
	}
}
