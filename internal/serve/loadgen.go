package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

func decodeBody(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// Load generation against a running forecast service. The generator is
// a library (cmd/swload wraps it; the chaos soak drives it in-process
// against an httptest server) so the "sustained QPS under faults"
// acceptance test and the CLI measure with the same code.

// LoadConfig describes one load run.
type LoadConfig struct {
	BaseURL    string        // e.g. http://127.0.0.1:8090
	Duration   time.Duration // load window (default 10s)
	Workers    int           // concurrent closed-loop clients (default 4)
	DeadlineMs int           // per-request deadline sent to the server (0 = server default)
	Seed       int64         // request-mix seed
	Client     *http.Client  // optional; defaults to a fresh client
}

// LoadResult is what the window observed, counted from the client side
// — the service's contract is judged by what clients actually receive.
type LoadResult struct {
	Duration  time.Duration
	Requests  int64         // responses received (any status)
	ByStatus  map[int]int64 // response count per HTTP status
	Errors5xx int64         // status >= 500
	Shed429   int64         // load-shed responses
	Stale     int64         // responses carrying X-Swcam-Stale
	Transport int64         // requests that failed below HTTP (conn refused, ...)
	LatMs     []float64     // latency of every response, ms
}

// Percentile returns the exact p-th latency percentile (nearest-rank)
// in ms, 0 if no samples.
func (r *LoadResult) Percentile(p float64) float64 {
	n := len(r.LatMs)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, r.LatMs)
	sort.Float64s(s)
	idx := int(p/100*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return s[idx]
}

// QPS returns the sustained completed-request rate.
func (r *LoadResult) QPS() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Duration.Seconds()
}

// loadMix is the rotation of query shapes one worker cycles through: a
// representative read mix (slices, points, statistics, tracks, status).
func loadMix(members int, rng *rand.Rand) []string {
	m := func() int { return rng.Intn(members) }
	return []string{
		fmt.Sprintf("/v1/field?member=%d&field=PS&nlon=36&nlat=18", m()),
		fmt.Sprintf("/v1/point?member=%d&field=T&lon=-75.1&lat=23.1", m()),
		"/v1/ensemble?field=PS&nlon=24&nlat=12",
		fmt.Sprintf("/v1/track?member=%d", m()),
		"/v1/members",
	}
}

// RunLoad drives the service at cfg.BaseURL with closed-loop workers
// for cfg.Duration and returns what the clients saw.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("serve: loadgen needs a base URL")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Workers < 1 {
		cfg.Workers = 4
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}

	res := &LoadResult{ByStatus: map[int]int64{}}
	var mu sync.Mutex
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()

	var wg sync.WaitGroup
	start := time.Now()
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(wkr)))
			// Members count discovered lazily from /v1/config would add a
			// failure mode; the mix just spreads across 8 and lets the
			// server 404 extra indices — those are client errors, counted,
			// never 5xx. Callers that know the ensemble size can rely on
			// the modulo below being exact.
			members := 8
			if n := fetchMemberCount(ctx, client, cfg.BaseURL); n > 0 {
				members = n
			}
			queries := loadMix(members, rng)
			for i := 0; ctx.Err() == nil; i++ {
				q := queries[i%len(queries)]
				if cfg.DeadlineMs > 0 {
					sep := "?"
					for _, c := range q {
						if c == '?' {
							sep = "&"
							break
						}
					}
					q = fmt.Sprintf("%s%sdeadline_ms=%d", q, sep, cfg.DeadlineMs)
				}
				t0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+q, nil)
				if err != nil {
					continue
				}
				resp, err := client.Do(req)
				lat := float64(time.Since(t0).Microseconds()) / 1000
				mu.Lock()
				if err != nil {
					if ctx.Err() == nil {
						res.Transport++
					}
					mu.Unlock()
					continue
				}
				res.Requests++
				res.ByStatus[resp.StatusCode]++
				res.LatMs = append(res.LatMs, lat)
				switch {
				case resp.StatusCode >= 500:
					res.Errors5xx++
				case resp.StatusCode == http.StatusTooManyRequests:
					res.Shed429++
				}
				if resp.Header.Get(headerStale) != "" {
					res.Stale++
				}
				mu.Unlock()
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(wkr)
	}
	wg.Wait()
	res.Duration = time.Since(start)
	return res, nil
}

// fetchMemberCount asks /v1/config for the ensemble size (0 on any
// failure; the caller falls back to a guess).
func fetchMemberCount(ctx context.Context, client *http.Client, base string) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/config", nil)
	if err != nil {
		return 0
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var cfg struct {
		Members int `json:"members"`
	}
	if err := decodeBody(resp.Body, &cfg); err != nil {
		return 0
	}
	return cfg.Members
}
