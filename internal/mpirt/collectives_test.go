package mpirt

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// allreduceOps names the standard operators for table-driven sweeps.
var allreduceOps = []struct {
	name string
	op   ReduceOp
}{
	{"sum", OpSum},
	{"max", OpMax},
	{"min", OpMin},
}

// TestAllreduceDifferential is the collective differential: the
// recursive-doubling Allreduce must reproduce the retained
// Reduce(0)+Bcast(0) reference BIT FOR BIT — same op, same inputs, same
// float64 bit patterns out on every rank — across non-trivial vector
// lengths and rank counts including many non-powers of two (where the
// substitute-sender scheme carries partial blocks). Sum is the only op
// where association actually moves bits, but max/min ride along to cover
// the message pattern under every operator.
func TestAllreduceDifferential(t *testing.T) {
	sizes := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 16, 17, 24, 25, 31, 32, 33}
	for _, n := range sizes {
		for _, tc := range allreduceOps {
			t.Run(fmt.Sprintf("n=%d/%s", n, tc.name), func(t *testing.T) {
				const vlen = 17
				rng := rand.New(rand.NewSource(int64(1000*n) + int64(len(tc.name))))
				ins := make([][]float64, n)
				for r := range ins {
					ins[r] = make([]float64, vlen)
					for k := range ins[r] {
						// Wide dynamic range so sum association genuinely
						// perturbs low bits if the grouping differs.
						ins[r][k] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(13)-6))
					}
				}
				got := make([][]float64, n)
				want := make([][]float64, n)
				w := NewWorld(n)
				err := runBounded(t, w, 30*time.Second, func(c *Comm) {
					g := make([]float64, vlen)
					wv := make([]float64, vlen)
					c.Allreduce(tc.op, ins[c.Rank()], g)
					c.allreduceReduceBcast(tc.op, ins[c.Rank()], wv)
					got[c.Rank()] = g
					want[c.Rank()] = wv
				})
				if err != nil {
					t.Fatal(err)
				}
				for r := 0; r < n; r++ {
					for k := 0; k < vlen; k++ {
						if math.Float64bits(got[r][k]) != math.Float64bits(want[r][k]) {
							t.Fatalf("rank %d elem %d: recursive doubling %x (%v) != reference %x (%v)",
								r, k, math.Float64bits(got[r][k]), got[r][k],
								math.Float64bits(want[r][k]), want[r][k])
						}
					}
				}
				// And every rank agrees with every other rank.
				for r := 1; r < n; r++ {
					for k := 0; k < vlen; k++ {
						if math.Float64bits(got[r][k]) != math.Float64bits(got[0][k]) {
							t.Fatalf("rank %d disagrees with rank 0 at elem %d", r, k)
						}
					}
				}
			})
		}
	}
}

// TestAllreduceDifferentialUnderFaults drives the butterfly through
// recoverable faults (drops, corruption, delays) with the bounded-
// retransmission failure detector on, and demands the result still be
// bit-identical to a fault-free reference run. Retransmission must not
// change what the collective computes, only when messages land.
func TestAllreduceDifferentialUnderFaults(t *testing.T) {
	const n, vlen, rounds = 7, 9, 5
	rng := rand.New(rand.NewSource(99))
	ins := make([][]float64, n)
	for r := range ins {
		ins[r] = make([]float64, vlen)
		for k := range ins[r] {
			ins[r][k] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(9)-4))
		}
	}
	// Fault-free reference via the retained Reduce+Bcast path.
	want := make([][][]float64, rounds)
	wRef := NewWorld(n)
	if err := runBounded(t, wRef, 30*time.Second, func(c *Comm) {
		for i := 0; i < rounds; i++ {
			out := make([]float64, vlen)
			c.allreduceReduceBcast(allreduceOps[i%len(allreduceOps)].op, ins[c.Rank()], out)
			if c.Rank() == 0 {
				want[i] = append(want[i], out)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	plan := NewFaultPlan(n).
		Add(Fault{Kind: DropMsg, Rank: 1, AfterOp: 3}).
		Add(Fault{Kind: CorruptMsg, Rank: 4, AfterOp: 5}).
		Add(Fault{Kind: DropMsg, Rank: 6, AfterOp: 8}).
		Add(Fault{Kind: DelayMsg, Rank: 2, AfterOp: 4, Delay: 2 * time.Millisecond}).
		Add(Fault{Kind: CorruptMsg, Rank: 0, AfterOp: 10})
	w := NewWorld(n)
	w.SetFaults(plan)
	w.SetRetry(DefaultRetryPolicy())
	w.SetRecvTimeout(2 * time.Second)
	got := make([][][]float64, n)
	if err := runBounded(t, w, 60*time.Second, func(c *Comm) {
		outs := make([][]float64, 0, rounds)
		for i := 0; i < rounds; i++ {
			out := make([]float64, vlen)
			c.Allreduce(allreduceOps[i%len(allreduceOps)].op, ins[c.Rank()], out)
			outs = append(outs, out)
		}
		got[c.Rank()] = outs
	}); err != nil {
		t.Fatal(err)
	}
	var retx int64
	for r := 0; r < n; r++ {
		retx += w.Stats(r).RetxAttempts
	}
	if retx == 0 {
		t.Fatalf("fault plan injected drops/corruption but no retransmission was attempted")
	}
	for r := 0; r < n; r++ {
		for i := 0; i < rounds; i++ {
			for k := 0; k < vlen; k++ {
				if math.Float64bits(got[r][i][k]) != math.Float64bits(want[i][0][k]) {
					t.Fatalf("round %d rank %d elem %d: faulted %v != fault-free %v",
						i, r, k, got[r][i][k], want[i][0][k])
				}
			}
		}
	}
}

// TestAllreduceScalarMatchesVector pins the scalar fast path to the
// vector collective it wraps.
func TestAllreduceScalarMatchesVector(t *testing.T) {
	const n = 6
	w := NewWorld(n)
	err := runBounded(t, w, 30*time.Second, func(c *Comm) {
		x := 1.0 / float64(c.Rank()+3)
		s := c.AllreduceScalar(OpSum, x)
		out := make([]float64, 1)
		c.Allreduce(OpSum, []float64{x}, out)
		if math.Float64bits(s) != math.Float64bits(out[0]) {
			t.Errorf("rank %d: scalar %v != vector %v", c.Rank(), s, out[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllreduceZeroAlloc pins the hot-path property the blowup watchdog
// and mass fixer rely on: once the pooled scratch is warm, Allreduce and
// AllreduceScalar perform ZERO heap allocations per call. Measured
// marginally like the halo exchange's bound — world setup and the first
// (pool-warming) calls cost the same constant in both runs, so the
// difference isolates the per-call cost. Requires the steady-state
// defaults: retransmission off (payload buffers recycle through the
// mailbox freelist) and no receive deadline.
func TestAllreduceZeroAlloc(t *testing.T) {
	const nranks, vlen = 4, 8
	in := make([]float64, vlen)
	for k := range in {
		in[k] = float64(k) + 0.25
	}
	for _, flavour := range []struct {
		name string
		run  func(c *Comm, out []float64)
	}{
		{"vector", func(c *Comm, out []float64) { c.Allreduce(OpSum, in, out) }},
		{"scalar", func(c *Comm, out []float64) { out[0] = c.AllreduceScalar(OpMax, out[0]) }},
	} {
		worldAllocs := func(calls int) float64 {
			return testing.AllocsPerRun(5, func() {
				w := NewWorld(nranks)
				err := w.Run(func(c *Comm) {
					out := make([]float64, vlen)
					for i := 0; i < calls; i++ {
						flavour.run(c, out)
					}
				})
				if err != nil {
					t.Error(err)
				}
			})
		}
		base := worldAllocs(52)
		many := worldAllocs(102)
		perCall := (many - base) / 50
		if perCall > 0 {
			t.Errorf("%s: %.2f heap allocations per steady-state allreduce, want 0 (world(52)=%.0f world(102)=%.0f)",
				flavour.name, perCall, base, many)
		}
	}
}

// TestAllreduceCollStats checks the collective-phase accounting the
// scaling campaign bills against: every Allreduce increments CollOps on
// every rank and accumulates nonzero wall time.
func TestAllreduceCollStats(t *testing.T) {
	const n, calls = 3, 4
	w := NewWorld(n)
	if err := runBounded(t, w, 30*time.Second, func(c *Comm) {
		out := make([]float64, 2)
		for i := 0; i < calls; i++ {
			c.Allreduce(OpSum, []float64{1, 2}, out)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		s := w.Stats(r)
		if s.CollOps != calls {
			t.Errorf("rank %d: CollOps = %d, want %d", r, s.CollOps, calls)
		}
		if s.CollNs <= 0 {
			t.Errorf("rank %d: CollNs = %d, want > 0", r, s.CollNs)
		}
	}
}
