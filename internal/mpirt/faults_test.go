package mpirt

import (
	"errors"
	"testing"
	"time"
)

// runBounded runs fn through w and fails the test if Run does not return
// within the deadline — the guard that turns a deadlock into a test
// failure instead of a hung suite.
func runBounded(t *testing.T, w *World, d time.Duration, fn func(c *Comm)) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- w.Run(fn) }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("World.Run did not return within %v (deadlock)", d)
		return nil
	}
}

// Regression: one rank panics while another blocks in Recv. Before the
// resilience work this deadlocked forever (the dead rank's message never
// arrives and nothing wakes the receiver); now the world is poisoned and
// Run returns promptly, naming the panicking rank.
func TestRankPanicUnblocksPeersInRecv(t *testing.T) {
	w := NewWorld(3)
	err := runBounded(t, w, 30*time.Second, func(c *Comm) {
		switch c.Rank() {
		case 0:
			panic("injected bug")
		case 1:
			c.Recv(0, 7, make([]float64, 4)) // message that will never come
		case 2:
			c.Barrier() // a barrier the dead rank never enters
		}
	})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("Run returned %v, want *RunError", err)
	}
	if re.Rank != 0 || !errors.Is(err, ErrPanic) {
		t.Fatalf("root cause misattributed: %v", err)
	}
}

// A rank that dies from an injected kill must also unblock peers stuck
// in collectives (which are built on the same mailboxes).
func TestKillUnblocksCollectives(t *testing.T) {
	plan := NewFaultPlan(4).Add(Fault{Rank: 2, AfterOp: 1, Kind: KillRank})
	w := NewWorld(4)
	w.SetFaults(plan)
	err := runBounded(t, w, 30*time.Second, func(c *Comm) {
		c.AllreduceScalar(OpSum, float64(c.Rank()))
	})
	var re *RunError
	if !errors.As(err, &re) || re.Rank != 2 || !errors.Is(err, ErrKilled) {
		t.Fatalf("kill not reported: %v", err)
	}
	if len(plan.Pending()) != 0 {
		t.Errorf("fault did not fire: %v", plan.Pending())
	}
}

func TestCorruptionDetectedByCRC(t *testing.T) {
	plan := NewFaultPlan(2).Add(Fault{Rank: 0, AfterOp: 1, Kind: CorruptMsg})
	w := NewWorld(2)
	w.SetFaults(plan)
	err := runBounded(t, w, 30*time.Second, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{1, 2, 3})
		} else {
			buf := make([]float64, 3)
			if err := c.RecvErr(0, 3, buf); !errors.Is(err, ErrCorrupt) {
				t.Errorf("corruption undetected: err=%v buf=%v", err, buf)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDroppedMessageTimesOut(t *testing.T) {
	plan := NewFaultPlan(2).Add(Fault{Rank: 0, AfterOp: 1, Kind: DropMsg})
	w := NewWorld(2)
	w.SetFaults(plan)
	err := runBounded(t, w, 30*time.Second, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{1})
		} else {
			err := c.RecvTimeout(0, 3, make([]float64, 1), 50*time.Millisecond)
			if !errors.Is(err, ErrTimeout) {
				t.Errorf("dropped message gave %v, want ErrTimeout", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A delayed message arrives late but intact: no error if the receive
// deadline is longer than the injected delay.
func TestDelayedMessageArrivesIntact(t *testing.T) {
	plan := NewFaultPlan(2).Add(Fault{Rank: 0, AfterOp: 1, Kind: DelayMsg, Delay: 20 * time.Millisecond})
	w := NewWorld(2)
	w.SetFaults(plan)
	err := runBounded(t, w, 30*time.Second, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{42})
		} else {
			buf := make([]float64, 1)
			if err := c.RecvTimeout(0, 3, buf, 10*time.Second); err != nil || buf[0] != 42 {
				t.Errorf("delayed message: err=%v buf=%v", err, buf)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The world-default receive deadline turns a peer that stopped sending
// into ErrTimeout on the plain Recv path (no per-call deadline needed).
func TestWorldDefaultRecvTimeout(t *testing.T) {
	w := NewWorld(2)
	w.SetRecvTimeout(50 * time.Millisecond)
	err := runBounded(t, w, 30*time.Second, func(c *Comm) {
		if c.Rank() == 1 {
			c.Recv(0, 9, make([]float64, 1)) // rank 0 never sends
		}
	})
	var re *RunError
	if !errors.As(err, &re) || re.Rank != 1 || !errors.Is(err, ErrTimeout) {
		t.Fatalf("timeout not reported: %v", err)
	}
}

// Irecv's Wait goes through the same deadline and CRC machinery.
func TestIrecvWaitTimeout(t *testing.T) {
	w := NewWorld(2)
	err := runBounded(t, w, 30*time.Second, func(c *Comm) {
		if c.Rank() == 1 {
			r := c.Irecv(0, 9, make([]float64, 1))
			if err := r.WaitTimeout(50 * time.Millisecond); !errors.Is(err, ErrTimeout) {
				t.Errorf("WaitTimeout gave %v", err)
			}
			// Cached outcome on re-Wait.
			if err := r.WaitErr(); !errors.Is(err, ErrTimeout) {
				t.Errorf("cached outcome lost: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Fault explicitly unwinds a rank with a caller-detected error; peers
// blocked in Recv unblock with ErrWorldAborted and the root cause wins.
func TestFailPoisonsWorld(t *testing.T) {
	sentinel := errors.New("application-level blowup")
	w := NewWorld(3)
	err := runBounded(t, w, 30*time.Second, func(c *Comm) {
		if c.Rank() == 0 {
			Fail(sentinel)
		}
		c.Recv(0, 1, make([]float64, 1))
	})
	var re *RunError
	if !errors.As(err, &re) || re.Rank != 0 || !errors.Is(err, sentinel) {
		t.Fatalf("root cause misattributed: %v", err)
	}
}

// Op counters persist across worlds sharing a plan, so a retry does not
// re-fire an already-fired fault.
func TestFaultPlanPersistsAcrossWorlds(t *testing.T) {
	plan := NewFaultPlan(2).Add(Fault{Rank: 0, AfterOp: 2, Kind: KillRank})
	job := func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
		} else {
			c.Recv(0, 1, make([]float64, 1))
			c.Recv(0, 2, make([]float64, 1))
		}
	}
	w1 := NewWorld(2)
	w1.SetFaults(plan)
	if err := runBounded(t, w1, 30*time.Second, job); !errors.Is(err, ErrKilled) {
		t.Fatalf("first world: %v", err)
	}
	if plan.Ops(0) == 0 {
		t.Fatal("op counter not advanced")
	}
	// Retry with the same plan: the kill already fired, so this passes.
	w2 := NewWorld(2)
	w2.SetFaults(plan)
	if err := runBounded(t, w2, 30*time.Second, job); err != nil {
		t.Fatalf("retry still failing: %v", err)
	}
}

func TestChaosPlanDeterministic(t *testing.T) {
	a := NewChaosPlan(7, 4, 100, 10).Pending()
	b := NewChaosPlan(7, 4, 100, 10).Pending()
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("chaos plan sizes %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chaos plans diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := NewChaosPlan(8, 4, 100, 10).Pending()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical plans")
	}
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("kill:1@200, corrupt:0@450,drop:2@10,delay:2@300:15", 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Pending()
	want := []Fault{
		{Rank: 0, AfterOp: 450, Kind: CorruptMsg},
		{Rank: 1, AfterOp: 200, Kind: KillRank},
		{Rank: 2, AfterOp: 10, Kind: DropMsg},
		{Rank: 2, AfterOp: 300, Kind: DelayMsg, Delay: 15 * time.Millisecond},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d faults, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if p, err := ParseFaultPlan("chaos:5@42", 3, 200); err != nil || len(p.Pending()) != 5 {
		t.Errorf("chaos spec: %v, %d faults", err, len(p.Pending()))
	}
	for _, bad := range []string{"boom:1@2", "kill:9@2", "kill:1", "delay:1@2", "kill:1@2:3", "chaos:x@1"} {
		if _, err := ParseFaultPlan(bad, 3, 100); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// Stats must tolerate probing a rank id that does not exist (e.g. a
// supervisor iterating over a stale world size).
func TestStatsBoundsChecked(t *testing.T) {
	w := NewWorld(2)
	if s := w.Stats(-1); s != (Stats{}) {
		t.Errorf("Stats(-1) = %+v", s)
	}
	if s := w.Stats(2); s != (Stats{}) {
		t.Errorf("Stats(2) = %+v", s)
	}
}

// After an abort, late operations on the dead world fail fast instead of
// queueing into mailboxes nobody will ever drain.
func TestSendOnAbortedWorldFails(t *testing.T) {
	w := NewWorld(2)
	err := runBounded(t, w, 30*time.Second, func(c *Comm) {
		if c.Rank() == 0 {
			Fail(ErrKilled)
		}
		c.Barrier() // unblocked by the poison
		c.Send(0, 1, []float64{1})
	})
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("root cause: %v", err)
	}
}
