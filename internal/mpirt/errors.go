package mpirt

import (
	"errors"
	"fmt"
)

// Typed failure modes of the runtime. Every blocking primitive either
// succeeds, returns (or raises) one of these, or returns an error
// wrapping one of these — a lost or mangled message is a diagnosable
// event, never a silent hang or a silent wrong answer.
var (
	// ErrTimeout: a receive deadline expired before a matching message
	// arrived (lost message, or a peer that stopped sending).
	ErrTimeout = errors.New("mpirt: receive timed out")

	// ErrCorrupt: a message arrived but its payload failed the CRC
	// check (injected or real corruption on the wire).
	ErrCorrupt = errors.New("mpirt: message payload corrupt (CRC mismatch)")

	// ErrSize: a matching message arrived with a payload length that
	// does not match the receive buffer.
	ErrSize = errors.New("mpirt: receive size mismatch")

	// ErrWorldAborted: another rank faulted and the world was poisoned;
	// this rank was unblocked cooperatively rather than left waiting for
	// a message that will never come.
	ErrWorldAborted = errors.New("mpirt: world aborted")

	// ErrKilled: this rank was killed by an injected fault
	// (FaultPlan.Kill).
	ErrKilled = errors.New("mpirt: rank killed by fault injection")

	// ErrPanic: the rank function panicked (a plain bug rather than a
	// runtime-detected fault); the panic value is attached by Run.
	ErrPanic = errors.New("mpirt: rank panicked")
)

// RunError is what World.Run returns when a rank faults: it names the
// first genuinely faulty rank (not the peers that were unblocked with
// ErrWorldAborted as a consequence) and wraps the underlying cause.
type RunError struct {
	Rank int
	Err  error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("mpirt: rank %d faulted: %v", e.Rank, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }

// rankFailure is the panic sentinel used to unwind a rank's goroutine
// when a blocking primitive fails: World.Run recovers it and converts
// it back into the wrapped error.
type rankFailure struct{ err error }

func fail(err error) { panic(rankFailure{err}) }

// Fail aborts the calling rank with err. It is the hook for layers that
// do their own fault detection on top of the error-returning receive
// API (the halo exchange, the blowup watchdog): instead of threading an
// error through every stack frame of a timestep, the rank unwinds and
// World.Run reports it, poisoning the world so peers unblock too.
// Fail does not return.
func Fail(err error) { fail(err) }
