package mpirt

import (
	"errors"
	"testing"
	"time"
)

// retryWorld builds a 2-rank world with the given fault plan and the
// default ladder retry policy, with a short receive deadline so lost
// messages surface quickly.
func retryWorld(p *FaultPlan) *World {
	w := NewWorld(2)
	if p != nil {
		w.SetFaults(p)
	}
	w.SetRecvTimeout(50 * time.Millisecond)
	w.SetRetry(RetryPolicy{MaxAttempts: 3, Backoff: 100 * time.Microsecond})
	return w
}

func TestRetryRecoversCorruptMessage(t *testing.T) {
	p := NewFaultPlan(2).Add(Fault{Rank: 0, AfterOp: 1, Kind: CorruptMsg})
	w := retryWorld(p)
	payload := []float64{1.5, -2.25, 3.125}
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, payload)
			return
		}
		buf := make([]float64, len(payload))
		if err := c.RecvErr(0, 7, buf); err != nil {
			t.Errorf("receive not recovered: %v", err)
			return
		}
		for i := range buf {
			if buf[i] != payload[i] {
				t.Errorf("buf[%d] = %v, want %v (clean copy)", i, buf[i], payload[i])
			}
		}
	})
	if err != nil {
		t.Fatalf("world aborted despite retransmission: %v", err)
	}
	if got := w.Stats(1).RetxRecovered; got != 1 {
		t.Errorf("RetxRecovered = %d, want 1", got)
	}
	if got := w.Stats(1).RetxAttempts; got < 1 {
		t.Errorf("RetxAttempts = %d, want >= 1", got)
	}
}

func TestRetryRecoversDroppedMessage(t *testing.T) {
	p := NewFaultPlan(2).Add(Fault{Rank: 0, AfterOp: 1, Kind: DropMsg})
	w := retryWorld(p)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{42})
			return
		}
		buf := make([]float64, 1)
		if err := c.RecvErr(0, 7, buf); err != nil {
			t.Errorf("receive not recovered: %v", err)
			return
		}
		if buf[0] != 42 {
			t.Errorf("got %v, want 42", buf[0])
		}
	})
	if err != nil {
		t.Fatalf("world aborted despite retransmission: %v", err)
	}
	if got := w.Stats(1).RetxRecovered; got != 1 {
		t.Errorf("RetxRecovered = %d, want 1", got)
	}
}

// TestRetryDiscardsLateDuplicate delays a message past the receive
// deadline so it is recovered from the retransmit log, then checks the
// eventually-arriving original is discarded rather than delivered in
// place of the next message on the same (src, tag) stream.
func TestRetryDiscardsLateDuplicate(t *testing.T) {
	p := NewFaultPlan(2).Add(Fault{Rank: 0, AfterOp: 1, Kind: DelayMsg, Delay: 100 * time.Millisecond})
	w := retryWorld(p)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1}) // delayed beyond the 50ms deadline
			// Let the delayed original arrive (as a late duplicate, after
			// the receiver recovered it from the log), then send the next
			// message on the same stream.
			time.Sleep(250 * time.Millisecond)
			c.Send(1, 7, []float64{2})
			return
		}
		buf := make([]float64, 1)
		if err := c.RecvErr(0, 7, buf); err != nil || buf[0] != 1 {
			t.Errorf("first receive: got %v, err %v; want 1 via retransmit", buf[0], err)
		}
		// By now the late duplicate of message 1 sits in the mailbox
		// ahead of message 2: the dedup must skip it.
		time.Sleep(300 * time.Millisecond)
		if err := c.RecvTimeout(0, 7, buf, 2*time.Second); err != nil || buf[0] != 2 {
			t.Errorf("second receive: got %v, err %v; want 2 (duplicate discarded)", buf[0], err)
		}
	})
	if err != nil {
		t.Fatalf("world aborted: %v", err)
	}
}

// TestRetryBudgetExhaustionEscalates: when no retransmission can help
// (the peer never sent anything), the attempt budget runs out and the
// timeout surfaces — the detector escalates instead of retrying forever.
func TestRetryBudgetExhaustionEscalates(t *testing.T) {
	w := NewWorld(2)
	w.SetRetry(RetryPolicy{MaxAttempts: 3, Backoff: 100 * time.Microsecond})
	done := make(chan error, 1)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			buf := make([]float64, 1)
			done <- c.RecvTimeout(0, 7, buf, 10*time.Millisecond)
		}
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	recvErr := <-done
	if !errors.Is(recvErr, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout after budget exhaustion", recvErr)
	}
	if got := w.Stats(1).RetxAttempts; got != 2 {
		t.Errorf("RetxAttempts = %d, want 2 (attempts 2 and 3)", got)
	}
	if got := w.Stats(1).RetxRecovered; got != 0 {
		t.Errorf("RetxRecovered = %d, want 0", got)
	}
}

// TestRetryDisabledKeepsInstantEscalation pins the historical default:
// without a policy, the first CRC failure surfaces immediately.
func TestRetryDisabledKeepsInstantEscalation(t *testing.T) {
	p := NewFaultPlan(2).Add(Fault{Rank: 0, AfterOp: 1, Kind: CorruptMsg})
	w := NewWorld(2)
	w.SetFaults(p)
	var got error
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1})
			return
		}
		got = c.RecvErr(0, 7, make([]float64, 1))
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	if !errors.Is(got, ErrCorrupt) {
		t.Fatalf("got %v, want immediate ErrCorrupt with retry disabled", got)
	}
}

// TestRetryAttributionSurvivesRetransmission: with retransmission
// absorbing message faults, a genuine rank death must still be
// attributed to the faulty rank, not to the peers that time out on it.
func TestRetryAttributionSurvivesRetransmission(t *testing.T) {
	p := NewFaultPlan(3).
		Add(Fault{Rank: 0, AfterOp: 1, Kind: CorruptMsg}).
		Add(Fault{Rank: 2, AfterOp: 2, Kind: KillRank})
	w := NewWorld(3)
	w.SetFaults(p)
	w.SetRecvTimeout(50 * time.Millisecond)
	w.SetRetry(RetryPolicy{MaxAttempts: 3, Backoff: 100 * time.Microsecond})
	err := w.Run(func(c *Comm) {
		// Ring exchange, two rounds: rank 0's corrupt send is recovered;
		// rank 2 dies at its second op and poisons the world.
		buf := make([]float64, 1)
		for round := 0; round < 2; round++ {
			c.Send((c.Rank()+1)%3, 7, []float64{float64(c.Rank())})
			c.Recv((c.Rank()+2)%3, 7, buf)
		}
	})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want RunError", err)
	}
	if re.Rank != 2 {
		t.Fatalf("fault attributed to rank %d, want 2 (the killed rank)", re.Rank)
	}
	if !errors.Is(re.Err, ErrKilled) {
		t.Fatalf("cause = %v, want ErrKilled", re.Err)
	}
}

func TestFaultPlanShrink(t *testing.T) {
	p := NewFaultPlan(4).
		Add(Fault{Rank: 0, AfterOp: 10, Kind: CorruptMsg}).
		Add(Fault{Rank: 1, AfterOp: 5, Kind: KillRank}).
		Add(Fault{Rank: 1, AfterOp: 50, Kind: DropMsg}).
		Add(Fault{Rank: 3, AfterOp: 20, Kind: DelayMsg, Delay: time.Millisecond})
	// Fire rank 1's kill so it counts as already-fired.
	p.ops[1] = 4
	if f := p.fire(1, false); f == nil || f.Kind != KillRank {
		t.Fatalf("setup: expected rank 1 kill to fire, got %+v", f)
	}
	p.ops[3] = 7

	q := p.Shrink(1)
	if len(q.ops) != 3 {
		t.Fatalf("shrunk plan has %d ranks, want 3", len(q.ops))
	}
	if q.Ops(0) != p.Ops(0) || q.Ops(1) != p.Ops(2) || q.Ops(2) != p.Ops(3) {
		t.Errorf("op counters not shifted: %v vs %v", q.ops, p.ops)
	}
	pending := q.Pending()
	if len(pending) != 2 {
		t.Fatalf("pending after shrink: %+v, want rank0 corrupt + rank2 delay", pending)
	}
	if pending[0].Rank != 0 || pending[0].Kind != CorruptMsg {
		t.Errorf("pending[0] = %+v", pending[0])
	}
	if pending[1].Rank != 2 || pending[1].Kind != DelayMsg {
		t.Errorf("pending[1] = %+v (rank 3 should have shifted to 2)", pending[1])
	}
}
