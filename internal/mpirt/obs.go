package mpirt

import "swcam/internal/obs"

// SetTracer attaches a span tracer: every collective (barrier, reduce,
// bcast, allreduce, gather) records a span with pid = rank. Nil (the
// default) records nothing and costs a single nil test per collective.
// Set it before Run.
func (w *World) SetTracer(t *obs.Tracer) { w.tracer = t }

// span opens a collective span for this rank (inert when untraced).
func (c *Comm) span(name string) obs.Span {
	return c.world.tracer.Begin(c.rank, name, "comm")
}

// DumpStats publishes the world's accumulated communication counters
// into the unified registry: totals under mpirt.send.* / mpirt.recv.*,
// and the per-rank send-byte distribution as a histogram (the load-
// imbalance signal). Safe to call after Run; a nil registry is a no-op.
func (w *World) DumpStats(reg *obs.Registry) {
	if reg == nil {
		return
	}
	var msgsSent, bytesSent, msgsRecvd, bytesRecvd int64
	var retxAtt, retxRec, collOps, collNs int64
	for r := 0; r < w.n; r++ {
		s := w.stats[r]
		msgsSent += s.MsgsSent
		bytesSent += s.BytesSent
		msgsRecvd += s.MsgsRecvd
		bytesRecvd += s.BytesRecvd
		retxAtt += s.RetxAttempts
		retxRec += s.RetxRecovered
		collOps += s.CollOps
		collNs += s.CollNs
		reg.Histogram("mpirt.rank.send.bytes").Observe(float64(s.BytesSent))
	}
	reg.Counter("mpirt.send.msgs").Add(msgsSent)
	reg.Counter("mpirt.send.bytes").Add(bytesSent)
	reg.Counter("mpirt.recv.msgs").Add(msgsRecvd)
	reg.Counter("mpirt.recv.bytes").Add(bytesRecvd)
	reg.Counter("mpirt.retx.attempts").Add(retxAtt)
	reg.Counter("mpirt.retx.recovered").Add(retxRec)
	reg.Counter("mpirt.coll.ops").Add(collOps)
	reg.Counter("mpirt.coll.ns").Add(collNs)
	reg.Gauge("mpirt.ranks").Set(float64(w.n))
}
