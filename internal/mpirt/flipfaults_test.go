package mpirt

import (
	"testing"
)

// Flip faults model silent data corruption: they must never fire at a
// communication operation (the comm layer cannot see resident-state
// rot), only when the integrity layer polls for them — and polling
// must not advance the op counter, so comm-fault schedules stay
// aligned whether or not scrubbing is enabled.
func TestFlipFaultsIgnoredByCommOps(t *testing.T) {
	p := NewFaultPlan(2)
	p.Add(Fault{Rank: 0, AfterOp: 1, Kind: FlipState})
	p.Add(Fault{Rank: 0, AfterOp: 1, Kind: FlipCheckpoint})
	p.Add(Fault{Rank: 0, AfterOp: 2, Kind: KillRank})
	if f := p.fire(0, true); f != nil {
		t.Fatalf("comm op fired flip fault %v", f.Kind)
	}
	if f := p.fire(0, true); f == nil || f.Kind != KillRank {
		t.Fatalf("kill at op 2 got %v, flips must not have consumed it", f)
	}
	if got := len(p.Pending()); got != 2 {
		t.Fatalf("flips consumed by comm ops: %d pending, want 2", got)
	}
}

func TestFireIntegrityDoesNotAdvanceOps(t *testing.T) {
	p := NewFaultPlan(1)
	p.Add(Fault{Rank: 0, AfterOp: 3, Kind: FlipState})
	p.fire(0, true)
	p.fire(0, true)
	// Due at op 3; only 2 ops so far — and polling must not create ops.
	for i := 0; i < 10; i++ {
		if f := p.FireIntegrity(0, FlipState); f != nil {
			t.Fatalf("flip fired at op %d, scheduled after op 3", p.Ops(0))
		}
	}
	if got := p.Ops(0); got != 2 {
		t.Fatalf("FireIntegrity advanced ops to %d", got)
	}
	p.fire(0, true)
	if f := p.FireIntegrity(0, FlipState); f == nil {
		t.Fatal("flip not fired once due")
	}
	// Fired faults stay fired: the post-recovery replay must not re-flip.
	if f := p.FireIntegrity(0, FlipState); f != nil {
		t.Fatal("flip fired twice")
	}
}

func TestFireIntegrityMatchesKindExactly(t *testing.T) {
	p := NewFaultPlan(1)
	p.Add(Fault{Rank: 0, AfterOp: 1, Kind: FlipBuddy})
	p.fire(0, true)
	if f := p.FireIntegrity(0, FlipState); f != nil {
		t.Fatalf("FlipState poll fired a FlipBuddy fault")
	}
	if f := p.FireIntegrity(0, FlipCheckpoint); f != nil {
		t.Fatalf("FlipCheckpoint poll fired a FlipBuddy fault")
	}
	if f := p.FireIntegrity(0, FlipBuddy); f == nil {
		t.Fatal("FlipBuddy poll missed its fault")
	}
}

func TestParseFlipFaultSpecs(t *testing.T) {
	p, err := ParseFaultPlan("flipState:0@10,flipCheckpoint:1@20,flipBuddy:2@30", 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	pending := p.Pending()
	if len(pending) != 3 {
		t.Fatalf("parsed %d faults, want 3", len(pending))
	}
	want := map[int]FaultKind{0: FlipState, 1: FlipCheckpoint, 2: FlipBuddy}
	for _, f := range pending {
		if want[f.Rank] != f.Kind {
			t.Fatalf("rank %d parsed as %v", f.Rank, f.Kind)
		}
	}
	if _, err := ParseFaultPlan("flipState:0@10:5", 1, 100); err == nil {
		t.Fatal("extra field accepted")
	}
}

func TestFlipChaosPlanDeterministicAndFlipOnly(t *testing.T) {
	a := NewFlipChaosPlan(42, 3, 200, 8)
	b := NewFlipChaosPlan(42, 3, 200, 8)
	pa, pb := a.Pending(), b.Pending()
	if len(pa) != 8 || len(pb) != 8 {
		t.Fatalf("plan sizes %d, %d; want 8", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("same seed diverged at fault %d: %+v vs %+v", i, pa[i], pb[i])
		}
		if !pa[i].Kind.isFlip() {
			t.Fatalf("chaosflip produced non-flip kind %v", pa[i].Kind)
		}
	}
	// Spec-string route builds the same schedule.
	c, err := ParseFaultPlan("chaosflip:8@42", 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	pc := c.Pending()
	for i := range pa {
		if pa[i] != pc[i] {
			t.Fatalf("chaosflip spec diverged from NewFlipChaosPlan at %d", i)
		}
	}
}

func TestShrinkPreservesFlipFaults(t *testing.T) {
	p := NewFaultPlan(3)
	p.Add(Fault{Rank: 2, AfterOp: 5, Kind: FlipState})
	p.Add(Fault{Rank: 1, AfterOp: 5, Kind: FlipBuddy})
	q := p.Shrink(1) // rank 1 dies: its unfired flip goes, rank 2 shifts to 1
	pending := q.Pending()
	if len(pending) != 1 || pending[0].Rank != 1 || pending[0].Kind != FlipState {
		t.Fatalf("shrunk plan pending = %+v", pending)
	}
}
