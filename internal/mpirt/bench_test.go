package mpirt

import "testing"

func BenchmarkAllreduce16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := NewWorld(16)
		w.Run(func(c *Comm) {
			c.AllreduceScalar(OpSum, float64(c.Rank()))
		})
	}
}

func BenchmarkPingPong(b *testing.B) {
	w := NewWorld(2)
	b.ResetTimer()
	w.Run(func(c *Comm) {
		buf := make([]float64, 128)
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				c.Send(1, 0, buf)
				c.Recv(1, 1, buf)
			} else {
				c.Recv(0, 0, buf)
				c.Send(0, 1, buf)
			}
		}
	})
}
