package mpirt

import "time"

// Bounded retransmission — the lowest rung of the recovery ladder. A
// real interconnect does not declare a node dead because one packet was
// mangled: the NIC retries from its send queue a bounded number of
// times first. This file models that: every Send logs its clean payload
// in a per-destination retransmit log before fault injection applies,
// and a receiver whose attempt ends in ErrTimeout or ErrCorrupt backs
// off and pulls the logged copy instead of aborting the world. Only
// when the attempt budget is exhausted does the failure escalate to the
// supervisor (core.ResilientJob), which owns the higher rungs.

// retxLogCap bounds the per-destination retransmit log. Logged messages
// are acknowledged (removed) as soon as they are received, so the log
// only holds in-flight traffic; the cap is a backstop against a
// receiver that stops consuming.
const retxLogCap = 1024

// RetryPolicy configures bounded retransmission for a World. The zero
// value disables it (a single attempt, the historical instant-escalate
// behaviour).
type RetryPolicy struct {
	// MaxAttempts is the total number of delivery attempts per receive
	// (1 or less = no retries).
	MaxAttempts int
	// Backoff is the base delay before the first retransmission;
	// subsequent attempts double it. Zero defaults to 200µs.
	Backoff time.Duration
}

// DefaultRetryPolicy is the ladder-mode failure detector: up to three
// delivery attempts with a 200µs base backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, Backoff: 200 * time.Microsecond}
}

func (rp RetryPolicy) enabled() bool { return rp.MaxAttempts > 1 }

func (rp RetryPolicy) attempts() int {
	if rp.MaxAttempts < 1 {
		return 1
	}
	return rp.MaxAttempts
}

// sleep blocks for the attempt's backoff: base * 2^(attempt-1) plus a
// deterministic jitter derived from (rank, attempt), so concurrent
// retries desynchronize without introducing nondeterminism into the
// schedule a seeded chaos test replays.
func (rp RetryPolicy) sleep(rank, attempt int) {
	base := rp.Backoff
	if base <= 0 {
		base = 200 * time.Microsecond
	}
	d := base << uint(attempt-1)
	// Weyl-sequence jitter in [0, base/2): cheap, stateless, and the
	// same for the same (rank, attempt) every run.
	h := uint64(rank)*0x9E3779B97F4A7C15 + uint64(attempt)*0xBF58476D1CE4E5B9
	h ^= h >> 29
	if half := int64(base) / 2; half > 0 {
		d += time.Duration(int64(h % uint64(half)))
	}
	time.Sleep(d)
}

// SetRetry attaches a retransmission policy to the world. Set it before
// Run.
func (w *World) SetRetry(rp RetryPolicy) { w.retry = rp }

// logRetx appends a clean copy of m to this destination's retransmit
// log. Called by Send before fault injection, under no additional
// copying: m.data is never mutated after this point (faults corrupt a
// private copy).
func (b *mailbox) logRetx(m message) {
	b.mu.Lock()
	if len(b.retx) >= retxLogCap {
		b.retx = b.retx[1:]
	}
	b.retx = append(b.retx, m)
	b.mu.Unlock()
}

// ackRetx drops a successfully delivered message from the log.
func (b *mailbox) ackRetx(src, tag int, seq uint64) {
	b.mu.Lock()
	for i := range b.retx {
		if b.retx[i].src == src && b.retx[i].tag == tag && b.retx[i].seq == seq {
			b.retx = append(b.retx[:i], b.retx[i+1:]...)
			break
		}
	}
	b.mu.Unlock()
}

// expectedSeq reports the next sequence number the (src, tag) stream
// will deliver — the gap a timed-out receive is stuck on.
func (b *mailbox) expectedSeq(src, tag int) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextSeq[seqKey{src, tag}]
}

// recvRetx attempts to deliver the logged clean copy of exactly message
// seq of the (src, tag) stream into buf — the retransmission. On
// success the entry is consumed and the stream's expected sequence
// number advanced past it, so the delayed original (if it ever arrives)
// is discarded as stale by the mailbox instead of being delivered
// twice.
func (c *Comm) recvRetx(src, tag int, seq uint64, buf []float64) bool {
	b := c.world.boxes[c.rank]
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.retx {
		m := b.retx[i]
		if m.src != src || m.tag != tag || m.seq != seq || len(m.data) != len(buf) {
			continue
		}
		b.retx = append(b.retx[:i], b.retx[i+1:]...)
		if k := (seqKey{src, tag}); b.nextSeq[k] <= seq {
			b.nextSeq[k] = seq + 1
		}
		copy(buf, m.data)
		return true
	}
	return false
}
