package mpirt

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			buf := make([]float64, 3)
			c.Recv(0, 7, buf)
			if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
				t.Errorf("recv got %v", buf)
			}
		}
	})
}

func TestSendCopiesBuffer(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			data := []float64{42}
			c.Send(1, 0, data)
			data[0] = -1 // must not affect the message in flight
			c.Barrier()
		} else {
			c.Barrier()
			buf := make([]float64, 1)
			c.Recv(0, 0, buf)
			if buf[0] != 42 {
				t.Errorf("message corrupted by sender reuse: %v", buf[0])
			}
		}
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{10})
			c.Send(1, 2, []float64{20})
		} else {
			a := make([]float64, 1)
			b := make([]float64, 1)
			c.Recv(0, 2, b) // receive the later tag first
			c.Recv(0, 1, a)
			if a[0] != 10 || b[0] != 20 {
				t.Errorf("tag matching broken: %v %v", a, b)
			}
		}
	})
}

func TestPerPairOrderPreservedWithinTag(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		const n = 50
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 5, []float64{float64(i)})
			}
		} else {
			buf := make([]float64, 1)
			for i := 0; i < n; i++ {
				c.Recv(0, 5, buf)
				if buf[0] != float64(i) {
					t.Errorf("message %d arrived as %v", i, buf[0])
					return
				}
			}
		}
	})
}

func TestIsendIrecvOverlap(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		buf := make([]float64, 4)
		if c.Rank() == 0 {
			req := c.Isend(1, 3, []float64{1, 2, 3, 4})
			req.Wait()
		} else {
			req := c.Irecv(0, 3, buf)
			// "Compute" before waiting: buf must not be filled yet by
			// contract (fill happens at Wait).
			req.Wait()
			for i, v := range buf {
				if v != float64(i+1) {
					t.Errorf("irecv buf = %v", buf)
					return
				}
			}
		}
	})
}

// Double Wait is a documented no-op: the second call returns the cached
// outcome of the first instead of panicking or re-receiving.
func TestRequestDoubleWaitIsNoOp(t *testing.T) {
	w := NewWorld(2)
	if err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			r := c.Isend(1, 0, []float64{1})
			r.Wait()
			r.Wait()
		} else {
			buf := make([]float64, 1)
			r := c.Irecv(0, 0, buf)
			if err := r.WaitErr(); err != nil {
				t.Errorf("first WaitErr: %v", err)
			}
			buf[0] = -7 // must not be re-filled by the second Wait
			if err := r.WaitErr(); err != nil {
				t.Errorf("second WaitErr: %v", err)
			}
			r.Wait()
			if buf[0] != -7 {
				t.Errorf("second Wait re-received into the buffer: %v", buf[0])
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRecvSizeMismatchReturnsError(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2})
		} else {
			c.Recv(0, 0, make([]float64, 3))
		}
	})
	if !errors.Is(err, ErrSize) {
		t.Fatalf("size mismatch gave %v, want ErrSize", err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("faulty rank not identified: %v", err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	const n = 8
	w := NewWorld(n)
	var before, after [n]bool
	w.Run(func(c *Comm) {
		before[c.Rank()] = true
		c.Barrier()
		// After the barrier every rank must see every 'before' flag.
		for r := 0; r < n; r++ {
			if !before[r] {
				t.Errorf("rank %d passed barrier before rank %d entered", c.Rank(), r)
			}
		}
		after[c.Rank()] = true
	})
	for r := 0; r < n; r++ {
		if !after[r] {
			t.Fatalf("rank %d never finished", r)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		for i := 0; i < 25; i++ {
			c.Barrier()
		}
	})
}

func TestStatsCounters(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 10))
		} else {
			c.Recv(0, 0, make([]float64, 10))
		}
	})
	if s := w.Stats(0); s.MsgsSent != 1 || s.BytesSent != 80 {
		t.Errorf("rank 0 stats = %+v", s)
	}
	if s := w.Stats(1); s.MsgsRecvd != 1 || s.BytesRecvd != 80 {
		t.Errorf("rank 1 stats = %+v", s)
	}
	if w.TotalBytes() != 80 {
		t.Errorf("total bytes = %d", w.TotalBytes())
	}
}

func TestRunReportsPanicWithRank(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 2 {
			panic("rank boom")
		}
	})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("panic gave %v, want ErrPanic", err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Rank != 2 {
		t.Fatalf("faulty rank not identified: %v", err)
	}
	if !strings.Contains(err.Error(), "rank boom") {
		t.Errorf("panic value lost: %v", err)
	}
}

func testReduceSizes(t *testing.T, sizes []int) {
	t.Helper()
	for _, n := range sizes {
		w := NewWorld(n)
		w.Run(func(c *Comm) {
			in := []float64{float64(c.Rank() + 1), float64(c.Rank())}
			out := make([]float64, 2)
			c.Allreduce(OpSum, in, out)
			wantA := float64(n*(n+1)) / 2
			wantB := float64(n*(n-1)) / 2
			if math.Abs(out[0]-wantA) > 1e-12 || math.Abs(out[1]-wantB) > 1e-12 {
				t.Errorf("n=%d rank %d: allreduce = %v, want [%v %v]", n, c.Rank(), out, wantA, wantB)
			}
		})
	}
}

func TestAllreduceSumAllSizes(t *testing.T) {
	// Power-of-two and awkward sizes both must work.
	testReduceSizes(t, []int{1, 2, 3, 4, 5, 7, 8, 13, 16})
}

func TestAllreduceMaxMin(t *testing.T) {
	const n = 6
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		x := float64(c.Rank())
		if got := c.AllreduceScalar(OpMax, x); got != n-1 {
			t.Errorf("max = %v", got)
		}
		if got := c.AllreduceScalar(OpMin, x); got != 0 {
			t.Errorf("min = %v", got)
		}
	})
}

func TestReduceNonZeroRoot(t *testing.T) {
	const n = 5
	const root = 3
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		in := []float64{1}
		out := []float64{0}
		c.Reduce(root, OpSum, in, out)
		if c.Rank() == root && out[0] != n {
			t.Errorf("reduce at root = %v, want %v", out[0], n)
		}
		if c.Rank() != root && out[0] != 0 {
			t.Errorf("non-root rank %d got result %v", c.Rank(), out[0])
		}
	})
}

func TestBcastFromEveryRoot(t *testing.T) {
	const n = 7
	for root := 0; root < n; root++ {
		w := NewWorld(n)
		w.Run(func(c *Comm) {
			buf := make([]float64, 3)
			if c.Rank() == root {
				buf[0], buf[1], buf[2] = 9, 8, 7
			}
			c.Bcast(root, buf)
			if buf[0] != 9 || buf[1] != 8 || buf[2] != 7 {
				t.Errorf("root=%d rank %d: bcast got %v", root, c.Rank(), buf)
			}
		})
	}
}

func TestGather(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	out := make([]float64, 2*n)
	w.Run(func(c *Comm) {
		in := []float64{float64(c.Rank()), float64(c.Rank() * 10)}
		if c.Rank() == 0 {
			c.Gather(0, in, out)
		} else {
			c.Gather(0, in, nil)
		}
	})
	for r := 0; r < n; r++ {
		if out[2*r] != float64(r) || out[2*r+1] != float64(r*10) {
			t.Fatalf("gather out = %v", out)
		}
	}
}

func TestWaitAll(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		n := c.Size()
		bufs := make([][]float64, n)
		var reqs []*Request
		for r := 0; r < n; r++ {
			if r == c.Rank() {
				continue
			}
			bufs[r] = make([]float64, 1)
			reqs = append(reqs, c.Irecv(r, 9, bufs[r]))
		}
		for r := 0; r < n; r++ {
			if r != c.Rank() {
				c.Isend(r, 9, []float64{float64(c.Rank())})
			}
		}
		WaitAll(reqs)
		for r := 0; r < n; r++ {
			if r != c.Rank() && bufs[r][0] != float64(r) {
				t.Errorf("rank %d: from %d got %v", c.Rank(), r, bufs[r][0])
			}
		}
	})
}

func TestNewWorldPanicsOnZeroRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero ranks accepted")
		}
	}()
	NewWorld(0)
}

// Stress: many ranks exchanging many tagged messages in both directions
// concurrently with collectives interleaved — the runtime must neither
// deadlock nor misroute.
func TestStressManyRanksManyMessages(t *testing.T) {
	const (
		n    = 12
		msgs = 40
	)
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		me := c.Rank()
		next := (me + 1) % n
		prev := (me - 1 + n) % n
		var reqs []*Request
		bufs := make([][]float64, msgs)
		for i := 0; i < msgs; i++ {
			bufs[i] = make([]float64, 3)
			reqs = append(reqs, c.Irecv(prev, i, bufs[i]))
		}
		for i := 0; i < msgs; i++ {
			c.Isend(next, i, []float64{float64(me), float64(i), float64(me * i)})
			if i%10 == 0 {
				c.Barrier()
			}
		}
		WaitAll(reqs)
		for i := 0; i < msgs; i++ {
			if bufs[i][0] != float64(prev) || bufs[i][1] != float64(i) || bufs[i][2] != float64(prev*i) {
				t.Errorf("rank %d msg %d corrupted: %v", me, i, bufs[i])
				return
			}
		}
		total := c.AllreduceScalar(OpSum, 1)
		if total != n {
			t.Errorf("rank %d: allreduce after stress = %v", me, total)
		}
	})
}
