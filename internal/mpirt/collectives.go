package mpirt

import (
	"sync"
	"time"
)

// barrier is a reusable counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until every rank has entered the barrier, or until the
// world is poisoned — a barrier must never outlive its world, or a
// single dead rank would strand every peer in it.
func (b *barrier) wait(w *World) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if w.aborted.Load() {
		return ErrWorldAborted
	}
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return nil
	}
	for phase == b.phase {
		b.cond.Wait()
		if w.aborted.Load() && phase == b.phase {
			return ErrWorldAborted
		}
	}
	return nil
}

// Barrier blocks until every rank has entered it. In a poisoned world it
// unwinds the rank with ErrWorldAborted instead of waiting forever.
func (c *Comm) Barrier() {
	sp := c.span("mpirt.barrier")
	defer c.collEnd(time.Now())
	c.faultPoint(false)
	if err := c.world.barrier.wait(c.world); err != nil {
		fail(err)
	}
	sp.End()
}

// ReduceOp combines two values during reductions.
type ReduceOp func(a, b float64) float64

// Standard reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if b > a {
			return b
		}
		return a
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if b < a {
			return b
		}
		return a
	}
)

// collective tags live in a reserved negative space so they can never
// collide with user point-to-point tags.
const (
	tagReduce = -1 - iota
	tagBcast
	tagGather
	tagAlltoall
	tagAllreduce
)

// collEnd accumulates one finished collective into this rank's stats —
// the per-phase timing signal the scaling campaign (internal/scale)
// reads back out through DumpStats as mpirt.coll.*.
func (c *Comm) collEnd(t0 time.Time) {
	st := &c.world.stats[c.rank]
	st.CollOps++
	st.CollNs += time.Since(t0).Nanoseconds()
}

// Reduce combines in[] element-wise across ranks with op; the result
// lands in out[] on root only. Implemented as a fan-in tree on rank ids.
func (c *Comm) Reduce(root int, op ReduceOp, in, out []float64) {
	sp := c.span("mpirt.reduce")
	defer sp.End()
	defer c.collEnd(time.Now())
	// Rotate ranks so the tree roots at 'root'.
	me := (c.rank - root + c.world.n) % c.world.n
	n := c.world.n
	acc := append([]float64(nil), in...)
	// Binomial tree fan-in.
	for step := 1; step < n; step *= 2 {
		if me&step != 0 {
			dst := ((me - step) + root) % n
			c.Send(dst, tagReduce, acc)
			break
		}
		src := me + step
		if src < n {
			buf := make([]float64, len(acc))
			c.Recv((src+root)%n, tagReduce, buf)
			for i := range acc {
				acc[i] = op(acc[i], buf[i])
			}
		}
	}
	if c.rank == root {
		copy(out, acc)
	}
}

// Bcast distributes root's buf to every rank (binomial tree).
func (c *Comm) Bcast(root int, buf []float64) {
	sp := c.span("mpirt.bcast")
	defer sp.End()
	defer c.collEnd(time.Now())
	me := (c.rank - root + c.world.n) % c.world.n
	n := c.world.n
	// Find the highest power-of-two step at which this rank receives.
	mask := 1
	for mask < n {
		mask *= 2
	}
	if me != 0 {
		// Receive from the parent: clear the lowest set bit of me.
		parent := me & (me - 1)
		c.Recv((parent+root)%n, tagBcast, buf)
	}
	// Forward to children: set bits above the lowest set bit of me.
	low := me & -me
	if me == 0 {
		low = mask
	}
	for step := low / 2; step >= 1; step /= 2 {
		child := me | step
		if child != me && child < n {
			c.Send((child+root)%n, tagBcast, buf)
		}
	}
}

// Allreduce combines in[] across all ranks into out[] on every rank,
// by recursive doubling: log2(n) butterfly stages in which every rank
// exchanges its accumulated block value with a partner, instead of the
// old Reduce-to-0-then-Bcast (which traverses the tree twice and
// serializes on rank 0). The floating-point association is EXACTLY the
// binomial-tree fold of the old path — at every stage the combined
// value is op(lower-half fold, upper-half fold), which is the grouping
// the fan-in tree computes — so the result is bit-identical to
// Reduce(0)+Bcast(0) for every op, vector length, and rank count,
// including non-powers of two.
//
// Non-power-of-2 rank counts keep one invariant: whenever the upper
// half-block of a stage is non-empty, the lower half-block is full
// (its top rank is below the upper block's base, which is below n).
// Upper-half ranks therefore always have a live partner; lower-half
// ranks whose partner would be >= n instead receive the upper block's
// fold from a designated substitute sender inside the upper block.
// Every rank of every (possibly partial) block holds that block's fold
// after each stage, by induction.
//
// The receive scratch and the accumulator live on the Comm and the
// caller's out[], so a warm steady-state call performs no heap
// allocation (bounded in TestAllreduceZeroAlloc).
func (c *Comm) Allreduce(op ReduceOp, in, out []float64) {
	sp := c.span("mpirt.allreduce")
	defer sp.End()
	defer c.collEnd(time.Now())
	n := c.world.n
	copy(out, in)
	if n == 1 {
		return
	}
	if cap(c.arScratch) < len(out) {
		c.arScratch = make([]float64, len(out))
	}
	scr := c.arScratch[:len(out)]
	me := c.rank
	for s := 1; s < n; s *= 2 {
		base := me &^ (2*s - 1) // this stage's 2s-aligned block base
		if me&s != 0 {
			// Upper half-block: partner always exists. Ship our fold,
			// take the lower fold, combine as op(lower, upper).
			partner := me - s
			c.Send(partner, tagAllreduce, out)
			// Substitute duty: lower-half ranks >= n-s have no partner;
			// cover those congruent to our block index.
			m := c.world.n - base - s // upper block population
			for i := me - base - s; i < s-m; i += m {
				c.Send(base+m+i, tagAllreduce, out)
			}
			c.Recv(partner, tagAllreduce, scr)
			for k := range out {
				out[k] = op(scr[k], out[k])
			}
			continue
		}
		// Lower half-block.
		switch partner := me + s; {
		case partner < n:
			c.Send(partner, tagAllreduce, out)
			c.Recv(partner, tagAllreduce, scr)
		case base+s < n:
			// Partner missing but the upper block exists: its fold
			// arrives from the substitute sender chosen above.
			m := n - base - s
			c.Recv(base+s+(me-base-m)%m, tagAllreduce, scr)
		default:
			continue // upper block empty: our fold already covers it
		}
		for k := range out {
			out[k] = op(out[k], scr[k])
		}
	}
}

// allreduceReduceBcast is the pre-recursive-doubling implementation,
// retained as the reference for the collective differential tests: the
// new butterfly must reproduce its floating-point result bit for bit.
func (c *Comm) allreduceReduceBcast(op ReduceOp, in, out []float64) {
	tmp := make([]float64, len(in))
	c.Reduce(0, op, in, tmp)
	if c.rank == 0 {
		copy(out, tmp)
	}
	c.Bcast(0, out)
}

// AllreduceScalar is Allreduce for a single value — the hot-path form
// the blowup watchdog calls every checked step. The length-1 buffers
// are pooled on the Comm, so a warm call allocates nothing.
func (c *Comm) AllreduceScalar(op ReduceOp, x float64) float64 {
	if c.arIn == nil {
		c.arIn = make([]float64, 1)
		c.arOut = make([]float64, 1)
	}
	c.arIn[0] = x
	c.Allreduce(op, c.arIn, c.arOut)
	return c.arOut[0]
}

// Gather collects equal-length contributions from every rank into out on
// root, ordered by rank. out must have len(in)*Size() elements on root
// and may be nil elsewhere.
func (c *Comm) Gather(root int, in, out []float64) {
	sp := c.span("mpirt.gather")
	defer sp.End()
	defer c.collEnd(time.Now())
	if c.rank == root {
		copy(out[root*len(in):(root+1)*len(in)], in)
		for r := 0; r < c.world.n; r++ {
			if r == root {
				continue
			}
			c.Recv(r, tagGather, out[r*len(in):(r+1)*len(in)])
		}
		return
	}
	c.Send(root, tagGather, in)
}
