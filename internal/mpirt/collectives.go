package mpirt

import "sync"

// barrier is a reusable counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until every rank has entered the barrier, or until the
// world is poisoned — a barrier must never outlive its world, or a
// single dead rank would strand every peer in it.
func (b *barrier) wait(w *World) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if w.aborted.Load() {
		return ErrWorldAborted
	}
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return nil
	}
	for phase == b.phase {
		b.cond.Wait()
		if w.aborted.Load() && phase == b.phase {
			return ErrWorldAborted
		}
	}
	return nil
}

// Barrier blocks until every rank has entered it. In a poisoned world it
// unwinds the rank with ErrWorldAborted instead of waiting forever.
func (c *Comm) Barrier() {
	sp := c.span("mpirt.barrier")
	c.faultPoint(false)
	if err := c.world.barrier.wait(c.world); err != nil {
		fail(err)
	}
	sp.End()
}

// ReduceOp combines two values during reductions.
type ReduceOp func(a, b float64) float64

// Standard reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if b > a {
			return b
		}
		return a
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if b < a {
			return b
		}
		return a
	}
)

// collective tags live in a reserved negative space so they can never
// collide with user point-to-point tags.
const (
	tagReduce = -1 - iota
	tagBcast
	tagGather
	tagAlltoall
)

// Reduce combines in[] element-wise across ranks with op; the result
// lands in out[] on root only. Implemented as a fan-in tree on rank ids.
func (c *Comm) Reduce(root int, op ReduceOp, in, out []float64) {
	sp := c.span("mpirt.reduce")
	defer sp.End()
	// Rotate ranks so the tree roots at 'root'.
	me := (c.rank - root + c.world.n) % c.world.n
	n := c.world.n
	acc := append([]float64(nil), in...)
	// Binomial tree fan-in.
	for step := 1; step < n; step *= 2 {
		if me&step != 0 {
			dst := ((me - step) + root) % n
			c.Send(dst, tagReduce, acc)
			break
		}
		src := me + step
		if src < n {
			buf := make([]float64, len(acc))
			c.Recv((src+root)%n, tagReduce, buf)
			for i := range acc {
				acc[i] = op(acc[i], buf[i])
			}
		}
	}
	if c.rank == root {
		copy(out, acc)
	}
}

// Bcast distributes root's buf to every rank (binomial tree).
func (c *Comm) Bcast(root int, buf []float64) {
	sp := c.span("mpirt.bcast")
	defer sp.End()
	me := (c.rank - root + c.world.n) % c.world.n
	n := c.world.n
	// Find the highest power-of-two step at which this rank receives.
	mask := 1
	for mask < n {
		mask *= 2
	}
	if me != 0 {
		// Receive from the parent: clear the lowest set bit of me.
		parent := me & (me - 1)
		c.Recv((parent+root)%n, tagBcast, buf)
	}
	// Forward to children: set bits above the lowest set bit of me.
	low := me & -me
	if me == 0 {
		low = mask
	}
	for step := low / 2; step >= 1; step /= 2 {
		child := me | step
		if child != me && child < n {
			c.Send((child+root)%n, tagBcast, buf)
		}
	}
}

// Allreduce combines in[] across all ranks into out[] on every rank.
func (c *Comm) Allreduce(op ReduceOp, in, out []float64) {
	sp := c.span("mpirt.allreduce")
	defer sp.End()
	tmp := make([]float64, len(in))
	c.Reduce(0, op, in, tmp)
	if c.rank == 0 {
		copy(out, tmp)
	}
	c.Bcast(0, out)
}

// AllreduceScalar is Allreduce for a single value.
func (c *Comm) AllreduceScalar(op ReduceOp, x float64) float64 {
	in := []float64{x}
	out := make([]float64, 1)
	c.Allreduce(op, in, out)
	return out[0]
}

// Gather collects equal-length contributions from every rank into out on
// root, ordered by rank. out must have len(in)*Size() elements on root
// and may be nil elsewhere.
func (c *Comm) Gather(root int, in, out []float64) {
	sp := c.span("mpirt.gather")
	defer sp.End()
	if c.rank == root {
		copy(out[root*len(in):(root+1)*len(in)], in)
		for r := 0; r < c.world.n; r++ {
			if r == root {
				continue
			}
			c.Recv(r, tagGather, out[r*len(in):(r+1)*len(in)])
		}
		return
	}
	c.Send(root, tagGather, in)
}
